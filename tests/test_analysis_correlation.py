"""§5.5 KPI correlation analysis (Table 2, Figs. 7-8)."""

import pytest

from repro.analysis import correlation
from repro.analysis.correlation import KPI_NAMES
from repro.radio.operators import Operator
from repro.units import SPEED_BIN_LABELS


class TestTable2:
    def test_six_rows(self, dataset):
        rows = correlation.correlation_table(dataset)
        assert len(rows) == 6
        assert {(r.operator, r.direction) for r in rows} == {
            (op, d) for op in Operator for d in ("downlink", "uplink")
        }

    def test_all_kpis_present(self, dataset):
        for row in correlation.correlation_table(dataset):
            assert set(row.coefficients) == set(KPI_NAMES)

    def test_coefficients_in_range(self, dataset):
        for row in correlation.correlation_table(dataset):
            for r in row.coefficients.values():
                assert -1.0 <= r <= 1.0

    def test_no_kpi_strongly_correlates(self, dataset):
        """Table 2's headline: no KPI exceeds |r| ≈ 0.65."""
        for row in correlation.correlation_table(dataset):
            for name, r in row.coefficients.items():
                assert abs(r) < 0.75, (row.operator, row.direction, name, r)

    def test_handover_correlation_negligible(self, dataset):
        """Table 2: HO column is ≈0 for every operator/direction."""
        for row in correlation.correlation_table(dataset):
            assert abs(row.coefficients["HO"]) < 0.2

    def test_speed_correlation_weak_negative(self, dataset):
        """Table 2: speed column is −0.10..−0.37 (weak negative).

        At the test fixture's campaign scale the per-row estimates are
        noisy; we require the majority to be non-positive-ish and none to
        be strongly positive.
        """
        rows = correlation.correlation_table(dataset)
        non_positive = sum(1 for r in rows if r.coefficients["Speed"] < 0.1)
        assert non_positive >= 3
        assert all(r.coefficients["Speed"] < 0.3 for r in rows)

    def test_mcs_positively_correlates(self, dataset):
        for row in correlation.correlation_table(dataset):
            assert row.coefficients["MCS"] > 0.0

    def test_sample_counts_recorded(self, dataset):
        for row in correlation.correlation_table(dataset):
            assert row.sample_count >= 10


class TestScatters:
    def test_throughput_scatter_shape(self, dataset):
        points = correlation.throughput_speed_scatter(dataset, Operator.VERIZON, "downlink")
        assert points
        speeds, tputs, techs, bins = zip(*points)
        assert all(b in SPEED_BIN_LABELS for b in bins)
        assert min(speeds) >= 0.0
        assert min(tputs) >= 0.0

    def test_rtt_scatter_shape(self, dataset):
        points = correlation.rtt_speed_scatter(dataset, Operator.ATT)
        assert points
        assert all(p[1] > 0 for p in points)

    def test_all_speed_bins_observed(self, dataset):
        points = correlation.throughput_speed_scatter(dataset, Operator.TMOBILE, "downlink")
        bins = {p[3] for p in points}
        assert bins == set(SPEED_BIN_LABELS)
