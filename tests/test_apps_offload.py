"""AR / CAV offloading app model (Table 4 pipeline)."""

import math

import numpy as np
import pytest

from repro.apps.offload import AR_CONFIG, CAV_CONFIG, OffloadAppConfig, run_offload_app
from repro.apps.schedule import LinkSchedule
from repro.radio.technology import RadioTechnology


def schedule(ul_mbps=150.0, dl_mbps=800.0, rtt_ms=15.0, duration_s=20.0,
             tech=RadioTechnology.NR_MMWAVE, interruptions=()):
    n = int(duration_s / 0.5)
    return LinkSchedule(
        times_s=np.arange(n) * 0.5,
        tick_s=0.5,
        ul_mbps=np.full(n, ul_mbps),
        dl_mbps=np.full(n, dl_mbps),
        rtt_ms=np.full(n, rtt_ms),
        techs=(tech,) * n,
        interruptions=tuple(interruptions),
    )


class TestConfigs:
    def test_table4_ar_values(self):
        assert AR_CONFIG.fps == 30.0
        assert AR_CONFIG.raw_frame_kb == 450.0
        assert AR_CONFIG.compressed_frame_kb == 50.0
        assert AR_CONFIG.compress_ms == pytest.approx(6.3)
        assert AR_CONFIG.inference_ms == pytest.approx(24.9)
        assert AR_CONFIG.decompress_ms == pytest.approx(1.0)
        assert AR_CONFIG.duration_s == 20.0

    def test_table4_cav_values(self):
        assert CAV_CONFIG.fps == 10.0
        assert CAV_CONFIG.raw_frame_kb == 2000.0
        assert CAV_CONFIG.compressed_frame_kb == 38.0
        assert CAV_CONFIG.compress_ms == pytest.approx(34.8)
        assert CAV_CONFIG.inference_ms == pytest.approx(44.0)
        assert CAV_CONFIG.decompress_ms == pytest.approx(19.1)

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            OffloadAppConfig(
                name="X", fps=0.0, raw_frame_kb=100, compressed_frame_kb=10,
                compress_ms=1, inference_ms=1, decompress_ms=1, duration_s=10,
                result_kb=1, align_to_frame=False,
            )
        with pytest.raises(ValueError):
            OffloadAppConfig(
                name="X", fps=30.0, raw_frame_kb=10, compressed_frame_kb=100,
                compress_ms=1, inference_ms=1, decompress_ms=1, duration_s=10,
                result_kb=1, align_to_frame=False,
            )


class TestArRuns:
    def test_best_static_case_matches_paper(self):
        """§7.1.1: best static ≈68 ms E2E, ≈12.5 FPS offloaded, mAP ≈36.5."""
        m = run_offload_app(schedule(), AR_CONFIG, compression=True)
        assert 45.0 < m.mean_e2e_ms < 90.0
        assert 10.0 < m.offload_fps < 16.0
        assert 34.0 < m.map_score < 38.5

    def test_driving_degrades_everything(self):
        good = run_offload_app(schedule(), AR_CONFIG, compression=True)
        bad = run_offload_app(schedule(ul_mbps=4.0, rtt_ms=80.0), AR_CONFIG, compression=True)
        assert bad.mean_e2e_ms > good.mean_e2e_ms * 2
        assert bad.offload_fps < good.offload_fps
        assert bad.map_score < good.map_score

    def test_compression_helps_on_slow_links(self):
        raw = run_offload_app(schedule(ul_mbps=6.0, rtt_ms=70.0), AR_CONFIG, compression=False)
        compressed = run_offload_app(schedule(ul_mbps=6.0, rtt_ms=70.0), AR_CONFIG, compression=True)
        assert compressed.mean_e2e_ms < raw.mean_e2e_ms / 3

    def test_offload_fps_bounded_by_capture(self):
        m = run_offload_app(schedule(ul_mbps=10_000.0, rtt_ms=1.0), AR_CONFIG, compression=True)
        assert m.offload_fps <= AR_CONFIG.fps + 1e-9

    def test_uplink_bytes_accounted(self):
        m = run_offload_app(schedule(), AR_CONFIG, compression=True)
        expected = m.offloaded_frames * AR_CONFIG.frame_megabits(True)
        assert m.uplink_megabits == pytest.approx(expected)

    def test_dead_link_yields_saturated_run(self):
        m = run_offload_app(schedule(ul_mbps=0.01), AR_CONFIG, compression=False)
        assert m.offload_fps < 1.0


class TestCavRuns:
    def test_never_meets_100ms_budget(self):
        """§7.1.2: even ideal links miss the 100 ms CAV budget — the fixed
        pipeline (34.8+44+19.1 ms) plus transfer makes it impossible."""
        m = run_offload_app(schedule(ul_mbps=300.0, rtt_ms=15.0), CAV_CONFIG, compression=True)
        assert m.mean_e2e_ms > 100.0

    def test_compression_reduces_e2e_several_fold(self):
        """§7.1.2: compression cuts the median E2E ~8×."""
        raw = run_offload_app(schedule(ul_mbps=8.0, rtt_ms=70.0), CAV_CONFIG, compression=False)
        compressed = run_offload_app(schedule(ul_mbps=8.0, rtt_ms=70.0), CAV_CONFIG, compression=True)
        assert raw.mean_e2e_ms / compressed.mean_e2e_ms > 4.0

    def test_cav_has_no_map(self):
        m = run_offload_app(schedule(), CAV_CONFIG, compression=True)
        assert m.map_score == 0.0


class TestHandoverInteraction:
    def test_interruptions_stretch_e2e(self):
        clean = run_offload_app(schedule(ul_mbps=5.0), AR_CONFIG, compression=True)
        intr = run_offload_app(
            schedule(ul_mbps=5.0, interruptions=tuple((t, 0.08) for t in range(1, 19))),
            AR_CONFIG, compression=True,
        )
        assert intr.mean_e2e_ms >= clean.mean_e2e_ms
