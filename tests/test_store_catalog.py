"""Partition catalog: ingest, pruning, replace semantics, and the CLI."""

from __future__ import annotations

import copy
import json

import pytest

from repro.campaign.persistence import save_dataset
from repro.errors import StoreError
from repro.radio.operators import Operator
from repro.store import Catalog, Eq, QueryStats, query
from repro.store.__main__ import main as store_main


@pytest.fixture(scope="module")
def seeded_datasets(bare_dataset):
    """Three distinguishable 'seeds' without running three campaigns."""
    out = {}
    for i, seed in enumerate((7, 8, 9)):
        ds = copy.deepcopy(bare_dataset)
        ds.seed = seed
        # Shift marks so per-partition mark_m stats separate cleanly.
        offset = float(i) * 10_000_000.0
        ds.throughput_samples = [
            type(s)(**{**_fields(s), "mark_m": s.mark_m + offset})
            for s in ds.throughput_samples
        ]
        out[seed] = ds
    return out


def _fields(record):
    return {
        name: getattr(record, name) for name in record.__dataclass_fields__
    }


@pytest.fixture()
def catalog(seeded_datasets, tmp_path):
    with Catalog(tmp_path / "store") as cat:
        for seed, ds in seeded_datasets.items():
            cat.ingest(ds)
        yield cat


class TestIngest:
    def test_partitions_sorted_and_counted(self, catalog, seeded_datasets):
        assert catalog.seeds == (7, 8, 9)
        assert catalog.rows("tput") == sum(
            len(ds.throughput_samples) for ds in seeded_datasets.values()
        )

    def test_manifest_survives_reopen(self, catalog, tmp_path):
        reopened = Catalog(catalog.root)
        assert reopened.seeds == catalog.seeds
        assert [p.path for p in reopened.partitions] == [
            p.path for p in catalog.partitions
        ]

    def test_replace_same_seed(self, catalog, seeded_datasets):
        n_before = len(catalog.partitions)
        catalog.ingest(seeded_datasets[8])
        assert len(catalog.partitions) == n_before

    def test_labels_partition_same_seed(self, catalog, seeded_datasets):
        catalog.ingest(seeded_datasets[8], label="rerun")
        assert len([p for p in catalog.partitions if p.seed == 8]) == 2
        with pytest.raises(StoreError, match="invalid partition label"):
            catalog.ingest(seeded_datasets[8], label="../escape")

    def test_ingest_file_roundtrips_row_format(
        self, seeded_datasets, tmp_path
    ):
        src = tmp_path / "seed7.jsonl.gz"
        save_dataset(seeded_datasets[7], src)
        with Catalog(tmp_path / "cat2") as cat:
            info = cat.ingest_file(src)
            assert info.seed == 7
            assert cat.rows("tput") == len(
                seeded_datasets[7].throughput_samples
            )

    def test_version_mismatch_rejected(self, catalog):
        manifest = catalog.root / "catalog.json"
        obj = json.loads(manifest.read_text())
        obj["format"] = 99
        manifest.write_text(json.dumps(obj))
        with pytest.raises(StoreError, match="unsupported catalog format"):
            Catalog(catalog.root)


class TestPruning:
    def test_seed_restriction_skips_partitions(self, catalog):
        qstats = QueryStats()
        query.count(catalog, "tput", (), seeds=(7,), qstats=qstats)
        assert qstats.partitions_scanned == 1
        assert qstats.partitions_total == 3

    def test_manifest_stats_prune_before_open(self, catalog, seeded_datasets):
        # Partition seed=7 holds marks < 1e7; 8 and 9 are shifted above.
        qstats = QueryStats()
        n = query.count(
            catalog, "tput",
            (query.Between("mark_m", lo=9_999_999.0),),
            qstats=qstats,
        )
        assert qstats.partitions_pruned >= 1
        assert n == 2 * len(seeded_datasets[8].throughput_samples)

    def test_impossible_predicate_reads_zero_partitions(self, catalog):
        qstats = QueryStats()
        n = query.count(
            catalog, "tput", (Eq("direction", "sideways"),), qstats=qstats
        )
        assert n == 0
        assert qstats.partitions_scanned == 0
        assert qstats.partitions_pruned == 3

    def test_aggregation_spans_partitions(self, catalog, seeded_datasets):
        got = query.total(
            catalog, "tput", "tput_mbps",
            (Eq("operator", Operator.VERIZON),),
        )
        want = sum(
            s.tput_mbps
            for ds in seeded_datasets.values()
            for s in ds.throughput_samples
            if s.operator is Operator.VERIZON
        )
        assert got == pytest.approx(want)


class TestCli:
    def test_ingest_inspect_query(self, seeded_datasets, tmp_path, capsys):
        files = []
        for seed, ds in seeded_datasets.items():
            path = tmp_path / f"seed{seed}.jsonl.gz"
            save_dataset(ds, path)
            files.append(str(path))
        store = str(tmp_path / "store")

        assert store_main(["ingest", store, *files]) == 0
        out = capsys.readouterr().out
        assert out.count("ingested") == 3

        assert store_main(["inspect", store]) == 0
        out = capsys.readouterr().out
        assert "3 partitions" in out and "seeds [7, 8, 9]" in out

        assert store_main([
            "query", store, "--table", "tput", "--column", "tput_mbps",
            "--where", "operator=VERIZON", "--where", "static=false",
            "--agg", "p50", "--explain",
        ]) == 0
        captured = capsys.readouterr()
        assert "pushdown:" in captured.err
        float(captured.out.strip())  # a single numeric result

    def test_cli_errors_cleanly(self, tmp_path, capsys):
        missing = str(tmp_path / "nowhere")
        assert store_main(["inspect", missing]) == 1
        assert "store command failed" in capsys.readouterr().err

        (tmp_path / "store").mkdir()
        assert store_main([
            "query", str(tmp_path / "store"), "--table", "tput",
            "--where", "operator===x", "--agg", "count",
        ]) == 1
        assert "cannot parse" in capsys.readouterr().err
