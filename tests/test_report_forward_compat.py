"""Reports parse JSON written by newer schema versions without breaking."""

from __future__ import annotations

import math

import pytest

from repro.engine.metrics import EngineReport, ShardMetrics
from repro.sweep.report import SeedRunMetrics, SweepReport
from repro.sweep.stats import StatisticSummary


def _engine_obj(**extra) -> dict:
    report = EngineReport(executor="serial", workers=1, n_windows=2, n_batches=2)
    report.shards = [
        ShardMetrics(
            index=0, start_km=0.0, end_km=100.0, wall_s=1.5,
            records=10, retries=0, from_checkpoint=False,
        )
    ]
    obj = report.to_obj()
    obj.update(extra)
    return obj


def _sweep_obj(**extra) -> dict:
    report = SweepReport(
        seeds=(41, 42), scale=0.01, executor="serial", workers=1,
        n_windows=3, confidence=0.95, bootstrap_samples=100,
        seed_runs=[
            SeedRunMetrics(
                seed=41, fingerprint="abc", compute_wall_s=2.0, records=5,
                n_shards=4, cache_hits=1, cache_misses=3, retries=0,
            )
        ],
        statistics=[
            StatisticSummary(
                name="s", description="d", unit="u", confidence=0.95,
                n_boot=100, seeds=(41,), values=(1.0,), mean=1.0,
                median=1.0, std=0.0, ci_low=1.0, ci_high=1.0,
            )
        ],
    )
    obj = report.to_obj()
    obj.update(extra)
    return obj


class TestEngineReportForwardCompat:
    def test_unknown_toplevel_fields_ignored(self):
        obj = _engine_obj(
            schema_version=3, gpu_seconds=12.5, scheduler={"kind": "fair"}
        )
        report = EngineReport.from_obj(obj)
        assert report.executor == "serial"
        assert report.total_records == 10

    def test_unknown_shard_fields_ignored(self):
        obj = _engine_obj()
        obj["shards"][0]["numa_node"] = 1
        report = EngineReport.from_obj(obj)
        assert report.shards[0].records == 10

    def test_missing_auxiliary_fields_default(self):
        # A future version might drop or rename non-structural fields;
        # parsing still succeeds from the structural core alone.
        obj = {
            "executor": "process", "workers": 4,
            "n_windows": 7, "n_batches": 3,
        }
        report = EngineReport.from_obj(obj)
        assert report.total_wall_s == 0.0
        assert report.validated is False
        assert report.shards == []

    def test_roundtrip_still_exact(self):
        obj = _engine_obj()
        assert EngineReport.from_obj(obj).to_obj() == obj

    def test_missing_structural_field_still_fails(self):
        obj = _engine_obj()
        del obj["executor"]
        with pytest.raises(KeyError):
            EngineReport.from_obj(obj)


class TestSweepReportForwardCompat:
    def test_unknown_fields_ignored_everywhere(self):
        obj = _sweep_obj(schema_version=2, store_dir="out/store")
        obj["seed_runs"][0]["ingest_s"] = 0.2
        obj["statistics"][0]["kurtosis"] = 3.0
        report = SweepReport.from_obj(obj)
        assert report.seeds == (41, 42)
        assert report.seed_runs[0].records == 5
        assert report.statistics[0].mean == 1.0

    def test_missing_auxiliary_fields_default(self):
        obj = {
            "seeds": [41], "scale": 0.01, "executor": "serial",
            "workers": 1, "n_windows": 3, "confidence": 0.9,
            "bootstrap_samples": 10,
        }
        report = SweepReport.from_obj(obj)
        assert report.seed_runs == []
        assert report.statistics == []
        assert report.cache is None
        assert report.total_wall_s == 0.0

    def test_statistic_summary_minimal(self):
        summary = StatisticSummary.from_obj({
            "name": "x", "seeds": [41], "values": [2.0],
            "mean": 2.0, "ci_low": 2.0, "ci_high": 2.0,
        })
        assert summary.median == 2.0  # falls back to the mean
        assert summary.unit == ""
        assert math.isclose(summary.confidence, 0.95)

    def test_roundtrip_still_exact(self):
        obj = _sweep_obj()
        assert SweepReport.from_obj(obj).to_obj() == obj
