"""Route construction and position resolution."""

import pytest

from repro.errors import RouteError
from repro.geo.regions import RegionType
from repro.geo.route import (
    CROSS_COUNTRY_CITIES,
    Route,
    RouteSegment,
    build_cross_country_route,
)
from repro.geo.timezones import Timezone


class TestCrossCountryRoute:
    def test_total_length_matches_paper(self, route):
        # Paper Table 1: 5711+ km.
        assert 5700.0 <= route.total_length_km <= 5730.0

    def test_ten_cities(self, route):
        assert len(route.cities) == 10
        assert route.cities[0].name == "Los Angeles"
        assert route.cities[-1].name == "Boston"

    def test_five_edge_server_cities(self, route):
        # Paper §3: Wavelength in LA, Las Vegas, Denver, Chicago, Boston.
        names = {c.name for c in route.edge_server_cities()}
        assert names == {"Los Angeles", "Las Vegas", "Denver", "Chicago", "Boston"}

    def test_every_city_has_a_city_segment(self, route):
        for city in CROSS_COUNTRY_CITIES:
            mark = route.city_mark_m(city.name)
            assert route.position_at(mark).region is RegionType.CITY

    def test_city_marks_are_ordered_west_to_east(self, route):
        marks = [route.city_mark_m(c.name) for c in CROSS_COUNTRY_CITIES]
        assert marks == sorted(marks)

    def test_position_at_start_is_pacific_city(self, route):
        pos = route.position_at(0.0)
        assert pos.timezone is Timezone.PACIFIC
        assert pos.region is RegionType.CITY

    def test_position_at_end_is_eastern(self, route):
        pos = route.position_at(route.total_length_m)
        assert pos.timezone is Timezone.EASTERN

    def test_all_four_timezones_present(self, route):
        seen = set()
        step = route.total_length_m / 400
        for i in range(401):
            seen.add(route.position_at(i * step).timezone)
        assert seen == set(Timezone)

    def test_all_region_types_present(self, route):
        regions = {seg.region for seg in route.segments}
        assert regions == set(RegionType)

    def test_highway_dominates_mileage(self, route):
        highway = sum(
            s.length_m for s in route.segments if s.region is RegionType.HIGHWAY
        )
        assert highway / route.total_length_m > 0.8

    def test_position_distance_out_of_range(self, route):
        with pytest.raises(RouteError):
            route.position_at(-1.0)
        with pytest.raises(RouteError):
            route.position_at(route.total_length_m + 1.0)

    def test_positions_move_monotonically_east(self, route):
        # Longitude should generally increase along the trip (west→east).
        lons = [
            route.position_at(f * route.total_length_m).point.lon
            for f in (0.0, 0.25, 0.5, 0.75, 1.0)
        ]
        assert lons == sorted(lons)

    def test_unknown_city_mark_raises(self, route):
        with pytest.raises(RouteError):
            route.city_mark_m("Miami")

    def test_segment_start_index(self, route):
        assert route.segment_start_m(0) == 0.0
        with pytest.raises(RouteError):
            route.segment_start_m(len(route.segments))

    def test_position_segment_consistency(self, route):
        mark = route.total_length_m * 0.37
        pos = route.position_at(mark)
        seg = route.segments[pos.segment_index]
        start = route.segment_start_m(pos.segment_index)
        assert start <= mark <= start + seg.length_m + 1e-6


class TestRouteValidation:
    def test_empty_route_rejected(self):
        with pytest.raises(RouteError):
            Route(segments=[])

    def test_zero_length_segment_rejected(self):
        from repro.geo.coords import LatLon

        with pytest.raises(RouteError):
            RouteSegment(
                start_point=LatLon(0, 0),
                end_point=LatLon(0, 1),
                length_m=0.0,
                region=RegionType.HIGHWAY,
                city="X",
            )

    def test_deterministic_construction(self):
        r1 = build_cross_country_route()
        r2 = build_cross_country_route()
        assert r1.total_length_m == r2.total_length_m
        assert len(r1.segments) == len(r2.segments)
