"""Channel model: path loss, shadowing, operator beam effects."""

import numpy as np
import pytest

from repro.geo.coords import LatLon
from repro.geo.regions import RegionType
from repro.radio.cells import Cell, CellId
from repro.radio.channel import ChannelModel
from repro.radio.operators import Operator
from repro.radio.technology import RadioTechnology


def make_cell(tech=RadioTechnology.LTE, seq=1, mark=500.0, perp=100.0, op=Operator.VERIZON):
    return Cell(
        cell_id=CellId(op, tech, seq),
        site=LatLon(40.0, -100.0),
        site_mark_m=mark,
        perpendicular_m=perp,
    )


class TestPathLoss:
    def test_rsrp_decreases_with_distance(self, rng):
        model = ChannelModel(Operator.VERIZON, rng)
        cell = make_cell()
        near = np.mean(
            [model.state(cell, 500.0, RegionType.HIGHWAY, 0.5).rsrp_dbm for _ in range(50)]
        )
        model2 = ChannelModel(Operator.VERIZON, np.random.default_rng(1))
        far = np.mean(
            [model2.state(cell, 3500.0, RegionType.HIGHWAY, 0.5).rsrp_dbm for _ in range(50)]
        )
        assert near > far + 10.0

    def test_rsrp_within_physical_bounds(self, rng):
        model = ChannelModel(Operator.TMOBILE, rng)
        cell = make_cell(RadioTechnology.NR_MID)
        for mark in (450.0, 520.0, 800.0, 2000.0):
            st = model.state(cell, mark, RegionType.SUBURBAN, 0.4)
            assert -135.0 <= st.rsrp_dbm <= -45.0
            assert -10.0 <= st.sinr_db <= 40.0

    def test_load_raises_interference(self):
        cell = make_cell()
        busy = ChannelModel(Operator.VERIZON, np.random.default_rng(0)).state(
            cell, 500.0, RegionType.HIGHWAY, 0.05
        )
        idle = ChannelModel(Operator.VERIZON, np.random.default_rng(0)).state(
            cell, 500.0, RegionType.HIGHWAY, 1.0
        )
        assert idle.sinr_db > busy.sinr_db

    def test_city_interference_exceeds_highway(self):
        cell = make_cell()
        city = ChannelModel(Operator.VERIZON, np.random.default_rng(0)).state(
            cell, 500.0, RegionType.CITY, 0.5
        )
        hwy = ChannelModel(Operator.VERIZON, np.random.default_rng(0)).state(
            cell, 500.0, RegionType.HIGHWAY, 0.5
        )
        assert hwy.sinr_db > city.sinr_db


class TestOperatorBeamEffects:
    def test_verizon_mmwave_rsrp_lower_than_att(self):
        """§5.5: Verizon's wide beams → RSRP −80..−110; AT&T −70..−90."""
        cell_v = make_cell(RadioTechnology.NR_MMWAVE, op=Operator.VERIZON)
        cell_a = make_cell(RadioTechnology.NR_MMWAVE, op=Operator.ATT)
        v_model = ChannelModel(Operator.VERIZON, np.random.default_rng(0))
        a_model = ChannelModel(Operator.ATT, np.random.default_rng(0))
        v = np.mean([v_model.state(cell_v, 480.0 + i, RegionType.CITY, 0.5).rsrp_dbm for i in range(100)])
        a = np.mean([a_model.state(cell_a, 480.0 + i, RegionType.CITY, 0.5).rsrp_dbm for i in range(100)])
        assert a > v + 10.0

    def test_att_4g_grid_stronger(self):
        cell_a = make_cell(RadioTechnology.LTE_A, op=Operator.ATT)
        cell_t = make_cell(RadioTechnology.LTE_A, op=Operator.TMOBILE)
        a_model = ChannelModel(Operator.ATT, np.random.default_rng(0))
        t_model = ChannelModel(Operator.TMOBILE, np.random.default_rng(0))
        a = np.mean([a_model.state(cell_a, 480.0 + i, RegionType.HIGHWAY, 0.5).rsrp_dbm for i in range(100)])
        t = np.mean([t_model.state(cell_t, 480.0 + i, RegionType.HIGHWAY, 0.5).rsrp_dbm for i in range(100)])
        assert a > t + 3.0


class TestShadowing:
    def test_spatially_correlated(self, rng):
        model = ChannelModel(Operator.VERIZON, rng)
        cell = make_cell()
        # Two states 1 m apart share almost the same shadowing.
        s1 = model.state(cell, 500.0, RegionType.HIGHWAY, 0.5)
        s2 = model.state(cell, 501.0, RegionType.HIGHWAY, 0.5)
        assert abs(s1.rsrp_dbm - s2.rsrp_dbm) < 4.0

    def test_decorrelates_over_distance(self):
        diffs_near, diffs_far = [], []
        for seed in range(40):
            model = ChannelModel(Operator.VERIZON, np.random.default_rng(seed))
            cell = make_cell(mark=0.0, perp=5000.0)  # distance ~constant
            a = model.state(cell, 0.0, RegionType.HIGHWAY, 0.5).rsrp_dbm
            b = model.state(cell, 2.0, RegionType.HIGHWAY, 0.5).rsrp_dbm
            c = model.state(cell, 1000.0, RegionType.HIGHWAY, 0.5).rsrp_dbm
            diffs_near.append(abs(b - a))
            diffs_far.append(abs(c - a))
        assert np.mean(diffs_far) > np.mean(diffs_near)

    def test_shadow_cache_bounded(self, rng):
        model = ChannelModel(Operator.VERIZON, rng)
        for seq in range(200):
            model.state(make_cell(seq=seq, mark=seq * 100.0), seq * 100.0, RegionType.HIGHWAY, 0.5)
        assert len(model._shadow) <= 64
