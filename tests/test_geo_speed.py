"""Speed process behaviour."""

import numpy as np
import pytest

from repro.geo.regions import RegionType
from repro.geo.speed import DEFAULT_SPEED_PARAMS, RegionSpeedParams, SpeedProfile
from repro.units import speed_bin


class TestRegionSpeedParams:
    def test_negative_mean_rejected(self):
        with pytest.raises(ValueError):
            RegionSpeedParams(-1.0, 5.0, 0.1, 0.0, 0.0)

    def test_stop_rate_bounds(self):
        with pytest.raises(ValueError):
            RegionSpeedParams(10.0, 5.0, 0.1, 1.5, 10.0)


class TestSpeedProfile:
    def test_speed_never_negative(self, rng):
        profile = SpeedProfile(rng)
        for _ in range(500):
            assert profile.step(RegionType.CITY, 0.5) >= 0.0

    def test_highway_speeds_land_in_high_bin(self, rng):
        profile = SpeedProfile(rng)
        speeds = [profile.step(RegionType.HIGHWAY, 0.5) for _ in range(2000)]
        bins = [speed_bin(v) for v in speeds[200:]]
        assert bins.count("60+ mph") / len(bins) > 0.85

    def test_city_speeds_land_mostly_low(self, rng):
        profile = SpeedProfile(rng)
        speeds = [profile.step(RegionType.CITY, 0.5) for _ in range(2000)]
        bins = [speed_bin(v) for v in speeds[200:]]
        assert bins.count("0-20 mph") / len(bins) > 0.6

    def test_city_has_full_stops(self, rng):
        profile = SpeedProfile(rng)
        speeds = [profile.step(RegionType.CITY, 0.5) for _ in range(4000)]
        assert any(v == 0.0 for v in speeds)

    def test_highway_never_stops(self, rng):
        profile = SpeedProfile(rng)
        speeds = [profile.step(RegionType.HIGHWAY, 0.5) for _ in range(2000)]
        assert min(speeds[50:]) > 30.0

    def test_transition_ramps_toward_new_mean(self, rng):
        profile = SpeedProfile(rng)
        for _ in range(200):
            profile.step(RegionType.CITY, 0.5)
        city_speed = profile.current_speed_mph
        for _ in range(300):
            profile.step(RegionType.HIGHWAY, 0.5)
        assert profile.current_speed_mph > city_speed

    def test_autocorrelation_at_tick_scale(self, rng):
        profile = SpeedProfile(rng)
        speeds = np.asarray([profile.step(RegionType.SUBURBAN, 0.5) for _ in range(3000)])
        x = speeds[200:-1]
        y = speeds[201:]
        corr = np.corrcoef(x, y)[0, 1]
        assert corr > 0.9  # strongly autocorrelated at 500 ms

    def test_invalid_dt_rejected(self, rng):
        with pytest.raises(ValueError):
            SpeedProfile(rng).step(RegionType.CITY, 0.0)

    def test_distance_travelled(self, rng):
        profile = SpeedProfile(rng)
        profile.step(RegionType.HIGHWAY, 0.5)
        d = profile.distance_travelled_m(0.5)
        assert d == pytest.approx(profile.current_speed_mps * 0.5)

    def test_current_speed_before_first_step(self, rng):
        assert SpeedProfile(rng).current_speed_mph == 0.0

    def test_default_params_cover_all_regions(self):
        assert set(DEFAULT_SPEED_PARAMS) == set(RegionType)
