"""Timezone boundaries along the route."""

from datetime import timedelta

import pytest

from repro.geo.route import CROSS_COUNTRY_CITIES
from repro.geo.timezones import (
    ALL_TIMEZONES,
    Timezone,
    XCAL_INTERNAL_TZ,
    timezone_for_longitude,
)

#: Ground truth: which timezone each trip city is in (August = DST).
CITY_TZ = {
    "Los Angeles": Timezone.PACIFIC,
    "Las Vegas": Timezone.PACIFIC,
    "Salt Lake City": Timezone.MOUNTAIN,
    "Denver": Timezone.MOUNTAIN,
    "Omaha": Timezone.CENTRAL,
    "Chicago": Timezone.CENTRAL,
    "Indianapolis": Timezone.EASTERN,
    "Cleveland": Timezone.EASTERN,
    "Rochester": Timezone.EASTERN,
    "Boston": Timezone.EASTERN,
}


class TestTimezoneForLongitude:
    @pytest.mark.parametrize("city", CROSS_COUNTRY_CITIES, ids=lambda c: c.name)
    def test_cities_resolve_correctly(self, city):
        assert timezone_for_longitude(city.location.lon) is CITY_TZ[city.name]

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            timezone_for_longitude(-200.0)

    def test_monotone_west_to_east(self):
        order = [timezone_for_longitude(lon) for lon in (-120, -110, -95, -75)]
        assert order == list(ALL_TIMEZONES)


class TestOffsets:
    def test_dst_offsets(self):
        assert Timezone.PACIFIC.utc_offset_hours == -7
        assert Timezone.EASTERN.utc_offset_hours == -4

    def test_offset_timedelta(self):
        assert Timezone.CENTRAL.utc_offset == timedelta(hours=-5)

    def test_xcal_internal_convention_is_edt(self):
        assert XCAL_INTERNAL_TZ is Timezone.EASTERN

    def test_four_timezones(self):
        assert len(ALL_TIMEZONES) == 4
