"""XCAL record / DRM / app-log serialisation."""

from datetime import datetime

import pytest

from repro.errors import LogFormatError
from repro.radio.operators import Operator
from repro.radio.technology import RadioTechnology
from repro.xcal.applog import AppLogFile, TimestampConvention
from repro.xcal.drm import DrmFile
from repro.xcal.records import SignalingRecord, XcalKpiRecord

TS = datetime(2022, 8, 10, 14, 30, 5, 500000)


def kpi(**overrides):
    defaults = dict(
        timestamp_edt=TS,
        technology=RadioTechnology.NR_MID,
        rsrp_dbm=-95.2,
        mcs=17,
        bler=0.08,
        n_ccs=2,
        tput_mbps=45.3,
    )
    defaults.update(overrides)
    return XcalKpiRecord(**defaults)


class TestKpiRecord:
    def test_round_trip(self):
        record = kpi()
        parsed = XcalKpiRecord.from_line(record.to_line())
        assert parsed == record

    def test_line_carries_edt_marker(self):
        assert " EDT|KPI|" in kpi().to_line()

    def test_rejects_non_edt(self):
        line = kpi().to_line().replace(" EDT|", " UTC|")
        with pytest.raises(LogFormatError):
            XcalKpiRecord.from_line(line)

    def test_rejects_garbage(self):
        with pytest.raises(LogFormatError):
            XcalKpiRecord.from_line("hello world")

    def test_rejects_bad_field(self):
        line = kpi().to_line().replace("mcs=17", "mcs=seventeen")
        with pytest.raises(LogFormatError):
            XcalKpiRecord.from_line(line)


class TestSignalingRecord:
    def test_round_trip(self):
        record = SignalingRecord(TS, "HO_START", "V-LTE-000001", "V-LTE-000002")
        assert SignalingRecord.from_line(record.to_line()) == record

    def test_rejects_unknown_event(self):
        line = SignalingRecord(TS, "HO_END", "a", "b").to_line().replace("HO_END", "REBOOT")
        with pytest.raises(LogFormatError):
            SignalingRecord.from_line(line)


class TestDrmFile:
    def make(self):
        drm = DrmFile(
            operator=Operator.TMOBILE,
            test_label="dl_tput",
            start_local=datetime(2022, 8, 10, 9, 30, 0),
        )
        drm.kpi_records = [kpi(), kpi(mcs=20)]
        drm.signaling_records = [SignalingRecord(TS, "HO_START", "a", "b")]
        return drm

    def test_filename_convention(self):
        assert self.make().filename == "20220810_093000_dl_tput_T.drm"

    def test_round_trip(self):
        drm = self.make()
        parsed = DrmFile.parse(drm.filename, drm.serialize())
        assert parsed.operator is Operator.TMOBILE
        assert parsed.test_label == "dl_tput"
        assert parsed.start_local == drm.start_local
        assert parsed.kpi_records == drm.kpi_records
        assert parsed.signaling_records == drm.signaling_records

    def test_records_sorted_by_time(self):
        drm = self.make()
        drm.signaling_records = []
        drm.kpi_records = [kpi(timestamp_edt=datetime(2022, 8, 10, 15, 0, 1)),
                           kpi(timestamp_edt=datetime(2022, 8, 10, 14, 59, 59))]
        body = drm.serialize()
        lines = [l for l in body.splitlines() if not l.startswith("#")]
        assert "14:59:59" in lines[0]

    def test_rejects_bad_filename(self):
        with pytest.raises(LogFormatError):
            DrmFile.parse("garbage.drm", "# XCAL\n")
        with pytest.raises(LogFormatError):
            DrmFile.parse("20220810_093000_dl_tput_Z.drm", "#\n")

    def test_rejects_unknown_record(self):
        drm = self.make()
        with pytest.raises(LogFormatError):
            DrmFile.parse(drm.filename, "junk|WHAT|x=1\n")


class TestAppLogFile:
    def make(self, convention):
        log = AppLogFile(
            operator=Operator.VERIZON,
            test_label="rtt",
            start_utc=datetime(2022, 8, 10, 18, 30, 0),
            convention=convention,
            utc_offset_hours=-6,
        )
        log.samples = [(0.0, 55.1), (0.2, 61.3), (0.4, 48.8)]
        return log

    @pytest.mark.parametrize("convention", list(TimestampConvention))
    def test_round_trip(self, convention):
        log = self.make(convention)
        parsed = AppLogFile.parse(log.filename, log.serialize(), log.utc_offset_hours)
        assert parsed.operator is Operator.VERIZON
        assert parsed.convention is convention
        assert len(parsed.samples) == 3
        for (o1, v1), (o2, v2) in zip(parsed.samples, log.samples):
            assert o1 == pytest.approx(o2, abs=0.01)
            assert v1 == pytest.approx(v2)

    def test_local_wall_lines_differ_from_utc(self):
        utc_log = self.make(TimestampConvention.UTC_EPOCH).serialize()
        local_log = self.make(TimestampConvention.LOCAL_WALL).serialize()
        assert utc_log != local_log

    def test_rejects_bad_header(self):
        log = self.make(TimestampConvention.UTC_EPOCH)
        with pytest.raises(LogFormatError):
            AppLogFile.parse(log.filename, "no header\n1|2\n", -6)

    def test_rejects_bad_filename(self):
        with pytest.raises(LogFormatError):
            AppLogFile.parse("x.log", "# applog fmt=utc_epoch\n", -6)
