"""Carrier-aggregation model."""

import numpy as np
import pytest

from repro.radio.ca import (
    CarrierAggregationModel,
    Direction,
    aggregate_capacity_factor,
    secondary_cc_factor,
)
from repro.radio.operators import Operator
from repro.radio.technology import RadioTechnology


class TestSecondaryFactors:
    def test_primary_is_one(self):
        assert secondary_cc_factor(0) == 1.0

    def test_diminishing(self):
        factors = [secondary_cc_factor(i) for i in range(6)]
        assert factors == sorted(factors, reverse=True)

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            secondary_cc_factor(-1)

    def test_aggregate_single(self):
        assert aggregate_capacity_factor(1) == 1.0

    def test_aggregate_monotone(self):
        values = [aggregate_capacity_factor(n) for n in range(1, 8)]
        assert values == sorted(values)

    def test_aggregate_subadditive(self):
        assert aggregate_capacity_factor(4) < 4.0

    def test_aggregate_rejects_zero(self):
        with pytest.raises(ValueError):
            aggregate_capacity_factor(0)


class TestDrawCcs:
    def test_lte_is_single_carrier(self, rng):
        model = CarrierAggregationModel(rng)
        for op in Operator:
            assert model.draw_ccs(op, RadioTechnology.LTE, Direction.DOWNLINK) == 1

    def test_lte_a_always_aggregates_downlink(self, rng):
        model = CarrierAggregationModel(rng)
        for _ in range(100):
            assert model.draw_ccs(Operator.ATT, RadioTechnology.LTE_A, Direction.DOWNLINK) >= 2

    def test_verizon_rarely_aggregates_uplink(self, rng):
        """§5.5: 'Verizon rarely uses CA in the uplink'."""
        model = CarrierAggregationModel(rng)
        draws = [
            model.draw_ccs(Operator.VERIZON, RadioTechnology.NR_MID, Direction.UPLINK)
            for _ in range(500)
        ]
        assert draws.count(1) / len(draws) > 0.85

    def test_tmobile_often_two_uplink_carriers(self, rng):
        """§5.5: 'T-Mobile often aggregates 2 carriers in the uplink'."""
        model = CarrierAggregationModel(rng)
        draws = [
            model.draw_ccs(Operator.TMOBILE, RadioTechnology.NR_MID, Direction.UPLINK)
            for _ in range(500)
        ]
        assert draws.count(2) / len(draws) > 0.5

    def test_uplink_never_exceeds_two(self, rng):
        # The S21 supports at most 2 UL CCs (§B).
        model = CarrierAggregationModel(rng)
        for op in Operator:
            for tech in RadioTechnology:
                for _ in range(50):
                    assert model.draw_ccs(op, tech, Direction.UPLINK) <= 2

    def test_unknown_direction_rejected(self, rng):
        with pytest.raises(ValueError):
            CarrierAggregationModel(rng).draw_ccs(
                Operator.VERIZON, RadioTechnology.LTE, "sideways"
            )
