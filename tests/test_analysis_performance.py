"""§5.1-5.4 performance analyses (Figs. 3-6)."""

import pytest

from repro.analysis import geodiversity, opdiversity, performance
from repro.analysis.opdiversity import OPERATOR_PAIRS, TECH_BINS
from repro.geo.timezones import Timezone
from repro.net.servers import ServerKind
from repro.radio.operators import Operator
from repro.radio.technology import RadioTechnology


class TestStaticVsDriving:
    def test_driving_throughput_collapses(self, dataset):
        """Fig. 3: driving medians are a few percent of static medians."""
        for op in Operator:
            r = performance.static_vs_driving(dataset, op)
            assert r.driving_dl.median < r.static_dl.median * 0.25
            assert r.driving_ul.median < r.static_ul.median * 0.5

    def test_driving_rtt_inflates(self, dataset):
        for op in Operator:
            r = performance.static_vs_driving(dataset, op)
            assert r.driving_rtt.median > r.static_rtt.median

    def test_verizon_static_dl_band(self, dataset):
        """Fig. 3a: Verizon's static DL median ≈1.5 Gbps."""
        r = performance.static_vs_driving(dataset, Operator.VERIZON)
        assert 800.0 < r.static_dl.median < 2500.0

    def test_static_ul_order_of_magnitude_below_dl(self, dataset):
        for op in Operator:
            r = performance.static_vs_driving(dataset, op)
            assert r.static_ul.median < r.static_dl.median / 3.0

    def test_significant_sub_5mbps_fraction_driving(self, dataset):
        """§5.1: a large fraction of driving samples sit below 5 Mbps."""
        fractions = [
            performance.static_vs_driving(dataset, op).driving_dl.prob_below(5.0)
            for op in Operator
        ]
        assert max(fractions) > 0.2

    def test_driving_rtt_heavy_tail(self, dataset):
        r = performance.static_vs_driving(dataset, Operator.TMOBILE)
        assert r.driving_rtt.maximum > 300.0


class TestPerTechnology:
    def test_5g_beats_4g_downlink(self, dataset):
        """Fig. 4: 5G achieves higher throughput than 4G overall."""
        cdfs = performance.per_technology_throughput(dataset, Operator.TMOBILE, "downlink")
        if RadioTechnology.NR_MID in cdfs and RadioTechnology.LTE in cdfs:
            assert cdfs[RadioTechnology.NR_MID].quantile(0.9) > cdfs[RadioTechnology.LTE].quantile(0.9)

    def test_every_tech_has_low_samples(self, dataset):
        """Fig. 4: every technology's CDF has a deep low-throughput tail."""
        cdfs = performance.per_technology_throughput(dataset, Operator.TMOBILE, "downlink")
        for cdf in cdfs.values():
            assert cdf.prob_below(10.0) > 0.05

    def test_rtt_mid_beats_low_and_4g(self, dataset):
        """Fig. 4: 5G midband RTT < 5G-low and 4G RTTs."""
        cdfs = performance.per_technology_rtt(dataset, Operator.TMOBILE)
        if RadioTechnology.NR_MID in cdfs and RadioTechnology.LTE in cdfs:
            assert cdfs[RadioTechnology.NR_MID].median < cdfs[RadioTechnology.LTE].median

    def test_edge_vs_cloud_rtt_gap(self, dataset):
        """§5.2: the Wavelength edge brings a significant RTT improvement."""
        by_kind = performance.edge_vs_cloud_rtt(dataset)
        if ServerKind.EDGE in by_kind and ServerKind.CLOUD in by_kind:
            shared = set(by_kind[ServerKind.EDGE]) & set(by_kind[ServerKind.CLOUD])
            assert shared
            tech = next(iter(shared))
            assert (
                by_kind[ServerKind.EDGE][tech].median
                < by_kind[ServerKind.CLOUD][tech].median
            )


class TestGeoDiversity:
    def test_all_zones_have_cdfs(self, dataset):
        by_tz = geodiversity.throughput_by_timezone(dataset, Operator.TMOBILE, "downlink")
        assert set(by_tz) == set(Timezone)

    def test_medians_vary_across_zones(self, dataset):
        by_tz = geodiversity.throughput_by_timezone(dataset, Operator.ATT, "downlink")
        medians = [cdf.median for cdf in by_tz.values()]
        assert max(medians) > min(medians) * 1.2


class TestOperatorDiversity:
    def test_differences_have_both_signs(self, dataset):
        """Fig. 6a: either operator can win at a given location."""
        for first, second in OPERATOR_PAIRS:
            pd = opdiversity.paired_throughput_differences(dataset, first, second, "downlink")
            wins = pd.first_wins_fraction()
            assert 0.05 < wins < 0.95

    def test_bins_partition(self, dataset):
        pd = opdiversity.paired_throughput_differences(
            dataset, Operator.VERIZON, Operator.TMOBILE, "downlink"
        )
        fractions = pd.bin_fractions()
        assert set(fractions) == set(TECH_BINS)
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_lt_lt_dominates_uplink(self, dataset):
        """§5.4: most uplink samples fall in the LT-LT bin."""
        pd = opdiversity.paired_throughput_differences(
            dataset, Operator.ATT, Operator.VERIZON, "uplink"
        )
        assert pd.bin_fractions()["LT-LT"] > 0.5

    def test_concurrency_produced_pairs(self, dataset):
        pd = opdiversity.paired_throughput_differences(
            dataset, Operator.VERIZON, Operator.TMOBILE, "downlink"
        )
        # Concurrent testing means (almost) every sample pairs up.
        n_samples = len(dataset.tput(operator=Operator.VERIZON, direction="downlink", static=False))
        assert len(pd.differences) > n_samples * 0.9

    def test_multi_operator_gain(self, dataset):
        """Recommendation #2: aggregating operators helps everyone."""
        gains = opdiversity.multi_operator_gain(dataset, "downlink")
        assert set(gains) == set(Operator)
        for gain in gains.values():
            assert gain >= 1.0
        assert max(gains.values()) > 1.3
