"""Property-based round-trip fuzzing of the columnar store.

Instead of hand-picked examples, these tests drive the encode → write →
mmap → decode pipeline with seeded-random column mixes — dictionary, RLE,
and plain codecs; NaN/±inf floats; extreme int64 values; empty partitions —
and assert two properties everywhere:

* **value exactness** — every decoded value equals the one encoded, with
  NaN-aware float comparison (the format's contract is bit-stable floats);
* **tight footer stats** — the pushdown stats in the footer equal the true
  null count and finite min/max of the data, never merely bounding them.

Randomness comes from seeded :mod:`random` generators only (no new deps),
so every case is reproducible from the printed seed.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.campaign.dataset import (
    DriveDataset,
    GamingRunResult,
    HandoverRecord,
    OffloadRunResult,
    PassiveCoverageSegment,
    RttSample,
    TestRecord,
    ThroughputSample,
    VideoRunResult,
)
from repro.campaign.tests import TestType
from repro.errors import StoreError
from repro.geo.regions import RegionType
from repro.geo.timezones import Timezone
from repro.mobility.events import HandoverEvent
from repro.net.servers import ServerKind
from repro.radio.cells import CellId
from repro.radio.operators import Operator
from repro.radio.technology import RadioTechnology
from repro.store.columnar import (
    TABLE_ATTRS,
    TABLE_SCHEMAS,
    ColumnSpec,
    decode_column,
    decode_dict_column,
    encode_column,
)
from repro.store.format import read_dataset, write_dataset

N_CASES = 25  # seeded cases per property; each case is a fresh random column

_SPECIALS = (
    float("nan"),
    float("inf"),
    float("-inf"),
    0.0,
    -0.0,
    5e-324,          # smallest subnormal
    1.7976931348623157e308,
)


def _float_eq(a: float, b: float) -> bool:
    """Value-exact float equality where NaN == NaN and -0.0 != 0.0 is fine."""
    if math.isnan(a) or math.isnan(b):
        return math.isnan(a) and math.isnan(b)
    return a == b


def _seq_eq(decoded, original) -> bool:
    if len(decoded) != len(original):
        return False
    return all(
        _float_eq(d, o) if isinstance(o, float) else d == o
        for d, o in zip(decoded, original)
    )


def _roundtrip(spec: ColumnSpec, values: list):
    """encode → footer entry → decode, as the file reader would."""
    enc = encode_column(spec, values)
    entry = enc.footer_entry(offset=0)
    assert entry["count"] == len(values)
    assert entry["nbytes"] == len(enc.payload)
    return enc, entry, decode_column(entry, enc.payload)


def _random_floats(rng: random.Random, n: int) -> list[float]:
    out = []
    for _ in range(n):
        roll = rng.random()
        if roll < 0.25:
            out.append(rng.choice(_SPECIALS))
        elif roll < 0.5:
            out.append(rng.uniform(-1e6, 1e6))
        else:
            # Raw 53-bit-mantissa noise: exercises full double precision.
            out.append(rng.random() * 10 ** rng.randint(-300, 300))
    return out


class TestFloatColumns:
    def test_roundtrip_with_nan_and_inf(self):
        spec = ColumnSpec("x", "f8")
        for seed in range(N_CASES):
            rng = random.Random(seed)
            values = _random_floats(rng, rng.randint(1, 200))
            enc, _, decoded = _roundtrip(spec, values)
            assert enc.codec == "plain"
            assert _seq_eq(decoded.tolist(), values), f"seed {seed}"

    def test_stats_are_tight(self):
        spec = ColumnSpec("x", "f8")
        for seed in range(N_CASES):
            rng = random.Random(1000 + seed)
            values = _random_floats(rng, rng.randint(1, 200))
            enc = encode_column(spec, values)
            finite = [v for v in values if math.isfinite(v)]
            assert enc.stats.nulls == sum(math.isnan(v) for v in values)
            if finite:
                assert enc.stats.min == min(finite)
                assert enc.stats.max == max(finite)
            else:
                assert enc.stats.min is None and enc.stats.max is None

    def test_all_nan_column_has_null_stats(self):
        enc = encode_column(ColumnSpec("x", "f8"), [float("nan")] * 7)
        assert enc.stats.nulls == 7
        assert enc.stats.min is None and enc.stats.max is None

    def test_inf_only_column_has_no_finite_bounds(self):
        enc = encode_column(
            ColumnSpec("x", "f8"), [float("inf"), float("-inf")]
        )
        assert enc.stats.nulls == 0
        assert enc.stats.min is None and enc.stats.max is None


class TestIntColumns:
    def test_high_entropy_roundtrip_stays_plain(self):
        spec = ColumnSpec("x", "i8")
        lo, hi = -(2**63), 2**63 - 1
        for seed in range(N_CASES):
            rng = random.Random(seed)
            values = [rng.randint(lo, hi) for _ in range(rng.randint(2, 150))]
            enc, _, decoded = _roundtrip(spec, values)
            assert enc.codec == "plain"  # random 64-bit ints never RLE-win
            assert decoded.tolist() == values, f"seed {seed}"
            assert enc.stats.min == min(values)
            assert enc.stats.max == max(values)

    def test_runny_columns_roundtrip_via_rle(self):
        spec = ColumnSpec("x", "i8")
        for seed in range(N_CASES):
            rng = random.Random(seed)
            values: list[int] = []
            for _ in range(rng.randint(1, 6)):
                values.extend([rng.randint(-5, 5)] * rng.randint(20, 120))
            enc, _, decoded = _roundtrip(spec, values)
            assert enc.codec == "rle", f"seed {seed}"
            assert decoded.tolist() == values, f"seed {seed}"

    def test_codec_choice_is_size_optimal(self):
        """The encoder must pick whichever codec is strictly smaller."""
        spec = ColumnSpec("x", "i8")
        for seed in range(N_CASES):
            rng = random.Random(seed)
            # Mixed regime: runs of random length 1..40 — straddles the
            # RLE-vs-plain break-even point both ways.
            values: list[int] = []
            while len(values) < 100:
                values.extend([rng.randint(0, 3)] * rng.randint(1, 40))
            enc = encode_column(spec, values)
            runs = 1 + sum(
                1 for a, b in zip(values, values[1:]) if a != b
            )
            rle_bytes = runs * (4 + 8)
            plain_bytes = len(values) * 8
            expected = "rle" if rle_bytes < plain_bytes else "plain"
            assert enc.codec == expected, f"seed {seed}"
            assert len(enc.payload) == min(rle_bytes, plain_bytes)

    def test_large_int_stats_stay_exact(self):
        # A float cast would round these; the footer must not.
        values = [2**62 + 1, 2**62 + 3]
        enc = encode_column(ColumnSpec("x", "i8"), values)
        assert enc.stats.min == values[0]
        assert enc.stats.max == values[1]


class TestBoolColumns:
    def test_random_bools_roundtrip(self):
        spec = ColumnSpec("x", "bool")
        for seed in range(N_CASES):
            rng = random.Random(seed)
            values = [rng.random() < 0.5 for _ in range(rng.randint(1, 300))]
            _, _, decoded = _roundtrip(spec, values)
            assert [bool(v) for v in decoded.tolist()] == values, f"seed {seed}"

    def test_constant_column_compresses_to_one_run(self):
        enc, _, decoded = _roundtrip(ColumnSpec("x", "bool"), [True] * 500)
        assert enc.codec == "rle"
        assert len(enc.payload) == 4 + 1  # one (run, value) pair
        assert decoded.tolist() == [1] * 500


class TestDictColumns:
    def test_roundtrip_and_first_appearance_order(self):
        spec = ColumnSpec("x", "dict")
        for seed in range(N_CASES):
            rng = random.Random(seed)
            alphabet = [f"v{i}" for i in range(rng.randint(1, 30))]
            values = [rng.choice(alphabet) for _ in range(rng.randint(1, 200))]
            enc, entry, _ = _roundtrip(spec, values)
            assert decode_dict_column(entry, enc.payload) == values, f"seed {seed}"
            seen: list[str] = []
            for v in values:
                if v not in seen:
                    seen.append(v)
            assert list(enc.values) == seen

    def test_code_width_tracks_cardinality(self):
        spec = ColumnSpec("x", "dict")
        small = encode_column(spec, [f"v{i}" for i in range(255)])
        assert small.width == 1
        wide_values = [f"v{i}" for i in range(256)]
        wide = encode_column(spec, wide_values)
        assert wide.width == 2
        entry = wide.footer_entry(0)
        assert decode_dict_column(entry, wide.payload) == wide_values

    def test_enum_members_encode_by_name(self):
        values = [Operator.ATT, Operator.VERIZON, Operator.ATT]
        enc, entry, _ = _roundtrip(ColumnSpec("operator", "dict"), values)
        assert list(enc.values) == ["ATT", "VERIZON"]
        assert decode_dict_column(entry, enc.payload) == [
            "ATT", "VERIZON", "ATT",
        ]


class TestEmptyColumns:
    @pytest.mark.parametrize("kind", ["f8", "i8", "bool", "dict"])
    def test_empty_column_roundtrip(self, kind):
        enc, entry, decoded = _roundtrip(ColumnSpec("x", kind), [])
        assert enc.count == 0
        assert decoded.size == 0
        assert enc.stats.nulls == 0
        assert enc.stats.min is None and enc.stats.max is None
        if kind == "dict":
            assert decode_dict_column(entry, enc.payload) == []


class TestTruncationDetection:
    """A corrupted payload must fail loudly, never decode to garbage."""

    def test_truncated_plain_payload_raises(self):
        enc = encode_column(ColumnSpec("x", "f8"), [1.0, 2.0, 3.0])
        entry = enc.footer_entry(0)
        with pytest.raises(StoreError):
            decode_column(entry, enc.payload[:-3])

    def test_truncated_rle_payload_raises(self):
        enc = encode_column(ColumnSpec("x", "i8"), [7] * 100)
        assert enc.codec == "rle"
        entry = enc.footer_entry(0)
        with pytest.raises(StoreError):
            decode_column(entry, enc.payload[:-1])

    def test_rle_count_mismatch_raises(self):
        enc = encode_column(ColumnSpec("x", "i8"), [7] * 100)
        entry = enc.footer_entry(0)
        entry["count"] = 99
        with pytest.raises(StoreError):
            decode_column(entry, enc.payload)


# -- file-level round trips ----------------------------------------------------


def _random_dataset(
    rng: random.Random, empty_tables: frozenset[str] = frozenset()
) -> DriveDataset:
    """A dataset with randomized values, including NaN/±inf floats."""

    def f(lo: float = -1e4, hi: float = 1e4) -> float:
        roll = rng.random()
        if roll < 0.1:
            return rng.choice(_SPECIALS)
        return rng.uniform(lo, hi)

    def pick(options):
        return rng.choice(list(options))

    def n_rows(table: str) -> int:
        return 0 if table in empty_tables else rng.randint(1, 25)

    def cell() -> CellId:
        return CellId(pick(Operator), pick(RadioTechnology), rng.randint(0, 999))

    ds = DriveDataset(
        seed=rng.randint(0, 10_000),
        scale=rng.random(),
        route_length_km=rng.uniform(1.0, 5000.0),
        passive_handover_counts={op: rng.randint(0, 500) for op in Operator},
        connected_cells={op: rng.randint(0, 900) for op in Operator},
    )
    for _ in range(n_rows("tput")):
        ds.throughput_samples.append(ThroughputSample(
            test_id=rng.randint(0, 500), operator=pick(Operator),
            direction=pick(("uplink", "downlink")), time_s=f(), mark_m=f(),
            speed_mph=f(0, 90), region=pick(RegionType),
            timezone=pick(Timezone), tech=pick(RadioTechnology),
            rsrp_dbm=f(-140, -40), mcs=rng.randint(0, 28),
            bler=f(0, 1), n_ccs=rng.randint(1, 8), tput_mbps=f(0, 2000),
            server_kind=pick(ServerKind), ho_count=rng.randint(0, 9),
            static=rng.random() < 0.5,
        ))
    for _ in range(n_rows("rtt")):
        ds.rtt_samples.append(RttSample(
            test_id=rng.randint(0, 500), operator=pick(Operator),
            time_s=f(), mark_m=f(), speed_mph=f(0, 90),
            region=pick(RegionType), timezone=pick(Timezone),
            tech=pick(RadioTechnology), rtt_ms=f(1, 500),
            server_kind=pick(ServerKind), static=rng.random() < 0.5,
        ))
    for _ in range(n_rows("test")):
        ds.tests.append(TestRecord(
            test_id=rng.randint(0, 500), test_type=pick(TestType),
            operator=pick(Operator), start_time_s=f(), end_time_s=f(),
            start_mark_m=f(), end_mark_m=f(),
            server_kind=pick(ServerKind), static=rng.random() < 0.5,
        ))
    for _ in range(n_rows("ho")):
        ds.handovers.append(HandoverRecord(
            test_id=rng.randint(0, 500), direction=pick(("uplink", "downlink")),
            event=HandoverEvent(
                operator=pick(Operator), time_s=f(), mark_m=f(),
                duration_ms=rng.uniform(1.0, 4000.0),  # must stay positive
                from_cell=cell(), to_cell=cell(),
                from_tech=pick(RadioTechnology), to_tech=pick(RadioTechnology),
            ),
        ))
    for _ in range(n_rows("passive")):
        start = rng.uniform(0, 1e6)
        ds.passive_coverage.append(PassiveCoverageSegment(
            operator=pick(Operator), start_m=start,
            end_m=start + rng.uniform(0, 1e4), tech=pick(RadioTechnology),
            timezone=pick(Timezone), region=pick(RegionType),
        ))
    for _ in range(n_rows("offload")):
        ds.offload_runs.append(OffloadRunResult(
            app=pick((TestType.AR, TestType.CAV)), test_id=rng.randint(0, 500),
            operator=pick(Operator), server_kind=pick(ServerKind),
            compression=rng.random() < 0.5, mean_e2e_ms=f(1, 500),
            median_e2e_ms=f(1, 500), offload_fps=f(0, 60), map_score=f(0, 1),
            ho_count=rng.randint(0, 9), frac_hs5g=f(0, 1),
            static=rng.random() < 0.5, uplink_megabits=f(0, 1e4),
        ))
    for _ in range(n_rows("video")):
        ds.video_runs.append(VideoRunResult(
            test_id=rng.randint(0, 500), operator=pick(Operator),
            server_kind=pick(ServerKind), qoe=f(0, 5),
            avg_bitrate_mbps=f(0, 200), rebuffer_ratio=f(0, 1),
            ho_count=rng.randint(0, 9), frac_hs5g=f(0, 1),
            static=rng.random() < 0.5, downlink_megabits=f(0, 1e4),
        ))
    for _ in range(n_rows("gaming")):
        ds.gaming_runs.append(GamingRunResult(
            test_id=rng.randint(0, 500), operator=pick(Operator),
            server_kind=pick(ServerKind), avg_bitrate_mbps=f(0, 200),
            median_latency_ms=f(1, 500), p95_latency_ms=f(1, 900),
            frame_drop_rate=f(0, 1), ho_count=rng.randint(0, 9),
            frac_hs5g=f(0, 1), static=rng.random() < 0.5,
            downlink_megabits=f(0, 1e4),
        ))
    return ds


def _assert_datasets_match(original: DriveDataset, rebuilt: DriveDataset):
    """Column-by-column NaN-aware equality of every stored value."""
    assert rebuilt.seed == original.seed
    assert rebuilt.passive_handover_counts == original.passive_handover_counts
    assert rebuilt.connected_cells == original.connected_cells
    for table, attr in TABLE_ATTRS.items():
        schema = TABLE_SCHEMAS[table]
        orig_records = getattr(original, attr)
        new_records = getattr(rebuilt, attr)
        assert len(new_records) == len(orig_records), table
        for spec in schema.columns:
            if spec.derived:
                continue
            get = schema.getters[spec.name]
            assert _seq_eq(
                [get(r) for r in new_records],
                [get(r) for r in orig_records],
            ), f"{table}.{spec.name}"


class TestFileRoundTrip:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_dataset_roundtrips_value_exact(self, seed, tmp_path):
        rng = random.Random(seed)
        # Each case empties a random subset of tables: partitions with zero
        # rows must write and read back as cleanly as populated ones.
        empty = frozenset(
            t for t in TABLE_ATTRS if rng.random() < 0.3
        )
        original = _random_dataset(rng, empty_tables=empty)
        path = tmp_path / f"fuzz-{seed}.rcol"
        write_dataset(original, path)
        _assert_datasets_match(original, read_dataset(path))

    @pytest.mark.parametrize("seed", range(4))
    def test_rewrite_is_byte_stable(self, seed, tmp_path):
        """decode → re-encode reproduces the file byte for byte."""
        original = _random_dataset(random.Random(100 + seed))
        first = tmp_path / "first.rcol"
        second = tmp_path / "second.rcol"
        write_dataset(original, first)
        write_dataset(read_dataset(first), second)
        assert first.read_bytes() == second.read_bytes()

    def test_fully_empty_dataset_roundtrips(self, tmp_path):
        original = DriveDataset(seed=1, scale=0.5, route_length_km=10.0)
        path = tmp_path / "empty.rcol"
        write_dataset(original, path)
        rebuilt = read_dataset(path)
        _assert_datasets_match(original, rebuilt)
        for attr in TABLE_ATTRS.values():
            assert getattr(rebuilt, attr) == []
