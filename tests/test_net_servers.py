"""Server registry: cloud selection by timezone, Verizon edge rule."""

import pytest

from repro.geo.coords import LatLon
from repro.geo.timezones import Timezone
from repro.net.servers import EDGE_CITY_RADIUS_M, ServerKind, ServerRegistry
from repro.radio.operators import Operator


@pytest.fixture(scope="module")
def registry(route):
    return ServerRegistry(route)


class TestCloudSelection:
    def test_west_uses_california(self, registry):
        assert "California" in registry.cloud_for(Timezone.PACIFIC).name
        assert "California" in registry.cloud_for(Timezone.MOUNTAIN).name

    def test_east_uses_ohio(self, registry):
        assert "Ohio" in registry.cloud_for(Timezone.CENTRAL).name
        assert "Ohio" in registry.cloud_for(Timezone.EASTERN).name


class TestEdgeSelection:
    def test_five_edge_servers(self, registry):
        assert len(registry.edge_servers) == 5

    def test_verizon_in_denver_gets_edge(self, registry):
        denver = LatLon(39.7392, -104.9903)
        server = registry.select(Operator.VERIZON, denver, Timezone.MOUNTAIN)
        assert server.kind is ServerKind.EDGE
        assert "Denver" in server.name

    def test_verizon_mid_highway_gets_cloud(self, registry):
        nowhere = LatLon(41.0, -99.0)  # Nebraska
        server = registry.select(Operator.VERIZON, nowhere, Timezone.CENTRAL)
        assert server.kind is ServerKind.CLOUD

    @pytest.mark.parametrize("op", [Operator.TMOBILE, Operator.ATT])
    def test_other_operators_never_get_edge(self, registry, op):
        denver = LatLon(39.7392, -104.9903)
        assert registry.select(op, denver, Timezone.MOUNTAIN).kind is ServerKind.CLOUD

    def test_edge_radius_boundary(self, registry, route):
        chicago = next(c for c in route.cities if c.name == "Chicago")
        far = LatLon(chicago.location.lat + 1.2, chicago.location.lon)  # >60 km away
        assert (
            registry.select(Operator.VERIZON, far, Timezone.CENTRAL).kind
            is ServerKind.CLOUD
        )
        assert EDGE_CITY_RADIUS_M == pytest.approx(60_000.0)
