"""Campaign orchestration (integration-level)."""

import pytest

from repro.campaign.runner import CampaignConfig, DriveCampaign, generate_dataset
from repro.campaign.tests import TEST_DIRECTION, TEST_DURATIONS_S, TEST_TRAFFIC, TestType
from repro.errors import CampaignError
from repro.policy.profiles import TrafficProfile
from repro.radio.operators import Operator


class TestConfig:
    def test_scale_validation(self):
        with pytest.raises(CampaignError):
            CampaignConfig(scale=0.0)
        with pytest.raises(CampaignError):
            CampaignConfig(scale=1.5)

    def test_tick_validation(self):
        with pytest.raises(CampaignError):
            CampaignConfig(tick_s=0.0)

    def test_test_tables_cover_all_types(self):
        assert set(TEST_DURATIONS_S) == set(TestType)
        assert set(TEST_TRAFFIC) == set(TestType)
        assert set(TEST_DIRECTION) == set(TestType)

    def test_throughput_tests_are_backlogged(self):
        assert TEST_TRAFFIC[TestType.DOWNLINK_THROUGHPUT] is TrafficProfile.BACKLOGGED_DL
        assert TEST_TRAFFIC[TestType.UPLINK_THROUGHPUT] is TrafficProfile.BACKLOGGED_UL
        assert TEST_TRAFFIC[TestType.RTT] is TrafficProfile.IDLE_PING


class TestCampaignRun:
    def test_reproducible_across_runs(self):
        ds1 = generate_dataset(seed=5, scale=0.004, include_apps=False, include_static=False)
        ds2 = generate_dataset(seed=5, scale=0.004, include_apps=False, include_static=False)
        assert len(ds1.throughput_samples) == len(ds2.throughput_samples)
        v1 = [s.tput_mbps for s in ds1.throughput_samples[:100]]
        v2 = [s.tput_mbps for s in ds2.throughput_samples[:100]]
        assert v1 == v2

    def test_different_seeds_differ(self):
        ds1 = generate_dataset(seed=5, scale=0.004, include_apps=False, include_static=False)
        ds2 = generate_dataset(seed=6, scale=0.004, include_apps=False, include_static=False)
        v1 = [s.tput_mbps for s in ds1.throughput_samples[:50]]
        v2 = [s.tput_mbps for s in ds2.throughput_samples[:50]]
        assert v1 != v2

    def test_all_operators_tested_concurrently(self, dataset):
        # Every driving DL test window exists for all three operators.
        dl = dataset.tests_of(test_type=TestType.DOWNLINK_THROUGHPUT, static=False)
        by_start = {}
        for t in dl:
            by_start.setdefault(round(t.start_time_s, 1), set()).add(t.operator)
        assert by_start
        assert all(ops == set(Operator) for ops in by_start.values())

    def test_throughput_test_sample_counts(self, dataset):
        grouped = dataset.samples_by_test()
        dl_tests = dataset.tests_of(test_type=TestType.DOWNLINK_THROUGHPUT, static=False)
        for t in dl_tests[:10]:
            assert len(grouped[t.test_id]) == 60  # 30 s at 500 ms

    def test_rtt_test_sample_counts(self, dataset):
        rtt_tests = dataset.tests_of(test_type=TestType.RTT, static=False)
        by_test = {}
        for s in dataset.rtt_samples:
            by_test.setdefault(s.test_id, 0)
            by_test[s.test_id] += 1
        for t in rtt_tests[:10]:
            assert by_test[t.test_id] == 100  # 20 s at 200 ms

    def test_campaign_covers_route(self, dataset):
        marks = [t.end_mark_m for t in dataset.tests]
        assert max(marks) > 5_000_000.0  # reached the east coast

    def test_static_tests_have_zero_distance(self, dataset):
        static = dataset.tests_of(static=True)
        assert static
        for t in static:
            assert t.start_mark_m == t.end_mark_m

    def test_static_tests_use_high_speed_5g(self, dataset):
        """§5.1: static baselines face a mmWave or midband BS."""
        static_samples = dataset.tput(static=True)
        assert static_samples
        assert all(s.tech.is_high_throughput for s in static_samples)

    def test_app_runs_present(self, dataset):
        assert dataset.offload_runs
        assert dataset.video_runs
        assert dataset.gaming_runs

    def test_app_runs_cover_compression_settings(self, dataset):
        flags = {(r.app, r.compression) for r in dataset.offload_runs}
        assert (TestType.AR, True) in flags
        assert (TestType.AR, False) in flags
        assert (TestType.CAV, True) in flags
        assert (TestType.CAV, False) in flags

    def test_passive_coverage_tiles_route(self, dataset, route):
        for op in Operator:
            segs = [s for s in dataset.passive_coverage if s.operator is op]
            total = sum(s.length_m for s in segs)
            assert total == pytest.approx(route.total_length_m, rel=0.01)

    def test_speeds_are_plausible(self, dataset):
        speeds = [s.speed_mph for s in dataset.tput(static=False)]
        assert 0.0 <= min(speeds)
        assert max(speeds) < 110.0

    def test_scale_controls_test_count(self):
        small = generate_dataset(seed=9, scale=0.003, include_apps=False, include_static=False)
        larger = generate_dataset(seed=9, scale=0.009, include_apps=False, include_static=False)
        assert len(larger.tests) > len(small.tests) * 1.5
