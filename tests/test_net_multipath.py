"""Multi-operator multipath aggregation (paper recommendation #2)."""

import numpy as np
import pytest

from repro.net.multipath import MultipathScheduler, simulate_multipath
from repro.radio.operators import Operator


class TestSchedulers:
    def test_aggregate_beats_every_single_path(self, bare_dataset):
        result = simulate_multipath(bare_dataset, "downlink", MultipathScheduler.AGGREGATE)
        for op in Operator:
            assert result.median_gain_over(op) > 1.0

    def test_best_path_at_least_max(self, bare_dataset):
        result = simulate_multipath(bare_dataset, "downlink", MultipathScheduler.BEST_PATH)
        stacked = np.column_stack([result.single_path[op] for op in Operator])
        assert np.allclose(result.throughput_mbps, stacked.max(axis=1))

    def test_aggregate_above_best_path(self, bare_dataset):
        agg = simulate_multipath(bare_dataset, "downlink", MultipathScheduler.AGGREGATE)
        best = simulate_multipath(bare_dataset, "downlink", MultipathScheduler.BEST_PATH)
        # 85% of the pooled capacity still usually beats the single best path.
        assert agg.median_mbps > best.median_mbps

    def test_redundant_equals_best_goodput(self, bare_dataset):
        best = simulate_multipath(bare_dataset, "downlink", MultipathScheduler.BEST_PATH)
        red = simulate_multipath(bare_dataset, "downlink", MultipathScheduler.REDUNDANT)
        assert np.allclose(best.throughput_mbps, red.throughput_mbps)

    def test_outage_fraction_shrinks(self, bare_dataset):
        """The paper's 'below 5 Mbps ~35% of the time' improves sharply."""
        best = simulate_multipath(bare_dataset, "downlink", MultipathScheduler.BEST_PATH)
        singles = [
            float(np.mean(best.single_path[op] < 5.0)) for op in Operator
        ]
        assert best.outage_fraction(5.0) < min(singles)

    def test_uplink_supported(self, bare_dataset):
        result = simulate_multipath(bare_dataset, "uplink", MultipathScheduler.AGGREGATE)
        assert result.median_mbps > 0.0

    def test_sample_alignment(self, bare_dataset):
        result = simulate_multipath(bare_dataset, "downlink")
        n = len(result.throughput_mbps)
        for op in Operator:
            assert len(result.single_path[op]) == n
        assert n > 100
