"""Property-based tests (hypothesis) on core data structures and invariants."""

import math

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.analysis.cdf import EmpiricalCDF
from repro.apps.accuracy import MAP_FLOOR, map_for_latency
from repro.apps.schedule import LinkSchedule
from repro.apps.video import VideoConfig, bba_select_bitrate
from repro.geo.coords import LatLon, haversine_m, interpolate, offset_m
from repro.geo.route import build_cross_country_route
from repro.radio.ca import aggregate_capacity_factor
from repro.radio.technology import RadioTechnology
from repro.rng import clamp
from repro.units import (
    bps_to_mbps,
    dbm_to_mw,
    mbps_to_bps,
    meters_to_miles,
    miles_to_meters,
    mph_to_mps,
    mps_to_mph,
    mw_to_dbm,
    speed_bin,
)

finite = st.floats(allow_nan=False, allow_infinity=False)
lat = st.floats(min_value=-89.9, max_value=89.9)
lon = st.floats(min_value=-179.9, max_value=179.9)
points = st.builds(LatLon, lat=lat, lon=lon)

_ROUTE = build_cross_country_route()


class TestUnitProperties:
    @given(st.floats(min_value=0.0, max_value=1e9))
    def test_distance_round_trip(self, miles):
        assert math.isclose(meters_to_miles(miles_to_meters(miles)), miles, rel_tol=1e-12, abs_tol=1e-9)

    @given(st.floats(min_value=0.0, max_value=1e6))
    def test_speed_round_trip(self, mph):
        assert math.isclose(mps_to_mph(mph_to_mps(mph)), mph, rel_tol=1e-12, abs_tol=1e-9)

    @given(st.floats(min_value=0.0, max_value=1e12))
    def test_rate_round_trip(self, mbps):
        assert math.isclose(bps_to_mbps(mbps_to_bps(mbps)), mbps, rel_tol=1e-12, abs_tol=1e-9)

    @given(st.floats(min_value=-150.0, max_value=60.0))
    def test_power_round_trip(self, dbm):
        assert math.isclose(mw_to_dbm(dbm_to_mw(dbm)), dbm, rel_tol=1e-9, abs_tol=1e-9)

    @given(st.floats(min_value=0.0, max_value=500.0))
    def test_speed_bin_total(self, mph):
        assert speed_bin(mph) in ("0-20 mph", "20-60 mph", "60+ mph")

    @given(finite, st.floats(min_value=-100, max_value=0), st.floats(min_value=0, max_value=100))
    def test_clamp_bounds(self, x, lo, hi):
        assert lo <= clamp(x, lo, hi) <= hi


class TestGeoProperties:
    @given(points, points)
    def test_haversine_symmetric(self, a, b):
        assert math.isclose(haversine_m(a, b), haversine_m(b, a), rel_tol=1e-9, abs_tol=1e-6)

    @given(points, points)
    def test_haversine_nonnegative(self, a, b):
        assert haversine_m(a, b) >= 0.0

    @given(points, points, points)
    def test_haversine_triangle_inequality(self, a, b, c):
        assert haversine_m(a, c) <= haversine_m(a, b) + haversine_m(b, c) + 1e-6

    @given(points, points, st.floats(min_value=0.0, max_value=1.0))
    def test_interpolation_stays_in_box(self, a, b, f):
        p = interpolate(a, b, f)
        assert min(a.lat, b.lat) - 1e-9 <= p.lat <= max(a.lat, b.lat) + 1e-9
        assert min(a.lon, b.lon) - 1e-9 <= p.lon <= max(a.lon, b.lon) + 1e-9

    @given(
        st.floats(min_value=-80.0, max_value=80.0),
        st.floats(min_value=-179.0, max_value=179.0),
        st.floats(min_value=-5000.0, max_value=5000.0),
        st.floats(min_value=-5000.0, max_value=5000.0),
    )
    def test_offset_distance(self, plat, plon, east, north):
        origin = LatLon(plat, plon)
        target = offset_m(origin, east, north)
        expected = math.hypot(east, north)
        if expected > 10.0:
            assert math.isclose(haversine_m(origin, target), expected, rel_tol=0.05)

    @given(st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=60)
    def test_route_positions_always_resolve(self, fraction):
        mark = fraction * _ROUTE.total_length_m
        pos = _ROUTE.position_at(mark)
        assert pos.distance_m == mark
        assert -90.0 <= pos.point.lat <= 90.0


class TestCdfProperties:
    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=200))
    def test_quantiles_monotone(self, values):
        cdf = EmpiricalCDF.from_values(values)
        qs = [cdf.quantile(q) for q in (0.0, 0.25, 0.5, 0.75, 1.0)]
        assert qs == sorted(qs)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=200), finite)
    def test_prob_below_above_complement(self, values, x):
        cdf = EmpiricalCDF.from_values(values)
        below = cdf.prob_below(x)
        above = cdf.prob_above(x)
        assert 0.0 <= below <= 1.0 and 0.0 <= above <= 1.0
        assert below + above <= 1.0 + 1e-12  # ties excluded from both

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=200))
    def test_min_max_bound_quantiles(self, values):
        cdf = EmpiricalCDF.from_values(values)
        assert cdf.minimum <= cdf.median <= cdf.maximum


class TestAccuracyProperties:
    @given(st.floats(min_value=0.0, max_value=200.0), st.booleans())
    def test_map_in_valid_range(self, frames, compression):
        score = map_for_latency(frames, compression)
        assert MAP_FLOOR <= score <= 38.45

    @given(st.floats(min_value=0.0, max_value=100.0), st.booleans())
    def test_map_weakly_decreasing_over_strides(self, frames, compression):
        assert map_for_latency(frames + 6.0, compression) <= map_for_latency(frames, compression)


class TestBbaProperties:
    @given(st.floats(min_value=0.0, max_value=60.0))
    def test_rate_is_ladder_member(self, buffer_s):
        cfg = VideoConfig()
        assert bba_select_bitrate(buffer_s, cfg) in cfg.bitrates_mbps

    @given(st.floats(min_value=0.0, max_value=59.0), st.floats(min_value=0.0, max_value=1.0))
    def test_rate_monotone_in_buffer(self, buffer_s, delta):
        cfg = VideoConfig()
        assert bba_select_bitrate(buffer_s + delta, cfg) >= bba_select_bitrate(buffer_s, cfg)


class TestCaProperties:
    @given(st.integers(min_value=1, max_value=16))
    def test_aggregate_factor_bounds(self, n):
        factor = aggregate_capacity_factor(n)
        assert 1.0 <= factor <= n


class TestScheduleProperties:
    @given(
        st.lists(st.floats(min_value=0.1, max_value=1000.0), min_size=2, max_size=40),
        st.floats(min_value=0.01, max_value=50.0),
    )
    @settings(max_examples=60)
    def test_transfer_time_consistent_with_rates(self, rates, megabits):
        n = len(rates)
        schedule = LinkSchedule(
            times_s=np.arange(n) * 0.5,
            tick_s=0.5,
            ul_mbps=np.asarray(rates),
            dl_mbps=np.asarray(rates),
            rtt_ms=np.full(n, 50.0),
            techs=(RadioTechnology.LTE,) * n,
        )
        t = schedule.transfer_time_s(0.0, megabits, "uplink")
        max_possible = sum(r * 0.5 for r in rates)
        if megabits <= max_possible:
            assert t > 0.0
            # Bounds from the best and worst constant-rate schedules.
            assert megabits / max(rates) - 1e-6 <= t <= megabits / min(rates) + 1e-6
        else:
            assert math.isinf(t)

    @given(st.floats(min_value=-10.0, max_value=60.0))
    @settings(max_examples=40)
    def test_point_queries_never_fail(self, t):
        schedule = LinkSchedule(
            times_s=np.arange(10) * 0.5,
            tick_s=0.5,
            ul_mbps=np.full(10, 5.0),
            dl_mbps=np.full(10, 20.0),
            rtt_ms=np.full(10, 40.0),
            techs=(RadioTechnology.NR_MID,) * 10,
        )
        assert schedule.ul_rate_at(t) >= 0.0
        assert schedule.dl_rate_at(t) >= 0.0
        assert schedule.rtt_at(t) > 0.0
