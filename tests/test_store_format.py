"""Store file format: exact round-trip, byte stability, corruption safety."""

from __future__ import annotations

import copy

import pytest

from repro.errors import StoreError
from repro.store.format import (
    STORE_MAGIC,
    DatasetReader,
    is_store_file,
    read_dataset,
    write_dataset,
)


@pytest.fixture(scope="module")
def store_file(bare_dataset, tmp_path_factory):
    path = tmp_path_factory.mktemp("store") / "bare.rcol"
    write_dataset(bare_dataset, path)
    return path


class TestRoundTrip:
    def test_every_record_family_value_exact(self, bare_dataset, store_file):
        back = read_dataset(store_file)
        assert back.seed == bare_dataset.seed
        assert back.scale == bare_dataset.scale
        assert back.route_length_km == bare_dataset.route_length_km
        assert back.passive_handover_counts == bare_dataset.passive_handover_counts
        assert back.connected_cells == bare_dataset.connected_cells
        # Frozen slots dataclasses compare field-by-field: equality here is
        # value-for-value across every column, floats bit-for-bit.
        assert back.throughput_samples == bare_dataset.throughput_samples
        assert back.rtt_samples == bare_dataset.rtt_samples
        assert back.tests == bare_dataset.tests
        assert back.handovers == bare_dataset.handovers
        assert back.passive_coverage == bare_dataset.passive_coverage
        assert back.offload_runs == bare_dataset.offload_runs
        assert back.video_runs == bare_dataset.video_runs
        assert back.gaming_runs == bare_dataset.gaming_runs

    def test_full_campaign_dataset_roundtrip(self, dataset, tmp_path):
        # The apps + static dataset exercises every table non-empty.
        path = tmp_path / "full.rcol"
        write_dataset(dataset, path)
        back = read_dataset(path)
        assert back.offload_runs == dataset.offload_runs
        assert back.video_runs == dataset.video_runs
        assert back.gaming_runs == dataset.gaming_runs
        assert back.throughput_samples == dataset.throughput_samples

    def test_byte_stable(self, bare_dataset, store_file, tmp_path):
        again = tmp_path / "again.rcol"
        write_dataset(copy.deepcopy(bare_dataset), again)
        assert again.read_bytes() == store_file.read_bytes()

    def test_is_store_file(self, store_file, tmp_path):
        assert is_store_file(store_file)
        other = tmp_path / "not-a-store.bin"
        other.write_bytes(b"\x1f\x8b some gzip-ish bytes")
        assert not is_store_file(other)
        assert not is_store_file(tmp_path / "missing.rcol")


class TestReader:
    def test_footer_stats_without_decoding(self, store_file, bare_dataset):
        with DatasetReader(store_file) as reader:
            table = reader.table("tput")
            assert table.count == len(bare_dataset.throughput_samples)
            stats = table.stats("tput_mbps")
            values = [s.tput_mbps for s in bare_dataset.throughput_samples]
            assert stats.min == min(values)
            assert stats.max == max(values)
            ops = set(table.dict_values("operator"))
            assert ops == {
                s.operator.name for s in bare_dataset.throughput_samples
            }

    def test_unknown_table_and_column(self, store_file):
        with DatasetReader(store_file) as reader:
            with pytest.raises(StoreError, match="no table"):
                reader.table("nope")
            with pytest.raises(StoreError, match="no column"):
                reader.table("tput").column_entry("nope")

    def test_closed_reader_refuses_reads(self, store_file):
        reader = DatasetReader(store_file)
        reader.close()
        with pytest.raises(StoreError, match="closed"):
            reader.table("tput").array("tput_mbps")


class TestCorruption:
    """Damaged files fail with a clean StoreError — never garbage rows."""

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.rcol"
        path.write_bytes(b"")
        with pytest.raises(StoreError, match="empty"):
            DatasetReader(path)

    def test_bad_magic(self, store_file, tmp_path):
        data = bytearray(store_file.read_bytes())
        data[:8] = b"NOTMAGIC"
        path = tmp_path / "badmagic.rcol"
        path.write_bytes(bytes(data))
        with pytest.raises(StoreError, match="magic"):
            DatasetReader(path)

    @pytest.mark.parametrize("keep_fraction", [0.25, 0.5, 0.9, 0.999])
    def test_truncation_anywhere_is_detected(
        self, store_file, tmp_path, keep_fraction
    ):
        data = store_file.read_bytes()
        cut = tmp_path / f"cut-{keep_fraction}.rcol"
        cut.write_bytes(data[: int(len(data) * keep_fraction)])
        with pytest.raises(StoreError):
            read_dataset(cut)

    def test_truncated_tail_only(self, store_file, tmp_path):
        data = store_file.read_bytes()
        path = tmp_path / "tail.rcol"
        path.write_bytes(data[:-4])
        with pytest.raises(StoreError, match="truncated|corrupt"):
            DatasetReader(path)

    def test_footer_version_mismatch(self, store_file, tmp_path, monkeypatch):
        import repro.store.format as fmt

        monkeypatch.setattr(fmt, "STORE_FORMAT_VERSION", 99)
        with pytest.raises(StoreError, match="unsupported store format"):
            DatasetReader(store_file)

    def test_column_span_outside_data_section(self, bare_dataset, tmp_path):
        # Hand-corrupt the footer so a column claims bytes past the data
        # section; the reader must refuse the slice.
        import json
        import struct

        path = tmp_path / "span.rcol"
        write_dataset(bare_dataset, path)
        data = bytearray(path.read_bytes())
        tail = struct.Struct("<QI4s")
        offset, length, _magic = tail.unpack(data[-tail.size:])
        footer = json.loads(bytes(data[offset: offset + length]))
        footer["tables"]["tput"]["columns"][0]["offset"] = offset + 1
        new_footer = json.dumps(footer, sort_keys=True,
                                separators=(",", ":")).encode()
        rebuilt = (
            bytes(data[:offset]) + new_footer
            + tail.pack(offset, len(new_footer), b"RCOL")
        )
        path.write_bytes(rebuilt)
        with pytest.raises(StoreError, match="outside the data section"):
            with DatasetReader(path) as reader:
                reader.table("tput").array("test_id")

    def test_not_a_store_file_via_load_dataset(self, tmp_path):
        from repro.errors import LogFormatError
        from repro.campaign.persistence import load_dataset

        path = tmp_path / "junk.rcol"
        path.write_bytes(STORE_MAGIC + b"\x00" * 3)  # magic but no tail
        with pytest.raises(StoreError):
            load_dataset(path)
        junk = tmp_path / "junk2.jsonl.gz"
        junk.write_bytes(b"definitely not gzip")
        with pytest.raises((LogFormatError, OSError)):
            load_dataset(junk)
