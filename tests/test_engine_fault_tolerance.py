"""Engine fault tolerance: retries, hard worker deaths, checkpoint resume.

Every recovery path must converge on the byte-identical dataset of a clean
run — fault tolerance may cost time, never correctness.
"""

import gzip
import json

import pytest

from tests.conftest import ENGINE_CAMPAIGN, ENGINE_WINDOW_KM, engine_dataset_bytes
from repro.campaign.runner import CampaignConfig
from repro.engine import (
    EngineConfig,
    FaultSpec,
    PlannerParams,
    run_engine,
)
from repro.engine.checkpoint import CheckpointStore
from repro.errors import EngineError
from repro.obs.report import load_summary, validate_trace
from repro.obs.trace import iter_trace, reset_tracers

PLANNER = PlannerParams(window_km=ENGINE_WINDOW_KM)


def engine_config(**overrides):
    return EngineConfig(campaign=ENGINE_CAMPAIGN, planner=PLANNER, **overrides)


class TestRetries:
    def test_transient_fault_recovers(self, engine_baseline, tmp_path):
        _, base = engine_baseline
        ds, report = run_engine(
            engine_config(
                executor="serial",
                max_retries=2,
                inject_faults={1: FaultSpec(times=2, kind="raise")},
            )
        )
        assert engine_dataset_bytes(ds, tmp_path) == base
        assert report.total_retries >= 2

    def test_transient_fault_recovers_process(self, engine_baseline, tmp_path):
        """Soft (raised) worker faults must be retried under the pool too —
        not just hard deaths: a raise must never abort the whole run while
        retry budget remains."""
        _, base = engine_baseline
        ds, report = run_engine(
            engine_config(
                executor="process",
                workers=2,
                max_retries=2,
                inject_faults={1: FaultSpec(times=2, kind="raise")},
            )
        )
        assert engine_dataset_bytes(ds, tmp_path) == base
        assert report.total_retries >= 2
        if report.executor == "process":  # platform may lack process pools
            assert report.pool_rebuilds == 0

    def test_budget_exhaustion_raises(self):
        with pytest.raises(EngineError) as excinfo:
            run_engine(
                engine_config(
                    executor="serial",
                    max_retries=1,
                    inject_faults={2: FaultSpec(times=5, kind="raise")},
                )
            )
        assert excinfo.value.shard_index == 2

    def test_invalid_fault_spec(self):
        with pytest.raises(EngineError):
            FaultSpec(kind="segfault")
        with pytest.raises(EngineError):
            FaultSpec(times=0)


class TestWorkerDeath:
    def test_pool_rebuilt_after_hard_crash(self, engine_baseline, tmp_path):
        """A worker killed mid-shard (os._exit) must not poison the run."""
        _, base = engine_baseline
        ds, report = run_engine(
            engine_config(
                executor="process",
                workers=2,
                max_retries=2,
                inject_faults={2: FaultSpec(times=1, kind="exit")},
            )
        )
        assert engine_dataset_bytes(ds, tmp_path) == base
        if report.executor == "process":  # platform may lack process pools
            assert report.pool_rebuilds >= 1

    def test_exit_fault_degrades_to_raise_in_process(self, engine_baseline, tmp_path):
        """Under the serial executor the kill becomes a retryable raise."""
        _, base = engine_baseline
        ds, report = run_engine(
            engine_config(
                executor="serial",
                max_retries=1,
                inject_faults={0: FaultSpec(times=1, kind="exit")},
            )
        )
        assert engine_dataset_bytes(ds, tmp_path) == base
        assert report.total_retries >= 1


class TestCheckpointResume:
    def test_resume_after_failed_run(self, engine_baseline, tmp_path):
        _, base = engine_baseline
        ckpt = tmp_path / "ckpt"

        # First run dies on shard 3 with no retry budget, leaving the
        # passive shard and windows 0-2 checkpointed.
        with pytest.raises(EngineError):
            run_engine(
                engine_config(
                    executor="serial",
                    checkpoint_dir=str(ckpt),
                    max_retries=0,
                    inject_faults={3: FaultSpec(times=1, kind="raise")},
                )
            )
        stored = sorted(p.name for p in ckpt.glob("*.ds.gz"))
        assert "shard-passive.ds.gz" in stored
        assert "shard-0000.ds.gz" in stored
        assert "shard-0003.ds.gz" not in stored

        # Second run resumes from the checkpoints and completes cleanly.
        ds, report = run_engine(
            engine_config(executor="serial", checkpoint_dir=str(ckpt))
        )
        assert engine_dataset_bytes(ds, tmp_path) == base
        assert report.checkpoint_hits == len(stored)
        assert report.checkpoint_hits < len(report.shards)

        # Third run is served fully from checkpoints.
        ds, report = run_engine(
            engine_config(executor="serial", checkpoint_dir=str(ckpt))
        )
        assert engine_dataset_bytes(ds, tmp_path) == base
        assert report.checkpoint_hits == len(report.shards)

    def test_foreign_fingerprint_ignored(self, engine_baseline, tmp_path):
        _, base = engine_baseline
        ckpt = tmp_path / "ckpt"
        other = CampaignConfig(
            seed=ENGINE_CAMPAIGN.seed + 1,
            scale=ENGINE_CAMPAIGN.scale,
            include_apps=False,
            include_static=False,
        )
        run_engine(
            EngineConfig(
                campaign=other, planner=PLANNER,
                executor="serial", checkpoint_dir=str(ckpt),
            )
        )
        # Same directory, different seed: every shard must be recomputed
        # and the result must match the clean baseline.
        ds, report = run_engine(
            engine_config(executor="serial", checkpoint_dir=str(ckpt))
        )
        assert engine_dataset_bytes(ds, tmp_path) == base
        assert report.checkpoint_hits == 0

    def test_changed_planner_window_invalidates(self, engine_baseline, tmp_path):
        """A different window decomposition changes the fingerprint, so
        checkpoints from the old decomposition must not be resumed — a
        window boundary shift silently reused would corrupt the merge."""
        _, base = engine_baseline
        ckpt = tmp_path / "ckpt"
        run_engine(
            EngineConfig(
                campaign=ENGINE_CAMPAIGN,
                planner=PlannerParams(window_km=ENGINE_WINDOW_KM * 2),
                executor="serial",
                checkpoint_dir=str(ckpt),
            )
        )
        ds, report = run_engine(
            engine_config(executor="serial", checkpoint_dir=str(ckpt))
        )
        assert engine_dataset_bytes(ds, tmp_path) == base
        assert report.checkpoint_hits == 0

    def test_corrupt_checkpoint_recomputed(self, engine_baseline, tmp_path):
        _, base = engine_baseline
        ckpt = tmp_path / "ckpt"
        run_engine(engine_config(executor="serial", checkpoint_dir=str(ckpt)))

        (ckpt / "shard-0001.ds.gz").write_bytes(b"not a gzip stream")
        with gzip.open(ckpt / "shard-0002.ds.gz", "wb") as fh:
            fh.write(b'{"kind": "header"')  # truncated JSON
        meta = ckpt / "shard-0000.meta.json"
        meta.write_text(json.dumps({"fingerprint": "bogus"}))

        ds, report = run_engine(
            engine_config(executor="serial", checkpoint_dir=str(ckpt))
        )
        assert engine_dataset_bytes(ds, tmp_path) == base
        assert report.checkpoint_hits == len(report.shards) - 3

    def test_checkpoints_survive_mid_batch_failure(self, tmp_path):
        """Shards checkpoint as they finish, not at batch completion."""
        ckpt = tmp_path / "ckpt"
        # One batch holds all windows; the fault hits the last one, so all
        # earlier windows of the *same batch* must already be on disk.
        with pytest.raises(EngineError):
            run_engine(
                engine_config(
                    executor="serial",
                    shards=1,
                    checkpoint_dir=str(ckpt),
                    max_retries=0,
                    inject_faults={9: FaultSpec(times=1, kind="raise")},
                )
            )
        stored = sorted(p.name for p in ckpt.glob("*.ds.gz"))
        assert "shard-0008.ds.gz" in stored
        assert "shard-0009.ds.gz" not in stored


class TestResumeMetricsParity:
    """A resumed traced run must report the same shard-level metrics as an
    uninterrupted one.

    Regression: replayed checkpoint shards used to be dropped from the
    ``EngineReport.metrics`` merge (and their sidecars carried no snapshot
    to merge), so ``engine.shards_computed`` / ``engine.records_generated``
    under-counted after a resume.  Sidecars now persist the snapshot of the
    computation that produced each shard, and the merge folds every shard
    exactly once.
    """

    @pytest.fixture(autouse=True)
    def _fresh_tracers(self):
        yield
        reset_tracers()

    def test_resumed_run_matches_clean_run_metrics(self, tmp_path):
        _, clean = run_engine(
            engine_config(
                executor="serial", trace_path=str(tmp_path / "clean.jsonl")
            )
        )
        ckpt = tmp_path / "ckpt"
        with pytest.raises(EngineError):
            run_engine(
                engine_config(
                    executor="serial",
                    checkpoint_dir=str(ckpt),
                    max_retries=0,
                    inject_faults={3: FaultSpec(times=1, kind="raise")},
                    trace_path=str(tmp_path / "interrupted.jsonl"),
                )
            )
        _, resumed = run_engine(
            engine_config(
                executor="serial",
                checkpoint_dir=str(ckpt),
                trace_path=str(tmp_path / "resumed.jsonl"),
            )
        )
        assert resumed.checkpoint_hits > 0  # the resume actually replayed
        clean_counters = clean.metrics["counters"]
        resumed_counters = resumed.metrics["counters"]
        for key in ("engine.shards_computed", "engine.records_generated"):
            assert resumed_counters[key] == clean_counters[key], key
        # Each shard's wall time entered the histogram exactly once.
        assert (
            resumed.metrics["histograms"]["engine.shard_s"]["count"]
            == clean.metrics["histograms"]["engine.shard_s"]["count"]
        )

    def test_fully_checkpointed_run_matches_clean_run_metrics(self, tmp_path):
        """Even a run served 100% from checkpoints reports full totals."""
        ckpt = tmp_path / "ckpt"
        _, clean = run_engine(
            engine_config(
                executor="serial",
                checkpoint_dir=str(ckpt),
                trace_path=str(tmp_path / "clean.jsonl"),
            )
        )
        _, replayed = run_engine(
            engine_config(
                executor="serial",
                checkpoint_dir=str(ckpt),
                trace_path=str(tmp_path / "replayed.jsonl"),
            )
        )
        assert replayed.checkpoint_hits == len(replayed.shards)
        assert (
            replayed.metrics["counters"]["engine.shards_computed"]
            == clean.metrics["counters"]["engine.shards_computed"]
        )


class TestCheckpointStore:
    def test_load_missing_returns_none(self, tmp_path):
        store = CheckpointStore(tmp_path, "fp")
        assert store.load(0) is None
        assert store.load_all([0, 1, -1]) == {}


class TestTraceIntegrity:
    """Traces written during faulty runs must stay structurally sound.

    Crash tolerance is the trace format's hardest promise: workers that
    raise close their span with ``status="error"``, workers that die
    mid-span contribute nothing, and either way the file parses line by
    line with balanced durations — and its retry accounting agrees with
    the :class:`EngineReport` of the same run.
    """

    @pytest.fixture(autouse=True)
    def _fresh_tracers(self):
        yield
        reset_tracers()

    @staticmethod
    def shard_spans(trace, status):
        return [
            r for r in iter_trace(trace)
            if r["kind"] == "span"
            and r["name"] == "engine.shard"
            and r["status"] == status
        ]

    def test_raise_faults_leave_balanced_trace(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        _, report = run_engine(
            engine_config(
                executor="serial",
                max_retries=2,
                inject_faults={1: FaultSpec(times=2, kind="raise")},
                trace_path=str(trace),
            )
        )
        assert validate_trace(trace) == []
        # Every failed attempt closed its span as an error; the error-span
        # count and the report's retry counter are two views of one number.
        assert len(self.shard_spans(trace, "error")) == report.total_retries
        assert len(self.shard_spans(trace, "ok")) == len(report.shards)

        summary = load_summary(trace)
        (root,) = [r for r in summary.roots if r.name == "engine.run"]
        assert root.status == "ok"
        # The traced run duration IS the report's wall time (same float).
        assert root.dur_s == report.total_wall_s

    def test_killed_worker_leaves_parseable_trace(self, tmp_path):
        """os._exit mid-span: the dying worker's span is simply absent."""
        trace = tmp_path / "trace.jsonl"
        _, report = run_engine(
            engine_config(
                executor="process",
                workers=2,
                max_retries=2,
                inject_faults={2: FaultSpec(times=1, kind="exit")},
                trace_path=str(trace),
            )
        )
        # Parseable and balanced despite a worker dying with the trace
        # file open — a torn line here would fail iter_trace.
        assert validate_trace(trace) == []
        assert len(self.shard_spans(trace, "ok")) == len(report.shards)
        summary = load_summary(trace)
        (root,) = [r for r in summary.roots if r.name == "engine.run"]
        assert root.status == "ok"

    def test_failed_run_closes_root_span_as_error(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        with pytest.raises(EngineError):
            run_engine(
                engine_config(
                    executor="serial",
                    max_retries=0,
                    inject_faults={2: FaultSpec(times=5, kind="raise")},
                    trace_path=str(trace),
                )
            )
        assert validate_trace(trace) == []
        summary = load_summary(trace)
        (root,) = [r for r in summary.roots if r.name == "engine.run"]
        assert root.status == "error"
        assert len(self.shard_spans(trace, "error")) == 1


class TestPoolProbe:
    def test_probe_is_memoized(self, monkeypatch):
        """The availability probe spawns a real pool, so it must run at
        most once per process no matter how many engine runs ask."""
        import repro.engine as engine

        calls = []

        class CountingPool:
            def __init__(self, max_workers=None):
                calls.append(max_workers)

            def __enter__(self):
                return self

            def __exit__(self, *exc):
                return False

            def submit(self, fn, *args):
                class Done:
                    @staticmethod
                    def result():
                        return fn(*args)

                return Done()

        monkeypatch.setattr(engine, "_POOL_PROBE_OK", None)
        monkeypatch.setattr(engine, "ProcessPoolExecutor", CountingPool)
        assert engine.process_pool_usable() is True
        assert engine.process_pool_usable() is True
        assert len(calls) == 1

    def test_cached_verdict_skips_probe(self, monkeypatch):
        import repro.engine as engine

        def explode(*a, **k):
            raise AssertionError("probe pool constructed despite cached verdict")

        monkeypatch.setattr(engine, "_POOL_PROBE_OK", False)
        monkeypatch.setattr(engine, "ProcessPoolExecutor", explode)
        assert engine.process_pool_usable() is False
