"""Dataset containers, filters, and Table 1 statistics."""

import pytest

from repro.campaign.tests import TestType
from repro.radio.operators import Operator
from repro.radio.technology import RadioTechnology


class TestFilters:
    def test_operator_filter(self, dataset):
        samples = dataset.tput(operator=Operator.VERIZON)
        assert samples
        assert all(s.operator is Operator.VERIZON for s in samples)

    def test_direction_filter(self, dataset):
        ul = dataset.tput(direction="uplink")
        assert ul
        assert all(s.direction == "uplink" for s in ul)

    def test_static_filter_partitions(self, dataset):
        total = len(dataset.throughput_samples)
        static = len(dataset.tput(static=True))
        driving = len(dataset.tput(static=False))
        assert static + driving == total
        assert static > 0 and driving > 0

    def test_tech_filter(self, dataset):
        lte = dataset.tput(techs=[RadioTechnology.LTE])
        assert all(s.tech is RadioTechnology.LTE for s in lte)

    def test_values_match_filter(self, dataset):
        samples = dataset.tput(operator=Operator.ATT, direction="downlink")
        values = dataset.tput_values(operator=Operator.ATT, direction="downlink")
        assert len(values) == len(samples)

    def test_rtt_filters(self, dataset):
        rtts = dataset.rtts(operator=Operator.TMOBILE, static=False)
        assert rtts
        assert all(r.operator is Operator.TMOBILE and not r.static for r in rtts)

    def test_tests_of(self, dataset):
        dl = dataset.tests_of(test_type=TestType.DOWNLINK_THROUGHPUT, static=False)
        assert dl
        assert all(t.test_type is TestType.DOWNLINK_THROUGHPUT for t in dl)

    def test_handovers_of(self, dataset):
        hos = dataset.handovers_of(operator=Operator.VERIZON, direction="downlink")
        assert all(
            h.event.operator is Operator.VERIZON and h.direction == "downlink"
            for h in hos
        )

    def test_samples_by_test_time_ordered(self, dataset):
        grouped = dataset.samples_by_test()
        assert grouped
        some = next(iter(grouped.values()))
        times = [s.time_s for s in some]
        assert times == sorted(times)


class TestSummary:
    def test_distance_matches_route(self, dataset):
        assert dataset.summary().total_distance_km == pytest.approx(5712.0, abs=5.0)

    def test_passive_handover_counts_match_table1(self, dataset):
        """Table 1: 2657 (V) / 4119 (T) / 2494 (A) over the whole trip."""
        expected = {Operator.VERIZON: 2657, Operator.TMOBILE: 4119, Operator.ATT: 2494}
        for op, target in expected.items():
            assert target * 0.7 < dataset.passive_handover_counts[op] < target * 1.3

    def test_tmobile_most_handovers(self, dataset):
        s = dataset.summary()
        assert s.handovers[Operator.TMOBILE] > s.handovers[Operator.VERIZON]
        assert s.handovers[Operator.TMOBILE] > s.handovers[Operator.ATT]

    def test_unique_cells_in_thousands(self, dataset):
        for op in Operator:
            assert dataset.connected_cells[op] > 1000

    def test_rx_dwarfs_tx(self, dataset):
        """Table 1: 777 GB received vs 83 GB transmitted (~9:1)."""
        s = dataset.summary()
        assert s.total_rx_gb > s.total_tx_gb * 2.5

    def test_runtime_positive_for_all(self, dataset):
        s = dataset.summary()
        for op in Operator:
            assert s.runtime_min[op] > 0.0

    def test_all_test_types_ran(self, dataset):
        s = dataset.summary()
        assert set(s.test_counts) == set(TestType)

    def test_data_volume_consistency(self, dataset):
        rx, tx = dataset.data_volume_bytes()
        assert rx > 0 and tx > 0
