"""UESession: the per-tick radio stack (the phone + XCAL Solo)."""

import numpy as np
import pytest

from repro.campaign.link import UESession
from repro.geo.route import build_cross_country_route
from repro.geo.timezones import Timezone
from repro.net.servers import Server, ServerKind
from repro.geo.coords import LatLon
from repro.policy.profiles import (
    DEFAULT_POLICY_PROFILES,
    PolicyProfile,
    TrafficProfile,
)
from repro.radio.ca import Direction
from repro.radio.deployment import DeploymentModel
from repro.radio.operators import Operator
from repro.radio.technology import RadioTechnology
from repro.rng import RngFactory

CLOUD = Server("cloud", ServerKind.CLOUD, LatLon(37.35, -121.96))


@pytest.fixture(scope="module")
def session(route):
    deployment = DeploymentModel.build(
        Operator.TMOBILE, route, np.random.default_rng(77)
    )
    return UESession(Operator.TMOBILE, deployment, RngFactory(seed=77)), route


def _tick(session, route, mark=500_000.0, traffic=TrafficProfile.BACKLOGGED_DL,
          direction=Direction.DOWNLINK, t=0.0, speed=65.0):
    position = route.position_at(mark)
    return session.tick(t, position, speed, traffic, direction, CLOUD)


class TestTick:
    def test_fields_populated(self, session):
        ue, route = session
        tick = _tick(ue, route)
        assert tick.capacity_dl_mbps > 0.0
        assert tick.capacity_ul_mbps > 0.0
        assert tick.rtt_ms > 0.0
        assert -135.0 <= tick.rsrp_dbm <= -45.0
        assert 0 <= tick.mcs <= 28
        assert 0.0 < tick.bler < 1.0
        assert tick.n_ccs >= 1

    def test_capacity_direction_accessor(self, session):
        ue, route = session
        tick = _tick(ue, route)
        assert tick.capacity_mbps(Direction.DOWNLINK) == tick.capacity_dl_mbps
        assert tick.capacity_mbps(Direction.UPLINK) == tick.capacity_ul_mbps

    def test_uplink_below_downlink_typically(self, session):
        ue, route = session
        ratios = []
        for i in range(60):
            tick = _tick(ue, route, mark=400_000.0 + i * 200.0, t=i * 0.5)
            ratios.append(tick.capacity_ul_mbps / tick.capacity_dl_mbps)
        assert float(np.median(ratios)) < 1.0

    def test_serving_tech_matches_zone_policy(self, session):
        ue, route = session
        tick = _tick(ue, route, traffic=TrafficProfile.BACKLOGGED_DL)
        zone = ue.deployment.zone_at(tick.mark_m)
        assert tick.tech in zone.deployed

    def test_sticky_ca_within_zone(self, session):
        ue, route = session
        mark = 1_000_000.0
        zone = ue.deployment.zone_at(mark)
        first = _tick(ue, route, mark=zone.start_m + 10.0)
        second = _tick(ue, route, mark=min(zone.end_m - 10.0, zone.start_m + 50.0))
        if first.tech is second.tech:
            assert first.n_ccs == second.n_ccs

    def test_handover_on_zone_crossing(self, session):
        ue, route = session
        ue.handover_engine.reset_serving()
        mark = 2_000_000.0
        zone = ue.deployment.zone_at(mark)
        _tick(ue, route, mark=zone.end_m - 5.0, t=100.0)
        tick = _tick(ue, route, mark=zone.end_m + 5.0, t=100.5)
        # Crossing the boundary changes the serving cell (barring ping-pong
        # artefacts the engine already counts as handovers anyway).
        assert tick.handovers or tick.cell_id is not None

    def test_interruption_bounded_by_tick(self, session):
        ue, route = session
        for i in range(100):
            tick = _tick(ue, route, mark=3_000_000.0 + i * 400.0, t=200.0 + i * 0.5)
            assert 0.0 <= tick.interruption_s <= 0.5


class TestAttMmwaveUplink:
    def test_ul_pathology_applies(self, route):
        """§5.2: AT&T's mmWave uplink is essentially broken while driving."""
        from repro.geo.regions import RegionType
        from repro.radio.deployment import TechMix

        mm_only: dict[RegionType, TechMix] = {
            r: {RadioTechnology.NR_MMWAVE: 1.0} for r in RegionType
        }
        deployment = DeploymentModel.build(
            Operator.ATT, route, np.random.default_rng(5), tech_mix=mm_only
        )
        ue = UESession(Operator.ATT, deployment, RngFactory(seed=5))
        uls, dls = [], []
        for i in range(200):
            tick = _tick(ue, route, mark=100_000.0 + i * 300.0,
                         traffic=TrafficProfile.BACKLOGGED_UL,
                         direction=Direction.UPLINK, t=i * 0.5)
            if tick.tech is RadioTechnology.NR_MMWAVE:
                uls.append(tick.capacity_ul_mbps)
                dls.append(tick.capacity_dl_mbps)
        assert uls
        # The broken-UL factor makes UL a tiny fraction of DL most ticks.
        assert float(np.median(np.asarray(uls) / np.asarray(dls))) < 0.02


class TestStaticSite:
    def test_static_site_found_in_cities(self, session):
        ue, route = session
        mark = route.city_mark_m("Los Angeles")
        site = ue.find_static_site(mark, city_span_m=8_000.0)
        if site is not None:
            assert site.tech.is_high_throughput
            assert 0.0 < site.load <= 1.0

    def test_static_tick_is_parked(self, session):
        ue, route = session
        mark = route.city_mark_m("Chicago")
        site = ue.find_static_site(mark, city_span_m=8_000.0)
        if site is None:
            pytest.skip("no high-speed 5G in this city for this seed")
        position = route.position_at(mark)
        tick = ue.static_tick(site, position, 0.0, Direction.DOWNLINK, CLOUD)
        assert tick.speed_mph == 0.0
        assert tick.handovers == ()
        assert tick.tech is site.tech

    def test_static_capacity_exceeds_driving(self, session):
        ue, route = session
        mark = route.city_mark_m("Boston")
        site = ue.find_static_site(mark, city_span_m=8_000.0)
        if site is None:
            pytest.skip("no high-speed 5G in this city for this seed")
        position = route.position_at(mark)
        static_caps = [
            ue.static_tick(site, position, i * 0.5, Direction.DOWNLINK, CLOUD).capacity_dl_mbps
            for i in range(40)
        ]
        driving_caps = [
            _tick(ue, route, mark=4_000_000.0 + i * 300.0, t=500.0 + i * 0.5).capacity_dl_mbps
            for i in range(40)
        ]
        assert np.median(static_caps) > np.median(driving_caps)


class TestPolicyOverride:
    def test_custom_profile_respected(self, route):
        """A never-demote profile keeps uplink on the best tech."""
        deployment = DeploymentModel.build(
            Operator.TMOBILE, route, np.random.default_rng(9)
        )
        base = DEFAULT_POLICY_PROFILES[Operator.TMOBILE]
        no_demotion = PolicyProfile(
            operator=Operator.TMOBILE,
            ul_demotion={
                tech: {tech: 1.0} for tech in RadioTechnology
            },
            idle_5g_upgrade_prob=base.idle_5g_upgrade_prob,
            idle_mmwave_city_prob=base.idle_mmwave_city_prob,
        )
        ue = UESession(
            Operator.TMOBILE, deployment, RngFactory(seed=9),
            policy_profile=no_demotion,
        )
        for i in range(100):
            tick = _tick(ue, route, mark=200_000.0 + i * 900.0,
                         traffic=TrafficProfile.BACKLOGGED_UL,
                         direction=Direction.UPLINK, t=i * 0.5)
            zone = ue.deployment.zone_at(tick.mark_m)
            assert tick.tech is zone.best_tech
