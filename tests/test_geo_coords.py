"""Great-circle geometry."""

import math

import pytest

from repro.geo.coords import (
    EARTH_RADIUS_M,
    LatLon,
    haversine_m,
    initial_bearing_deg,
    interpolate,
    offset_m,
)

LA = LatLon(34.0522, -118.2437)
BOSTON = LatLon(42.3601, -71.0589)


class TestLatLon:
    def test_valid_point(self):
        p = LatLon(45.0, -100.0)
        assert p.lat == 45.0

    def test_latitude_bounds(self):
        with pytest.raises(ValueError):
            LatLon(90.1, 0.0)
        with pytest.raises(ValueError):
            LatLon(-90.1, 0.0)

    def test_longitude_bounds(self):
        with pytest.raises(ValueError):
            LatLon(0.0, 180.1)
        with pytest.raises(ValueError):
            LatLon(0.0, -180.1)

    def test_distance_method_matches_function(self):
        assert LA.distance_m(BOSTON) == haversine_m(LA, BOSTON)


class TestHaversine:
    def test_zero_distance(self):
        assert haversine_m(LA, LA) == 0.0

    def test_symmetry(self):
        assert haversine_m(LA, BOSTON) == pytest.approx(haversine_m(BOSTON, LA))

    def test_la_boston_known_distance(self):
        # Great-circle LA→Boston is about 4,180 km.
        assert haversine_m(LA, BOSTON) == pytest.approx(4_180_000, rel=0.02)

    def test_one_degree_latitude(self):
        a, b = LatLon(0.0, 0.0), LatLon(1.0, 0.0)
        expected = math.pi / 180.0 * EARTH_RADIUS_M
        assert haversine_m(a, b) == pytest.approx(expected, rel=1e-6)

    def test_antipodal_is_half_circumference(self):
        a, b = LatLon(0.0, 0.0), LatLon(0.0, 180.0)
        assert haversine_m(a, b) == pytest.approx(math.pi * EARTH_RADIUS_M, rel=1e-6)


class TestInterpolate:
    def test_endpoints(self):
        assert interpolate(LA, BOSTON, 0.0) == LA
        assert interpolate(LA, BOSTON, 1.0) == BOSTON

    def test_midpoint_between_endpoints(self):
        mid = interpolate(LA, BOSTON, 0.5)
        assert min(LA.lat, BOSTON.lat) <= mid.lat <= max(LA.lat, BOSTON.lat)
        assert min(LA.lon, BOSTON.lon) <= mid.lon <= max(LA.lon, BOSTON.lon)

    def test_out_of_range_fraction(self):
        with pytest.raises(ValueError):
            interpolate(LA, BOSTON, 1.5)
        with pytest.raises(ValueError):
            interpolate(LA, BOSTON, -0.1)


class TestBearing:
    def test_due_north(self):
        assert initial_bearing_deg(LatLon(0, 0), LatLon(1, 0)) == pytest.approx(0.0)

    def test_due_east(self):
        assert initial_bearing_deg(LatLon(0, 0), LatLon(0, 1)) == pytest.approx(90.0)

    def test_range(self):
        b = initial_bearing_deg(BOSTON, LA)
        assert 0.0 <= b < 360.0


class TestOffset:
    def test_north_offset_increases_latitude(self):
        p = offset_m(LA, east_m=0.0, north_m=1000.0)
        assert p.lat > LA.lat
        assert p.lon == pytest.approx(LA.lon)

    def test_offset_distance_accuracy(self):
        p = offset_m(LA, east_m=3000.0, north_m=4000.0)
        assert haversine_m(LA, p) == pytest.approx(5000.0, rel=0.01)
