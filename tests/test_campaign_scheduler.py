"""Cycle plans and their wiring into the campaign."""

import pytest

from repro.campaign.runner import CampaignConfig, DriveCampaign
from repro.campaign.scheduler import FULL_CYCLE, NETWORK_ONLY_CYCLE, CyclePlan
from repro.campaign.tests import TestType
from repro.errors import CampaignError


class TestCyclePlan:
    def test_full_cycle_matches_paper_suite(self):
        assert set(FULL_CYCLE.tests) == set(TestType)

    def test_network_only(self):
        assert set(NETWORK_ONLY_CYCLE.tests) == {
            TestType.DOWNLINK_THROUGHPUT,
            TestType.UPLINK_THROUGHPUT,
            TestType.RTT,
        }

    def test_empty_plan_rejected(self):
        with pytest.raises(CampaignError):
            CyclePlan(tests=())

    def test_without_apps_requires_network_tests(self):
        with pytest.raises(CampaignError):
            CyclePlan(tests=(TestType.AR,)).without_apps()

    def test_run_counts_double_offload_apps(self):
        assert FULL_CYCLE.run_count(TestType.AR) == 2
        assert FULL_CYCLE.run_count(TestType.CAV) == 2
        assert FULL_CYCLE.run_count(TestType.RTT) == 1
        assert NETWORK_ONLY_CYCLE.run_count(TestType.AR) == 0

    def test_nominal_duration(self):
        # 30+30+20 + 2*20*2 + 180 + 60 = 400 s of tests + 9 gaps of 4 s.
        assert FULL_CYCLE.nominal_duration_s(gap_s=4.0) == pytest.approx(436.0)


class TestCustomCycles:
    def test_rtt_only_campaign(self):
        config = CampaignConfig(
            seed=3, scale=0.004, include_static=False,
            cycle=CyclePlan(tests=(TestType.RTT,)),
        )
        ds = DriveCampaign(config).run()
        assert ds.rtt_samples
        assert not ds.throughput_samples
        assert not ds.video_runs

    def test_single_app_campaign(self):
        config = CampaignConfig(
            seed=3, scale=0.004, include_static=False,
            cycle=CyclePlan(tests=(TestType.DOWNLINK_THROUGHPUT, TestType.VIDEO_360)),
        )
        ds = DriveCampaign(config).run()
        assert ds.video_runs
        assert not ds.gaming_runs
        assert not ds.offload_runs

    def test_include_apps_false_strips_plan(self):
        config = CampaignConfig(
            seed=3, scale=0.004, include_apps=False, include_static=False,
        )
        ds = DriveCampaign(config).run()
        assert ds.throughput_samples
        assert not ds.offload_runs
