"""The sweep driver: per-seed determinism, cache replay, and the report.

The acceptance bar mirrors the engine's: every seed's dataset must be
bit-identical to a standalone ``run_engine`` of that seed — whether its
shards were computed cold, interleaved with other seeds, or replayed from a
warm cache — and a warm re-sweep must be served entirely from cache.
"""

from __future__ import annotations

import json

import pytest

from tests.conftest import ENGINE_CAMPAIGN, ENGINE_WINDOW_KM, engine_dataset_bytes
from repro.engine import EngineConfig, PlannerParams, run_engine
from repro.errors import SweepError
from repro.sweep import SweepConfig, SweepReport, run_sweep
from repro.sweep.cache import ShardCache
from repro.sweep.report import SWEEP_SCHEMA_VERSION

SEEDS = (ENGINE_CAMPAIGN.seed, ENGINE_CAMPAIGN.seed + 1)
PLANNER = PlannerParams(window_km=ENGINE_WINDOW_KM)


def sweep_config(tmp_path, **overrides):
    kwargs = dict(
        seeds=SEEDS,
        scale=ENGINE_CAMPAIGN.scale,
        include_apps=False,
        include_static=False,
        executor="serial",
        planner=PLANNER,
        cache_dir=str(tmp_path / "shard-cache"),
        bootstrap_samples=200,
    )
    kwargs.update(overrides)
    return SweepConfig(**kwargs)


@pytest.fixture(scope="module")
def swept(tmp_path_factory):
    """One cold sweep over two seeds, shared by the read-only tests."""
    tmp = tmp_path_factory.mktemp("sweep")
    config = sweep_config(tmp, report_path=str(tmp / "sweep.json"))
    return config, run_sweep(config), tmp


class TestConfigValidation:
    def test_rejects_empty_seeds(self, tmp_path):
        with pytest.raises(SweepError):
            sweep_config(tmp_path, seeds=())

    def test_rejects_duplicate_seeds(self, tmp_path):
        with pytest.raises(SweepError):
            sweep_config(tmp_path, seeds=(1, 1))

    def test_rejects_unknown_statistic(self, tmp_path):
        with pytest.raises(SweepError):
            sweep_config(tmp_path, statistics=("not_a_stat",))

    def test_rejects_bad_confidence(self, tmp_path):
        with pytest.raises(SweepError):
            sweep_config(tmp_path, confidence=1.0)


class TestPerSeedDeterminism:
    def test_seed_datasets_match_standalone_engine_runs(
        self, swept, engine_baseline, tmp_path
    ):
        """Interleaved multi-seed execution changes nothing per seed."""
        _, result, _ = swept
        _, base = engine_baseline  # standalone run of SEEDS[0]
        assert engine_dataset_bytes(result.datasets[SEEDS[0]], tmp_path) == base

        other = EngineConfig(
            campaign=ENGINE_CAMPAIGN.__class__(
                seed=SEEDS[1],
                scale=ENGINE_CAMPAIGN.scale,
                include_apps=False,
                include_static=False,
            ),
            executor="serial",
            planner=PLANNER,
        )
        standalone, _ = run_engine(other)
        assert engine_dataset_bytes(
            result.datasets[SEEDS[1]], tmp_path
        ) == engine_dataset_bytes(standalone, tmp_path)

    def test_seeds_produce_distinct_datasets(self, swept, tmp_path):
        _, result, _ = swept
        a = engine_dataset_bytes(result.datasets[SEEDS[0]], tmp_path)
        b = engine_dataset_bytes(result.datasets[SEEDS[1]], tmp_path)
        assert a != b


class TestCacheReplay:
    def test_cold_sweep_misses_then_populates(self, swept):
        _, result, _ = swept
        n_shards = sum(r.n_shards for r in result.report.seed_runs)
        assert result.cache.stats.misses == n_shards
        assert result.cache.stats.stores == n_shards
        assert result.report.cache_hit_ratio() == 0.0

    def test_warm_sweep_replays_every_shard(self, swept, tmp_path):
        config, cold, sweep_tmp = swept
        warm_config = sweep_config(
            sweep_tmp, cache_dir=str(sweep_tmp / "shard-cache")
        )
        warm = run_sweep(warm_config)
        assert warm.report.cache_hit_ratio() == 1.0
        assert warm.cache.stats.misses == 0
        for seed in SEEDS:
            assert engine_dataset_bytes(
                warm.datasets[seed], tmp_path
            ) == engine_dataset_bytes(cold.datasets[seed], tmp_path)
            report = warm.engine_reports[seed]
            assert all(s.from_cache for s in report.shards)
            assert report.cache_hits == len(report.shards)

    def test_warm_sweep_metrics_match_cold(self, tmp_path):
        """Regression: cache-replayed shards used to be dropped from the
        merged sweep metrics, so a warm traced sweep reported zero
        ``engine.shards_computed``.  Cached sidecars now carry the snapshot
        of the computation that produced them — warm equals cold."""
        from repro.obs.trace import reset_tracers

        try:
            cold = run_sweep(
                sweep_config(
                    tmp_path,  # fresh cache: every shard computes
                    trace_path=str(tmp_path / "cold.jsonl"),
                )
            )
            warm = run_sweep(
                sweep_config(
                    tmp_path,  # same cache dir: every shard replays
                    trace_path=str(tmp_path / "warm.jsonl"),
                )
            )
        finally:
            reset_tracers()
        assert warm.report.cache_hit_ratio() == 1.0
        cold_counters = cold.report.metrics["counters"]
        warm_counters = warm.report.metrics["counters"]
        for key in ("engine.shards_computed", "engine.records_generated"):
            assert warm_counters[key] == cold_counters[key], key

    def test_partial_overlap_reuses_shared_seeds(self, swept, tmp_path):
        """A later sweep over an overlapping seed list replays the overlap."""
        _, _, sweep_tmp = swept
        config = sweep_config(
            sweep_tmp,
            seeds=(SEEDS[1], SEEDS[1] + 1),  # one cached, one new
            cache_dir=str(sweep_tmp / "shard-cache"),
        )
        result = run_sweep(config)
        by_seed = {r.seed: r for r in result.report.seed_runs}
        assert by_seed[SEEDS[1]].cache_hit_ratio() == 1.0
        assert by_seed[SEEDS[1] + 1].cache_hits == 0

    def test_changed_planner_invalidates(self, swept):
        """A different window decomposition is a different computation: the
        cache must recompute everything, not merge foreign shards."""
        _, _, sweep_tmp = swept
        config = sweep_config(
            sweep_tmp,
            planner=PlannerParams(window_km=ENGINE_WINDOW_KM * 2),
            cache_dir=str(sweep_tmp / "shard-cache"),
        )
        result = run_sweep(config)
        assert result.cache.stats.hits == 0
        assert all(r.cache_hits == 0 for r in result.report.seed_runs)

    def test_sweep_cache_serves_run_engine(self, swept, engine_baseline, tmp_path):
        """The cache is one namespace: run_engine replays sweep shards."""
        _, _, sweep_tmp = swept
        _, base = engine_baseline
        cache = ShardCache(sweep_tmp / "shard-cache")
        ds, report = run_engine(
            EngineConfig(
                campaign=ENGINE_CAMPAIGN, executor="serial", planner=PLANNER
            ),
            shard_store=cache,
        )
        assert engine_dataset_bytes(ds, tmp_path) == base
        assert report.cache_hits == len(report.shards)
        assert report.cache_misses == 0
        assert report.cache_hit_ratio() == 1.0


class TestSweepReport:
    def test_confidence_intervals_on_paper_statistics(self, swept):
        _, result, _ = swept
        report = result.report
        assert len(report.statistics) >= 5
        for summary in report.statistics:
            assert summary.n_seeds == len(SEEDS)
            assert summary.ci_low <= summary.ci_high
            assert summary.ci_low <= summary.mean <= summary.ci_high

    def test_app_statistics_skipped_without_apps(self, swept):
        _, result, _ = swept
        assert "video_qoe_median" in result.report.skipped_statistics

    def test_per_seed_metrics(self, swept):
        config, result, _ = swept
        report = result.report
        assert [r.seed for r in report.seed_runs] == list(SEEDS)
        for run in report.seed_runs:
            assert run.records > 0
            assert run.compute_wall_s > 0.0
            assert run.n_shards == report.n_windows + 1
        assert report.total_wall_s > 0.0

    def test_statistic_lookup(self, swept):
        _, result, _ = swept
        summary = result.report.statistic("driving_rtt_median_ms_V")
        assert summary.unit == "ms"
        with pytest.raises(KeyError):
            result.report.statistic("nope")

    def test_schema_version_and_round_trip(self, swept):
        _, result, tmp = swept
        obj = json.loads((tmp / "sweep.json").read_text())
        assert obj["schema_version"] == SWEEP_SCHEMA_VERSION
        rebuilt = SweepReport.from_obj(obj)
        assert rebuilt.to_obj() == obj
        assert rebuilt.cache_hit_ratio() == result.report.cache_hit_ratio()

    def test_statistics_subset_honoured(self, swept):
        _, _, sweep_tmp = swept
        config = sweep_config(
            sweep_tmp,
            cache_dir=str(sweep_tmp / "shard-cache"),
            statistics=("driving_rtt_median_ms_V", "unique_cells_total"),
        )
        result = run_sweep(config)
        assert [s.name for s in result.report.statistics] == [
            "driving_rtt_median_ms_V",
            "unique_cells_total",
        ]
