"""One-call paper summary."""

import pytest

from repro.analysis.summary import summarize_paper
from repro.radio.operators import Operator


@pytest.fixture(scope="module")
def summary(dataset):
    return summarize_paper(dataset)


class TestSummary:
    def test_all_operators_present(self, summary):
        assert set(summary.operators) == set(Operator)

    def test_headline_fields_sane(self, summary):
        for h in summary.operators.values():
            assert 0.0 <= h.coverage_5g <= 1.0
            assert 0.0 <= h.coverage_high_speed_5g <= h.coverage_5g
            assert h.static_dl_median_mbps > h.driving_dl_median_mbps
            assert 0.0 <= h.driving_dl_below_5mbps <= 1.0
            assert h.driving_rtt_median_ms > 0.0
            assert h.handover_duration_median_ms > 0.0
            assert 0.0 <= h.max_abs_kpi_correlation <= 1.0

    def test_fragmented_coverage_finding(self, summary):
        """Abstract finding 1: low, fragmented 5G coverage."""
        assert summary.fragmented_coverage

    def test_driving_collapse_finding(self, summary):
        """Abstract finding 2: driving performance collapses vs static."""
        assert summary.driving_collapse_factor > 10.0

    def test_no_kpi_dominates_finding(self, summary):
        """Table 2 finding: no KPI strongly correlates with throughput."""
        assert summary.no_kpi_dominates

    def test_app_headlines(self, summary):
        apps = summary.apps
        if apps.cav_driving_e2e_median_ms is not None:
            assert not apps.cav_meets_100ms_budget  # §7.1.2
        if apps.ar_driving_e2e_median_ms is not None and apps.ar_best_static_e2e_ms is not None:
            assert apps.ar_driving_e2e_median_ms > apps.ar_best_static_e2e_ms
        if apps.gaming_bitrate_median_mbps is not None:
            assert 1.0 < apps.gaming_bitrate_median_mbps < 100.0

    def test_tmobile_coverage_leads(self, summary):
        assert (
            summary.operators[Operator.TMOBILE].coverage_5g
            > summary.operators[Operator.VERIZON].coverage_5g
        )
