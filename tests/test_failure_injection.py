"""Failure injection: pathological conditions the pipeline must survive."""

import math

import numpy as np
import pytest

from repro.analysis.handovers import handover_type_distribution
from repro.apps.gaming import run_gaming_session
from repro.apps.offload import AR_CONFIG, CAV_CONFIG, run_offload_app
from repro.apps.schedule import LinkSchedule
from repro.apps.video import VideoConfig, run_video_session
from repro.campaign.runner import CampaignConfig, DriveCampaign
from repro.geo.regions import RegionType
from repro.radio.deployment import DeploymentModel, TechMix
from repro.radio.operators import Operator
from repro.radio.technology import RadioTechnology


def dead_schedule(duration_s=20.0, rtt_ms=4000.0):
    """A link that is effectively down for the whole window."""
    n = int(duration_s / 0.5)
    return LinkSchedule(
        times_s=np.arange(n) * 0.5,
        tick_s=0.5,
        ul_mbps=np.full(n, 0.01),
        dl_mbps=np.full(n, 0.01),
        rtt_ms=np.full(n, rtt_ms),
        techs=(RadioTechnology.LTE,) * n,
    )


class TestDeadLinks:
    def test_ar_on_dead_link(self):
        m = run_offload_app(dead_schedule(), AR_CONFIG, compression=True)
        assert m.offload_fps < 0.5
        assert m.map_score <= 38.45

    def test_cav_on_dead_link(self):
        m = run_offload_app(dead_schedule(), CAV_CONFIG, compression=False)
        assert m.offloaded_frames == 0
        assert math.isinf(m.mean_e2e_ms)

    def test_video_on_dead_link(self):
        m = run_video_session(dead_schedule(duration_s=60.0),
                              VideoConfig(session_duration_s=60.0))
        assert m.qoe < -100.0
        assert m.rebuffer_ratio > 0.8

    def test_gaming_on_dead_link(self):
        m = run_gaming_session(dead_schedule(duration_s=60.0))
        assert m.avg_bitrate_mbps < 5.0
        assert m.median_latency_ms > 300.0


class TestDegenerateDeployments:
    def test_lte_only_world(self, route, rng):
        """Force an all-LTE deployment: the pipeline runs, no 5G appears."""
        lte_only: dict[RegionType, TechMix] = {
            region: {RadioTechnology.LTE: 1.0} for region in RegionType
        }
        model = DeploymentModel.build(Operator.VERIZON, route, rng, tech_mix=lte_only)
        assert all(z.best_tech is RadioTechnology.LTE for z in model.zones)

    def test_mmwave_everywhere(self, route, rng):
        mm_only: dict[RegionType, TechMix] = {
            region: {RadioTechnology.NR_MMWAVE: 1.0} for region in RegionType
        }
        model = DeploymentModel.build(Operator.ATT, route, rng, tech_mix=mm_only)
        assert all(z.best_tech is RadioTechnology.NR_MMWAVE for z in model.zones)


class TestTinyCampaigns:
    def test_minimal_scale_still_valid(self):
        ds = DriveCampaign(
            CampaignConfig(seed=1, scale=0.002, include_apps=False, include_static=False)
        ).run()
        assert ds.throughput_samples
        # Handover records stay classifiable even with few events.
        if ds.handovers:
            dist = handover_type_distribution(ds)
            assert sum(dist.values()) == pytest.approx(1.0)

    def test_static_only_city_skips_are_safe(self):
        """Static batteries skip operator-city combos without high-speed 5G
        (as the paper did) rather than crashing."""
        ds = DriveCampaign(
            CampaignConfig(seed=2, scale=0.002, include_apps=False)
        ).run()
        static_tests = ds.tests_of(static=True)
        # Some cities yield static tests; combos without 5G were skipped.
        assert 0 < len(static_tests) <= 10 * 3 * 3
