"""repro.obs unit tests: span emission, writer atomicity, metrics, reports.

Trace *integrity under fault injection* lives with the engine's fault
tests (``test_engine_fault_tolerance.py``); this module pins down the
building blocks — the null tracer's no-op contract, span nesting and
cross-process parenting, whole-line JSONL appends under thread contention,
snapshot/merge determinism, and the summary math (phase breakdowns that
sum exactly, critical paths, validation verdicts).
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs import __main__ as obs_cli
from repro.obs.metrics import MetricsRegistry, merge_snapshots
from repro.obs.report import (
    critical_path,
    load_summary,
    phase_breakdown,
    top_spans,
    validate_trace,
)
from repro.obs.trace import (
    NULL_TRACER,
    TRACE_FORMAT_VERSION,
    TraceWriter,
    get_tracer,
    iter_trace,
    reset_tracers,
)


@pytest.fixture(autouse=True)
def _fresh_tracers():
    """Tracers memoize per path per process; drop them between tests."""
    yield
    reset_tracers()


def spans_of(path):
    return [r for r in iter_trace(path) if r["kind"] == "span"]


class TestNullTracer:
    def test_no_path_yields_the_null_singleton(self):
        assert get_tracer(None) is NULL_TRACER
        assert NULL_TRACER.enabled is False

    def test_null_span_is_reusable_and_inert(self):
        ctx_a = NULL_TRACER.span("a", whatever=1)
        ctx_b = NULL_TRACER.span("b")
        assert ctx_a is ctx_b  # one shared context: no per-call allocation
        with ctx_a as span:
            assert span.span_id is None
            span.set(x=1)
            assert span.elapsed() == 0.0
            span.dur_s = 123.0  # discarded, not stored
            assert span.dur_s is None

    def test_null_tracer_surface_is_a_noop(self):
        assert NULL_TRACER.current_id() is None
        NULL_TRACER.emit_metrics({"counters": {"x": 1}}, scope="t")
        NULL_TRACER.close()

    def test_exceptions_pass_through_null_spans(self):
        with pytest.raises(RuntimeError):
            with NULL_TRACER.span("x"):
                raise RuntimeError("boom")


class TestSpanEmission:
    def test_nested_spans_link_parent_ids(self, tmp_path):
        tracer = get_tracer(tmp_path / "t.jsonl")
        assert tracer.enabled
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert tracer.current_id() == inner.span_id
            assert tracer.current_id() == outer.span_id
        records = spans_of(tmp_path / "t.jsonl")
        # Spans are written on close: inner first.
        assert [r["name"] for r in records] == ["inner", "outer"]
        inner_rec, outer_rec = records
        assert outer_rec["parent_id"] is None
        assert inner_rec["parent_id"] == outer_rec["span_id"]
        assert all(r["v"] == TRACE_FORMAT_VERSION for r in records)

    def test_explicit_parent_overrides_the_stack(self, tmp_path):
        tracer = get_tracer(tmp_path / "t.jsonl")
        with tracer.span("outer"):
            with tracer.span("adopted", parent="4242:1:7"):
                pass
        adopted = spans_of(tmp_path / "t.jsonl")[0]
        assert adopted["parent_id"] == "4242:1:7"

    def test_exception_marks_status_error_and_propagates(self, tmp_path):
        tracer = get_tracer(tmp_path / "t.jsonl")
        with pytest.raises(ValueError):
            with tracer.span("failing"):
                raise ValueError("boom")
        rec = spans_of(tmp_path / "t.jsonl")[0]
        assert rec["status"] == "error"

    def test_frozen_duration_is_written_verbatim(self, tmp_path):
        """A caller may pin dur_s so trace and report share the same float."""
        tracer = get_tracer(tmp_path / "t.jsonl")
        frozen = 1.2345678901234567
        with tracer.span("run") as span:
            span.dur_s = frozen
        assert spans_of(tmp_path / "t.jsonl")[0]["dur_s"] == frozen

    def test_attrs_from_kwargs_and_set(self, tmp_path):
        tracer = get_tracer(tmp_path / "t.jsonl")
        with tracer.span("s", index=3) as span:
            span.set(records=99, index=4)
        rec = spans_of(tmp_path / "t.jsonl")[0]
        assert rec["attrs"] == {"index": 4, "records": 99}

    def test_threads_keep_independent_span_stacks(self, tmp_path):
        tracer = get_tracer(tmp_path / "t.jsonl")
        seen = {}

        def worker():
            # Must NOT inherit the main thread's active span as parent.
            with tracer.span("thread-span") as span:
                seen["parent"] = span.parent_id

        with tracer.span("main-span"):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        assert seen["parent"] is None

    def test_tracers_are_memoized_per_path(self, tmp_path):
        a = get_tracer(tmp_path / "t.jsonl")
        b = get_tracer(tmp_path / "t.jsonl")
        c = get_tracer(tmp_path / "other.jsonl")
        assert a is b
        assert a is not c


class TestWriterAtomicity:
    def test_concurrent_writers_never_tear_lines(self, tmp_path):
        path = tmp_path / "t.jsonl"
        writer = TraceWriter(path)
        n_threads, per_thread = 8, 200

        def blast(tid):
            for i in range(per_thread):
                writer.write_obj(
                    {"kind": "span", "tid": tid, "i": i, "pad": "x" * 100}
                )

        threads = [
            threading.Thread(target=blast, args=(t,)) for t in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        writer.close()
        lines = path.read_text().splitlines()
        assert len(lines) == n_threads * per_thread
        decoded = [json.loads(line) for line in lines]  # every line parses
        assert {(r["tid"], r["i"]) for r in decoded} == {
            (t, i) for t in range(n_threads) for i in range(per_thread)
        }

    def test_two_writers_on_one_file_interleave_whole_lines(self, tmp_path):
        # Two descriptors on the same path model two worker processes.
        path = tmp_path / "t.jsonl"
        a, b = TraceWriter(path), TraceWriter(path)
        for i in range(50):
            a.write_obj({"kind": "span", "src": "a", "i": i})
            b.write_obj({"kind": "span", "src": "b", "i": i})
        a.close()
        b.close()
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(records) == 100

    def test_write_after_close_is_dropped(self, tmp_path):
        path = tmp_path / "t.jsonl"
        writer = TraceWriter(path)
        writer.write_obj({"kind": "span", "i": 0})
        writer.close()
        writer.write_obj({"kind": "span", "i": 1})  # silently ignored
        writer.close()  # idempotent
        assert len(path.read_text().splitlines()) == 1


class TestIterTrace:
    def test_rejects_unparseable_line(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"kind": "span"}\n{broken\n')
        with pytest.raises(ValueError, match="unparseable"):
            list(iter_trace(path))

    def test_rejects_record_without_kind(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"name": "x"}\n')
        with pytest.raises(ValueError, match="kind"):
            list(iter_trace(path))

    def test_skips_blank_lines(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"kind": "span"}\n\n{"kind": "metrics"}\n')
        assert len(list(iter_trace(path))) == 2


class TestMetricsRegistry:
    def test_counters_gauges_histograms(self):
        reg = MetricsRegistry()
        reg.count("hits")
        reg.count("hits", 4)
        reg.gauge("bytes", 10.0)
        reg.gauge("bytes", 20.0)
        for v in (3.0, 1.0, 2.0):
            reg.observe("lat", v)
        snap = reg.snapshot()
        assert snap["counters"] == {"hits": 5}
        assert snap["gauges"] == {"bytes": 20.0}
        assert snap["histograms"] == {
            "lat": {"count": 3, "total": 6.0, "min": 1.0, "max": 3.0}
        }

    def test_snapshot_keys_are_sorted(self):
        reg = MetricsRegistry()
        for name in ("z", "a", "m"):
            reg.count(name)
        assert list(reg.snapshot()["counters"]) == ["a", "m", "z"]

    def test_concurrent_counting_is_lossless(self):
        reg = MetricsRegistry()

        def bump():
            for _ in range(1000):
                reg.count("n")
                reg.observe("v", 1.0)

        threads = [threading.Thread(target=bump) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = reg.snapshot()
        assert snap["counters"]["n"] == 8000
        assert snap["histograms"]["v"]["count"] == 8000


class TestMergeSnapshots:
    def test_merge_semantics(self):
        a = {
            "counters": {"hits": 2},
            "gauges": {"size": 1.0},
            "histograms": {"lat": {"count": 2, "total": 3.0, "min": 1.0, "max": 2.0}},
        }
        b = {
            "counters": {"hits": 3, "misses": 1},
            "gauges": {"size": 9.0},
            "histograms": {"lat": {"count": 1, "total": 0.5, "min": 0.5, "max": 0.5}},
        }
        merged = merge_snapshots([a, b])
        assert merged["counters"] == {"hits": 5, "misses": 1}
        assert merged["gauges"] == {"size": 9.0}  # last write wins
        assert merged["histograms"]["lat"] == {
            "count": 3, "total": 3.5, "min": 0.5, "max": 2.0,
        }

    def test_merge_is_deterministic_for_an_input_order(self):
        snaps = [
            {"counters": {"c": i}, "gauges": {"g": float(i)}} for i in range(5)
        ]
        assert merge_snapshots(snaps) == merge_snapshots(list(snaps))
        # Reversing the order flips only the gauge (last-write-wins).
        reversed_merge = merge_snapshots(snaps[::-1])
        assert reversed_merge["counters"] == merge_snapshots(snaps)["counters"]
        assert reversed_merge["gauges"] == {"g": 0.0}

    def test_tolerates_empty_and_partial_snapshots(self):
        merged = merge_snapshots([{}, {"counters": {"x": 1}}, {"gauges": {}}])
        assert merged["counters"] == {"x": 1}
        assert merged["histograms"] == {}


def _write_run_trace(tracer):
    """A small synthetic run: root with two phases and parallel shards."""
    with tracer.span("engine.run", seed=7) as root:
        with tracer.span("engine.plan"):
            pass
        with tracer.span("engine.execute") as ex:
            with tracer.span("engine.shard", index=0):
                pass
            with tracer.span("engine.shard", index=1):
                pass
        root.dur_s = max(root.elapsed(), 1e-6)
    return root


class TestReportAnalysis:
    def test_tree_phases_and_critical_path(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = get_tracer(path)
        _write_run_trace(tracer)
        tracer.emit_metrics({"counters": {"engine.runs": 1}}, scope="engine")

        summary = load_summary(path)
        assert summary.orphans == 0
        assert summary.n_pids == 1
        assert summary.metrics["counters"] == {"engine.runs": 1}
        (root,) = summary.roots
        assert root.name == "engine.run"
        assert [c.name for c in root.children] == [
            "engine.plan", "engine.execute",
        ]

        rows = phase_breakdown(root)
        assert [name for name, _, _ in rows] == [
            "engine.plan", "engine.execute", "(untraced)",
        ]
        assert sum(wall for _, wall, _ in rows) == root.dur_s  # exact

        chain = critical_path(root)
        assert chain[0] is root
        assert chain[1].name == "engine.execute"
        assert chain[2].name == "engine.shard"

        slowest = top_spans(summary.spans, "engine.shard", n=1)
        assert len(slowest) == 1

        assert validate_trace(path) == []

    def test_orphan_spans_survive_as_roots(self, tmp_path):
        """A span whose parent was never written (killed worker) must load."""
        path = tmp_path / "t.jsonl"
        tracer = get_tracer(path)
        with tracer.span("engine.shard", parent="999:1:1", index=0):
            pass
        summary = load_summary(path)
        assert summary.orphans == 1
        assert summary.roots[0].orphan
        assert validate_trace(path) == []  # crash shape, not a defect

    def test_validate_flags_child_longer_than_parent(self, tmp_path):
        path = tmp_path / "t.jsonl"
        writer = TraceWriter(path)
        base = {
            "kind": "span", "v": 1, "ts": 0.0, "pid": 1, "tid": 1,
            "status": "ok", "attrs": {},
        }
        writer.write_obj({**base, "name": "p", "span_id": "1:1:1",
                          "parent_id": None, "dur_s": 1.0})
        writer.write_obj({**base, "name": "c", "span_id": "1:1:2",
                          "parent_id": "1:1:1", "dur_s": 5.0})
        writer.close()
        problems = validate_trace(path)
        assert len(problems) == 1
        assert "longer than parent" in problems[0]

    def test_validate_flags_bad_duration_and_missing_fields(self, tmp_path):
        path = tmp_path / "t.jsonl"
        writer = TraceWriter(path)
        writer.write_obj({"kind": "span", "name": "x"})  # missing fields
        writer.write_obj({
            "kind": "span", "name": "y", "span_id": "1:1:1",
            "parent_id": None, "ts": 0.0, "dur_s": -1.0, "pid": 1,
            "tid": 1, "status": "ok", "attrs": {},
        })
        writer.close()
        problems = validate_trace(path)
        assert any("missing fields" in p for p in problems)
        assert any("bad dur_s" in p for p in problems)

    def test_unknown_record_kinds_are_skipped(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = get_tracer(path)
        _write_run_trace(tracer)
        tracer.writer.write_obj({"kind": "future-thing", "data": 1})
        assert validate_trace(path) == []
        load_summary(path)


class TestCli:
    def test_render_and_json_and_validate(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        tracer = get_tracer(path)
        _write_run_trace(tracer)
        tracer.emit_metrics({"counters": {"engine.runs": 1}}, scope="engine")

        assert obs_cli.main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "engine.run" in out
        assert "phase breakdown" in out
        assert "(untraced)" in out

        assert obs_cli.main([str(path), "--json"]) == 0
        obj = json.loads(capsys.readouterr().out)
        assert obj["runs"][0]["name"] == "engine.run"
        total = sum(p["wall_s"] for p in obj["runs"][0]["phases"])
        assert total == obj["runs"][0]["dur_s"]

        assert obs_cli.main([str(path), "--validate"]) == 0
        assert "trace ok" in capsys.readouterr().out

    def test_validate_exits_nonzero_on_problems(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        path.write_text("{broken\n")
        assert obs_cli.main([str(path), "--validate"]) == 1
        assert "PROBLEM" in capsys.readouterr().err

    def test_summary_of_unreadable_file_fails_cleanly(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        path.write_text("{broken\n")
        assert obs_cli.main([str(path)]) == 1
        assert "error:" in capsys.readouterr().err
