"""Dataset comparison (KS-based ablation tooling)."""

import pytest

from repro.analysis.compare import compare_datasets
from repro.campaign.runner import CampaignConfig, DriveCampaign
from repro.errors import AnalysisError
from repro.campaign.dataset import DriveDataset


@pytest.fixture(scope="module")
def pair():
    a = DriveCampaign(
        CampaignConfig(seed=11, scale=0.008, include_apps=False, include_static=False)
    ).run()
    b = DriveCampaign(
        CampaignConfig(seed=12, scale=0.008, include_apps=False, include_static=False)
    ).run()
    return a, b


class TestCompareDatasets:
    def test_self_comparison_identical(self, pair):
        a, _ = pair
        result = compare_datasets(a, a)
        for c in result.comparisons:
            assert c.ks_statistic == 0.0
            assert c.median_ratio == pytest.approx(1.0)
        assert not result.any_difference()

    def test_different_seeds_same_distribution(self, pair):
        """Two seeds of the same generator should rarely diverge strongly
        at the distribution level."""
        a, b = pair
        result = compare_datasets(a, b)
        # KS statistics stay small even if p-values fluctuate with n.
        assert result.max_divergence().ks_statistic < 0.35

    def test_metric_slicing(self, pair):
        a, b = pair
        result = compare_datasets(a, b)
        rtts = result.for_metric("rtt")
        assert len(rtts) == 3
        assert all(c.metric == "rtt" for c in rtts)

    def test_shifted_dataset_detected(self, pair):
        """A systematic throughput scaling must be flagged."""
        import dataclasses

        a, _ = pair
        shifted = DriveDataset(
            seed=a.seed, scale=a.scale, route_length_km=a.route_length_km
        )
        shifted.throughput_samples = [
            dataclasses.replace(s, tput_mbps=s.tput_mbps * 3.0)
            for s in a.throughput_samples
        ]
        shifted.rtt_samples = list(a.rtt_samples)
        shifted.tests = list(a.tests)
        shifted.handovers = list(a.handovers)
        result = compare_datasets(a, shifted)
        dl = [c for c in result.for_metric("tput_dl")]
        assert all(c.differs() for c in dl)
        assert all(c.median_ratio == pytest.approx(3.0) for c in dl)

    def test_empty_comparison_rejected(self):
        empty = DriveDataset(seed=0, scale=1.0, route_length_km=1.0)
        with pytest.raises(AnalysisError):
            compare_datasets(empty, empty)
