"""Log synchronisation: timestamp conversion, matching, consolidation."""

from datetime import datetime, timedelta

import pytest

from repro.campaign.runner import CampaignConfig, DriveCampaign
from repro.campaign.tests import TestType
from repro.errors import SyncError
from repro.geo.timezones import Timezone
from repro.sync.database import ConsolidatedDatabase
from repro.sync.matcher import match_logs
from repro.sync.timestamps import edt_to_utc, local_to_utc, utc_offset_for_mark, utc_to_local
from repro.xcal.export import export_logs


@pytest.fixture(scope="module")
def log_bundle():
    campaign = DriveCampaign(
        CampaignConfig(seed=21, scale=0.004, include_apps=False, include_static=False)
    )
    ds = campaign.run()
    drms, logs = export_logs(ds, campaign.route)
    return campaign.route, ds, drms, logs


class TestTimestamps:
    def test_edt_to_utc(self):
        edt = datetime(2022, 8, 10, 14, 0, 0)
        assert edt_to_utc(edt) == datetime(2022, 8, 10, 18, 0, 0)

    def test_local_round_trip(self):
        utc = datetime(2022, 8, 10, 18, 0, 0)
        for tz in Timezone:
            assert local_to_utc(utc_to_local(utc, tz), tz) == utc

    def test_pacific_offset(self):
        local = datetime(2022, 8, 10, 11, 0, 0)
        assert local_to_utc(local, Timezone.PACIFIC) == datetime(2022, 8, 10, 18, 0, 0)

    def test_offset_for_mark(self, route):
        assert utc_offset_for_mark(route, 0.0) == -7          # LA
        assert utc_offset_for_mark(route, route.total_length_m) == -4  # Boston


class TestExport:
    def test_one_file_pair_per_test(self, log_bundle):
        _, ds, drms, logs = log_bundle
        exportable = [
            t for t in ds.tests
            if t.test_type in (TestType.DOWNLINK_THROUGHPUT, TestType.UPLINK_THROUGHPUT, TestType.RTT)
            and not t.static
        ]
        assert len(drms) == len(exportable)
        assert len(logs) == len(exportable)

    def test_filenames_unique(self, log_bundle):
        _, _, drms, logs = log_bundle
        assert len({d.filename for d in drms}) == len(drms)
        assert len({l.filename for l in logs}) == len(logs)

    def test_kpi_counts_match_samples(self, log_bundle):
        _, ds, drms, _ = log_bundle
        by_test = ds.samples_by_test()
        tput_drms = [d for d in drms if d.test_label != "rtt"]
        assert any(len(d.kpi_records) == 60 for d in tput_drms)

    def test_max_tests_cap(self, log_bundle):
        route, ds, _, _ = log_bundle
        drms, logs = export_logs(ds, route, max_tests=5)
        assert len(drms) == 5 and len(logs) == 5


class TestMatcher:
    def test_full_match(self, log_bundle):
        _, _, drms, logs = log_bundle
        pairs = match_logs(drms, logs)
        assert len(pairs) == len(logs)

    def test_matches_are_consistent(self, log_bundle):
        _, _, drms, logs = log_bundle
        for pair in match_logs(drms, logs):
            assert pair.drm.operator is pair.app_log.operator
            assert pair.drm.test_label == pair.app_log.test_label
            assert pair.residual_s < 90.0

    def test_inferred_timezones_span_the_trip(self, log_bundle):
        _, _, drms, logs = log_bundle
        zones = {p.inferred_timezone for p in match_logs(drms, logs)}
        assert len(zones) >= 2  # the trip crossed timezones

    def test_unmatchable_log_raises(self, log_bundle):
        _, _, drms, logs = log_bundle
        orphan = logs[0]
        with pytest.raises(SyncError):
            match_logs([d for d in drms if d.test_label != orphan.test_label][:1], [orphan])


class TestConsolidatedDatabase:
    def test_join_is_complete(self, log_bundle):
        _, _, drms, logs = log_bundle
        db = ConsolidatedDatabase.build(match_logs(drms, logs))
        assert db.match_rate() > 0.95
        assert len(db) > 0

    def test_joined_values_preserved(self, log_bundle):
        _, ds, drms, logs = log_bundle
        db = ConsolidatedDatabase.build(match_logs(drms, logs))
        # DL throughput values in the DB are a subset of dataset values.
        db_values = sorted(db.values(test_label="dl_tput"))
        ds_values = sorted(
            round(s.tput_mbps, 4)
            for s in ds.throughput_samples
            if s.direction == "downlink"
        )
        assert len(db_values) == len(ds_values)
        for a, b in zip(db_values[:50], ds_values[:50]):
            assert a == pytest.approx(b, abs=1e-3)

    def test_empty_database_raises(self):
        db = ConsolidatedDatabase(rows=[], unmatched_app_samples=0)
        with pytest.raises(SyncError):
            db.match_rate()
