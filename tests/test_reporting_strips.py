"""ASCII Fig. 1 strips."""

import pytest

from repro.radio.operators import Operator
from repro.radio.technology import RadioTechnology
from repro.reporting.strips import TECH_GLYPHS, render_fig1, render_strip


class TestRenderStrip:
    def test_glyph_per_technology(self):
        assert len(TECH_GLYPHS) == len(RadioTechnology)
        assert len(set(TECH_GLYPHS.values())) == len(TECH_GLYPHS)

    def test_passive_strip_has_no_gaps(self, dataset):
        strip = render_strip(dataset, Operator.VERIZON, "passive")
        assert "." not in strip  # the logger ran for the whole trip

    def test_active_strip_has_gaps_at_partial_scale(self, dataset):
        strip = render_strip(dataset, Operator.VERIZON, "active")
        assert "." in strip

    def test_att_passive_strip_is_pure_4g(self, dataset):
        """Fig. 1d rendered: only 'l'/'L' glyphs."""
        strip = render_strip(dataset, Operator.ATT, "passive")
        assert set(strip) <= {"l", "L"}

    def test_strip_length_tracks_bins(self, dataset):
        coarse = render_strip(dataset, Operator.TMOBILE, "passive", bin_km=100.0)
        fine = render_strip(dataset, Operator.TMOBILE, "passive", bin_km=25.0)
        assert len(fine) > len(coarse) * 3

    def test_width_rebinning(self, dataset):
        strip = render_strip(dataset, Operator.TMOBILE, "passive", bin_km=10.0, width=80)
        assert len(strip) == 80

    def test_only_known_glyphs(self, dataset):
        strip = render_strip(dataset, Operator.TMOBILE, "active")
        allowed = set(TECH_GLYPHS.values()) | {"."}
        assert set(strip) <= allowed


class TestRenderFig1:
    def test_full_figure(self, dataset):
        figure = render_fig1(dataset)
        assert "legend:" in figure
        for op in Operator:
            assert f"{op.code} passive:" in figure
            assert f"{op.code}  active:" in figure

    def test_tmobile_active_strip_contains_5g(self, dataset):
        figure = render_fig1(dataset)
        active_line = next(
            line for line in figure.splitlines() if line.startswith("T  active:")
        )
        assert any(g in active_line for g in ("n", "N", "M"))
