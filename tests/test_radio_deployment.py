"""Deployment model: zones, technology mixes, coverage calibration."""

import numpy as np
import pytest

from repro.errors import DeploymentError
from repro.geo.regions import RegionType
from repro.geo.timezones import Timezone
from repro.radio.deployment import (
    DEFAULT_TECH_MIX,
    DeploymentModel,
    TIMEZONE_5G_MULTIPLIER,
    ZoneLengthParams,
    adjusted_mix,
)
from repro.radio.operators import Operator
from repro.radio.technology import RadioTechnology


@pytest.fixture(scope="module")
def verizon_deployment(route):
    return DeploymentModel.build(Operator.VERIZON, route, np.random.default_rng(1))


class TestTechMixTables:
    @pytest.mark.parametrize("op", list(Operator))
    @pytest.mark.parametrize("region", list(RegionType))
    def test_mixes_are_distributions(self, op, region):
        mix = DEFAULT_TECH_MIX[op][region]
        assert sum(mix.values()) == pytest.approx(1.0)
        assert all(p >= 0 for p in mix.values())

    def test_tmobile_leads_in_midband(self):
        for region in RegionType:
            t = DEFAULT_TECH_MIX[Operator.TMOBILE][region][RadioTechnology.NR_MID]
            v = DEFAULT_TECH_MIX[Operator.VERIZON][region][RadioTechnology.NR_MID]
            a = DEFAULT_TECH_MIX[Operator.ATT][region][RadioTechnology.NR_MID]
            assert t > v and t > a

    def test_verizon_mmwave_in_cities(self):
        city = DEFAULT_TECH_MIX[Operator.VERIZON][RegionType.CITY]
        assert city[RadioTechnology.NR_MMWAVE] >= 0.25

    def test_att_leans_on_lte_a(self):
        hwy = DEFAULT_TECH_MIX[Operator.ATT][RegionType.HIGHWAY]
        assert hwy[RadioTechnology.LTE_A] >= 0.5

    @pytest.mark.parametrize("op", list(Operator))
    @pytest.mark.parametrize("tz", list(Timezone))
    def test_adjusted_mix_is_distribution(self, op, tz):
        for region in RegionType:
            mix = adjusted_mix(op, region, tz)
            assert sum(mix.values()) == pytest.approx(1.0)
            assert all(p >= -1e-12 for p in mix.values())

    def test_adjusted_mix_shifts_5g_mass(self):
        base = DEFAULT_TECH_MIX[Operator.ATT][RegionType.HIGHWAY]
        mountain = adjusted_mix(Operator.ATT, RegionType.HIGHWAY, Timezone.MOUNTAIN)
        base_5g = sum(p for t, p in base.items() if t.is_5g)
        mnt_5g = sum(p for t, p in mountain.items() if t.is_5g)
        assert mnt_5g < base_5g  # AT&T's weak Mountain deployment (Fig. 2c)

    def test_multiplier_tables_cover_everything(self):
        for op in Operator:
            assert set(TIMEZONE_5G_MULTIPLIER[op]) == set(Timezone)


class TestZoneLength:
    def test_samples_within_envelope(self, rng):
        params = ZoneLengthParams(800.0)
        for _ in range(200):
            length = params.sample(rng)
            assert 80.0 <= length <= 20_000.0

    def test_median_roughly_respected(self, rng):
        params = ZoneLengthParams(800.0)
        lengths = [params.sample(rng) for _ in range(3000)]
        assert 700.0 < float(np.median(lengths)) < 900.0


class TestDeploymentModel:
    def test_zones_tile_the_route(self, verizon_deployment, route):
        zones = verizon_deployment.zones
        assert zones[0].start_m == 0.0
        assert zones[-1].end_m == pytest.approx(route.total_length_m)
        for prev, cur in zip(zones, zones[1:]):
            assert cur.start_m == pytest.approx(prev.end_m)

    def test_macro_zones_tile_the_route(self, verizon_deployment, route):
        zones = verizon_deployment.macro_zones
        assert zones[0].start_m == 0.0
        assert zones[-1].end_m == pytest.approx(route.total_length_m)

    def test_every_zone_deploys_lte(self, verizon_deployment):
        for zone in verizon_deployment.zones[:500]:
            assert RadioTechnology.LTE in zone.deployed

    def test_best_tech_is_deployed(self, verizon_deployment):
        for zone in verizon_deployment.zones[:500]:
            assert zone.best_tech in zone.deployed

    def test_cells_cover_deployed_set(self, verizon_deployment):
        for zone in verizon_deployment.zones[:200]:
            assert set(zone.cells) == set(zone.deployed)

    def test_zone_lookup(self, verizon_deployment):
        zone = verizon_deployment.zone_at(1_000_000.0)
        assert zone.start_m <= 1_000_000.0 <= zone.end_m

    def test_zone_lookup_out_of_range(self, verizon_deployment):
        with pytest.raises(DeploymentError):
            verizon_deployment.zone_at(-5.0)

    def test_loads_are_shares(self, verizon_deployment):
        for zone in verizon_deployment.zones[:500]:
            assert 0.0 < zone.load_dl <= 1.0
            assert 0.0 < zone.load_ul <= 1.0

    def test_cell_for_undeployed_tech_raises(self, verizon_deployment):
        zone = next(
            z
            for z in verizon_deployment.zones
            if RadioTechnology.NR_MMWAVE not in z.deployed
        )
        with pytest.raises(DeploymentError):
            zone.cell_for(RadioTechnology.NR_MMWAVE)

    def test_deterministic_given_rng_state(self, route):
        d1 = DeploymentModel.build(Operator.ATT, route, np.random.default_rng(5))
        d2 = DeploymentModel.build(Operator.ATT, route, np.random.default_rng(5))
        assert len(d1.zones) == len(d2.zones)
        assert d1.zones[10].best_tech is d2.zones[10].best_tech

    def test_macro_grid_density_matches_table1(self, route):
        # Table 1 handover counts imply macro zone counts ~2657/4119/2494.
        expected = {Operator.VERIZON: 2657, Operator.TMOBILE: 4119, Operator.ATT: 2494}
        for op, target in expected.items():
            model = DeploymentModel.build(op, route, np.random.default_rng(2))
            count = len(model.macro_zones)
            assert target * 0.75 < count < target * 1.25

    def test_coverage_mix_realised_tmobile(self, route):
        # Fig. 2a: T-Mobile ≈68% 5G of miles; check the deployment ceiling
        # is in that neighbourhood (length-weighted best-tech shares).
        model = DeploymentModel.build(Operator.TMOBILE, route, np.random.default_rng(3))
        total = sum(z.length_m for z in model.zones)
        share_5g = sum(z.length_m for z in model.zones if z.best_tech.is_5g) / total
        assert 0.55 < share_5g < 0.8

    def test_coverage_mix_realised_att_high_speed(self, route):
        # Fig. 2a: AT&T's high-speed 5G is ~3% of miles.
        model = DeploymentModel.build(Operator.ATT, route, np.random.default_rng(3))
        total = sum(z.length_m for z in model.zones)
        hs = sum(
            z.length_m for z in model.zones if z.best_tech.is_high_throughput
        ) / total
        assert hs < 0.08
