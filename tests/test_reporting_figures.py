"""Figure-series export."""

import json

import pytest

from repro.reporting.figures import export_figures_json, figure_series


@pytest.fixture(scope="module")
def bundle(dataset):
    return figure_series(dataset)


class TestFigureSeries:
    def test_all_figures_present(self, bundle):
        for fig in ("fig2a", "fig3", "fig4", "fig5", "fig6a", "fig9",
                    "fig10", "fig11", "fig12"):
            assert fig in bundle

    def test_cdf_series_are_monotone(self, bundle):
        for op_series in bundle["fig3"].values():
            for series in op_series.values():
                ys = series["y"]
                assert all(b >= a for a, b in zip(ys, ys[1:]))
                assert ys[-1] == pytest.approx(1.0)

    def test_coverage_bars_sum_to_one(self, bundle):
        for shares in bundle["fig2a"].values():
            assert sum(shares.values()) == pytest.approx(1.0)

    def test_scatter_points_valid(self, bundle):
        for points in bundle["fig10"].values():
            for p in points:
                assert 0.0 <= p["hs5g"] <= 1.0
                assert p["tput"] >= 0.0

    def test_json_serialisable(self, bundle):
        text = json.dumps(bundle)
        assert len(text) > 10_000

    def test_export_writes_file(self, dataset, tmp_path):
        path = tmp_path / "figures.json"
        count = export_figures_json(dataset, path)
        assert count >= 9
        loaded = json.loads(path.read_text())
        assert "fig3" in loaded
