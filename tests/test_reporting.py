"""Text-table renderer."""

import pytest

from repro.reporting.tables import format_value, render_table


class TestFormatValue:
    def test_float_precision(self):
        assert format_value(3.14159) == "3.14"
        assert format_value(3.14159, precision=3) == "3.142"

    def test_large_float_thousands(self):
        assert format_value(5711.0) == "5,711"

    def test_nan_dash(self):
        assert format_value(float("nan")) == "-"

    def test_bool(self):
        assert format_value(True) == "yes"
        assert format_value(False) == "no"

    def test_string_passthrough(self):
        assert format_value("Verizon") == "Verizon"


class TestRenderTable:
    def test_basic_shape(self):
        out = render_table(["op", "median"], [["V", 12.5], ["T", 8.25]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("op")
        assert "-+-" in lines[1]

    def test_title(self):
        out = render_table(["a"], [[1]], title="Table 1")
        assert out.splitlines()[0] == "Table 1"

    def test_alignment(self):
        out = render_table(["name", "v"], [["long-name", 1], ["x", 22]])
        lines = out.splitlines()
        assert lines[2].index("|") == lines[3].index("|")

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])
