"""Policy inference: recovering operator behaviour from the dataset."""

import pytest

from repro.geo.timezones import Timezone
from repro.policy.inference import (
    estimate_idle_upgrade_rates,
    estimate_ul_demotion_rate,
)
from repro.radio.operators import Operator


class TestIdleUpgradeInference:
    def test_att_never_upgrades(self, dataset):
        """Fig. 1d's policy recovered: AT&T's idle-upgrade rate ≈ 0."""
        est = estimate_idle_upgrade_rates(dataset, Operator.ATT)
        assert est.overall_rate < 0.1

    def test_tmobile_east_west_split_recovered(self, dataset):
        """The regional policy (§4.1) is visible in the estimates."""
        est = estimate_idle_upgrade_rates(dataset, Operator.TMOBILE)
        east = [
            est.rate_by_timezone[tz]
            for tz in (Timezone.CENTRAL, Timezone.EASTERN)
            if est.support_by_timezone[tz] >= 5
        ]
        west = [
            est.rate_by_timezone[tz]
            for tz in (Timezone.PACIFIC, Timezone.MOUNTAIN)
            if est.support_by_timezone[tz] >= 5
        ]
        if east and west:
            assert min(east) > max(west)

    def test_rates_are_probabilities(self, dataset):
        for op in Operator:
            est = estimate_idle_upgrade_rates(dataset, op)
            for rate in est.rate_by_timezone.values():
                assert 0.0 <= rate <= 1.0

    def test_support_recorded(self, dataset):
        est = estimate_idle_upgrade_rates(dataset, Operator.VERIZON)
        assert sum(est.support_by_timezone.values()) > 0


class TestUlDemotionInference:
    def test_rates_are_probabilities(self, dataset):
        for op in (Operator.VERIZON, Operator.TMOBILE):
            rate = estimate_ul_demotion_rate(dataset, op)
            assert 0.0 <= rate <= 1.0

    def test_demotion_exists_for_tmobile(self, dataset):
        """T-Mobile's midband UL demotion (Fig. 2b) is recoverable —
        a substantial share of HS-5G downlink locations serve the uplink
        with something slower."""
        rate = estimate_ul_demotion_rate(dataset, Operator.TMOBILE)
        assert rate > 0.15
