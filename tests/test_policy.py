"""Operator technology-selection policies (the Fig. 1 / Fig. 2b mechanics)."""

import numpy as np
import pytest

from repro.geo.regions import RegionType
from repro.geo.timezones import Timezone
from repro.policy.profiles import DEFAULT_POLICY_PROFILES, TrafficProfile
from repro.policy.selection import TechnologySelector
from repro.radio.deployment import DeploymentModel
from repro.radio.operators import Operator
from repro.radio.technology import RadioTechnology


@pytest.fixture(scope="module")
def att_deployment(route):
    return DeploymentModel.build(Operator.ATT, route, np.random.default_rng(11))


@pytest.fixture(scope="module")
def tmobile_deployment(route):
    return DeploymentModel.build(Operator.TMOBILE, route, np.random.default_rng(12))


class TestProfiles:
    def test_demotion_rules_are_distributions(self):
        for profile in DEFAULT_POLICY_PROFILES.values():
            for rule in profile.ul_demotion.values():
                assert sum(rule.values()) == pytest.approx(1.0)

    def test_att_never_upgrades_idle(self):
        profile = DEFAULT_POLICY_PROFILES[Operator.ATT]
        assert all(p == 0.0 for p in profile.idle_5g_upgrade_prob.values())

    def test_tmobile_east_west_split(self):
        profile = DEFAULT_POLICY_PROFILES[Operator.TMOBILE]
        assert (
            profile.idle_5g_upgrade_prob[Timezone.CENTRAL]
            > profile.idle_5g_upgrade_prob[Timezone.PACIFIC]
        )


class TestSelection:
    def test_backlogged_dl_mostly_best_tech(self, att_deployment, rng):
        selector = TechnologySelector(Operator.ATT, rng)
        hits = 0
        zones = att_deployment.zones[:300]
        for zone in zones:
            if selector.select(zone, TrafficProfile.BACKLOGGED_DL) is zone.best_tech:
                hits += 1
        assert hits / len(zones) > 0.9

    def test_sticky_per_zone(self, att_deployment, rng):
        selector = TechnologySelector(Operator.ATT, rng)
        zone = att_deployment.zones[5]
        first = selector.select(zone, TrafficProfile.BACKLOGGED_UL)
        for _ in range(10):
            assert selector.select(zone, TrafficProfile.BACKLOGGED_UL) is first

    def test_selected_tech_always_deployed(self, tmobile_deployment, rng):
        selector = TechnologySelector(Operator.TMOBILE, rng)
        for zone in tmobile_deployment.zones[:300]:
            for traffic in TrafficProfile:
                assert selector.select(zone, traffic) in zone.deployed

    def test_att_idle_is_always_4g_outside_cities(self, att_deployment, rng):
        """Fig. 1d: the AT&T handover-logger saw only LTE/LTE-A."""
        selector = TechnologySelector(Operator.ATT, rng)
        for zone in att_deployment.zones[:500]:
            if zone.region is RegionType.CITY:
                continue
            assert selector.select(zone, TrafficProfile.IDLE_PING).is_4g

    def test_uplink_shows_less_high_speed_5g(self, tmobile_deployment, rng):
        """Fig. 2b: HS-5G coverage is higher for downlink than uplink."""
        selector = TechnologySelector(Operator.TMOBILE, rng)
        zones = [z for z in tmobile_deployment.zones if z.best_tech.is_high_throughput]
        dl_hs = sum(
            selector.select(z, TrafficProfile.BACKLOGGED_DL).is_high_throughput
            for z in zones
        )
        ul_hs = sum(
            selector.select(z, TrafficProfile.BACKLOGGED_UL).is_high_throughput
            for z in zones
        )
        assert dl_hs > ul_hs

    def test_tmobile_idle_upgrades_more_in_east(self, tmobile_deployment, rng):
        """Fig. 1c/1f: passive and active views agree in the east half."""
        selector = TechnologySelector(Operator.TMOBILE, rng)
        east, west = [], []
        for zone in tmobile_deployment.zones:
            if not zone.best_tech.is_5g:
                continue
            is_5g = selector.select(zone, TrafficProfile.IDLE_PING).is_5g
            if zone.timezone in (Timezone.CENTRAL, Timezone.EASTERN):
                east.append(is_5g)
            else:
                west.append(is_5g)
        assert np.mean(east) > np.mean(west) + 0.3

    def test_profile_operator_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            TechnologySelector(
                Operator.VERIZON, rng, profile=DEFAULT_POLICY_PROFILES[Operator.ATT]
            )
