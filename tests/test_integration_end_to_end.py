"""End-to-end integration: campaign → logs → sync → analysis."""

import pytest

from repro.analysis import coverage, handovers, longterm, ookla, performance
from repro.analysis.correlation import correlation_table
from repro.campaign.runner import CampaignConfig, DriveCampaign
from repro.campaign.tests import TestType
from repro.radio.operators import Operator
from repro.sync.database import ConsolidatedDatabase
from repro.sync.matcher import match_logs
from repro.xcal.export import export_logs


class TestFullPipeline:
    """One shared small campaign pushed through every downstream stage."""

    def test_analysis_chain_runs_on_generated_dataset(self, dataset):
        # §4 coverage
        for op in Operator:
            assert coverage.active_coverage_shares(dataset, op).share_5g >= 0.0
        # §5 performance
        for op in Operator:
            performance.static_vs_driving(dataset, op)
        # §5.5 Table 2
        assert len(correlation_table(dataset)) == 6
        # §5.6 Fig. 9 / Table 3
        assert len(ookla.ookla_comparison(dataset)) == 3
        # §6 handovers
        for op in Operator:
            handovers.handovers_per_mile(dataset, op, "downlink")

    def test_log_round_trip_preserves_analysis_inputs(self, campaign, dataset):
        drms, logs = export_logs(dataset, campaign.route, max_tests=60)
        pairs = match_logs(drms, logs)
        db = ConsolidatedDatabase.build(pairs)
        assert db.match_rate() > 0.95
        # The joined KPI columns are faithful: spot-check a throughput test.
        pair = next(p for p in pairs if p.app_log.test_label == "dl_tput")
        ds_samples = {
            round(s.time_s - pair.app_log.samples[0][0], 1): s
            for s in dataset.throughput_samples
        }
        assert len(pair.drm.kpi_records) == len(pair.app_log.samples)

    def test_summary_consistent_with_parts(self, dataset):
        summary = dataset.summary()
        assert summary.test_counts[TestType.DOWNLINK_THROUGHPUT] == len(
            dataset.tests_of(test_type=TestType.DOWNLINK_THROUGHPUT)
        )
        assert sum(summary.runtime_min.values()) > 0.0


class TestScaleBehaviour:
    def test_tiny_campaign_still_covers_timezones(self):
        ds = DriveCampaign(
            CampaignConfig(seed=99, scale=0.004, include_apps=False, include_static=False)
        ).run()
        zones = {s.timezone for s in ds.throughput_samples}
        assert len(zones) >= 3

    def test_apps_can_be_disabled(self):
        ds = DriveCampaign(
            CampaignConfig(seed=99, scale=0.004, include_apps=False, include_static=False)
        ).run()
        assert not ds.offload_runs
        assert not ds.video_runs
        assert not ds.gaming_runs

    def test_static_can_be_disabled(self):
        ds = DriveCampaign(
            CampaignConfig(seed=99, scale=0.004, include_apps=False, include_static=False)
        ).run()
        assert not ds.tput(static=True)
