"""The statistics layer: registry, bootstrap CIs, and NaN discipline."""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from repro.errors import SweepError
from repro.sweep.stats import (
    StatisticSummary,
    bootstrap_ci,
    evaluate_statistics,
    get_statistic,
    register_statistic,
    registered_statistics,
    summarize_statistic,
    unregister_statistic,
)


class TestRegistry:
    def test_builtin_coverage_of_paper_sections(self):
        names = registered_statistics()
        # §4 coverage, §5 performance, §6 handovers, §7 apps, Table 1.
        assert len(names) >= 15
        assert {
            "coverage_5g_share_T",
            "driving_dl_median_mbps_V",
            "driving_rtt_median_ms_A",
            "handovers_per_mile_median_V",
            "video_qoe_median",
            "unique_cells_total",
        } <= set(names)

    def test_unknown_name_raises(self):
        with pytest.raises(SweepError):
            get_statistic("nope")

    def test_duplicate_registration_rejected(self):
        register_statistic("tmp_stat", "test", "", lambda ds: 1.0)
        try:
            with pytest.raises(SweepError):
                register_statistic("tmp_stat", "again", "", lambda ds: 2.0)
        finally:
            unregister_statistic("tmp_stat")

    def test_custom_statistic_evaluates(self, bare_dataset):
        register_statistic(
            "tmp_n_rtts", "number of RTT samples", "samples",
            lambda ds: float(len(ds.rtt_samples)),
        )
        try:
            values = evaluate_statistics(bare_dataset, ["tmp_n_rtts"])
            assert values["tmp_n_rtts"] == len(bare_dataset.rtt_samples) > 0
        finally:
            unregister_statistic("tmp_n_rtts")

    def test_evaluate_on_full_dataset(self, dataset):
        """On an apps+static campaign every built-in should be finite."""
        values = evaluate_statistics(dataset)
        finite = [n for n, v in values.items() if math.isfinite(v)]
        assert len(finite) >= 15, sorted(set(values) - set(finite))

    def test_uncomputable_statistic_is_nan_not_raise(self, bare_dataset):
        # bare_dataset has no app runs: app statistics degrade to NaN.
        values = evaluate_statistics(bare_dataset, ["video_qoe_median"])
        assert math.isnan(values["video_qoe_median"])


class TestBootstrapCi:
    def test_deterministic(self):
        values = np.asarray([1.0, 2.0, 3.0, 4.0, 5.0])
        rng_a = np.random.default_rng(7)
        rng_b = np.random.default_rng(7)
        assert bootstrap_ci(values, rng=rng_a) == bootstrap_ci(values, rng=rng_b)

    def test_interval_ordered_and_within_range(self):
        values = np.asarray([3.0, 1.0, 4.0, 1.5, 9.2, 2.6])
        lo, hi = bootstrap_ci(values, confidence=0.95, n_boot=500)
        assert lo <= hi
        assert values.min() <= lo and hi <= values.max()

    def test_single_value_is_nan_not_zero_width(self):
        # Regression: one value used to yield the zero-width interval
        # (4.2, 4.2) — perfect certainty from a single replication.
        lo, hi = bootstrap_ci(np.asarray([4.2]))
        assert math.isnan(lo) and math.isnan(hi)

    def test_narrows_with_confidence(self):
        values = np.asarray([1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0])
        rng = np.random.default_rng(0)
        lo95, hi95 = bootstrap_ci(values, 0.95, 2000, np.random.default_rng(0))
        lo50, hi50 = bootstrap_ci(values, 0.50, 2000, np.random.default_rng(0))
        assert hi50 - lo50 < hi95 - lo95

    def test_invalid_inputs(self):
        with pytest.raises(SweepError):
            bootstrap_ci(np.asarray([1.0, 2.0]), confidence=1.5)
        with pytest.raises(SweepError):
            bootstrap_ci(np.asarray([1.0, 2.0]), n_boot=0)
        with pytest.raises(SweepError):
            bootstrap_ci(np.asarray([]))
        with pytest.raises(SweepError):
            bootstrap_ci(np.asarray([1.0, math.nan]))


class TestSummaries:
    def test_summary_fields(self):
        register_statistic("tmp_sum", "test", "u", lambda ds: 0.0)
        try:
            summary = summarize_statistic(
                "tmp_sum", {1: 2.0, 2: 4.0, 3: 6.0}, confidence=0.9, n_boot=200
            )
        finally:
            unregister_statistic("tmp_sum")
        assert summary is not None
        assert summary.seeds == (1, 2, 3)
        assert summary.mean == pytest.approx(4.0)
        assert summary.median == pytest.approx(4.0)
        assert summary.std == pytest.approx(2.0)
        assert summary.ci_low <= summary.mean <= summary.ci_high
        assert summary.n_seeds == 3

    def test_nan_seeds_excluded(self):
        register_statistic("tmp_nan", "test", "", lambda ds: 0.0)
        try:
            summary = summarize_statistic(
                "tmp_nan", {1: 1.0, 2: math.nan, 3: 3.0}
            )
        finally:
            unregister_statistic("tmp_nan")
        assert summary is not None
        assert summary.seeds == (1, 3)
        assert summary.values == (1.0, 3.0)

    def test_all_nan_returns_none(self):
        register_statistic("tmp_allnan", "test", "", lambda ds: math.nan)
        try:
            assert summarize_statistic("tmp_allnan", {1: math.nan}) is None
        finally:
            unregister_statistic("tmp_allnan")

    def test_repeated_summaries_bit_identical(self):
        """The bootstrap RNG is derived from the statistic name, so the
        same sweep emits the same intervals every time."""
        register_statistic("tmp_det", "test", "", lambda ds: 0.0)
        try:
            a = summarize_statistic("tmp_det", {1: 1.0, 2: 5.0, 3: 2.5})
            b = summarize_statistic("tmp_det", {1: 1.0, 2: 5.0, 3: 2.5})
        finally:
            unregister_statistic("tmp_det")
        assert a == b

    def test_round_trip_through_json(self):
        register_statistic("tmp_rt", "round trip", "ms", lambda ds: 0.0)
        try:
            summary = summarize_statistic("tmp_rt", {1: 1.25, 2: 2.75})
        finally:
            unregister_statistic("tmp_rt")
        obj = summary.to_obj()
        assert StatisticSummary.from_obj(obj).to_obj() == obj

    def test_single_seed_surfaces_nan_not_false_certainty(self):
        """Regression: one finite seed used to report std=0.0 and a
        zero-width CI at the value, claiming certainty a single
        replication cannot support."""
        register_statistic("tmp_one", "single seed", "ms", lambda ds: 0.0)
        try:
            summary = summarize_statistic("tmp_one", {7: 3.5})
        finally:
            unregister_statistic("tmp_one")
        assert summary is not None
        assert summary.n_seeds == 1
        assert summary.mean == 3.5 and summary.median == 3.5
        assert math.isnan(summary.std)
        assert math.isnan(summary.ci_low) and math.isnan(summary.ci_high)

    def test_single_seed_round_trip_is_strict_json(self):
        """The NaN std/CI must serialise as null (strict JSON), and parse
        back to NaN — not crash, and not silently become 0.0."""
        register_statistic("tmp_one_rt", "single seed", "ms", lambda ds: 0.0)
        try:
            summary = summarize_statistic("tmp_one_rt", {7: 3.5})
        finally:
            unregister_statistic("tmp_one_rt")
        obj = summary.to_obj()
        assert obj["std"] is None
        assert obj["ci_low"] is None and obj["ci_high"] is None
        # Strict encoders (allow_nan=False) must accept the document.
        text = json.dumps(obj, allow_nan=False)
        parsed = StatisticSummary.from_obj(json.loads(text))
        assert math.isnan(parsed.std)
        assert math.isnan(parsed.ci_low) and math.isnan(parsed.ci_high)
        assert parsed.to_obj() == obj
