"""Technology taxonomy (HT/LT classes, band properties)."""

import pytest

from repro.radio.technology import (
    ALL_TECHNOLOGIES,
    HIGH_THROUGHPUT_TECHS,
    LOW_THROUGHPUT_TECHS,
    RadioTechnology,
)


class TestTaxonomy:
    def test_five_technologies(self):
        assert len(ALL_TECHNOLOGIES) == 5

    def test_ht_lt_partition(self):
        # §5.4: HT = {mmWave, midband}, LT = {LTE, LTE-A, 5G-low}.
        assert HIGH_THROUGHPUT_TECHS | LOW_THROUGHPUT_TECHS == set(ALL_TECHNOLOGIES)
        assert not HIGH_THROUGHPUT_TECHS & LOW_THROUGHPUT_TECHS
        assert RadioTechnology.NR_MMWAVE in HIGH_THROUGHPUT_TECHS
        assert RadioTechnology.NR_MID in HIGH_THROUGHPUT_TECHS
        assert RadioTechnology.NR_LOW in LOW_THROUGHPUT_TECHS

    def test_5g_flags(self):
        assert RadioTechnology.NR_LOW.is_5g
        assert RadioTechnology.NR_MMWAVE.is_5g
        assert not RadioTechnology.LTE.is_5g
        assert RadioTechnology.LTE_A.is_4g

    def test_ranks_strictly_increase(self):
        ranks = [t.rank for t in ALL_TECHNOLOGIES]
        assert ranks == sorted(ranks)
        assert len(set(ranks)) == len(ranks)

    def test_mmwave_carrier_is_high_band(self):
        assert RadioTechnology.NR_MMWAVE.carrier_ghz > 24.0
        assert RadioTechnology.NR_LOW.carrier_ghz < 1.0

    def test_channel_bandwidth_ordering(self):
        assert (
            RadioTechnology.NR_MMWAVE.channel_mhz
            > RadioTechnology.NR_MID.channel_mhz
            > RadioTechnology.LTE.channel_mhz
        )

    def test_ran_latency_ordering(self):
        # mmWave's short slots give the lowest air latency (Fig. 4's RTTs).
        assert (
            RadioTechnology.NR_MMWAVE.ran_latency_ms
            < RadioTechnology.NR_MID.ran_latency_ms
            < RadioTechnology.LTE.ran_latency_ms
        )

    def test_labels_match_paper(self):
        assert str(RadioTechnology.NR_MMWAVE) == "5G-mmWave"
        assert str(RadioTechnology.LTE_A) == "LTE-A"
        assert str(RadioTechnology.NR_LOW) == "5G-low"
