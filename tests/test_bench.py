"""The benchmark harness: registry, reports, baselines, and the gate.

The gate is correctness tooling for every later perf PR, so its own
behavior is pinned hard: exact pass/fail boundaries, loud schema
mismatches, warnings (never silent passes, never spurious failures) for
missing baselines and foreign environments, and byte-stable JSON so two
saves of the same measurements diff clean.
"""

from __future__ import annotations

import json

import pytest

from repro.bench import (
    BENCH_SCHEMA_VERSION,
    BenchReport,
    BenchResult,
    environment_fingerprint,
    measure,
    register_benchmark,
    registered_benchmarks,
    run_benchmark,
    run_suite,
    unregister_benchmark,
)
from repro.bench.compare import compare_reports, gate_reports, parse_budget
from repro.bench.__main__ import main
from repro.errors import BenchError


def make_report(timings: dict[str, tuple[float, ...]], **env_overrides):
    """A report with one result per name, on this machine's environment."""
    environment = environment_fingerprint()
    environment.update(env_overrides)
    return BenchReport(
        suite="test",
        environment=environment,
        results={
            name: BenchResult(
                name=name, warmup=0, repeats=len(ts), timings_s=tuple(ts)
            )
            for name, ts in timings.items()
        },
    )


@pytest.fixture()
def fast_benchmark():
    """A registered no-op benchmark with deterministic counters."""
    calls = {"setup": 0, "run": 0}

    def factory(workdir):
        calls["setup"] += 1
        assert workdir.is_dir()

        def run():
            calls["run"] += 1

        return run, lambda: {"bench.calls": calls["run"]}

    register_benchmark("tmp.fast", "no-op", factory)
    try:
        yield calls
    finally:
        unregister_benchmark("tmp.fast")


class TestHarness:
    def test_measure_counts_calls(self):
        calls = []
        timings = measure(lambda: calls.append(1), warmup=2, repeats=3)
        assert len(calls) == 5  # warmup + repeats
        assert len(timings) == 3
        assert all(t >= 0 for t in timings)

    def test_measure_rejects_invalid(self):
        with pytest.raises(BenchError):
            measure(lambda: None, warmup=-1)
        with pytest.raises(BenchError):
            measure(lambda: None, repeats=0)

    def test_run_benchmark_sets_up_once(self, fast_benchmark):
        result = run_benchmark("tmp.fast", warmup=2, repeats=4)
        assert fast_benchmark["setup"] == 1
        assert fast_benchmark["run"] == 6
        assert result.repeats == 4
        assert len(result.timings_s) == 4
        assert result.counters == {"bench.calls": 6}

    def test_unknown_benchmark_raises(self):
        with pytest.raises(BenchError):
            run_benchmark("no.such.benchmark")

    def test_duplicate_registration_rejected(self, fast_benchmark):
        with pytest.raises(BenchError):
            register_benchmark("tmp.fast", "again", lambda w: lambda: None)

    def test_builtin_suite_registered(self):
        names = registered_benchmarks()
        assert {
            "obs.null_span",
            "stats.bootstrap_ci",
            "engine.serial",
            "sweep.warm_cache",
            "store.query",
        } <= set(names)

    def test_summary_statistics(self):
        result = BenchResult(
            name="x", warmup=0, repeats=5,
            timings_s=(5.0, 1.0, 3.0, 2.0, 4.0),
        )
        assert result.min_s == 1.0
        assert result.median_s == 3.0
        assert result.iqr_s == pytest.approx(2.0)  # inclusive quartiles 2 and 4
        single = BenchResult(name="y", warmup=0, repeats=1, timings_s=(2.0,))
        assert single.iqr_s == 0.0


class TestReportDocument:
    def test_run_suite_writes_schema_versioned_json(
        self, fast_benchmark, tmp_path
    ):
        report = run_suite(names=["tmp.fast"], warmup=0, repeats=2)
        path = tmp_path / "BENCH_test.json"
        report.save(path)
        obj = json.loads(path.read_text())
        assert obj["schema_version"] == BENCH_SCHEMA_VERSION
        assert obj["environment"] == environment_fingerprint()
        assert "tmp.fast" in obj["benchmarks"]
        entry = obj["benchmarks"]["tmp.fast"]
        assert entry["min_s"] == min(entry["timings_s"])
        assert entry["counters"]["bench.calls"] == 2

    def test_save_is_byte_stable(self, tmp_path):
        """Same measurements -> identical bytes, and a load/save round
        trip changes nothing: reports diff clean under version control."""
        report = make_report({"a.x": (0.123456789123, 0.2), "a.y": (1.5,)})
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        report.save(a)
        report.save(b)
        assert a.read_bytes() == b.read_bytes()
        BenchReport.load(a).save(b)
        assert a.read_bytes() == b.read_bytes()

    def test_schema_mismatch_refuses_to_load(self, tmp_path):
        report = make_report({"a.x": (1.0,)})
        path = tmp_path / "BENCH_old.json"
        report.save(path)
        obj = json.loads(path.read_text())
        obj["schema_version"] = BENCH_SCHEMA_VERSION + 1
        path.write_text(json.dumps(obj))
        with pytest.raises(BenchError, match="schema"):
            BenchReport.load(path)

    def test_missing_baseline_is_loud(self, tmp_path):
        with pytest.raises(BenchError, match="cannot read"):
            BenchReport.load(tmp_path / "BENCH_nope.json")

    def test_garbage_document_is_loud(self, tmp_path):
        path = tmp_path / "BENCH_bad.json"
        path.write_text("{not json")
        with pytest.raises(BenchError, match="not JSON"):
            BenchReport.load(path)
        path.write_text(json.dumps({"schema_version": BENCH_SCHEMA_VERSION}))
        with pytest.raises(BenchError, match="benchmarks"):
            BenchReport.load(path)


class TestCompare:
    def test_deltas_and_exclusives(self):
        current = make_report({"a.x": (2.0,), "a.new": (1.0,)})
        baseline = make_report({"a.x": (1.0,), "a.gone": (1.0,)})
        comparison = compare_reports(current, baseline)
        (delta,) = comparison.deltas
        assert delta.name == "a.x"
        assert delta.ratio == pytest.approx(2.0)
        assert comparison.only_current == ["a.new"]
        assert comparison.only_baseline == ["a.gone"]
        assert comparison.env_mismatches == []

    def test_environment_mismatch_detected(self):
        current = make_report({"a.x": (1.0,)})
        baseline = make_report({"a.x": (1.0,)}, cpu_count=999)
        comparison = compare_reports(current, baseline)
        assert any("cpu_count" in m for m in comparison.env_mismatches)

    def test_parse_budget(self):
        assert parse_budget("25%") == pytest.approx(0.25)
        assert parse_budget("0.25") == pytest.approx(0.25)
        assert parse_budget("0") == 0.0
        with pytest.raises(BenchError):
            parse_budget("fast")
        with pytest.raises(BenchError):
            parse_budget("-5%")


class TestGate:
    def test_boundaries(self):
        """Exactly at budget passes; one part in a thousand over fails."""
        baseline = make_report({"a.x": (1.0,)})
        at_budget = make_report({"a.x": (1.25,)})
        over = make_report({"a.x": (1.2513,)})
        faster = make_report({"a.x": (0.5,)})
        assert gate_reports(at_budget, baseline, 0.25).passed
        result = gate_reports(over, baseline, 0.25)
        assert not result.passed
        assert [d.name for d in result.failures] == ["a.x"]
        assert gate_reports(faster, baseline, 0.25).passed
        assert gate_reports(faster, baseline, 0.0).passed

    def test_gate_uses_min_not_median(self):
        """One noisy repeat must not fail the gate if the best repeat is
        clean — min is the noise-robust estimator."""
        baseline = make_report({"a.x": (1.0,)})
        noisy = make_report({"a.x": (1.1, 9.0, 9.0)})
        assert gate_reports(noisy, baseline, 0.25).passed

    def test_missing_entries_warn_not_fail(self):
        current = make_report({"a.new": (1.0,)})
        baseline = make_report({"a.gone": (1.0,)})
        result = gate_reports(current, baseline, 0.25)
        assert result.passed
        assert any("a.new" in w for w in result.warnings)
        assert any("a.gone" in w for w in result.warnings)

    def test_environment_mismatch_warns_but_still_gates(self):
        baseline = make_report({"a.x": (1.0,)}, python="0.0.0")
        regressed = make_report({"a.x": (2.0,)})
        result = gate_reports(regressed, baseline, 0.25)
        assert not result.passed
        assert any("environment mismatch" in w for w in result.warnings)


class TestCli:
    def run_cli(self, *argv):
        return main(list(argv))

    def test_run_then_gate_passes(self, fast_benchmark, tmp_path, capsys):
        out = tmp_path / "BENCH_test.json"
        assert self.run_cli(
            "run", "--filter", "tmp.fast", "--warmup", "0",
            "--repeats", "2", "--out", str(out),
        ) == 0
        assert json.loads(out.read_text())["schema_version"] == (
            BENCH_SCHEMA_VERSION
        )
        assert self.run_cli(
            "gate", "--against", str(out), "--current", str(out),
            "--max-regression", "25%",
        ) == 0
        assert "gate: PASS" in capsys.readouterr().out

    def test_gate_exits_nonzero_on_synthetic_regression(
        self, tmp_path, capsys
    ):
        """The acceptance-criteria scenario: inject a regression into the
        current report and the gate must exit 1 and name the culprit."""
        baseline = make_report({"a.x": (1.0,), "a.y": (1.0,)})
        baseline.save(tmp_path / "BENCH_baseline.json")
        regressed = make_report({"a.x": (1.0,), "a.y": (1.9,)})
        regressed.save(tmp_path / "BENCH_current.json")
        code = self.run_cli(
            "gate",
            "--against", str(tmp_path / "BENCH_baseline.json"),
            "--current", str(tmp_path / "BENCH_current.json"),
            "--max-regression", "25%",
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "gate: FAIL a.y" in out
        assert "a.x" in out  # the clean benchmark is still in the table

    def test_gate_missing_baseline_exits_two(self, tmp_path, capsys):
        code = self.run_cli(
            "gate", "--against", str(tmp_path / "BENCH_missing.json"),
            "--current", str(tmp_path / "BENCH_missing.json"),
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_gate_schema_mismatch_exits_two(self, tmp_path, capsys):
        path = tmp_path / "BENCH_old.json"
        report = make_report({"a.x": (1.0,)})
        report.save(path)
        obj = json.loads(path.read_text())
        obj["schema_version"] = BENCH_SCHEMA_VERSION + 1
        path.write_text(json.dumps(obj))
        good = tmp_path / "BENCH_good.json"
        report.save(good)
        assert self.run_cli(
            "gate", "--against", str(path), "--current", str(good)
        ) == 2
        assert "schema" in capsys.readouterr().err

    def test_compare_prints_mismatch_warnings(self, tmp_path, capsys):
        make_report({"a.x": (1.0,)}).save(tmp_path / "cur.json")
        make_report({"a.x": (1.0,)}, cpu_count=999).save(tmp_path / "base.json")
        assert self.run_cli(
            "compare", str(tmp_path / "cur.json"), str(tmp_path / "base.json")
        ) == 0
        assert "environment mismatch" in capsys.readouterr().out

    def test_bad_budget_exits_two(self, tmp_path, capsys):
        make_report({"a.x": (1.0,)}).save(tmp_path / "b.json")
        assert self.run_cli(
            "gate", "--against", str(tmp_path / "b.json"),
            "--current", str(tmp_path / "b.json"),
            "--max-regression", "warp",
        ) == 2

    def test_unknown_filter_exits_two(self, capsys):
        assert self.run_cli("run", "--filter", "no.such.bench") == 2

    def test_repeated_filters_union(self, fast_benchmark, tmp_path):
        """Two --filter flags run both matches — the second must not
        silently replace the first."""
        register_benchmark(
            "tmp.other", "no-op", lambda workdir: lambda: None
        )
        try:
            out = tmp_path / "BENCH_two.json"
            assert self.run_cli(
                "run", "--filter", "tmp.fast", "--filter", "tmp.other",
                "--warmup", "0", "--repeats", "1", "--out", str(out),
            ) == 0
            names = set(json.loads(out.read_text())["benchmarks"])
            assert names == {"tmp.fast", "tmp.other"}
        finally:
            unregister_benchmark("tmp.other")
