"""Column encodings: seeded-random round-trips and corruption handling."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import StoreError
from repro.store.columnar import (
    ColumnSpec,
    decode_column,
    decode_dict_column,
    encode_column,
)
from repro.radio.operators import Operator


def _roundtrip(spec: ColumnSpec, values: list):
    col = encode_column(spec, values)
    entry = col.footer_entry(offset=0)
    return col, entry, decode_column(entry, col.payload)


class TestSeededRandomRoundTrip:
    """Encode→decode equals the input value-for-value, every column kind."""

    def test_f8_exact_including_specials(self, rng):
        values = list(rng.normal(0.0, 1e6, size=500))
        values += [0.0, -0.0, math.inf, -math.inf, math.nan, 1e-308, 1.5e308]
        col, entry, decoded = _roundtrip(ColumnSpec("x", "f8"), values)
        assert col.codec == "plain"
        # Bit-exact: NaN payloads and signed zeros included.
        assert (
            np.asarray(values, dtype="<f8").tobytes() == decoded.tobytes()
        )
        assert entry["stats"]["nulls"] == 1
        finite = [v for v in values if math.isfinite(v)]
        assert entry["stats"]["min"] == min(finite)
        assert entry["stats"]["max"] == max(finite)

    def test_i8_plain_random(self, rng):
        values = [int(v) for v in rng.integers(-(2**62), 2**62, size=400)]
        col, entry, decoded = _roundtrip(ColumnSpec("x", "i8"), values)
        assert col.codec == "plain"  # random values: runs don't pay off
        assert decoded.tolist() == values
        assert entry["stats"]["min"] == min(values)
        assert entry["stats"]["max"] == max(values)

    def test_i8_rle_slowly_changing(self, rng):
        # Long runs, like a test-id column: RLE must engage and round-trip.
        values = [int(v) for v in np.repeat(rng.integers(0, 50, size=20), 100)]
        col, entry, decoded = _roundtrip(ColumnSpec("x", "i8"), values)
        assert col.codec == "rle"
        assert len(col.payload) < 8 * len(values)
        assert decoded.tolist() == values

    def test_bool_roundtrip_both_codecs(self, rng):
        random_bits = [bool(b) for b in rng.integers(0, 2, size=300)]
        runs = [True] * 200 + [False] * 100 + [True] * 50
        for values in (random_bits, runs):
            _col, _entry, decoded = _roundtrip(ColumnSpec("x", "bool"), values)
            assert [bool(v) for v in decoded.tolist()] == values

    def test_dict_enum_roundtrip(self, rng):
        ops = list(Operator)
        values = [ops[i] for i in rng.integers(0, len(ops), size=250)]
        col = encode_column(ColumnSpec("op", "dict", Operator), values)
        entry = col.footer_entry(offset=0)
        assert col.width == 1  # 3 distinct values fit 1-byte codes
        assert decode_dict_column(entry, col.payload) == [
            v.name for v in values
        ]

    def test_dict_code_width_scales_with_cardinality(self):
        values = [f"cell-{i}" for i in range(300)]  # > 255 distinct
        col = encode_column(ColumnSpec("cell", "dict"), values)
        assert col.width == 2
        entry = col.footer_entry(offset=0)
        assert decode_dict_column(entry, col.payload) == values

    def test_dict_values_first_appearance_order(self):
        col = encode_column(ColumnSpec("s", "dict"), ["b", "a", "b", "c"])
        assert col.values == ("b", "a", "c")

    def test_empty_column_all_kinds(self):
        for kind in ("f8", "i8", "bool", "dict"):
            col = encode_column(ColumnSpec("x", kind), [])
            entry = col.footer_entry(offset=0)
            assert decode_column(entry, col.payload).size == 0
            assert entry["stats"]["min"] is None

    def test_encoding_deterministic(self, rng):
        values = [float(v) for v in rng.normal(size=100)]
        a = encode_column(ColumnSpec("x", "f8"), values)
        b = encode_column(ColumnSpec("x", "f8"), list(values))
        assert a.payload == b.payload
        assert a.footer_entry(0) == b.footer_entry(0)


class TestCorruption:
    """A short or mangled payload raises StoreError, never returns garbage."""

    @pytest.mark.parametrize("kind,values", [
        ("f8", [1.0, 2.0, 3.0]),
        ("i8", list(range(64))),
        ("bool", [True, False] * 40),
        ("dict", ["a", "b", "c", "a"] * 10),
    ])
    def test_truncated_plain_payload(self, kind, values):
        col = encode_column(ColumnSpec("x", kind), values)
        entry = col.footer_entry(offset=0)
        if col.codec != "plain":
            pytest.skip("codec chose RLE for this data")
        with pytest.raises(StoreError, match="truncated"):
            decode_column(entry, col.payload[:-1])

    def test_truncated_rle_payload(self):
        values = [7] * 500 + [9] * 500
        col = encode_column(ColumnSpec("x", "i8"), values)
        assert col.codec == "rle"
        entry = col.footer_entry(offset=0)
        with pytest.raises(StoreError, match="truncated"):
            decode_column(entry, col.payload[:-3])

    def test_rle_count_mismatch(self):
        values = [7] * 500 + [9] * 500
        col = encode_column(ColumnSpec("x", "i8"), values)
        entry = col.footer_entry(offset=0)
        entry["count"] = 999  # footer lies about the row count
        with pytest.raises(StoreError, match="corrupt"):
            decode_column(entry, col.payload)

    def test_dict_code_out_of_range(self):
        col = encode_column(ColumnSpec("x", "dict"), ["a", "b", "b", "a"])
        entry = col.footer_entry(offset=0)
        entry["values"] = ["a"]  # dictionary shorter than the codes claim
        with pytest.raises(StoreError, match="out of range"):
            decode_dict_column(entry, col.payload)

    def test_unknown_kind_rejected(self):
        col = encode_column(ColumnSpec("x", "i8"), [1, 2])
        entry = col.footer_entry(offset=0)
        entry["kind"] = "utf-floats"
        with pytest.raises(StoreError, match="unknown column kind"):
            decode_column(entry, col.payload)

    def test_unknown_spec_kind_rejected(self):
        with pytest.raises(StoreError, match="unknown column kind"):
            encode_column(ColumnSpec("x", "decimal"), [1])
