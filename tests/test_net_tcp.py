"""Single-flow CUBIC model."""

import numpy as np
import pytest

from repro.net.tcp import CubicFlow


def run_flow(flow, capacity, rtt, ticks, bler=0.02):
    return [flow.advance(capacity, rtt, 0.5, bler) for _ in range(ticks)]


class TestCubicFlow:
    def test_never_exceeds_capacity(self, rng):
        flow = CubicFlow(rng)
        tputs = run_flow(flow, 80.0, 50.0, 200)
        assert max(tputs) <= 80.0

    def test_ramps_up_from_cold_start(self, rng):
        flow = CubicFlow(rng)
        tputs = run_flow(flow, 100.0, 50.0, 60, bler=0.0)
        assert np.mean(tputs[:4]) < np.mean(tputs[-10:])

    def test_reaches_capacity_eventually(self, rng):
        flow = CubicFlow(rng)
        tputs = run_flow(flow, 50.0, 40.0, 120, bler=0.01)
        assert max(tputs) > 45.0

    def test_high_bler_depresses_goodput(self):
        # At a long RTT the window recovers slowly, so repeated random
        # losses visibly depress goodput.
        clean = np.mean(run_flow(CubicFlow(np.random.default_rng(0)), 100.0, 250.0, 300, bler=0.0))
        lossy = np.mean(run_flow(CubicFlow(np.random.default_rng(0)), 100.0, 250.0, 300, bler=0.6))
        assert lossy < clean * 0.9

    def test_high_rtt_slows_ramp(self):
        fast = run_flow(CubicFlow(np.random.default_rng(1)), 500.0, 20.0, 20, bler=0.0)
        slow = run_flow(CubicFlow(np.random.default_rng(1)), 500.0, 400.0, 20, bler=0.0)
        assert sum(fast) > sum(slow)

    def test_interruption_reduces_tick_goodput(self):
        f1 = CubicFlow(np.random.default_rng(2))
        run_flow(f1, 100.0, 50.0, 50, bler=0.0)
        base = f1.advance(100.0, 50.0, 0.5, 0.0, interruption_s=0.0)
        f2 = CubicFlow(np.random.default_rng(2))
        run_flow(f2, 100.0, 50.0, 50, bler=0.0)
        hit = f2.advance(100.0, 50.0, 0.5, 0.0, interruption_s=0.4)
        assert hit < base * 0.5

    def test_recovers_after_capacity_drop(self, rng):
        flow = CubicFlow(rng)
        run_flow(flow, 200.0, 50.0, 100)
        run_flow(flow, 2.0, 50.0, 40)  # deep congestion zone
        recovered = run_flow(flow, 200.0, 50.0, 200, bler=0.0)
        assert max(recovered) > 100.0

    def test_invalid_inputs_rejected(self, rng):
        flow = CubicFlow(rng)
        with pytest.raises(ValueError):
            flow.advance(0.0, 50.0, 0.5, 0.1)
        with pytest.raises(ValueError):
            flow.advance(10.0, 0.0, 0.5, 0.1)
        with pytest.raises(ValueError):
            flow.advance(10.0, 50.0, 0.5, 0.1, interruption_s=1.0)

    def test_goodput_non_negative(self, rng):
        flow = CubicFlow(rng)
        for _ in range(500):
            assert flow.advance(5.0, 80.0, 0.5, 0.3) >= 0.0

    def test_window_positive(self, rng):
        flow = CubicFlow(rng)
        run_flow(flow, 1.0, 500.0, 300, bler=0.5)
        assert flow.window_mbit > 0.0
