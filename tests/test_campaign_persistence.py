"""Dataset save/load round trip."""

import gzip
import json

import pytest

from repro.campaign.persistence import FORMAT_VERSION, load_dataset, save_dataset
from repro.errors import LogFormatError
from repro.radio.operators import Operator


@pytest.fixture(scope="module")
def saved(bare_dataset, tmp_path_factory):
    path = tmp_path_factory.mktemp("persist") / "dataset.jsonl.gz"
    save_dataset(bare_dataset, path)
    return path, bare_dataset


class TestRoundTrip:
    def test_header_metadata(self, saved):
        path, original = saved
        loaded = load_dataset(path)
        assert loaded.seed == original.seed
        assert loaded.scale == original.scale
        assert loaded.route_length_km == original.route_length_km
        assert loaded.passive_handover_counts == original.passive_handover_counts
        assert loaded.connected_cells == original.connected_cells

    def test_record_counts(self, saved):
        path, original = saved
        loaded = load_dataset(path)
        assert len(loaded.throughput_samples) == len(original.throughput_samples)
        assert len(loaded.rtt_samples) == len(original.rtt_samples)
        assert len(loaded.tests) == len(original.tests)
        assert len(loaded.handovers) == len(original.handovers)
        assert len(loaded.passive_coverage) == len(original.passive_coverage)

    def test_sample_equality(self, saved):
        path, original = saved
        loaded = load_dataset(path)
        assert loaded.throughput_samples[0] == original.throughput_samples[0]
        assert loaded.rtt_samples[-1] == original.rtt_samples[-1]
        assert loaded.tests[3] == original.tests[3]
        if original.handovers:
            assert loaded.handovers[0] == original.handovers[0]

    def test_analyses_agree(self, saved):
        path, original = saved
        loaded = load_dataset(path)
        import numpy as np

        for op in Operator:
            a = original.tput_values(operator=op, direction="downlink")
            b = loaded.tput_values(operator=op, direction="downlink")
            assert np.allclose(a, b)

    def test_summary_agrees(self, saved):
        path, original = saved
        loaded = load_dataset(path)
        assert loaded.summary().handovers == original.summary().handovers


class TestAppRunsRoundTrip:
    def test_app_records_preserved(self, dataset, tmp_path):
        path = tmp_path / "full.jsonl.gz"
        save_dataset(dataset, path)
        loaded = load_dataset(path)
        assert len(loaded.offload_runs) == len(dataset.offload_runs)
        assert len(loaded.video_runs) == len(dataset.video_runs)
        assert len(loaded.gaming_runs) == len(dataset.gaming_runs)
        assert loaded.offload_runs[0] == dataset.offload_runs[0]
        assert loaded.video_runs[0] == dataset.video_runs[0]
        assert loaded.gaming_runs[0] == dataset.gaming_runs[0]


class TestAtomicSave:
    def test_byte_reproducible(self, bare_dataset, tmp_path):
        a = tmp_path / "a.jsonl.gz"
        b = tmp_path / "b.jsonl.gz"
        save_dataset(bare_dataset, a)
        save_dataset(bare_dataset, b)
        assert a.read_bytes() == b.read_bytes()

    def test_overwrite_is_atomic(self, bare_dataset, tmp_path, monkeypatch):
        """A crash mid-write must leave an existing file untouched."""
        path = tmp_path / "dataset.jsonl.gz"
        save_dataset(bare_dataset, path)
        good = path.read_bytes()

        import repro.campaign.persistence as persistence

        def boom(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(persistence.os, "fsync", boom)
        with pytest.raises(OSError):
            save_dataset(bare_dataset, path)
        assert path.read_bytes() == good

    def test_no_temp_file_left_behind(self, bare_dataset, tmp_path, monkeypatch):
        path = tmp_path / "dataset.jsonl.gz"
        import repro.campaign.persistence as persistence

        def boom(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(persistence.os, "fsync", boom)
        with pytest.raises(OSError):
            save_dataset(bare_dataset, path)
        assert list(tmp_path.iterdir()) == []


class TestErrorHandling:
    def test_not_a_dataset(self, tmp_path):
        path = tmp_path / "junk.gz"
        with gzip.open(path, "wt") as fh:
            fh.write("this is not json\n")
        with pytest.raises(LogFormatError):
            load_dataset(path)

    def test_missing_header(self, tmp_path):
        path = tmp_path / "noheader.gz"
        with gzip.open(path, "wt") as fh:
            fh.write(json.dumps({"kind": "tput"}) + "\n")
        with pytest.raises(LogFormatError):
            load_dataset(path)

    def test_wrong_version(self, tmp_path):
        path = tmp_path / "future.gz"
        with gzip.open(path, "wt") as fh:
            fh.write(json.dumps({
                "kind": "header", "format": FORMAT_VERSION + 1,
                "seed": 0, "scale": 1.0, "route_length_km": 1.0,
            }) + "\n")
        with pytest.raises(LogFormatError):
            load_dataset(path)

    def test_unknown_record_kind(self, tmp_path):
        path = tmp_path / "badkind.gz"
        with gzip.open(path, "wt") as fh:
            fh.write(json.dumps({
                "kind": "header", "format": FORMAT_VERSION,
                "seed": 0, "scale": 1.0, "route_length_km": 1.0,
            }) + "\n")
            fh.write(json.dumps({"kind": "mystery"}) + "\n")
        with pytest.raises(LogFormatError):
            load_dataset(path)


class TestColumnarBackend:
    """save/load dispatch to the columnar store backend transparently."""

    def test_auto_format_by_suffix(self, bare_dataset, tmp_path):
        from repro.store import is_store_file

        path = tmp_path / "dataset.rcol"
        save_dataset(bare_dataset, path)
        assert is_store_file(path)
        back = load_dataset(path)
        assert back.throughput_samples == bare_dataset.throughput_samples
        assert back.passive_coverage == bare_dataset.passive_coverage

    def test_explicit_format_overrides_suffix(self, bare_dataset, tmp_path):
        from repro.store import is_store_file

        path = tmp_path / "dataset.jsonl.gz"
        save_dataset(bare_dataset, path, format="columnar")
        assert is_store_file(path)
        # load_dataset sniffs magic, not the suffix, so this still loads.
        back = load_dataset(path)
        assert back.rtt_samples == bare_dataset.rtt_samples

    def test_unknown_format_rejected(self, bare_dataset, tmp_path):
        with pytest.raises(ValueError, match="unknown dataset format"):
            save_dataset(bare_dataset, tmp_path / "x", format="parquet")

    def test_both_backends_value_identical(self, bare_dataset, tmp_path):
        row_path = tmp_path / "row.jsonl.gz"
        col_path = tmp_path / "col.rcol"
        save_dataset(bare_dataset, row_path, format="jsonl")
        save_dataset(bare_dataset, col_path, format="columnar")
        assert load_dataset(row_path) == load_dataset(col_path)
