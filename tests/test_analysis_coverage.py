"""§4 coverage analysis (Figs. 1-2)."""

import pytest

from repro.analysis import coverage
from repro.errors import AnalysisError
from repro.geo.timezones import Timezone
from repro.radio.operators import Operator
from repro.radio.technology import RadioTechnology
from repro.units import SPEED_BIN_LABELS


class TestActiveCoverage:
    def test_shares_sum_to_one(self, dataset):
        for op in Operator:
            shares = coverage.active_coverage_shares(dataset, op)
            assert sum(shares.shares.values()) == pytest.approx(1.0)

    def test_tmobile_has_highest_5g_share(self, dataset):
        """Fig. 2a: T-Mobile ~68% 5G, V/A ~18-22%."""
        shares = {
            op: coverage.active_coverage_shares(dataset, op).share_5g for op in Operator
        }
        assert shares[Operator.TMOBILE] > shares[Operator.VERIZON]
        assert shares[Operator.TMOBILE] > shares[Operator.ATT]
        assert 0.5 < shares[Operator.TMOBILE] < 0.85

    def test_att_high_speed_5g_tiny(self, dataset):
        """Fig. 2a: AT&T's high-speed 5G ≈3% of miles."""
        shares = coverage.active_coverage_shares(dataset, Operator.ATT)
        assert shares.share_high_speed_5g < 0.10

    def test_downlink_more_high_speed_5g_than_uplink(self, dataset):
        """Fig. 2b: HS-5G coverage is higher for downlink than uplink.

        Aggregated over operators — per-operator slices are noisy at the
        test fixture's small campaign scale because DL and UL tests sample
        different (adjacent) zones.
        """
        dl_weight, ul_weight = 0.0, 0.0
        for op in Operator:
            by_dir = coverage.coverage_by_direction(dataset, op)
            dl_weight += by_dir["downlink"].share_high_speed_5g
            ul_weight += by_dir["uplink"].share_high_speed_5g
        assert dl_weight > ul_weight

    def test_timezone_breakdown_covers_all_zones(self, dataset):
        by_tz = coverage.coverage_by_timezone(dataset, Operator.TMOBILE)
        assert set(by_tz) == set(Timezone)

    def test_att_weak_in_mountain_central(self, dataset):
        """Fig. 2c: AT&T's 5G collapses in the Mountain/Central zones."""
        by_tz = coverage.coverage_by_timezone(dataset, Operator.ATT)
        west_east = (by_tz[Timezone.PACIFIC].share_5g + by_tz[Timezone.EASTERN].share_5g) / 2
        middle = (by_tz[Timezone.MOUNTAIN].share_5g + by_tz[Timezone.CENTRAL].share_5g) / 2
        assert middle < west_east

    def test_speed_bins_present(self, dataset):
        by_bin = coverage.coverage_by_speed_bin(dataset, Operator.VERIZON)
        assert set(by_bin) == set(SPEED_BIN_LABELS)

    def test_high_speed_5g_drops_with_speed(self, dataset):
        """Fig. 2d: HS-5G coverage shrinks from cities to highways
        (aggregated over V and A, whose mmWave is city-bound)."""
        low, high = 0.0, 0.0
        for op in (Operator.VERIZON, Operator.ATT):
            by_bin = coverage.coverage_by_speed_bin(dataset, op)
            low += by_bin["0-20 mph"].share_high_speed_5g
            high += by_bin["60+ mph"].share_high_speed_5g
        assert low > high

    def test_verizon_city_high_speed_share(self, dataset):
        """Fig. 2d: Verizon's low-speed (city) HS-5G is substantial
        (paper ≈43%; wide bounds — few city zones at test scale)."""
        by_bin = coverage.coverage_by_speed_bin(dataset, Operator.VERIZON)
        assert 0.1 < by_bin["0-20 mph"].share_high_speed_5g <= 1.0


class TestPassiveCoverage:
    def test_att_passive_is_pure_4g(self, dataset):
        """Fig. 1d: the AT&T handover-logger saw only LTE/LTE-A."""
        shares = coverage.passive_coverage_shares(dataset, Operator.ATT)
        assert shares.share_5g < 0.02

    def test_passive_pessimistic_vs_active(self, dataset):
        """Fig. 1 headline: passive logging underestimates 5G coverage."""
        for op in Operator:
            passive = coverage.passive_coverage_shares(dataset, op).share_5g
            active = coverage.active_coverage_shares(dataset, op).share_5g
            assert passive < active

    def test_tmobile_passive_agrees_in_east_only(self, dataset):
        """Fig. 1c/1f: views agree in the east half, diverge in the west."""
        east_5g, west_5g = 0.0, 0.0
        east_len, west_len = 0.0, 0.0
        for seg in dataset.passive_coverage:
            if seg.operator is not Operator.TMOBILE:
                continue
            if seg.timezone in (Timezone.CENTRAL, Timezone.EASTERN):
                east_len += seg.length_m
                east_5g += seg.length_m if seg.tech.is_5g else 0.0
            else:
                west_len += seg.length_m
                west_5g += seg.length_m if seg.tech.is_5g else 0.0
        assert east_5g / east_len > west_5g / west_len + 0.2


class TestRouteStrip:
    def test_strip_covers_route(self, dataset):
        strip = coverage.route_technology_strip(dataset, Operator.VERIZON, "passive")
        assert len(strip) > 500  # 5712 km at 10 km bins
        assert strip[0][0] == 0.0

    def test_active_strip_has_gaps_at_small_scale(self, dataset):
        strip = coverage.route_technology_strip(dataset, Operator.VERIZON, "active")
        techs = [t for _, t in strip]
        assert any(t is None for t in techs)  # untested stretches
        assert any(t is not None for t in techs)

    def test_unknown_view_rejected(self, dataset):
        with pytest.raises(AnalysisError):
            coverage.route_technology_strip(dataset, Operator.VERIZON, "psychic")
