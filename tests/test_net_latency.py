"""RTT model behaviour."""

import numpy as np
import pytest

from repro.geo.coords import LatLon
from repro.net.latency import RttModel
from repro.net.servers import Server, ServerKind
from repro.radio.operators import Operator
from repro.radio.technology import RadioTechnology

UE = LatLon(39.7392, -104.9903)  # Denver
CLOUD = Server("cloud", ServerKind.CLOUD, LatLon(37.35, -121.96))
EDGE = Server("edge", ServerKind.EDGE, LatLon(39.74, -104.99))


def sample_many(model, server, tech, speed, static=False, n=300, bler=0.05):
    return np.asarray(
        [model.sample_rtt_ms(server, UE, tech, speed, static=static, bler=bler) for _ in range(n)]
    )


class TestBaseRtt:
    def test_edge_beats_cloud(self, rng):
        model = RttModel(Operator.VERIZON, rng)
        edge = model.base_rtt_ms(EDGE, UE, RadioTechnology.NR_MMWAVE)
        cloud = model.base_rtt_ms(CLOUD, UE, RadioTechnology.NR_MMWAVE)
        assert edge < cloud - 10.0

    def test_mmwave_beats_lte(self, rng):
        model = RttModel(Operator.VERIZON, rng)
        mm = model.base_rtt_ms(EDGE, UE, RadioTechnology.NR_MMWAVE)
        lte = model.base_rtt_ms(EDGE, UE, RadioTechnology.LTE)
        assert mm < lte

    def test_att_4g_penalty(self, rng):
        att = RttModel(Operator.ATT, rng).base_rtt_ms(CLOUD, UE, RadioTechnology.LTE_A)
        vzw = RttModel(Operator.VERIZON, rng).base_rtt_ms(CLOUD, UE, RadioTechnology.LTE_A)
        assert att > vzw + 6.0

    def test_att_5g_unpenalised(self, rng):
        att = RttModel(Operator.ATT, rng).base_rtt_ms(CLOUD, UE, RadioTechnology.NR_MID)
        vzw = RttModel(Operator.VERIZON, rng).base_rtt_ms(CLOUD, UE, RadioTechnology.NR_MID)
        assert att == pytest.approx(vzw)


class TestSampling:
    def test_static_mmwave_edge_floor_single_digit(self):
        """§5.2: Verizon mmWave + edge RTTs bottom out around 8 ms."""
        model = RttModel(Operator.VERIZON, np.random.default_rng(0))
        rtts = sample_many(model, EDGE, RadioTechnology.NR_MMWAVE, 0.0, static=True, bler=0.01)
        assert rtts.min() < 12.0
        assert np.median(rtts) < 25.0

    def test_driving_median_band(self):
        """Fig. 3b: driving medians land in the 60-85 ms band."""
        for op in Operator:
            model = RttModel(op, np.random.default_rng(1))
            rtts = sample_many(model, CLOUD, RadioTechnology.LTE_A, 65.0)
            assert 45.0 < np.median(rtts) < 110.0

    def test_driving_has_multi_second_tail(self):
        model = RttModel(Operator.TMOBILE, np.random.default_rng(2))
        rtts = sample_many(model, CLOUD, RadioTechnology.LTE, 65.0, n=5000)
        assert rtts.max() > 1000.0

    def test_static_never_spikes_like_driving(self):
        model = RttModel(Operator.VERIZON, np.random.default_rng(3))
        rtts = sample_many(model, CLOUD, RadioTechnology.NR_MID, 0.0, static=True, n=2000, bler=0.01)
        assert rtts.max() < 400.0

    def test_speed_sensitivity_verizon_vs_att(self):
        """Fig. 8: Verizon RTT grows with speed, AT&T's barely does."""
        def median_gap(op):
            slow = sample_many(RttModel(op, np.random.default_rng(4)), CLOUD, RadioTechnology.NR_MID, 5.0)
            fast = sample_many(RttModel(op, np.random.default_rng(5)), CLOUD, RadioTechnology.NR_MID, 75.0)
            return np.median(fast) - np.median(slow)

        assert median_gap(Operator.VERIZON) > median_gap(Operator.ATT)

    def test_bler_inflates_rtt(self):
        clean = sample_many(
            RttModel(Operator.VERIZON, np.random.default_rng(6)), CLOUD,
            RadioTechnology.LTE, 65.0, bler=0.0, n=2000,
        )
        lossy = sample_many(
            RttModel(Operator.VERIZON, np.random.default_rng(6)), CLOUD,
            RadioTechnology.LTE, 65.0, bler=0.6, n=2000,
        )
        assert lossy.mean() > clean.mean()
