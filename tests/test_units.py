"""Unit conversions and the paper's speed bins."""

import math

import pytest

from repro import units


class TestDistance:
    def test_mile_round_trip(self):
        assert units.meters_to_miles(units.miles_to_meters(3.2)) == pytest.approx(3.2)

    def test_km_to_miles_known_value(self):
        assert units.km_to_miles(1.609344) == pytest.approx(1.0)

    def test_miles_to_km_round_trip(self):
        assert units.miles_to_km(units.km_to_miles(5711.0)) == pytest.approx(5711.0)


class TestSpeed:
    def test_mph_to_mps_known_value(self):
        # 60 mph is 26.82 m/s.
        assert units.mph_to_mps(60.0) == pytest.approx(26.8224)

    def test_speed_round_trip(self):
        assert units.mps_to_mph(units.mph_to_mps(42.0)) == pytest.approx(42.0)


class TestDataRates:
    def test_mbps_round_trip(self):
        assert units.bps_to_mbps(units.mbps_to_bps(123.4)) == pytest.approx(123.4)

    def test_bytes_to_megabits(self):
        assert units.bytes_to_megabits(125_000) == pytest.approx(1.0)

    def test_megabits_to_bytes_inverse(self):
        assert units.megabits_to_bytes(units.bytes_to_megabits(4096)) == pytest.approx(4096)

    def test_bytes_to_gigabytes(self):
        assert units.bytes_to_gigabytes(777e9) == pytest.approx(777.0)


class TestRfPower:
    def test_dbm_zero_is_one_milliwatt(self):
        assert units.dbm_to_mw(0.0) == pytest.approx(1.0)

    def test_mw_to_dbm_round_trip(self):
        assert units.mw_to_dbm(units.dbm_to_mw(-95.5)) == pytest.approx(-95.5)

    def test_mw_to_dbm_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            units.mw_to_dbm(0.0)
        with pytest.raises(ValueError):
            units.mw_to_dbm(-1.0)

    def test_db_sum_doubles_power(self):
        # Adding two equal powers gains 3 dB.
        assert units.db_sum(-90.0, -90.0) == pytest.approx(-90.0 + 10 * math.log10(2))

    def test_db_sum_requires_values(self):
        with pytest.raises(ValueError):
            units.db_sum()


class TestSpeedBins:
    def test_low_bin(self):
        assert units.speed_bin(0.0) == "0-20 mph"
        assert units.speed_bin(19.99) == "0-20 mph"

    def test_mid_bin(self):
        assert units.speed_bin(20.0) == "20-60 mph"
        assert units.speed_bin(59.9) == "20-60 mph"

    def test_high_bin(self):
        assert units.speed_bin(60.0) == "60+ mph"
        assert units.speed_bin(120.0) == "60+ mph"

    def test_negative_speed_rejected(self):
        with pytest.raises(ValueError):
            units.speed_bin(-1.0)

    def test_xcal_sample_period_is_half_second(self):
        assert units.XCAL_SAMPLE_PERIOD_S == 0.5

    def test_handover_logger_ping_parameters(self):
        # Paper §3: 38-byte ICMP every 200 ms.
        assert units.HANDOVER_LOGGER_PING_INTERVAL_S == pytest.approx(0.2)
        assert units.HANDOVER_LOGGER_PING_PAYLOAD_BYTES == 38
