"""§6 handover analyses (Figs. 11-12)."""

import pytest

from repro.analysis import handovers
from repro.mobility.events import HandoverType
from repro.radio.operators import Operator


class TestFig11:
    def test_rate_medians_low(self, dataset):
        """Fig. 11a: median 1-3 handovers per mile."""
        for op in Operator:
            cdf = handovers.handovers_per_mile(dataset, op, "downlink")
            assert 0.0 <= cdf.median <= 6.0

    def test_rate_extremes_exist(self, dataset):
        """Fig. 11a: extreme tests can exceed 10-20 HOs/mile."""
        maxima = [
            handovers.handovers_per_mile(dataset, op, "downlink").maximum
            for op in Operator
        ]
        assert max(maxima) > 8.0

    def test_duration_medians_match_paper(self, dataset):
        """Fig. 11b: median durations 53/76/58 ms (DL) for V/T/A."""
        targets = {Operator.VERIZON: 53.0, Operator.TMOBILE: 76.0, Operator.ATT: 58.0}
        for op, target in targets.items():
            cdf = handovers.handover_durations(dataset, op, "downlink")
            assert target * 0.6 < cdf.median < target * 1.8

    def test_tmobile_slowest_handovers(self, dataset):
        meds = {
            op: handovers.handover_durations(dataset, op).median for op in Operator
        }
        assert meds[Operator.TMOBILE] > meds[Operator.VERIZON]
        assert meds[Operator.TMOBILE] > meds[Operator.ATT]

    def test_durations_positive_and_bounded(self, dataset):
        for op in Operator:
            cdf = handovers.handover_durations(dataset, op)
            assert cdf.minimum > 0.0
            assert cdf.maximum < 3000.0


class TestFig12:
    def test_throughput_drops_during_handover(self, dataset):
        """Fig. 12: ΔT1 < 0 about 80% of the time."""
        impact = handovers.handover_impact(dataset, Operator.VERIZON, "downlink")
        assert impact.drop_fraction > 0.5

    def test_post_handover_often_improves(self, dataset):
        """Fig. 12: ΔT2 > 0 about 55-60% of the time."""
        for op in Operator:
            impact = handovers.handover_impact(dataset, op, "downlink")
            assert 0.3 < impact.improvement_fraction < 0.85

    def test_delta2_median_small(self, dataset):
        """Fig. 12: the median ΔT2 is close to zero (0.5-2 Mbps)."""
        impact = handovers.handover_impact(dataset, Operator.VERIZON, "downlink")
        assert abs(impact.delta_t2.median) < 15.0

    def test_by_type_split_present(self, dataset):
        impact = handovers.handover_impact(dataset, Operator.TMOBILE, "downlink")
        assert impact.delta_t2_by_type  # at least one populated type

    def test_uplink_impact_also_computable(self, dataset):
        impact = handovers.handover_impact(dataset, Operator.ATT, "uplink")
        assert impact.delta_t1.n > 5
