"""Planner: canonical window decomposition and its invariants."""

import pytest

from repro.campaign.runner import CampaignConfig
from repro.engine import PlannerParams, plan_campaign
from repro.engine.checkpoint import config_fingerprint
from repro.engine.planner import (
    TEST_ID_STRIDE,
    nominal_cycle_duration_s,
)
from repro.errors import EngineError


@pytest.fixture(scope="module")
def config():
    return CampaignConfig(seed=42, scale=0.01)


@pytest.fixture(scope="module")
def plan(config, route):
    return plan_campaign(config, route, PlannerParams(window_km=500.0))


class TestDecomposition:
    def test_windows_tile_route_exactly(self, plan, route):
        assert plan.windows[0].start_m == 0.0
        assert plan.windows[-1].end_m == pytest.approx(route.total_length_m)
        for prev, nxt in zip(plan.windows, plan.windows[1:]):
            assert nxt.start_m == pytest.approx(prev.end_m)

    def test_indices_and_id_namespaces(self, plan):
        for i, window in enumerate(plan.windows):
            assert window.index == i
            assert window.test_id_base == (i + 1) * TEST_ID_STRIDE

    def test_plan_is_pure_function(self, config, route):
        params = PlannerParams(window_km=500.0)
        assert plan_campaign(config, route, params) == plan_campaign(
            config, route, params
        )

    def test_overrun_covers_one_cycle(self, plan, config):
        # A cycle started just before a window's end must stay inside the
        # deployment span even at maximum speed.
        cycle_s = nominal_cycle_duration_s(config)
        for window in plan.windows:
            assert window.overrun_m >= cycle_s * 45.0

    def test_window_km_override(self, config, route):
        coarse = plan_campaign(config, route, PlannerParams(window_km=2000.0))
        fine = plan_campaign(config, route, PlannerParams(window_km=400.0))
        assert coarse.n_windows < fine.n_windows
        assert fine.n_windows >= 10


class TestAdaptiveSizing:
    def test_smaller_scale_means_fewer_windows(self, route):
        # Window length tracks the duty-cycle stride (~1/scale), keeping the
        # per-window cycle count roughly scale-independent.
        small = plan_campaign(CampaignConfig(seed=1, scale=0.003), route)
        large = plan_campaign(CampaignConfig(seed=1, scale=0.05), route)
        assert small.n_windows <= large.n_windows
        assert small.window_km > large.window_km

    def test_cycle_duration_shrinks_without_apps(self, route):
        with_apps = nominal_cycle_duration_s(CampaignConfig(include_apps=True))
        without = nominal_cycle_duration_s(CampaignConfig(include_apps=False))
        assert without < with_apps


class TestBatches:
    def test_none_means_one_batch_per_window(self, plan):
        batches = plan.batches(None)
        assert len(batches) == plan.n_windows
        assert all(len(b) == 1 for b in batches)

    @pytest.mark.parametrize("n", [1, 2, 5, 100])
    def test_batches_preserve_order_and_content(self, plan, n):
        batches = plan.batches(n)
        flattened = [w for batch in batches for w in batch]
        assert flattened == list(plan.windows)
        assert len(batches) == min(n, plan.n_windows)

    def test_invalid_batch_count(self, plan):
        with pytest.raises(EngineError):
            plan.batches(0)


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"window_km": 0.0},
            {"window_km": -5.0},
            {"cycles_per_window": 0.0},
            {"min_window_km": -1.0},
        ],
    )
    def test_bad_params_rejected(self, kwargs):
        with pytest.raises(EngineError):
            PlannerParams(**kwargs)


class TestFingerprint:
    def test_stable_for_equal_inputs(self, config, route, plan):
        assert config_fingerprint(config, plan) == config_fingerprint(config, plan)

    def test_sensitive_to_seed_scale_and_windows(self, config, route, plan):
        base = config_fingerprint(config, plan)
        other_seed = CampaignConfig(seed=43, scale=config.scale)
        other_scale = CampaignConfig(seed=config.seed, scale=0.02)
        other_plan = plan_campaign(config, route, PlannerParams(window_km=900.0))
        assert config_fingerprint(other_seed, plan) != base
        assert config_fingerprint(other_scale, plan) != base
        assert config_fingerprint(config, other_plan) != base
