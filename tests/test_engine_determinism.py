"""Engine determinism: the merged dataset is a pure function of the seed.

The acceptance bar of the sharded engine: identical serialised bytes for any
shard batching and for the serial and process executors, and equality with
the public serial entry point ``repro.generate_dataset`` (which runs the same
canonical shard plan in-process).
"""

import pytest

from tests.conftest import ENGINE_CAMPAIGN, ENGINE_WINDOW_KM, engine_dataset_bytes
from repro.campaign.validation import validate_dataset
from repro.engine import EngineConfig, PlannerParams, run_engine
from repro.radio.operators import Operator


def run_bytes(tmp_path, **overrides):
    cfg = EngineConfig(
        campaign=ENGINE_CAMPAIGN,
        planner=PlannerParams(window_km=ENGINE_WINDOW_KM),
        **overrides,
    )
    ds, report = run_engine(cfg)
    return engine_dataset_bytes(ds, tmp_path), report


class TestShardInvariance:
    @pytest.mark.parametrize("shards", [1, 2, 5])
    def test_serial_any_shard_count(self, engine_baseline, tmp_path, shards):
        _, base = engine_baseline
        data, _ = run_bytes(tmp_path, executor="serial", shards=shards)
        assert data == base

    def test_process_executor_matches_serial(self, engine_baseline, tmp_path):
        _, base = engine_baseline
        data, report = run_bytes(tmp_path, executor="process", workers=2)
        assert data == base
        assert report.executor in ("process", "serial")  # serial = platform fallback

    def test_repeated_run_is_identical(self, engine_baseline, tmp_path):
        _, base = engine_baseline
        data, _ = run_bytes(tmp_path, executor="serial")
        assert data == base


class TestMergedDataset:
    def test_passes_validation(self, engine_baseline):
        ds, _ = engine_baseline
        report = validate_dataset(ds)
        assert report.ok, report.issues

    def test_covers_whole_route(self, engine_baseline, route):
        ds, _ = engine_baseline
        assert ds.route_length_km == pytest.approx(route.total_length_km)
        marks = [t.start_mark_m for t in ds.tests]
        assert max(marks) - min(marks) > 0.8 * route.total_length_m

    def test_connected_cells_counted_per_operator(self, engine_baseline):
        ds, _ = engine_baseline
        assert set(ds.connected_cells) == set(Operator)
        assert all(n > 0 for n in ds.connected_cells.values())

    def test_passive_layer_present(self, engine_baseline):
        ds, _ = engine_baseline
        assert len(ds.passive_coverage) > 0
        assert set(ds.passive_handover_counts) == set(Operator)


class TestEngineReport:
    def test_report_accounts_for_every_shard(self, tmp_path):
        ds, report = run_engine(
            EngineConfig(
                campaign=ENGINE_CAMPAIGN,
                executor="serial",
                planner=PlannerParams(window_km=ENGINE_WINDOW_KM),
            )
        )
        # windows + the passive shard, in index order
        assert len(report.shards) == report.n_windows + 1
        indices = [s.index for s in report.shards]
        assert indices == sorted(indices)
        assert report.total_records == sum(s.records for s in report.shards)
        assert report.total_records > 0
        assert 0.0 <= report.worker_utilisation() <= 1.0
        assert report.total_wall_s > 0.0

    def test_report_round_trips_through_json(self, tmp_path):
        import json

        _, report = run_engine(
            EngineConfig(
                campaign=ENGINE_CAMPAIGN,
                executor="serial",
                planner=PlannerParams(window_km=ENGINE_WINDOW_KM),
                report_path=str(tmp_path / "report.json"),
            )
        )
        obj = json.loads((tmp_path / "report.json").read_text())
        assert obj["n_windows"] == report.n_windows
        assert obj["total_records"] == report.total_records
        assert len(obj["shards"]) == len(report.shards)

    def test_report_schema_version_and_from_obj(self, tmp_path):
        import json

        from repro.engine.metrics import REPORT_SCHEMA_VERSION, EngineReport

        _, report = run_engine(
            EngineConfig(
                campaign=ENGINE_CAMPAIGN,
                executor="serial",
                planner=PlannerParams(window_km=ENGINE_WINDOW_KM),
            )
        )
        obj = report.to_obj()
        assert obj["schema_version"] == REPORT_SCHEMA_VERSION
        rebuilt = EngineReport.from_obj(json.loads(json.dumps(obj)))
        # The serialisation rounds stably, so a round trip is idempotent.
        assert rebuilt.to_obj() == obj
        assert rebuilt.cache_hits == 0
        assert rebuilt.cache_hit_ratio() == 0.0


class TestPublicApi:
    def test_generate_dataset_parallel_matches_baseline(
        self, engine_baseline, tmp_path
    ):
        import repro

        _, base = engine_baseline
        ds = repro.generate_dataset_parallel(
            seed=ENGINE_CAMPAIGN.seed,
            scale=ENGINE_CAMPAIGN.scale,
            include_apps=False,
            include_static=False,
            workers=2,
            window_km=ENGINE_WINDOW_KM,
        )
        assert engine_dataset_bytes(ds, tmp_path) == base

    def test_generate_dataset_matches_parallel(self, tmp_path):
        """Serial public API == parallel API at the default (adaptive) windows.

        The window decomposition defines the dataset's content, so both
        entry points must be compared at the same planner settings — here
        the adaptive default both use when ``window_km`` is not given.
        """
        import repro

        kwargs = dict(
            seed=ENGINE_CAMPAIGN.seed,
            scale=ENGINE_CAMPAIGN.scale,
            include_apps=False,
            include_static=False,
        )
        serial = repro.generate_dataset(**kwargs)
        parallel = repro.generate_dataset_parallel(**kwargs, workers=2)
        assert engine_dataset_bytes(serial, tmp_path) == engine_dataset_bytes(
            parallel, tmp_path
        )
