"""Streaming XCAL probe."""

from datetime import datetime

import pytest

from repro.campaign.link import UESession
from repro.campaign.runner import CampaignConfig, DriveCampaign
from repro.geo.timezones import Timezone
from repro.policy.profiles import TrafficProfile
from repro.radio.ca import Direction
from repro.radio.operators import Operator
from repro.xcal.drm import DrmFile
from repro.xcal.probe import XcalProbe

TRIP_START = datetime(2022, 8, 8, 15, 0, 0)


@pytest.fixture()
def ticks():
    """A short run of real LinkTicks from a campaign session."""
    campaign = DriveCampaign(
        CampaignConfig(seed=5, scale=0.002, include_apps=False, include_static=False)
    )
    session = campaign._sessions[Operator.VERIZON]
    out = []
    position = campaign.route.position_at(10_000.0)
    server = campaign._servers.select(
        Operator.VERIZON, position.point, position.timezone
    )
    for i in range(20):
        position = campaign.route.position_at(10_000.0 + i * 15.0)
        out.append(
            session.tick(
                i * 0.5, position, 65.0, TrafficProfile.BACKLOGGED_DL,
                Direction.DOWNLINK, server,
            )
        )
    return out


class TestXcalProbe:
    def test_accumulates_ticks(self, ticks):
        probe = XcalProbe(Operator.VERIZON, "dl_tput", TRIP_START, Timezone.PACIFIC)
        for tick in ticks:
            probe.observe(tick, tput_mbps=42.0)
        assert probe.tick_count == len(ticks)

    def test_finish_produces_parseable_drm(self, ticks):
        probe = XcalProbe(Operator.VERIZON, "dl_tput", TRIP_START, Timezone.PACIFIC)
        for tick in ticks:
            probe.observe(tick, tput_mbps=10.0)
        drm = probe.finish()
        parsed = DrmFile.parse(drm.filename, drm.serialize())
        assert len(parsed.kpi_records) == len(ticks)
        assert parsed.operator is Operator.VERIZON

    def test_filename_uses_local_time(self, ticks):
        pacific = XcalProbe(Operator.VERIZON, "dl_tput", TRIP_START, Timezone.PACIFIC)
        eastern = XcalProbe(Operator.VERIZON, "dl_tput", TRIP_START, Timezone.EASTERN)
        for tick in ticks[:1]:
            pacific.observe(tick)
            eastern.observe(tick)
        # Same capture, different local clocks → different filenames.
        assert pacific.finish().filename != eastern.finish().filename

    def test_contents_are_edt_regardless_of_location(self, ticks):
        probe = XcalProbe(Operator.VERIZON, "dl_tput", TRIP_START, Timezone.PACIFIC)
        probe.observe(ticks[0])
        body = probe.finish().serialize()
        assert " EDT|" in body

    def test_handover_signalling_captured(self, ticks):
        probe = XcalProbe(Operator.VERIZON, "dl_tput", TRIP_START, Timezone.PACIFIC)
        for tick in ticks:
            probe.observe(tick)
        drm = probe.finish()
        ho_ticks = sum(len(t.handovers) for t in ticks)
        assert len(drm.signaling_records) == 2 * ho_ticks  # START + END

    def test_empty_probe_rejected(self):
        probe = XcalProbe(Operator.ATT, "rtt", TRIP_START, Timezone.CENTRAL)
        with pytest.raises(ValueError):
            probe.finish()
