"""Multivariate KPI analysis (the paper's stated future work)."""

import pytest

from repro.analysis.multivariate import (
    FEATURES,
    fit_throughput_model,
    multivariate_table,
)
from repro.errors import AnalysisError
from repro.radio.operators import Operator


class TestFit:
    def test_six_fits(self, dataset):
        fits = multivariate_table(dataset)
        assert len(fits) == 6

    def test_all_features_present(self, dataset):
        fit = fit_throughput_model(dataset, Operator.VERIZON, "downlink")
        assert set(fit.coefficients) == set(FEATURES)
        assert set(fit.incremental_r2) == set(FEATURES)

    def test_r2_in_unit_interval(self, dataset):
        for fit in multivariate_table(dataset):
            assert 0.0 <= fit.r_squared <= 1.0

    def test_model_beats_univariate(self, dataset):
        """The joint model explains more than any single KPI's r² —
        the reason the paper calls for multivariate analysis."""
        from repro.analysis.correlation import kpi_correlations

        for op in Operator:
            fit = fit_throughput_model(dataset, op, "downlink")
            row = kpi_correlations(dataset, op, "downlink")
            best_univariate = max(r * r for r in row.coefficients.values())
            assert fit.r_squared >= best_univariate - 0.02

    def test_incremental_r2_nonnegative_and_bounded(self, dataset):
        for fit in multivariate_table(dataset):
            for value in fit.incremental_r2.values():
                assert 0.0 <= value <= fit.r_squared + 1e-9

    def test_mcs_coefficient_positive(self, dataset):
        """Link adaptation works: better MCS → more throughput, ceteris
        paribus."""
        positives = sum(
            1 for fit in multivariate_table(dataset) if fit.coefficients["MCS"] > 0
        )
        assert positives >= 5

    def test_handover_contribution_negligible(self, dataset):
        """Handovers add essentially no unique explanatory power (§6)."""
        for fit in multivariate_table(dataset):
            assert fit.incremental_r2["HO"] < 0.05

    def test_dominant_kpi_is_a_feature(self, dataset):
        for fit in multivariate_table(dataset):
            assert fit.dominant_kpi in FEATURES

    def test_too_few_samples_rejected(self, bare_dataset):
        import dataclasses

        tiny = dataclasses.replace(bare_dataset) if False else None
        # Build a dataset-like object with too few samples via filtering.
        from repro.campaign.dataset import DriveDataset

        empty = DriveDataset(seed=0, scale=1.0, route_length_km=1.0)
        empty.throughput_samples = bare_dataset.throughput_samples[:10]
        with pytest.raises(AnalysisError):
            fit_throughput_model(empty, Operator.VERIZON, "downlink")
