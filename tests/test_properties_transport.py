"""Property-based tests on transport, sync, and persistence invariants."""

import math

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.net.latency import RttModel
from repro.net.servers import Server, ServerKind
from repro.geo.coords import LatLon
from repro.net.tcp import CubicFlow
from repro.radio.operators import Operator
from repro.radio.technology import RadioTechnology

capacities = st.lists(
    st.floats(min_value=0.5, max_value=3000.0), min_size=5, max_size=60
)


class TestCubicFlowProperties:
    @given(capacities, st.floats(min_value=10.0, max_value=500.0), st.integers(0, 2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_goodput_never_exceeds_capacity(self, caps, rtt, seed):
        flow = CubicFlow(np.random.default_rng(seed))
        for c in caps:
            achieved = flow.advance(c, rtt, 0.5, bler=0.05)
            assert 0.0 <= achieved <= c + 1e-9

    @given(capacities, st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_window_stays_positive(self, caps, seed):
        flow = CubicFlow(np.random.default_rng(seed))
        for c in caps:
            flow.advance(c, 80.0, 0.5, bler=0.4)
            assert flow.window_mbit > 0.0

    @given(
        st.floats(min_value=1.0, max_value=1000.0),
        st.floats(min_value=0.0, max_value=0.5),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_interruption_never_increases_goodput(self, capacity, interruption, seed):
        warm = CubicFlow(np.random.default_rng(seed))
        for _ in range(30):
            warm.advance(capacity, 60.0, 0.5, bler=0.0)
        cold = CubicFlow(np.random.default_rng(seed))
        for _ in range(30):
            cold.advance(capacity, 60.0, 0.5, bler=0.0)
        clean = warm.advance(capacity, 60.0, 0.5, bler=0.0, interruption_s=0.0)
        hit = cold.advance(capacity, 60.0, 0.5, bler=0.0, interruption_s=interruption)
        assert hit <= clean + 1e-9


class TestRttModelProperties:
    @given(
        st.sampled_from(list(Operator)),
        st.sampled_from(list(RadioTechnology)),
        st.floats(min_value=0.0, max_value=100.0),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_rtt_always_positive_and_bounded(self, op, tech, speed, seed):
        model = RttModel(op, np.random.default_rng(seed))
        server = Server("s", ServerKind.CLOUD, LatLon(40.0, -100.0))
        rtt = model.sample_rtt_ms(server, LatLon(41.0, -99.0), tech, speed)
        assert 0.0 < rtt < 10_000.0

    @given(st.sampled_from(list(RadioTechnology)), st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_base_rtt_grows_with_distance(self, tech, seed):
        model = RttModel(Operator.VERIZON, np.random.default_rng(seed))
        near = Server("near", ServerKind.CLOUD, LatLon(40.0, -100.0))
        far = Server("far", ServerKind.CLOUD, LatLon(40.0, -70.0))
        ue = LatLon(40.0, -100.5)
        assert model.base_rtt_ms(near, ue, tech) < model.base_rtt_ms(far, ue, tech)


class TestDrmRoundTripProperties:
    @given(
        st.integers(min_value=0, max_value=28),
        st.floats(min_value=-135.0, max_value=-45.0),
        st.floats(min_value=0.0, max_value=1.0),
        st.integers(min_value=1, max_value=8),
        st.floats(min_value=0.0, max_value=5000.0),
        st.sampled_from(list(RadioTechnology)),
    )
    @settings(max_examples=80, deadline=None)
    def test_kpi_line_round_trip(self, mcs, rsrp, bler, ccs, tput, tech):
        from datetime import datetime

        from repro.xcal.records import XcalKpiRecord

        record = XcalKpiRecord(
            timestamp_edt=datetime(2022, 8, 10, 12, 0, 0, 500000),
            technology=tech,
            rsrp_dbm=round(rsrp, 1),
            mcs=mcs,
            bler=round(bler, 4),
            n_ccs=ccs,
            tput_mbps=round(tput, 3),
        )
        assert XcalKpiRecord.from_line(record.to_line()) == record
