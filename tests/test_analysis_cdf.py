"""Empirical CDF machinery."""

import numpy as np
import pytest

from repro.analysis.cdf import EmpiricalCDF, summarize
from repro.errors import AnalysisError


class TestEmpiricalCDF:
    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            EmpiricalCDF.from_values([])

    def test_non_finite_dropped(self):
        cdf = EmpiricalCDF.from_values([1.0, float("inf"), float("nan"), 2.0])
        assert cdf.n == 2

    def test_quantile_bounds(self):
        cdf = EmpiricalCDF.from_values([1, 2, 3])
        with pytest.raises(AnalysisError):
            cdf.quantile(1.5)

    def test_quantiles(self):
        cdf = EmpiricalCDF.from_values(range(1, 101))
        assert cdf.quantile(0.0) == 1.0
        assert cdf.quantile(1.0) == 100.0
        assert cdf.median == pytest.approx(50.5)

    def test_prob_below_and_above(self):
        cdf = EmpiricalCDF.from_values([1.0, 2.0, 3.0, 4.0])
        assert cdf.prob_below(2.5) == 0.5
        assert cdf.prob_above(2.5) == 0.5
        assert cdf.prob_below(0.0) == 0.0
        assert cdf.prob_above(10.0) == 0.0

    def test_prob_below_tie_handling(self):
        cdf = EmpiricalCDF.from_values([1.0, 2.0, 2.0, 3.0])
        assert cdf.prob_below(2.0) == 0.25  # strict
        assert cdf.prob_above(2.0) == 0.25  # strict

    def test_series_monotone(self):
        values = np.random.default_rng(0).exponential(10.0, size=1000)
        xs, ys = EmpiricalCDF.from_values(values).series(points=50)
        assert len(xs) == 50
        assert all(b >= a for a, b in zip(xs, xs[1:]))
        assert all(b >= a for a, b in zip(ys, ys[1:]))
        assert ys[-1] == pytest.approx(1.0)

    def test_series_small_sample_full(self):
        xs, ys = EmpiricalCDF.from_values([3.0, 1.0, 2.0]).series(points=100)
        assert list(xs) == [1.0, 2.0, 3.0]

    def test_min_max_mean(self):
        cdf = EmpiricalCDF.from_values([4.0, 1.0, 7.0])
        assert cdf.minimum == 1.0
        assert cdf.maximum == 7.0
        assert cdf.mean == pytest.approx(4.0)


class TestSummarize:
    def test_keys(self):
        s = summarize([1, 2, 3, 4, 5])
        for key in ("n", "min", "max", "mean", "p25", "p50", "p75", "p90"):
            assert key in s

    def test_values(self):
        s = summarize(range(101))
        assert s["p50"] == 50.0
        assert s["n"] == 101.0
