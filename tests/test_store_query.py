"""Query engine: parity with the row path, pushdown, analysis bridges."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.coverage import (
    active_coverage_shares,
    active_coverage_shares_from_store,
    passive_coverage_shares,
    passive_coverage_shares_from_store,
)
from repro.analysis.performance import (
    static_vs_driving,
    static_vs_driving_from_store,
)
from repro.errors import StoreError
from repro.radio.operators import Operator
from repro.store import (
    Between,
    DatasetReader,
    Eq,
    In,
    QueryStats,
    query,
    where_speed_bin,
    write_dataset,
)
from repro.sweep.stats import evaluate_statistics_from_store
from repro.units import SPEED_BIN_LABELS, speed_bin


@pytest.fixture(scope="module")
def reader(dataset, tmp_path_factory):
    path = tmp_path_factory.mktemp("query") / "full.rcol"
    write_dataset(dataset, path)
    with DatasetReader(path) as r:
        yield r


class TestKernelParity:
    """Every kernel agrees with the straight row-object computation."""

    def test_select_matches_row_filter(self, dataset, reader):
        for op in Operator:
            row = dataset.tput_values(
                operator=op, direction="downlink", static=False
            )
            col = query.select(
                reader, "tput", "tput_mbps",
                where=(
                    Eq("operator", op),
                    Eq("direction", "downlink"),
                    Eq("static", False),
                ),
            )
            assert np.array_equal(np.sort(row), np.sort(col))

    def test_count_and_total(self, dataset, reader):
        where = (Eq("operator", Operator.VERIZON), Eq("static", False))
        rows = [
            s for s in dataset.throughput_samples
            if s.operator is Operator.VERIZON and not s.static
        ]
        assert query.count(reader, "tput", where) == len(rows)
        assert query.total(reader, "tput", "tput_mbps", where) == pytest.approx(
            sum(s.tput_mbps for s in rows)
        )
        assert query.mean(reader, "tput", "tput_mbps", where) == pytest.approx(
            sum(s.tput_mbps for s in rows) / len(rows)
        )

    def test_percentile_matches_numpy(self, dataset, reader):
        values = dataset.rtt_values(static=False)
        got = query.percentile(
            reader, "rtt", "rtt_ms", 0.95, where=(Eq("static", False),)
        )
        assert got == pytest.approx(float(np.quantile(values, 0.95)))

    def test_speed_bin_predicate_matches_row_binning(self, dataset, reader):
        for label in SPEED_BIN_LABELS:
            row = sum(
                1 for s in dataset.throughput_samples
                if not s.static and speed_bin(s.speed_mph) == label
            )
            col = query.count(
                reader, "tput",
                (Eq("static", False), where_speed_bin(label)),
            )
            assert col == row, label

    def test_in_predicate(self, dataset, reader):
        ops = (Operator.VERIZON, Operator.TMOBILE)
        row = sum(1 for s in dataset.rtt_samples if s.operator in ops)
        assert query.count(reader, "rtt", (In("operator", ops),)) == row

    def test_between_on_route_km_range(self, dataset, reader):
        lo_m, hi_m = 1_000_000.0, 3_000_000.0
        row = sum(
            1 for s in dataset.throughput_samples if lo_m <= s.mark_m <= hi_m
        )
        got = query.count(
            reader, "tput", (Between("mark_m", lo=lo_m, hi=hi_m),)
        )
        assert got == row

    def test_group_total_matches_row_sums(self, dataset, reader):
        sums = query.group_total(
            reader, "passive", "tech", "length_m",
            where=(Eq("operator", Operator.ATT),),
        )
        for tech, got in sums.items():
            want = sum(
                seg.length_m for seg in dataset.passive_coverage
                if seg.operator is Operator.ATT and seg.tech.name == tech
            )
            assert got == pytest.approx(want)

    def test_unknown_column_raises(self, reader):
        with pytest.raises(StoreError, match="no column"):
            query.count(reader, "tput", (Eq("nope", 1),))


class TestPushdown:
    def test_stats_short_circuit_all_and_none(self, reader):
        # static spans {False, True} per-value but a predicate on an
        # impossible numeric range must answer from the footer stats alone.
        qstats = QueryStats()
        n = query.count(
            reader, "tput", (Between("tput_mbps", lo=1e9),), qstats=qstats
        )
        assert n == 0
        assert qstats.columns_decoded == 0
        assert qstats.predicates_short_circuited >= 1

    def test_dict_value_absent_short_circuits(self, reader):
        qstats = QueryStats()
        n = query.count(
            reader, "tput", (Eq("direction", "sideways"),), qstats=qstats
        )
        assert n == 0
        assert qstats.columns_decoded == 0

    def test_cdf_kernel_feeds_empirical_cdf(self, dataset, reader):
        curve = query.cdf(
            reader, "tput", "tput_mbps",
            where=(Eq("direction", "downlink"), Eq("static", False)),
        )
        values = dataset.tput_values(direction="downlink", static=False)
        assert curve.n == len(values)
        assert curve.median == pytest.approx(float(np.median(values)))


class TestAnalysisBridges:
    def test_passive_coverage_parity(self, dataset, reader):
        for op in Operator:
            row = passive_coverage_shares(dataset, op)
            col = passive_coverage_shares_from_store(reader, op)
            assert row.shares == col.shares
            assert row.total_weight == col.total_weight

    def test_active_coverage_parity(self, dataset, reader):
        for op in Operator:
            row = active_coverage_shares(dataset, op, direction="downlink")
            col = active_coverage_shares_from_store(
                reader, op, direction="downlink"
            )
            for tech, share in row.shares.items():
                assert col.shares[tech] == pytest.approx(share, abs=1e-12)

    def test_static_vs_driving_parity(self, dataset, reader):
        row = static_vs_driving(dataset, Operator.VERIZON)
        col = static_vs_driving_from_store(reader, Operator.VERIZON)
        for attr in (
            "static_dl", "static_ul", "static_rtt",
            "driving_dl", "driving_ul", "driving_rtt",
        ):
            assert np.array_equal(
                getattr(row, attr).sorted_values,
                getattr(col, attr).sorted_values,
            ), attr

    # Statistic-level row-vs-store parity lives in
    # tests/test_parity_differential.py, which sweeps the whole registry.

    def test_unsupported_statistic_raises(self, reader):
        from repro.errors import SweepError

        with pytest.raises(SweepError, match="no store evaluator"):
            evaluate_statistics_from_store(
                reader, ["handovers_per_mile_median_V"]
            )
