"""§8 recommendations quantified."""

import pytest

from repro.analysis.recommendations import quantify_recommendations
from repro.campaign.tests import TestType


@pytest.fixture(scope="module")
def report(dataset):
    return quantify_recommendations(dataset)


class TestCompressionGains:
    def test_both_apps_covered(self, report):
        apps = {g.app for g in report.compression}
        assert TestType.AR in apps
        assert TestType.CAV in apps

    def test_compression_always_helps(self, report):
        for gain in report.compression:
            assert gain.speedup > 1.0

    def test_cav_benefits_most(self, report):
        """§7.1.2: the CAV app's 2 MB raw frames gain the most (~8x)."""
        by_app = {g.app: g.speedup for g in report.compression}
        assert by_app[TestType.CAV] > by_app[TestType.AR]


class TestMultipathGains:
    def test_both_directions(self, report):
        assert {g.direction for g in report.multipath} == {"downlink", "uplink"}

    def test_aggregate_beats_best_single(self, report):
        for gain in report.multipath:
            assert gain.median_gain > 1.0

    def test_outage_collapse(self, report):
        for gain in report.multipath:
            assert gain.aggregate_outage_fraction <= gain.single_outage_fraction


class TestEdgeGains:
    def test_edge_cuts_rtt(self, report):
        assert report.edge.rtt_median_edge_ms < report.edge.rtt_median_cloud_ms
        assert 0.0 < report.edge.rtt_reduction < 1.0

    def test_video_qoe_direction(self, report):
        if report.edge.video_qoe_edge is not None and report.edge.video_qoe_cloud is not None:
            # Edge QoE at least comparable (usually better).
            assert report.edge.video_qoe_edge > report.edge.video_qoe_cloud - 40.0
