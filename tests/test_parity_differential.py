"""Differential testing: the row path and the store path must agree.

Every statistic that has a store-side evaluator is one computation with two
implementations — straight over row objects, and through the columnar query
engine with predicate pushdown.  This module runs **every** registered pair
through both paths on seeded-random datasets (NaN/±inf floats, random
enums, occasionally empty tables) and asserts they return the same value.

One parametrized test covers the whole registry, so a statistic added with
``register_store_evaluator`` is enrolled automatically — there is no
per-statistic parity test to forget to write.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.store.format import DatasetReader, write_dataset
from repro.sweep.stats import (
    evaluate_statistics,
    evaluate_statistics_from_store,
    get_statistic,
    registered_statistics,
    store_supported_statistics,
)
from tests.test_store_properties import _random_dataset

#: Seeds for the randomized differential datasets.  Three draws plus the
#: mostly-empty case below keep the runtime small while varying the enum
#: mix, NaN placement, and table sizes across cases.
CASE_SEEDS = (0, 1, 2)


@pytest.fixture(scope="module")
def cases(tmp_path_factory):
    """(dataset, reader) pairs: random draws plus an almost-empty dataset."""
    tmp = tmp_path_factory.mktemp("differential")
    built = []
    for seed in CASE_SEEDS:
        built.append(_random_dataset(random.Random(seed)))
    # Degenerate case: nearly everything empty, so statistics that divide
    # by a count exercise their NaN path through both implementations.
    built.append(
        _random_dataset(
            random.Random(99),
            empty_tables=frozenset(
                ("tput", "rtt", "ho", "passive", "offload", "video", "gaming")
            ),
        )
    )
    opened = []
    for i, dataset in enumerate(built):
        path = tmp / f"case-{i}.rcol"
        write_dataset(dataset, path)
        opened.append((dataset, DatasetReader(path)))
    yield opened
    for _, reader in opened:
        reader.close()


def test_registry_coverage():
    """The differential sweep below must cover a real registry, not a stub."""
    names = store_supported_statistics()
    assert len(names) >= 15
    assert set(names) <= set(registered_statistics())


@pytest.mark.parametrize("name", store_supported_statistics())
def test_row_and_store_paths_agree(name, cases):
    stat = get_statistic(name)
    for i, (dataset, reader) in enumerate(cases):
        row = stat.evaluate(dataset)
        col = evaluate_statistics_from_store(reader, [name])[name]
        label = f"{name} on case {i}"
        if math.isnan(row):
            assert math.isnan(col), label
        else:
            assert col == row, label


def test_batch_evaluation_matches_per_name(cases):
    """Evaluating the whole registry at once equals one-by-one evaluation."""
    dataset, reader = cases[0]
    names = store_supported_statistics()
    row = evaluate_statistics(dataset, names)
    col = evaluate_statistics_from_store(reader, names)
    assert set(row) == set(col) == set(names)
    for name in names:
        if math.isnan(row[name]):
            assert math.isnan(col[name]), name
        else:
            assert col[name] == row[name], name
