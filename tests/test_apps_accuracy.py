"""Table 5 accuracy model."""

import pytest

from repro.apps.accuracy import LOCAL_TRACKING_TABLE, MAP_FLOOR, map_for_latency


class TestTable5:
    def test_table_has_thirty_bins(self):
        assert len(LOCAL_TRACKING_TABLE) == 30

    def test_first_bin_identical_columns(self):
        # Within one frame time, compression makes no difference (38.45).
        assert LOCAL_TRACKING_TABLE[0] == (38.45, 38.45)

    def test_exact_paper_values(self):
        assert map_for_latency(2.5, compression=False) == 36.04
        assert map_for_latency(2.5, compression=True) == 34.75
        assert map_for_latency(29.5, compression=False) == 14.05
        assert map_for_latency(29.5, compression=True) == 13.70

    def test_compression_never_helps_accuracy(self):
        for bin_idx in range(30):
            without, with_c = LOCAL_TRACKING_TABLE[bin_idx]
            assert with_c <= without

    def test_broadly_decreasing(self):
        # The table has small local bumps (e.g. bins 9→10), but over any
        # 5-bin stride accuracy decreases.
        for i in range(25):
            assert LOCAL_TRACKING_TABLE[i + 5][0] < LOCAL_TRACKING_TABLE[i][0]

    def test_extrapolation_beyond_table(self):
        v40 = map_for_latency(40.0, compression=False)
        v60 = map_for_latency(60.0, compression=False)
        assert v40 < LOCAL_TRACKING_TABLE[-1][0]
        assert v60 <= v40

    def test_floor(self):
        assert map_for_latency(500.0, compression=True) == MAP_FLOOR

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            map_for_latency(-1.0, compression=False)

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            map_for_latency(float("nan"), compression=False)
