"""Dataset integrity validator."""

import dataclasses

import pytest

from repro.campaign.dataset import DriveDataset
from repro.campaign.validation import validate_dataset


class TestCleanDataset:
    def test_generated_dataset_validates(self, dataset):
        report = validate_dataset(dataset)
        assert report.ok, [str(i) for i in report.issues[:5]]
        assert report.checks_run > 1000

    def test_bare_dataset_validates(self, bare_dataset):
        assert validate_dataset(bare_dataset).ok


def _copy_with(dataset, **overrides):
    clone = DriveDataset(
        seed=dataset.seed, scale=dataset.scale,
        route_length_km=dataset.route_length_km,
    )
    clone.throughput_samples = list(dataset.throughput_samples)
    clone.rtt_samples = list(dataset.rtt_samples)
    clone.tests = list(dataset.tests)
    clone.handovers = list(dataset.handovers)
    clone.passive_coverage = list(dataset.passive_coverage)
    clone.offload_runs = list(dataset.offload_runs)
    clone.video_runs = list(dataset.video_runs)
    clone.gaming_runs = list(dataset.gaming_runs)
    for key, value in overrides.items():
        setattr(clone, key, value)
    return clone


class TestCorruptionDetection:
    def test_orphan_sample_detected(self, bare_dataset):
        corrupt = _copy_with(bare_dataset)
        orphan = dataclasses.replace(corrupt.throughput_samples[0], test_id=999_999)
        corrupt.throughput_samples = corrupt.throughput_samples + [orphan]
        report = validate_dataset(corrupt)
        assert not report.ok
        assert any(i.check == "tput.test-ref" for i in report.issues)

    def test_out_of_range_throughput_detected(self, bare_dataset):
        corrupt = _copy_with(bare_dataset)
        bad = dataclasses.replace(corrupt.throughput_samples[0], tput_mbps=99_999.0)
        corrupt.throughput_samples = [bad] + corrupt.throughput_samples[1:]
        report = validate_dataset(corrupt)
        assert any(i.check == "tput.range" for i in report.issues)

    def test_bad_bler_detected(self, bare_dataset):
        corrupt = _copy_with(bare_dataset)
        bad = dataclasses.replace(corrupt.throughput_samples[0], bler=1.5)
        corrupt.throughput_samples = [bad] + corrupt.throughput_samples[1:]
        report = validate_dataset(corrupt)
        assert any(i.check == "kpi.bler" for i in report.issues)

    def test_unordered_samples_detected(self, bare_dataset):
        corrupt = _copy_with(bare_dataset)
        samples = list(corrupt.throughput_samples)
        first_test = samples[0].test_id
        subset = [s for s in samples if s.test_id == first_test]
        swapped = dataclasses.replace(subset[0], time_s=subset[-1].time_s + 100.0)
        corrupt.throughput_samples = [swapped] + samples[1:]
        report = validate_dataset(corrupt)
        assert any(
            i.check in ("tput.monotone", "tput.window") for i in report.issues
        )

    def test_overlapping_passive_segments_detected(self, bare_dataset):
        corrupt = _copy_with(bare_dataset)
        seg = corrupt.passive_coverage[0]
        overlap = dataclasses.replace(seg, start_m=seg.start_m, end_m=seg.end_m + 5000.0)
        corrupt.passive_coverage = corrupt.passive_coverage + [overlap]
        report = validate_dataset(corrupt)
        assert any(i.check == "passive.tiling" for i in report.issues)

    def test_issue_cap_respected(self, bare_dataset):
        corrupt = _copy_with(bare_dataset)
        corrupt.throughput_samples = [
            dataclasses.replace(s, test_id=888_888)
            for s in corrupt.throughput_samples
        ]
        report = validate_dataset(corrupt, max_issues=10)
        assert len(report.issues) == 10
