"""PHY model: MCS, BLER, capacity composition."""

import numpy as np
import pytest

from repro.radio.ca import Direction
from repro.radio.channel import ChannelState
from repro.radio.operators import Operator
from repro.radio.phy import MAX_MCS_INDEX, PhyModel
from repro.radio.technology import RadioTechnology


@pytest.fixture()
def phy(rng):
    return PhyModel(rng)


class TestMcs:
    def test_range(self, phy):
        for sinr in (-10.0, 0.0, 10.0, 25.0, 40.0):
            assert 0 <= phy.mcs_from_sinr(sinr) <= MAX_MCS_INDEX

    def test_monotone_in_sinr_on_average(self, phy):
        low = np.mean([phy.mcs_from_sinr(0.0) for _ in range(200)])
        high = np.mean([phy.mcs_from_sinr(25.0) for _ in range(200)])
        assert high > low + 10

    def test_saturates_at_max(self, phy):
        values = [phy.mcs_from_sinr(40.0) for _ in range(100)]
        assert max(values) == MAX_MCS_INDEX


class TestBler:
    def test_range(self, phy):
        for sinr in (-10.0, 5.0, 30.0):
            for speed in (0.0, 70.0):
                assert 0.0 < phy.bler_from_sinr(sinr, speed) < 1.0

    def test_worse_at_low_sinr(self, phy):
        low = np.mean([phy.bler_from_sinr(-5.0, 0.0) for _ in range(200)])
        high = np.mean([phy.bler_from_sinr(25.0, 0.0) for _ in range(200)])
        assert low > high + 0.1

    def test_speed_penalty(self, phy):
        slow = np.mean([phy.bler_from_sinr(15.0, 0.0) for _ in range(300)])
        fast = np.mean([phy.bler_from_sinr(15.0, 75.0) for _ in range(300)])
        assert fast > slow


class TestCapacity:
    def test_zero_mcs_still_positive(self, phy):
        cap = phy.capacity_mbps(RadioTechnology.LTE, 0, 0.1, 1, 0.5, Direction.DOWNLINK)
        assert cap > 0.0

    def test_mmwave_peak_order_of_magnitude(self, phy):
        cap = phy.capacity_mbps(
            RadioTechnology.NR_MMWAVE, MAX_MCS_INDEX, 0.05, 3, 1.0, Direction.DOWNLINK
        )
        # Multi-CC mmWave reaches the paper's multi-Gbps regime.
        assert 2000.0 < cap < 6000.0

    def test_lte_peak_order_of_magnitude(self, phy):
        cap = phy.capacity_mbps(RadioTechnology.LTE, MAX_MCS_INDEX, 0.05, 1, 1.0, Direction.DOWNLINK)
        assert 50.0 < cap < 120.0

    def test_uplink_fraction_of_downlink(self, phy):
        dl = phy.capacity_mbps(RadioTechnology.NR_MID, 20, 0.08, 1, 0.5, Direction.DOWNLINK)
        ul = phy.capacity_mbps(RadioTechnology.NR_MID, 20, 0.08, 1, 0.5, Direction.UPLINK)
        assert ul < dl / 3.0  # Fig. 3's order-of-magnitude asymmetry

    def test_more_ccs_more_capacity(self, phy):
        c1 = phy.capacity_mbps(RadioTechnology.LTE_A, 20, 0.08, 1, 0.5, Direction.DOWNLINK)
        c3 = phy.capacity_mbps(RadioTechnology.LTE_A, 20, 0.08, 3, 0.5, Direction.DOWNLINK)
        assert c3 > c1 * 1.8

    def test_uplink_secondary_cc_contributes_less(self, phy):
        dl_gain = phy.capacity_mbps(
            RadioTechnology.LTE_A, 20, 0.08, 2, 0.5, Direction.DOWNLINK
        ) / phy.capacity_mbps(RadioTechnology.LTE_A, 20, 0.08, 1, 0.5, Direction.DOWNLINK)
        ul_gain = phy.capacity_mbps(
            RadioTechnology.LTE_A, 20, 0.08, 2, 0.5, Direction.UPLINK
        ) / phy.capacity_mbps(RadioTechnology.LTE_A, 20, 0.08, 1, 0.5, Direction.UPLINK)
        assert ul_gain < dl_gain

    def test_load_scales_capacity(self, phy):
        full = phy.capacity_mbps(RadioTechnology.NR_MID, 20, 0.08, 1, 1.0, Direction.DOWNLINK)
        tenth = phy.capacity_mbps(RadioTechnology.NR_MID, 20, 0.08, 1, 0.1, Direction.DOWNLINK)
        assert tenth == pytest.approx(full * 0.1, rel=1e-9)

    def test_bler_reduces_capacity(self, phy):
        clean = phy.capacity_mbps(RadioTechnology.LTE, 20, 0.01, 1, 0.5, Direction.DOWNLINK)
        lossy = phy.capacity_mbps(RadioTechnology.LTE, 20, 0.5, 1, 0.5, Direction.DOWNLINK)
        assert lossy < clean

    def test_invalid_inputs_rejected(self, phy):
        with pytest.raises(ValueError):
            phy.capacity_mbps(RadioTechnology.LTE, 99, 0.1, 1, 0.5, Direction.DOWNLINK)
        with pytest.raises(ValueError):
            phy.capacity_mbps(RadioTechnology.LTE, 10, 0.1, 1, 0.0, Direction.DOWNLINK)

    def test_operator_spectrum_scaling(self, rng):
        tmo = PhyModel(np.random.default_rng(0), Operator.TMOBILE)
        vzw = PhyModel(np.random.default_rng(0), Operator.VERIZON)
        t_mid = tmo.capacity_mbps(RadioTechnology.NR_MID, 20, 0.08, 1, 0.5, Direction.DOWNLINK)
        v_mid = vzw.capacity_mbps(RadioTechnology.NR_MID, 20, 0.08, 1, 0.5, Direction.DOWNLINK)
        # T-Mobile's 100 MHz n41 vs Verizon's partial C-band (Fig. 4).
        assert t_mid > v_mid * 1.3


class TestReport:
    def test_report_fields_consistent(self, phy):
        state = ChannelState(rsrp_dbm=-90.0, sinr_db=15.0)
        report = phy.report(RadioTechnology.NR_MID, state, 2, 0.5, 60.0, Direction.DOWNLINK)
        assert 0 <= report.mcs <= MAX_MCS_INDEX
        assert 0.0 < report.bler < 1.0
        assert report.n_ccs == 2
        assert report.capacity_mbps > 0.0
