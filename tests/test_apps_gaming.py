"""Cloud gaming session model."""

import numpy as np
import pytest

from repro.apps.gaming import GamingConfig, run_gaming_session
from repro.apps.schedule import LinkSchedule
from repro.radio.technology import RadioTechnology


def schedule(dl_mbps=500.0, duration_s=60.0, rtt_ms=20.0):
    n = int(duration_s / 0.5)
    return LinkSchedule(
        times_s=np.arange(n) * 0.5,
        tick_s=0.5,
        ul_mbps=np.full(n, 10.0),
        dl_mbps=np.full(n, dl_mbps) if np.isscalar(dl_mbps) else np.asarray(dl_mbps),
        rtt_ms=np.full(n, rtt_ms),
        techs=(RadioTechnology.NR_MMWAVE,) * n,
        interruptions=(),
    )


class TestGaming:
    def test_ideal_link_reaches_bitrate_cap(self):
        """§7.3: best static run ≈98.5 Mbps (adapter cap 100)."""
        m = run_gaming_session(schedule(dl_mbps=2000.0))
        assert 85.0 < m.avg_bitrate_mbps <= 100.0
        assert m.frame_drop_rate < 0.01

    def test_ideal_link_latency_floor(self):
        """§7.3: best static network latency ≈17 ms."""
        m = run_gaming_session(schedule(dl_mbps=2000.0, rtt_ms=15.0))
        assert 14.0 < m.median_latency_ms < 25.0

    def test_constrained_link_tracks_capacity(self):
        m = run_gaming_session(schedule(dl_mbps=25.0))
        assert 10.0 < m.avg_bitrate_mbps < 28.0

    def test_adapter_prefers_latency_over_drops(self):
        """§7.3 obs. 2: drops stay low even when latency blows up."""
        m = run_gaming_session(schedule(dl_mbps=6.0))
        assert m.frame_drop_rate < 0.15
        assert m.median_latency_ms > 25.0

    def test_deep_outage_causes_drops_and_latency(self):
        rates = np.concatenate([np.full(40, 80.0), np.full(20, 0.3), np.full(60, 80.0)])
        m = run_gaming_session(schedule(dl_mbps=rates))
        assert m.frame_drop_rate > 0.0
        assert m.max_latency_ms > 200.0

    def test_latency_percentiles_ordered(self):
        m = run_gaming_session(schedule(dl_mbps=15.0))
        assert m.median_latency_ms <= m.p95_latency_ms <= m.max_latency_ms

    def test_bitrate_never_exceeds_cap(self):
        cfg = GamingConfig(max_bitrate_mbps=50.0)
        m = run_gaming_session(schedule(dl_mbps=5000.0), cfg)
        assert m.avg_bitrate_mbps <= 50.0

    def test_bytes_accounted(self):
        m = run_gaming_session(schedule())
        assert m.downlink_megabits == pytest.approx(m.avg_bitrate_mbps * 60.0, rel=0.01)
