"""Handover events and the handover engine."""

import numpy as np
import pytest

from repro.geo.coords import LatLon
from repro.mobility.engine import HandoverEngine
from repro.mobility.events import HandoverEvent, HandoverType, classify_handover
from repro.radio.ca import Direction
from repro.radio.cells import Cell, CellId
from repro.radio.operators import Operator
from repro.radio.technology import RadioTechnology


def make_cell(seq, tech=RadioTechnology.LTE_A, op=Operator.VERIZON):
    return Cell(
        cell_id=CellId(op, tech, seq),
        site=LatLon(40.0, -100.0),
        site_mark_m=seq * 800.0,
        perpendicular_m=120.0,
    )


class TestClassification:
    @pytest.mark.parametrize(
        "src,dst,expected",
        [
            (RadioTechnology.LTE, RadioTechnology.LTE_A, HandoverType.HORIZONTAL_4G),
            (RadioTechnology.NR_MID, RadioTechnology.NR_MMWAVE, HandoverType.HORIZONTAL_5G),
            (RadioTechnology.LTE_A, RadioTechnology.NR_LOW, HandoverType.VERTICAL_UP),
            (RadioTechnology.NR_MID, RadioTechnology.LTE, HandoverType.VERTICAL_DOWN),
        ],
    )
    def test_types(self, src, dst, expected):
        assert classify_handover(src, dst) is expected

    def test_vertical_flag(self):
        assert HandoverType.VERTICAL_UP.is_vertical
        assert not HandoverType.HORIZONTAL_4G.is_vertical

    def test_event_requires_positive_duration(self):
        with pytest.raises(ValueError):
            HandoverEvent(
                operator=Operator.VERIZON,
                time_s=0.0,
                mark_m=0.0,
                duration_ms=0.0,
                from_cell=CellId(Operator.VERIZON, RadioTechnology.LTE, 1),
                to_cell=CellId(Operator.VERIZON, RadioTechnology.LTE, 2),
                from_tech=RadioTechnology.LTE,
                to_tech=RadioTechnology.LTE,
            )


class TestEngine:
    def test_first_observation_no_handover(self, rng):
        engine = HandoverEngine(Operator.VERIZON, rng)
        events = engine.observe(make_cell(1), 0.0, 0.0, 0.5)
        assert events == []

    def test_cell_change_fires_handover(self, rng):
        engine = HandoverEngine(Operator.VERIZON, rng)
        engine.observe(make_cell(1), 0.0, 0.0, 0.5)
        events = engine.observe(make_cell(2), 0.5, 800.0, 0.5)
        assert len(events) == 1
        assert events[0].from_cell.sequence == 1
        assert events[0].to_cell.sequence == 2

    def test_same_cell_usually_quiet(self, rng):
        engine = HandoverEngine(Operator.VERIZON, rng)
        cell = make_cell(1)
        engine.observe(cell, 0.0, 0.0, 0.5)
        events = sum(
            len(engine.observe(cell, 0.5 * i, 10.0 * i, 0.5)) for i in range(1, 100)
        )
        assert events <= 5  # only rare ping-pongs

    def test_pingpong_happens_eventually(self):
        engine = HandoverEngine(Operator.VERIZON, np.random.default_rng(0))
        cell = make_cell(1)
        engine.observe(cell, 0.0, 0.0, 0.5)
        total = 0
        for i in range(1, 3000):
            total += len(engine.observe(engine._current_cell, 0.5 * i, 10.0 * i, 0.5))
        assert total >= 1

    def test_duration_medians_match_fig11b(self):
        """Fig. 11b: median durations 53/76/58 ms (DL) per operator."""
        targets = {Operator.VERIZON: 53.0, Operator.TMOBILE: 76.0, Operator.ATT: 58.0}
        for op, target in targets.items():
            engine = HandoverEngine(op, np.random.default_rng(1))
            durations = []
            prev = make_cell(0, op=op)
            engine.observe(prev, 0.0, 0.0, 0.5)
            for i in range(1, 800):
                cell = make_cell(i, op=op)
                for ev in engine.observe(cell, 0.5 * i, 800.0 * i, 0.5, Direction.DOWNLINK):
                    durations.append(ev.duration_ms)
            med = float(np.median(durations))
            assert target * 0.8 < med < target * 1.3  # vertical HOs stretch it

    def test_vertical_handovers_take_longer(self):
        rng_h = np.random.default_rng(2)
        horizontals, verticals = [], []
        engine = HandoverEngine(Operator.VERIZON, rng_h)
        engine.observe(make_cell(0, RadioTechnology.LTE), 0.0, 0.0, 0.5)
        for i in range(1, 600):
            tech = RadioTechnology.LTE if i % 2 else RadioTechnology.NR_MID
            for ev in engine.observe(make_cell(i, tech), 0.5 * i, 800.0 * i, 0.5):
                if ev.handover_type.is_vertical:
                    verticals.append(ev.duration_ms)
                else:
                    horizontals.append(ev.duration_ms)
        assert np.median(verticals) > np.median(horizontals)

    def test_connected_cells_tracked(self, rng):
        engine = HandoverEngine(Operator.VERIZON, rng)
        for i in range(5):
            engine.observe(make_cell(i), 0.5 * i, 800.0 * i, 0.5)
        assert len(engine.connected_cells) >= 5
        assert engine.total_handovers >= 4

    def test_reset_serving_suppresses_handover(self, rng):
        engine = HandoverEngine(Operator.VERIZON, rng)
        engine.observe(make_cell(1), 0.0, 0.0, 0.5)
        engine.reset_serving()
        events = engine.observe(make_cell(99), 10.0, 99_999.0, 0.5)
        assert events == []
