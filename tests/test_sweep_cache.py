"""The content-addressed shard cache: correctness before speed.

A cache entry is addressed by ``(config_fingerprint, shard_index,
shard_seed)`` — the complete identity of a shard's computation — so the
cardinal sin would be serving a shard that belongs to a different
computation.  These tests pin the three safety properties (address
revalidation, corrupt-entry rejection, atomic visibility) plus the
operational ones (LRU bounding, counters).
"""

from __future__ import annotations

import json

import pytest

from repro.campaign.dataset import DriveDataset, RttSample
from repro.engine.checkpoint import shard_key, shard_stem
from repro.engine.planner import PASSIVE_SHARD_INDEX
from repro.engine.worker import ShardResult
from repro.errors import SweepError
from repro.geo.regions import RegionType
from repro.geo.timezones import Timezone
from repro.net.servers import ServerKind
from repro.radio.operators import Operator
from repro.radio.technology import RadioTechnology
from repro.sweep.cache import ShardCache

FP = "a" * 64
OTHER_FP = "b" * 64


def make_result(index: int = 0, seed: int = 42, n_rtts: int = 1) -> ShardResult:
    ds = DriveDataset(seed=seed, scale=0.01, route_length_km=100.0)
    for i in range(n_rtts):
        ds.rtt_samples.append(
            RttSample(
                test_id=1000 + i,
                operator=Operator.VERIZON,
                time_s=float(i),
                mark_m=10.0 * i,
                speed_mph=60.0,
                region=RegionType.HIGHWAY,
                timezone=Timezone.PACIFIC,
                tech=RadioTechnology.LTE,
                rtt_ms=50.0 + i,
                server_kind=ServerKind.CLOUD,
                static=False,
            )
        )
    return ShardResult(
        index=index, dataset=ds,
        active_cells={Operator.VERIZON: 3}, wall_s=1.5,
    )


class TestAddressing:
    def test_key_depends_on_all_three_coordinates(self):
        base = shard_key(FP, 0, 42)
        assert shard_key(FP, 0, 42) == base
        assert shard_key(OTHER_FP, 0, 42) != base
        assert shard_key(FP, 1, 42) != base
        assert shard_key(FP, 0, 43) != base

    def test_passive_shard_has_its_own_stem(self):
        assert shard_stem(PASSIVE_SHARD_INDEX) == "shard-passive"
        assert shard_stem(7) == "shard-0007"


class TestRoundTrip:
    def test_store_then_load(self, tmp_path):
        cache = ShardCache(tmp_path)
        result = make_result(index=3)
        cache.store(FP, 42, result)
        loaded = cache.load(FP, 42, 3)
        assert loaded is not None
        assert loaded.from_cache
        assert loaded.index == 3
        assert loaded.wall_s == result.wall_s
        assert loaded.active_cells == result.active_cells
        assert [s.rtt_ms for s in loaded.dataset.rtt_samples] == [
            s.rtt_ms for s in result.dataset.rtt_samples
        ]
        assert cache.stats.stores == 1
        assert cache.stats.hits == 1

    def test_load_many_returns_only_present(self, tmp_path):
        cache = ShardCache(tmp_path)
        cache.store(FP, 42, make_result(index=0))
        cache.store(FP, 42, make_result(index=2))
        found = cache.load_many(FP, 42, [0, 1, 2, PASSIVE_SHARD_INDEX])
        assert sorted(found) == [0, 2]
        assert cache.stats.hits == 2
        assert cache.stats.misses == 2

    def test_no_temp_files_left_behind(self, tmp_path):
        cache = ShardCache(tmp_path)
        cache.store(FP, 42, make_result())
        assert not list(tmp_path.rglob("*.tmp"))


class TestInvalidation:
    """A cache entry written under a different computation must be ignored."""

    def test_foreign_fingerprint_misses(self, tmp_path):
        cache = ShardCache(tmp_path)
        cache.store(FP, 42, make_result())
        assert cache.load(OTHER_FP, 42, 0) is None
        assert cache.stats.misses == 1

    def test_foreign_seed_misses(self, tmp_path):
        cache = ShardCache(tmp_path)
        cache.store(FP, 42, make_result())
        assert cache.load(FP, 43, 0) is None

    def test_mismatched_sidecar_rejected(self, tmp_path):
        """Even a key collision cannot serve a foreign shard: the sidecar
        is revalidated against the full identity triple on every hit."""
        cache = ShardCache(tmp_path)
        cache.store(FP, 42, make_result(index=5))
        entry = cache.entry_dir(cache.key(FP, 5, 42))
        meta = json.loads((entry / "meta.json").read_text())
        meta["seed"] = 99
        (entry / "meta.json").write_text(json.dumps(meta))
        assert cache.load(FP, 42, 5) is None

    def test_corrupt_dataset_misses(self, tmp_path):
        cache = ShardCache(tmp_path)
        cache.store(FP, 42, make_result())
        entry = cache.entry_dir(cache.key(FP, 0, 42))
        (entry / "data.ds.gz").write_bytes(b"not a gzip stream")
        assert cache.load(FP, 42, 0) is None

    def test_corrupt_sidecar_misses(self, tmp_path):
        cache = ShardCache(tmp_path)
        cache.store(FP, 42, make_result())
        entry = cache.entry_dir(cache.key(FP, 0, 42))
        (entry / "meta.json").write_text("{truncated")
        assert cache.load(FP, 42, 0) is None

    def test_missing_entry_misses(self, tmp_path):
        cache = ShardCache(tmp_path)
        assert cache.load(FP, 42, 0) is None
        assert cache.load_many(FP, 42, [0, 1]) == {}
        assert cache.stats.hit_ratio() == 0.0


class TestLruBounding:
    def entry_bytes(self, tmp_path) -> int:
        probe = ShardCache(tmp_path / "probe")
        probe.store(FP, 42, make_result())
        return probe.total_bytes()

    def test_eviction_drops_least_recently_used(self, tmp_path):
        size = self.entry_bytes(tmp_path)
        cache = ShardCache(tmp_path / "c", max_bytes=3 * size + size // 2)
        for index in range(3):
            cache.store(FP, 42, make_result(index=index))
        assert len(cache) == 3
        # Touch shard 0 so shard 1 becomes the LRU entry, then overflow.
        assert cache.load(FP, 42, 0) is not None
        cache.store(FP, 42, make_result(index=3))
        assert cache.stats.evictions >= 1
        assert cache.load(FP, 42, 1) is None  # evicted
        assert cache.load(FP, 42, 0) is not None  # recently used, kept
        assert cache.load(FP, 42, 3) is not None  # just written, kept
        assert cache.total_bytes() <= 3 * size + size // 2

    def test_batch_hits_refresh_recency_in_access_order(self, tmp_path):
        """Regression: ``load_many`` hits must refresh LRU recency exactly
        like single ``load`` hits, in access order — eviction must never
        punish an entry for having been served as part of a batch."""
        size = self.entry_bytes(tmp_path)
        budget = 3 * size + size // 2
        cache = ShardCache(tmp_path / "c", max_bytes=budget)
        for index in range(3):
            cache.store(FP, 42, make_result(index=index))
        # Batch-replay shards 0 then 1: recency order is now 2 < 0 < 1.
        found = cache.load_many(FP, 42, [0, 1])
        assert sorted(found) == [0, 1]
        cache.store(FP, 42, make_result(index=3))  # evicts 2 (untouched)
        assert cache.load(FP, 42, 2) is None
        cache.store(FP, 42, make_result(index=4))  # evicts 0 (first in batch)
        assert cache.load(FP, 42, 0) is None
        for index in (1, 3, 4):
            assert cache.load(FP, 42, index) is not None, index

    def test_batch_hits_count_in_metrics_registry(self, tmp_path):
        """Every batch hit lands in the obs registry, same as single loads."""
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        cache = ShardCache(tmp_path, metrics=registry)
        for index in range(2):
            cache.store(FP, 42, make_result(index=index))
        cache.load_many(FP, 42, [0, 1, 7])
        counters = registry.snapshot()["counters"]
        assert counters["cache.hits"] == 2
        assert counters["cache.misses"] == 1

    def test_future_dated_entries_cannot_outrank_fresh_use(self, tmp_path):
        """Regression: with entry mtimes in the future (clock skew, another
        host's writes), a wall-clock recency stamp made the *just-used*
        shard the eviction victim.  The logical clock seeds at or above
        every existing stamp, so fresh use always wins."""
        import os
        import time

        size = self.entry_bytes(tmp_path)
        cache = ShardCache(tmp_path / "c", max_bytes=3 * size + size // 2)
        for index in range(3):
            cache.store(FP, 42, make_result(index=index))
        future = time.time_ns() + 10**12  # ~17 minutes ahead
        for index in range(3):
            meta = cache.entry_dir(cache.key(FP, index, 42)) / "meta.json"
            stamp = future + index
            os.utime(meta, ns=(stamp, stamp))
        # A fresh instance discovers the skewed stamps on first use.
        cache = ShardCache(tmp_path / "c", max_bytes=3 * size + size // 2)
        assert cache.load(FP, 42, 0) is not None  # just used: newest now
        cache.store(FP, 42, make_result(index=3))
        assert cache.load(FP, 42, 0) is not None  # survived the overflow
        assert cache.load(FP, 42, 3) is not None  # just written, kept
        assert cache.load(FP, 42, 1) is None  # oldest untouched: evicted

    def test_oversized_single_entry_still_cached(self, tmp_path):
        cache = ShardCache(tmp_path, max_bytes=1)
        cache.store(FP, 42, make_result(n_rtts=50))
        # The bound cannot hold, but the just-written entry survives.
        assert cache.load(FP, 42, 0) is not None

    def test_unbounded_never_evicts(self, tmp_path):
        cache = ShardCache(tmp_path)
        for index in range(5):
            cache.store(FP, 42, make_result(index=index))
        assert len(cache) == 5
        assert cache.stats.evictions == 0

    def test_invalid_bound_rejected(self, tmp_path):
        with pytest.raises(SweepError):
            ShardCache(tmp_path, max_bytes=0)
