"""Deterministic RNG plumbing."""

import numpy as np
import pytest

from repro.rng import RngFactory, choose_weighted, clamp, default_rng


class TestRngFactory:
    def test_same_seed_same_stream(self):
        a = RngFactory(seed=11).stream("channel").standard_normal(8)
        b = RngFactory(seed=11).stream("channel").standard_normal(8)
        assert np.allclose(a, b)

    def test_different_names_differ(self):
        f = RngFactory(seed=11)
        a = f.stream("alpha").standard_normal(8)
        b = f.stream("beta").standard_normal(8)
        assert not np.allclose(a, b)

    def test_different_seeds_differ(self):
        a = RngFactory(seed=1).stream("x").standard_normal(8)
        b = RngFactory(seed=2).stream("x").standard_normal(8)
        assert not np.allclose(a, b)

    def test_stream_is_cached_and_continues(self):
        f = RngFactory(seed=5)
        first = f.stream("s").standard_normal()
        second = f.stream("s").standard_normal()
        # A fresh factory replays both values in order, proving continuation.
        g = RngFactory(seed=5).stream("s")
        assert g.standard_normal() == pytest.approx(first)
        assert g.standard_normal() == pytest.approx(second)

    def test_fresh_restarts_stream(self):
        f = RngFactory(seed=5)
        first = f.stream("s").standard_normal()
        restarted = f.fresh("s").standard_normal()
        assert restarted == pytest.approx(first)

    def test_order_independence(self):
        f1 = RngFactory(seed=9)
        _ = f1.stream("a").standard_normal()
        v1 = f1.stream("b").standard_normal()
        f2 = RngFactory(seed=9)
        v2 = f2.stream("b").standard_normal()
        assert v1 == pytest.approx(v2)

    def test_child_factory_independent(self):
        f = RngFactory(seed=3)
        child = f.child("worker")
        a = f.stream("x").standard_normal(4)
        b = child.stream("x").standard_normal(4)
        assert not np.allclose(a, b)

    def test_default_rng_helper(self):
        assert isinstance(default_rng(0), RngFactory)


class TestClamp:
    def test_inside_range(self):
        assert clamp(0.5, 0.0, 1.0) == 0.5

    def test_below(self):
        assert clamp(-3.0, 0.0, 1.0) == 0.0

    def test_above(self):
        assert clamp(7.0, 0.0, 1.0) == 1.0


class TestChooseWeighted:
    def test_degenerate_weight_always_chosen(self, rng):
        items = ["a", "b", "c"]
        for _ in range(20):
            assert choose_weighted(rng, items, [0.0, 1.0, 0.0]) == "b"

    def test_respects_weights_statistically(self, rng):
        items = [0, 1]
        draws = [choose_weighted(rng, items, [0.2, 0.8]) for _ in range(4000)]
        frac_one = sum(draws) / len(draws)
        assert 0.75 < frac_one < 0.85

    def test_unnormalised_weights(self, rng):
        items = ["x", "y"]
        draws = [choose_weighted(rng, items, [3.0, 1.0]) for _ in range(4000)]
        frac_x = draws.count("x") / len(draws)
        assert 0.70 < frac_x < 0.80
