"""§7 application QoE analyses (Figs. 13-16, 18-22)."""

import math

import pytest

from repro.analysis import apps
from repro.analysis.apps import metric_handover_correlation
from repro.campaign.tests import TestType
from repro.errors import AnalysisError
from repro.radio.operators import Operator


class TestOffloadReports:
    @pytest.mark.parametrize("op", list(Operator))
    def test_ar_report_builds_for_all_operators(self, dataset, op):
        report = apps.offload_app_report(dataset, op, TestType.AR)
        assert True in report.e2e_cdf or False in report.e2e_cdf

    def test_driving_e2e_exceeds_best_static(self, dataset):
        """Fig. 13a: driving E2E ≫ best static (paper: ~3× at the median)."""
        report = apps.offload_app_report(dataset, Operator.VERIZON, TestType.AR)
        if True in report.e2e_cdf and True in report.best_static_e2e_ms:
            assert report.e2e_cdf[True].median > report.best_static_e2e_ms[True]

    def test_compression_reduces_ar_e2e(self, dataset):
        report = apps.offload_app_report(dataset, Operator.VERIZON, TestType.AR)
        if True in report.e2e_cdf and False in report.e2e_cdf:
            assert report.e2e_cdf[True].median < report.e2e_cdf[False].median

    def test_cav_misses_100ms_budget(self, dataset):
        """Fig. 14a: the CAV app never achieves 100 ms E2E while driving."""
        for op in Operator:
            report = apps.offload_app_report(dataset, op, TestType.CAV)
            for cdf in report.e2e_cdf.values():
                assert cdf.minimum > 100.0

    def test_handover_correlation_weak(self, dataset):
        """§7: no strong correlation between handovers and app QoE."""
        report = apps.offload_app_report(dataset, Operator.VERIZON, TestType.AR)
        assert abs(report.handover_correlation) < 0.6

    def test_hs5g_scatter_fractions_valid(self, dataset):
        report = apps.offload_app_report(dataset, Operator.TMOBILE, TestType.CAV)
        for frac, metric, _kind in report.metric_vs_hs5g:
            assert 0.0 <= frac <= 1.0
            assert metric > 0.0

    def test_ar_map_capped_by_table5(self, dataset):
        report = apps.offload_app_report(dataset, Operator.ATT, TestType.AR)
        for frac, map_score, _ in report.metric_vs_hs5g:
            assert 0.0 <= map_score <= 38.45

    def test_rejects_non_offload_app(self, dataset):
        with pytest.raises(AnalysisError):
            apps.offload_app_report(dataset, Operator.VERIZON, TestType.VIDEO_360)


class TestVideoReports:
    def test_report_builds(self, dataset):
        report = apps.video_app_report(dataset, Operator.VERIZON)
        assert report.qoe_cdf.n > 0

    def test_static_qoe_near_best(self, dataset):
        """Fig. 15a: the best static QoE approaches the theoretical 100."""
        report = apps.video_app_report(dataset, Operator.VERIZON)
        if report.best_static_qoe is not None:
            assert report.best_static_qoe > 70.0

    def test_driving_qoe_below_static(self, dataset):
        report = apps.video_app_report(dataset, Operator.VERIZON)
        if report.best_static_qoe is not None:
            assert report.qoe_cdf.median < report.best_static_qoe

    def test_some_negative_qoe_runs(self, dataset):
        """Fig. 15a: a sizeable share of driving runs have negative QoE."""
        fractions = [
            apps.video_app_report(dataset, op).negative_qoe_fraction for op in Operator
        ]
        assert max(fractions) > 0.1

    def test_rebuffer_ratios_bounded(self, dataset):
        report = apps.video_app_report(dataset, Operator.ATT)
        assert 0.0 <= report.rebuffer_cdf.minimum
        assert report.rebuffer_cdf.maximum <= 1.0

    def test_handover_correlation_weak(self, dataset):
        for op in Operator:
            report = apps.video_app_report(dataset, op)
            if report.qoe_cdf.n >= 15:
                assert abs(report.handover_correlation) < 0.7


class TestGamingReports:
    def test_report_builds(self, dataset):
        report = apps.gaming_app_report(dataset, Operator.VERIZON)
        assert report.bitrate_cdf.n > 0

    def test_static_bitrate_near_cap(self, dataset):
        """Fig. 16a: best static ≈98.5 Mbps (adapter cap 100)."""
        report = apps.gaming_app_report(dataset, Operator.VERIZON)
        if report.best_static_bitrate is not None:
            assert report.best_static_bitrate > 80.0

    def test_driving_bitrate_below_static(self, dataset):
        report = apps.gaming_app_report(dataset, Operator.VERIZON)
        if report.best_static_bitrate is not None:
            assert report.bitrate_cdf.median < report.best_static_bitrate * 0.7

    def test_drop_rates_low_overall(self, dataset):
        """§7.3: the adapter keeps frame drops low (median ≈1.6%)."""
        report = apps.gaming_app_report(dataset, Operator.VERIZON)
        assert report.drop_rate_cdf.median < 10.0

    def test_latency_fractions(self, dataset):
        report = apps.gaming_app_report(dataset, Operator.TMOBILE)
        assert 0.0 <= report.high_latency_run_fraction <= 1.0


class TestCorrelationHelper:
    def test_degenerate_cases(self):
        assert metric_handover_correlation([]) == 0.0
        assert metric_handover_correlation([(1.0, 2.0)]) == 0.0
        assert metric_handover_correlation([(1.0, 5.0), (1.0, 6.0), (1.0, 7.0)]) == 0.0

    def test_perfect_correlation(self):
        pairs = [(float(i), float(2 * i)) for i in range(10)]
        assert metric_handover_correlation(pairs) == pytest.approx(1.0)

    def test_nan_filtered(self):
        pairs = [(1.0, 1.0), (2.0, 2.0), (3.0, 3.0), (4.0, math.nan)]
        assert metric_handover_correlation(pairs) == pytest.approx(1.0)
