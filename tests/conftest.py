"""Shared fixtures.

The expensive fixtures are session-scoped: one small-but-complete campaign
dataset (apps + static baselines included) shared by all analysis tests, and
one bare-bones dataset for tests that only need throughput/RTT records.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.campaign.runner import CampaignConfig, DriveCampaign
from repro.geo.route import build_cross_country_route


@pytest.fixture(scope="session")
def route():
    return build_cross_country_route()


@pytest.fixture(scope="session")
def campaign():
    """A small but complete campaign (apps + static), shared read-only."""
    c = DriveCampaign(CampaignConfig(seed=42, scale=0.035))
    c.run()
    c.finalize_connected_cells()
    return c


@pytest.fixture(scope="session")
def dataset(campaign):
    return campaign._dataset


@pytest.fixture(scope="session")
def bare_dataset():
    """Throughput/RTT-only dataset (no apps, no static) for faster tests."""
    c = DriveCampaign(
        CampaignConfig(seed=7, scale=0.008, include_apps=False, include_static=False)
    )
    ds = c.run()
    c.finalize_connected_cells()
    return ds


@pytest.fixture()
def rng():
    return np.random.default_rng(12345)


# -- engine fixtures ---------------------------------------------------------

#: One shared engine configuration for the determinism / fault-tolerance
#: tests: small enough to run in a few seconds, large enough for several
#: shard windows.
ENGINE_CAMPAIGN = CampaignConfig(
    seed=42, scale=0.004, include_apps=False, include_static=False
)
ENGINE_WINDOW_KM = 600.0


def engine_dataset_bytes(ds, tmp_dir) -> bytes:
    """Canonical serialised form of a dataset (saves are byte-reproducible)."""
    from repro.campaign.persistence import save_dataset

    path = tmp_dir / "digest.jsonl.gz"
    save_dataset(ds, path)
    data = path.read_bytes()
    path.unlink()
    return data


@pytest.fixture(scope="session")
def engine_baseline(tmp_path_factory):
    """Serial single-batch engine run of ENGINE_CAMPAIGN → (dataset, bytes)."""
    from repro.engine import EngineConfig, PlannerParams, run_engine

    ds, _report = run_engine(
        EngineConfig(
            campaign=ENGINE_CAMPAIGN,
            executor="serial",
            planner=PlannerParams(window_km=ENGINE_WINDOW_KM),
        )
    )
    tmp = tmp_path_factory.mktemp("engine-baseline")
    return ds, engine_dataset_bytes(ds, tmp)
