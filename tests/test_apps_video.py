"""360° video streaming: BBA and the Yin et al. QoE."""

import numpy as np
import pytest

from repro.apps.schedule import LinkSchedule
from repro.apps.video import VideoConfig, bba_select_bitrate, run_video_session
from repro.radio.technology import RadioTechnology


def schedule(dl_mbps=1000.0, duration_s=180.0, rtt_ms=30.0):
    n = int(duration_s / 0.5)
    return LinkSchedule(
        times_s=np.arange(n) * 0.5,
        tick_s=0.5,
        ul_mbps=np.full(n, 10.0),
        dl_mbps=np.full(n, dl_mbps) if np.isscalar(dl_mbps) else np.asarray(dl_mbps),
        rtt_ms=np.full(n, rtt_ms),
        techs=(RadioTechnology.NR_MID,) * n,
        interruptions=(),
    )


class TestBba:
    def test_reservoir_forces_minimum(self):
        cfg = VideoConfig()
        assert bba_select_bitrate(0.0, cfg) == 5.0
        assert bba_select_bitrate(cfg.reservoir_s, cfg) == 5.0

    def test_cushion_top_allows_maximum(self):
        cfg = VideoConfig()
        assert bba_select_bitrate(cfg.reservoir_s + cfg.cushion_s, cfg) == 100.0

    def test_monotone_in_buffer(self):
        cfg = VideoConfig()
        rates = [bba_select_bitrate(b, cfg) for b in np.linspace(0, 30, 61)]
        assert all(b >= a for a, b in zip(rates, rates[1:]))

    def test_selects_only_ladder_rungs(self):
        cfg = VideoConfig()
        for b in np.linspace(0, 30, 200):
            assert bba_select_bitrate(b, cfg) in cfg.bitrates_mbps

    def test_invalid_ladder_rejected(self):
        with pytest.raises(ValueError):
            VideoConfig(bitrates_mbps=(10.0, 5.0))
        with pytest.raises(ValueError):
            VideoConfig(bitrates_mbps=())


class TestSessions:
    def test_ideal_link_qoe_near_theoretical_best(self):
        """§7.2: best static run QoE ≈96 (theoretical best 100)."""
        m = run_video_session(schedule())
        assert 90.0 < m.qoe <= 100.0
        assert m.rebuffer_ratio == 0.0

    def test_starved_link_negative_qoe(self):
        """§7.2: heavy rebuffering drives QoE deeply negative (μ = 100)."""
        m = run_video_session(schedule(dl_mbps=1.5))
        assert m.qoe < 0.0
        assert m.rebuffer_ratio > 0.3

    def test_rebuffer_ratio_bounded(self):
        for rate in (0.5, 3.0, 20.0, 500.0):
            m = run_video_session(schedule(dl_mbps=rate))
            assert 0.0 <= m.rebuffer_ratio <= 1.0

    def test_mid_rate_link_picks_mid_ladder(self):
        m = run_video_session(schedule(dl_mbps=30.0))
        assert 5.0 <= m.avg_bitrate_mbps <= 50.0

    def test_higher_capacity_higher_bitrate(self):
        slow = run_video_session(schedule(dl_mbps=8.0))
        fast = run_video_session(schedule(dl_mbps=200.0))
        assert fast.avg_bitrate_mbps > slow.avg_bitrate_mbps

    def test_bytes_accounted(self):
        m = run_video_session(schedule(dl_mbps=50.0))
        assert m.downlink_megabits > 0.0

    def test_dead_link_reports_total_stall(self):
        m = run_video_session(schedule(dl_mbps=0.001, duration_s=60.0),
                              VideoConfig(session_duration_s=60.0))
        assert m.qoe < -50.0
        assert m.rebuffer_ratio > 0.8

    def test_fluctuating_link_switches_bitrate(self):
        rates = np.concatenate([np.full(180, 150.0), np.full(180, 6.0)])
        m = run_video_session(schedule(dl_mbps=rates))
        assert m.bitrate_switches >= 2
