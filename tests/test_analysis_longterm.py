"""§5.6 longer-timescale analyses (Figs. 9-10, Table 3)."""

import pytest

from repro.analysis import longterm, ookla
from repro.analysis.ookla import OOKLA_Q3_2022, PAPER_DRIVE_MEDIANS
from repro.radio.operators import Operator


class TestFig9:
    def test_per_test_medians_in_paper_band(self, dataset):
        """Fig. 9: per-test DL medians ≈30-48 Mbps, UL ≈10-14 Mbps."""
        for op in Operator:
            dl = longterm.per_test_throughput_stats(dataset, op, "downlink")
            ul = longterm.per_test_throughput_stats(dataset, op, "uplink")
            assert 5.0 < dl.median_mean < 120.0
            assert 2.0 < ul.median_mean < 40.0

    def test_within_test_fluctuation_large(self, dataset):
        """Fig. 9 bottom: throughput stddev ≈44-70% of the mean."""
        for op in Operator:
            dl = longterm.per_test_throughput_stats(dataset, op, "downlink")
            assert dl.median_stddev_pct > 20.0

    def test_rtt_fluctuation_smaller_than_throughput(self, dataset):
        """Fig. 9: RTT stddev-% (18-29%) is below throughput's (44-70%)."""
        for op in Operator:
            tput = longterm.per_test_throughput_stats(dataset, op, "downlink")
            rtt = longterm.per_test_rtt_stats(dataset, op)
            assert rtt.median_stddev_pct < tput.median_stddev_pct

    def test_per_test_mean_exceeds_sample_median(self, dataset):
        """§5.6: test means sit above the 500 ms sample median (long tail)."""
        import numpy as np

        for op in Operator:
            sample_median = float(
                np.median(dataset.tput_values(operator=op, direction="downlink", static=False))
            )
            test_median = longterm.per_test_throughput_stats(dataset, op, "downlink").median_mean
            assert test_median > sample_median * 0.9


class TestFig10:
    def test_points_have_valid_fractions(self, dataset):
        for op in Operator:
            for frac, _tput in longterm.throughput_vs_hs5g_fraction(dataset, op, "downlink"):
                assert 0.0 <= frac <= 1.0

    def test_rtt_points_exist(self, dataset):
        points = longterm.rtt_vs_hs5g_fraction(dataset, Operator.VERIZON)
        assert points

    def test_tmobile_midband_lifts_downlink(self, dataset):
        """Fig. 10a: only T-Mobile's midband brings a clear DL boost."""
        import numpy as np

        points = longterm.throughput_vs_hs5g_fraction(dataset, Operator.TMOBILE, "downlink")
        high = [t for f, t in points if f > 0.6]
        low = [t for f, t in points if f < 0.2]
        if len(high) < 8 or len(low) < 8:
            pytest.skip("too few tests per group at this campaign scale")
        assert np.mean(high) > np.mean(low) * 0.8


class TestTable3:
    def test_reference_constants_verbatim(self):
        assert OOKLA_Q3_2022[Operator.TMOBILE].downlink_mbps == 116.14
        assert OOKLA_Q3_2022[Operator.VERIZON].rtt_ms == 59.0
        assert PAPER_DRIVE_MEDIANS[Operator.ATT].downlink_mbps == 48.40

    def test_rows_for_all_operators(self, dataset):
        rows = ookla.ookla_comparison(dataset)
        assert [r.operator for r in rows] == list(Operator)

    def test_driving_dl_below_ookla_static(self, dataset):
        """Table 3's headline: driving DL medians are well below Ookla's
        static medians."""
        for row in ookla.ookla_comparison(dataset):
            assert row.downlink_deficit < 1.0

    def test_values_positive(self, dataset):
        for row in ookla.ookla_comparison(dataset):
            assert row.our_downlink_mbps > 0
            assert row.our_uplink_mbps > 0
            assert row.our_rtt_ms > 0
