"""LinkSchedule: point queries and transfer integration."""

import math

import numpy as np
import pytest

from repro.apps.schedule import LinkSchedule
from repro.radio.technology import HIGH_THROUGHPUT_TECHS, RadioTechnology


def make_schedule(ul=(10.0,) * 10, dl=(50.0,) * 10, rtt=(40.0,) * 10,
                  techs=None, interruptions=(), t0=0.0, tick=0.5):
    n = len(ul)
    techs = techs or (RadioTechnology.LTE_A,) * n
    return LinkSchedule(
        times_s=np.asarray([t0 + i * tick for i in range(n)]),
        tick_s=tick,
        ul_mbps=np.asarray(ul),
        dl_mbps=np.asarray(dl),
        rtt_ms=np.asarray(rtt),
        techs=tuple(techs),
        interruptions=tuple(interruptions),
    )


class TestValidation:
    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            make_schedule(ul=(1.0, 2.0), dl=(1.0,) * 10)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            make_schedule(ul=(), dl=(), rtt=(), techs=())


class TestPointQueries:
    def test_rates_at_times(self):
        s = make_schedule(ul=tuple(float(i) for i in range(1, 11)))
        assert s.ul_rate_at(0.0) == 1.0
        assert s.ul_rate_at(0.6) == 2.0
        assert s.ul_rate_at(4.9) == 10.0

    def test_clamping_outside_window(self):
        s = make_schedule()
        assert s.ul_rate_at(-5.0) == 10.0
        assert s.dl_rate_at(100.0) == 50.0

    def test_interruption_zeroes_rate(self):
        s = make_schedule(interruptions=((1.0, 0.3),))
        assert s.ul_rate_at(1.1) == 0.0
        assert s.ul_rate_at(1.4) == 10.0

    def test_duration(self):
        assert make_schedule().duration_s == pytest.approx(5.0)

    def test_tech_at(self):
        techs = (RadioTechnology.LTE,) * 5 + (RadioTechnology.NR_MID,) * 5
        s = make_schedule(techs=techs)
        assert s.tech_at(0.1) is RadioTechnology.LTE
        assert s.tech_at(3.0) is RadioTechnology.NR_MID


class TestTransfer:
    def test_constant_rate(self):
        s = make_schedule(ul=(8.0,) * 10)
        # 4 megabits at 8 Mbps = 0.5 s.
        assert s.transfer_time_s(0.0, 4.0, "uplink") == pytest.approx(0.5)

    def test_zero_size(self):
        assert make_schedule().transfer_time_s(0.0, 0.0, "uplink") == 0.0

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            make_schedule().transfer_time_s(0.0, -1.0, "uplink")

    def test_spans_rate_change(self):
        s = make_schedule(dl=(10.0,) * 2 + (40.0,) * 8)
        # 0.5 s tick: first 1 s at 10 Mbps moves 10 Mbit; next 10 Mbit at 40
        # Mbps takes 0.25 s.
        assert s.transfer_time_s(0.0, 20.0, "downlink") == pytest.approx(1.25)

    def test_interruption_stalls_transfer(self):
        base = make_schedule().transfer_time_s(0.0, 4.0, "uplink")
        stalled = make_schedule(interruptions=((0.0, 0.2),)).transfer_time_s(0.0, 4.0, "uplink")
        assert stalled == pytest.approx(base + 0.2, abs=0.01)

    def test_incomplete_transfer_is_inf(self):
        s = make_schedule(ul=(1.0,) * 10)  # 5 s × 1 Mbps = 5 Mbit max
        assert math.isinf(s.transfer_time_s(0.0, 100.0, "uplink"))

    def test_mid_window_start(self):
        s = make_schedule(ul=(8.0,) * 10)
        assert s.transfer_time_s(2.0, 4.0, "uplink") == pytest.approx(0.5)


class TestAggregates:
    def test_fraction_on(self):
        techs = (RadioTechnology.NR_MID,) * 3 + (RadioTechnology.LTE,) * 7
        s = make_schedule(techs=techs)
        assert s.fraction_on(HIGH_THROUGHPUT_TECHS) == pytest.approx(0.3)

    def test_handover_count(self):
        s = make_schedule(interruptions=((1.0, 0.1), (2.0, 0.1)))
        assert s.handover_count() == 2
