"""The 8-day trip timeline."""

from datetime import datetime, timedelta

import pytest

from repro.errors import ConfigurationError
from repro.geo.trip import (
    PAPER_TRIP_START_UTC,
    TripTimeline,
    build_paper_timeline,
    expected_drive_days,
)


@pytest.fixture(scope="module")
def timeline():
    return build_paper_timeline()


class TestTimeline:
    def test_trip_start_anchor(self, timeline):
        assert timeline.wall_clock_utc(0.0) == PAPER_TRIP_START_UTC
        assert PAPER_TRIP_START_UTC == datetime(2022, 8, 8, 15, 0, 0)

    def test_first_day_is_linear(self, timeline):
        one_hour = timeline.wall_clock_utc(3600.0)
        assert one_hour == PAPER_TRIP_START_UTC + timedelta(hours=1)

    def test_overnight_gap_inserted(self, timeline):
        end_of_day1 = timeline.wall_clock_utc(timeline.drive_seconds_per_day - 1)
        start_of_day2 = timeline.wall_clock_utc(timeline.drive_seconds_per_day + 1)
        gap = (start_of_day2 - end_of_day1).total_seconds()
        assert gap == pytest.approx(timeline.overnight_seconds + 2, abs=1.0)

    def test_day_numbering(self, timeline):
        assert timeline.day_of(0.0) == 1
        assert timeline.day_of(timeline.drive_seconds_per_day - 1) == 1
        assert timeline.day_of(timeline.drive_seconds_per_day) == 2

    def test_wall_clock_monotone(self, timeline):
        instants = [timeline.wall_clock_utc(s) for s in range(0, 200_000, 5_000)]
        assert instants == sorted(instants)

    def test_inverse_mapping_round_trip(self, timeline):
        for campaign_s in (0.0, 1800.0, 40_000.0, 100_000.0):
            wall = timeline.wall_clock_utc(campaign_s)
            assert timeline.campaign_seconds(wall) == pytest.approx(campaign_s, abs=1.0)

    def test_overnight_instants_map_to_stop(self, timeline):
        overnight = timeline.wall_clock_utc(timeline.drive_seconds_per_day - 1) + timedelta(hours=3)
        assert timeline.campaign_seconds(overnight) == pytest.approx(
            timeline.drive_seconds_per_day, abs=2.0
        )

    def test_negative_time_rejected(self, timeline):
        with pytest.raises(ConfigurationError):
            timeline.day_of(-1.0)
        with pytest.raises(ConfigurationError):
            timeline.campaign_seconds(PAPER_TRIP_START_UTC - timedelta(hours=1))

    def test_invalid_durations_rejected(self):
        with pytest.raises(ConfigurationError):
            TripTimeline(PAPER_TRIP_START_UTC, 0.0, 3600.0)


class TestPaperSchedule:
    def test_route_fits_in_about_eight_days(self, route):
        """5711 km at mixed speeds → the paper's 8-day schedule."""
        days = expected_drive_days(route)
        assert 5 <= days <= 9

    def test_exported_logs_span_calendar_days(self, route):
        from repro.campaign.runner import CampaignConfig, DriveCampaign
        from repro.xcal.export import export_logs
        from repro.sync.matcher import match_logs

        campaign = DriveCampaign(
            CampaignConfig(seed=4, scale=0.003, include_apps=False, include_static=False)
        )
        ds = campaign.run()
        drms, logs = export_logs(ds, campaign.route, timeline=build_paper_timeline())
        days = {d.start_local.date() for d in drms}
        assert len(days) >= 4  # the trip crosses multiple calendar days
        # Matching still succeeds across the day boundaries.
        assert len(match_logs(drms, logs)) == len(logs)
