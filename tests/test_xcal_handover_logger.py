"""The passive handover-logger component."""

import numpy as np
import pytest

from repro.radio.deployment import DeploymentModel
from repro.radio.operators import Operator
from repro.xcal.handover_logger import run_handover_logger


@pytest.fixture(scope="module")
def traces(route):
    out = {}
    for i, op in enumerate(Operator):
        deployment = DeploymentModel.build(op, route, np.random.default_rng(31 + i))
        out[op] = run_handover_logger(op, deployment, np.random.default_rng(41 + i))
    return out


class TestHandoverLogger:
    def test_segments_tile_route(self, traces, route):
        for trace in traces.values():
            assert trace.total_length_m == pytest.approx(route.total_length_m, rel=0.01)

    def test_macro_handover_counts_match_table1(self, traces):
        expected = {Operator.VERIZON: 2657, Operator.TMOBILE: 4119, Operator.ATT: 2494}
        for op, target in expected.items():
            assert target * 0.7 < traces[op].macro_handovers < target * 1.3

    def test_att_logger_saw_essentially_no_5g(self, traces):
        # Fig. 1d: LTE/LTE-A along the whole route.  A sub-percent residue
        # of city mmWave survives (the same idle-mmWave pockets behind
        # Fig. 8's few AT&T mmWave RTT samples).
        trace = traces[Operator.ATT]
        share_5g = sum(s.length_m for s in trace.segments if s.tech.is_5g)
        assert share_5g / trace.total_length_m < 0.01

    def test_macro_cells_counted(self, traces):
        for trace in traces.values():
            assert trace.macro_cells > 1000

    def test_keepalive_volume_is_tiny(self, traces):
        """The point of the 38-B/200 ms keep-alive: negligible traffic."""
        volume = traces[Operator.VERIZON].keepalive_bytes()
        # The whole 8-day trip's keep-alive is tens of MB — versus the
        # campaign's hundreds of GB of test traffic.
        assert volume < 100e6

    def test_segments_ordered(self, traces):
        segs = traces[Operator.TMOBILE].segments
        starts = [s.start_m for s in segs]
        assert starts == sorted(starts)
