"""Fig. 11 — handover frequency and duration.

Paper anchors: median (75th pct) HOs/mile 3(6)/2(5)/2(5) DL and 2(5)/2(6)/1(3)
UL for V/T/A, with 20+/mile extremes; median (75th) durations
53(73)/76(107)/58(74) ms DL and 49(63)/75(101)/57(73) ms UL.
"""

from repro.analysis.handovers import handover_durations, handovers_per_mile
from repro.radio.operators import Operator
from repro.reporting.tables import render_table

PAPER_RATE_DL = {Operator.VERIZON: 3.0, Operator.TMOBILE: 2.0, Operator.ATT: 2.0}
PAPER_DUR_DL = {Operator.VERIZON: 53.0, Operator.TMOBILE: 76.0, Operator.ATT: 58.0}
PAPER_DUR_UL = {Operator.VERIZON: 49.0, Operator.TMOBILE: 75.0, Operator.ATT: 57.0}


def _compute(dataset):
    return {
        (op, d): (
            handovers_per_mile(dataset, op, d),
            handover_durations(dataset, op, d),
        )
        for op in Operator
        for d in ("downlink", "uplink")
    }


def test_fig11_handover_statistics(benchmark, dataset, report):
    results = benchmark.pedantic(_compute, args=(dataset,), rounds=1, iterations=1)

    rows = []
    for (op, d), (rate, dur) in results.items():
        paper_rate = PAPER_RATE_DL[op] if d == "downlink" else None
        paper_dur = (PAPER_DUR_DL if d == "downlink" else PAPER_DUR_UL)[op]
        rows.append([
            f"{op.code} {d[:2].upper()}",
            f"{rate.median:.1f}", f"{rate.quantile(0.75):.1f}", f"{rate.maximum:.0f}",
            f"{paper_rate:.0f}" if paper_rate else "1-2",
            f"{dur.median:.0f}", f"{dur.quantile(0.75):.0f}", f"{paper_dur:.0f}",
        ])
    report(
        "fig11_handover_stats",
        render_table(
            ["op/dir", "HO/mi med", "p75", "max", "paper med",
             "dur med (ms)", "dur p75", "paper med"],
            rows,
            title="Fig. 11: handover rates and durations",
        ),
    )

    for (op, d), (rate, dur) in results.items():
        # Fig. 11a: low typical rates...
        assert rate.median <= 6.0, (op, d)
        # Fig. 11b: fast handovers, near the paper's medians.
        paper = (PAPER_DUR_DL if d == "downlink" else PAPER_DUR_UL)[op]
        assert paper * 0.6 < dur.median < paper * 1.7, (op, d)
    # ...with heavy extremes somewhere (paper: 20+ per mile).
    assert max(rate.maximum for rate, _ in results.values()) > 8.0
    # T-Mobile's handovers take the longest (Fig. 11b).
    assert (
        results[(Operator.TMOBILE, "downlink")][1].median
        > results[(Operator.VERIZON, "downlink")][1].median
    )
