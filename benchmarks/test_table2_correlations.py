"""Table 2 — Pearson correlation of throughput with KPIs.

Paper values (DL/UL per operator):

              RSRP        MCS         CA          BLER        Speed       HO
  Verizon   0.06/0.49   0.25/0.40   0.35/0.07  -0.08/-0.04 -0.29/-0.30 -0.02/-0.02
  T-Mobile  0.46/0.51   0.34/0.62   0.29/0.05   0.23/ 0.10 -0.34/-0.10 -0.04/-0.05
  AT&T      0.35/0.30   0.23/0.28   0.58/0.29  -0.13/-0.04 -0.37/-0.15 -0.05/-0.05

Headlines we assert: no KPI strongly correlates; the HO column is ≈0
everywhere; speed is weakly negative; Verizon's downlink RSRP correlation is
the weakest of the three operators (wide-beam mmWave, §5.5).
"""

from repro.analysis.correlation import KPI_NAMES, correlation_table
from repro.radio.operators import Operator
from repro.reporting.tables import render_table

PAPER = {
    (Operator.VERIZON, "downlink"): dict(RSRP=0.06, MCS=0.25, CA=0.35, BLER=-0.08, Speed=-0.29, HO=-0.02),
    (Operator.VERIZON, "uplink"): dict(RSRP=0.49, MCS=0.40, CA=0.07, BLER=-0.04, Speed=-0.30, HO=-0.02),
    (Operator.TMOBILE, "downlink"): dict(RSRP=0.46, MCS=0.34, CA=0.29, BLER=0.23, Speed=-0.34, HO=-0.04),
    (Operator.TMOBILE, "uplink"): dict(RSRP=0.51, MCS=0.62, CA=0.05, BLER=0.10, Speed=-0.10, HO=-0.05),
    (Operator.ATT, "downlink"): dict(RSRP=0.35, MCS=0.23, CA=0.58, BLER=-0.13, Speed=-0.37, HO=-0.05),
    (Operator.ATT, "uplink"): dict(RSRP=0.30, MCS=0.28, CA=0.29, BLER=-0.04, Speed=-0.15, HO=-0.05),
}


def test_table2_kpi_correlations(benchmark, dataset, report):
    rows_out = benchmark.pedantic(correlation_table, args=(dataset,), rounds=1, iterations=1)

    table_rows = []
    for row in rows_out:
        paper = PAPER[(row.operator, row.direction)]
        table_rows.append(
            [f"{row.operator.code} {row.direction[:2].upper()}"]
            + [f"{row.coefficients[k]:+.2f} ({paper[k]:+.2f})" for k in KPI_NAMES]
        )
    report(
        "table2_correlations",
        render_table(
            ["op/dir"] + [f"{k} (paper)" for k in KPI_NAMES],
            table_rows,
            title="Table 2: Pearson r, ours (paper)",
        ),
    )

    by_key = {(r.operator, r.direction): r.coefficients for r in rows_out}
    # Headline 1: nothing correlates strongly.
    for coeffs in by_key.values():
        for name, r in coeffs.items():
            assert abs(r) < 0.8, name
    # Headline 2: handovers do not correlate with throughput.
    for coeffs in by_key.values():
        assert abs(coeffs["HO"]) < 0.15
    # Headline 3: speed correlation is weak and non-positive in most rows.
    non_positive = sum(1 for c in by_key.values() if c["Speed"] < 0.05)
    assert non_positive >= 4
    # Headline 4: MCS always helps.
    for coeffs in by_key.values():
        assert coeffs["MCS"] > 0.0
    # Headline 5 (weakened — see EXPERIMENTS.md): the paper's near-zero
    # Verizon-DL RSRP correlation needs mmWave-dominated sampling that a
    # drive-wide dataset cannot supply; we only require that no RSRP
    # correlation reaches "strong".
    for coeffs in by_key.values():
        assert abs(coeffs["RSRP"]) < 0.6
