"""Ablation benchmarks for the design choices DESIGN.md calls out.

1. Active vs passive coverage measurement — the cost of passive probing
   (the paper's [C3] methodology lesson).
2. Edge vs cloud serving — throughput/RTT/QoE deltas (§5.2, §7).
3. Frame compression on/off for AR and CAV (§7.1).
4. Single-flow CUBIC vs the idealised link capacity — why medians sit far
   below peak rates (§5's single-connection methodology).
5. Multi-operator aggregation upper bound — the paper's recommendation #2.
"""

import numpy as np

from repro.analysis import coverage
from repro.analysis.apps import offload_app_report
from repro.analysis.opdiversity import multi_operator_gain
from repro.campaign.tests import TestType
from repro.net.servers import ServerKind
from repro.net.tcp import CubicFlow
from repro.radio.operators import Operator
from repro.reporting.tables import render_table


def test_ablation_passive_vs_active_coverage(benchmark, dataset, report):
    """How much 5G coverage does a passive probe miss, per operator?"""

    def _compute():
        return {
            op: (
                coverage.passive_coverage_shares(dataset, op).share_5g,
                coverage.active_coverage_shares(dataset, op).share_5g,
            )
            for op in Operator
        }

    result = benchmark.pedantic(_compute, rounds=1, iterations=1)
    rows = [
        [op.label, f"{100 * p:.1f}%", f"{100 * a:.1f}%", f"{100 * (a - p):.1f} pp"]
        for op, (p, a) in result.items()
    ]
    report(
        "ablation_passive_vs_active",
        render_table(
            ["operator", "passive 5G", "active 5G", "missed"],
            rows, title="Ablation 1: coverage missed by passive probing",
        ),
    )
    for p, a in result.values():
        assert a >= p


def test_ablation_edge_vs_cloud(benchmark, dataset, report):
    """Verizon's Wavelength edge vs EC2 cloud across metrics."""

    def _compute():
        rtt_edge = dataset.rtt_values(operator=Operator.VERIZON, static=False, server_kind=ServerKind.EDGE)
        rtt_cloud = dataset.rtt_values(operator=Operator.VERIZON, static=False, server_kind=ServerKind.CLOUD)
        video_edge = [r.qoe for r in dataset.video_runs if r.operator is Operator.VERIZON and r.server_kind is ServerKind.EDGE and not r.static]
        video_cloud = [r.qoe for r in dataset.video_runs if r.operator is Operator.VERIZON and r.server_kind is ServerKind.CLOUD and not r.static]
        return rtt_edge, rtt_cloud, video_edge, video_cloud

    rtt_edge, rtt_cloud, video_edge, video_cloud = benchmark.pedantic(_compute, rounds=1, iterations=1)
    rows = [
        ["RTT median (ms)",
         f"{np.median(rtt_edge):.1f}" if len(rtt_edge) else "-",
         f"{np.median(rtt_cloud):.1f}" if len(rtt_cloud) else "-"],
        ["video QoE median",
         f"{np.median(video_edge):.1f}" if video_edge else "-",
         f"{np.median(video_cloud):.1f}" if video_cloud else "-"],
    ]
    report(
        "ablation_edge_vs_cloud",
        render_table(["metric", "edge", "cloud"], rows,
                     title="Ablation 2: Verizon edge vs cloud serving"),
    )
    if len(rtt_edge) >= 20 and len(rtt_cloud) >= 20:
        assert np.median(rtt_edge) < np.median(rtt_cloud)


def test_ablation_compression(benchmark, dataset, report):
    """Frame compression's E2E effect for both offloading apps."""

    def _compute():
        out = {}
        for app in (TestType.AR, TestType.CAV):
            r = offload_app_report(dataset, Operator.VERIZON, app)
            if True in r.e2e_cdf and False in r.e2e_cdf:
                out[app] = (r.e2e_cdf[False].median, r.e2e_cdf[True].median)
        return out

    result = benchmark.pedantic(_compute, rounds=1, iterations=1)
    rows = [
        [app.value, f"{raw:.0f}", f"{comp:.0f}", f"{raw / comp:.1f}x"]
        for app, (raw, comp) in result.items()
    ]
    report(
        "ablation_compression",
        render_table(["app", "raw E2E med (ms)", "compressed", "speedup"],
                     rows, title="Ablation 3: frame compression (paper: CAV ~8x)"),
    )
    for raw, comp in result.values():
        assert comp < raw


def test_ablation_tcp_vs_ideal_link(benchmark, report):
    """How much of the link does one CUBIC flow leave on the table?"""

    def _compute():
        rng = np.random.default_rng(0)
        # A fluctuating link: alternating good/bad 10 s phases.
        capacities = []
        for phase in range(12):
            level = 150.0 if phase % 2 == 0 else 8.0
            capacities += [level] * 20
        flow = CubicFlow(np.random.default_rng(1))
        achieved = [
            flow.advance(c, rtt_ms=80.0, dt_s=0.5, bler=0.05) for c in capacities
        ]
        return float(np.mean(achieved)), float(np.mean(capacities))

    achieved, ideal = benchmark.pedantic(_compute, rounds=1, iterations=1)
    report(
        "ablation_tcp_vs_ideal",
        render_table(
            ["mean goodput (Mbps)", "mean capacity (Mbps)", "efficiency"],
            [[f"{achieved:.1f}", f"{ideal:.1f}", f"{100 * achieved / ideal:.0f}%"]],
            title="Ablation 4: single CUBIC flow vs ideal link",
        ),
    )
    assert achieved < ideal
    assert achieved / ideal > 0.2  # not absurdly inefficient either


def test_ablation_multi_operator(benchmark, dataset, report):
    """Upper bound of aggregating all three operators (recommendation #2)."""

    def _compute():
        return {
            d: multi_operator_gain(dataset, d) for d in ("downlink", "uplink")
        }

    gains = benchmark.pedantic(_compute, rounds=1, iterations=1)
    rows = [
        [d] + [f"{gains[d][op]:.2f}x" for op in Operator]
        for d in ("downlink", "uplink")
    ]
    report(
        "ablation_multi_operator",
        render_table(
            ["direction"] + [op.label for op in Operator], rows,
            title="Ablation 5: median gain of best-of-3 operators vs single",
        ),
    )
    for by_op in gains.values():
        assert all(g >= 1.0 for g in by_op.values())
        assert max(by_op.values()) > 1.2


def test_ablation_no_uplink_demotion(benchmark, report):
    """What if operators granted high-speed 5G symmetrically?

    Re-runs a small campaign with identity uplink-demotion rules: the
    Fig. 2b DL/UL high-speed-5G asymmetry should flatten — showing the
    asymmetry is a *policy* effect, not a deployment one.
    """
    from repro.campaign.runner import CampaignConfig, DriveCampaign
    from repro.policy.profiles import DEFAULT_POLICY_PROFILES, PolicyProfile
    from repro.radio.technology import RadioTechnology

    def _run(with_demotion: bool):
        overrides = None
        if not with_demotion:
            overrides = {}
            for op, base in DEFAULT_POLICY_PROFILES.items():
                overrides[op] = PolicyProfile(
                    operator=op,
                    ul_demotion={t: {t: 1.0} for t in RadioTechnology},
                    idle_5g_upgrade_prob=base.idle_5g_upgrade_prob,
                    idle_mmwave_city_prob=base.idle_mmwave_city_prob,
                )
        campaign = DriveCampaign(
            CampaignConfig(seed=7, scale=0.03, include_apps=False, include_static=False),
            policy_profiles=overrides,
        )
        ds = campaign.run()
        gaps = {}
        for op in Operator:
            by_dir = coverage.coverage_by_direction(ds, op)
            gaps[op] = (
                by_dir["downlink"].share_high_speed_5g
                - by_dir["uplink"].share_high_speed_5g
            )
        return gaps

    def _compute():
        return _run(with_demotion=True), _run(with_demotion=False)

    with_dem, without_dem = benchmark.pedantic(_compute, rounds=1, iterations=1)
    rows = [
        [op.label, f"{100 * with_dem[op]:.1f} pp", f"{100 * without_dem[op]:.1f} pp"]
        for op in Operator
    ]
    report(
        "ablation_no_ul_demotion",
        render_table(
            ["operator", "DL-UL HS-5G gap (default)", "gap (no demotion)"],
            rows,
            title="Ablation 6: removing uplink demotion flattens Fig. 2b",
        ),
    )
    # Aggregated across operators, removing demotion shrinks the asymmetry.
    assert sum(without_dem.values()) < sum(with_dem.values())
