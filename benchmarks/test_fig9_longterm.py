"""Fig. 9 — per-test means and within-test fluctuation.

Paper anchors: median per-test DL throughput 30/37/48 Mbps (V/T/A), UL
13/14/10 Mbps, RTT 64/82/81 ms; within-test stddev 70/48/52% (DL), 45/52/44%
(UL), 18/29/19% (RTT).
"""

from repro.analysis.longterm import per_test_rtt_stats, per_test_throughput_stats
from repro.radio.operators import Operator
from repro.reporting.tables import render_table

PAPER_DL = {Operator.VERIZON: 30.0, Operator.TMOBILE: 37.0, Operator.ATT: 48.0}
PAPER_UL = {Operator.VERIZON: 13.0, Operator.TMOBILE: 14.0, Operator.ATT: 10.0}
PAPER_RTT = {Operator.VERIZON: 64.0, Operator.TMOBILE: 82.0, Operator.ATT: 81.0}


def _compute(dataset):
    return {
        op: (
            per_test_throughput_stats(dataset, op, "downlink"),
            per_test_throughput_stats(dataset, op, "uplink"),
            per_test_rtt_stats(dataset, op),
        )
        for op in Operator
    }


def test_fig9_per_test_statistics(benchmark, dataset, report):
    results = benchmark.pedantic(_compute, args=(dataset,), rounds=1, iterations=1)

    rows = []
    for op, (dl, ul, rtt) in results.items():
        rows.append([
            op.label,
            f"{dl.median_mean:.1f}", f"{PAPER_DL[op]:.0f}",
            f"{ul.median_mean:.1f}", f"{PAPER_UL[op]:.0f}",
            f"{rtt.median_mean:.0f}", f"{PAPER_RTT[op]:.0f}",
            f"{dl.median_stddev_pct:.0f}%", "48-70%",
            f"{rtt.median_stddev_pct:.0f}%", "18-29%",
        ])
    report(
        "fig9_longterm",
        render_table(
            ["operator", "DL med", "paper", "UL med", "paper", "RTT med", "paper",
             "DL std%", "paper", "RTT std%", "paper"],
            rows,
            title="Fig. 9: per-test means (Mbps / ms) and within-test stddev",
        ),
    )

    for op, (dl, ul, rtt) in results.items():
        # Medians within a factor ~3 of the paper's.
        assert PAPER_DL[op] / 3.5 < dl.median_mean < PAPER_DL[op] * 3.5, op
        assert PAPER_UL[op] / 3.5 < ul.median_mean < PAPER_UL[op] * 3.5, op
        assert PAPER_RTT[op] * 0.6 < rtt.median_mean < PAPER_RTT[op] * 1.5, op
        # Fluctuation ordering: throughput varies far more than RTT.
        assert dl.median_stddev_pct > rtt.median_stddev_pct, op
        assert dl.median_stddev_pct > 25.0, op
