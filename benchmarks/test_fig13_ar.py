"""Fig. 13 — the AR app over Verizon.

Paper anchors: best static E2E 68 ms / 12.5 FPS / mAP 36.5; driving median
E2E 214 ms with compression (~3× static), offload rate 4.35 FPS, mAP 30.1;
compression reduces E2E substantially; high-speed 5G and edge serving improve
the worst case; no handover-QoE correlation.
"""

from repro.analysis.apps import offload_app_report
from repro.campaign.tests import TestType
from repro.radio.operators import Operator
from repro.reporting.tables import render_table


def _compute(dataset):
    return offload_app_report(dataset, Operator.VERIZON, TestType.AR)


def test_fig13_ar_verizon(benchmark, dataset, report):
    r = benchmark.pedantic(_compute, args=(dataset,), rounds=1, iterations=1)

    rows = []
    for compression in (False, True):
        cdf = r.e2e_cdf.get(compression)
        fps = r.fps_cdf.get(compression)
        rows.append([
            "with compression" if compression else "no compression",
            f"{cdf.median:.0f}" if cdf else "-",
            "214" if compression else "(higher)",
            f"{r.best_static_e2e_ms.get(compression, float('nan')):.0f}",
            "68" if compression else "-",
            f"{fps.median:.1f}" if fps else "-",
            "4.35" if compression else "-",
            f"{r.best_static_fps.get(compression, float('nan')):.1f}",
            "12.5" if compression else "-",
        ])
    block = render_table(
        ["config", "drv E2E med (ms)", "paper", "best static E2E", "paper",
         "drv FPS med", "paper", "static FPS", "paper"],
        rows, title="Fig. 13: AR app (Verizon)",
    )
    block += f"\nhandover-mAP Pearson r: {r.handover_correlation:+.2f} (paper: none)"
    report("fig13_ar", block)

    # Driving E2E well above best static (paper: ~3×).
    if True in r.e2e_cdf and True in r.best_static_e2e_ms:
        ratio = r.e2e_cdf[True].median / r.best_static_e2e_ms[True]
        assert ratio > 1.5
    # Best static anchors: E2E in the tens of ms, FPS ~10-16, mAP 33-38.5.
    if True in r.best_static_e2e_ms:
        assert 40.0 < r.best_static_e2e_ms[True] < 110.0
        assert 8.0 < r.best_static_fps[True] < 18.0
        assert 33.0 < r.best_static_map[True] <= 38.45
    # Compression shortens driving E2E.
    if True in r.e2e_cdf and False in r.e2e_cdf:
        assert r.e2e_cdf[True].median < r.e2e_cdf[False].median
    # No strong handover correlation.
    assert abs(r.handover_correlation) < 0.6
