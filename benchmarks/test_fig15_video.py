"""Fig. 15 — 360° video streaming over Verizon.

Paper anchors: driving median QoE −53.75 vs best static 96.29 (theoretical
best 100); ~40% of driving runs have negative QoE; rebuffering can reach 87%
of playback; high-speed 5G and edge serving lift QoE; no handover
correlation.
"""

from repro.analysis.apps import video_app_report
from repro.radio.operators import Operator
from repro.reporting.tables import render_table


def _compute(dataset):
    return video_app_report(dataset, Operator.VERIZON)


def test_fig15_video_verizon(benchmark, dataset, report):
    r = benchmark.pedantic(_compute, args=(dataset,), rounds=1, iterations=1)

    rows = [[
        f"{r.qoe_cdf.median:.1f}", "-53.75",
        f"{r.best_static_qoe:.1f}" if r.best_static_qoe is not None else "-", "96.29",
        f"{100 * r.negative_qoe_fraction:.0f}%", "~40%",
        f"{100 * r.rebuffer_cdf.maximum:.0f}%", "up to 87%",
        f"{r.bitrate_cdf.median:.1f}",
    ]]
    block = render_table(
        ["QoE med", "paper", "best static QoE", "paper",
         "neg-QoE runs", "paper", "max rebuffer", "paper", "bitrate med"],
        rows, title="Fig. 15: 360° video (Verizon)",
    )
    block += f"\nhandover-QoE Pearson r: {r.handover_correlation:+.2f} (paper: none)"
    report("fig15_video", block)

    # Driving QoE collapses relative to static.
    if r.best_static_qoe is not None:
        assert r.best_static_qoe > 70.0
        assert r.qoe_cdf.median < r.best_static_qoe * 0.75
    # A substantial fraction of negative-QoE runs.
    assert r.negative_qoe_fraction > 0.1
    # Rebuffering reaches deep ratios in the worst runs.
    assert r.rebuffer_cdf.maximum > 0.3
    assert abs(r.handover_correlation) < 0.7
