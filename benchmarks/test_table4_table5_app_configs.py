"""Tables 4 and 5 — AR/CAV configurations and the latency→mAP model.

Table 4 is a configuration table; we assert our app configs carry it
verbatim.  Table 5 is the offline accuracy study; we regenerate the mAP
column over the full latency range and check it against the paper's rows.
"""

from repro.apps.accuracy import LOCAL_TRACKING_TABLE, map_for_latency
from repro.apps.offload import AR_CONFIG, CAV_CONFIG
from repro.reporting.tables import render_table

#: Table 5 spot rows: (bin, mAP w/o compression, mAP w/ compression).
TABLE5_SPOT = [(0, 38.45, 38.45), (5, 32.20, 30.50), (10, 25.77, 24.35),
               (20, 17.52, 17.00), (29, 14.05, 13.70)]


def _regenerate_table5():
    return [
        (b, map_for_latency(b + 0.5, False), map_for_latency(b + 0.5, True))
        for b in range(30)
    ]


def test_table4_and_table5(benchmark, report):
    table = benchmark.pedantic(_regenerate_table5, rounds=1, iterations=1)

    rows4 = [
        ["FPS", AR_CONFIG.fps, CAV_CONFIG.fps],
        ["raw frame (KB)", AR_CONFIG.raw_frame_kb, CAV_CONFIG.raw_frame_kb],
        ["compressed frame (KB)", AR_CONFIG.compressed_frame_kb, CAV_CONFIG.compressed_frame_kb],
        ["compression time (ms)", AR_CONFIG.compress_ms, CAV_CONFIG.compress_ms],
        ["inference time (ms)", AR_CONFIG.inference_ms, CAV_CONFIG.inference_ms],
        ["decompression time (ms)", AR_CONFIG.decompress_ms, CAV_CONFIG.decompress_ms],
        ["run duration (s)", AR_CONFIG.duration_s, CAV_CONFIG.duration_s],
    ]
    block = render_table(["parameter", "AR", "CAV"], rows4, title="Table 4: app configurations")
    rows5 = [[f"{b}-{b + 1}", f"{wo:.2f}", f"{wc:.2f}"] for b, wo, wc in table[:10]]
    block += "\n\n" + render_table(
        ["E2E bin (frames)", "mAP w/o comp", "mAP w/ comp"], rows5,
        title="Table 5 (first 10 bins)",
    )
    report("table4_table5_app_configs", block)

    # Table 4 verbatim.
    assert (AR_CONFIG.fps, CAV_CONFIG.fps) == (30.0, 10.0)
    assert (AR_CONFIG.raw_frame_kb, CAV_CONFIG.raw_frame_kb) == (450.0, 2000.0)
    assert (AR_CONFIG.compressed_frame_kb, CAV_CONFIG.compressed_frame_kb) == (50.0, 38.0)
    assert (AR_CONFIG.compress_ms, CAV_CONFIG.compress_ms) == (6.3, 34.8)
    assert (AR_CONFIG.inference_ms, CAV_CONFIG.inference_ms) == (24.9, 44.0)
    assert (AR_CONFIG.decompress_ms, CAV_CONFIG.decompress_ms) == (1.0, 19.1)
    # Table 5 verbatim (all 30 bins) and spot values.
    assert len(LOCAL_TRACKING_TABLE) == 30
    for b, wo, wc in TABLE5_SPOT:
        assert table[b][1] == wo
        assert table[b][2] == wc
