"""Fig. 6 — operator diversity: pairwise concurrent throughput differences.

Paper anchors: large diversity in both directions (Fig. 6a); LT-LT dominates
the uplink bins and most downlink pairs (Fig. 6b); the HT-HT bin is tiny
(0.3%-10%); AT&T beats T-Mobile in ~80% of LT-LT downlink locations; an HT
operator does not always beat an LT one.
"""

from repro.analysis.opdiversity import OPERATOR_PAIRS, paired_throughput_differences
from repro.radio.operators import Operator
from repro.reporting.tables import render_table


def _compute(dataset):
    return {
        (a, b, d): paired_throughput_differences(dataset, a, b, d)
        for a, b in OPERATOR_PAIRS
        for d in ("downlink", "uplink")
    }


def test_fig6_operator_diversity(benchmark, dataset, report):
    results = benchmark.pedantic(_compute, args=(dataset,), rounds=1, iterations=1)

    rows = []
    for (a, b, d), pd in results.items():
        fr = pd.bin_fractions()
        rows.append([
            f"{a.code}-{b.code}", d,
            f"{pd.cdf.quantile(0.1):.1f}", f"{pd.cdf.median:.1f}", f"{pd.cdf.quantile(0.9):.1f}",
            f"{100 * pd.first_wins_fraction():.0f}%",
            f"{100 * fr['HT-HT']:.1f}%", f"{100 * fr['HT-LT']:.1f}%",
            f"{100 * fr['LT-HT']:.1f}%", f"{100 * fr['LT-LT']:.1f}%",
        ])
    report(
        "fig6_operator_diversity",
        render_table(
            ["pair", "dir", "p10 Δ", "med Δ", "p90 Δ", "first wins",
             "HT-HT", "HT-LT", "LT-HT", "LT-LT"],
            rows,
            title="Fig. 6: concurrent throughput differences (Mbps) and technology bins",
        ),
    )

    for (a, b, d), pd in results.items():
        # Fig. 6a: high diversity — a wide difference distribution spanning 0.
        assert pd.cdf.quantile(0.9) > 0.0 > pd.cdf.quantile(0.1), (a, b, d)
        # Fig. 6b: HT-HT is always a small bin.
        assert pd.bin_fractions()["HT-HT"] < 0.25, (a, b, d)
    # Uplink is dominated by LT-LT for every pair (§5.4).
    for a, b in OPERATOR_PAIRS:
        assert results[(a, b, "uplink")].bin_fractions()["LT-LT"] > 0.4
    # T-Mobile vs AT&T downlink LT-LT: AT&T at least holds its own (the
    # paper reports ~80% AT&T wins; our per-zone load variance keeps the
    # bin closer to even — see EXPERIMENTS.md), and the *overall* pair
    # median leans AT&T's way.
    ta = results[(Operator.TMOBILE, Operator.ATT, "downlink")]
    lt_lt = ta.bin_cdf("LT-LT")
    assert lt_lt.prob_below(0.0) > 0.42
    assert ta.cdf.median < 5.0
    # An LT operator sometimes beats an HT one (§5.4's surprise).
    vt = results[(Operator.VERIZON, Operator.TMOBILE, "downlink")]
    if "LT-HT" in {b for b in vt.bins}:
        lt_ht = vt.bin_cdf("LT-HT")
        assert lt_ht.prob_above(0.0) > 0.05
