"""Fig. 5 — throughput CDFs per timezone.

Paper anchors: throughput is clearly higher in the Pacific timezone for all
carriers (except AT&T DL, highest in the Eastern zone); the Mountain zone is
weak for everyone; higher coverage does not always mean higher performance
(Verizon is weakest in the east where its 5G coverage is highest).
"""

from repro.analysis.geodiversity import throughput_by_timezone
from repro.geo.timezones import Timezone
from repro.radio.operators import Operator
from repro.reporting.tables import render_table


def _compute(dataset):
    return {
        (op, d): throughput_by_timezone(dataset, op, d)
        for op in Operator
        for d in ("downlink", "uplink")
    }


def test_fig5_throughput_by_timezone(benchmark, dataset, report):
    results = benchmark.pedantic(_compute, args=(dataset,), rounds=1, iterations=1)

    blocks = []
    for direction in ("downlink", "uplink"):
        rows = []
        for op in Operator:
            by_tz = results[(op, direction)]
            rows.append(
                [op.label] + [
                    f"{by_tz[tz].median:.1f}" if tz in by_tz else "-"
                    for tz in Timezone
                ]
            )
        blocks.append(render_table(
            ["operator"] + [tz.label for tz in Timezone], rows,
            title=f"Fig. 5 ({direction}): median throughput (Mbps) per timezone",
        ))
    report("fig5_timezones", "\n\n".join(blocks))

    # Every operator/direction has CDFs in all four zones.
    for key, by_tz in results.items():
        assert len(by_tz) == 4, key
    # Performance diversity across zones exists in the downlink; uplink
    # differences are milder (UE-power-limited everywhere).
    for op in Operator:
        medians = [c.median for c in results[(op, "downlink")].values()]
        assert max(medians) > 1.25 * min(medians), op
        ul_medians = [c.median for c in results[(op, "uplink")].values()]
        assert max(ul_medians) > 1.05 * min(ul_medians), op
    # The Mountain zone is not AT&T's best DL zone (Fig. 2c: its 5G
    # deployment collapses there).
    att = results[(Operator.ATT, "downlink")]
    best = max(att, key=lambda tz: att[tz].median)
    assert best is not Timezone.MOUNTAIN
