"""Extension benchmarks: the paper's future-work directions, implemented.

1. **Multivariate KPI analysis** (§5.5: "requires a multivariate analysis,
   which is part of our future work") — standardised OLS of log-throughput
   on the Table 2 KPI vector.
2. **Multipath over multiple operators** (§8 recommendation #2) — the
   MPTCP-style schedulers quantified against each single operator.
3. **Policy inference** (§4.1's conjectures) — idle-upgrade and uplink
   demotion rates recovered from the dataset alone.
"""

from repro.analysis.multivariate import FEATURES, multivariate_table
from repro.analysis.recommendations import quantify_recommendations
from repro.net.multipath import MultipathScheduler, simulate_multipath
from repro.policy.inference import (
    estimate_idle_upgrade_rates,
    estimate_ul_demotion_rate,
)
from repro.geo.timezones import Timezone
from repro.radio.operators import Operator
from repro.reporting.tables import render_table


def test_extension_multivariate_kpi_analysis(benchmark, dataset, report):
    fits = benchmark.pedantic(multivariate_table, args=(dataset,), rounds=1, iterations=1)

    rows = []
    for fit in fits:
        rows.append(
            [f"{fit.operator.code} {fit.direction[:2].upper()}",
             f"{fit.r_squared:.2f}", fit.dominant_kpi]
            + [f"{fit.coefficients[k]:+.2f}" for k in FEATURES]
        )
    report(
        "extension_multivariate",
        render_table(
            ["op/dir", "R²", "dominant"] + list(FEATURES), rows,
            title="Extension: multivariate fit of log-throughput on KPIs",
        ),
    )

    for fit in fits:
        assert 0.0 <= fit.r_squared <= 1.0
        # Even jointly, the KPIs explain only part of the variance — the
        # paper's conclusion that throughput under driving resists simple
        # KPI explanations, now shown multivariately.
        assert fit.r_squared < 0.8
        assert fit.incremental_r2["HO"] < 0.05


def test_extension_multipath(benchmark, dataset, report):
    def _compute():
        return {
            (d, sched): simulate_multipath(dataset, d, sched)
            for d in ("downlink", "uplink")
            for sched in MultipathScheduler
        }

    results = benchmark.pedantic(_compute, rounds=1, iterations=1)

    rows = []
    for (d, sched), res in results.items():
        rows.append([
            d, sched.value,
            f"{res.median_mbps:.1f}",
            f"{100 * res.outage_fraction(5.0):.0f}%",
        ] + [f"{res.median_gain_over(op):.2f}x" for op in Operator])
    report(
        "extension_multipath",
        render_table(
            ["dir", "scheduler", "median Mbps", "<5 Mbps"]
            + [f"gain vs {op.code}" for op in Operator],
            rows,
            title="Extension: multi-operator multipath (recommendation #2)",
        ),
    )

    for d in ("downlink", "uplink"):
        agg = results[(d, MultipathScheduler.AGGREGATE)]
        best = results[(d, MultipathScheduler.BEST_PATH)]
        # Aggregation helps every single operator at the median.
        for op in Operator:
            assert agg.median_gain_over(op) > 1.0
        # And it shrinks the paper's sub-5 Mbps outage share.
        singles = [
            float((best.single_path[op] < 5.0).mean()) for op in Operator
        ]
        assert best.outage_fraction(5.0) <= min(singles)


def test_extension_policy_inference(benchmark, dataset, report):
    def _compute():
        idle = {op: estimate_idle_upgrade_rates(dataset, op) for op in Operator}
        demote = {op: estimate_ul_demotion_rate(dataset, op) for op in Operator}
        return idle, demote

    idle, demote = benchmark.pedantic(_compute, rounds=1, iterations=1)

    rows = []
    for op in Operator:
        est = idle[op]
        rows.append([
            op.label,
            f"{est.overall_rate:.2f}",
            *(f"{est.rate_by_timezone[tz]:.2f}" for tz in Timezone),
            f"{demote[op]:.2f}",
        ])
    report(
        "extension_policy_inference",
        render_table(
            ["operator", "idle 5G rate"] + [tz.label for tz in Timezone]
            + ["UL demotion"],
            rows,
            title="Extension: operator policies recovered from the dataset",
        ),
    )

    # AT&T's conservative idle policy is recoverable.
    assert idle[Operator.ATT].overall_rate < idle[Operator.TMOBILE].overall_rate
    # Everyone demotes some high-speed-5G uplink (Fig. 2b).
    for rate in demote.values():
        assert 0.0 <= rate <= 1.0


def test_extension_recommendations(benchmark, dataset, report):
    """§8's three recommendations quantified in one pass."""
    rec = benchmark.pedantic(
        quantify_recommendations, args=(dataset,), rounds=1, iterations=1
    )

    rows = [
        [f"compression ({g.app.value})", f"{g.speedup:.1f}x"]
        for g in rec.compression
    ]
    rows += [
        [f"multipath ({g.direction})",
         f"{g.median_gain:.1f}x, outage {100 * g.single_outage_fraction:.0f}%"
         f"→{100 * g.aggregate_outage_fraction:.0f}%"]
        for g in rec.multipath
    ]
    rows.append(["edge RTT reduction", f"{100 * rec.edge.rtt_reduction:.0f}%"])
    report(
        "extension_recommendations",
        render_table(["recommendation", "benefit"], rows,
                     title="Extension: §8 recommendations quantified"),
    )

    for g in rec.compression:
        assert g.speedup > 1.5
    for g in rec.multipath:
        assert g.median_gain > 1.0
        assert g.aggregate_outage_fraction <= g.single_outage_fraction
    assert rec.edge.rtt_reduction > 0.15
