"""Engine scaling — serial vs multi-worker generation of one campaign.

Times ``repro.engine`` generating the same scale-0.2 dataset serially and on
4 worker processes, verifies the two runs are byte-identical, and records the
speedup into ``benchmarks/_reports/engine_scaling.txt``.  The ≥2× speedup
assertion only applies on machines with at least 4 cores — on smaller hosts
(CI containers) the numbers are still recorded, honestly, without the gate.
"""

from __future__ import annotations

import hashlib
import os
import time

from repro.campaign.persistence import save_dataset
from repro.engine import EngineConfig, PlannerParams, run_engine
from repro.campaign.runner import CampaignConfig
from repro.reporting.tables import render_table

SCALE = 0.2
SEED = 42
WORKERS = 4


def _run(executor: str, workers: int, tmp_path):
    config = EngineConfig(
        campaign=CampaignConfig(
            seed=SEED, scale=SCALE, include_apps=False, include_static=False
        ),
        executor=executor,
        workers=workers,
        planner=PlannerParams(window_km=600.0),
    )
    started = time.perf_counter()
    dataset, engine_report = run_engine(config)
    wall = time.perf_counter() - started
    path = tmp_path / f"{executor}-{workers}.jsonl.gz"
    save_dataset(dataset, path)
    return wall, hashlib.sha256(path.read_bytes()).hexdigest(), engine_report


def test_engine_scaling(tmp_path, report, bench):
    cores = os.cpu_count() or 1
    serial_s, serial_hash, serial_rep = _run("serial", 1, tmp_path)
    parallel_s, parallel_hash, parallel_rep = _run("process", WORKERS, tmp_path)
    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")

    bench.record(
        "engine.scaling_serial", [serial_s],
        counters={"engine.windows": serial_rep.n_windows},
    )
    bench.record(
        "engine.scaling_parallel", [parallel_s],
        counters={
            "engine.workers": parallel_rep.workers,
            "engine.windows": parallel_rep.n_windows,
        },
    )

    rows = [
        ["serial", 1, f"{serial_s:.2f}", "1.00x", serial_hash[:16]],
        [
            parallel_rep.executor, parallel_rep.workers,
            f"{parallel_s:.2f}", f"{speedup:.2f}x", parallel_hash[:16],
        ],
    ]
    report(
        "engine_scaling",
        render_table(
            ["executor", "workers", "wall (s)", "speedup", "dataset sha256"],
            rows,
            title=(
                f"Engine scaling (scale={SCALE}, {serial_rep.n_windows} windows, "
                f"{cores} cores, utilisation "
                f"{parallel_rep.worker_utilisation():.2f})"
            ),
        ),
    )

    assert parallel_hash == serial_hash, "parallel dataset diverged from serial"
    if cores >= WORKERS and parallel_rep.executor == "process":
        assert speedup >= 2.0, (
            f"expected >=2x speedup on {cores} cores, measured {speedup:.2f}x"
        )
    # Wall times gate against the committed baseline when comparable.
    bench.gate("engine.scaling_serial")
    bench.gate("engine.scaling_parallel")
