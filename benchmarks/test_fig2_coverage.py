"""Fig. 2 — technology coverage as % of miles driven.

Paper anchors (Fig. 2a): T-Mobile 68% 5G (38% high-speed); Verizon and AT&T
~18-22% 5G; AT&T high-speed 5G ≈3%.  Fig. 2b: high-speed 5G higher in the
downlink.  Fig. 2c: Verizon stronger in the east, AT&T collapsed in
Mountain/Central, T-Mobile's Pacific midband.  Fig. 2d: Verizon's high-speed
5G falls from ~43% (0-20 mph) to ~13% (60+ mph).
"""

from repro.analysis import coverage
from repro.geo.timezones import Timezone
from repro.radio.operators import Operator
from repro.radio.technology import ALL_TECHNOLOGIES
from repro.reporting.tables import render_table
from repro.units import SPEED_BIN_LABELS

PAPER_5G_SHARE = {Operator.VERIZON: 0.20, Operator.TMOBILE: 0.68, Operator.ATT: 0.20}
PAPER_HS_SHARE = {Operator.VERIZON: 0.10, Operator.TMOBILE: 0.38, Operator.ATT: 0.03}


def _all_views(dataset):
    return {
        "overall": {op: coverage.active_coverage_shares(dataset, op) for op in Operator},
        "by_direction": {op: coverage.coverage_by_direction(dataset, op) for op in Operator},
        "by_timezone": {op: coverage.coverage_by_timezone(dataset, op) for op in Operator},
        "by_speed": {op: coverage.coverage_by_speed_bin(dataset, op) for op in Operator},
    }


def test_fig2_technology_coverage(benchmark, dataset, report):
    views = benchmark.pedantic(_all_views, args=(dataset,), rounds=1, iterations=1)

    # Fig. 2a table.
    rows = []
    for op, shares in views["overall"].items():
        row = [op.label]
        row += [f"{shares.percent(t):.1f}%" for t in ALL_TECHNOLOGIES]
        row += [f"{100 * shares.share_5g:.0f}%", f"{100 * PAPER_5G_SHARE[op]:.0f}%",
                f"{100 * shares.share_high_speed_5g:.0f}%", f"{100 * PAPER_HS_SHARE[op]:.0f}%"]
        rows.append(row)
    headers = ["operator"] + [t.label for t in ALL_TECHNOLOGIES] + [
        "5G", "paper 5G", "HS-5G", "paper HS-5G"
    ]
    block = render_table(headers, rows, title="Fig. 2a: coverage by technology (% of miles)")

    # Fig. 2b: DL vs UL high-speed 5G.
    rows_b = []
    for op, by_dir in views["by_direction"].items():
        rows_b.append([
            op.label,
            f"{100 * by_dir['downlink'].share_high_speed_5g:.1f}%",
            f"{100 * by_dir['uplink'].share_high_speed_5g:.1f}%",
        ])
    block += "\n\n" + render_table(
        ["operator", "HS-5G downlink", "HS-5G uplink"], rows_b,
        title="Fig. 2b: high-speed-5G share by traffic direction",
    )

    # Fig. 2c: 5G share per timezone.
    rows_c = []
    for op, by_tz in views["by_timezone"].items():
        rows_c.append(
            [op.label] + [
                f"{100 * by_tz[tz].share_5g:.0f}%" if tz in by_tz else "-"
                for tz in Timezone
            ]
        )
    block += "\n\n" + render_table(
        ["operator"] + [tz.label for tz in Timezone], rows_c,
        title="Fig. 2c: 5G share per timezone",
    )

    # Fig. 2d: high-speed 5G per speed bin.
    rows_d = []
    for op, by_bin in views["by_speed"].items():
        rows_d.append(
            [op.label] + [
                f"{100 * by_bin[b].share_high_speed_5g:.0f}%" if b in by_bin else "-"
                for b in SPEED_BIN_LABELS
            ]
        )
    block += "\n\n" + render_table(
        ["operator"] + list(SPEED_BIN_LABELS), rows_d,
        title="Fig. 2d: high-speed-5G share per speed bin (paper V: 43%→13%)",
    )
    report("fig2_coverage", block)

    # --- shape assertions --------------------------------------------------
    overall = views["overall"]
    assert overall[Operator.TMOBILE].share_5g > 0.5
    assert overall[Operator.VERIZON].share_5g < 0.35
    assert overall[Operator.ATT].share_5g < 0.35
    assert overall[Operator.ATT].share_high_speed_5g < 0.08
    assert overall[Operator.TMOBILE].share_high_speed_5g > 0.25
    # Fig. 2b aggregated: downlink shows more high-speed 5G.
    dl = sum(v["downlink"].share_high_speed_5g for v in views["by_direction"].values())
    ul = sum(v["uplink"].share_high_speed_5g for v in views["by_direction"].values())
    assert dl > ul
    # Fig. 2d: Verizon city vs highway high-speed share.
    v_bins = views["by_speed"][Operator.VERIZON]
    if "0-20 mph" in v_bins and "60+ mph" in v_bins:
        assert v_bins["0-20 mph"].share_high_speed_5g > v_bins["60+ mph"].share_high_speed_5g
