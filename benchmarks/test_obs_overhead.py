"""Observability overhead — disabled tracing must cost nothing measurable.

Two measurements, recorded through the ``repro.bench`` recorder:

* **null-span microbenchmark** — the disabled tracer's ``span()`` context
  is one shared no-op object; the instrumentation points sprinkled through
  the engine (a handful per shard) must be free when ``--trace`` is off;
* **engine wall time, traced vs untraced** — a full serial engine run with
  tracing enabled must stay within a bounded factor of the untraced run,
  and the *estimated* disabled-path overhead (spans-per-run × ns-per-span)
  must be far inside the untraced run's own noise.

The per-span budget is baseline-relative (``BENCH_baseline.json`` via the
``bench`` fixture) instead of an absolute machine-dependent threshold; the
traced/untraced factor and the spans-vanish-in-noise bound are
self-relative and assert unconditionally.  Numbers land in
``benchmarks/_reports/obs_overhead.txt`` and ``BENCH_benchmarks.json``.
"""

from __future__ import annotations

import time

from repro.bench import measure
from repro.campaign.runner import CampaignConfig
from repro.engine import EngineConfig, PlannerParams, run_engine
from repro.obs.trace import NULL_TRACER, iter_trace, reset_tracers
from repro.reporting.tables import render_table

#: Iterations for the null-span microbenchmark.
N_SPANS = 200_000
#: Engine repetitions per variant; best-of guards against scheduler noise.
REPS = 3
#: A traced run may cost at most this factor of the untraced run.
TRACED_FACTOR_BOUND = 1.5

CAMPAIGN = CampaignConfig(
    seed=42, scale=0.004, include_apps=False, include_static=False
)
PLANNER = PlannerParams(window_km=600.0)


def _loops():
    """The timed bodies: an empty loop and a null-span loop."""
    span = NULL_TRACER.span  # bind once, as instrumented call sites do

    def empty():
        for _ in range(N_SPANS):
            pass

    def null_spans():
        for _ in range(N_SPANS):
            with span("bench.noop", index=0):
                pass

    return empty, null_spans


def _engine_seconds(trace_path) -> float:
    config = EngineConfig(
        campaign=CAMPAIGN,
        executor="serial",
        planner=PLANNER,
        trace_path=str(trace_path) if trace_path else None,
    )
    started = time.perf_counter()
    run_engine(config)
    return time.perf_counter() - started


def test_obs_overhead(tmp_path, report, bench):
    empty, null_spans = _loops()
    empty_t = measure(empty, warmup=1, repeats=REPS)
    null_t = measure(null_spans, warmup=1, repeats=REPS)
    # Net per-iteration cost of entering/exiting a disabled span.
    per_span_s = max(min(null_t) - min(empty_t), 0.0) / N_SPANS

    untraced, traced = [], []
    try:
        for rep in range(REPS):
            # Interleave variants so drift penalises neither side.
            untraced.append(_engine_seconds(None))
            traced.append(_engine_seconds(tmp_path / f"trace-{rep}.jsonl"))
        n_spans = sum(
            1 for r in iter_trace(tmp_path / "trace-0.jsonl")
            if r["kind"] == "span"
        )
    finally:
        reset_tracers()

    untraced_best = min(untraced)
    traced_best = min(traced)
    factor = traced_best / untraced_best if untraced_best > 0 else 1.0
    # What the same run pays when tracing is OFF: every instrumented site
    # still calls the null tracer, so its cost is spans × ns-per-span.
    disabled_overhead_s = n_spans * per_span_s

    bench.record(
        "obs.null_span_loop", null_t, warmup=1,
        counters={
            "obs.spans": N_SPANS,
            "obs.ns_per_span": round(per_span_s * 1e9, 1),
        },
    )
    bench.record(
        "obs.engine_untraced", untraced, counters={"obs.spans_per_run": n_spans}
    )
    bench.record(
        "obs.engine_traced", traced, counters={"obs.spans_per_run": n_spans}
    )

    report(
        "obs_overhead",
        render_table(
            ["measurement", "value"],
            [
                ["null span cost", f"{per_span_s * 1e9:.0f} ns"],
                ["spans per engine run", f"{n_spans}"],
                ["disabled overhead / run", f"{disabled_overhead_s * 1e6:.1f} us"],
                ["engine untraced (best)", f"{untraced_best:.3f} s"],
                ["engine traced (best)", f"{traced_best:.3f} s"],
                ["traced / untraced", f"{factor:.3f}x"],
            ],
        ),
    )

    # Disabled: a whole run's worth of null spans must vanish inside the
    # run's own wall time (self-relative, so machine-independent).
    assert disabled_overhead_s < 0.01 * untraced_best, (
        f"disabled tracing would cost {disabled_overhead_s * 1e3:.3f} ms "
        f"of a {untraced_best:.3f} s run"
    )
    # Enabled: bounded, not free — JSONL appends are real I/O.
    assert factor <= TRACED_FACTOR_BOUND, (
        f"traced run {factor:.2f}x slower than untraced "
        f"(bound {TRACED_FACTOR_BOUND}x)"
    )
    # Absolute cost: gated against the committed baseline when comparable.
    bench.gate("obs.null_span_loop")
    bench.gate("obs.engine_untraced")
    bench.gate("obs.engine_traced")
