"""Observability overhead — disabled tracing must cost nothing measurable.

Two measurements, both asserted like the store benchmark:

* **null-span microbenchmark** — the disabled tracer's ``span()`` context
  is one shared no-op object; entering it must cost well under a
  microsecond, so the instrumentation points sprinkled through the engine
  (a handful per shard) are free when ``--trace`` is off;
* **engine wall time, traced vs untraced** — a full serial engine run with
  tracing enabled must stay within a bounded factor of the untraced run,
  and the *estimated* disabled-path overhead (spans-per-run × ns-per-span)
  must be far inside the untraced run's own noise.

Numbers land in ``benchmarks/_reports/obs_overhead.txt``.
"""

from __future__ import annotations

import time

from repro.campaign.runner import CampaignConfig
from repro.engine import EngineConfig, PlannerParams, run_engine
from repro.obs.trace import NULL_TRACER, get_tracer, iter_trace, reset_tracers
from repro.reporting.tables import render_table

#: Iterations for the null-span microbenchmark.
N_SPANS = 200_000
#: Engine repetitions per variant; best-of guards against scheduler noise.
REPS = 3
#: Per-null-span budget: generous for CI jitter, still sub-microsecond.
NULL_SPAN_BUDGET_S = 1e-6
#: A traced run may cost at most this factor of the untraced run.
TRACED_FACTOR_BOUND = 1.5

CAMPAIGN = CampaignConfig(
    seed=42, scale=0.004, include_apps=False, include_static=False
)
PLANNER = PlannerParams(window_km=600.0)


def _null_span_seconds() -> float:
    """Net per-iteration cost of entering/exiting a disabled span."""
    span = NULL_TRACER.span  # bind once, as instrumented call sites do

    started = time.perf_counter()
    for _ in range(N_SPANS):
        pass
    empty_s = time.perf_counter() - started

    started = time.perf_counter()
    for _ in range(N_SPANS):
        with span("bench.noop", index=0):
            pass
    null_s = time.perf_counter() - started
    return max(null_s - empty_s, 0.0) / N_SPANS


def _engine_seconds(trace_path) -> float:
    config = EngineConfig(
        campaign=CAMPAIGN,
        executor="serial",
        planner=PLANNER,
        trace_path=str(trace_path) if trace_path else None,
    )
    started = time.perf_counter()
    run_engine(config)
    return time.perf_counter() - started


def test_obs_overhead(tmp_path, report):
    per_span_s = _null_span_seconds()

    untraced, traced = [], []
    try:
        for rep in range(REPS):
            # Interleave variants so drift penalises neither side.
            untraced.append(_engine_seconds(None))
            traced.append(_engine_seconds(tmp_path / f"trace-{rep}.jsonl"))
        n_spans = sum(
            1 for r in iter_trace(tmp_path / "trace-0.jsonl")
            if r["kind"] == "span"
        )
    finally:
        reset_tracers()

    untraced_best = min(untraced)
    traced_best = min(traced)
    factor = traced_best / untraced_best if untraced_best > 0 else 1.0
    # What the same run pays when tracing is OFF: every instrumented site
    # still calls the null tracer, so its cost is spans × ns-per-span.
    disabled_overhead_s = n_spans * per_span_s

    report(
        "obs_overhead",
        render_table(
            ["measurement", "value"],
            [
                ["null span cost", f"{per_span_s * 1e9:.0f} ns"],
                ["spans per engine run", f"{n_spans}"],
                ["disabled overhead / run", f"{disabled_overhead_s * 1e6:.1f} us"],
                ["engine untraced (best)", f"{untraced_best:.3f} s"],
                ["engine traced (best)", f"{traced_best:.3f} s"],
                ["traced / untraced", f"{factor:.3f}x"],
            ],
        ),
    )

    # Disabled: per-site cost must be sub-microsecond, and a whole run's
    # worth of null spans must vanish inside the run's own wall time.
    assert per_span_s < NULL_SPAN_BUDGET_S, (
        f"null span costs {per_span_s * 1e9:.0f} ns"
    )
    assert disabled_overhead_s < 0.01 * untraced_best, (
        f"disabled tracing would cost {disabled_overhead_s * 1e3:.3f} ms "
        f"of a {untraced_best:.3f} s run"
    )
    # Enabled: bounded, not free — JSONL appends are real I/O.
    assert factor <= TRACED_FACTOR_BOUND, (
        f"traced run {factor:.2f}x slower than untraced "
        f"(bound {TRACED_FACTOR_BOUND}x)"
    )
