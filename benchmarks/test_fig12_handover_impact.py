"""Fig. 12 — throughput impact of handovers (ΔT1, ΔT2).

Paper anchors: ΔT1 < 0 around 80% of the time (a drop during the handover,
but small — up to 60-80 Mbps DL, 20-30 Mbps UL); ΔT2 > 0 about 55-60% of the
time with a tiny median (0.5-2 Mbps); 5G→4G handovers mostly hurt while
4G→5G mostly help.
"""

from repro.analysis.handovers import handover_impact
from repro.mobility.events import HandoverType
from repro.radio.operators import Operator
from repro.reporting.tables import render_table


def _compute(dataset):
    return {
        (op, d): handover_impact(dataset, op, d)
        for op in Operator
        for d in ("downlink", "uplink")
    }


def test_fig12_handover_impact(benchmark, dataset, report):
    results = benchmark.pedantic(_compute, args=(dataset,), rounds=1, iterations=1)

    rows = []
    for (op, d), impact in results.items():
        rows.append([
            f"{op.code} {d[:2].upper()}",
            impact.delta_t1.n,
            f"{100 * impact.drop_fraction:.0f}%", "~80%",
            f"{impact.delta_t1.median:.2f}",
            f"{100 * impact.improvement_fraction:.0f}%", "55-60%",
            f"{impact.delta_t2.median:.2f}", "0.5-2",
        ])
    report(
        "fig12_handover_impact",
        render_table(
            ["op/dir", "HOs", "ΔT1<0", "paper", "ΔT1 med",
             "ΔT2>0", "paper", "ΔT2 med", "paper"],
            rows,
            title="Fig. 12: throughput impact of handovers (Mbps)",
        ),
    )

    for key, impact in results.items():
        # A drop during the handover interval in the clear majority of cases.
        assert impact.drop_fraction > 0.5, key
        # Post-handover throughput more often improves than not, but not
        # overwhelmingly — the paper's 55-60%.
        assert 0.35 < impact.improvement_fraction < 0.9, key
        # The median ΔT2 is small either way.
        assert abs(impact.delta_t2.median) < 20.0, key
    # Vertical handover asymmetry where both types have data (Fig. 12's
    # breakdown): 4G→5G beats 5G→4G in median ΔT2.
    for impact in results.values():
        up = impact.delta_t2_by_type.get(HandoverType.VERTICAL_UP)
        down = impact.delta_t2_by_type.get(HandoverType.VERTICAL_DOWN)
        if up is not None and down is not None and up.n >= 15 and down.n >= 15:
            assert up.median > down.median
