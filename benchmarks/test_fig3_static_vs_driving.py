"""Fig. 3 — static vs driving throughput/RTT CDFs.

Paper anchors: static DL medians 1511/311/710 Mbps (V/T/A), static UL
167/39/62 Mbps; driving DL medians collapse to 6-34 Mbps (1-5% of static),
~35% of samples below 5 Mbps; driving RTT medians 60-76 ms with multi-second
maxima.
"""

from repro.analysis.performance import static_vs_driving
from repro.radio.operators import Operator
from repro.reporting.tables import render_table

PAPER_STATIC_DL = {Operator.VERIZON: 1511.0, Operator.TMOBILE: 311.0, Operator.ATT: 710.0}
PAPER_STATIC_UL = {Operator.VERIZON: 167.0, Operator.TMOBILE: 39.0, Operator.ATT: 62.0}


def _all(dataset):
    return {op: static_vs_driving(dataset, op) for op in Operator}


def test_fig3_static_vs_driving(benchmark, dataset, report):
    results = benchmark.pedantic(_all, args=(dataset,), rounds=1, iterations=1)

    rows = []
    for op, r in results.items():
        rows.append([
            op.label,
            f"{r.static_dl.median:.0f}", f"{PAPER_STATIC_DL[op]:.0f}",
            f"{r.static_ul.median:.0f}", f"{PAPER_STATIC_UL[op]:.0f}",
            f"{r.driving_dl.median:.1f}", "6-34",
            f"{r.driving_ul.median:.1f}", "6-9",
            f"{100 * r.driving_dl.prob_below(5.0):.0f}%", "~35%",
            f"{r.driving_rtt.median:.0f}", "60-76",
            f"{r.driving_rtt.maximum:.0f}", "2000-3000",
        ])
    report(
        "fig3_static_vs_driving",
        render_table(
            ["op", "statDL", "paper", "statUL", "paper", "drvDL med", "paper",
             "drvUL med", "paper", "DL<5Mbps", "paper", "RTT med", "paper",
             "RTT max", "paper"],
            rows,
            title="Fig. 3: static vs driving (medians, Mbps / ms)",
        ),
    )

    for op, r in results.items():
        # Driving collapses throughput to a few % of static.
        assert r.driving_dl.median < 0.25 * r.static_dl.median
        # Static ordering: Verizon > AT&T > T-Mobile in DL (paper Fig. 3a).
    assert results[Operator.VERIZON].static_dl.median > results[Operator.ATT].static_dl.median
    assert results[Operator.ATT].static_dl.median > results[Operator.TMOBILE].static_dl.median
    # Static UL an order of magnitude below static DL.
    for op, r in results.items():
        assert r.static_ul.median < r.static_dl.median / 3
    # Driving RTT medians in the paper's band, with a deep tail.
    for op, r in results.items():
        assert 45.0 < r.driving_rtt.median < 110.0
    assert max(r.driving_rtt.maximum for r in results.values()) > 500.0
    # A substantial sub-5 Mbps driving fraction.
    assert max(r.driving_dl.prob_below(5.0) for r in results.values()) > 0.2
