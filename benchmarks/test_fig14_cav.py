"""Fig. 14 — the CAV app over Verizon.

Paper anchors: the 100 ms E2E budget is never met (driving median 269 ms with
compression; minimum observed 148 ms); compression cuts median E2E ~8×; edge
serving helps regardless of technology; no handover correlation.
"""

from repro.analysis.apps import offload_app_report
from repro.campaign.tests import TestType
from repro.radio.operators import Operator
from repro.reporting.tables import render_table


def _compute(dataset):
    return offload_app_report(dataset, Operator.VERIZON, TestType.CAV)


def test_fig14_cav_verizon(benchmark, dataset, report):
    r = benchmark.pedantic(_compute, args=(dataset,), rounds=1, iterations=1)

    rows = []
    for compression in (False, True):
        cdf = r.e2e_cdf.get(compression)
        rows.append([
            "with compression" if compression else "no compression",
            f"{cdf.median:.0f}" if cdf else "-",
            "269" if compression else "~8x higher",
            f"{cdf.minimum:.0f}" if cdf else "-",
            "148" if compression else "-",
        ])
    block = render_table(
        ["config", "drv E2E med (ms)", "paper", "min E2E", "paper"],
        rows, title="Fig. 14: CAV app (Verizon)",
    )
    block += f"\nhandover-E2E Pearson r: {r.handover_correlation:+.2f} (paper: none)"
    report("fig14_cav", block)

    # The 100 ms budget is never met, even in the best driving run.
    for cdf in r.e2e_cdf.values():
        assert cdf.minimum > 100.0
    # Compression brings a several-fold median reduction (paper: ~8×).
    if True in r.e2e_cdf and False in r.e2e_cdf:
        ratio = r.e2e_cdf[False].median / r.e2e_cdf[True].median
        assert ratio > 3.0
    # Median with compression in the few-hundred-ms regime.
    if True in r.e2e_cdf:
        assert 120.0 < r.e2e_cdf[True].median < 900.0
    assert abs(r.handover_correlation) < 0.6
