"""Fig. 10 — per-test performance vs time spent on high-speed 5G.

Paper anchors: only T-Mobile's midband brings a substantial downlink boost;
for the other operators (and all operators in the uplink) throughput is
similar regardless of the high-speed-5G time fraction; same for RTT.
"""

import numpy as np

from repro.analysis.longterm import rtt_vs_hs5g_fraction, throughput_vs_hs5g_fraction
from repro.radio.operators import Operator
from repro.reporting.tables import render_table


def _compute(dataset):
    return (
        {
            (op, d): throughput_vs_hs5g_fraction(dataset, op, d)
            for op in Operator
            for d in ("downlink", "uplink")
        },
        {op: rtt_vs_hs5g_fraction(dataset, op) for op in Operator},
    )


def _split(points, threshold=0.5):
    low = [v for f, v in points if f < threshold]
    high = [v for f, v in points if f >= threshold]
    return low, high


def test_fig10_hs5g_time_fraction(benchmark, dataset, report):
    tput_points, rtt_points = benchmark.pedantic(
        _compute, args=(dataset,), rounds=1, iterations=1
    )

    rows = []
    for (op, d), points in tput_points.items():
        low, high = _split(points)
        rows.append([
            f"{op.code} {d[:2].upper()}",
            len(points),
            f"{np.mean(low):.1f}" if low else "-",
            f"{np.mean(high):.1f}" if high else "-",
        ])
    for op, points in rtt_points.items():
        low, high = _split(points)
        rows.append([
            f"{op.code} RTT",
            len(points),
            f"{np.mean(low):.0f}" if low else "-",
            f"{np.mean(high):.0f}" if high else "-",
        ])
    report(
        "fig10_hs5g_fraction",
        render_table(
            ["op/metric", "tests", "mean @ <50% HS-5G", "mean @ ≥50% HS-5G"],
            rows,
            title="Fig. 10: per-test mean vs high-speed-5G time fraction",
        ),
    )

    # Every operator has per-test points with valid fractions.
    for points in tput_points.values():
        assert points
        assert all(0.0 <= f <= 1.0 for f, _ in points)
    # T-Mobile's downlink benefits from midband time when both groups exist.
    low, high = _split(tput_points[(Operator.TMOBILE, "downlink")])
    if len(low) >= 5 and len(high) >= 5:
        assert np.mean(high) > np.mean(low) * 0.9
    # Verizon/AT&T DL: no dramatic improvement with HS-5G time (paper's
    # central negative result) — means stay within a small factor.
    for op in (Operator.VERIZON, Operator.ATT):
        low, high = _split(tput_points[(op, "downlink")])
        if len(low) >= 5 and len(high) >= 3:
            assert np.mean(high) < np.mean(low) * 6.0
