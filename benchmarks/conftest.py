"""Benchmark fixtures: shared campaign, bench recorder, baseline gating.

The dataset is generated once per session at ``scale=0.12`` — roughly one
eighth of the paper's back-to-back test schedule, still covering the full
LA→Boston route, all four timezones, all ten static city baselines, and all
seven test types.

Every benchmark routes its timings through the session :class:`BenchRecorder`
(the ``bench`` fixture), which

* collects them as :class:`repro.bench.BenchResult` entries and writes one
  machine-readable ``benchmarks/_reports/BENCH_benchmarks.json`` at session
  end, next to the human-readable ``_reports/*.txt`` tables;
* replaces the old absolute thresholds with **baseline-relative gates**: when
  ``benchmarks/BENCH_baseline.json`` has an entry of the same name *and* the
  environment fingerprints match, the measured min may exceed the baseline's
  by at most a generous budget.  No baseline entry, or a different machine,
  means record-only — numbers are still written, never compared across
  incomparable environments.  Self-relative assertions (parallel speedup,
  traced/untraced factor, pushdown-vs-row) stay in the tests themselves.

Refresh the baseline with ``python -m repro.bench run`` plus a benchmark
session on the reference machine (see DESIGN.md).
"""

from __future__ import annotations

import pathlib

import pytest

from repro.bench import BenchReport, BenchResult, environment_fingerprint
from repro.campaign.runner import CampaignConfig, DriveCampaign

REPORT_DIR = pathlib.Path(__file__).parent / "_reports"
BASELINE_PATH = pathlib.Path(__file__).parent / "BENCH_baseline.json"

#: Campaign scale used for all benchmarks.
BENCH_SCALE = 0.12
BENCH_SEED = 42

#: Baseline-relative budget: a benchmark may be at most this much slower
#: than the committed baseline before its gate fails.  Deliberately
#: generous — these gates catch order-of-magnitude rot (a hot path going
#: quadratic), not percent-level noise; ``python -m repro.bench gate``
#: applies the tighter budgets.
GATE_BUDGET = 2.0


class BenchRecorder:
    """Collects benchmark timings and gates them against the baseline."""

    def __init__(self) -> None:
        self.results: dict[str, BenchResult] = {}
        self.environment = environment_fingerprint()
        self._baseline: BenchReport | None = None
        if BASELINE_PATH.is_file():
            self._baseline = BenchReport.load(BASELINE_PATH)

    def record(
        self,
        name: str,
        timings_s,
        warmup: int = 0,
        counters: dict | None = None,
    ) -> BenchResult:
        """Store one benchmark's timing vector (seconds per repeat)."""
        result = BenchResult(
            name=name,
            warmup=warmup,
            repeats=len(timings_s),
            timings_s=tuple(float(t) for t in timings_s),
            counters=dict(counters or {}),
        )
        self.results[name] = result
        return result

    def comparable(self) -> bool:
        """Baseline present and measured on a matching environment."""
        return (
            self._baseline is not None
            and self._baseline.environment == self.environment
        )

    def gate(self, name: str, budget: float = GATE_BUDGET) -> None:
        """Assert ``name`` did not regress past ``budget`` vs the baseline.

        Record-only (no assertion) when there is no baseline, the
        environments differ, or the baseline has no entry of this name.
        """
        if not self.comparable():
            return
        base = self._baseline.results.get(name)
        if base is None:
            return
        current = self.results[name]
        ratio = current.min_s / base.min_s if base.min_s > 0 else 1.0
        assert ratio <= 1.0 + budget, (
            f"{name} regressed: {current.min_s * 1e3:.2f} ms vs baseline "
            f"{base.min_s * 1e3:.2f} ms ({ratio:.2f}x > {1 + budget:.2f}x)"
        )

    def save(self, path: pathlib.Path) -> None:
        report = BenchReport(
            suite="benchmarks",
            environment=self.environment,
            results=self.results,
        )
        path.parent.mkdir(exist_ok=True)
        report.save(path)


@pytest.fixture(scope="session")
def bench():
    recorder = BenchRecorder()
    yield recorder
    if recorder.results:
        recorder.save(REPORT_DIR / "BENCH_benchmarks.json")


@pytest.fixture(scope="session")
def campaign():
    c = DriveCampaign(CampaignConfig(seed=BENCH_SEED, scale=BENCH_SCALE))
    c.run()
    c.finalize_connected_cells()
    return c


@pytest.fixture(scope="session")
def dataset(campaign):
    return campaign._dataset


@pytest.fixture(scope="session")
def route(campaign):
    return campaign.route


def emit(name: str, text: str) -> None:
    """Print a report block and persist it under ``benchmarks/_reports``."""
    banner = f"\n===== {name} =====\n{text}\n"
    print(banner)
    REPORT_DIR.mkdir(exist_ok=True)
    (REPORT_DIR / f"{name}.txt").write_text(banner)


@pytest.fixture()
def report():
    return emit
