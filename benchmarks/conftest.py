"""Benchmark fixtures: one medium-scale campaign shared by every bench.

The dataset is generated once per session at ``scale=0.12`` — roughly one
eighth of the paper's back-to-back test schedule, still covering the full
LA→Boston route, all four timezones, all ten static city baselines, and all
seven test types.  Each benchmark times the *analysis* that regenerates its
table/figure and prints the measured rows next to the paper's values.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.campaign.runner import CampaignConfig, DriveCampaign

REPORT_DIR = pathlib.Path(__file__).parent / "_reports"

#: Campaign scale used for all benchmarks.
BENCH_SCALE = 0.12
BENCH_SEED = 42


@pytest.fixture(scope="session")
def campaign():
    c = DriveCampaign(CampaignConfig(seed=BENCH_SEED, scale=BENCH_SCALE))
    c.run()
    c.finalize_connected_cells()
    return c


@pytest.fixture(scope="session")
def dataset(campaign):
    return campaign._dataset


@pytest.fixture(scope="session")
def route(campaign):
    return campaign.route


def emit(name: str, text: str) -> None:
    """Print a report block and persist it under ``benchmarks/_reports``."""
    banner = f"\n===== {name} =====\n{text}\n"
    print(banner)
    REPORT_DIR.mkdir(exist_ok=True)
    (REPORT_DIR / f"{name}.txt").write_text(banner)


@pytest.fixture()
def report():
    return emit
