"""Fig. 16 — cloud gaming over Verizon.

Paper anchors: driving median send bitrate 17.5 Mbps vs best static 98.5;
network latency always above the 17 ms static floor and above 200 ms for 20%
of runs; frame drops low (median 1.6%, max 13.2%) because the adapter trades
latency for continuity; no handover correlation.
"""

from repro.analysis.apps import gaming_app_report
from repro.radio.operators import Operator
from repro.reporting.tables import render_table


def _compute(dataset):
    return gaming_app_report(dataset, Operator.VERIZON)


def test_fig16_gaming_verizon(benchmark, dataset, report):
    r = benchmark.pedantic(_compute, args=(dataset,), rounds=1, iterations=1)

    rows = [[
        f"{r.bitrate_cdf.median:.1f}", "17.5",
        f"{r.best_static_bitrate:.1f}" if r.best_static_bitrate is not None else "-", "98.5",
        f"{r.latency_cdf.median:.0f}", ">17",
        f"{100 * r.high_latency_run_fraction:.0f}%", "~20%",
        f"{r.drop_rate_cdf.median:.1f}%", "1.6%",
        f"{r.drop_rate_cdf.maximum:.1f}%", "13.2%",
    ]]
    block = render_table(
        ["bitrate med", "paper", "static bitrate", "paper",
         "latency med (ms)", "paper", ">200ms runs", "paper",
         "drop med", "paper", "drop max", "paper"],
        rows, title="Fig. 16: cloud gaming (Verizon)",
    )
    block += f"\nhandover-bitrate Pearson r: {r.handover_correlation:+.2f} (paper: none)"
    report("fig16_gaming", block)

    if r.best_static_bitrate is not None:
        assert r.best_static_bitrate > 80.0
        assert r.bitrate_cdf.median < r.best_static_bitrate * 0.6
    # Latency always above the static floor.
    assert r.latency_cdf.minimum > 17.0
    # Drops stay low overall but have a heavy-ish tail.
    assert r.drop_rate_cdf.median < 8.0
    assert r.drop_rate_cdf.maximum < 40.0
    assert abs(r.handover_correlation) < 0.7
