"""Fig. 1 — coverage along the route: handover-logger vs XCAL views.

The paper's headline methodology finding: the passive handover-logger sees a
far more pessimistic technology distribution than XCAL under active traffic —
for AT&T, *only* LTE/LTE-A along the entire route (Fig. 1d); for T-Mobile the
two views agree in the east half and diverge in the west (Figs. 1c/1f).
"""

from repro.analysis import coverage
from repro.radio.operators import Operator
from repro.reporting.tables import render_table


def _views(dataset):
    out = {}
    for op in Operator:
        out[op] = (
            coverage.passive_coverage_shares(dataset, op),
            coverage.active_coverage_shares(dataset, op),
        )
    return out


def test_fig1_passive_vs_active_views(benchmark, dataset, report):
    views = benchmark.pedantic(_views, args=(dataset,), rounds=1, iterations=1)

    rows = []
    for op, (passive, active) in views.items():
        rows.append([
            op.label,
            f"{100 * passive.share_5g:.1f}%",
            f"{100 * active.share_5g:.1f}%",
            "0% / ~20%" if op is Operator.ATT else "low / high",
        ])
    report(
        "fig1_coverage_views",
        render_table(
            ["operator", "passive 5G share", "active 5G share", "paper (passive/active)"],
            rows,
            title="Fig. 1: 5G share of miles, handover-logger vs XCAL view",
        ),
    )

    for op, (passive, active) in views.items():
        assert passive.share_5g < active.share_5g, op
    # Fig. 1d: AT&T's passive view is LTE/LTE-A only.
    assert views[Operator.ATT][0].share_5g < 0.02
    # Route strips render for both views and span the whole route.
    strip_passive = coverage.route_technology_strip(dataset, Operator.TMOBILE, "passive")
    strip_active = coverage.route_technology_strip(dataset, Operator.TMOBILE, "active")
    assert len(strip_passive) > 500
    assert len(strip_active) > 500
