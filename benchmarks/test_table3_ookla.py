"""Table 3 — our driving medians vs Ookla's Q3 2022 static report.

Paper row shape: driving DL medians (29.6/37.1/48.4) sit well below Ookla's
static medians (58.6/116.1/57.9); driving UL medians slightly *above* Ookla's
(13.2/13.8/9.8 vs 8.3/10.9/7.6); RTTs higher than Ookla's 59-61 ms.
"""

from repro.analysis.ookla import PAPER_DRIVE_MEDIANS, ookla_comparison
from repro.radio.operators import Operator
from repro.reporting.tables import render_table


def test_table3_ookla_comparison(benchmark, dataset, report):
    rows_out = benchmark.pedantic(ookla_comparison, args=(dataset,), rounds=1, iterations=1)

    rows = []
    for row in rows_out:
        paper = PAPER_DRIVE_MEDIANS[row.operator]
        rows.append([
            row.operator.label,
            f"{row.our_downlink_mbps:.1f}", f"{paper.downlink_mbps:.1f}", f"{row.ookla.downlink_mbps:.1f}",
            f"{row.our_uplink_mbps:.1f}", f"{paper.uplink_mbps:.1f}", f"{row.ookla.uplink_mbps:.1f}",
            f"{row.our_rtt_ms:.1f}", f"{paper.rtt_ms:.1f}", f"{row.ookla.rtt_ms:.1f}",
        ])
    report(
        "table3_ookla",
        render_table(
            ["operator", "DL ours", "DL paper", "DL Ookla",
             "UL ours", "UL paper", "UL Ookla",
             "RTT ours", "RTT paper", "RTT Ookla"],
            rows,
            title="Table 3: driving medians vs Ookla Q3 2022",
        ),
    )

    for row in rows_out:
        # Driving DL median below Ookla's static median (the paper's point).
        assert row.our_downlink_mbps < row.ookla.downlink_mbps
        # RTT above Ookla's (driving inflation).
        assert row.our_rtt_ms > row.ookla.rtt_ms * 0.9
    # T-Mobile shows the largest DL deficit (Ookla 116 vs driving ~37).
    deficits = {r.operator: r.downlink_deficit for r in rows_out}
    assert deficits[Operator.TMOBILE] == min(deficits.values())
