"""Figs. 18-20 — AR and CAV apps across all three operators (Appendix C.3).

Paper anchors: Verizon achieves the lowest AR E2E (its RTT is lowest:
63.7 ms vs 81.7/80.7), hence the highest offload FPS and mAP; the Verizon
lead grows with compression (RTT dominates small frames); for the CAV app
without compression, T-Mobile's superior uplink throughput gives it the
lowest E2E; maximum AR accuracy stays below ~36% for every operator.
"""

from repro.analysis.apps import offload_app_report
from repro.campaign.tests import TestType
from repro.radio.operators import Operator
from repro.reporting.tables import render_table


def _compute(dataset):
    return {
        (op, app): offload_app_report(dataset, op, app)
        for op in Operator
        for app in (TestType.AR, TestType.CAV)
    }


def test_fig18_20_apps_all_operators(benchmark, dataset, report):
    results = benchmark.pedantic(_compute, args=(dataset,), rounds=1, iterations=1)

    rows = []
    for (op, app), r in results.items():
        for compression in (False, True):
            cdf = r.e2e_cdf.get(compression)
            fps = r.fps_cdf.get(compression)
            rows.append([
                f"{op.code} {app.value}",
                "comp" if compression else "raw",
                f"{cdf.median:.0f}" if cdf else "-",
                f"{fps.median:.2f}" if fps else "-",
                f"{r.handover_correlation:+.2f}",
            ])
    report(
        "fig18_20_apps_all_ops",
        render_table(
            ["op/app", "config", "E2E med (ms)", "FPS med", "HO corr"],
            rows, title="Figs. 18-20: AR/CAV across operators",
        ),
    )

    # All operators produce reports with driving data for both apps.
    for r in results.values():
        assert r.e2e_cdf
    # AR mAP ceiling below ~38.45 for every operator (Table 5 bound); the
    # paper notes maxima below ~36 across operators.
    for op in Operator:
        r = results[(op, TestType.AR)]
        for _, map_score, _ in r.metric_vs_hs5g:
            assert map_score <= 38.45
    # CAV never meets 100 ms anywhere.
    for op in Operator:
        r = results[(op, TestType.CAV)]
        for cdf in r.e2e_cdf.values():
            assert cdf.minimum > 100.0
    # No strong handover correlation anywhere.
    for r in results.values():
        assert abs(r.handover_correlation) < 0.7
