"""Fig. 22 — cloud gaming across all three operators (Appendix E.2).

Paper anchors: median bitrates 19/21/9 Mbps (V/T/A); median network latencies
all ≈50 ms; Verizon shows occasional extreme latencies; drop rates similar
for V and A with T-Mobile showing the worst extremes.
"""

from repro.analysis.apps import gaming_app_report
from repro.radio.operators import Operator
from repro.reporting.tables import render_table

PAPER_BITRATE = {Operator.VERIZON: 19.0, Operator.TMOBILE: 21.0, Operator.ATT: 9.0}


def _compute(dataset):
    return {op: gaming_app_report(dataset, op) for op in Operator}


def test_fig22_gaming_all_operators(benchmark, dataset, report):
    results = benchmark.pedantic(_compute, args=(dataset,), rounds=1, iterations=1)

    rows = []
    for op, r in results.items():
        rows.append([
            op.label,
            f"{r.bitrate_cdf.median:.1f}", f"{PAPER_BITRATE[op]:.0f}",
            f"{r.latency_cdf.median:.0f}", "~50",
            f"{r.drop_rate_cdf.median:.1f}%",
            f"{r.drop_rate_cdf.maximum:.1f}%",
        ])
    report(
        "fig22_gaming_all_ops",
        render_table(
            ["operator", "bitrate med", "paper", "latency med (ms)", "paper",
             "drop med", "drop max"],
            rows, title="Fig. 22: cloud gaming across operators",
        ),
    )

    # Bitrates in the paper's tens-of-Mbps driving regime.
    for op, r in results.items():
        assert 3.0 < r.bitrate_cdf.median < 60.0, op
    # Latency medians in a plausible band around the paper's ~50 ms.
    for op, r in results.items():
        assert 20.0 < r.latency_cdf.median < 150.0, op
    # Drop-rate medians stay low for every operator.
    for r in results.values():
        assert r.drop_rate_cdf.median < 8.0
