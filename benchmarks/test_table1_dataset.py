"""Table 1 — dataset statistics.

Paper values: 5711+ km; cells 3020/4038/3150 (V/T/A); handovers
2657/4119/2494; 777+ GB Rx / 83+ GB Tx; runtime 5561/4595/4541 min.
Byte volumes and runtimes scale with the campaign's duty cycle
(``BENCH_SCALE``), so we compare them scaled.
"""

from repro.radio.operators import Operator
from repro.reporting.tables import render_table

PAPER = {
    "distance_km": 5711.0,
    "cells": {Operator.VERIZON: 3020, Operator.TMOBILE: 4038, Operator.ATT: 3150},
    "handovers": {Operator.VERIZON: 2657, Operator.TMOBILE: 4119, Operator.ATT: 2494},
    "rx_gb": 777.0,
    "tx_gb": 83.0,
}


def test_table1_dataset_statistics(benchmark, dataset, report):
    summary = benchmark.pedantic(dataset.summary, rounds=1, iterations=1)

    rows = [
        ["distance (km)", f"{summary.total_distance_km:.0f}", f"{PAPER['distance_km']:.0f}+"],
        ["Rx volume (GB)", f"{summary.total_rx_gb:.0f}", f"{PAPER['rx_gb']:.0f}+ (full scale)"],
        ["Tx volume (GB)", f"{summary.total_tx_gb:.0f}", f"{PAPER['tx_gb']:.0f}+ (full scale)"],
    ]
    for op in Operator:
        rows.append(
            [f"unique cells ({op.code})", summary.unique_cells[op], PAPER["cells"][op]]
        )
        rows.append(
            [f"handovers ({op.code})", summary.handovers[op], PAPER["handovers"][op]]
        )
        rows.append(
            [f"runtime ({op.code}, min)", f"{summary.runtime_min[op]:.0f}", "4541-5561 (full scale)"]
        )
    report(
        "table1_dataset",
        render_table(["statistic", "ours", "paper"], rows, title="Table 1: dataset statistics"),
    )

    assert summary.total_distance_km > 5700.0
    # Trip-wide handover ordering and magnitude (dominated by the passive
    # loggers, which run at full scale regardless of the duty cycle).
    assert summary.handovers[Operator.TMOBILE] > summary.handovers[Operator.VERIZON]
    assert summary.handovers[Operator.TMOBILE] > summary.handovers[Operator.ATT]
    for op in Operator:
        assert 0.5 * PAPER["handovers"][op] < summary.handovers[op] < 2.0 * PAPER["handovers"][op]
    assert summary.total_rx_gb > summary.total_tx_gb
