"""Figs. 7-8 — throughput and RTT against vehicle speed, by technology.

Paper anchors: mmWave points concentrate at low speeds (cities); several
100s of Mbps remain possible at 60+ mph (midband along highways, V and T);
throughput-speed correlation is weak; RTT grows with speed for Verizon and
T-Mobile but not AT&T, whose 4G RTTs are high in every bin.
"""

import numpy as np

from repro.analysis.correlation import rtt_speed_scatter, throughput_speed_scatter
from repro.radio.operators import Operator
from repro.radio.technology import RadioTechnology
from repro.reporting.tables import render_table
from repro.units import SPEED_BIN_LABELS


def _compute(dataset):
    tput = {
        op: throughput_speed_scatter(dataset, op, "downlink") for op in Operator
    }
    rtt = {op: rtt_speed_scatter(dataset, op) for op in Operator}
    return tput, rtt


def _bin_median(points, label, value_index=1):
    values = [p[value_index] for p in points if p[3] == label]
    return float(np.median(values)) if values else float("nan")


def test_fig7_fig8_speed_breakdown(benchmark, dataset, report):
    tput, rtt = benchmark.pedantic(_compute, args=(dataset,), rounds=1, iterations=1)

    rows = []
    for op in Operator:
        rows.append(
            [f"{op.code} tput (Mbps)"]
            + [f"{_bin_median(tput[op], b):.1f}" for b in SPEED_BIN_LABELS]
        )
        rows.append(
            [f"{op.code} RTT (ms)"]
            + [f"{_bin_median(rtt[op], b):.0f}" for b in SPEED_BIN_LABELS]
        )
    report(
        "fig7_fig8_speed",
        render_table(
            ["metric"] + list(SPEED_BIN_LABELS), rows,
            title="Figs. 7-8: medians per speed bin (downlink tput / RTT)",
        ),
    )

    # mmWave throughput points concentrate at low speed (Fig. 7).
    for op in (Operator.VERIZON, Operator.ATT):
        mm_points = [p for p in tput[op] if p[2] is RadioTechnology.NR_MMWAVE]
        if len(mm_points) >= 5:
            speeds = [p[0] for p in mm_points]
            assert float(np.median(speeds)) < 30.0, op
    # High-value points persist at 60+ mph for V and T (midband highways).
    for op in (Operator.VERIZON, Operator.TMOBILE):
        fast = [p[1] for p in tput[op] if p[3] == "60+ mph"]
        assert max(fast) > 80.0, op
    # RTT-speed response: Verizon/T-Mobile grow, AT&T stays flat (Fig. 8).
    for op in (Operator.VERIZON, Operator.TMOBILE):
        low = _bin_median(rtt[op], "0-20 mph")
        high = _bin_median(rtt[op], "60+ mph")
        assert high > low, op
    att_gap = _bin_median(rtt[Operator.ATT], "60+ mph") - _bin_median(rtt[Operator.ATT], "0-20 mph")
    vzw_gap = _bin_median(rtt[Operator.VERIZON], "60+ mph") - _bin_median(rtt[Operator.VERIZON], "0-20 mph")
    assert att_gap < vzw_gap
