"""Fig. 21 — 360° video streaming across all three operators (Appendix D.2).

Paper anchors: all operators achieve similar QoE / rebuffering / bitrate,
with T-Mobile slightly ahead on rebuffering and bitrate; technology has
little impact for T-Mobile.
"""

from repro.analysis.apps import video_app_report
from repro.radio.operators import Operator
from repro.reporting.tables import render_table


def _compute(dataset):
    return {op: video_app_report(dataset, op) for op in Operator}


def test_fig21_video_all_operators(benchmark, dataset, report):
    results = benchmark.pedantic(_compute, args=(dataset,), rounds=1, iterations=1)

    rows = []
    for op, r in results.items():
        rows.append([
            op.label,
            f"{r.qoe_cdf.median:.1f}",
            f"{r.bitrate_cdf.median:.1f}",
            f"{100 * r.rebuffer_cdf.median:.1f}%",
            f"{100 * r.negative_qoe_fraction:.0f}%",
        ])
    report(
        "fig21_video_all_ops",
        render_table(
            ["operator", "QoE med", "bitrate med (Mbps)", "rebuffer med", "neg-QoE runs"],
            rows, title="Fig. 21: 360° video across operators",
        ),
    )

    # Same-ballpark QoE across operators (paper: similar for all three).
    medians = [r.qoe_cdf.median for r in results.values()]
    assert max(medians) - min(medians) < 120.0
    # Every operator suffers negative-QoE runs while driving.
    assert all(r.negative_qoe_fraction > 0.0 for r in results.values())
    # Rebuffer ratios stay in [0, 1].
    for r in results.values():
        assert 0.0 <= r.rebuffer_cdf.maximum <= 1.0
