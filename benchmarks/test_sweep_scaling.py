"""Sweep scaling — wall time and cache leverage as the seed count grows.

Runs ``repro.sweep`` cold at 1, 2, and 4 seeds over a shared cache
directory, then once more warm at 4 seeds, and records wall time, per-sweep
cache hit ratio, and records produced into
``benchmarks/_reports/sweep_scaling.txt``.  Because every sweep widens the
same cache, each cold run replays the seeds the previous one computed — the
table shows the hit ratio climbing toward 1.0, which is the whole point of
content-addressing shards.  The warm rerun must be served entirely from
cache.
"""

from __future__ import annotations

import time

from repro.engine import PlannerParams
from repro.reporting.tables import render_table
from repro.sweep import SweepConfig, run_sweep

SCALE = 0.05
SEEDS = (41, 42, 43, 44)
WINDOW_KM = 600.0


def _sweep(n_seeds: int, cache_dir, report_label: str):
    config = SweepConfig(
        seeds=SEEDS[:n_seeds],
        scale=SCALE,
        include_apps=False,
        include_static=False,
        planner=PlannerParams(window_km=WINDOW_KM),
        cache_dir=str(cache_dir),
        bootstrap_samples=500,
    )
    started = time.perf_counter()
    result = run_sweep(config)
    wall = time.perf_counter() - started
    return [
        report_label,
        n_seeds,
        f"{wall:.2f}",
        f"{result.report.cache_hit_ratio():.2f}",
        result.report.total_records,
    ], result, wall


def test_sweep_scaling(tmp_path, report, bench):
    cache_dir = tmp_path / "shard-cache"
    rows = []
    cold_result = cold_wall = None
    for n_seeds in (1, 2, 4):
        row, cold_result, cold_wall = _sweep(n_seeds, cache_dir, "cold")
        rows.append(row)
    warm_row, warm, warm_wall = _sweep(len(SEEDS), cache_dir, "warm")
    rows.append(warm_row)

    bench.record(
        "sweep.cold_4seeds", [cold_wall],
        counters={"sweep.records": cold_result.report.total_records},
    )
    bench.record(
        "sweep.warm_4seeds", [warm_wall],
        counters={
            "cache.hit_ratio": warm.report.cache_hit_ratio(),
            "cache.misses": warm.cache.stats.misses,
        },
    )

    report(
        "sweep_scaling",
        render_table(
            ["run", "seeds", "wall (s)", "cache hit ratio", "records"],
            rows,
            title=(
                f"Sweep scaling (scale={SCALE}, "
                f"{warm.report.n_windows} windows/seed, "
                f"{len(warm.report.statistics)} statistics with CIs)"
            ),
        ),
    )

    assert warm.report.cache_hit_ratio() == 1.0, "warm sweep recomputed shards"
    assert warm.cache.stats.misses == 0
    assert len(warm.report.statistics) >= 5
    # Wall times gate against the committed baseline when comparable.
    bench.gate("sweep.cold_4seeds")
    bench.gate("sweep.warm_4seeds")
