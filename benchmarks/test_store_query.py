"""Store query scaling — pushdown queries vs row-object load+filter.

Builds a multi-seed catalog from the shared benchmark campaign, then answers
the same analytical questions two ways:

* **row path** — load each seed's gzipped JSON-lines file into row objects,
  filter in Python, aggregate with numpy (how the analysis layer worked
  before :mod:`repro.store`);
* **store path** — :mod:`repro.store.query` kernels over the catalog, with
  partition pruning and footer-stats predicate pushdown.

The measured speedups land in ``benchmarks/_reports/store_query.txt``.  The
pushdown path must be at least 5× faster on the load+filter comparison; in
practice mmap + columnar projection beats gzip + row materialisation by two
orders of magnitude.
"""

from __future__ import annotations

import copy
import time

import numpy as np

from repro.campaign.persistence import load_dataset, save_dataset
from repro.radio.operators import Operator
from repro.reporting.tables import render_table
from repro.store import Catalog, Eq, QueryStats, query
from repro.units import SPEED_BIN_LABELS, speed_bin

SEEDS = (42, 43, 44, 45)


def _build_corpus(dataset, tmp_path):
    """One row-format file and one catalog partition per seed.

    The same records are re-labelled per seed instead of re-running the
    campaign: the benchmark times storage and query, not generation, and
    identical per-partition volume makes the comparison clean.
    """
    row_files = []
    catalog = Catalog(tmp_path / "store")
    for seed in SEEDS:
        ds = copy.deepcopy(dataset)
        ds.seed = seed
        path = tmp_path / f"seed{seed}.jsonl.gz"
        save_dataset(ds, path)
        row_files.append(path)
        catalog.ingest(ds)
    return row_files, catalog


def _row_median_dl(row_files) -> tuple[float, float]:
    started = time.perf_counter()
    values = []
    for path in row_files:
        ds = load_dataset(path)
        values.append(
            ds.tput_values(
                operator=Operator.VERIZON, direction="downlink", static=False
            )
        )
    result = float(np.median(np.concatenate(values)))
    return time.perf_counter() - started, result


def _store_median_dl(catalog) -> tuple[float, float, QueryStats]:
    qstats = QueryStats()
    started = time.perf_counter()
    result = query.percentile(
        catalog, "tput", "tput_mbps", 0.5,
        where=(
            Eq("operator", Operator.VERIZON),
            Eq("direction", "downlink"),
            Eq("static", False),
        ),
        qstats=qstats,
    )
    return time.perf_counter() - started, float(result), qstats


def _row_speed_bin_counts(row_files) -> tuple[float, dict]:
    started = time.perf_counter()
    counts = {label: 0 for label in SPEED_BIN_LABELS}
    for path in row_files:
        ds = load_dataset(path)
        for s in ds.throughput_samples:
            if not s.static:
                counts[speed_bin(s.speed_mph)] += 1
    return time.perf_counter() - started, counts


def _store_speed_bin_counts(catalog) -> tuple[float, dict]:
    started = time.perf_counter()
    counts = {
        label: query.count(
            catalog, "tput",
            (Eq("static", False), query.where_speed_bin(label)),
        )
        for label in SPEED_BIN_LABELS
    }
    return time.perf_counter() - started, counts


def test_store_query_scaling(dataset, tmp_path, report, bench):
    row_files, catalog = _build_corpus(dataset, tmp_path)
    with catalog:
        # Row baseline first so the page cache warms the store's inputs
        # no more than the row path's own files.
        row_s, row_median = _row_median_dl(row_files)
        store_s, store_median, qstats = _store_median_dl(catalog)
        assert store_median == row_median

        row_bin_s, row_counts = _row_speed_bin_counts(row_files)
        store_bin_s, store_counts = _store_speed_bin_counts(catalog)
        assert store_counts == row_counts

        # Seed-restricted query: pruning must keep untouched partitions
        # unopened (manifest-only answer for the other three).
        pruned = QueryStats()
        query.count(catalog, "tput", (), seeds=(SEEDS[0],), qstats=pruned)
        assert pruned.partitions_scanned == 1

    median_speedup = row_s / store_s if store_s > 0 else float("inf")
    bins_speedup = row_bin_s / store_bin_s if store_bin_s > 0 else float("inf")

    bench.record("store.row_median_dl", [row_s])
    bench.record(
        "store.pushdown_median_dl", [store_s],
        counters={
            "store.bytes_decoded": qstats.bytes_decoded,
            "store.columns_decoded": qstats.columns_decoded,
            "store.predicates_short_circuited": qstats.predicates_short_circuited,
        },
    )
    bench.record("store.row_speed_bins", [row_bin_s])
    bench.record("store.pushdown_speed_bins", [store_bin_s])

    rows = [
        [
            "median DL tput (V, driving)",
            f"{row_s * 1e3:.1f}", f"{store_s * 1e3:.1f}",
            f"{median_speedup:.0f}x",
        ],
        [
            "speed-bin sample counts",
            f"{row_bin_s * 1e3:.1f}", f"{store_bin_s * 1e3:.1f}",
            f"{bins_speedup:.0f}x",
        ],
    ]
    report(
        "store_query",
        render_table(
            ["query", "row path (ms)", "store path (ms)", "speedup"],
            rows,
        )
        + f"\nseeds: {len(SEEDS)}  rows/partition: "
        f"{len(dataset.throughput_samples)} tput samples"
        + f"\npushdown: {qstats.columns_decoded} columns decoded, "
        f"{qstats.predicates_short_circuited} predicates answered by stats",
    )

    # The acceptance bar: pushdown beats row load+filter by at least 5x
    # (self-relative), and neither store path regressed past the committed
    # baseline (relative gate; record-only off the reference machine).
    assert median_speedup >= 5.0, (
        f"store path only {median_speedup:.1f}x faster than the row path"
    )
    bench.gate("store.pushdown_median_dl")
    bench.gate("store.pushdown_speed_bins")
