"""Fig. 4 — per-technology throughput and RTT CDFs while driving.

Paper anchors: mmWave DL can exceed 1 Gbps while driving but with a deep low
tail; T-Mobile midband reaches ~760 Mbps DL and fluctuates hugely (40% of
samples below 2 Mbps); midband RTT below 5G-low and 4G RTTs; Verizon's edge
servers cut RTT sharply (mmWave+edge median 18 ms).
"""

from repro.analysis.performance import (
    edge_vs_cloud_rtt,
    per_technology_rtt,
    per_technology_throughput,
)
from repro.net.servers import ServerKind
from repro.radio.operators import Operator
from repro.radio.technology import RadioTechnology
from repro.reporting.tables import render_table


def _compute(dataset):
    tput = {
        (op, d): per_technology_throughput(dataset, op, d)
        for op in Operator
        for d in ("downlink", "uplink")
    }
    rtt = {op: per_technology_rtt(dataset, op) for op in Operator}
    edge = edge_vs_cloud_rtt(dataset)
    return tput, rtt, edge


def test_fig4_per_technology(benchmark, dataset, report):
    tput, rtt, edge = benchmark.pedantic(_compute, args=(dataset,), rounds=1, iterations=1)

    blocks = []
    for op in Operator:
        rows = []
        for tech in RadioTechnology:
            cdf_dl = tput[(op, "downlink")].get(tech)
            cdf_ul = tput[(op, "uplink")].get(tech)
            cdf_rtt = rtt[op].get(tech)
            rows.append([
                tech.label,
                f"{cdf_dl.median:.1f}" if cdf_dl else "-",
                f"{cdf_dl.maximum:.0f}" if cdf_dl else "-",
                f"{cdf_ul.median:.1f}" if cdf_ul else "-",
                f"{cdf_rtt.median:.0f}" if cdf_rtt else "-",
            ])
        blocks.append(render_table(
            ["tech", "DL med", "DL max", "UL med", "RTT med"],
            rows, title=f"Fig. 4 ({op.label})",
        ))
    report("fig4_per_technology", "\n\n".join(blocks))

    # T-Mobile midband: high ceiling, huge fluctuation (§5.2 obs. 3).
    t_mid = tput[(Operator.TMOBILE, "downlink")].get(RadioTechnology.NR_MID)
    assert t_mid is not None
    # Paper: up to 760 Mbps over the full 8-day dataset; at bench scale we
    # only require the heavy upper tail to be present.
    assert t_mid.maximum > 150.0
    assert t_mid.prob_below(5.0) > 0.15
    # Midband DL ceiling: T-Mobile above Verizon and AT&T (§5.2 obs. 3).
    v_mid = tput[(Operator.VERIZON, "downlink")].get(RadioTechnology.NR_MID)
    if v_mid is not None:
        assert t_mid.maximum > v_mid.maximum * 0.8
    # RTT: midband below LTE for every operator with data (Fig. 4 right).
    for op in Operator:
        cdfs = rtt[op]
        if RadioTechnology.NR_MID in cdfs and RadioTechnology.LTE in cdfs:
            assert cdfs[RadioTechnology.NR_MID].median < cdfs[RadioTechnology.LTE].median
    # Verizon edge vs cloud RTT (§5.2): edge wins on shared technologies.
    if ServerKind.EDGE in edge and ServerKind.CLOUD in edge:
        shared = set(edge[ServerKind.EDGE]) & set(edge[ServerKind.CLOUD])
        for tech in shared:
            assert edge[ServerKind.EDGE][tech].median < edge[ServerKind.CLOUD][tech].median
