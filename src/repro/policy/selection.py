"""Technology selection: which deployed technology actually serves a UE.

Combines the deployment (what exists at this location) with the operator's
policy profile (what the scheduler grants for this traffic).  Selections are
*sticky per zone and traffic profile*: the serving configuration changes at
handovers, not at every sample, matching how real RRC state behaves and how
the paper measures coverage in miles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.rng import choose_weighted

from repro.geo.regions import RegionType
from repro.policy.profiles import DEFAULT_POLICY_PROFILES, PolicyProfile, TrafficProfile
from repro.radio.deployment import DeploymentZone
from repro.radio.operators import Operator
from repro.radio.technology import RadioTechnology

__all__ = ["TechnologySelector"]


def _best_deployed_4g(zone: DeploymentZone) -> RadioTechnology:
    """The most capable 4G technology deployed in a zone (LTE always is)."""
    if RadioTechnology.LTE_A in zone.deployed:
        return RadioTechnology.LTE_A
    return RadioTechnology.LTE


def _cascade_down(zone: DeploymentZone, target: RadioTechnology) -> RadioTechnology:
    """Resolve ``target`` to a technology actually deployed in ``zone``,
    walking down the capability ranking if needed."""
    candidates = sorted(zone.deployed, key=lambda t: t.rank, reverse=True)
    for tech in candidates:
        if tech.rank <= target.rank:
            return tech
    return RadioTechnology.LTE


@dataclass
class TechnologySelector:
    """Per-operator, per-UE serving-technology decision maker.

    Examples
    --------
    The selector is deterministic per (zone, traffic profile) within one UE
    session: repeated queries while driving through a zone return the same
    serving technology.
    """

    operator: Operator
    rng: np.random.Generator
    profile: PolicyProfile | None = None
    _sticky: dict[tuple[int, TrafficProfile], RadioTechnology] = field(
        default_factory=dict, repr=False
    )

    def __post_init__(self) -> None:
        if self.profile is None:
            self.profile = DEFAULT_POLICY_PROFILES[self.operator]
        elif self.profile.operator is not self.operator:
            raise ValueError(
                f"profile for {self.profile.operator} used with {self.operator}"
            )

    def select(self, zone: DeploymentZone, traffic: TrafficProfile) -> RadioTechnology:
        """Serving technology for this zone under the given traffic profile."""
        key = (zone.index, traffic)
        cached = self._sticky.get(key)
        if cached is not None:
            return cached
        tech = self._decide(zone, traffic)
        self._sticky[key] = tech
        # Keep the sticky cache bounded; old zones are never revisited.
        if len(self._sticky) > 256:
            for old_key in list(self._sticky)[:-128]:
                del self._sticky[old_key]
        return tech

    def _decide(self, zone: DeploymentZone, traffic: TrafficProfile) -> RadioTechnology:
        if traffic is TrafficProfile.BACKLOGGED_DL:
            if self.rng.random() < self.profile.dl_hold_back_prob:
                return _cascade_down(zone, RadioTechnology.NR_LOW)
            return zone.best_tech

        if traffic is TrafficProfile.BACKLOGGED_UL:
            rule = self.profile.ul_demotion[zone.best_tech]
            target = choose_weighted(self.rng, list(rule.keys()), list(rule.values()))
            return _cascade_down(zone, target)

        # Idle / keep-alive traffic: conservative upgrades only.
        if (
            zone.best_tech is RadioTechnology.NR_MMWAVE
            and zone.region is RegionType.CITY
            and self.rng.random() < self.profile.idle_mmwave_city_prob
        ):
            return RadioTechnology.NR_MMWAVE
        upgrade_prob = self.profile.idle_5g_upgrade_prob[zone.timezone]
        if zone.best_tech.is_5g and self.rng.random() < upgrade_prob:
            # Idle upgrades land on the best non-mmWave NR layer deployed.
            if zone.best_tech is RadioTechnology.NR_MMWAVE:
                return _cascade_down(zone, RadioTechnology.NR_MID)
            return zone.best_tech
        return _best_deployed_4g(zone)
