"""Operator technology-selection policies.

Operators do not simply serve the best deployed technology: the paper's
central methodological finding (§4.1) is that a UE's serving technology
depends on its *traffic*.  Passive, lightly loaded UEs camp on LTE/LTE-A;
backlogged downlink traffic gets upgraded to high-speed 5G where deployed;
backlogged uplink traffic is often demoted to 5G-low or LTE-A (§4.2).
"""

from repro.policy.profiles import PolicyProfile, DEFAULT_POLICY_PROFILES, TrafficProfile
from repro.policy.selection import TechnologySelector

__all__ = [
    "TrafficProfile",
    "PolicyProfile",
    "DEFAULT_POLICY_PROFILES",
    "TechnologySelector",
]
