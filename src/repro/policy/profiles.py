"""Calibrated per-operator technology-selection policy profiles.

Each profile answers: *given the set of technologies deployed at the UE's
location, which one actually serves, for a given traffic profile?*

Calibration targets:

* **Idle/keep-alive traffic** (Fig. 1, the handover-logger view): AT&T keeps
  idle UEs on LTE/LTE-A along the whole route; Verizon mostly does too;
  T-Mobile's behaviour is *regional* — the paper observed the passive and
  active views agreeing in the east half of the country but diverging in the
  west half (§4.1).
* **Backlogged uplink** (Fig. 2b): all carriers show less high-speed 5G in
  the uplink; Verizon and AT&T additionally show less 5G *overall* in the
  uplink, preferring 5G-low or LTE-A.
* mmWave under idle/ICMP traffic is rare and city-bound (Fig. 8's missing
  mmWave points except near 0 mph; §5.1's AT&T RTT-over-LTE anecdote).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.geo.timezones import Timezone
from repro.radio.operators import Operator
from repro.radio.technology import RadioTechnology

__all__ = ["TrafficProfile", "DemotionRule", "PolicyProfile", "DEFAULT_POLICY_PROFILES"]

_LTE = RadioTechnology.LTE
_LTE_A = RadioTechnology.LTE_A
_NR_LOW = RadioTechnology.NR_LOW
_NR_MID = RadioTechnology.NR_MID
_NR_MM = RadioTechnology.NR_MMWAVE


class TrafficProfile(enum.Enum):
    """The UE's traffic pattern, as seen by the operator's scheduler."""

    #: 38-byte ICMP every 200 ms (handover-logger keep-alive) or a ping test.
    IDLE_PING = "idle"
    #: Saturating TCP download (nuttcp DL, video streaming, cloud gaming).
    BACKLOGGED_DL = "backlogged_dl"
    #: Saturating TCP upload (nuttcp UL, AR/CAV frame offload).
    BACKLOGGED_UL = "backlogged_ul"


#: A demotion rule: probabilities of the technology that *actually* serves
#: when ``source`` is the best deployed technology.  Probabilities must sum
#: to 1; targets not deployed at a location cascade downward at selection
#: time.
DemotionRule = dict[RadioTechnology, float]


def _rule(**kw: float) -> DemotionRule:
    by_name = {t.name.lower(): t for t in RadioTechnology}
    rule = {by_name[k]: v for k, v in kw.items()}
    total = sum(rule.values())
    if abs(total - 1.0) > 1e-9:
        raise ValueError(f"demotion rule sums to {total}")
    return rule


@dataclass(frozen=True)
class PolicyProfile:
    """One operator's selection behaviour across traffic profiles."""

    operator: Operator
    #: Backlogged-UL serving outcome given the best deployed technology.
    ul_demotion: dict[RadioTechnology, DemotionRule]
    #: Probability an idle UE is upgraded to a deployed 5G tech at all,
    #: by timezone (T-Mobile's east/west split lives here).
    idle_5g_upgrade_prob: dict[Timezone, float]
    #: Probability an idle UE in a city is served by deployed mmWave.
    idle_mmwave_city_prob: float = 0.0
    #: Probability a backlogged-DL UE is *not* upgraded to the best tech
    #: (momentary policy conservatism; keeps active coverage slightly below
    #: the deployment ceiling).
    dl_hold_back_prob: float = 0.04


DEFAULT_POLICY_PROFILES: dict[Operator, PolicyProfile] = {
    Operator.VERIZON: PolicyProfile(
        operator=Operator.VERIZON,
        ul_demotion={
            _NR_MM: _rule(nr_mmwave=0.25, nr_mid=0.15, nr_low=0.30, lte_a=0.30),
            _NR_MID: _rule(nr_mid=0.40, nr_low=0.25, lte_a=0.35),
            _NR_LOW: _rule(nr_low=0.60, lte_a=0.40),
            _LTE_A: _rule(lte_a=1.0),
            _LTE: _rule(lte=1.0),
        },
        idle_5g_upgrade_prob={tz: 0.12 for tz in Timezone},
        idle_mmwave_city_prob=0.18,
    ),
    Operator.TMOBILE: PolicyProfile(
        operator=Operator.TMOBILE,
        ul_demotion={
            _NR_MM: _rule(nr_mmwave=0.40, nr_mid=0.30, nr_low=0.30),
            _NR_MID: _rule(nr_mid=0.60, nr_low=0.40),
            _NR_LOW: _rule(nr_low=0.90, lte_a=0.10),
            _LTE_A: _rule(lte_a=1.0),
            _LTE: _rule(lte=1.0),
        },
        # East half (Central/Eastern) upgrades idle UEs much more readily —
        # the paper's Fig. 1c/1f agreement in the east, divergence in the
        # west.
        idle_5g_upgrade_prob={
            Timezone.PACIFIC: 0.15,
            Timezone.MOUNTAIN: 0.15,
            Timezone.CENTRAL: 0.85,
            Timezone.EASTERN: 0.85,
        },
        idle_mmwave_city_prob=0.10,
    ),
    Operator.ATT: PolicyProfile(
        operator=Operator.ATT,
        ul_demotion={
            _NR_MM: _rule(nr_mmwave=0.30, nr_low=0.30, lte_a=0.40),
            _NR_MID: _rule(nr_mid=0.40, nr_low=0.30, lte_a=0.30),
            _NR_LOW: _rule(nr_low=0.55, lte_a=0.45),
            _LTE_A: _rule(lte_a=1.0),
            _LTE: _rule(lte=1.0),
        },
        # AT&T never upgraded the passive logger: LTE/LTE-A only (Fig. 1d).
        idle_5g_upgrade_prob={tz: 0.0 for tz in Timezone},
        # ...but a handful of city mmWave RTT samples exist (Fig. 8).
        idle_mmwave_city_prob=0.08,
    ),
}
