"""Inferring operator policies back from measurement data.

§4.1 ends with conjectures: *"operators might be conservative and do not
upgrade to 5G when the network traffic demand is low"* and *"operators are
more willing to upgrade UEs to high-speed 5G in the presence of heavy
downlink traffic"*.  This module turns those conjectures into estimators a
measurement dataset can answer quantitatively:

* the **idle-upgrade rate** — how often a passively camped UE sits on 5G in
  places where active probing proves 5G is deployed (per timezone: T-Mobile's
  east/west policy split becomes directly visible);
* the **uplink demotion rate** — how often a location whose downlink test ran
  on high-speed 5G served the uplink test with something slower.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.campaign.dataset import DriveDataset
from repro.errors import AnalysisError
from repro.geo.timezones import Timezone
from repro.radio.operators import Operator

__all__ = ["IdleUpgradeEstimate", "estimate_idle_upgrade_rates", "estimate_ul_demotion_rate"]

#: Spatial bin used to co-locate passive and active observations (meters).
_LOCATION_BIN_M = 2_000.0


@dataclass(frozen=True)
class IdleUpgradeEstimate:
    """Estimated idle 5G-upgrade behaviour for one operator."""

    operator: Operator
    #: P(passive logger on 5G | active tests saw 5G here), per timezone.
    rate_by_timezone: dict[Timezone, float]
    #: Number of co-located bins backing each estimate.
    support_by_timezone: dict[Timezone, int]

    @property
    def overall_rate(self) -> float:
        total = sum(self.support_by_timezone.values())
        if total == 0:
            raise AnalysisError("no co-located observations")
        return sum(
            self.rate_by_timezone[tz] * self.support_by_timezone[tz]
            for tz in self.rate_by_timezone
        ) / total


def estimate_idle_upgrade_rates(
    dataset: DriveDataset, operator: Operator
) -> IdleUpgradeEstimate:
    """Estimate how readily an operator upgrades idle UEs to deployed 5G.

    For each ~2 km location bin where the *active* throughput tests observed
    5G service (proof of deployment), check whether the *passive*
    handover-logger camped on 5G there too.
    """
    # Active view: bins where 5G provably exists.
    active_5g_bins: dict[int, Timezone] = {}
    for s in dataset.tput(operator=operator, static=False):
        if s.tech.is_5g:
            active_5g_bins[int(s.mark_m / _LOCATION_BIN_M)] = s.timezone

    # Passive view per bin: was the logger on 5G for most of the bin?
    passive_5g_weight: dict[int, float] = {}
    passive_weight: dict[int, float] = {}
    for seg in dataset.passive_coverage:
        if seg.operator is not operator:
            continue
        first = int(seg.start_m / _LOCATION_BIN_M)
        last = int(seg.end_m / _LOCATION_BIN_M)
        for b in range(first, last + 1):
            if b not in active_5g_bins:
                continue
            lo = max(seg.start_m, b * _LOCATION_BIN_M)
            hi = min(seg.end_m, (b + 1) * _LOCATION_BIN_M)
            overlap = max(hi - lo, 0.0)
            passive_weight[b] = passive_weight.get(b, 0.0) + overlap
            if seg.tech.is_5g:
                passive_5g_weight[b] = passive_5g_weight.get(b, 0.0) + overlap

    hits: dict[Timezone, int] = {tz: 0 for tz in Timezone}
    support: dict[Timezone, int] = {tz: 0 for tz in Timezone}
    for b, tz in active_5g_bins.items():
        weight = passive_weight.get(b, 0.0)
        if weight <= 0.0:
            continue
        support[tz] += 1
        if passive_5g_weight.get(b, 0.0) / weight > 0.5:
            hits[tz] += 1
    if sum(support.values()) == 0:
        raise AnalysisError(f"no co-located passive/active bins for {operator}")
    rates = {
        tz: (hits[tz] / support[tz]) if support[tz] else 0.0 for tz in Timezone
    }
    return IdleUpgradeEstimate(
        operator=operator, rate_by_timezone=rates, support_by_timezone=support
    )


def estimate_ul_demotion_rate(dataset: DriveDataset, operator: Operator) -> float:
    """P(uplink served by something below high-speed 5G | downlink test at
    the same ~2 km location ran on high-speed 5G).

    The paper's Fig. 2b conjecture quantified: values near 0 mean the
    operator grants high-speed 5G symmetrically; values near 1 mean uplink
    backlogs are demoted.
    """
    dl_hs_bins: set[int] = set()
    for s in dataset.tput(operator=operator, direction="downlink", static=False):
        if s.tech.is_high_throughput:
            dl_hs_bins.add(int(s.mark_m / _LOCATION_BIN_M))
    if not dl_hs_bins:
        raise AnalysisError(f"no high-speed-5G downlink locations for {operator}")

    demoted = 0
    kept = 0
    for s in dataset.tput(operator=operator, direction="uplink", static=False):
        if int(s.mark_m / _LOCATION_BIN_M) not in dl_hs_bins:
            continue
        if s.tech.is_high_throughput:
            kept += 1
        else:
            demoted += 1
    total = demoted + kept
    if total == 0:
        raise AnalysisError(f"no co-located uplink samples for {operator}")
    return demoted / total
