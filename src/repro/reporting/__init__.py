"""Plain-text rendering of tables and figure summaries for the benchmarks."""

from repro.reporting.tables import render_table

__all__ = ["render_table"]
