"""ASCII rendering of Fig. 1's route-coverage strips.

The paper's Fig. 1 shows, per operator and per logging method, a coloured
strip of the technology observed along the LA→Boston route.  This renderer
produces the text equivalent — one character per distance bin — so the
passive/active disparity is visible in a terminal or a report file.
"""

from __future__ import annotations

from repro.analysis.coverage import route_technology_strip
from repro.campaign.dataset import DriveDataset
from repro.radio.operators import Operator
from repro.radio.technology import RadioTechnology

__all__ = ["TECH_GLYPHS", "render_strip", "render_fig1"]

#: One glyph per technology; '.' marks bins with no observation.
TECH_GLYPHS: dict[RadioTechnology, str] = {
    RadioTechnology.LTE: "l",
    RadioTechnology.LTE_A: "L",
    RadioTechnology.NR_LOW: "n",
    RadioTechnology.NR_MID: "N",
    RadioTechnology.NR_MMWAVE: "M",
}

_NO_DATA = "."


def render_strip(
    dataset: DriveDataset,
    operator: Operator,
    view: str,
    bin_km: float = 50.0,
    width: int | None = None,
) -> str:
    """One operator/view strip as a glyph string (west → east).

    Parameters
    ----------
    bin_km:
        Distance per glyph.  50 km gives a ~115-character strip for the
        full route.
    width:
        Optional re-binning to exactly this many characters.
    """
    strip = route_technology_strip(dataset, operator, view=view, bin_km=bin_km)
    glyphs = [TECH_GLYPHS[t] if t is not None else _NO_DATA for _, t in strip]
    if width is not None and len(glyphs) > width:
        # Majority re-bin down to the requested width.
        out = []
        per = len(glyphs) / width
        for i in range(width):
            seg = glyphs[int(i * per): max(int((i + 1) * per), int(i * per) + 1)]
            non_empty = [g for g in seg if g != _NO_DATA]
            out.append(max(set(non_empty), key=non_empty.count) if non_empty else _NO_DATA)
        glyphs = out
    return "".join(glyphs)


def render_fig1(dataset: DriveDataset, bin_km: float = 50.0) -> str:
    """The full Fig. 1: both views for all operators, plus a legend."""
    lines = ["Fig. 1 — technology along the route (LA → Boston)", ""]
    legend = "  ".join(f"{g}={t.label}" for t, g in TECH_GLYPHS.items())
    lines.append(f"legend: {legend}  .=no data")
    lines.append("")
    for op in Operator:
        for view in ("passive", "active"):
            strip = render_strip(dataset, op, view, bin_km=bin_km)
            lines.append(f"{op.code} {view:>7}: {strip}")
        lines.append("")
    return "\n".join(lines)
