"""Fixed-width text tables.

The benchmark harness prints the same rows the paper reports, side by side
with the paper's values; this renderer keeps those printouts aligned and
greppable in ``bench_output.txt``.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["render_table", "format_value"]


def format_value(value: object, precision: int = 2) -> str:
    """Render one cell: floats with fixed precision, everything else via str."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.{precision}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
    precision: int = 2,
) -> str:
    """Render a fixed-width table.

    >>> print(render_table(['a', 'b'], [[1, 2.5]]))
    a | b
    --+-----
    1 | 2.50
    """
    cells = [[format_value(v, precision) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(widths[i]) for i, h in enumerate(headers)).rstrip())
    lines.append("-+-".join("-" * w for w in widths))
    for row in cells:
        lines.append(" | ".join(c.ljust(widths[i]) for i, c in enumerate(row)).rstrip())
    return "\n".join(lines)
