"""Machine-readable figure-series export.

The benchmark harness prints human-readable tables; plotting tools want the
underlying series.  This module exports, for every figure the library
reproduces, the (x, y) series / scatter points / bar groups as plain dicts,
and can write the whole bundle as JSON for matplotlib/vega/gnuplot scripts.
"""

from __future__ import annotations

import json
import pathlib

from repro.analysis import (
    coverage,
    geodiversity,
    handovers,
    longterm,
    opdiversity,
    performance,
)
from repro.analysis.cdf import EmpiricalCDF
from repro.campaign.dataset import DriveDataset
from repro.radio.operators import Operator
from repro.radio.technology import ALL_TECHNOLOGIES

__all__ = ["figure_series", "export_figures_json"]


def _cdf_series(cdf: EmpiricalCDF, points: int = 150) -> dict:
    xs, ys = cdf.series(points=points)
    return {"x": [float(v) for v in xs], "y": [float(v) for v in ys]}


def figure_series(dataset: DriveDataset) -> dict:
    """Build the full figure bundle as nested plain-python dicts.

    Keys are figure identifiers (``fig2a``, ``fig3``, ``fig4``, ...); values
    hold labelled series ready for any plotting frontend.
    """
    bundle: dict = {}

    # Fig. 2a: coverage bars.
    bundle["fig2a"] = {
        op.label: {
            t.label: coverage.active_coverage_shares(dataset, op).shares.get(t, 0.0)
            for t in ALL_TECHNOLOGIES
        }
        for op in Operator
    }

    # Fig. 3: static vs driving CDFs.
    fig3 = {}
    for op in Operator:
        r = performance.static_vs_driving(dataset, op)
        fig3[op.label] = {
            "static_dl": _cdf_series(r.static_dl),
            "driving_dl": _cdf_series(r.driving_dl),
            "static_ul": _cdf_series(r.static_ul),
            "driving_ul": _cdf_series(r.driving_ul),
            "static_rtt": _cdf_series(r.static_rtt),
            "driving_rtt": _cdf_series(r.driving_rtt),
        }
    bundle["fig3"] = fig3

    # Fig. 4: per-technology CDFs (downlink + RTT).
    fig4 = {}
    for op in Operator:
        tput = performance.per_technology_throughput(dataset, op, "downlink")
        rtt = performance.per_technology_rtt(dataset, op)
        fig4[op.label] = {
            "tput_dl": {t.label: _cdf_series(c) for t, c in tput.items()},
            "rtt": {t.label: _cdf_series(c) for t, c in rtt.items()},
        }
    bundle["fig4"] = fig4

    # Fig. 5: per-timezone throughput CDFs.
    bundle["fig5"] = {
        op.label: {
            tz.label: _cdf_series(c)
            for tz, c in geodiversity.throughput_by_timezone(dataset, op, "downlink").items()
        }
        for op in Operator
    }

    # Fig. 6a: pairwise difference CDFs.
    fig6 = {}
    for first, second in opdiversity.OPERATOR_PAIRS:
        pd = opdiversity.paired_throughput_differences(dataset, first, second, "downlink")
        fig6[f"{first.code}-{second.code}"] = _cdf_series(pd.cdf)
    bundle["fig6a"] = fig6

    # Fig. 9: per-test mean CDFs.
    fig9 = {}
    for op in Operator:
        dl = longterm.per_test_throughput_stats(dataset, op, "downlink")
        fig9[op.label] = {
            "dl_means": _cdf_series(dl.means),
            "dl_stddev_pct": _cdf_series(dl.stddev_pct),
        }
    bundle["fig9"] = fig9

    # Fig. 10: scatter of per-test mean vs HS-5G fraction.
    bundle["fig10"] = {
        op.label: [
            {"hs5g": f, "tput": t}
            for f, t in longterm.throughput_vs_hs5g_fraction(dataset, op, "downlink")
        ]
        for op in Operator
    }

    # Fig. 11: handover rate/duration CDFs.
    fig11 = {}
    for op in Operator:
        fig11[op.label] = {
            "rate_per_mile": _cdf_series(handovers.handovers_per_mile(dataset, op, "downlink")),
            "duration_ms": _cdf_series(handovers.handover_durations(dataset, op)),
        }
    bundle["fig11"] = fig11

    # Fig. 12: ΔT1/ΔT2 CDFs.
    fig12 = {}
    for op in Operator:
        impact = handovers.handover_impact(dataset, op, "downlink")
        fig12[op.label] = {
            "delta_t1": _cdf_series(impact.delta_t1),
            "delta_t2": _cdf_series(impact.delta_t2),
        }
    bundle["fig12"] = fig12

    return bundle


def export_figures_json(dataset: DriveDataset, path: str | pathlib.Path) -> int:
    """Write the figure bundle as JSON; returns the number of figures."""
    bundle = figure_series(dataset)
    pathlib.Path(path).write_text(json.dumps(bundle, indent=1))
    return len(bundle)
