"""Benchmark registry, timing harness, and machine-readable reports.

The ROADMAP promises a system that runs "as fast as the hardware allows" —
which is only meaningful if performance is a *measured, replicated,
baselined* quantity, the same way the paper treats its drive-test metrics
(repeated nuttcp/ping rounds summarized as distributions, not one-off
numbers).  This package is that measurement layer:

* **registry** — named, fixed-seed, deterministic workloads registered by
  :mod:`repro.bench.workloads` (or by tests);
* **harness** — each workload sets up once in a scratch directory, then runs
  ``warmup + repeats`` times on :func:`time.perf_counter`; the summary keeps
  the full timing vector plus min/median/IQR.  *Min* is the headline
  estimator: wall-clock noise is strictly additive, so the minimum of
  repeats is the best available estimate of the true cost;
* **reports** — a schema-versioned ``BENCH_<suite>.json`` document carrying
  the timings, an environment fingerprint (python/platform/CPU count), and
  each workload's explanatory counters (shard-cache hit ratio, store
  ``bytes_decoded``) so every number ships with its *why*;
* **gating** — :mod:`repro.bench.compare` turns two reports into deltas and
  a pass/fail verdict against a relative regression budget, replacing
  absolute machine-dependent thresholds.

``python -m repro.bench`` exposes ``run`` / ``compare`` / ``gate``.
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
import statistics
import sys
import tempfile
import time
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from repro.errors import BenchError

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "BenchReport",
    "BenchResult",
    "benchmark",
    "environment_fingerprint",
    "get_benchmark",
    "measure",
    "register_benchmark",
    "registered_benchmarks",
    "run_benchmark",
    "run_suite",
    "unregister_benchmark",
]

#: Bump when the ``BENCH_*.json`` document shape changes incompatibly.
#: Reports of a different major schema refuse to compare or gate — a stale
#: baseline must fail loudly, not gate against reinterpreted fields.
BENCH_SCHEMA_VERSION = 1

#: Timings are rounded to nanosecond resolution on serialization: finer
#: digits are float noise, and fixed rounding keeps documents byte-stable.
_ROUND_DIGITS = 9


# -- registry ----------------------------------------------------------------

#: name -> (description, factory).  A factory is called once per benchmark
#: run with a scratch directory; it performs all untimed setup and returns
#: either ``run`` (the timed callable) or ``(run, finalize)`` where
#: ``finalize()`` runs after the last repeat and returns the workload's
#: explanatory counters (and may clean up global state).
_BENCHMARKS: dict[str, tuple[str, Callable]] = {}


def register_benchmark(name: str, description: str, factory: Callable) -> None:
    """Register one benchmark workload under a unique dotted name."""
    if name in _BENCHMARKS:
        raise BenchError(f"benchmark {name!r} is already registered")
    _BENCHMARKS[name] = (description, factory)


def benchmark(name: str, description: str):
    """Decorator form of :func:`register_benchmark`."""

    def deco(factory: Callable) -> Callable:
        register_benchmark(name, description, factory)
        return factory

    return deco


def unregister_benchmark(name: str) -> None:
    """Remove one benchmark (tests register throwaway workloads)."""
    _BENCHMARKS.pop(name, None)


def registered_benchmarks() -> list[str]:
    """Sorted names of every registered benchmark."""
    _load_builtin_workloads()
    return sorted(_BENCHMARKS)


def get_benchmark(name: str) -> tuple[str, Callable]:
    """``(description, factory)`` of one benchmark, or raise."""
    _load_builtin_workloads()
    try:
        return _BENCHMARKS[name]
    except KeyError:
        raise BenchError(
            f"unknown benchmark {name!r}; registered: {sorted(_BENCHMARKS)}"
        ) from None


def _load_builtin_workloads() -> None:
    # Imported lazily so importing repro.bench (e.g. from tests that only
    # exercise report/compare logic) stays light.
    from repro.bench import workloads  # noqa: F401


# -- environment -------------------------------------------------------------


def environment_fingerprint() -> dict:
    """Where a report's numbers were measured.

    Timings are only comparable between matching fingerprints; ``gate``
    warns (but still gates) on mismatch, because a CI baseline gating a CI
    run is the designed use and a laptop-vs-CI comparison is advisory.
    """
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": sys.platform,
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 1,
    }


# -- results -----------------------------------------------------------------


def _iqr(timings: Sequence[float]) -> float:
    if len(timings) < 2:
        return 0.0
    q1, _, q3 = statistics.quantiles(timings, n=4, method="inclusive")
    return q3 - q1


@dataclass
class BenchResult:
    """Timings and counters of one benchmark workload."""

    name: str
    warmup: int
    repeats: int
    timings_s: tuple[float, ...]
    counters: dict = field(default_factory=dict)

    @property
    def min_s(self) -> float:
        return min(self.timings_s)

    @property
    def median_s(self) -> float:
        return statistics.median(self.timings_s)

    @property
    def iqr_s(self) -> float:
        """Interquartile range — the honest noise bar around the median."""
        return _iqr(self.timings_s)

    def to_obj(self) -> dict:
        # Summary stats are derived from the *rounded* timings, so a
        # load/save round trip reproduces the document byte for byte.
        rounded = [round(t, _ROUND_DIGITS) for t in self.timings_s]
        return {
            "warmup": self.warmup,
            "repeats": self.repeats,
            "timings_s": rounded,
            "min_s": round(min(rounded), _ROUND_DIGITS),
            "median_s": round(statistics.median(rounded), _ROUND_DIGITS),
            "iqr_s": round(_iqr(rounded), _ROUND_DIGITS),
            "counters": dict(sorted(self.counters.items())),
        }

    @classmethod
    def from_obj(cls, name: str, obj: Mapping) -> "BenchResult":
        try:
            return cls(
                name=name,
                warmup=int(obj["warmup"]),
                repeats=int(obj["repeats"]),
                timings_s=tuple(float(t) for t in obj["timings_s"]),
                counters=dict(obj.get("counters", {})),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise BenchError(f"malformed benchmark entry {name!r}: {exc}") from exc


@dataclass
class BenchReport:
    """One suite run: schema, environment, and per-benchmark results."""

    suite: str
    environment: dict
    results: dict[str, BenchResult]
    schema_version: int = BENCH_SCHEMA_VERSION

    def to_obj(self) -> dict:
        return {
            "schema_version": self.schema_version,
            "suite": self.suite,
            "environment": dict(sorted(self.environment.items())),
            "benchmarks": {
                name: self.results[name].to_obj() for name in sorted(self.results)
            },
        }

    def save(self, path: str | os.PathLike) -> None:
        text = json.dumps(self.to_obj(), sort_keys=True, indent=2, allow_nan=False)
        pathlib.Path(path).write_text(text + "\n")

    @classmethod
    def from_obj(cls, obj: Mapping) -> "BenchReport":
        version = obj.get("schema_version")
        if version != BENCH_SCHEMA_VERSION:
            raise BenchError(
                f"bench schema {version!r} is not the supported "
                f"{BENCH_SCHEMA_VERSION}; regenerate the report"
            )
        benchmarks = obj.get("benchmarks")
        if not isinstance(benchmarks, Mapping):
            raise BenchError("bench report has no 'benchmarks' mapping")
        return cls(
            suite=str(obj.get("suite", "")),
            environment=dict(obj.get("environment", {})),
            results={
                name: BenchResult.from_obj(name, entry)
                for name, entry in benchmarks.items()
            },
        )

    @classmethod
    def load(cls, path: str | os.PathLike) -> "BenchReport":
        try:
            obj = json.loads(pathlib.Path(path).read_text())
        except OSError as exc:
            raise BenchError(f"cannot read bench report {path}: {exc}") from exc
        except ValueError as exc:
            raise BenchError(f"bench report {path} is not JSON: {exc}") from exc
        return cls.from_obj(obj)


# -- harness -----------------------------------------------------------------


def measure(
    run: Callable[[], object], warmup: int = 1, repeats: int = 5
) -> tuple[float, ...]:
    """Time one callable: ``warmup`` throwaway calls, then ``repeats``
    timed ones on the monotonic high-resolution clock."""
    if warmup < 0 or repeats < 1:
        raise BenchError(
            f"need warmup >= 0 and repeats >= 1, got {warmup}/{repeats}"
        )
    for _ in range(warmup):
        run()
    timings = []
    for _ in range(repeats):
        started = time.perf_counter()
        run()
        timings.append(time.perf_counter() - started)
    return tuple(timings)


def run_benchmark(name: str, warmup: int = 1, repeats: int = 5) -> BenchResult:
    """Set up one workload in a scratch directory and time it.

    Setup happens exactly once (untimed); ``run`` executes under
    :func:`measure`.  The workload's ``finalize`` (when provided) runs
    after the last repeat and supplies the counters.
    """
    _, factory = get_benchmark(name)
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as workdir:
        made = factory(pathlib.Path(workdir))
        run, finalize = made if isinstance(made, tuple) else (made, None)
        timings = measure(run, warmup=warmup, repeats=repeats)
        counters = dict(finalize()) if finalize is not None else {}
    return BenchResult(
        name=name,
        warmup=warmup,
        repeats=repeats,
        timings_s=tuple(timings),
        counters=counters,
    )


def run_suite(
    names: Sequence[str] | None = None,
    suite: str = "core",
    warmup: int = 1,
    repeats: int = 5,
    progress: Callable[[str], None] | None = None,
) -> BenchReport:
    """Run a set of benchmarks (default: all registered) into one report."""
    selected = list(names) if names is not None else registered_benchmarks()
    if not selected:
        raise BenchError("no benchmarks selected")
    results = {}
    for name in selected:
        if progress is not None:
            progress(name)
        results[name] = run_benchmark(name, warmup=warmup, repeats=repeats)
    return BenchReport(
        suite=suite, environment=environment_fingerprint(), results=results
    )
