"""``python -m repro.bench`` — run, compare, and gate benchmark suites.

Subcommands::

    run      measure registered workloads into a BENCH_<suite>.json
    compare  print current-vs-baseline deltas for two reports
    gate     exit nonzero if any benchmark regressed past the budget

``gate`` gates a freshly measured suite by default; pass ``--current`` to
gate an existing report instead (CI measures once, then gates the file it
just uploaded).  Exit codes: 0 pass, 1 measured regression, 2 invalid
input (unreadable report, schema mismatch, bad budget).
"""

from __future__ import annotations

import argparse
import sys

from repro.bench import BenchReport, registered_benchmarks, run_suite
from repro.bench.compare import compare_reports, gate_reports, parse_budget
from repro.errors import BenchError
from repro.reporting.tables import render_table


def _delta_rows(deltas) -> list[list[str]]:
    return [
        [
            d.name,
            f"{d.base_min_s * 1e3:.2f}",
            f"{d.cur_min_s * 1e3:.2f}",
            f"{d.cur_iqr_s * 1e3:.2f}",
            f"{d.ratio:.3f}x",
        ]
        for d in deltas
    ]


_DELTA_HEADER = [
    "benchmark", "base min (ms)", "cur min (ms)", "cur IQR (ms)", "ratio"
]


def _select_names(filters: list[str] | None) -> list[str] | None:
    if not filters:
        return None
    # Union across repeated --filter flags; every flag must match something,
    # so a typo fails loudly instead of silently shrinking the suite.
    selected = []
    for text in filters:
        names = [n for n in registered_benchmarks() if text in n]
        if not names:
            raise BenchError(
                f"--filter {text!r} matches no benchmark; "
                f"registered: {registered_benchmarks()}"
            )
        selected.extend(n for n in names if n not in selected)
    return selected


def cmd_run(args) -> int:
    report = run_suite(
        names=_select_names(args.filter),
        suite=args.suite,
        warmup=args.warmup,
        repeats=args.repeats,
        progress=lambda name: print(f"bench: {name} ...", flush=True),
    )
    report.save(args.out)
    rows = [
        [name, f"{r.min_s * 1e3:.2f}", f"{r.median_s * 1e3:.2f}",
         f"{r.iqr_s * 1e3:.2f}"]
        for name, r in sorted(report.results.items())
    ]
    print(render_table(
        ["benchmark", "min (ms)", "median (ms)", "IQR (ms)"], rows,
        title=f"suite {report.suite!r} -> {args.out}",
    ))
    return 0


def cmd_compare(args) -> int:
    current = BenchReport.load(args.current)
    baseline = BenchReport.load(args.baseline)
    comparison = compare_reports(current, baseline)
    print(render_table(_DELTA_HEADER, _delta_rows(comparison.deltas)))
    for name in comparison.only_current:
        print(f"only in current: {name}")
    for name in comparison.only_baseline:
        print(f"only in baseline: {name}")
    for mismatch in comparison.env_mismatches:
        print(f"environment mismatch: {mismatch}")
    return 0


def cmd_gate(args) -> int:
    budget = parse_budget(args.max_regression)
    baseline = BenchReport.load(args.against)
    if args.current is not None:
        current = BenchReport.load(args.current)
    else:
        current = run_suite(
            names=_select_names(args.filter),
            suite=args.suite,
            warmup=args.warmup,
            repeats=args.repeats,
            progress=lambda name: print(f"bench: {name} ...", flush=True),
        )
        if args.out:
            current.save(args.out)
    result = gate_reports(current, baseline, budget)
    print(render_table(
        _DELTA_HEADER, _delta_rows(result.deltas),
        title=f"gate budget {budget:.0%}",
    ))
    for warning in result.warnings:
        print(f"warning: {warning}")
    if result.passed:
        print(f"gate: PASS ({len(result.deltas)} benchmarks within budget)")
        return 0
    for d in result.failures:
        print(
            f"gate: FAIL {d.name}: {d.cur_min_s * 1e3:.2f} ms vs baseline "
            f"{d.base_min_s * 1e3:.2f} ms ({d.ratio:.3f}x > {1 + budget:.3f}x)"
        )
    return 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="run, compare, and gate repro benchmark suites",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_run_args(p):
        p.add_argument("--suite", default="core", help="suite label")
        p.add_argument("--filter", action="append", default=None,
                       help="only benchmarks whose name contains this "
                            "(repeatable; matches are unioned)")
        p.add_argument("--warmup", type=int, default=1)
        p.add_argument("--repeats", type=int, default=5)

    p_run = sub.add_parser("run", help="measure and write a BENCH report")
    add_run_args(p_run)
    p_run.add_argument("--out", default="BENCH_core.json")
    p_run.set_defaults(fn=cmd_run)

    p_cmp = sub.add_parser("compare", help="diff two BENCH reports")
    p_cmp.add_argument("current")
    p_cmp.add_argument("baseline")
    p_cmp.set_defaults(fn=cmd_compare)

    p_gate = sub.add_parser("gate", help="fail on regressions vs a baseline")
    p_gate.add_argument("--against", required=True,
                        help="baseline BENCH_*.json to gate against")
    p_gate.add_argument("--max-regression", default="25%",
                        help="relative budget, e.g. 25%% or 0.25")
    p_gate.add_argument("--current", default=None,
                        help="gate this report instead of measuring now")
    p_gate.add_argument("--out", default=None,
                        help="also save the freshly measured report here")
    add_run_args(p_gate)
    p_gate.set_defaults(fn=cmd_gate)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except BenchError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
