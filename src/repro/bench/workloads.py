"""The core benchmark suite: one workload per hot path grown so far.

Every workload is **fixed-seed and deterministic in what it computes** —
only the wall time varies between machines — and small enough that the
whole suite finishes in a couple of minutes on a CI container.  Each one
returns explanatory counters next to its timings, so a regression report
can say *what changed* (cache stopped hitting, query decoded more bytes)
rather than just *how much slower*.

Registered on import by :func:`repro.bench.registered_benchmarks`.
"""

from __future__ import annotations

import copy

import numpy as np

from repro.bench import benchmark

#: One knob for the whole suite: the engine/sweep workloads run the same
#: tiny campaign the CI smoke jobs use, the store workload a slightly
#: larger one so pushdown has bytes to skip.
_SEED = 42
_SCALE = 0.004
_WINDOW_KM = 600.0


@benchmark("obs.null_span", "cost of 50k disabled tracer spans")
def _obs_null_span(workdir):
    from repro.obs.trace import NULL_TRACER

    n_spans = 50_000
    span = NULL_TRACER.span  # bind once, as instrumented call sites do

    def run():
        for _ in range(n_spans):
            with span("bench.noop", index=0):
                pass

    return run, lambda: {"obs.spans": n_spans}


@benchmark("stats.bootstrap_ci", "2000-resample bootstrap CI over 64 values")
def _stats_bootstrap(workdir):
    from repro.sweep.stats import bootstrap_ci

    values = np.random.default_rng(_SEED).normal(50.0, 10.0, size=64)
    n_boot = 2000

    def run():
        # Fresh RNG per call: every repeat resamples identically.
        bootstrap_ci(values, n_boot=n_boot, rng=np.random.default_rng(7))

    return run, lambda: {"stats.n_values": len(values), "stats.n_boot": n_boot}


@benchmark("engine.serial", "serial engine run of the smoke-scale campaign")
def _engine_serial(workdir):
    from repro.campaign.runner import CampaignConfig
    from repro.engine import EngineConfig, PlannerParams, run_engine

    config = EngineConfig(
        campaign=CampaignConfig(
            seed=_SEED, scale=_SCALE, include_apps=False, include_static=False
        ),
        executor="serial",
        planner=PlannerParams(window_km=_WINDOW_KM),
    )
    last = {}

    def run():
        _, report = run_engine(config)
        last["report"] = report

    def finalize():
        report = last["report"]
        return {
            "engine.shards": len(report.shards),
            "engine.records": report.total_records,
        }

    return run, finalize


@benchmark("sweep.warm_cache", "2-seed sweep replayed from a warm shard cache")
def _sweep_warm_cache(workdir):
    from repro.engine import PlannerParams
    from repro.sweep import SweepConfig, run_sweep

    config = SweepConfig(
        seeds=(_SEED, _SEED + 1),
        scale=_SCALE,
        include_apps=False,
        include_static=False,
        executor="serial",
        planner=PlannerParams(window_km=_WINDOW_KM),
        cache_dir=str(workdir / "shard-cache"),
        bootstrap_samples=200,
    )
    run_sweep(config)  # cold run populates the cache, untimed
    last = {}

    def run():
        last["result"] = run_sweep(config)

    def finalize():
        stats = last["result"].cache.stats
        return {
            "cache.hits": stats.hits,
            "cache.misses": stats.misses,
            "cache.hit_ratio": stats.hit_ratio(),
        }

    return run, finalize


@benchmark("store.query", "pushdown median + count over a 4-seed catalog")
def _store_query(workdir):
    import repro
    from repro.radio.operators import Operator
    from repro.store import Catalog, Eq, QueryStats, query

    dataset = repro.generate_dataset(
        seed=_SEED, scale=0.01, include_apps=False, include_static=False
    )
    catalog = Catalog(workdir / "store")
    for seed in (42, 43, 44, 45):
        ds = copy.deepcopy(dataset)
        ds.seed = seed
        catalog.ingest(ds)
    last = {}

    def run():
        qstats = QueryStats()
        query.percentile(
            catalog, "tput", "tput_mbps", 0.5,
            where=(Eq("operator", Operator.VERIZON), Eq("static", False)),
            qstats=qstats,
        )
        query.count(
            catalog, "tput", (Eq("operator", Operator.TMOBILE),), qstats=qstats
        )
        last["qstats"] = qstats

    def finalize():
        qstats = last["qstats"]
        catalog.close()
        return {
            "store.bytes_decoded": qstats.bytes_decoded,
            "store.columns_decoded": qstats.columns_decoded,
            "store.partitions_scanned": qstats.partitions_scanned,
            "store.predicates_short_circuited": qstats.predicates_short_circuited,
        }

    return run, finalize
