"""Baseline comparison and regression gating for bench reports.

Both operations consume two :class:`~repro.bench.BenchReport` documents and
interpret noise the same way the harness does: each benchmark is compared
on its **min** timing (wall-clock noise is additive, so min-of-repeats is
the least contaminated estimate either report has), and the current
report's IQR is carried alongside so a human can see whether a delta
clears the measurement's own noise bar.

``gate`` turns the comparison into a verdict against a *relative* budget
(``--max-regression 25%``): a benchmark fails when its min timing exceeds
``baseline * (1 + budget)``.  Everything that is not a measured regression
— a benchmark present on only one side, an environment-fingerprint
mismatch — is a warning, not a failure: the gate's job is to catch code
making the same machine slower, and it must not rot into something people
bypass because it cries wolf on unrelated drift.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench import BenchReport
from repro.errors import BenchError

__all__ = ["Delta", "GateResult", "compare_reports", "gate_reports", "parse_budget"]


def parse_budget(text: str) -> float:
    """A regression budget: ``"25%"`` or ``"0.25"`` -> ``0.25``."""
    raw = text.strip()
    try:
        value = float(raw[:-1]) / 100.0 if raw.endswith("%") else float(raw)
    except ValueError:
        raise BenchError(f"invalid regression budget {text!r}") from None
    if value < 0:
        raise BenchError(f"regression budget must be >= 0, got {text!r}")
    return value


@dataclass
class Delta:
    """One benchmark's current-vs-baseline movement."""

    name: str
    base_min_s: float
    cur_min_s: float
    cur_iqr_s: float

    @property
    def ratio(self) -> float:
        """Current over baseline: > 1 is slower, < 1 is faster."""
        return self.cur_min_s / self.base_min_s if self.base_min_s > 0 else 1.0

    def exceeds(self, budget: float) -> bool:
        return self.ratio > 1.0 + budget


@dataclass
class Comparison:
    """Everything two reports say about each other."""

    deltas: list[Delta]
    only_current: list[str]
    only_baseline: list[str]
    env_mismatches: list[str]


def compare_reports(current: BenchReport, baseline: BenchReport) -> Comparison:
    """Pair up benchmarks by name and fingerprint the environments."""
    deltas = [
        Delta(
            name=name,
            base_min_s=baseline.results[name].min_s,
            cur_min_s=current.results[name].min_s,
            cur_iqr_s=current.results[name].iqr_s,
        )
        for name in sorted(set(current.results) & set(baseline.results))
    ]
    mismatches = [
        f"{key}: current={current.environment.get(key)!r} "
        f"baseline={baseline.environment.get(key)!r}"
        for key in sorted(set(current.environment) | set(baseline.environment))
        if current.environment.get(key) != baseline.environment.get(key)
    ]
    return Comparison(
        deltas=deltas,
        only_current=sorted(set(current.results) - set(baseline.results)),
        only_baseline=sorted(set(baseline.results) - set(current.results)),
        env_mismatches=mismatches,
    )


@dataclass
class GateResult:
    """Verdict of gating a current report against a baseline."""

    budget: float
    deltas: list[Delta]
    failures: list[Delta]
    warnings: list[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.failures


def gate_reports(
    current: BenchReport, baseline: BenchReport, max_regression: float
) -> GateResult:
    """Fail every benchmark whose min timing regressed past the budget."""
    if max_regression < 0:
        raise BenchError(f"max_regression must be >= 0, got {max_regression}")
    comparison = compare_reports(current, baseline)
    warnings = [
        f"environment mismatch ({m}); timings may not be comparable"
        for m in comparison.env_mismatches
    ]
    warnings += [
        f"benchmark {name!r} has no baseline entry; not gated"
        for name in comparison.only_current
    ]
    warnings += [
        f"baseline benchmark {name!r} missing from the current report"
        for name in comparison.only_baseline
    ]
    return GateResult(
        budget=max_regression,
        deltas=comparison.deltas,
        failures=[d for d in comparison.deltas if d.exceeds(max_regression)],
        warnings=warnings,
    )
