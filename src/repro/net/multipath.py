"""Multi-operator multipath aggregation — the paper's recommendation #2.

§5.4 / §8: *"performance under driving can benefit significantly from
multi-connectivity solutions, e.g., over Multipath TCP, that can aggregate
links from multiple operators"* and *"smartphone vendors should explore
multipath solutions over multiple cellular networks"*.

This module models an MPTCP-style layer over the concurrent per-operator
links the campaign produced.  Three schedulers:

* ``AGGREGATE`` — pool all subflows' capacity (MPTCP with a coupled
  congestion controller; an efficiency factor accounts for scheduling and
  head-of-line losses on asymmetric paths);
* ``BEST_PATH`` — always ride the instantaneously best operator (an ideal
  handover-free carrier switcher);
* ``REDUNDANT`` — duplicate traffic on every subflow: throughput of the best
  path, latency of the *minimum* across paths (the latency-critical-app
  strategy, e.g. RAVEN).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.campaign.dataset import DriveDataset
from repro.errors import AnalysisError
from repro.radio.operators import Operator

__all__ = ["MultipathScheduler", "MultipathResult", "simulate_multipath"]


class MultipathScheduler(enum.Enum):
    """Subflow scheduling strategy."""

    AGGREGATE = "aggregate"
    BEST_PATH = "best_path"
    REDUNDANT = "redundant"


#: Fraction of the pooled capacity an MPTCP aggregate realises on asymmetric
#: cellular paths (reordering, coupled congestion control).
_AGGREGATE_EFFICIENCY = 0.85


@dataclass(frozen=True)
class MultipathResult:
    """Outcome of a multipath simulation over concurrent samples."""

    scheduler: MultipathScheduler
    direction: str
    #: Multipath throughput per concurrent timestamp, Mbps.
    throughput_mbps: np.ndarray
    #: Per-operator single-path throughput at the same timestamps.
    single_path: dict[Operator, np.ndarray]

    @property
    def median_mbps(self) -> float:
        return float(np.median(self.throughput_mbps))

    def median_gain_over(self, operator: Operator) -> float:
        """Median per-timestamp gain over one operator's single path."""
        single = self.single_path[operator]
        mask = single > 0
        if not mask.any():
            raise AnalysisError(f"no positive samples for {operator}")
        return float(np.median(self.throughput_mbps[mask] / single[mask]))

    def outage_fraction(self, threshold_mbps: float = 5.0) -> float:
        """Fraction of timestamps below ``threshold_mbps`` — multipath's
        headline benefit is shrinking this (the paper's 35%-below-5 Mbps)."""
        return float(np.mean(self.throughput_mbps < threshold_mbps))


def _concurrent_matrix(
    dataset: DriveDataset, direction: str
) -> tuple[np.ndarray, list[Operator]]:
    """(timestamps × operators) throughput matrix from concurrent samples."""
    index: dict[float, dict[Operator, float]] = {}
    for s in dataset.tput(direction=direction, static=False):
        key = round(s.time_s * 2.0) / 2.0
        index.setdefault(key, {})[s.operator] = s.tput_mbps
    operators = list(Operator)
    rows = [
        [by_op[op] for op in operators]
        for by_op in index.values()
        if len(by_op) == len(operators)
    ]
    if not rows:
        raise AnalysisError("no timestamps with samples from all operators")
    return np.asarray(rows, dtype=float), operators


def simulate_multipath(
    dataset: DriveDataset,
    direction: str,
    scheduler: MultipathScheduler = MultipathScheduler.AGGREGATE,
) -> MultipathResult:
    """Replay the campaign's concurrent samples through a multipath layer.

    Uses only timestamps where all three operators have samples (the
    campaign runs tests concurrently, so this is nearly all of them).
    """
    matrix, operators = _concurrent_matrix(dataset, direction)
    if scheduler is MultipathScheduler.AGGREGATE:
        tput = matrix.sum(axis=1) * _AGGREGATE_EFFICIENCY
    elif scheduler is MultipathScheduler.BEST_PATH:
        tput = matrix.max(axis=1)
    else:  # REDUNDANT: goodput equals the best path's (others carry copies)
        tput = matrix.max(axis=1)
    return MultipathResult(
        scheduler=scheduler,
        direction=direction,
        throughput_mbps=tput,
        single_path={op: matrix[:, i] for i, op in enumerate(operators)},
    )
