"""Single-flow TCP throughput model (CUBIC-inspired).

The paper deliberately measured with **one** TCP CUBIC connection (nuttcp's
default) "to measure the performance that would be experienced by
applications ... instead of measuring peak performance" (§5).  A single flow
ramps slowly after losses and handovers, which is a large part of why driving
medians sit at a few tens of Mbps under links whose PHY capacity is hundreds.

We simulate the congestion window in the rate domain at the 500 ms tick
scale: slow-start doubling until the first loss, CUBIC's concave-convex
window growth between losses, multiplicative decrease (β = 0.7) on loss.
Loss events arise from link-layer residual errors (RLC gives up under deep
fades), from queue overflow whenever the flow saturates the link capacity,
and from handover interruptions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CubicFlow"]

#: CUBIC's multiplicative decrease factor.
_BETA = 0.7
#: CUBIC's scaling constant (window units: Mbit of in-flight data).
_CUBIC_C = 0.4
#: Probability per tick that a saturated queue drops (tail-drop AQM-less).
_SATURATION_LOSS_PROB = 0.35
#: Residual random loss per tick scales with BLER.
_BLER_LOSS_FACTOR = 0.35


@dataclass
class CubicFlow:
    """One long-lived TCP flow over a time-varying link.

    Call :meth:`advance` once per tick with the instantaneous link capacity
    and RTT; it returns the goodput achieved during that tick in Mbps.

    Examples
    --------
    >>> import numpy as np
    >>> flow = CubicFlow(rng=np.random.default_rng(0))
    >>> tput = [flow.advance(capacity_mbps=100.0, rtt_ms=50.0, dt_s=0.5,
    ...                      bler=0.05) for _ in range(20)]
    >>> max(tput) <= 100.0
    True
    """

    rng: np.random.Generator
    #: Initial window expressed as a rate seed (IW10 over a typical RTT).
    initial_rate_mbps: float = 1.2

    def __post_init__(self) -> None:
        self._w_mbit: float = self.initial_rate_mbps * 0.05  # window in Mbit
        self._w_max_mbit: float = 0.0
        self._slow_start = True
        self._ssthresh_mbit = float("inf")
        self._t_since_loss_s = 0.0

    @property
    def window_mbit(self) -> float:
        """Current congestion window in megabits of in-flight data."""
        return self._w_mbit

    def advance(
        self,
        capacity_mbps: float,
        rtt_ms: float,
        dt_s: float,
        bler: float,
        interruption_s: float = 0.0,
    ) -> float:
        """Advance the flow by one tick; return achieved goodput in Mbps.

        Parameters
        ----------
        capacity_mbps:
            Link capacity available to this flow during the tick.
        rtt_ms:
            Current round-trip time (window-to-rate conversion and growth
            pacing).
        dt_s:
            Tick duration in seconds.
        bler:
            Residual link error rate (drives random loss).
        interruption_s:
            Time within the tick during which the link was down (handover
            execution); no data flows then and a loss event may fire.
        """
        if capacity_mbps <= 0.0:
            raise ValueError(f"capacity must be positive, got {capacity_mbps}")
        if rtt_ms <= 0.0:
            raise ValueError(f"rtt must be positive, got {rtt_ms}")
        if not 0.0 <= interruption_s <= dt_s:
            raise ValueError("interruption must lie within the tick")

        rtt_s = rtt_ms / 1000.0
        rate = self._w_mbit / rtt_s
        saturated = rate >= capacity_mbps
        achieved = min(rate, capacity_mbps)

        # Handover interruption: scale goodput by available airtime; a long
        # interruption usually costs a loss event too.
        if interruption_s > 0.0:
            achieved *= 1.0 - interruption_s / dt_s
            if self.rng.random() < min(interruption_s / 0.1, 1.0) * 0.2:
                self._register_loss()
                return float(max(achieved, 0.0))

        # Loss processes.
        loss = False
        if saturated and self.rng.random() < _SATURATION_LOSS_PROB:
            loss = True
        elif self.rng.random() < min(bler * _BLER_LOSS_FACTOR, 0.9) * dt_s:
            loss = True

        if loss:
            self._register_loss()
        else:
            self._grow(rtt_s, dt_s, capacity_mbps)

        return float(max(achieved, 0.0))

    # -- internals -------------------------------------------------------

    def _register_loss(self) -> None:
        self._w_max_mbit = self._w_mbit
        self._w_mbit = max(self._w_mbit * _BETA, 0.05)
        self._ssthresh_mbit = self._w_mbit
        self._slow_start = False
        self._t_since_loss_s = 0.0

    def _grow(self, rtt_s: float, dt_s: float, capacity_mbps: float) -> None:
        if self._slow_start:
            # Double per RTT until ssthresh.
            factor = 2.0 ** (dt_s / rtt_s)
            self._w_mbit = min(self._w_mbit * factor, self._ssthresh_mbit)
            if self._w_mbit >= self._ssthresh_mbit:
                self._slow_start = False
            # Do not balloon absurdly past the pipe within a single tick.
            self._w_mbit = min(self._w_mbit, capacity_mbps * rtt_s * 2.0)
            return
        self._t_since_loss_s += dt_s
        k = (self._w_max_mbit * (1.0 - _BETA) / _CUBIC_C) ** (1.0 / 3.0)
        target = _CUBIC_C * (self._t_since_loss_s - k) ** 3 + self._w_max_mbit
        # CUBIC never shrinks the window during growth.
        self._w_mbit = max(self._w_mbit, min(target, capacity_mbps * rtt_s * 2.0))
