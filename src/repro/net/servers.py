"""Cloud and edge application servers.

The paper deployed (§3):

* two AWS EC2 **cloud** regions — California (used for tests in the Pacific
  and Mountain timezones) and Ohio (Central and Eastern timezones);
* five AWS Wavelength **edge** servers *inside Verizon's network* in Los
  Angeles, Las Vegas, Denver, Chicago, and Boston — used for Verizon tests
  near those cities, cloud otherwise; the other two operators always used
  cloud servers.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.geo.coords import LatLon, haversine_m
from repro.geo.route import Route
from repro.geo.timezones import Timezone
from repro.radio.operators import Operator

__all__ = ["ServerKind", "Server", "ServerRegistry", "EDGE_CITY_RADIUS_M"]


class ServerKind(enum.Enum):
    """Cloud datacentre vs in-network edge (Wavelength) server."""

    CLOUD = "cloud"
    EDGE = "edge"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True, slots=True)
class Server:
    """An application server endpoint."""

    name: str
    kind: ServerKind
    location: LatLon

    def distance_m(self, point: LatLon) -> float:
        """Great-circle distance from a UE position to this server."""
        return haversine_m(self.location, point)


#: A Verizon UE uses the Wavelength edge server while within this distance of
#: an edge city (the metro area where Wavelength zones terminate traffic).
EDGE_CITY_RADIUS_M = 60_000.0

_CLOUD_CALIFORNIA = Server("ec2-us-west (California)", ServerKind.CLOUD, LatLon(37.35, -121.96))
_CLOUD_OHIO = Server("ec2-us-east-2 (Ohio)", ServerKind.CLOUD, LatLon(39.96, -83.00))


class ServerRegistry:
    """Selects the application server for a test, per the paper's rules."""

    def __init__(self, route: Route) -> None:
        self._clouds = {
            Timezone.PACIFIC: _CLOUD_CALIFORNIA,
            Timezone.MOUNTAIN: _CLOUD_CALIFORNIA,
            Timezone.CENTRAL: _CLOUD_OHIO,
            Timezone.EASTERN: _CLOUD_OHIO,
        }
        self._edges = tuple(
            Server(f"wavelength-{city.name}", ServerKind.EDGE, city.location)
            for city in route.edge_server_cities()
        )

    @property
    def edge_servers(self) -> tuple[Server, ...]:
        return self._edges

    def cloud_for(self, tz: Timezone) -> Server:
        """The cloud server used for tests in a timezone."""
        return self._clouds[tz]

    def select(self, operator: Operator, position: LatLon, tz: Timezone) -> Server:
        """Server used for a test at ``position`` over ``operator``.

        Verizon gets the nearest edge server when within
        :data:`EDGE_CITY_RADIUS_M` of an edge city; everything else (and the
        other operators always) gets the timezone's cloud server.
        """
        if operator is Operator.VERIZON and self._edges:
            nearest = min(self._edges, key=lambda s: s.distance_m(position))
            if nearest.distance_m(position) <= EDGE_CITY_RADIUS_M:
                return nearest
        return self.cloud_for(tz)
