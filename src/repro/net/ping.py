"""ICMP RTT test, mirroring the paper's methodology.

Each RTT test ran for 20 s sending one ICMP echo every 200 ms (§5); the
handover-logger phones ran the same traffic continuously as a keep-alive.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import HANDOVER_LOGGER_PING_INTERVAL_S

__all__ = ["PingTest"]


@dataclass(frozen=True, slots=True)
class PingTest:
    """Configuration of an ICMP RTT test."""

    duration_s: float = 20.0
    interval_s: float = HANDOVER_LOGGER_PING_INTERVAL_S

    def __post_init__(self) -> None:
        if self.duration_s <= 0 or self.interval_s <= 0:
            raise ValueError("duration and interval must be positive")

    @property
    def sample_count(self) -> int:
        """Number of echo requests sent over the test."""
        return int(self.duration_s / self.interval_s)

    def sample_times_s(self) -> list[float]:
        """Send times of each echo relative to test start."""
        return [i * self.interval_s for i in range(self.sample_count)]
