"""Round-trip time model.

RTT decomposes into: wired path to the server (propagation over fibre plus
core-network overhead — small for in-network edge servers), the radio access
network's scheduling/HARQ latency (technology-dependent, lowest for mmWave's
short slots), and a driving-induced jitter component with a heavy tail
(paper: driving medians 60–76 ms with maxima of 2–3 *seconds*, Fig. 3b,
versus 8 ms minima for Verizon mmWave to an edge server, §5.2).

The paper also observes (Fig. 8) that RTT correlates with vehicle speed for
Verizon and T-Mobile but not AT&T, whose LTE RTTs are high at any speed —
modelled with a per-operator speed sensitivity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geo.coords import LatLon
from repro.net.servers import Server, ServerKind
from repro.radio.operators import Operator
from repro.radio.technology import RadioTechnology

__all__ = ["RttModel"]

#: Two-way propagation in fibre: ~2 ms RTT per 100 km of geodesic distance
#: (0.01 ms/km each way, doubled again for fibre path stretch).
_FIBRE_RTT_MS_PER_KM = 0.02

#: Fixed processing/routing overhead by server kind (ms, round trip).
_CORE_OVERHEAD_MS = {ServerKind.CLOUD: 12.0, ServerKind.EDGE: 2.0}

#: Driving jitter: lognormal median (ms) added on top of the base path.
_DRIVING_JITTER_MEDIAN_MS = 11.0
_DRIVING_JITTER_SIGMA = 0.8
_STATIC_JITTER_MEDIAN_MS = 2.5
_STATIC_JITTER_SIGMA = 0.5

#: Heavy-tail spike: probability per sample, and exponential mean (ms).
_SPIKE_PROB = 0.004
_SPIKE_MEAN_MS = 350.0
_SPIKE_CAP_MS = 3000.0

#: Per-operator sensitivity of jitter to speed (Fig. 8): Verizon and
#: T-Mobile RTTs grow with speed, AT&T's barely do.
_SPEED_SENSITIVITY = {
    Operator.VERIZON: 0.55,
    Operator.TMOBILE: 0.60,
    Operator.ATT: 0.10,
}

#: Per-operator scaling of the driving jitter (T-Mobile's core adds more
#: variable latency; Fig. 9 medians 64/82/81 ms for V/T/A).
_DRIVING_JITTER_SCALE = {
    Operator.VERIZON: 0.85,
    Operator.TMOBILE: 1.45,
    Operator.ATT: 1.0,
}

#: AT&T carries a fixed extra core latency on its 4G path (Fig. 8: LTE/LTE-A
#: RTTs higher than 5G in every speed bin; Fig. 3a: high static RTTs).
_ATT_4G_EXTRA_MS = 10.0


@dataclass
class RttModel:
    """Samples RTTs for one operator's UE."""

    operator: Operator
    rng: np.random.Generator

    def base_rtt_ms(self, server: Server, position: LatLon, tech: RadioTechnology) -> float:
        """Deterministic RTT floor: wired path + RAN scheduling latency."""
        path = server.distance_m(position) / 1000.0 * _FIBRE_RTT_MS_PER_KM
        ran = 2.0 * tech.ran_latency_ms  # grant + scheduling in each direction
        extra = _ATT_4G_EXTRA_MS if (self.operator is Operator.ATT and tech.is_4g) else 0.0
        return _CORE_OVERHEAD_MS[server.kind] + path + ran + extra

    def sample_rtt_ms(
        self,
        server: Server,
        position: LatLon,
        tech: RadioTechnology,
        speed_mph: float,
        static: bool = False,
        bler: float = 0.05,
    ) -> float:
        """One RTT sample (ICMP echo) in milliseconds.

        Parameters
        ----------
        static:
            True for the parked baseline measurements (small jitter, no
            speed effect).
        bler:
            Residual block error rate of the link; errors trigger HARQ/RLC
            retransmission delays.
        """
        base = self.base_rtt_ms(server, position, tech)
        if static:
            jitter = self.rng.lognormal(np.log(_STATIC_JITTER_MEDIAN_MS), _STATIC_JITTER_SIGMA)
        else:
            speed_factor = 1.0 + _SPEED_SENSITIVITY[self.operator] * max(speed_mph, 0.0) / 60.0
            median = _DRIVING_JITTER_MEDIAN_MS * speed_factor * _DRIVING_JITTER_SCALE[self.operator]
            jitter = self.rng.lognormal(np.log(median), _DRIVING_JITTER_SIGMA)
        rtt = base + jitter
        # Link-layer retransmissions under lossy conditions.
        if self.rng.random() < bler * 0.5:
            rtt += self.rng.exponential(30.0)
        # Rare deep spikes (RRC reestablishment, buffer excursions).
        if not static and self.rng.random() < _SPIKE_PROB:
            rtt += min(self.rng.exponential(_SPIKE_MEAN_MS), _SPIKE_CAP_MS)
        return float(rtt)
