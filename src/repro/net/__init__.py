"""End-to-end network substrate: servers, RTT model, TCP throughput model."""

from repro.net.servers import Server, ServerKind, ServerRegistry
from repro.net.latency import RttModel
from repro.net.tcp import CubicFlow
from repro.net.ping import PingTest

__all__ = ["Server", "ServerKind", "ServerRegistry", "RttModel", "CubicFlow", "PingTest"]
