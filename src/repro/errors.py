"""Exception hierarchy for the ``repro`` library.

All library-raised exceptions derive from :class:`ReproError`, so callers can
catch one base class to handle any failure originating here rather than a
built-in raised by our internals.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """A component was configured with invalid or inconsistent parameters."""


class RouteError(ReproError):
    """A route could not be constructed or a position query was invalid."""


class DeploymentError(ReproError):
    """A radio deployment model could not be built or queried."""


class LogFormatError(ReproError):
    """A log record or file did not match the expected format."""


class SyncError(ReproError):
    """App-layer and XCAL logs could not be matched/synchronised."""


class CampaignError(ReproError):
    """The drive campaign could not be scheduled or executed."""


class AnalysisError(ReproError):
    """An analysis was asked to run on unsuitable or empty data."""


class SweepError(ReproError):
    """A multi-seed replication sweep was misconfigured or failed.

    Raised for invalid sweep configurations (empty or duplicate seed lists,
    unknown statistic names) and for aggregation failures; per-shard
    execution failures inside a sweep surface as :class:`EngineError`.
    """


class StoreError(ReproError):
    """A columnar store file or catalog is invalid, truncated, or misused.

    Raised when a store file fails its magic/version/footer checks, a column
    chunk's byte length disagrees with its footer entry (truncation or
    corruption can never decode to garbage rows), or a query references an
    unknown table, column, or predicate value type.
    """


class BenchError(ReproError):
    """A benchmark run, report, or baseline comparison is invalid.

    Raised for unknown benchmark names, malformed or schema-incompatible
    ``BENCH_*.json`` documents, and invalid regression budgets.  A *measured
    regression* is not an error — it is a gate failure, reported as data.
    """


class EngineError(ReproError):
    """The sharded execution engine failed to plan, run, or merge a campaign.

    Raised when a shard exhausts its retry budget, a checkpoint is corrupt in
    a way that cannot be recovered by recomputation, or the merged dataset
    fails validation.  Carries the failing shard's index when one is known.
    """

    def __init__(self, message: str, shard_index: int | None = None) -> None:
        super().__init__(message)
        self.shard_index = shard_index
