"""repro.obs — structured tracing and metrics for the reproduction pipeline.

Three pieces, all dependency-free:

* :mod:`repro.obs.trace` — nested spans with monotonic timing, emitted as
  append-only JSONL that worker processes write independently;
* :mod:`repro.obs.metrics` — counter/gauge/histogram registries whose
  snapshots fold deterministically into run reports;
* :mod:`repro.obs.report` / ``python -m repro.obs`` — span-tree
  reconstruction, per-phase wall-time breakdowns, critical paths, top-N
  slowest shards/queries.

Tracing is opt-in everywhere (``trace_path=`` on `EngineConfig` and
`SweepConfig`, ``--trace`` on both CLIs); when off, :data:`NULL_TRACER`
makes every instrumentation point a no-op.
"""

from repro.obs.metrics import MetricsRegistry, merge_snapshots
from repro.obs.report import (
    SpanNode,
    TraceSummary,
    critical_path,
    load_summary,
    phase_breakdown,
    render_summary,
    top_spans,
    validate_trace,
)
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    TraceWriter,
    Tracer,
    get_tracer,
    iter_trace,
    reset_tracers,
)

__all__ = [
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "SpanNode",
    "TraceSummary",
    "TraceWriter",
    "Tracer",
    "critical_path",
    "get_tracer",
    "iter_trace",
    "load_summary",
    "merge_snapshots",
    "phase_breakdown",
    "render_summary",
    "reset_tracers",
    "top_spans",
    "validate_trace",
]
