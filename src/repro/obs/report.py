"""Trace analysis: span trees, phase breakdowns, critical paths, top-N.

This is the reader half of :mod:`repro.obs.trace`: it loads a JSONL trace
file (possibly written by many processes of one run), reconstructs the span
tree from the ``span_id``/``parent_id`` links, and derives the summaries
``python -m repro.obs`` prints:

* **per-phase breakdown** — the root span's direct children grouped by
  name, with the un-instrumented remainder reported as ``(untraced)`` so
  the per-phase walls always sum to the root's wall time *exactly*;
* **critical path** — the chain of spans, from the root down, that
  finished last at each level: the spans a faster machine would have to
  shorten for the run to finish earlier;
* **top-N slowest spans** per name family (shards, queries, merges);
* **merged metrics** — every metrics-snapshot record in the file folded
  with :func:`repro.obs.metrics.merge_snapshots`.

Validation is deliberately split from analysis: :func:`validate_trace`
returns structural problems (unparseable lines, missing fields, children
longer than their parent) without raising, so fault-injection tests can
assert a trace survived a crashing run intact.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.obs.metrics import merge_snapshots
from repro.obs.trace import iter_trace

__all__ = [
    "SpanNode",
    "TraceSummary",
    "critical_path",
    "load_summary",
    "phase_breakdown",
    "render_summary",
    "top_spans",
    "validate_trace",
]

#: Children may overrun their parent by this fraction (clock jitter between
#: ``perf_counter`` reads) before validation flags them.
_OVERRUN_TOLERANCE = 0.01


@dataclass
class SpanNode:
    """One span of a reconstructed trace tree."""

    name: str
    span_id: str
    parent_id: str | None
    ts: float
    dur_s: float
    pid: int
    status: str
    attrs: dict
    children: list["SpanNode"] = field(default_factory=list)
    #: True when ``parent_id`` named a span the file does not contain (the
    #: parent was lost — e.g. a killed worker); orphans are kept as roots.
    orphan: bool = False

    @property
    def end_ts(self) -> float:
        return self.ts + self.dur_s

    def walk(self):
        yield self
        for child in self.children:
            yield from child.walk()


@dataclass
class TraceSummary:
    """Everything the CLI needs from one trace file."""

    roots: list[SpanNode]
    spans: list[SpanNode]
    metrics: dict
    n_records: int
    n_pids: int
    orphans: int


_REQUIRED_SPAN_FIELDS = ("name", "span_id", "ts", "dur_s", "pid", "status")


def _span_records(path) -> tuple[list[dict], list[dict], list[str]]:
    """Split a trace file into span records, metric records, and problems."""
    spans: list[dict] = []
    metrics: list[dict] = []
    problems: list[str] = []
    try:
        for record in iter_trace(path):
            kind = record.get("kind")
            if kind == "span":
                missing = [f for f in _REQUIRED_SPAN_FIELDS if f not in record]
                if missing:
                    problems.append(
                        f"span record missing fields {missing}: {record}"
                    )
                    continue
                spans.append(record)
            elif kind == "metrics":
                metrics.append(record)
            # Unknown kinds are skipped: a newer writer may add record
            # types without breaking old readers.
    except ValueError as exc:
        problems.append(str(exc))
    return spans, metrics, problems


def _build_tree(records: list[dict]) -> tuple[list[SpanNode], int]:
    nodes: dict[str, SpanNode] = {}
    for rec in records:
        node = SpanNode(
            name=str(rec["name"]),
            span_id=str(rec["span_id"]),
            parent_id=rec.get("parent_id"),
            ts=float(rec["ts"]),
            dur_s=float(rec["dur_s"]),
            pid=int(rec["pid"]),
            status=str(rec["status"]),
            attrs=dict(rec.get("attrs", {})),
        )
        nodes[node.span_id] = node
    roots: list[SpanNode] = []
    orphans = 0
    for node in nodes.values():
        if node.parent_id is None:
            roots.append(node)
        else:
            parent = nodes.get(str(node.parent_id))
            if parent is None:
                node.orphan = True
                orphans += 1
                roots.append(node)
            else:
                parent.children.append(node)
    for node in nodes.values():
        node.children.sort(key=lambda c: (c.ts, c.span_id))
    # File order is append order; roots sort by start time for stability.
    roots.sort(key=lambda n: (n.ts, n.span_id))
    return roots, orphans


def load_summary(path) -> TraceSummary:
    """Load a trace file into its reconstructed summary form."""
    records, metric_records, problems = _span_records(path)
    if problems:
        raise ValueError("; ".join(problems))
    roots, orphans = _build_tree(records)
    spans = [node for root in roots for node in root.walk()]
    return TraceSummary(
        roots=roots,
        spans=spans,
        metrics=merge_snapshots(r.get("snapshot", {}) for r in metric_records),
        n_records=len(records) + len(metric_records),
        n_pids=len({s.pid for s in spans}),
        orphans=orphans,
    )


def validate_trace(path) -> list[str]:
    """Structural problems of a trace file (empty list = clean).

    Checks, in order: every line parses as a JSON record; every span record
    carries the required fields; span durations are finite and
    non-negative; and spans are *balanced* — no child runs longer than its
    parent beyond clock tolerance.  (Children may *sum* past the parent:
    parallel shard spans under one execute span overlap by design.)
    Orphaned spans (a parent that was never written, e.g. because its
    worker died) are NOT problems: crash-tolerance guarantees exactly that
    shape, and they surface via ``TraceSummary.orphans`` instead.
    """
    records, _metrics, problems = _span_records(path)
    for rec in records:
        dur = float(rec["dur_s"])
        if not math.isfinite(dur) or dur < 0.0:
            problems.append(
                f"span {rec['span_id']} ({rec['name']}) has bad dur_s {dur}"
            )
    roots, _ = _build_tree([r for r in records if _has_fields(r)])
    for root in roots:
        for node in root.walk():
            budget = node.dur_s * (1.0 + _OVERRUN_TOLERANCE) + 1e-6
            for child in node.children:
                if child.dur_s > budget:
                    problems.append(
                        f"span {child.span_id} ({child.name}): longer than "
                        f"parent {node.name} "
                        f"({child.dur_s:.6f}s > {node.dur_s:.6f}s)"
                    )
    return problems


def _has_fields(rec: dict) -> bool:
    return all(f in rec for f in _REQUIRED_SPAN_FIELDS)


# -- summaries ----------------------------------------------------------------


def phase_breakdown(root: SpanNode) -> list[tuple[str, float, int]]:
    """Root's direct children grouped by name: ``(name, wall_s, count)``.

    The gap the root spent outside any instrumented child is appended as
    ``(untraced)``, so the listed walls sum to ``root.dur_s`` exactly.
    """
    phases: dict[str, list[float]] = {}
    order: list[str] = []
    for child in root.children:
        if child.name not in phases:
            order.append(child.name)
            phases[child.name] = [0.0, 0]
        phases[child.name][0] += child.dur_s
        phases[child.name][1] += 1
    rows = [(name, phases[name][0], int(phases[name][1])) for name in order]
    traced = sum(wall for _, wall, _ in rows)
    remainder = root.dur_s - traced
    if rows:
        rows.append(("(untraced)", remainder, 0))
    return rows


def critical_path(root: SpanNode) -> list[SpanNode]:
    """The root-to-leaf chain through whichever child finished last.

    This is the straggler chain: at every level, the span whose end
    timestamp is latest is the one the run was waiting on.
    """
    path = [root]
    node = root
    while node.children:
        node = max(node.children, key=lambda c: (c.end_ts, c.span_id))
        path.append(node)
    return path


def top_spans(
    spans: list[SpanNode], prefix: str, n: int = 5
) -> list[SpanNode]:
    """The ``n`` slowest spans whose name starts with ``prefix``."""
    matching = [s for s in spans if s.name.startswith(prefix)]
    matching.sort(key=lambda s: (-s.dur_s, s.span_id))
    return matching[:n]


# -- rendering ----------------------------------------------------------------


def _fmt_attrs(attrs: dict, keys: tuple[str, ...]) -> str:
    parts = [f"{k}={attrs[k]}" for k in keys if k in attrs]
    return f" [{', '.join(parts)}]" if parts else ""


def render_summary(summary: TraceSummary, top_n: int = 5) -> str:
    """Human-readable report of one trace file."""
    lines: list[str] = []
    lines.append(
        f"{summary.n_records} records, {len(summary.spans)} spans, "
        f"{summary.n_pids} processes, {summary.orphans} orphaned"
    )
    for root in summary.roots:
        if root.orphan:
            continue
        lines.append("")
        lines.append(
            f"run: {root.name}  {root.dur_s:.6f} s  status={root.status}"
            + _fmt_attrs(root.attrs, ("seeds", "seed", "scale", "executor"))
        )
        rows = phase_breakdown(root)
        if rows:
            lines.append("  phase breakdown:")
            for name, wall, count in rows:
                share = wall / root.dur_s if root.dur_s > 0 else 0.0
                suffix = f" x{count}" if count > 1 else ""
                lines.append(
                    f"    {name:<24s} {wall:12.6f} s  {share:6.1%}{suffix}"
                )
            lines.append(f"    {'total':<24s} {root.dur_s:12.6f} s  100.0%")
        chain = critical_path(root)
        if len(chain) > 1:
            lines.append("  critical path:")
            for depth, node in enumerate(chain):
                lines.append(
                    f"    {'  ' * depth}{node.name}  {node.dur_s:.6f} s"
                    + _fmt_attrs(node.attrs, ("seed", "index", "attempt", "table"))
                )
    for title, prefix, keys in (
        ("slowest shards", "engine.shard", ("seed", "index", "records")),
        ("slowest queries", "store.query", ("table", "column", "agg")),
        ("slowest merges", "engine.merge", ("seed",)),
    ):
        top = top_spans(summary.spans, prefix, top_n)
        if top:
            lines.append("")
            lines.append(f"top {len(top)} {title}:")
            for node in top:
                lines.append(
                    f"  {node.dur_s:12.6f} s  {node.name}"
                    + _fmt_attrs(node.attrs, keys)
                )
    counters = summary.metrics.get("counters", {})
    hists = summary.metrics.get("histograms", {})
    if counters or hists:
        lines.append("")
        lines.append("metrics:")
        for name, value in counters.items():
            lines.append(f"  {name:<40s} {value}")
        for name, h in hists.items():
            mean = h["total"] / h["count"] if h["count"] else 0.0
            lines.append(
                f"  {name:<40s} n={h['count']} mean={mean:.6f} "
                f"min={h['min']:.6f} max={h['max']:.6f}"
            )
    return "\n".join(lines)
