"""Metrics: counter/gauge/histogram registry with atomic snapshot + merge.

A :class:`MetricsRegistry` is a small, dependency-free accumulator:

* **counters** — monotonically increasing integers (``cache.hits``);
* **gauges** — last-written floats (``cache.total_bytes``);
* **histograms** — streaming summaries (count/total/min/max) of observed
  values (``engine.shard_s``); no buckets, so merging is exact.

All mutation is lock-protected, and :meth:`snapshot` captures every family
under the same lock — a snapshot is a *consistent* plain-JSON view, never a
torn one.  Snapshots from many registries (one per engine worker, one per
driver) fold with :func:`merge_snapshots`, which is deterministic given the
input order: counters and histogram summaries are order-independent sums,
and gauges take the last value in input order — callers merge worker
snapshots in sorted shard order, so reports are stable across executor
topology.

The registry is cheap enough to leave always-on in the engine driver; the
hot per-shard registries in worker processes are only created when tracing
is enabled, so the disabled path allocates nothing.
"""

from __future__ import annotations

import threading
from typing import Any, Iterable, Mapping

__all__ = ["MetricsRegistry", "merge_snapshots"]


class MetricsRegistry:
    """Thread-safe counter/gauge/histogram accumulator."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        # name -> [count, total, min, max]
        self._hists: dict[str, list[float]] = {}

    # -- mutation ----------------------------------------------------------

    def count(self, name: str, n: int = 1) -> None:
        """Add ``n`` to a counter (created at zero)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + int(n)

    def gauge(self, name: str, value: float) -> None:
        """Set a gauge to its latest value."""
        with self._lock:
            self._gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        """Feed one observation into a histogram summary."""
        v = float(value)
        with self._lock:
            hist = self._hists.get(name)
            if hist is None:
                self._hists[name] = [1, v, v, v]
            else:
                hist[0] += 1
                hist[1] += v
                if v < hist[2]:
                    hist[2] = v
                if v > hist[3]:
                    hist[3] = v

    # -- reading -----------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """A consistent, JSON-able view of every metric, keys sorted."""
        with self._lock:
            counters = dict(sorted(self._counters.items()))
            gauges = dict(sorted(self._gauges.items()))
            hists = {
                name: {
                    "count": int(h[0]),
                    "total": h[1],
                    "min": h[2],
                    "max": h[3],
                }
                for name, h in sorted(self._hists.items())
            }
        return {"counters": counters, "gauges": gauges, "histograms": hists}


def merge_snapshots(snapshots: Iterable[Mapping[str, Any]]) -> dict[str, Any]:
    """Fold snapshots into one, deterministically for a given input order.

    Counters sum; histogram summaries combine exactly (sums of counts and
    totals, min of mins, max of maxes); gauges take the last value seen in
    input order.  Unknown or missing sections are tolerated, so snapshots
    written by a newer schema still merge.
    """
    counters: dict[str, int] = {}
    gauges: dict[str, float] = {}
    hists: dict[str, dict[str, float]] = {}
    for snap in snapshots:
        if not snap:
            continue
        for name, n in snap.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + int(n)
        for name, v in snap.get("gauges", {}).items():
            gauges[name] = float(v)
        for name, h in snap.get("histograms", {}).items():
            merged = hists.get(name)
            if merged is None:
                hists[name] = {
                    "count": int(h.get("count", 0)),
                    "total": float(h.get("total", 0.0)),
                    "min": h.get("min", 0.0),
                    "max": h.get("max", 0.0),
                }
            else:
                merged["count"] += int(h.get("count", 0))
                merged["total"] += float(h.get("total", 0.0))
                merged["min"] = min(merged["min"], h.get("min", merged["min"]))
                merged["max"] = max(merged["max"], h.get("max", merged["max"]))
    return {
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(gauges.items())),
        "histograms": dict(sorted(hists.items())),
    }
