"""Structured tracing: nested spans with monotonic timing, JSONL emission.

A **span** is one timed region of the pipeline — an engine run, one shard's
execution, a store query.  Spans nest: each thread keeps a stack of active
spans, and a span opened while another is active becomes its child.  On
close, the span is appended to the trace file as one JSON line::

    {"kind": "span", "name": "engine.shard", "span_id": "1234:5678:3",
     "parent_id": "1234:5678:2", "ts": 1723041600.123, "dur_s": 1.25,
     "pid": 1234, "tid": 5678, "status": "ok", "attrs": {"index": 4}}

Design constraints, in order:

* **Near-zero overhead when disabled.**  :func:`get_tracer` returns the
  :data:`NULL_TRACER` singleton when no trace path is configured; its
  ``span()`` hands back one reusable no-op context manager — no allocation,
  no clock read, no I/O.
* **Thread- and process-safe emission.**  The writer appends whole lines
  through one ``O_APPEND`` file descriptor per process (a single
  ``os.write`` per record, serialised by a lock within the process, atomic
  with respect to the file offset across processes), so engine workers open
  the same trace file independently and lines never interleave.
* **Crash-tolerant files.**  A span is written only when it *closes*: a
  worker killed mid-span contributes nothing rather than a torn record, so
  a trace file is parseable line by line no matter how the run ended.
* **Cross-process span trees.**  Span ids are ``pid:tid:counter`` strings;
  a parent id can be carried into a worker process (``ShardTask`` does
  this) so shard spans attach under the engine's execute span even though
  they were emitted by another process.

Timing uses ``time.perf_counter()`` for durations (monotonic, never
rounded) and ``time.time()`` for the start timestamp (comparable across
processes when ordering spans for the critical path).
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any, Iterator, Mapping

__all__ = [
    "NULL_TRACER",
    "NullSpan",
    "NullTracer",
    "Span",
    "TraceWriter",
    "Tracer",
    "get_tracer",
    "reset_tracers",
]

#: Schema version of the trace line format; recorded on every span so a
#: reader can detect drift.  Bump on any field change.
TRACE_FORMAT_VERSION = 1


class TraceWriter:
    """Append-only JSONL writer, shared by every tracer of one process.

    Each record is serialised to one line and written with a single
    ``os.write`` on an ``O_APPEND`` descriptor: concurrent writers (other
    worker processes appending to the same file) can interleave *lines*
    but never bytes within a line.
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = os.fspath(path)
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._fd: int | None = os.open(
            self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        self._lock = threading.Lock()

    def write_obj(self, obj: Mapping[str, Any]) -> None:
        """Append one record; silently drops writes after :meth:`close`."""
        line = json.dumps(obj, sort_keys=True, separators=(",", ":")) + "\n"
        with self._lock:
            if self._fd is not None:
                os.write(self._fd, line.encode("utf-8"))

    def close(self) -> None:
        with self._lock:
            if self._fd is not None:
                os.close(self._fd)
                self._fd = None


class Span:
    """One active span; hands out attribute setters and its elapsed clock."""

    __slots__ = (
        "name", "span_id", "parent_id", "attrs", "status",
        "_t0", "_ts", "dur_s",
    )

    def __init__(
        self,
        name: str,
        span_id: str,
        parent_id: str | None,
        attrs: dict[str, Any],
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.attrs = attrs
        self.status = "ok"
        self._ts = time.time()
        self._t0 = time.perf_counter()
        #: Duration recorded in the trace.  Normally measured at context
        #: exit; a caller may freeze it early (``span.dur_s = x``) so the
        #: traced duration and a report field are the *same* float.
        self.dur_s: float | None = None

    def set(self, **attrs: Any) -> None:
        """Attach (or overwrite) span attributes."""
        self.attrs.update(attrs)

    def elapsed(self) -> float:
        """Monotonic seconds since the span opened, full precision."""
        return time.perf_counter() - self._t0

    def to_obj(self) -> dict[str, Any]:
        return {
            "kind": "span",
            "v": TRACE_FORMAT_VERSION,
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "ts": self._ts,
            "dur_s": self.dur_s if self.dur_s is not None else self.elapsed(),
            "pid": os.getpid(),
            "tid": threading.get_ident(),
            "status": self.status,
            "attrs": self.attrs,
        }


class _SpanContext:
    """Context manager that opens a span on enter and emits it on exit."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type: object, exc: object, tb: object) -> bool:
        if exc_type is not None:
            self._span.status = "error"
        self._tracer._finish(self._span)
        return False  # never swallow the exception


class Tracer:
    """Emits nested spans (and metric snapshots) to one trace file."""

    enabled = True

    def __init__(self, path: str | os.PathLike) -> None:
        self.writer = TraceWriter(path)
        self._local = threading.local()
        self._counter = 0
        self._counter_lock = threading.Lock()

    # -- span lifecycle ----------------------------------------------------

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _next_id(self) -> str:
        with self._counter_lock:
            self._counter += 1
            n = self._counter
        return f"{os.getpid()}:{threading.get_ident()}:{n}"

    def current_id(self) -> str | None:
        """Span id of the innermost active span on this thread, if any."""
        stack = self._stack()
        return stack[-1].span_id if stack else None

    def span(
        self, name: str, parent: str | None = None, **attrs: Any
    ) -> _SpanContext:
        """Open a nested span; use as ``with tracer.span("x") as sp:``.

        ``parent`` overrides the implicit parent (this thread's innermost
        active span) — used to attach worker-process spans under a span of
        the orchestrating process.
        """
        parent_id = parent if parent is not None else self.current_id()
        span = Span(name, self._next_id(), parent_id, attrs)
        self._stack().append(span)
        return _SpanContext(self, span)

    def _finish(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        else:  # out-of-order exit; drop whatever is stacked above it
            while stack:
                if stack.pop() is span:
                    break
        if span.dur_s is None:
            span.dur_s = span.elapsed()
        self.writer.write_obj(span.to_obj())

    # -- metric snapshots --------------------------------------------------

    def emit_metrics(self, snapshot: Mapping[str, Any], scope: str) -> None:
        """Append one metrics-snapshot record (see ``repro.obs.metrics``)."""
        self.writer.write_obj({
            "kind": "metrics",
            "v": TRACE_FORMAT_VERSION,
            "scope": scope,
            "ts": time.time(),
            "pid": os.getpid(),
            "snapshot": dict(snapshot),
        })

    def close(self) -> None:
        self.writer.close()


class NullSpan:
    """The do-nothing span handed out by the disabled tracer."""

    __slots__ = ()

    #: Mirrors ``Span.span_id`` so orchestrators can thread a parent id
    #: unconditionally; ``None`` simply means "no parent to carry".
    span_id = None

    def set(self, **attrs: Any) -> None:
        pass

    def elapsed(self) -> float:
        return 0.0

    # Assignments to ``dur_s`` on the null span are discarded.
    @property
    def dur_s(self) -> float | None:
        return None

    @dur_s.setter
    def dur_s(self, value: float) -> None:
        pass


class _NullSpanContext:
    __slots__ = ()

    def __enter__(self) -> NullSpan:
        return _NULL_SPAN

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NULL_SPAN = NullSpan()
_NULL_CONTEXT = _NullSpanContext()


class NullTracer:
    """Disabled tracer: every operation is a reusable no-op."""

    enabled = False

    def span(self, name: str, parent: str | None = None, **attrs: Any) -> _NullSpanContext:
        return _NULL_CONTEXT

    def current_id(self) -> str | None:
        return None

    def emit_metrics(self, snapshot: Mapping[str, Any], scope: str) -> None:
        pass

    def close(self) -> None:
        pass


#: The process-wide disabled tracer.
NULL_TRACER = NullTracer()

#: One live tracer per trace path per process, so engine workers executing
#: many shards share a single file descriptor and span-id counter.
_TRACERS: dict[str, Tracer] = {}
_TRACERS_LOCK = threading.Lock()


def get_tracer(path: str | os.PathLike | None) -> Tracer | NullTracer:
    """The tracer for ``path`` (memoized per process), or the null tracer."""
    if path is None:
        return NULL_TRACER
    key = os.path.abspath(os.fspath(path))
    with _TRACERS_LOCK:
        tracer = _TRACERS.get(key)
        if tracer is None:
            tracer = _TRACERS[key] = Tracer(key)
        return tracer


def reset_tracers() -> None:
    """Close and forget every memoized tracer (tests only)."""
    with _TRACERS_LOCK:
        for tracer in _TRACERS.values():
            tracer.close()
        _TRACERS.clear()


def iter_trace(path: str | os.PathLike) -> Iterator[dict]:
    """Yield every record of a trace file; raises ``ValueError`` on a
    malformed line (the integrity tests call this directly)."""
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{lineno}: unparseable trace line: {exc}"
                ) from exc
            if not isinstance(record, dict) or "kind" not in record:
                raise ValueError(
                    f"{path}:{lineno}: trace record has no 'kind' field"
                )
            yield record
