"""CLI: summarize a trace file written with ``--trace``.

Usage::

    python -m repro.obs runs/trace.jsonl
    python -m repro.obs runs/trace.jsonl --top 10
    python -m repro.obs runs/trace.jsonl --json
    python -m repro.obs runs/trace.jsonl --validate
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.obs.report import (
    critical_path,
    load_summary,
    phase_breakdown,
    render_summary,
    validate_trace,
)


def _summary_obj(summary, top_n: int) -> dict:
    """JSON-able form of the rendered summary (for --json)."""
    runs = []
    for root in summary.roots:
        if root.orphan:
            continue
        runs.append({
            "name": root.name,
            "dur_s": root.dur_s,
            "status": root.status,
            "attrs": root.attrs,
            "phases": [
                {"name": name, "wall_s": wall, "count": count}
                for name, wall, count in phase_breakdown(root)
            ],
            "critical_path": [
                {"name": n.name, "dur_s": n.dur_s, "attrs": n.attrs}
                for n in critical_path(root)
            ],
        })
    return {
        "n_records": summary.n_records,
        "n_spans": len(summary.spans),
        "n_pids": summary.n_pids,
        "orphans": summary.orphans,
        "runs": runs,
        "metrics": summary.metrics,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Summarize a repro trace file (JSONL spans + metrics).",
    )
    parser.add_argument("trace", help="path to a trace file written with --trace")
    parser.add_argument(
        "--top", type=int, default=5, metavar="N",
        help="show the N slowest shards/queries (default 5)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit the summary as JSON instead of a table",
    )
    parser.add_argument(
        "--validate", action="store_true",
        help="only check trace integrity; exit 1 and list problems if any",
    )
    args = parser.parse_args(argv)

    if args.validate:
        problems = validate_trace(args.trace)
        if problems:
            for problem in problems:
                print(f"PROBLEM: {problem}", file=sys.stderr)
            return 1
        print("trace ok")
        return 0

    try:
        summary = load_summary(args.trace)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(_summary_obj(summary, args.top), indent=2))
    else:
        print(render_summary(summary, top_n=args.top))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
