"""Cloud gaming session model (paper §7.3, Appendix E).

The paper measured Steam Remote Play streaming 4K/60FPS games from an AWS
GPU instance, and extracted three metrics from the server's logs: the send
bitrate chosen by the bitrate adapter (capped at 100 Mbps), the network
latency the server estimates, and the frame-drop rate.

The documented behaviour we reproduce (§7.3 observation 2): *the adapter
keeps the frame-drop rate low — by adapting the frame rate/bitrate — even at
the cost of very high latency.*  We model the adapter as additive-increase /
multiplicative-decrease on the send bitrate driven by queue build-up, with a
self-inflicted queueing delay when the send rate exceeds link capacity, and
frame drops only when the backlog persists beyond what rate adaptation can
absorb.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.schedule import LinkSchedule
from repro.rng import clamp

__all__ = ["GamingConfig", "GamingMetrics", "run_gaming_session"]


@dataclass(frozen=True, slots=True)
class GamingConfig:
    """Adapter and pipeline parameters."""

    max_bitrate_mbps: float = 100.0
    min_bitrate_mbps: float = 1.0
    start_bitrate_mbps: float = 30.0
    #: Additive increase per second of clean streaming (Steam ramps fast).
    increase_mbps_per_s: float = 12.0
    #: Multiplicative decrease on congestion.
    decrease_factor: float = 0.72
    #: Queueing delay that triggers a bitrate cut, ms.
    congestion_threshold_ms: float = 35.0
    #: Queueing delay beyond which the encoder starts dropping frames, ms.
    drop_threshold_ms: float = 320.0
    frame_rate_fps: float = 60.0
    #: Fixed pipeline latency (encode + jitter buffer + decode), ms.
    pipeline_ms: float = 10.0
    tick_s: float = 0.5


@dataclass(frozen=True, slots=True)
class GamingMetrics:
    """Result of one gaming session."""

    avg_bitrate_mbps: float
    median_latency_ms: float
    p95_latency_ms: float
    max_latency_ms: float
    frame_drop_rate: float
    downlink_megabits: float


def run_gaming_session(schedule: LinkSchedule, config: GamingConfig | None = None) -> GamingMetrics:
    """Simulate one cloud-gaming session over ``schedule``."""
    cfg = config or GamingConfig()
    t0 = float(schedule.times_s[0])
    duration = schedule.duration_s
    dt = cfg.tick_s

    bitrate = cfg.start_bitrate_mbps
    queue_mbit = 0.0
    bitrates: list[float] = []
    latencies: list[float] = []
    dropped = 0.0
    total_frames = 0.0
    sent_megabits = 0.0

    t = t0
    while t < t0 + duration:
        capacity = schedule.dl_rate_at(t)
        rtt = schedule.rtt_at(t)

        # The server pushes `bitrate` for dt seconds; the link drains at
        # `capacity`.  Excess accumulates in the bottleneck queue.
        queue_mbit = max(queue_mbit + (bitrate - capacity) * dt, 0.0)
        queue_delay_ms = (queue_mbit / capacity) * 1000.0 if capacity > 0 else 4000.0
        latency = rtt / 2.0 + cfg.pipeline_ms + queue_delay_ms
        latencies.append(latency)
        bitrates.append(bitrate)
        sent_megabits += bitrate * dt

        # Frame accounting: drops happen when the backlog outruns even the
        # adapter's reaction (encoder discards stale frames).
        frames = cfg.frame_rate_fps * dt
        total_frames += frames
        if queue_delay_ms > cfg.drop_threshold_ms:
            overshoot = (queue_delay_ms - cfg.drop_threshold_ms) / 1000.0
            # Frame-rate adaptation absorbs most of the backlog; only a
            # bounded share of frames is discarded (paper §7.3: median drop
            # rate ≈1.6%, never far above 13%).
            drop_frac = clamp(overshoot * 0.25, 0.0, 0.25)
            dropped += frames * drop_frac
            # The encoder purges stale queued frames when it starts dropping.
            queue_mbit *= 0.6

        # Adapter reaction.
        if queue_delay_ms > cfg.congestion_threshold_ms:
            bitrate = max(bitrate * cfg.decrease_factor, cfg.min_bitrate_mbps)
        else:
            headroom_cap = min(cfg.max_bitrate_mbps, capacity * 1.1)
            bitrate = min(bitrate + cfg.increase_mbps_per_s * dt, headroom_cap)
            bitrate = max(bitrate, cfg.min_bitrate_mbps)

        t += dt

    lat = np.asarray(latencies, dtype=float)
    return GamingMetrics(
        avg_bitrate_mbps=float(np.mean(bitrates)),
        median_latency_ms=float(np.median(lat)),
        p95_latency_ms=float(np.percentile(lat, 95)),
        max_latency_ms=float(np.max(lat)),
        frame_drop_rate=float(dropped / total_frames) if total_frames else 0.0,
        downlink_megabits=sent_megabits,
    )
