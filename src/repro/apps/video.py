"""360° video streaming with the BBA buffer-based ABR (paper §7.2, App. D).

The paper streamed 2-second chunks encoded at four quality levels (100, 50,
10, 5 Mbps) from a Puffer server, with the ABR replaced by BBA (Huang et
al.), which maps buffer occupancy linearly onto the bitrate ladder between a
reservoir and a cushion.  QoE follows Yin et al.:

    QoE_k = B_k − λ·|B_k − B_{k−1}| − μ·T_k        (λ = 1, μ = 100)

where B_k is chunk k's bitrate (Mbps) and T_k the rebuffering time (s)
incurred while downloading it.  A session's QoE is the mean over its chunks.
The theoretical best is 100 (all top-bitrate chunks, no stalls, no switches).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.apps.schedule import LinkSchedule

__all__ = ["VideoConfig", "VideoMetrics", "bba_select_bitrate", "run_video_session"]


@dataclass(frozen=True, slots=True)
class VideoConfig:
    """Streaming session parameters (paper Appendix D.1)."""

    bitrates_mbps: tuple[float, ...] = (5.0, 10.0, 50.0, 100.0)
    chunk_duration_s: float = 2.0
    session_duration_s: float = 180.0
    #: BBA reservoir: below this buffer level, stream the minimum bitrate.
    reservoir_s: float = 4.0
    #: BBA cushion: above reservoir+cushion, stream the maximum bitrate.
    cushion_s: float = 9.0
    #: Client buffer capacity; downloads pause when full.
    max_buffer_s: float = 15.0
    #: Goodput of the chunk transport relative to link capacity (single
    #: HTTP/TCP connection with per-chunk ramp-up).
    tcp_efficiency: float = 0.72
    qoe_lambda: float = 1.0
    qoe_mu: float = 100.0

    def __post_init__(self) -> None:
        if not self.bitrates_mbps or list(self.bitrates_mbps) != sorted(self.bitrates_mbps):
            raise ValueError("bitrates must be a non-empty ascending ladder")
        if self.reservoir_s < 0 or self.cushion_s <= 0:
            raise ValueError("reservoir/cushion must be sensible")


@dataclass(frozen=True, slots=True)
class VideoMetrics:
    """Result of one streaming session."""

    qoe: float
    avg_bitrate_mbps: float
    rebuffer_ratio: float
    rebuffer_s: float
    chunks_played: int
    bitrate_switches: int
    downlink_megabits: float


def bba_select_bitrate(buffer_s: float, config: VideoConfig) -> float:
    """BBA's rate map: buffer occupancy → bitrate (Mbps).

    Linear between the minimum bitrate at the reservoir and the maximum at
    reservoir+cushion; clamped outside.

    >>> cfg = VideoConfig()
    >>> bba_select_bitrate(0.0, cfg)
    5.0
    >>> bba_select_bitrate(30.0, cfg)
    100.0
    """
    ladder = config.bitrates_mbps
    if buffer_s <= config.reservoir_s:
        return ladder[0]
    if buffer_s >= config.reservoir_s + config.cushion_s:
        return ladder[-1]
    frac = (buffer_s - config.reservoir_s) / config.cushion_s
    target = ladder[0] + frac * (ladder[-1] - ladder[0])
    # Highest ladder rung not exceeding the linear target.
    chosen = ladder[0]
    for rate in ladder:
        if rate <= target:
            chosen = rate
    return chosen


def run_video_session(schedule: LinkSchedule, config: VideoConfig | None = None) -> VideoMetrics:
    """Simulate one playback session over ``schedule``.

    The session runs for ``config.session_duration_s`` of wall-clock time
    (not content time): rebuffering eats into it, as in the paper's 3-minute
    sessions with up to 87% rebuffer ratios.
    """
    cfg = config or VideoConfig()
    t0 = float(schedule.times_s[0])
    wall_end = t0 + min(cfg.session_duration_s, schedule.duration_s)

    t = t0
    buffer_s = 0.0
    rebuffer_s = 0.0
    started = False
    prev_bitrate: float | None = None
    qoe_terms: list[float] = []
    bitrates: list[float] = []
    switches = 0
    downlink_megabits = 0.0

    while t < wall_end:
        if buffer_s >= cfg.max_buffer_s:
            # Buffer full: play out until there is room for one more chunk.
            drain = buffer_s - (cfg.max_buffer_s - cfg.chunk_duration_s)
            t += drain
            buffer_s -= drain
            continue

        bitrate = bba_select_bitrate(buffer_s, cfg)
        chunk_mb = bitrate * cfg.chunk_duration_s
        request_s = schedule.rtt_at(t) / 1000.0
        dl_time = schedule.transfer_time_s(
            t + request_s, chunk_mb / cfg.tcp_efficiency, "downlink"
        )
        dl_time = dl_time + request_s if math.isfinite(dl_time) else dl_time
        if math.isinf(dl_time):
            # Link dead until the end of the run: count the tail as a stall.
            rebuffer_s += max(wall_end - t - buffer_s, 0.0)
            break
        arrival = t + dl_time

        # Playback drains the buffer during the download; whatever the
        # download time exceeds the buffer by is a stall.  Startup delay
        # before the first chunk is not counted as rebuffering.
        stall = max(dl_time - buffer_s, 0.0) if started else 0.0
        if started:
            buffer_s = max(buffer_s - dl_time, 0.0)
            rebuffer_s += stall
        buffer_s += cfg.chunk_duration_s
        started = True

        if prev_bitrate is not None and bitrate != prev_bitrate:
            switches += 1
        smoothness = abs(bitrate - prev_bitrate) if prev_bitrate is not None else 0.0
        qoe_terms.append(bitrate - cfg.qoe_lambda * smoothness - cfg.qoe_mu * stall)
        bitrates.append(bitrate)
        downlink_megabits += chunk_mb
        prev_bitrate = bitrate
        t = arrival

    if not qoe_terms:
        return VideoMetrics(
            qoe=-cfg.qoe_mu * cfg.session_duration_s,
            avg_bitrate_mbps=0.0,
            rebuffer_ratio=1.0,
            rebuffer_s=cfg.session_duration_s,
            chunks_played=0,
            bitrate_switches=0,
            downlink_megabits=0.0,
        )

    session = wall_end - t0
    return VideoMetrics(
        qoe=float(np.mean(qoe_terms)),
        avg_bitrate_mbps=float(np.mean(bitrates)),
        rebuffer_ratio=min(max(rebuffer_s / session, 0.0), 1.0),
        rebuffer_s=rebuffer_s,
        chunks_played=len(qoe_terms),
        bitrate_switches=switches,
        downlink_megabits=downlink_megabits,
    )
