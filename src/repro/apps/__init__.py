"""The four "5G killer" applications evaluated by the paper (§7).

Two uplink-centric apps — edge-assisted AR and CAV perception offloading —
and two downlink-centric apps — 360° video streaming (Puffer + BBA) and
cloud gaming (Steam-Remote-Play-style adaptive streaming).  All four consume
a :class:`repro.apps.schedule.LinkSchedule`, the time-varying link a campaign
test window produced, and emit run-level QoE metrics.
"""

from repro.apps.schedule import LinkSchedule
from repro.apps.accuracy import map_for_latency, LOCAL_TRACKING_TABLE
from repro.apps.offload import OffloadAppConfig, OffloadMetrics, AR_CONFIG, CAV_CONFIG, run_offload_app
from repro.apps.video import VideoConfig, VideoMetrics, run_video_session, bba_select_bitrate
from repro.apps.gaming import GamingConfig, GamingMetrics, run_gaming_session

__all__ = [
    "LinkSchedule",
    "map_for_latency",
    "LOCAL_TRACKING_TABLE",
    "OffloadAppConfig",
    "OffloadMetrics",
    "AR_CONFIG",
    "CAV_CONFIG",
    "run_offload_app",
    "VideoConfig",
    "VideoMetrics",
    "run_video_session",
    "bba_select_bitrate",
    "GamingConfig",
    "GamingMetrics",
    "run_gaming_session",
]
