"""Edge-assisted AR / CAV offloading application (paper §7.1, Appendix C).

The paper built a canonical benchmark app: an Android client offloads
pre-recorded camera frames (AR) or LIDAR point clouds (CAV) to an edge GPU
server in a *best-effort* manner — a new frame is offloaded only when the
previous offload has completed; frames arriving while the pipeline is busy
are served by on-device local tracking instead.

Per offloaded frame, the E2E latency decomposes as::

    compress → upload (size/uplink rate + RTT/2) → server inference
             → result download (RTT/2 + small payload) → decompress

The AR app renders results at display vsync, so its E2E aligns to frame
boundaries; the CAV pipeline consumes results immediately.

Configurations come from Table 4; the accuracy model from Table 5
(:mod:`repro.apps.accuracy`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.apps.accuracy import map_for_latency
from repro.apps.schedule import LinkSchedule

__all__ = ["OffloadAppConfig", "OffloadMetrics", "AR_CONFIG", "CAV_CONFIG", "run_offload_app"]


@dataclass(frozen=True, slots=True)
class OffloadAppConfig:
    """Table 4: configuration of the AR or CAV benchmark app."""

    name: str
    fps: float
    raw_frame_kb: float
    compressed_frame_kb: float
    compress_ms: float
    inference_ms: float
    decompress_ms: float
    duration_s: float
    #: Server-returned result payload (bounding boxes / fused view), KB.
    result_kb: float
    #: Whether E2E latency aligns to the next frame boundary (display vsync).
    align_to_frame: bool

    def __post_init__(self) -> None:
        if self.fps <= 0 or self.duration_s <= 0:
            raise ValueError("fps and duration must be positive")
        if self.compressed_frame_kb > self.raw_frame_kb:
            raise ValueError("compressed frame cannot exceed raw frame size")

    @property
    def frame_interval_ms(self) -> float:
        return 1000.0 / self.fps

    def frame_megabits(self, compression: bool) -> float:
        kb = self.compressed_frame_kb if compression else self.raw_frame_kb
        return kb * 8.0 / 1000.0


#: Table 4, AR column (30 FPS camera frames, Faster R-CNN on an A100).
AR_CONFIG = OffloadAppConfig(
    name="AR",
    fps=30.0,
    raw_frame_kb=450.0,
    compressed_frame_kb=50.0,
    compress_ms=6.3,
    inference_ms=24.9,
    decompress_ms=1.0,
    duration_s=20.0,
    result_kb=8.0,
    align_to_frame=True,
)

#: Table 4, CAV column (10 FPS LIDAR point clouds).
CAV_CONFIG = OffloadAppConfig(
    name="CAV",
    fps=10.0,
    raw_frame_kb=2000.0,
    compressed_frame_kb=38.0,
    compress_ms=34.8,
    inference_ms=44.0,
    decompress_ms=19.1,
    duration_s=20.0,
    result_kb=25.0,
    align_to_frame=False,
)


@dataclass(frozen=True, slots=True)
class OffloadMetrics:
    """Result of one offloading run."""

    mean_e2e_ms: float
    median_e2e_ms: float
    offload_fps: float
    offloaded_frames: int
    captured_frames: int
    map_score: float
    uplink_megabits: float


def run_offload_app(
    schedule: LinkSchedule,
    config: OffloadAppConfig,
    compression: bool,
) -> OffloadMetrics:
    """Simulate one best-effort offloading run over ``schedule``.

    Returns run-level metrics; per-frame E2E latencies drive the Table 5
    accuracy lookup through the run's *mean* latency in frame times, exactly
    as the paper's offline study assumes (Appendix C.2).
    """
    t0 = float(schedule.times_s[0])
    duration = min(config.duration_s, schedule.duration_s)
    frame_mb = config.frame_megabits(compression)
    result_mb = config.result_kb * 8.0 / 1000.0

    e2e_ms: list[float] = []
    uplink_megabits = 0.0
    captured = 0
    pipeline_free_at = t0

    capture = t0
    end = t0 + duration
    while capture < end:
        captured += 1
        if capture >= pipeline_free_at:
            latency_ms = _offload_one(schedule, capture, config, compression, frame_mb, result_mb)
            if latency_ms is not None:
                if config.align_to_frame:
                    frames = math.ceil(latency_ms / config.frame_interval_ms)
                    latency_ms = max(frames, 1) * config.frame_interval_ms
                e2e_ms.append(latency_ms)
                uplink_megabits += frame_mb
                pipeline_free_at = capture + latency_ms / 1000.0
        capture += 1.0 / config.fps

    if not e2e_ms:
        # The link never completed a single offload: report a saturated run.
        return OffloadMetrics(
            mean_e2e_ms=float("inf"),
            median_e2e_ms=float("inf"),
            offload_fps=0.0,
            offloaded_frames=0,
            captured_frames=captured,
            map_score=map_for_latency(1e4, compression) if config.name == "AR" else 0.0,
            uplink_megabits=uplink_megabits,
        )

    mean_ms = float(np.mean(e2e_ms))
    map_score = 0.0
    if config.name == "AR":
        map_score = map_for_latency(mean_ms / config.frame_interval_ms, compression)
    return OffloadMetrics(
        mean_e2e_ms=mean_ms,
        median_e2e_ms=float(np.median(e2e_ms)),
        offload_fps=len(e2e_ms) / duration,
        offloaded_frames=len(e2e_ms),
        captured_frames=captured,
        map_score=map_score,
        uplink_megabits=uplink_megabits,
    )


def _offload_one(
    schedule: LinkSchedule,
    capture_s: float,
    config: OffloadAppConfig,
    compression: bool,
    frame_mb: float,
    result_mb: float,
) -> float | None:
    """E2E latency (ms) for one frame, or None if the run ends mid-flight."""
    t = capture_s
    if compression:
        t += config.compress_ms / 1000.0
    rtt_s = schedule.rtt_at(t) / 1000.0
    upload_s = schedule.transfer_time_s(t, frame_mb, "uplink")
    if math.isinf(upload_s):
        return None
    t += rtt_s / 2.0 + upload_s
    t += config.inference_ms / 1000.0
    download_s = schedule.transfer_time_s(t, result_mb, "downlink")
    if math.isinf(download_s):
        return None
    t += rtt_s / 2.0 + download_s
    if compression:
        t += config.decompress_ms / 1000.0
    return (t - capture_s) * 1000.0
