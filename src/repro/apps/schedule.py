"""Time-varying link schedule consumed by the application models.

A :class:`LinkSchedule` is the piecewise-constant view of the link during one
test window: per-tick uplink/downlink capacity, RTT, serving technology and
handover interruption intervals.  Applications integrate transfers over it —
e.g. "how long does a 50 KB frame take to upload starting at t = 3.2 s" —
without knowing anything about the radio stack that produced it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.radio.technology import RadioTechnology

__all__ = ["LinkSchedule"]


@dataclass(frozen=True)
class LinkSchedule:
    """Piecewise-constant link over one test window.

    All arrays share one length N; tick ``i`` covers
    ``[times_s[i], times_s[i] + tick_s)``.

    ``interruptions`` lists (start_s, duration_s) intervals during which the
    link carries no data (handover execution).
    """

    times_s: np.ndarray
    tick_s: float
    ul_mbps: np.ndarray
    dl_mbps: np.ndarray
    rtt_ms: np.ndarray
    techs: tuple[RadioTechnology, ...]
    interruptions: tuple[tuple[float, float], ...] = ()

    def __post_init__(self) -> None:
        n = len(self.times_s)
        if not (len(self.ul_mbps) == len(self.dl_mbps) == len(self.rtt_ms) == len(self.techs) == n):
            raise ValueError("schedule arrays must share one length")
        if n == 0:
            raise ValueError("schedule must contain at least one tick")
        if self.tick_s <= 0:
            raise ValueError("tick_s must be positive")
        # Cache the start time as a plain float: _index_at is the hottest
        # call in the app models and ndarray scalar access is slow.
        object.__setattr__(self, "_t0", float(self.times_s[0]))

    # -- point queries -----------------------------------------------------

    @property
    def duration_s(self) -> float:
        """Total covered duration."""
        return float(len(self.times_s) * self.tick_s)

    def _index_at(self, t_s: float) -> int:
        rel = t_s - self._t0
        idx = int(rel // self.tick_s)
        n = len(self.times_s)
        if idx < 0:
            return 0
        if idx >= n:
            return n - 1
        return idx

    def ul_rate_at(self, t_s: float) -> float:
        """Uplink capacity (Mbps) at absolute schedule time ``t_s``."""
        return float(self.ul_mbps[self._index_at(t_s)]) * self._up_factor(t_s)

    def dl_rate_at(self, t_s: float) -> float:
        """Downlink capacity (Mbps) at absolute schedule time ``t_s``."""
        return float(self.dl_mbps[self._index_at(t_s)]) * self._up_factor(t_s)

    def rtt_at(self, t_s: float) -> float:
        """RTT (ms) at absolute schedule time ``t_s``."""
        return float(self.rtt_ms[self._index_at(t_s)])

    def tech_at(self, t_s: float) -> RadioTechnology:
        """Serving technology at absolute schedule time ``t_s``."""
        return self.techs[self._index_at(t_s)]

    def _up_factor(self, t_s: float) -> float:
        for start, dur in self.interruptions:
            if start <= t_s < start + dur:
                return 0.0
        return 1.0

    # -- transfer integration ----------------------------------------------

    def transfer_time_s(self, start_s: float, megabits: float, direction: str) -> float:
        """Time to move ``megabits`` starting at ``start_s``, honouring the
        piecewise rate and link interruptions.

        Returns ``inf`` if the transfer does not complete within the
        schedule (the run ends mid-transfer).
        """
        if megabits < 0:
            raise ValueError("transfer size must be non-negative")
        if megabits == 0:
            return 0.0
        remaining = megabits
        t = max(start_s, float(self.times_s[0]))
        end = float(self.times_s[0]) + self.duration_s
        while t < end:
            rate = self.ul_rate_at(t) if direction == "uplink" else self.dl_rate_at(t)
            # Advance to the next boundary: tick edge or interruption edge.
            tick_end = float(self.times_s[0]) + (self._index_at(t) + 1) * self.tick_s
            seg_end = tick_end
            for istart, idur in self.interruptions:
                if t < istart < seg_end:
                    seg_end = istart
                elif istart <= t < istart + idur:
                    seg_end = min(seg_end, istart + idur)
            seg = max(seg_end - t, 1e-6)
            if rate > 0.0:
                needed = remaining / rate
                if needed <= seg:
                    return (t + needed) - start_s
                remaining -= rate * seg
            t += seg
        return float("inf")

    # -- aggregates ----------------------------------------------------------

    def fraction_on(self, techs: frozenset[RadioTechnology]) -> float:
        """Fraction of ticks served by any technology in ``techs``."""
        if not self.techs:
            return 0.0
        hits = sum(1 for t in self.techs if t in techs)
        return hits / len(self.techs)

    def handover_count(self) -> int:
        """Number of interruption intervals (handovers) in the window."""
        return len(self.interruptions)
