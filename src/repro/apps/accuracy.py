"""Object-detection accuracy model for the AR app (paper Appendix C.2).

The paper reduces accuracy to a lookup: using the Argoverse dataset and
Faster R-CNN on the edge server, with an on-device local-tracking algorithm
reusing the latest server result, the achieved mAP depends only on the E2E
offloading latency *binned in frame times* (Table 5).  Compression is lossy,
so each bin carries separate values with and without compression.

We reproduce Table 5 verbatim and extrapolate beyond its last bin (29-30
frame times) with the table's tail slope, floored at a drifted-tracking
baseline.
"""

from __future__ import annotations

import math

__all__ = ["LOCAL_TRACKING_TABLE", "map_for_latency", "MAP_FLOOR"]

#: Table 5: (mAP without compression, mAP with compression) for E2E latency
#: bin [i, i+1) in frame times.
LOCAL_TRACKING_TABLE: tuple[tuple[float, float], ...] = (
    (38.45, 38.45),
    (37.22, 36.14),
    (36.04, 34.75),
    (34.65, 33.12),
    (33.36, 31.82),
    (32.20, 30.50),
    (31.08, 29.53),
    (28.03, 26.99),
    (27.01, 25.73),
    (25.62, 25.21),
    (25.77, 24.35),
    (23.29, 22.44),
    (22.75, 21.56),
    (22.48, 21.64),
    (21.59, 21.16),
    (20.59, 20.35),
    (20.11, 19.69),
    (19.53, 18.95),
    (18.40, 17.61),
    (18.01, 17.85),
    (17.52, 17.00),
    (16.96, 16.55),
    (16.59, 15.97),
    (15.41, 15.16),
    (15.78, 14.94),
    (15.86, 15.37),
    (14.81, 14.71),
    (14.70, 13.77),
    (14.44, 13.62),
    (14.05, 13.70),
)

#: Accuracy floor when tracking has fully drifted (stale results useless).
MAP_FLOOR = 5.0

#: Average per-bin decay used to extrapolate past the table's last bin.
_TAIL_SLOPE_PER_BIN = 0.35


def map_for_latency(e2e_latency_frames: float, compression: bool) -> float:
    """mAP (%) achieved at a given E2E offloading latency.

    Parameters
    ----------
    e2e_latency_frames:
        Mean E2E offloading latency expressed in frame times (e.g. for the
        30 FPS AR app, latency_ms / 33.3).
    compression:
        Whether lossy frame compression was used.

    >>> map_for_latency(0.5, compression=False)
    38.45
    >>> map_for_latency(6.4, compression=True)
    29.53
    """
    if e2e_latency_frames < 0.0 or math.isnan(e2e_latency_frames):
        raise ValueError(f"latency must be non-negative, got {e2e_latency_frames}")
    column = 1 if compression else 0
    bin_index = int(e2e_latency_frames)
    if bin_index < len(LOCAL_TRACKING_TABLE):
        return LOCAL_TRACKING_TABLE[bin_index][column]
    last = LOCAL_TRACKING_TABLE[-1][column]
    overshoot = bin_index - (len(LOCAL_TRACKING_TABLE) - 1)
    return max(last - overshoot * _TAIL_SLOPE_PER_BIN, MAP_FLOOR)
