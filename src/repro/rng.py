"""Deterministic random-number plumbing.

Every stochastic component in the library draws from a
:class:`numpy.random.Generator`.  To make an entire campaign reproducible from
a single integer seed while keeping components statistically independent, we
spawn *named substreams* from a root seed using ``numpy``'s ``SeedSequence``
machinery: the same (seed, name) pair always yields the same stream,
regardless of the order in which substreams are requested.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

import numpy as np

__all__ = ["RngFactory", "default_rng", "choose_weighted", "clamp"]


def clamp(value: float, lo: float, hi: float) -> float:
    """Pure-Python scalar clip (much faster than :func:`numpy.clip` on
    scalars, which dominates tick-loop profiles otherwise)."""
    if value < lo:
        return lo
    if value > hi:
        return hi
    return value


def choose_weighted(rng: np.random.Generator, items: list, weights: list[float]):
    """Draw one item with the given (not necessarily normalised) weights.

    A single ``rng.random()`` draw against the cumulative distribution —
    ~30× faster than ``rng.choice(..., p=...)`` for the short lists used in
    the deployment and policy layers.
    """
    total = 0.0
    for w in weights:
        total += w
    u = rng.random() * total
    acc = 0.0
    for item, w in zip(items, weights):
        acc += w
        if u < acc:
            return item
    return items[-1]


def _name_to_key(name: str) -> int:
    """Map a substream name to a stable 32-bit spawn key."""
    return zlib.crc32(name.encode("utf-8"))


@dataclass
class RngFactory:
    """Factory of named, independent random substreams.

    Parameters
    ----------
    seed:
        Root seed for the whole factory.  Two factories with the same seed
        produce identical substreams for identical names.

    Examples
    --------
    >>> f = RngFactory(seed=7)
    >>> a = f.stream("channel").standard_normal()
    >>> b = RngFactory(seed=7).stream("channel").standard_normal()
    >>> a == b
    True
    """

    seed: int
    _cache: dict[str, np.random.Generator] = field(
        default_factory=dict, repr=False, compare=False
    )

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for substream ``name`` (cached per factory).

        Repeated calls with the same name on the same factory return the
        *same* generator object, so draws continue rather than restart.
        """
        if name not in self._cache:
            seq = np.random.SeedSequence([self.seed, _name_to_key(name)])
            self._cache[name] = np.random.Generator(np.random.PCG64(seq))
        return self._cache[name]

    def fresh(self, name: str) -> np.random.Generator:
        """Return a *new* generator for ``name``, restarting its sequence."""
        seq = np.random.SeedSequence([self.seed, _name_to_key(name)])
        gen = np.random.Generator(np.random.PCG64(seq))
        self._cache[name] = gen
        return gen

    def child(self, name: str) -> "RngFactory":
        """Derive a child factory whose streams are independent of ours."""
        return RngFactory(seed=(self.seed * 1000003 + _name_to_key(name)) % (2**63))

    def shard(self, index: int) -> "RngFactory":
        """Derive the canonical per-shard child factory.

        The sharded execution engine gives every route shard its own factory
        so that a shard's draws depend only on ``(root seed, shard index)`` —
        never on how many workers run, in what order shards complete, or how
        shards are batched onto workers.  That is what makes the merged
        dataset bit-identical for any executor configuration.
        """
        if index < 0:
            raise ValueError(f"shard index must be non-negative, got {index}")
        return self.child(f"shard-{index:06d}")


def default_rng(seed: int = 0) -> RngFactory:
    """Convenience constructor mirroring :func:`numpy.random.default_rng`."""
    return RngFactory(seed=seed)
