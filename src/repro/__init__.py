"""repro — reproduction of *Performance of Cellular Networks on the Wheels*
(ACM IMC 2023).

The library has three layers:

1. **Substrate** (:mod:`repro.geo`, :mod:`repro.radio`, :mod:`repro.policy`,
   :mod:`repro.mobility`, :mod:`repro.net`): a synthetic but calibrated model
   of the cross-country drive, the three carriers' radio deployments and
   policies, and the end-to-end network path.
2. **Campaign** (:mod:`repro.campaign`, :mod:`repro.apps`): the round-robin
   measurement methodology of the paper — TCP throughput, RTT, AR/CAV
   offloading, 360° video, cloud gaming — generating a
   :class:`~repro.campaign.dataset.DriveDataset`.
3. **Analysis** (:mod:`repro.analysis`): the paper's cross-layer analysis
   pipeline, one module per section, regenerating every table and figure.

Campaign execution scales out through :mod:`repro.engine`, which shards the
route across worker processes while producing the bit-identical dataset of
the serial path.

Quickstart::

    import repro
    dataset = repro.generate_dataset(seed=42, scale=0.05)
    print(dataset.summary())

    # Same dataset, generated on all cores:
    dataset = repro.generate_dataset_parallel(seed=42, scale=0.05, workers=4)
"""

from repro.campaign.runner import CampaignConfig, DriveCampaign, generate_dataset
from repro.campaign.dataset import DriveDataset
from repro.engine import EngineConfig, generate_dataset_parallel, run_engine
from repro.sweep import SweepConfig, run_sweep
from repro.geo.route import build_cross_country_route
from repro.radio.operators import Operator
from repro.radio.technology import RadioTechnology

__version__ = "1.1.0"

__all__ = [
    "CampaignConfig",
    "DriveCampaign",
    "DriveDataset",
    "EngineConfig",
    "generate_dataset",
    "generate_dataset_parallel",
    "run_engine",
    "SweepConfig",
    "run_sweep",
    "build_cross_country_route",
    "Operator",
    "RadioTechnology",
    "__version__",
]
