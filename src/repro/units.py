"""Unit conversions and physical constants used throughout the library.

The paper mixes US-customary road units (miles, mph) with SI link units
(Mbps, ms, dBm).  Centralising the conversions keeps every module consistent
and makes the analysis code read like the paper: speed bins in mph, distances
in miles for handover rates, kilometres for trip totals.
"""

from __future__ import annotations

import math

# --- distance ---------------------------------------------------------------

METERS_PER_MILE = 1609.344
METERS_PER_KM = 1000.0

# --- time -------------------------------------------------------------------

MS_PER_S = 1000.0
S_PER_MIN = 60.0
S_PER_HOUR = 3600.0

#: XCAL's application-layer throughput logging period (paper §5, Fig. 11c).
XCAL_SAMPLE_PERIOD_S = 0.5

#: The handover-logger app's ICMP keep-alive interval (paper §3).
HANDOVER_LOGGER_PING_INTERVAL_S = 0.2

#: The handover-logger's ICMP payload size in bytes (paper §3).
HANDOVER_LOGGER_PING_PAYLOAD_BYTES = 38


def miles_to_meters(miles: float) -> float:
    """Convert statute miles to meters."""
    return miles * METERS_PER_MILE


def meters_to_miles(meters: float) -> float:
    """Convert meters to statute miles."""
    return meters / METERS_PER_MILE


def km_to_miles(km: float) -> float:
    """Convert kilometres to statute miles."""
    return meters_to_miles(km * METERS_PER_KM)


def miles_to_km(miles: float) -> float:
    """Convert statute miles to kilometres."""
    return miles_to_meters(miles) / METERS_PER_KM


# --- speed ------------------------------------------------------------------


def mph_to_mps(mph: float) -> float:
    """Convert miles-per-hour to meters-per-second."""
    return mph * METERS_PER_MILE / S_PER_HOUR


def mps_to_mph(mps: float) -> float:
    """Convert meters-per-second to miles-per-hour."""
    return mps * S_PER_HOUR / METERS_PER_MILE


# --- data rate & volume -----------------------------------------------------

BITS_PER_BYTE = 8


def mbps_to_bps(mbps: float) -> float:
    """Convert megabits-per-second to bits-per-second."""
    return mbps * 1e6


def bps_to_mbps(bps: float) -> float:
    """Convert bits-per-second to megabits-per-second."""
    return bps / 1e6


def bytes_to_megabits(nbytes: float) -> float:
    """Convert a byte count to megabits."""
    return nbytes * BITS_PER_BYTE / 1e6


def megabits_to_bytes(mbits: float) -> float:
    """Convert megabits to bytes."""
    return mbits * 1e6 / BITS_PER_BYTE


def bytes_to_gigabytes(nbytes: float) -> float:
    """Convert a byte count to gigabytes (decimal GB, as in the paper)."""
    return nbytes / 1e9


# --- RF power ---------------------------------------------------------------


def dbm_to_mw(dbm: float) -> float:
    """Convert a power in dBm to milliwatts."""
    return 10.0 ** (dbm / 10.0)


def mw_to_dbm(mw: float) -> float:
    """Convert a power in milliwatts to dBm.

    Raises
    ------
    ValueError
        If ``mw`` is not strictly positive (log of a non-positive power).
    """
    if mw <= 0.0:
        raise ValueError(f"power must be positive to express in dBm, got {mw}")
    return 10.0 * math.log10(mw)


def db_sum(*dbs: float) -> float:
    """Sum powers expressed in dB-scale (adds in the linear domain)."""
    if not dbs:
        raise ValueError("db_sum requires at least one value")
    return mw_to_dbm(sum(dbm_to_mw(v) for v in dbs))


# --- speed bins (paper §4.2, §5.5) -------------------------------------------

#: Paper's speed bins in mph: low (cities), mid (suburban), high (highways).
SPEED_BIN_EDGES_MPH = (0.0, 20.0, 60.0, float("inf"))
SPEED_BIN_LABELS = ("0-20 mph", "20-60 mph", "60+ mph")


def speed_bin(mph: float) -> str:
    """Return the paper's speed-bin label for a speed in mph.

    >>> speed_bin(10.0)
    '0-20 mph'
    >>> speed_bin(65.0)
    '60+ mph'
    """
    if mph < 0.0:
        raise ValueError(f"speed must be non-negative, got {mph}")
    if mph < SPEED_BIN_EDGES_MPH[1]:
        return SPEED_BIN_LABELS[0]
    if mph < SPEED_BIN_EDGES_MPH[2]:
        return SPEED_BIN_LABELS[1]
    return SPEED_BIN_LABELS[2]
