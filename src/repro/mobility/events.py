"""Handover events and their taxonomy.

The paper distinguishes *horizontal* handovers (between cells of the same
technology generation: 4G→4G, 5G→5G) from *vertical* ones (across
generations: 4G→5G, 5G→4G), and analyses their impact on throughput
separately (Fig. 12): 5G→4G handovers mostly hurt, 4G→5G mostly help.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.radio.cells import CellId
from repro.radio.operators import Operator
from repro.radio.technology import RadioTechnology


class HandoverType(enum.Enum):
    """The four handover classes of Fig. 12."""

    HORIZONTAL_4G = "4G->4G"
    HORIZONTAL_5G = "5G->5G"
    VERTICAL_UP = "4G->5G"
    VERTICAL_DOWN = "5G->4G"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value

    @property
    def is_vertical(self) -> bool:
        return self in (HandoverType.VERTICAL_UP, HandoverType.VERTICAL_DOWN)


def classify_handover(
    from_tech: RadioTechnology, to_tech: RadioTechnology
) -> HandoverType:
    """Classify a handover by source and target technology generation.

    >>> classify_handover(RadioTechnology.LTE, RadioTechnology.NR_MID)
    <HandoverType.VERTICAL_UP: '4G->5G'>
    """
    if from_tech.is_4g and to_tech.is_4g:
        return HandoverType.HORIZONTAL_4G
    if from_tech.is_5g and to_tech.is_5g:
        return HandoverType.HORIZONTAL_5G
    if from_tech.is_4g and to_tech.is_5g:
        return HandoverType.VERTICAL_UP
    return HandoverType.VERTICAL_DOWN


@dataclass(frozen=True, slots=True)
class HandoverEvent:
    """One completed handover, as reconstructed from signalling logs."""

    operator: Operator
    time_s: float
    mark_m: float
    duration_ms: float
    from_cell: CellId
    to_cell: CellId
    from_tech: RadioTechnology
    to_tech: RadioTechnology

    def __post_init__(self) -> None:
        if self.duration_ms <= 0.0:
            raise ValueError(f"handover duration must be positive, got {self.duration_ms}")

    @property
    def handover_type(self) -> HandoverType:
        return classify_handover(self.from_tech, self.to_tech)
