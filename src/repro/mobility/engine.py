"""Handover engine: tracks the serving cell and emits handover events.

A handover fires when the serving (zone, technology, cell) tuple changes —
crossing a deployment-zone boundary, or a traffic-profile-driven technology
switch within the same location.  We additionally model occasional *ping-pong*
handovers between neighbouring cells without a zone change, which produce the
20+ handovers/mile extremes of Fig. 11a.

Handover durations are drawn lognormally with per-operator, per-direction
medians calibrated to Fig. 11b (median 49–76 ms, 75th percentile 63–107 ms).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.rng import clamp

from repro.mobility.events import HandoverEvent
from repro.radio.ca import Direction
from repro.radio.cells import Cell, CellId
from repro.radio.operators import Operator

__all__ = ["HandoverDurationParams", "HandoverEngine"]


@dataclass(frozen=True, slots=True)
class HandoverDurationParams:
    """Lognormal duration parameters (milliseconds)."""

    median_ms: float
    sigma: float = 0.45

    def sample(self, rng: np.random.Generator) -> float:
        value = rng.lognormal(mean=np.log(self.median_ms), sigma=self.sigma)
        return clamp(float(value), 8.0, 2000.0)


#: Fig. 11b medians: (operator, direction) -> median HO duration in ms.
_DURATION_MEDIANS_MS: dict[tuple[Operator, str], float] = {
    (Operator.VERIZON, Direction.DOWNLINK): 53.0,
    (Operator.VERIZON, Direction.UPLINK): 49.0,
    (Operator.TMOBILE, Direction.DOWNLINK): 76.0,
    (Operator.TMOBILE, Direction.UPLINK): 75.0,
    (Operator.ATT, Direction.DOWNLINK): 58.0,
    (Operator.ATT, Direction.UPLINK): 57.0,
}

#: Per-second probability of a ping-pong handover (no zone change).
_PINGPONG_RATE_PER_S = 0.008

#: Vertical handovers take longer than intra-technology ones (extra RRC
#: reconfiguration, NSA leg setup).
_VERTICAL_DURATION_FACTOR = 1.35


@dataclass
class HandoverEngine:
    """Tracks one UE's serving cell and emits :class:`HandoverEvent` s.

    Drive it by calling :meth:`observe` once per tick with the serving cell
    the selector chose; it returns the handovers (usually zero or one) that
    occurred during the tick.
    """

    operator: Operator
    rng: np.random.Generator
    _current_cell: Cell | None = field(default=None, repr=False)
    _connected_cells: set[CellId] = field(default_factory=set, repr=False)
    _total_handovers: int = 0

    @property
    def total_handovers(self) -> int:
        """Total handovers emitted over this engine's lifetime."""
        return self._total_handovers

    @property
    def connected_cells(self) -> frozenset[CellId]:
        """All distinct cells this UE has been served by."""
        return frozenset(self._connected_cells)

    def reset_serving(self) -> None:
        """Forget the serving cell (e.g. between distant test locations)."""
        self._current_cell = None

    def observe(
        self,
        cell: Cell,
        time_s: float,
        mark_m: float,
        dt_s: float,
        direction: str = Direction.DOWNLINK,
    ) -> list[HandoverEvent]:
        """Register the serving cell for one tick; return handovers fired.

        Parameters
        ----------
        cell:
            The serving cell chosen by the technology selector this tick.
        time_s, mark_m:
            Campaign clock and route position of the tick.
        dt_s:
            Tick length in seconds (scales the ping-pong rate).
        direction:
            Traffic direction of the running test (duration calibration).
        """
        events: list[HandoverEvent] = []
        previous = self._current_cell
        self._connected_cells.add(cell.cell_id)

        if previous is not None and previous.cell_id != cell.cell_id:
            events.append(self._make_event(previous, cell, time_s, mark_m, direction))
        elif previous is not None and self.rng.random() < _PINGPONG_RATE_PER_S * dt_s:
            # Ping-pong: bounce to a phantom neighbour of the same layer and
            # back; logged as one handover to a distinct cell id.
            neighbour_id = CellId(
                cell.operator, cell.technology, cell.cell_id.sequence + 500_000
            )
            neighbour = Cell(
                cell_id=neighbour_id,
                site=cell.site,
                site_mark_m=cell.site_mark_m,
                perpendicular_m=cell.perpendicular_m * 1.5,
            )
            self._connected_cells.add(neighbour_id)
            events.append(self._make_event(cell, neighbour, time_s, mark_m, direction))
            cell = neighbour

        self._current_cell = cell
        return events

    def _make_event(
        self, from_cell: Cell, to_cell: Cell, time_s: float, mark_m: float, direction: str
    ) -> HandoverEvent:
        median = _DURATION_MEDIANS_MS[(self.operator, direction)]
        params = HandoverDurationParams(median_ms=median)
        duration = params.sample(self.rng)
        if from_cell.technology.is_4g != to_cell.technology.is_4g:
            duration *= _VERTICAL_DURATION_FACTOR
        self._total_handovers += 1
        return HandoverEvent(
            operator=self.operator,
            time_s=time_s,
            mark_m=mark_m,
            duration_ms=duration,
            from_cell=from_cell.cell_id,
            to_cell=to_cell.cell_id,
            from_tech=from_cell.technology,
            to_tech=to_cell.technology,
        )
