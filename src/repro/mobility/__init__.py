"""Mobility management: handovers between cells and technologies."""

from repro.mobility.events import HandoverEvent, HandoverType, classify_handover
from repro.mobility.engine import HandoverEngine

__all__ = ["HandoverEvent", "HandoverType", "classify_handover", "HandoverEngine"]
