"""Shard planning: split one drive campaign into canonical route windows.

The planner is the determinism anchor of the engine.  It decomposes the
LA→Boston route into contiguous distance windows **as a pure function of the
campaign configuration** — never of the worker count, batch count, or any
runtime state.  Each window later runs as an independent shard with its own
RNG substream (``RngFactory(seed).shard(index)``), so the merged dataset is
bit-identical however the windows are scheduled.

Window sizing adapts to the campaign's duty cycle: one measurement cycle plus
its fast-forward skip covers ``nominal_cycle_km / scale`` of road, and a
window should hold a few such strides — enough that the scale→record-count
relationship of the single-process campaign is preserved, while still
producing tens of shards for parallel execution at production scales.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.campaign.runner import (
    CampaignConfig,
    CampaignWindow,
    NOMINAL_CRUISE_MPS,
)
from repro.campaign.tests import TEST_DURATIONS_S, TestType
from repro.errors import EngineError
from repro.geo.route import Route

__all__ = [
    "PlannerParams",
    "ShardPlan",
    "nominal_cycle_duration_s",
    "plan_campaign",
    "TEST_ID_STRIDE",
    "PASSIVE_SHARD_INDEX",
]

#: Test-id namespace stride: window ``i`` allocates ids in
#: ``(i+1)*STRIDE + 1 ..``, keeping ids disjoint and deterministic without a
#: renumbering pass at merge time.
TEST_ID_STRIDE = 1_000_000

#: Pseudo-index of the trip-wide passive handover-logger shard.
PASSIVE_SHARD_INDEX = -1

#: Upper bound on vehicle speed used to size the deployment overrun margin.
_MAX_SPEED_MPS = 50.0

#: Wall-clock cushion (s) added to one nominal cycle when sizing the margin:
#: covers inter-test gaps, the fast-forward cap, and speed-profile excursions.
_OVERRUN_CUSHION_S = 120.0


@dataclass(frozen=True, slots=True)
class PlannerParams:
    """Knobs of the window decomposition.

    ``window_km`` overrides the adaptive sizing entirely; otherwise a window
    spans ``cycles_per_window`` nominal cycle strides (cycle distance divided
    by the duty-cycle scale), clamped below by ``min_window_km`` so shards
    stay coarse enough to amortise their per-shard deployment build.
    """

    window_km: float | None = None
    cycles_per_window: float = 4.0
    min_window_km: float = 150.0

    def __post_init__(self) -> None:
        if self.window_km is not None and self.window_km <= 0.0:
            raise EngineError(f"window_km must be positive, got {self.window_km}")
        if self.cycles_per_window <= 0.0:
            raise EngineError("cycles_per_window must be positive")
        if self.min_window_km <= 0.0:
            raise EngineError("min_window_km must be positive")


@dataclass(frozen=True, slots=True)
class ShardPlan:
    """The canonical decomposition of one campaign into route windows."""

    windows: tuple[CampaignWindow, ...]
    nominal_cycle_s: float
    window_km: float

    @property
    def n_windows(self) -> int:
        return len(self.windows)

    def batches(self, n_shards: int | None) -> list[tuple[CampaignWindow, ...]]:
        """Group windows into ``n_shards`` contiguous execution batches.

        Batching is purely an execution concern: it decides how many windows
        ride in one worker submission, never what any window computes, so
        every ``n_shards`` yields the same merged dataset.  ``None`` means
        one batch per window (maximum scheduling freedom).
        """
        if not self.windows:
            return []
        if n_shards is None:
            return [(w,) for w in self.windows]
        if n_shards <= 0:
            raise EngineError(f"n_shards must be positive, got {n_shards}")
        n = min(n_shards, len(self.windows))
        base, extra = divmod(len(self.windows), n)
        batches: list[tuple[CampaignWindow, ...]] = []
        at = 0
        for i in range(n):
            size = base + (1 if i < extra else 0)
            batches.append(self.windows[at:at + size])
            at += size
        return batches

    def describe(self) -> str:
        return (
            f"{self.n_windows} windows of ~{self.window_km:.0f} km "
            f"(nominal cycle {self.nominal_cycle_s:.0f} s)"
        )


def nominal_cycle_duration_s(config: CampaignConfig) -> float:
    """Wall-clock length of one round-robin cycle under ``config``.

    Uses the configured video/gaming session lengths (which may differ from
    the defaults in :data:`TEST_DURATIONS_S`) and counts the AR/CAV
    compression doubling plus one inter-test gap per run — mirroring exactly
    what :meth:`DriveCampaign._run_cycle` executes.
    """
    plan = config.cycle if config.include_apps else config.cycle.without_apps()
    total = 0.0
    runs = 0
    for test in plan.tests:
        multiplier = 2 if test in (TestType.AR, TestType.CAV) else 1
        if test is TestType.VIDEO_360:
            duration = config.video_duration_s
        elif test is TestType.CLOUD_GAMING:
            duration = config.gaming_duration_s
        else:
            duration = TEST_DURATIONS_S[test]
        total += multiplier * duration
        runs += multiplier
    return total + runs * config.inter_test_gap_s


def plan_campaign(
    config: CampaignConfig,
    route: Route,
    params: PlannerParams | None = None,
) -> ShardPlan:
    """Split ``route`` into the canonical shard windows for ``config``.

    The decomposition depends only on ``(config, route, params)`` — equal
    inputs always produce the identical window list.
    """
    params = params or PlannerParams()
    cycle_s = nominal_cycle_duration_s(config)
    stride_km = cycle_s * NOMINAL_CRUISE_MPS / 1000.0 / config.scale

    if params.window_km is not None:
        window_km = params.window_km
    else:
        window_km = max(params.cycles_per_window * stride_km, params.min_window_km)

    total_m = route.total_length_m
    n = max(1, math.ceil(route.total_length_km / window_km))
    length_m = total_m / n
    overrun_m = (cycle_s + _OVERRUN_CUSHION_S) * _MAX_SPEED_MPS

    windows = []
    for i in range(n):
        start = i * length_m
        end = total_m if i == n - 1 else (i + 1) * length_m
        windows.append(
            CampaignWindow(
                index=i,
                start_m=start,
                end_m=end,
                overrun_m=overrun_m,
                test_id_base=(i + 1) * TEST_ID_STRIDE,
            )
        )
    return ShardPlan(
        windows=tuple(windows),
        nominal_cycle_s=cycle_s,
        window_km=total_m / n / 1000.0,
    )
