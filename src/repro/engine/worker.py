"""Shard execution: the unit of work a campaign engine worker performs.

:func:`execute_batch` is the top-level (picklable) entry point submitted to
``ProcessPoolExecutor`` — or called inline by the serial fallback executor.
A batch is an ordered tuple of :class:`ShardTask`; the worker runs each task
to a :class:`ShardResult` and, when a checkpoint directory is configured,
persists every result the moment it completes, so even a mid-batch worker
death loses at most the shard in flight.

Two task flavours exist:

* **window shards** run a :class:`DriveCampaign` restricted to one route
  window, with RNG substreams derived from ``RngFactory(seed).shard(index)``
  — a pure function of (root seed, window index);
* the **passive shard** (``window is None``) replays the trip-wide passive
  handover-logger walk and counts the macro-grid cells, exactly as the
  single-process campaign does, using the root factory's streams.

For fault-tolerance testing, a task may carry a :class:`FaultSpec` that
makes early attempts fail — either by raising (exercising the retry path)
or by killing the worker process outright (exercising pool recovery).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field, replace

from repro.campaign.dataset import DriveDataset
from repro.campaign.runner import CampaignConfig, CampaignWindow, DriveCampaign
from repro.errors import EngineError
from repro.geo.route import Route, build_cross_country_route
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import get_tracer
from repro.radio.deployment import DeploymentModel
from repro.radio.operators import Operator
from repro.rng import RngFactory

__all__ = ["FaultSpec", "ShardTask", "ShardResult", "execute_batch"]


@dataclass(frozen=True, slots=True)
class FaultSpec:
    """Injected failure for one shard (testing hook).

    The first ``times`` attempts fail; later attempts succeed.  ``kind`` is
    ``"raise"`` (worker raises :class:`EngineError`) or ``"exit"`` (worker
    process dies with ``os._exit``, simulating a hard crash — only
    meaningful under the process executor; in-process execution degrades it
    to a raise so the host survives).
    """

    times: int = 1
    kind: str = "raise"

    def __post_init__(self) -> None:
        if self.kind not in ("raise", "exit"):
            raise EngineError(f"unknown fault kind {self.kind!r}")
        if self.times < 1:
            raise EngineError("fault times must be >= 1")


@dataclass(frozen=True, slots=True)
class ShardTask:
    """Everything a worker needs to execute one shard, picklable."""

    config: CampaignConfig
    #: ``None`` marks the passive handover-logger shard.
    window: CampaignWindow | None
    attempt: int = 0
    checkpoint_dir: str | None = None
    fingerprint: str = ""
    fault: FaultSpec | None = None
    #: Pid of the orchestrating process; lets an "exit" fault detect whether
    #: it is running in a separate worker process it may safely kill.
    parent_pid: int = 0
    #: Custom route, if the caller supplied one; workers otherwise rebuild
    #: the canonical cross-country route themselves.
    route: Route | None = None
    #: Trace file this shard's spans append to (``None`` = tracing off).
    #: Workers open the file independently (O_APPEND), so the path is the
    #: only thing that needs to cross the process boundary.
    trace_path: str | None = None
    #: Span id of the orchestrator's execute span, so shard spans emitted
    #: in a worker process attach under it in the reconstructed tree.
    trace_parent: str | None = None

    @property
    def index(self) -> int:
        from repro.engine.planner import PASSIVE_SHARD_INDEX

        return PASSIVE_SHARD_INDEX if self.window is None else self.window.index


@dataclass(slots=True)
class ShardResult:
    """One shard's contribution to the merged dataset."""

    index: int
    dataset: DriveDataset
    #: Distinct active-layer cells connected per operator (window shards).
    active_cells: dict[Operator, int] = field(default_factory=dict)
    #: Distinct macro-grid cells per operator (passive shard only).
    macro_cells: dict[Operator, int] = field(default_factory=dict)
    wall_s: float = 0.0
    from_checkpoint: bool = False
    #: Served from a content-addressed shard cache (see ``repro.sweep.cache``).
    from_cache: bool = False
    #: Metrics snapshot (``repro.obs.metrics`` shape) recorded while the
    #: shard computed; ``None`` unless the run was traced.  Rides back on
    #: the result so per-worker registries fold into the run report.
    metrics: dict | None = None

    @property
    def records(self) -> int:
        ds = self.dataset
        return (
            len(ds.throughput_samples) + len(ds.rtt_samples) + len(ds.tests)
            + len(ds.handovers) + len(ds.passive_coverage)
            + len(ds.offload_runs) + len(ds.video_runs) + len(ds.gaming_runs)
        )


def _maybe_fail(task: ShardTask) -> None:
    if task.fault is None or task.attempt >= task.fault.times:
        return
    if task.fault.kind == "exit" and os.getpid() != task.parent_pid:
        os._exit(17)
    raise EngineError(
        f"injected fault on shard {task.index} (attempt {task.attempt})",
        shard_index=task.index,
    )


def _task_route(task: ShardTask) -> Route:
    return task.route if task.route is not None else build_cross_country_route()


def _run_window_shard(task: ShardTask) -> ShardResult:
    assert task.window is not None
    campaign = DriveCampaign(
        task.config,
        route=_task_route(task),
        window=task.window,
        rng_factory=RngFactory(seed=task.config.seed).shard(task.window.index),
    )
    dataset = campaign.run()
    return ShardResult(
        index=task.window.index,
        dataset=dataset,
        active_cells=campaign.connected_active_cell_counts(),
    )


def _run_passive_shard(task: ShardTask) -> ShardResult:
    # Imported here for the same reason DriveCampaign does it: repro.xcal
    # imports repro.campaign at package level.
    from repro.xcal.handover_logger import run_handover_logger
    from repro.engine.planner import PASSIVE_SHARD_INDEX

    config = task.config
    route = _task_route(task)
    rngs = RngFactory(seed=config.seed)
    dataset = DriveDataset(
        seed=config.seed,
        scale=config.scale,
        route_length_km=route.total_length_km,
    )
    macro_cells: dict[Operator, int] = {}
    for op in Operator:
        deployment = DeploymentModel.build(
            op, route, rngs.stream(f"deploy-{op.code}")
        )
        trace = run_handover_logger(
            op, deployment, rngs.stream(f"passive-{op.code}")
        )
        dataset.passive_coverage.extend(trace.segments)
        dataset.passive_handover_counts[op] = trace.macro_handovers
        macro_cells[op] = len(
            {c.cell_id for z in deployment.macro_zones for c in z.cells.values()}
        )
    return ShardResult(
        index=PASSIVE_SHARD_INDEX,
        dataset=dataset,
        macro_cells=macro_cells,
    )


def execute_shard(task: ShardTask) -> ShardResult:
    """Run one shard to completion and return its result.

    When the task carries a ``trace_path``, the whole execution (including
    an injected-fault raise, which closes the span with ``status="error"``)
    is recorded as one ``engine.shard`` span parented under the
    orchestrator's execute span, and a per-shard metrics snapshot travels
    back on ``result.metrics``.  Untraced tasks hit the null tracer: no
    allocation, no clock reads, no I/O.
    """
    tracer = get_tracer(task.trace_path)
    with tracer.span(
        "engine.shard",
        parent=task.trace_parent,
        index=task.index,
        attempt=task.attempt,
        seed=task.config.seed,
    ) as span:
        _maybe_fail(task)
        started = time.perf_counter()
        if task.window is None:
            result = _run_passive_shard(task)
        else:
            result = _run_window_shard(task)
        result.wall_s = time.perf_counter() - started
        span.set(records=result.records)
        if tracer.enabled:
            registry = MetricsRegistry()
            registry.count("engine.shards_computed")
            registry.count("engine.records_generated", result.records)
            registry.observe("engine.shard_s", result.wall_s)
            result.metrics = registry.snapshot()
        if task.checkpoint_dir:
            # Imported lazily so the worker module stays import-light.
            from repro.engine.checkpoint import CheckpointStore

            with tracer.span("engine.checkpoint.store", index=task.index):
                CheckpointStore(task.checkpoint_dir, task.fingerprint).store(
                    result
                )
    return result


def execute_batch(tasks: tuple[ShardTask, ...]) -> list[ShardResult]:
    """Run a batch of shards sequentially in this process.

    Each shard is checkpointed as soon as it finishes, so a crash mid-batch
    preserves every already-completed shard.
    """
    return [execute_shard(task) for task in tasks]


def with_attempt(tasks: tuple[ShardTask, ...], attempt: int) -> tuple[ShardTask, ...]:
    """Rebuild a batch with the given attempt number (for retries)."""
    return tuple(replace(task, attempt=attempt) for task in tasks)
