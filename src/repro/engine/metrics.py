"""Engine observability: per-shard execution metrics and the run report.

An :class:`EngineReport` is produced by every engine run.  It records, per
shard: the route span, wall time, record count, retry count, and whether the
shard was served from a checkpoint or the shard cache — plus run-level
aggregates (worker utilisation, pool rebuilds after hard worker deaths,
merge time, cache hit/miss counters).  The report serialises to JSON so
campaign farms can scrape it; ``schema_version`` lets scrapers detect format
drift, and :meth:`EngineReport.from_obj` round-trips the JSON form.
"""

from __future__ import annotations

import json
import os
import pathlib
from dataclasses import dataclass, field

__all__ = ["ShardMetrics", "EngineReport", "REPORT_SCHEMA_VERSION"]

#: Version of the JSON report format.  Bump whenever a field is added,
#: removed, or changes meaning; scrapers compare it before parsing.
#: History: 1 = initial engine report; 2 = adds schema_version itself,
#: per-shard ``from_cache``, and run-level ``cache_hits``/``cache_misses``;
#: 3 = per-shard ``wall_s`` at full precision, optional run-level
#: ``metrics`` snapshot (see ``repro.obs.metrics``).
REPORT_SCHEMA_VERSION = 3


@dataclass(frozen=True, slots=True)
class ShardMetrics:
    """Execution statistics of one shard."""

    index: int
    start_km: float
    end_km: float
    wall_s: float
    records: int
    retries: int
    from_checkpoint: bool
    from_cache: bool = False

    def to_obj(self) -> dict:
        # Rounding policy: the route span (start_km/end_km) is rounded —
        # it is cosmetic positioning, metre precision in a JSON report
        # buys nothing.  Timings are NOT rounded: ``wall_s`` must carry
        # full float precision so critical-path sums reconstructed by
        # ``python -m repro.obs`` from the trace agree with report totals
        # exactly instead of drifting by the rounding error times the
        # shard count.  (Schema v2 rounded wall_s to 4 decimals; v3 fixed
        # that.)
        return {
            "index": self.index,
            "start_km": round(self.start_km, 3),
            "end_km": round(self.end_km, 3),
            "wall_s": self.wall_s,
            "records": self.records,
            "retries": self.retries,
            "from_checkpoint": self.from_checkpoint,
            "from_cache": self.from_cache,
        }

    @classmethod
    def from_obj(cls, obj: dict) -> "ShardMetrics":
        """Parse the JSON form; unknown fields are ignored.

        Only ``index`` and the route span are required — a report written
        by a newer schema version that added or renamed auxiliary fields
        still parses, with defaults standing in for what's missing.
        """
        return cls(
            index=int(obj["index"]),
            start_km=float(obj["start_km"]),
            end_km=float(obj["end_km"]),
            wall_s=float(obj.get("wall_s", 0.0)),
            records=int(obj.get("records", 0)),
            retries=int(obj.get("retries", 0)),
            from_checkpoint=bool(obj.get("from_checkpoint", False)),
            from_cache=bool(obj.get("from_cache", False)),
        )


@dataclass
class EngineReport:
    """Everything observable about one engine run."""

    executor: str
    workers: int
    n_windows: int
    n_batches: int
    shards: list[ShardMetrics] = field(default_factory=list)
    total_wall_s: float = 0.0
    merge_s: float = 0.0
    pool_rebuilds: int = 0
    validated: bool = False
    #: Shards served from / missed by the pluggable shard-result store
    #: (zero when no store is configured; checkpoints count separately).
    cache_hits: int = 0
    cache_misses: int = 0
    #: Optional merged metrics snapshot (``repro.obs.metrics`` shape:
    #: counters/gauges/histograms).  Populated only when the run was
    #: traced; ``None`` keeps untraced reports byte-compatible with v2
    #: consumers that ignore unknown fields.
    metrics: dict | None = None

    @property
    def total_records(self) -> int:
        return sum(s.records for s in self.shards)

    @property
    def total_retries(self) -> int:
        return sum(s.retries for s in self.shards)

    @property
    def checkpoint_hits(self) -> int:
        return sum(1 for s in self.shards if s.from_checkpoint)

    @property
    def shard_wall_s(self) -> float:
        """Summed per-shard compute time (excludes replayed shards)."""
        return sum(
            s.wall_s for s in self.shards
            if not (s.from_checkpoint or s.from_cache)
        )

    def cache_hit_ratio(self) -> float:
        """Hits over store lookups; 0.0 when no store was configured."""
        looked_up = self.cache_hits + self.cache_misses
        return self.cache_hits / looked_up if looked_up else 0.0

    def worker_utilisation(self) -> float:
        """Fraction of worker capacity kept busy by shard compute.

        ``shard_wall / (workers × total_wall)``: 1.0 means perfectly packed
        workers, low values mean stragglers or per-run overhead dominate.
        """
        if self.total_wall_s <= 0.0 or self.workers <= 0:
            return 0.0
        return min(self.shard_wall_s / (self.workers * self.total_wall_s), 1.0)

    def to_obj(self) -> dict:
        # Same rounding policy as ShardMetrics.to_obj: derived ratios are
        # rounded (presentation), raw timings are not (must reconcile
        # exactly with trace-derived sums).
        obj = {
            "schema_version": REPORT_SCHEMA_VERSION,
            "executor": self.executor,
            "workers": self.workers,
            "n_windows": self.n_windows,
            "n_batches": self.n_batches,
            "total_wall_s": self.total_wall_s,
            "merge_s": self.merge_s,
            "pool_rebuilds": self.pool_rebuilds,
            "validated": self.validated,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_ratio": round(self.cache_hit_ratio(), 4),
            "total_records": self.total_records,
            "total_retries": self.total_retries,
            "checkpoint_hits": self.checkpoint_hits,
            "worker_utilisation": round(self.worker_utilisation(), 4),
            "shards": [s.to_obj() for s in self.shards],
        }
        if self.metrics is not None:
            obj["metrics"] = self.metrics
        return obj

    @classmethod
    def from_obj(cls, obj: dict) -> "EngineReport":
        """Rebuild a report from its JSON form (derived fields recomputed).

        Tolerant of **newer** schema versions: fields this build doesn't
        know are ignored, and auxiliary fields that a future version might
        rename or drop fall back to defaults — only the structural quartet
        (executor/workers/n_windows/n_batches) is required.  Scrapers that
        need strict parsing should compare ``schema_version`` themselves.
        """
        return cls(
            executor=str(obj["executor"]),
            workers=int(obj["workers"]),
            n_windows=int(obj["n_windows"]),
            n_batches=int(obj["n_batches"]),
            shards=[ShardMetrics.from_obj(s) for s in obj.get("shards", [])],
            total_wall_s=float(obj.get("total_wall_s", 0.0)),
            merge_s=float(obj.get("merge_s", 0.0)),
            pool_rebuilds=int(obj.get("pool_rebuilds", 0)),
            validated=bool(obj.get("validated", False)),
            cache_hits=int(obj.get("cache_hits", 0)),
            cache_misses=int(obj.get("cache_misses", 0)),
            metrics=obj.get("metrics"),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_obj(), indent=2, sort_keys=True)

    def save(self, path: str | os.PathLike) -> None:
        """Write the report as JSON, atomically."""
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        try:
            tmp.write_text(self.to_json() + "\n")
            os.replace(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)
