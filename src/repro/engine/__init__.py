"""repro.engine — sharded, fault-tolerant campaign execution.

The single-process :class:`~repro.campaign.runner.DriveCampaign` regenerates
the paper's 8-day, 5711 km dataset one tick at a time; this package runs the
same campaign as a set of independent **route shards**:

1. the :mod:`planner <repro.engine.planner>` splits the route into canonical
   distance windows — a pure function of the campaign config, never of the
   executor topology;
2. :mod:`workers <repro.engine.worker>` execute each window with a
   deterministic per-shard RNG substream (``RngFactory(seed).shard(i)``), in
   parallel processes or serially in-process;
3. the :mod:`merger <repro.engine.merge>` stitches shard outputs back into
   one :class:`~repro.campaign.dataset.DriveDataset` in canonical order.

The same root seed therefore yields a **bit-identical dataset for any shard
batching or worker count** — including the serial path used by
:func:`repro.generate_dataset`.  Robustness rides on top: per-shard
:mod:`checkpoints <repro.engine.checkpoint>` let an interrupted run resume
from completed shards, failed workers are retried with bounded budgets (hard
worker deaths rebuild the process pool), and every run emits an
:class:`~repro.engine.metrics.EngineReport`.

Quickstart::

    from repro.engine import generate_dataset_parallel
    dataset = generate_dataset_parallel(seed=42, scale=0.2, workers=4)
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Mapping

from repro.campaign.dataset import DriveDataset
from repro.campaign.runner import CampaignConfig, CampaignWindow
from repro.campaign.validation import validate_dataset
from repro.engine.checkpoint import CheckpointStore, config_fingerprint
from repro.engine.merge import merge_shard_results
from repro.engine.metrics import EngineReport, ShardMetrics
from repro.engine.planner import (
    PASSIVE_SHARD_INDEX,
    PlannerParams,
    ShardPlan,
    plan_campaign,
)
from repro.engine.worker import (
    FaultSpec,
    ShardResult,
    ShardTask,
    execute_batch,
    with_attempt,
)
from repro.errors import EngineError
from repro.geo.route import Route, build_cross_country_route

__all__ = [
    "EngineConfig",
    "EngineReport",
    "FaultSpec",
    "PlannerParams",
    "ShardPlan",
    "generate_dataset_parallel",
    "plan_campaign",
    "run_engine",
]


@dataclass(frozen=True)
class EngineConfig:
    """Configuration of one engine run."""

    campaign: CampaignConfig = field(default_factory=CampaignConfig)
    #: Worker processes; ``None`` uses the machine's CPU count.
    workers: int | None = None
    #: Number of execution batches the windows are grouped into; ``None``
    #: submits every window as its own batch.  Pure scheduling knob — the
    #: merged dataset is identical for every value.
    shards: int | None = None
    #: ``"process"`` (ProcessPoolExecutor) or ``"serial"`` (in-process).
    executor: str = "process"
    planner: PlannerParams = field(default_factory=PlannerParams)
    #: Directory for per-shard checkpoints; ``None`` disables them.
    checkpoint_dir: str | None = None
    #: Retries per shard batch before the run is abandoned.
    max_retries: int = 2
    #: Where to write the JSON :class:`EngineReport`; ``None`` skips it.
    report_path: str | None = None
    #: Run :func:`validate_dataset` on the merged result and raise on issues.
    validate: bool = False
    #: Testing hook: per-window injected faults (see :class:`FaultSpec`).
    inject_faults: Mapping[int, FaultSpec] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.executor not in ("process", "serial"):
            raise EngineError(f"unknown executor {self.executor!r}")
        if self.workers is not None and self.workers < 1:
            raise EngineError("workers must be >= 1")
        if self.max_retries < 0:
            raise EngineError("max_retries must be >= 0")


# -- task construction -------------------------------------------------------


def _build_tasks(
    config: EngineConfig,
    plan: ShardPlan,
    pending_windows: list[CampaignWindow],
    passive_pending: bool,
    fingerprint: str,
    route: Route | None,
) -> list[tuple[ShardTask, ...]]:
    """Group pending work into submission batches (passive shard first)."""

    def task(window: CampaignWindow | None) -> ShardTask:
        index = PASSIVE_SHARD_INDEX if window is None else window.index
        return ShardTask(
            config=config.campaign,
            window=window,
            checkpoint_dir=config.checkpoint_dir,
            fingerprint=fingerprint,
            fault=config.inject_faults.get(index),
            parent_pid=os.getpid(),
            route=route,
        )

    batches: list[tuple[ShardTask, ...]] = []
    if passive_pending:
        batches.append((task(None),))
    window_plan = ShardPlan(
        windows=tuple(pending_windows),
        nominal_cycle_s=plan.nominal_cycle_s,
        window_km=plan.window_km,
    )
    if pending_windows:
        batches.extend(
            tuple(task(w) for w in group)
            for group in window_plan.batches(config.shards)
        )
    return batches


# -- executors ---------------------------------------------------------------


def _run_serial(
    batches: list[tuple[ShardTask, ...]],
    config: EngineConfig,
    results: dict[int, ShardResult],
    retries: dict[int, int],
) -> None:
    for batch in batches:
        attempt = 0
        while True:
            try:
                outcomes = execute_batch(with_attempt(batch, attempt))
            except Exception as exc:
                attempt += 1
                if attempt > config.max_retries:
                    raise EngineError(
                        f"shard batch {[t.index for t in batch]} failed after "
                        f"{attempt} attempts: {exc}",
                        shard_index=batch[0].index,
                    ) from exc
                continue
            for outcome in outcomes:
                results[outcome.index] = outcome
                retries[outcome.index] = attempt
            break


def _run_process(
    batches: list[tuple[ShardTask, ...]],
    config: EngineConfig,
    workers: int,
    results: dict[int, ShardResult],
    retries: dict[int, int],
    report: EngineReport,
) -> None:
    outstanding: dict[int, tuple[ShardTask, ...]] = dict(enumerate(batches))
    attempts: dict[int, int] = {key: 0 for key in outstanding}
    pool = ProcessPoolExecutor(max_workers=workers)

    def record(key: int, outcomes: list[ShardResult]) -> None:
        for outcome in outcomes:
            results[outcome.index] = outcome
            retries[outcome.index] = attempts[key]
        del outstanding[key]

    def charge(key: int, exc: BaseException) -> None:
        attempts[key] += 1
        if attempts[key] > config.max_retries:
            batch = outstanding[key]
            raise EngineError(
                f"shard batch {[t.index for t in batch]} failed after "
                f"{attempts[key]} attempts: {exc}",
                shard_index=batch[0].index,
            ) from exc

    try:
        while outstanding:
            futures = {
                pool.submit(execute_batch, with_attempt(batch, attempts[key])): key
                for key, batch in outstanding.items()
            }
            pool_broken = False
            charged: set[int] = set()
            not_done = set(futures)
            while not_done and not pool_broken:
                done, not_done = wait(not_done, return_when=FIRST_COMPLETED)
                for future in done:
                    key = futures[future]
                    try:
                        record(key, future.result())
                    except BrokenProcessPool as exc:
                        # The pool is unusable: salvage nothing more from
                        # this round, charge the still-unfinished batches
                        # one attempt each, and rebuild the pool.
                        pool_broken = True
                        broken_exc = exc
                    except Exception as exc:
                        # Soft shard failure — the worker survived, so the
                        # pool is still usable: spend one retry and leave the
                        # batch outstanding for the next submission round.
                        charge(key, exc)
                        charged.add(key)
            if pool_broken:
                # Futures that finished before the crash may still hold
                # usable results — keep them, retry only the rest.
                for future, key in futures.items():
                    if key not in outstanding or key in charged or not future.done():
                        continue
                    try:
                        record(key, future.result())
                    except BaseException as exc:
                        # Charge the batch with its real failure, not the
                        # generic pool error, so the root cause surfaces if
                        # the retry budget runs out.
                        charge(key, exc)
                        charged.add(key)
                for key in list(outstanding):
                    if key not in charged:
                        charge(key, broken_exc)
                pool.shutdown(wait=False, cancel_futures=True)
                pool = ProcessPoolExecutor(max_workers=workers)
                report.pool_rebuilds += 1
    finally:
        pool.shutdown(wait=False, cancel_futures=True)


# -- entry points ------------------------------------------------------------


def run_engine(
    config: EngineConfig, route: Route | None = None
) -> tuple[DriveDataset, EngineReport]:
    """Execute a campaign under the sharded engine.

    Returns the merged dataset and the execution report.  Raises
    :class:`EngineError` when a shard exhausts its retry budget or (with
    ``config.validate``) the merged dataset violates an invariant.
    """
    started = time.perf_counter()
    campaign_route = route or build_cross_country_route()
    plan = plan_campaign(config.campaign, campaign_route, config.planner)
    fingerprint = config_fingerprint(config.campaign, plan)

    results: dict[int, ShardResult] = {}
    retries: dict[int, int] = {}
    if config.checkpoint_dir is not None:
        store = CheckpointStore(config.checkpoint_dir, fingerprint)
        indices = [PASSIVE_SHARD_INDEX] + [w.index for w in plan.windows]
        results.update(store.load_all(indices))
        retries.update({index: 0 for index in results})

    pending = [w for w in plan.windows if w.index not in results]
    passive_pending = PASSIVE_SHARD_INDEX not in results
    batches = _build_tasks(
        config, plan, pending, passive_pending, fingerprint,
        route if route is not None else None,
    )

    workers = config.workers or os.cpu_count() or 1
    executor = config.executor
    if executor == "process" and batches:
        try:
            # Run a trivial task so the probe exercises real worker spawning
            # — with lazily-spawning start methods, merely constructing the
            # pool can succeed on platforms where running tasks would fail.
            with ProcessPoolExecutor(max_workers=1) as _probe:
                _probe.submit(int).result()
        except (OSError, ValueError, NotImplementedError, BrokenProcessPool):
            executor = "serial"  # sandboxed platforms without process pools

    report = EngineReport(
        executor=executor,
        workers=workers if executor == "process" else 1,
        n_windows=plan.n_windows,
        n_batches=len(batches),
    )

    if executor == "serial" or not batches:
        _run_serial(batches, config, results, retries)
    else:
        _run_process(batches, config, workers, results, retries, report)

    merge_started = time.perf_counter()
    dataset = merge_shard_results(
        config.campaign, plan, results, campaign_route.total_length_km
    )
    report.merge_s = time.perf_counter() - merge_started

    window_span = {w.index: (w.start_m, w.end_m) for w in plan.windows}
    window_span[PASSIVE_SHARD_INDEX] = (0.0, campaign_route.total_length_m)
    report.shards = [
        ShardMetrics(
            index=index,
            start_km=window_span[index][0] / 1000.0,
            end_km=window_span[index][1] / 1000.0,
            wall_s=result.wall_s,
            records=result.records,
            retries=retries.get(index, 0),
            from_checkpoint=result.from_checkpoint,
        )
        for index, result in sorted(results.items())
    ]
    report.total_wall_s = time.perf_counter() - started

    if config.validate:
        outcome = validate_dataset(dataset)
        report.validated = True
        if not outcome.ok:
            raise EngineError(
                "merged dataset failed validation: "
                + "; ".join(str(issue) for issue in outcome.issues[:5])
            )
    if config.report_path is not None:
        report.save(config.report_path)
    return dataset, report


def generate_dataset_parallel(
    seed: int = 42,
    scale: float = 1.0,
    include_apps: bool = True,
    include_static: bool = True,
    *,
    workers: int | None = None,
    shards: int | None = None,
    executor: str = "process",
    checkpoint_dir: str | None = None,
    max_retries: int = 2,
    report_path: str | None = None,
    validate: bool = False,
    window_km: float | None = None,
) -> DriveDataset:
    """Generate a campaign dataset on all available cores.

    Drop-in parallel counterpart of :func:`repro.generate_dataset`: the same
    ``seed`` and ``scale`` produce a bit-identical dataset at any ``workers``
    or ``shards`` setting, because shard decomposition and per-shard RNG
    substreams depend only on the campaign configuration.

    Parameters beyond the :func:`repro.generate_dataset` quartet:

    workers / shards / executor:
        Execution topology (see :class:`EngineConfig`) — result-neutral.
    checkpoint_dir:
        Enables per-shard checkpoints; rerunning with the same directory and
        configuration resumes from completed shards.
    max_retries / report_path / validate:
        Fault-tolerance budget, JSON report output, and post-merge
        validation.
    window_km:
        Override the planner's adaptive shard window length.
    """
    config = EngineConfig(
        campaign=CampaignConfig(
            seed=seed, scale=scale,
            include_apps=include_apps, include_static=include_static,
        ),
        workers=workers,
        shards=shards,
        executor=executor,
        planner=PlannerParams(window_km=window_km),
        checkpoint_dir=checkpoint_dir,
        max_retries=max_retries,
        report_path=report_path,
        validate=validate,
    )
    dataset, _report = run_engine(config)
    return dataset
