"""repro.engine — sharded, fault-tolerant campaign execution.

The single-process :class:`~repro.campaign.runner.DriveCampaign` regenerates
the paper's 8-day, 5711 km dataset one tick at a time; this package runs the
same campaign as a set of independent **route shards**:

1. the :mod:`planner <repro.engine.planner>` splits the route into canonical
   distance windows — a pure function of the campaign config, never of the
   executor topology;
2. :mod:`workers <repro.engine.worker>` execute each window with a
   deterministic per-shard RNG substream (``RngFactory(seed).shard(i)``), in
   parallel processes or serially in-process;
3. the :mod:`merger <repro.engine.merge>` stitches shard outputs back into
   one :class:`~repro.campaign.dataset.DriveDataset` in canonical order.

The same root seed therefore yields a **bit-identical dataset for any shard
batching or worker count** — including the serial path used by
:func:`repro.generate_dataset`.  Robustness rides on top: per-shard
:mod:`checkpoints <repro.engine.checkpoint>` let an interrupted run resume
from completed shards, failed workers are retried with bounded budgets (hard
worker deaths rebuild the process pool), and every run emits an
:class:`~repro.engine.metrics.EngineReport`.

Two extension points serve multi-run drivers such as :mod:`repro.sweep`:

* :func:`run_engine` accepts a **pluggable shard-result store** (e.g. the
  content-addressed :class:`~repro.sweep.cache.ShardCache`) consulted before
  computing a shard and fed every freshly computed result;
* :func:`execute_jobs` is the seed-agnostic execution core — tagged batches
  in, results out — and a :class:`WorkerPool` can be shared across many
  calls so a 50-seed sweep reuses one process pool instead of spinning up
  fifty.

Quickstart::

    from repro.engine import generate_dataset_parallel
    dataset = generate_dataset_parallel(seed=42, scale=0.2, workers=4)
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Hashable, Mapping, Protocol, Sequence

from repro.campaign.dataset import DriveDataset
from repro.campaign.runner import CampaignConfig, CampaignWindow
from repro.campaign.validation import validate_dataset
from repro.engine.checkpoint import CheckpointStore, config_fingerprint
from repro.engine.merge import merge_shard_results
from repro.engine.metrics import EngineReport, ShardMetrics
from repro.engine.planner import (
    PASSIVE_SHARD_INDEX,
    PlannerParams,
    ShardPlan,
    plan_campaign,
)
from repro.engine.worker import (
    FaultSpec,
    ShardResult,
    ShardTask,
    execute_batch,
    with_attempt,
)
from repro.errors import EngineError
from repro.geo.route import Route, build_cross_country_route
from repro.obs.metrics import MetricsRegistry, merge_snapshots
from repro.obs.trace import get_tracer

__all__ = [
    "EngineConfig",
    "EngineReport",
    "FaultSpec",
    "PlannerParams",
    "ShardPlan",
    "ShardResultStore",
    "WorkerPool",
    "build_task_batches",
    "execute_jobs",
    "generate_dataset_parallel",
    "plan_campaign",
    "process_pool_usable",
    "run_engine",
]


class ShardResultStore(Protocol):
    """A pluggable store of completed shard results.

    ``load_many`` returns every shard it can replay for the given identity;
    ``store`` is fed each freshly computed result.  Both receive the run's
    configuration fingerprint and campaign seed, which together with the
    shard index fully address one shard's computation.  A store may only
    make a run faster, never wrong: anything it cannot serve verbatim it
    must omit.
    """

    def load_many(
        self, fingerprint: str, seed: int, indices: Sequence[int]
    ) -> dict[int, ShardResult]: ...

    def store(self, fingerprint: str, seed: int, result: ShardResult) -> None: ...


@dataclass(frozen=True)
class EngineConfig:
    """Configuration of one engine run."""

    campaign: CampaignConfig = field(default_factory=CampaignConfig)
    #: Worker processes; ``None`` uses the machine's CPU count.
    workers: int | None = None
    #: Number of execution batches the windows are grouped into; ``None``
    #: submits every window as its own batch.  Pure scheduling knob — the
    #: merged dataset is identical for every value.
    shards: int | None = None
    #: ``"process"`` (ProcessPoolExecutor) or ``"serial"`` (in-process).
    executor: str = "process"
    planner: PlannerParams = field(default_factory=PlannerParams)
    #: Directory for per-shard checkpoints; ``None`` disables them.
    checkpoint_dir: str | None = None
    #: Retries per shard batch before the run is abandoned.
    max_retries: int = 2
    #: Where to write the JSON :class:`EngineReport`; ``None`` skips it.
    report_path: str | None = None
    #: Run :func:`validate_dataset` on the merged result and raise on issues.
    validate: bool = False
    #: Columnar store catalog directory (:class:`repro.store.Catalog`); the
    #: merged dataset is ingested as a per-seed partition.  ``None`` skips.
    store_dir: str | None = None
    #: JSONL trace file (see :mod:`repro.obs`): phase spans, per-shard
    #: worker spans, and a merged metrics snapshot are appended there, and
    #: ``EngineReport.metrics`` is populated.  ``None`` (the default)
    #: disables tracing entirely — every instrumentation point degrades to
    #: the no-op tracer.  Deliberately excluded from the checkpoint/cache
    #: fingerprint: tracing may never change what gets computed.
    trace_path: str | None = None
    #: Testing hook: per-window injected faults (see :class:`FaultSpec`).
    inject_faults: Mapping[int, FaultSpec] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.executor not in ("process", "serial"):
            raise EngineError(f"unknown executor {self.executor!r}")
        if self.workers is not None and self.workers < 1:
            raise EngineError("workers must be >= 1")
        if self.max_retries < 0:
            raise EngineError("max_retries must be >= 0")


# -- task construction -------------------------------------------------------


def build_task_batches(
    config: EngineConfig,
    plan: ShardPlan,
    pending_windows: list[CampaignWindow],
    passive_pending: bool,
    fingerprint: str,
    route: Route | None,
    trace_parent: str | None = None,
) -> list[tuple[ShardTask, ...]]:
    """Group pending work into submission batches (passive shard first).

    ``trace_parent`` is the orchestrator's execute-span id; it rides on
    every task so worker-emitted shard spans attach under it.
    """

    def task(window: CampaignWindow | None) -> ShardTask:
        index = PASSIVE_SHARD_INDEX if window is None else window.index
        return ShardTask(
            config=config.campaign,
            window=window,
            checkpoint_dir=config.checkpoint_dir,
            fingerprint=fingerprint,
            fault=config.inject_faults.get(index),
            parent_pid=os.getpid(),
            route=route,
            trace_path=config.trace_path,
            trace_parent=trace_parent,
        )

    batches: list[tuple[ShardTask, ...]] = []
    if passive_pending:
        batches.append((task(None),))
    window_plan = ShardPlan(
        windows=tuple(pending_windows),
        nominal_cycle_s=plan.nominal_cycle_s,
        window_km=plan.window_km,
    )
    if pending_windows:
        batches.extend(
            tuple(task(w) for w in group)
            for group in window_plan.batches(config.shards)
        )
    return batches


# -- executors ---------------------------------------------------------------

#: Memoized result of the process-pool availability probe.  One probe pool
#: per *process*, not per engine run — a 50-seed sweep must not spawn 50
#: throwaway pools just to learn, 50 times, what the platform supports.
_POOL_PROBE_OK: bool | None = None


def process_pool_usable() -> bool:
    """Whether this platform can actually run ProcessPoolExecutor tasks.

    Runs one trivial task through a single-worker pool so the probe
    exercises real worker spawning — with lazily-spawning start methods,
    merely constructing the pool can succeed on platforms where running
    tasks would fail.  The verdict is memoized at module level.
    """
    global _POOL_PROBE_OK
    if _POOL_PROBE_OK is None:
        try:
            with ProcessPoolExecutor(max_workers=1) as probe:
                probe.submit(int).result()
            _POOL_PROBE_OK = True
        except (OSError, ValueError, NotImplementedError, BrokenProcessPool):
            _POOL_PROBE_OK = False  # sandboxed platforms without process pools
    return _POOL_PROBE_OK


class WorkerPool:
    """A reusable, rebuildable process pool shared across engine calls.

    The engine rebuilds the underlying ``ProcessPoolExecutor`` in place
    after a hard worker death, so a handle stays valid across failures and
    across any number of :func:`execute_jobs` / :func:`run_engine` calls.
    Callers that pass their own pool keep ownership: the engine never shuts
    down a borrowed pool, only :meth:`shutdown` (or the context manager
    exit) does.
    """

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise EngineError("workers must be >= 1")
        self.workers = workers
        self.rebuilds = 0
        self._pool: ProcessPoolExecutor | None = None

    @property
    def executor(self) -> ProcessPoolExecutor:
        """The live pool, created lazily on first use."""
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self._pool

    def rebuild(self) -> None:
        """Discard a broken pool and start a fresh one."""
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
        self._pool = ProcessPoolExecutor(max_workers=self.workers)
        self.rebuilds += 1

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()


@dataclass
class ExecutionStats:
    """What :func:`execute_jobs` observed while draining its job list."""

    #: Executor actually used ("serial" after the platform fallback).
    executor: str
    workers: int
    pool_rebuilds: int = 0


#: Callback invoked once per completed batch: ``(tag, outcomes, retries)``.
ResultCallback = Callable[[Hashable, list[ShardResult], int], None]


def _execute_serial(
    jobs: Sequence[tuple[Hashable, tuple[ShardTask, ...]]],
    max_retries: int,
    on_result: ResultCallback,
) -> None:
    for tag, batch in jobs:
        attempt = 0
        while True:
            try:
                outcomes = execute_batch(with_attempt(batch, attempt))
            except Exception as exc:
                attempt += 1
                if attempt > max_retries:
                    raise EngineError(
                        f"shard batch {[t.index for t in batch]} failed after "
                        f"{attempt} attempts: {exc}",
                        shard_index=batch[0].index,
                    ) from exc
                continue
            on_result(tag, outcomes, attempt)
            break


def _execute_process(
    jobs: Sequence[tuple[Hashable, tuple[ShardTask, ...]]],
    max_retries: int,
    on_result: ResultCallback,
    pool: WorkerPool,
) -> int:
    """Drain ``jobs`` through ``pool``; returns the number of pool rebuilds."""
    outstanding: dict[Hashable, tuple[ShardTask, ...]] = dict(jobs)
    if len(outstanding) != len(jobs):
        raise EngineError("job tags must be unique")
    attempts: dict[Hashable, int] = {tag: 0 for tag in outstanding}
    rebuilds = 0

    def record(tag: Hashable, outcomes: list[ShardResult]) -> None:
        on_result(tag, outcomes, attempts[tag])
        del outstanding[tag]

    def charge(tag: Hashable, exc: BaseException) -> None:
        attempts[tag] += 1
        if attempts[tag] > max_retries:
            batch = outstanding[tag]
            raise EngineError(
                f"shard batch {[t.index for t in batch]} failed after "
                f"{attempts[tag]} attempts: {exc}",
                shard_index=batch[0].index,
            ) from exc

    while outstanding:
        futures = {
            pool.executor.submit(execute_batch, with_attempt(batch, attempts[tag])): tag
            for tag, batch in outstanding.items()
        }
        pool_broken = False
        charged: set[Hashable] = set()
        not_done = set(futures)
        while not_done and not pool_broken:
            done, not_done = wait(not_done, return_when=FIRST_COMPLETED)
            for future in done:
                tag = futures[future]
                try:
                    record(tag, future.result())
                except BrokenProcessPool as exc:
                    # The pool is unusable: salvage nothing more from
                    # this round, charge the still-unfinished batches
                    # one attempt each, and rebuild the pool.
                    pool_broken = True
                    broken_exc = exc
                except Exception as exc:
                    # Soft shard failure — the worker survived, so the
                    # pool is still usable: spend one retry and leave the
                    # batch outstanding for the next submission round.
                    charge(tag, exc)
                    charged.add(tag)
        if pool_broken:
            # Futures that finished before the crash may still hold
            # usable results — keep them, retry only the rest.
            for future, tag in futures.items():
                if tag not in outstanding or tag in charged or not future.done():
                    continue
                try:
                    record(tag, future.result())
                except BaseException as exc:
                    # Charge the batch with its real failure, not the
                    # generic pool error, so the root cause surfaces if
                    # the retry budget runs out.
                    charge(tag, exc)
                    charged.add(tag)
            for tag in list(outstanding):
                if tag not in charged:
                    charge(tag, broken_exc)
            pool.rebuild()
            rebuilds += 1
    return rebuilds


def execute_jobs(
    jobs: Sequence[tuple[Hashable, tuple[ShardTask, ...]]],
    on_result: ResultCallback,
    *,
    executor: str = "process",
    workers: int | None = None,
    max_retries: int = 2,
    pool: WorkerPool | None = None,
) -> ExecutionStats:
    """Run tagged shard batches to completion with retries and pool recovery.

    The seed-agnostic execution core shared by :func:`run_engine` and the
    multi-seed sweep driver: each job is an opaque ``tag`` plus a batch of
    :class:`ShardTask`; ``on_result(tag, outcomes, retries)`` fires as each
    batch completes.  A borrowed :class:`WorkerPool` is reused and left
    running; otherwise a private pool is created and torn down.  Raises
    :class:`EngineError` once any batch exhausts ``max_retries``.
    """
    n_workers = workers or os.cpu_count() or 1
    if executor == "process" and jobs and not process_pool_usable():
        executor = "serial"
    stats = ExecutionStats(
        executor=executor, workers=n_workers if executor == "process" else 1
    )
    if executor == "serial" or not jobs:
        _execute_serial(jobs, max_retries, on_result)
        return stats
    if pool is not None:
        stats.pool_rebuilds = _execute_process(jobs, max_retries, on_result, pool)
        return stats
    with WorkerPool(n_workers) as owned:
        stats.pool_rebuilds = _execute_process(jobs, max_retries, on_result, owned)
    return stats


# -- entry points ------------------------------------------------------------


def run_engine(
    config: EngineConfig,
    route: Route | None = None,
    *,
    shard_store: ShardResultStore | None = None,
    pool: WorkerPool | None = None,
) -> tuple[DriveDataset, EngineReport]:
    """Execute a campaign under the sharded engine.

    Returns the merged dataset and the execution report.  Raises
    :class:`EngineError` when a shard exhausts its retry budget or (with
    ``config.validate``) the merged dataset violates an invariant.

    ``shard_store`` plugs a shared result store (such as the sweep's
    content-addressed :class:`~repro.sweep.cache.ShardCache`) under the
    engine: matching shards are replayed instead of recomputed, and fresh
    results are stored back.  ``pool`` lets repeated calls share one
    :class:`WorkerPool` instead of spinning up a process pool per run.
    """
    tracer = get_tracer(config.trace_path)
    started = time.perf_counter()
    with tracer.span(
        "engine.run",
        seed=config.campaign.seed,
        scale=config.campaign.scale,
        executor=config.executor,
    ) as root:
        with tracer.span("engine.plan"):
            campaign_route = route or build_cross_country_route()
            plan = plan_campaign(config.campaign, campaign_route, config.planner)
            fingerprint = config_fingerprint(config.campaign, plan)
        indices = [PASSIVE_SHARD_INDEX] + [w.index for w in plan.windows]

        results: dict[int, ShardResult] = {}
        retries: dict[int, int] = {}
        if config.checkpoint_dir is not None:
            with tracer.span("engine.checkpoint.load") as sp:
                store = CheckpointStore(config.checkpoint_dir, fingerprint)
                results.update(store.load_all(indices))
                retries.update({index: 0 for index in results})
                sp.set(hits=len(results))

        cache_hits = cache_misses = 0
        if shard_store is not None:
            with tracer.span("engine.cache.load") as sp:
                remaining = [i for i in indices if i not in results]
                cached = shard_store.load_many(
                    fingerprint, config.campaign.seed, remaining
                )
                for result in cached.values():
                    result.from_cache = True
                results.update(cached)
                retries.update({index: 0 for index in cached})
                cache_hits = len(cached)
                cache_misses = len(remaining) - len(cached)
                sp.set(hits=cache_hits, misses=cache_misses)

        pending = [w for w in plan.windows if w.index not in results]
        passive_pending = PASSIVE_SHARD_INDEX not in results

        def on_result(
            tag: Hashable, outcomes: list[ShardResult], attempt: int
        ) -> None:
            for outcome in outcomes:
                results[outcome.index] = outcome
                retries[outcome.index] = attempt
                if shard_store is not None:
                    shard_store.store(fingerprint, config.campaign.seed, outcome)

        with tracer.span("engine.execute") as exec_span:
            batches = build_task_batches(
                config, plan, pending, passive_pending, fingerprint, route,
                trace_parent=exec_span.span_id,
            )
            exec_span.set(batches=len(batches))
            stats = execute_jobs(
                list(enumerate(batches)),
                on_result,
                executor=config.executor,
                workers=config.workers,
                max_retries=config.max_retries,
                pool=pool,
            )

        report = EngineReport(
            executor=stats.executor,
            workers=stats.workers,
            n_windows=plan.n_windows,
            n_batches=len(batches),
            pool_rebuilds=stats.pool_rebuilds,
            cache_hits=cache_hits,
            cache_misses=cache_misses,
        )

        merge_started = time.perf_counter()
        with tracer.span("engine.merge", seed=config.campaign.seed) as merge_span:
            dataset = merge_shard_results(
                config.campaign, plan, results, campaign_route.total_length_km
            )
            report.merge_s = time.perf_counter() - merge_started
            # Freeze the span to the report's merge_s: the trace and the
            # report must quote the *same* float.
            merge_span.dur_s = report.merge_s

        window_span = {w.index: (w.start_m, w.end_m) for w in plan.windows}
        window_span[PASSIVE_SHARD_INDEX] = (0.0, campaign_route.total_length_m)
        report.shards = [
            ShardMetrics(
                index=index,
                start_km=window_span[index][0] / 1000.0,
                end_km=window_span[index][1] / 1000.0,
                wall_s=result.wall_s,
                records=result.records,
                retries=retries.get(index, 0),
                from_checkpoint=result.from_checkpoint,
                from_cache=result.from_cache,
            )
            for index, result in sorted(results.items())
        ]

        if config.validate:
            with tracer.span("engine.validate"):
                outcome = validate_dataset(dataset)
                report.validated = True
                if not outcome.ok:
                    raise EngineError(
                        "merged dataset failed validation: "
                        + "; ".join(str(issue) for issue in outcome.issues[:5])
                    )
        if config.store_dir is not None:
            from repro.store.catalog import Catalog

            with tracer.span("engine.ingest", seed=config.campaign.seed):
                with Catalog(config.store_dir) as catalog:
                    catalog.ingest(dataset)

        if tracer.enabled:
            driver = MetricsRegistry()
            driver.count("engine.runs", 1)
            driver.count("engine.cache.hits", cache_hits)
            driver.count("engine.cache.misses", cache_misses)
            driver.count("engine.pool_rebuilds", stats.pool_rebuilds)
            driver.count("engine.retries", sum(retries.values()))
            # Fold worker snapshots in sorted shard order so the merged
            # section is identical for every executor topology.  Replayed
            # shards (checkpoint/cache) fold too: their sidecars carry the
            # snapshot recorded when the shard was computed, and the results
            # dict holds each shard exactly once, so a resumed run reports
            # the same shard-level totals as an uninterrupted one.
            report.metrics = merge_snapshots(
                [driver.snapshot()]
                + [
                    result.metrics
                    for _, result in sorted(results.items())
                    if result.metrics is not None
                ]
            )
            tracer.emit_metrics(report.metrics, scope="engine")

        # total_wall_s and the root span must quote the SAME float, so the
        # per-phase breakdown printed by ``python -m repro.obs`` sums to
        # the report total exactly.
        report.total_wall_s = time.perf_counter() - started
        root.dur_s = report.total_wall_s

    if config.report_path is not None:
        report.save(config.report_path)
    return dataset, report


def generate_dataset_parallel(
    seed: int = 42,
    scale: float = 1.0,
    include_apps: bool = True,
    include_static: bool = True,
    *,
    workers: int | None = None,
    shards: int | None = None,
    executor: str = "process",
    checkpoint_dir: str | None = None,
    max_retries: int = 2,
    report_path: str | None = None,
    validate: bool = False,
    store_dir: str | None = None,
    window_km: float | None = None,
    trace_path: str | None = None,
) -> DriveDataset:
    """Generate a campaign dataset on all available cores.

    Drop-in parallel counterpart of :func:`repro.generate_dataset`: the same
    ``seed`` and ``scale`` produce a bit-identical dataset at any ``workers``
    or ``shards`` setting, because shard decomposition and per-shard RNG
    substreams depend only on the campaign configuration.

    Parameters beyond the :func:`repro.generate_dataset` quartet:

    workers / shards / executor:
        Execution topology (see :class:`EngineConfig`) — result-neutral.
    checkpoint_dir:
        Enables per-shard checkpoints; rerunning with the same directory and
        configuration resumes from completed shards.
    max_retries / report_path / validate:
        Fault-tolerance budget, JSON report output, and post-merge
        validation.
    store_dir:
        Ingest the merged dataset into a columnar store catalog
        (:mod:`repro.store`) at this directory.
    window_km:
        Override the planner's adaptive shard window length.
    trace_path:
        Append a structured JSONL trace (:mod:`repro.obs`) to this file.
    """
    config = EngineConfig(
        campaign=CampaignConfig(
            seed=seed, scale=scale,
            include_apps=include_apps, include_static=include_static,
        ),
        workers=workers,
        shards=shards,
        executor=executor,
        planner=PlannerParams(window_km=window_km),
        checkpoint_dir=checkpoint_dir,
        max_retries=max_retries,
        report_path=report_path,
        validate=validate,
        store_dir=store_dir,
        trace_path=trace_path,
    )
    dataset, _report = run_engine(config)
    return dataset
