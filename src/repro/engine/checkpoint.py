"""Per-shard checkpointing: resume an interrupted campaign from disk.

Each completed shard is persisted as two sibling files in the checkpoint
directory:

* ``shard-<index>.ds.gz`` — the shard-local dataset, in the exact gzipped
  JSON-lines format of :mod:`repro.campaign.persistence` (atomic,
  byte-reproducible);
* ``shard-<index>.meta.json`` — a small sidecar carrying the configuration
  fingerprint, the cell-count statistics that live outside the dataset, and
  bookkeeping (wall time, record count).

On start-up the engine loads every checkpoint whose fingerprint matches the
current run — seed, scale, cycle plan, and the exact window decomposition
all participate in the fingerprint, so a checkpoint written by a different
configuration (or an incompatible engine version) is silently ignored and
the shard recomputed.  Corrupt or truncated files are likewise treated as
absent: a checkpoint can make a run faster, never wrong.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib

from repro.campaign.persistence import FORMAT_VERSION, load_dataset, save_dataset
from repro.campaign.runner import CampaignConfig
from repro.engine.planner import PASSIVE_SHARD_INDEX, ShardPlan
from repro.engine.worker import ShardResult
from repro.errors import ReproError
from repro.radio.operators import Operator

__all__ = [
    "CheckpointStore",
    "config_fingerprint",
    "shard_key",
    "shard_meta",
    "shard_from_parts",
    "shard_stem",
]

#: Bump when the shard execution semantics change in a way that makes old
#: checkpoints unmergeable.
ENGINE_CHECKPOINT_VERSION = 1

_OP = {op.name: op for op in Operator}


def config_fingerprint(config: CampaignConfig, plan: ShardPlan) -> str:
    """Digest identifying the exact computation a checkpoint belongs to."""
    payload = {
        "engine_version": ENGINE_CHECKPOINT_VERSION,
        "format": FORMAT_VERSION,
        "seed": config.seed,
        "scale": config.scale,
        "tick_s": config.tick_s,
        "include_apps": config.include_apps,
        "include_static": config.include_static,
        "video_duration_s": config.video_duration_s,
        "gaming_duration_s": config.gaming_duration_s,
        "inter_test_gap_s": config.inter_test_gap_s,
        "cycle": [t.name for t in config.cycle.tests],
        "windows": [
            [w.index, round(w.start_m, 3), round(w.end_m, 3), round(w.overrun_m, 3)]
            for w in plan.windows
        ],
    }
    canon = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canon.encode("utf-8")).hexdigest()


def shard_stem(index: int) -> str:
    """Canonical file stem of one shard (``shard-0007``, ``shard-passive``)."""
    return "shard-passive" if index == PASSIVE_SHARD_INDEX else f"shard-{index:04d}"


def shard_key(fingerprint: str, index: int, seed: int) -> str:
    """Content address of one shard result.

    The digest of ``(config_fingerprint, shard_index, shard_seed)`` — the
    complete identity of a shard's computation.  The fingerprint already
    commits to the campaign seed, but the seed participates explicitly so a
    key is self-describing and survives fingerprint-scheme evolution.
    """
    canon = f"{fingerprint}:{shard_stem(index)}:{seed}"
    return hashlib.sha256(canon.encode("utf-8")).hexdigest()


def shard_meta(result: ShardResult, fingerprint: str) -> dict:
    """JSON-able sidecar describing one shard result (sans dataset).

    The metrics snapshot a traced worker recorded rides along, so a shard
    replayed from a checkpoint or cache re-enters the run report with the
    counters of the computation that produced it — a resumed run's merged
    metrics match an uninterrupted run's (resume parity).
    """
    meta = {
        "fingerprint": fingerprint,
        "index": result.index,
        "wall_s": result.wall_s,
        "records": result.records,
        "active_cells": {op.name: n for op, n in result.active_cells.items()},
        "macro_cells": {op.name: n for op, n in result.macro_cells.items()},
    }
    if result.metrics is not None:
        meta["metrics"] = result.metrics
    return meta


def shard_from_parts(index: int, meta: dict, dataset) -> ShardResult:
    """Rebuild a :class:`ShardResult` from its sidecar and dataset."""
    metrics = meta.get("metrics")
    return ShardResult(
        index=index,
        dataset=dataset,
        active_cells={
            _OP[name]: n for name, n in meta.get("active_cells", {}).items()
        },
        macro_cells={
            _OP[name]: n for name, n in meta.get("macro_cells", {}).items()
        },
        wall_s=float(meta.get("wall_s", 0.0)),
        metrics=metrics if isinstance(metrics, dict) else None,
    )


class CheckpointStore:
    """Reads and writes per-shard checkpoint files in one directory."""

    def __init__(self, directory: str | os.PathLike, fingerprint: str) -> None:
        self.directory = pathlib.Path(directory)
        self.fingerprint = fingerprint

    # -- paths ------------------------------------------------------------

    def dataset_path(self, index: int) -> pathlib.Path:
        return self.directory / f"{shard_stem(index)}.ds.gz"

    def meta_path(self, index: int) -> pathlib.Path:
        return self.directory / f"{shard_stem(index)}.meta.json"

    # -- write ------------------------------------------------------------

    def store(self, result: ShardResult) -> None:
        """Persist one shard result; both files are written atomically."""
        self.directory.mkdir(parents=True, exist_ok=True)
        save_dataset(result.dataset, self.dataset_path(result.index))
        meta = shard_meta(result, self.fingerprint)
        path = self.meta_path(result.index)
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        try:
            tmp.write_text(json.dumps(meta, sort_keys=True, indent=1))
            os.replace(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)

    # -- read -------------------------------------------------------------

    def load(self, index: int) -> ShardResult | None:
        """Load one shard if a valid, fingerprint-matching checkpoint exists.

        Any inconsistency — missing file, corrupt gzip/JSON, foreign
        fingerprint — returns ``None`` so the engine recomputes the shard.
        """
        meta_path = self.meta_path(index)
        ds_path = self.dataset_path(index)
        try:
            meta = json.loads(meta_path.read_text())
            if meta.get("fingerprint") != self.fingerprint:
                return None
            if meta.get("index") != index:
                return None
            dataset = load_dataset(ds_path)
            result = shard_from_parts(index, meta, dataset)
        except (OSError, ValueError, KeyError, EOFError, ReproError):
            return None
        result.from_checkpoint = True
        return result

    def load_all(self, indices: list[int]) -> dict[int, ShardResult]:
        """Load every valid checkpoint among ``indices``."""
        found: dict[int, ShardResult] = {}
        if not self.directory.is_dir():
            return found
        for index in indices:
            result = self.load(index)
            if result is not None:
                found[index] = result
        return found
