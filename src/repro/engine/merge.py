"""Deterministic merge: stitch shard outputs back into one dataset.

The merger concatenates every record family in **canonical shard order**
(passive shard first, then windows by ascending index) regardless of the
order shards completed in — so the merged dataset is a pure function of the
shard results.  Because each window owns a disjoint, deterministic test-id
namespace (``(index+1) * TEST_ID_STRIDE``), no renumbering pass is needed
and referential integrity (samples → tests, handovers → tests) is preserved
by construction.

Boundary semantics: each window starts with freshly-attached UE sessions, so
no handover event ever spans a shard boundary — the same reconnect the
single-process campaign performs after every duty-cycle fast-forward.  The
merger verifies the invariants this relies on (windows present exactly once,
id namespaces disjoint) and raises :class:`EngineError` on violation rather
than emitting a silently inconsistent dataset.
"""

from __future__ import annotations

from repro.campaign.dataset import DriveDataset
from repro.campaign.runner import CampaignConfig
from repro.engine.planner import PASSIVE_SHARD_INDEX, ShardPlan, TEST_ID_STRIDE
from repro.engine.worker import ShardResult
from repro.errors import EngineError
from repro.radio.operators import Operator

__all__ = ["merge_shard_results"]

_FAMILIES = (
    "throughput_samples",
    "rtt_samples",
    "tests",
    "handovers",
    "passive_coverage",
    "offload_runs",
    "video_runs",
    "gaming_runs",
)


def merge_shard_results(
    config: CampaignConfig,
    plan: ShardPlan,
    results: dict[int, ShardResult],
    route_length_km: float,
) -> DriveDataset:
    """Combine shard results into one :class:`DriveDataset`.

    Parameters
    ----------
    results:
        Mapping of shard index → result; must contain every window of
        ``plan`` plus the passive shard.
    """
    missing = [w.index for w in plan.windows if w.index not in results]
    if PASSIVE_SHARD_INDEX not in results:
        missing.append(PASSIVE_SHARD_INDEX)
    if missing:
        raise EngineError(
            f"cannot merge: shards {sorted(missing)} missing", shard_index=missing[0]
        )

    ordered = [results[PASSIVE_SHARD_INDEX]]
    ordered += [results[w.index] for w in plan.windows]

    for window, result in zip(plan.windows, ordered[1:]):
        base = (window.index + 1) * TEST_ID_STRIDE
        for test in result.dataset.tests:
            if not base < test.test_id <= base + TEST_ID_STRIDE:
                raise EngineError(
                    f"shard {window.index} produced test id {test.test_id} "
                    f"outside its namespace ({base}, {base + TEST_ID_STRIDE}]",
                    shard_index=window.index,
                )

    merged = DriveDataset(
        seed=config.seed,
        scale=config.scale,
        route_length_km=route_length_km,
    )
    for result in ordered:
        for family in _FAMILIES:
            getattr(merged, family).extend(getattr(result.dataset, family))

    passive = results[PASSIVE_SHARD_INDEX]
    merged.passive_handover_counts = dict(passive.dataset.passive_handover_counts)
    # Trip-wide distinct-cell count: the macro anchor grid seen by the
    # passive loggers plus the active-layer cells summed across windows.
    # Window *spans* are disjoint, but each window's deployment extends
    # ``overrun_m`` past its end and the final duty cycle may run into that
    # overrun, so adjacent windows can both connect to cells covering the
    # same boundary stretch — the sum may count such cells once per window.
    # The over-count is deterministic (a pure function of the shard plan,
    # identical for serial and parallel execution) and bounded by the number
    # of window boundaries, but the count is not guaranteed to match a true
    # single-pass drive of the whole route.
    merged.connected_cells = {
        op: passive.macro_cells.get(op, 0)
        + sum(r.active_cells.get(op, 0) for r in ordered[1:])
        for op in Operator
    }
    return merged
