"""Matching app-layer logs to their XCAL DRM counterparts.

The hard part (§B): a DRM filename carries *local* time with no timezone
annotation, while the app log's filename carries UTC — and the trip crossed
four timezones.  The matcher therefore tests every plausible continental-US
offset for each candidate DRM file and accepts the (file, offset) pair whose
implied start time lands closest to the app log's, requiring the same
operator and test label and a configurable tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import timedelta

from repro.errors import SyncError
from repro.geo.timezones import ALL_TIMEZONES, Timezone
from repro.sync.timestamps import local_to_utc
from repro.xcal.applog import AppLogFile
from repro.xcal.drm import DrmFile

__all__ = ["MatchedPair", "match_logs"]

#: Maximum |app start − implied DRM start| accepted as the same test.
DEFAULT_TOLERANCE_S = 90.0


@dataclass(frozen=True)
class MatchedPair:
    """One app log matched to its DRM capture."""

    app_log: AppLogFile
    drm: DrmFile
    #: The timezone hypothesis under which the DRM filename matched.
    inferred_timezone: Timezone
    #: Residual |Δ| between the two start times, seconds.
    residual_s: float


def _best_offset(drm: DrmFile, app_log: AppLogFile) -> tuple[Timezone, float] | None:
    """Best timezone hypothesis for a DRM file against an app log."""
    best: tuple[Timezone, float] | None = None
    for tz in ALL_TIMEZONES:
        implied_utc = local_to_utc(drm.start_local, tz)
        residual = abs((implied_utc - app_log.start_utc) / timedelta(seconds=1))
        if best is None or residual < best[1]:
            best = (tz, residual)
    return best


def match_logs(
    drm_files: list[DrmFile],
    app_logs: list[AppLogFile],
    tolerance_s: float = DEFAULT_TOLERANCE_S,
) -> list[MatchedPair]:
    """Match every app log to exactly one DRM file.

    Raises
    ------
    SyncError
        If an app log has no DRM candidate within tolerance, or if two app
        logs claim the same DRM file.
    """
    pairs: list[MatchedPair] = []
    claimed: set[int] = set()
    for app_log in sorted(app_logs, key=lambda l: l.start_utc):
        candidates = [
            d
            for d in drm_files
            if d.operator is app_log.operator and d.test_label == app_log.test_label
        ]
        best_pair: MatchedPair | None = None
        for drm in candidates:
            if id(drm) in claimed:
                continue
            hypothesis = _best_offset(drm, app_log)
            if hypothesis is None:
                continue
            tz, residual = hypothesis
            if residual > tolerance_s:
                continue
            if best_pair is None or residual < best_pair.residual_s:
                best_pair = MatchedPair(
                    app_log=app_log, drm=drm, inferred_timezone=tz, residual_s=residual
                )
        if best_pair is None:
            raise SyncError(
                f"no DRM match for {app_log.filename} "
                f"({app_log.operator}, {app_log.test_label})"
            )
        claimed.add(id(best_pair.drm))
        pairs.append(best_pair)
    return pairs
