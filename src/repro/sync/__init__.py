"""Log synchronisation: the paper's §B software, rebuilt.

Given DRM files whose filenames carry *local* time and whose contents carry
EDT, and app-layer logs stamped in UTC epoch or local wall-clock, this
package normalises everything to UTC, matches each app log to its XCAL
counterpart across the four timezones the trip crossed, and joins the two
layers into a consolidated per-sample database — the "XCAP-M output" the
analyses would consume in the authors' pipeline.
"""

from repro.sync.timestamps import edt_to_utc, local_to_utc, utc_offset_for_mark
from repro.sync.matcher import match_logs, MatchedPair
from repro.sync.database import ConsolidatedDatabase, ConsolidatedRow

__all__ = [
    "edt_to_utc",
    "local_to_utc",
    "utc_offset_for_mark",
    "match_logs",
    "MatchedPair",
    "ConsolidatedDatabase",
    "ConsolidatedRow",
]
