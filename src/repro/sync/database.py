"""The consolidated measurement database.

After matching (one app log ↔ one DRM capture), the app-layer samples and
the XCAL KPI rows are joined on normalised UTC time.  This is the synthetic
equivalent of the paper's "consolidated database, which includes both the
XCAL and the app layer data" (§3, §B).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from datetime import datetime, timedelta

from repro.errors import SyncError
from repro.radio.operators import Operator
from repro.radio.technology import RadioTechnology
from repro.sync.matcher import MatchedPair
from repro.sync.timestamps import edt_to_utc

__all__ = ["ConsolidatedRow", "ConsolidatedDatabase"]

#: Maximum |app sample − KPI row| joining distance.
JOIN_TOLERANCE_S = 0.35


@dataclass(frozen=True, slots=True)
class ConsolidatedRow:
    """One joined (app metric, PHY KPIs) sample."""

    utc: datetime
    operator: Operator
    test_label: str
    app_value: float
    technology: RadioTechnology
    rsrp_dbm: float
    mcs: int
    bler: float
    n_ccs: int


@dataclass
class ConsolidatedDatabase:
    """Queryable join of app-layer and XCAL data."""

    rows: list[ConsolidatedRow]
    unmatched_app_samples: int

    @classmethod
    def build(cls, pairs: list[MatchedPair]) -> "ConsolidatedDatabase":
        """Join each matched pair's samples on UTC time.

        App samples with no KPI row within :data:`JOIN_TOLERANCE_S` are
        counted in ``unmatched_app_samples`` rather than silently dropped.
        """
        rows: list[ConsolidatedRow] = []
        unmatched = 0
        for pair in pairs:
            kpi_rows = sorted(pair.drm.kpi_records, key=lambda r: r.timestamp_edt)
            kpi_utc = [edt_to_utc(r.timestamp_edt) for r in kpi_rows]
            if not kpi_rows:
                unmatched += len(pair.app_log.samples)
                continue
            base = pair.app_log.start_utc
            for offset_s, value in pair.app_log.samples:
                target = base + timedelta(seconds=offset_s)
                idx = bisect.bisect_left(kpi_utc, target)
                best_idx = None
                best_delta = None
                for j in (idx - 1, idx):
                    if 0 <= j < len(kpi_utc):
                        delta = abs((kpi_utc[j] - target) / timedelta(seconds=1))
                        if best_delta is None or delta < best_delta:
                            best_idx, best_delta = j, delta
                if best_idx is None or best_delta is None or best_delta > JOIN_TOLERANCE_S:
                    unmatched += 1
                    continue
                kpi = kpi_rows[best_idx]
                rows.append(
                    ConsolidatedRow(
                        utc=target,
                        operator=pair.app_log.operator,
                        test_label=pair.app_log.test_label,
                        app_value=value,
                        technology=kpi.technology,
                        rsrp_dbm=kpi.rsrp_dbm,
                        mcs=kpi.mcs,
                        bler=kpi.bler,
                        n_ccs=kpi.n_ccs,
                    )
                )
        return cls(rows=rows, unmatched_app_samples=unmatched)

    def __len__(self) -> int:
        return len(self.rows)

    def values(self, operator: Operator | None = None, test_label: str | None = None) -> list[float]:
        """App-layer metric values, optionally filtered."""
        return [
            r.app_value
            for r in self.rows
            if (operator is None or r.operator is operator)
            and (test_label is None or r.test_label == test_label)
        ]

    def match_rate(self) -> float:
        """Fraction of app samples that found a KPI row.

        Raises
        ------
        SyncError
            If the database is empty (nothing was joined at all).
        """
        total = len(self.rows) + self.unmatched_app_samples
        if total == 0:
            raise SyncError("empty consolidated database")
        return len(self.rows) / total
