"""Timestamp normalisation across the trip's timestamp conventions.

Three conventions coexist in the raw logs (§B):

* **EDT** — XCAL's internal convention for DRM file *contents*, regardless
  of where the vehicle was;
* **local wall-clock** — DRM *filenames* and some app logs, in the timezone
  of the capture location (which changed four times over the trip);
* **UTC epoch** — the remaining app logs.

Everything is normalised to naive UTC datetimes.
"""

from __future__ import annotations

from datetime import datetime, timedelta

from repro.geo.route import Route
from repro.geo.timezones import Timezone, XCAL_INTERNAL_TZ

__all__ = ["edt_to_utc", "local_to_utc", "utc_to_local", "utc_offset_for_mark"]


def edt_to_utc(edt: datetime) -> datetime:
    """Convert an XCAL content timestamp (EDT) to UTC."""
    return edt - XCAL_INTERNAL_TZ.utc_offset


def local_to_utc(local: datetime, tz: Timezone) -> datetime:
    """Convert a local wall-clock timestamp to UTC."""
    return local - tz.utc_offset


def utc_to_local(utc: datetime, tz: Timezone) -> datetime:
    """Convert a UTC timestamp to local wall-clock time in ``tz``."""
    return utc + tz.utc_offset


def utc_offset_for_mark(route: Route, mark_m: float) -> int:
    """UTC offset (hours) of the local timezone at a route position."""
    position = route.position_at(min(max(mark_m, 0.0), route.total_length_m))
    return position.timezone.utc_offset_hours


def offset_hours(dt_a: datetime, dt_b: datetime) -> float:
    """Signed difference a − b in hours (used to test offset hypotheses)."""
    return (dt_a - dt_b) / timedelta(hours=1)
