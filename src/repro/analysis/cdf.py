"""Empirical CDF utilities.

Almost every figure in the paper is a CDF; this module provides the one
implementation all analyses share, plus quantile summaries used by the
benchmark harness to print comparable rows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AnalysisError

__all__ = ["EmpiricalCDF", "summarize"]


@dataclass(frozen=True)
class EmpiricalCDF:
    """Empirical cumulative distribution of a sample.

    Examples
    --------
    >>> cdf = EmpiricalCDF.from_values([1.0, 2.0, 3.0, 4.0])
    >>> cdf.quantile(0.5)
    2.5
    >>> cdf.prob_below(2.5)
    0.5
    """

    sorted_values: np.ndarray

    @classmethod
    def from_values(cls, values) -> "EmpiricalCDF":
        arr = np.asarray(values, dtype=float)
        arr = arr[np.isfinite(arr)]
        if arr.size == 0:
            raise AnalysisError("cannot build a CDF from an empty sample")
        return cls(sorted_values=np.sort(arr))

    @property
    def n(self) -> int:
        return int(self.sorted_values.size)

    def quantile(self, q: float) -> float:
        """Value at cumulative probability ``q`` (linear interpolation)."""
        if not 0.0 <= q <= 1.0:
            raise AnalysisError(f"quantile must be in [0, 1], got {q}")
        return float(np.quantile(self.sorted_values, q))

    @property
    def median(self) -> float:
        return self.quantile(0.5)

    @property
    def minimum(self) -> float:
        return float(self.sorted_values[0])

    @property
    def maximum(self) -> float:
        return float(self.sorted_values[-1])

    @property
    def mean(self) -> float:
        return float(self.sorted_values.mean())

    def prob_below(self, x: float) -> float:
        """Empirical P(X < x)."""
        return float(np.searchsorted(self.sorted_values, x, side="left")) / self.n

    def prob_above(self, x: float) -> float:
        """Empirical P(X > x)."""
        return 1.0 - float(np.searchsorted(self.sorted_values, x, side="right")) / self.n

    def series(self, points: int = 200) -> tuple[np.ndarray, np.ndarray]:
        """(x, F(x)) arrays for plotting; subsampled to ``points``."""
        n = self.n
        ys = (np.arange(1, n + 1)) / n
        if n <= points:
            return self.sorted_values.copy(), ys
        idx = np.linspace(0, n - 1, points).astype(int)
        return self.sorted_values[idx], ys[idx]


def summarize(values, quantiles: tuple[float, ...] = (0.25, 0.5, 0.75, 0.9)) -> dict[str, float]:
    """Quantile summary dict used by the benchmark tables.

    >>> s = summarize([1, 2, 3, 4])
    >>> s['p50']
    2.5
    """
    cdf = EmpiricalCDF.from_values(values)
    out = {"n": float(cdf.n), "min": cdf.minimum, "max": cdf.maximum, "mean": cdf.mean}
    for q in quantiles:
        out[f"p{int(q * 100)}"] = cdf.quantile(q)
    out["p50"] = cdf.quantile(0.5)
    return out
