"""§5.5 — what drives throughput while driving? (Table 2, Figs. 7-8).

Table 2 computes Pearson's correlation coefficient between the 500 ms
throughput samples and five KPIs (primary-cell RSRP, primary-cell MCS,
carrier-aggregation CC count, primary-cell BLER, number of handovers in the
interval) plus the vehicle's speed, per operator and traffic direction.

Figs. 7-8 are the technology-coloured scatter plots of throughput / RTT
against speed, using the paper's three speed bins.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.campaign.dataset import DriveDataset
from repro.errors import AnalysisError
from repro.radio.operators import Operator
from repro.radio.technology import RadioTechnology
from repro.units import speed_bin

__all__ = [
    "KPI_NAMES",
    "CorrelationRow",
    "kpi_correlations",
    "correlation_table",
    "throughput_speed_scatter",
    "rtt_speed_scatter",
]

#: Table 2's column order.
KPI_NAMES = ("RSRP", "MCS", "CA", "BLER", "Speed", "HO")


@dataclass(frozen=True)
class CorrelationRow:
    """One (operator, direction) row of Table 2."""

    operator: Operator
    direction: str
    coefficients: dict[str, float]
    sample_count: int


def kpi_correlations(
    dataset: DriveDataset, operator: Operator, direction: str
) -> CorrelationRow:
    """Compute one row of Table 2."""
    samples = dataset.tput(operator=operator, direction=direction, static=False)
    if len(samples) < 10:
        raise AnalysisError(f"too few samples for {operator} {direction}")
    tput = np.asarray([s.tput_mbps for s in samples])
    columns = {
        "RSRP": np.asarray([s.rsrp_dbm for s in samples]),
        "MCS": np.asarray([float(s.mcs) for s in samples]),
        "CA": np.asarray([float(s.n_ccs) for s in samples]),
        "BLER": np.asarray([s.bler for s in samples]),
        "Speed": np.asarray([s.speed_mph for s in samples]),
        "HO": np.asarray([float(s.ho_count) for s in samples]),
    }
    coeffs: dict[str, float] = {}
    for name, col in columns.items():
        if np.std(col) == 0.0 or np.std(tput) == 0.0:
            coeffs[name] = 0.0
            continue
        coeffs[name] = float(stats.pearsonr(tput, col).statistic)
    return CorrelationRow(
        operator=operator,
        direction=direction,
        coefficients=coeffs,
        sample_count=len(samples),
    )


def correlation_table(dataset: DriveDataset) -> list[CorrelationRow]:
    """Table 2 — all six (operator, direction) rows."""
    rows = []
    for op in Operator:
        for direction in ("downlink", "uplink"):
            rows.append(kpi_correlations(dataset, op, direction))
    return rows


def throughput_speed_scatter(
    dataset: DriveDataset, operator: Operator, direction: str
) -> list[tuple[float, float, RadioTechnology, str]]:
    """Fig. 7 — (speed, throughput, technology, speed-bin) scatter points."""
    return [
        (s.speed_mph, s.tput_mbps, s.tech, speed_bin(s.speed_mph))
        for s in dataset.tput(operator=operator, direction=direction, static=False)
    ]


def rtt_speed_scatter(
    dataset: DriveDataset, operator: Operator
) -> list[tuple[float, float, RadioTechnology, str]]:
    """Fig. 8 — (speed, RTT, technology, speed-bin) scatter points."""
    return [
        (s.speed_mph, s.rtt_ms, s.tech, speed_bin(s.speed_mph))
        for s in dataset.rtts(operator=operator, static=False)
    ]
