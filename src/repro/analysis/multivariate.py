"""Multivariate KPI analysis — the paper's declared future work.

§5.5 closes: *"An in-depth understanding of the impact of multiple KPIs on
performance requires a multivariate analysis, which is part of our future
work."*  This module performs that analysis on a dataset: ordinary least
squares of log-throughput on the standardised KPI vector, reporting
standardised coefficients (comparable across KPIs), the model's R², and the
incremental R² each KPI contributes (its unique explanatory power) — the
natural next step after Table 2's univariate view.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.campaign.dataset import DriveDataset
from repro.errors import AnalysisError
from repro.radio.operators import Operator

__all__ = ["MultivariateFit", "fit_throughput_model", "multivariate_table"]

#: KPI columns, mirroring Table 2 (handover count included for completeness).
FEATURES = ("RSRP", "MCS", "CA", "BLER", "Speed", "HO")


@dataclass(frozen=True)
class MultivariateFit:
    """An OLS fit of log-throughput on standardised KPIs."""

    operator: Operator
    direction: str
    #: Standardised coefficients per KPI (effect of +1σ on log-throughput σ).
    coefficients: dict[str, float]
    r_squared: float
    #: Drop in R² when the KPI is removed — its unique contribution.
    incremental_r2: dict[str, float]
    sample_count: int

    @property
    def dominant_kpi(self) -> str:
        """The KPI with the largest unique contribution."""
        return max(self.incremental_r2, key=lambda k: self.incremental_r2[k])


def _design_matrix(samples) -> tuple[np.ndarray, np.ndarray]:
    y = np.log(np.asarray([max(s.tput_mbps, 1e-3) for s in samples]))
    X = np.column_stack([
        [s.rsrp_dbm for s in samples],
        [float(s.mcs) for s in samples],
        [float(s.n_ccs) for s in samples],
        [s.bler for s in samples],
        [s.speed_mph for s in samples],
        [float(s.ho_count) for s in samples],
    ])
    return X, y


def _standardize(X: np.ndarray) -> np.ndarray:
    mean = X.mean(axis=0)
    std = X.std(axis=0)
    std[std == 0.0] = 1.0
    return (X - mean) / std


def _ols_r2(X: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, float]:
    A = np.column_stack([np.ones(len(y)), X])
    beta, *_ = np.linalg.lstsq(A, y, rcond=None)
    residuals = y - A @ beta
    ss_res = float(residuals @ residuals)
    ss_tot = float(((y - y.mean()) ** 2).sum())
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 0.0
    return beta[1:], r2


def fit_throughput_model(
    dataset: DriveDataset, operator: Operator, direction: str
) -> MultivariateFit:
    """Fit log(throughput) ~ standardised KPIs for one operator/direction."""
    samples = dataset.tput(operator=operator, direction=direction, static=False)
    if len(samples) < 30:
        raise AnalysisError(
            f"need at least 30 samples for a stable fit, got {len(samples)}"
        )
    X_raw, y = _design_matrix(samples)
    X = _standardize(X_raw)
    y_std = y.std()
    y_norm = (y - y.mean()) / (y_std if y_std > 0 else 1.0)

    beta, r2 = _ols_r2(X, y_norm)
    incremental: dict[str, float] = {}
    for i, name in enumerate(FEATURES):
        reduced = np.delete(X, i, axis=1)
        _, r2_reduced = _ols_r2(reduced, y_norm)
        incremental[name] = max(r2 - r2_reduced, 0.0)
    return MultivariateFit(
        operator=operator,
        direction=direction,
        coefficients={name: float(b) for name, b in zip(FEATURES, beta)},
        r_squared=r2,
        incremental_r2=incremental,
        sample_count=len(samples),
    )


def multivariate_table(dataset: DriveDataset) -> list[MultivariateFit]:
    """All six (operator, direction) fits — the multivariate Table 2."""
    return [
        fit_throughput_model(dataset, op, d)
        for op in Operator
        for d in ("downlink", "uplink")
    ]
