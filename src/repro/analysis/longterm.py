"""§5.6 — performance over longer time scales (Figs. 9-10).

Fig. 9 aggregates per test: the mean of each 30 s throughput test / 20 s RTT
test, and the standard deviation expressed as a percentage of the mean
(fluctuation *within* a test).  Fig. 10 plots each test's mean against the
fraction of the test spent on high-speed 5G (mmWave or midband).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.cdf import EmpiricalCDF
from repro.campaign.dataset import DriveDataset
from repro.campaign.tests import TestType
from repro.errors import AnalysisError
from repro.radio.operators import Operator
from repro.radio.technology import HIGH_THROUGHPUT_TECHS

__all__ = [
    "PerTestStats",
    "per_test_throughput_stats",
    "per_test_rtt_stats",
    "throughput_vs_hs5g_fraction",
    "rtt_vs_hs5g_fraction",
]


@dataclass(frozen=True)
class PerTestStats:
    """Fig. 9 distributions for one operator and metric."""

    operator: Operator
    metric: str
    means: EmpiricalCDF
    #: Standard deviation as percent of the mean, per test.
    stddev_pct: EmpiricalCDF

    @property
    def median_mean(self) -> float:
        return self.means.median

    @property
    def median_stddev_pct(self) -> float:
        return self.stddev_pct.median


def _stats(values_per_test: list[np.ndarray], operator: Operator, metric: str) -> PerTestStats:
    means, std_pcts = [], []
    for values in values_per_test:
        if len(values) < 4:
            continue
        mean = float(np.mean(values))
        if mean <= 0.0:
            continue
        means.append(mean)
        std_pcts.append(100.0 * float(np.std(values)) / mean)
    if not means:
        raise AnalysisError(f"no usable tests for {operator} {metric}")
    return PerTestStats(
        operator=operator,
        metric=metric,
        means=EmpiricalCDF.from_values(means),
        stddev_pct=EmpiricalCDF.from_values(std_pcts),
    )


def _throughput_tests(
    dataset: DriveDataset, operator: Operator, direction: str
) -> dict[int, np.ndarray]:
    test_type = (
        TestType.DOWNLINK_THROUGHPUT if direction == "downlink" else TestType.UPLINK_THROUGHPUT
    )
    wanted = {
        t.test_id for t in dataset.tests_of(test_type=test_type, operator=operator, static=False)
    }
    grouped: dict[int, list[float]] = {}
    for s in dataset.throughput_samples:
        if s.test_id in wanted:
            grouped.setdefault(s.test_id, []).append(s.tput_mbps)
    return {tid: np.asarray(v) for tid, v in grouped.items()}


def per_test_throughput_stats(
    dataset: DriveDataset, operator: Operator, direction: str
) -> PerTestStats:
    """Fig. 9 — per-test mean and stddev-% for 30 s throughput tests."""
    grouped = _throughput_tests(dataset, operator, direction)
    return _stats(list(grouped.values()), operator, f"tput_{direction}")


def per_test_rtt_stats(dataset: DriveDataset, operator: Operator) -> PerTestStats:
    """Fig. 9 — per-test mean and stddev-% for 20 s RTT tests."""
    wanted = {
        t.test_id
        for t in dataset.tests_of(test_type=TestType.RTT, operator=operator, static=False)
    }
    grouped: dict[int, list[float]] = {}
    for s in dataset.rtt_samples:
        if s.test_id in wanted:
            grouped.setdefault(s.test_id, []).append(s.rtt_ms)
    return _stats([np.asarray(v) for v in grouped.values()], operator, "rtt")


def _hs5g_fraction(samples: list) -> float:
    if not samples:
        return 0.0
    return sum(1 for s in samples if s.tech in HIGH_THROUGHPUT_TECHS) / len(samples)


def throughput_vs_hs5g_fraction(
    dataset: DriveDataset, operator: Operator, direction: str
) -> list[tuple[float, float]]:
    """Fig. 10a/10b — (high-speed-5G time fraction, mean throughput) per test."""
    test_type = (
        TestType.DOWNLINK_THROUGHPUT if direction == "downlink" else TestType.UPLINK_THROUGHPUT
    )
    wanted = {
        t.test_id for t in dataset.tests_of(test_type=test_type, operator=operator, static=False)
    }
    grouped: dict[int, list] = {}
    for s in dataset.throughput_samples:
        if s.test_id in wanted:
            grouped.setdefault(s.test_id, []).append(s)
    points = []
    for samples in grouped.values():
        if len(samples) < 4:
            continue
        points.append(
            (_hs5g_fraction(samples), float(np.mean([s.tput_mbps for s in samples])))
        )
    return points


def rtt_vs_hs5g_fraction(dataset: DriveDataset, operator: Operator) -> list[tuple[float, float]]:
    """Fig. 10c — (high-speed-5G time fraction, mean RTT) per RTT test."""
    wanted = {
        t.test_id
        for t in dataset.tests_of(test_type=TestType.RTT, operator=operator, static=False)
    }
    grouped: dict[int, list] = {}
    for s in dataset.rtt_samples:
        if s.test_id in wanted:
            grouped.setdefault(s.test_id, []).append(s)
    points = []
    for samples in grouped.values():
        if len(samples) < 4:
            continue
        points.append(
            (_hs5g_fraction(samples), float(np.mean([s.rtt_ms for s in samples])))
        )
    return points
