"""§5.4 — operator diversity at the same location and time (Fig. 6).

The three phones rode in one vehicle and ran each test concurrently, so
throughput samples of different operators at the same timestamp are directly
comparable.  For each operator pair the paper plots the CDF of the
per-timestamp throughput difference (Fig. 6a), breaks each point into four
bins by the technology class each operator used — HT (5G mmWave/midband) vs
LT (LTE/LTE-A/5G-low) — (Fig. 6b), and plots per-bin difference CDFs
(Figs. 6c, 6d).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.cdf import EmpiricalCDF
from repro.campaign.dataset import DriveDataset
from repro.errors import AnalysisError
from repro.radio.operators import Operator

__all__ = ["OPERATOR_PAIRS", "PairedDiff", "paired_throughput_differences", "multi_operator_gain"]

#: The paper's three operator pairs, in its presentation order.
OPERATOR_PAIRS: tuple[tuple[Operator, Operator], ...] = (
    (Operator.VERIZON, Operator.TMOBILE),
    (Operator.TMOBILE, Operator.ATT),
    (Operator.ATT, Operator.VERIZON),
)

#: The four technology-class bins of Fig. 6b (first operator's class first).
TECH_BINS = ("HT-HT", "HT-LT", "LT-HT", "LT-LT")


@dataclass(frozen=True)
class PairedDiff:
    """Throughput differences for one operator pair and direction."""

    first: Operator
    second: Operator
    direction: str
    #: difference = first − second, Mbps, one entry per concurrent sample.
    differences: np.ndarray
    #: Technology-class bin of each entry ("HT-HT", ...).
    bins: list[str]

    @property
    def cdf(self) -> EmpiricalCDF:
        """Fig. 6a — CDF over all concurrent samples."""
        return EmpiricalCDF.from_values(self.differences)

    def bin_fractions(self) -> dict[str, float]:
        """Fig. 6b — fraction of samples in each technology-class bin."""
        n = len(self.bins)
        if n == 0:
            raise AnalysisError("no concurrent samples for this pair")
        return {b: self.bins.count(b) / n for b in TECH_BINS}

    def bin_cdf(self, bin_label: str) -> EmpiricalCDF:
        """Figs. 6c/6d — difference CDF restricted to one bin."""
        values = [d for d, b in zip(self.differences, self.bins) if b == bin_label]
        return EmpiricalCDF.from_values(values)

    def first_wins_fraction(self) -> float:
        """Fraction of locations where the first operator outperforms."""
        return float(np.mean(self.differences > 0.0))


def _concurrent_samples(
    dataset: DriveDataset, direction: str
) -> dict[float, dict[Operator, tuple[float, bool]]]:
    """Index driving throughput samples by timestamp.

    Returns timestamp -> operator -> (tput, is_high_throughput_tech).
    """
    index: dict[float, dict[Operator, tuple[float, bool]]] = {}
    for s in dataset.tput(direction=direction, static=False):
        key = round(s.time_s * 2.0) / 2.0
        index.setdefault(key, {})[s.operator] = (
            s.tput_mbps,
            s.tech.is_high_throughput,
        )
    return index


def paired_throughput_differences(
    dataset: DriveDataset, first: Operator, second: Operator, direction: str
) -> PairedDiff:
    """Fig. 6 — per-timestamp throughput differences for one pair."""
    index = _concurrent_samples(dataset, direction)
    diffs: list[float] = []
    bins: list[str] = []
    for by_op in index.values():
        if first not in by_op or second not in by_op:
            continue
        t1, ht1 = by_op[first]
        t2, ht2 = by_op[second]
        diffs.append(t1 - t2)
        bins.append(f"{'HT' if ht1 else 'LT'}-{'HT' if ht2 else 'LT'}")
    if not diffs:
        raise AnalysisError(f"no concurrent samples for {first}/{second} {direction}")
    return PairedDiff(
        first=first,
        second=second,
        direction=direction,
        differences=np.asarray(diffs),
        bins=bins,
    )


def multi_operator_gain(dataset: DriveDataset, direction: str) -> dict[Operator, float]:
    """Ablation for the paper's recommendation #2 (multi-connectivity):
    the median gain of taking the per-timestamp *maximum* across all three
    operators over each single operator.

    Returns, per operator, median(max-over-ops / this-op) across timestamps
    where all three operators have samples.
    """
    index = _concurrent_samples(dataset, direction)
    ratios: dict[Operator, list[float]] = {op: [] for op in Operator}
    for by_op in index.values():
        if len(by_op) < 3:
            continue
        best = max(v for v, _ in by_op.values())
        for op, (v, _) in by_op.items():
            if v > 0:
                ratios[op].append(best / v)
    out = {}
    for op, values in ratios.items():
        if values:
            out[op] = float(np.median(values))
    if not out:
        raise AnalysisError("no fully concurrent samples across all operators")
    return out
