"""Quantifying the paper's three recommendations (§8).

The paper closes with three recommendations; each is directly measurable on
a campaign dataset:

1. **App-level optimisations** ("developers should continue to explore
   compression, local tracking, buffering, rate adaptation") — measured as
   the E2E-latency reduction frame compression buys the AR and CAV apps.
2. **Multipath over multiple operators** ("smartphone vendors should explore
   multipath solutions") — measured as the best-of-3 / aggregate gains and
   the collapse of the sub-5 Mbps outage share.
3. **Edge deployment** ("operators and cloud providers should collaborate in
   deploying more edge services") — measured as Verizon's edge-vs-cloud RTT
   and app-QoE deltas.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.campaign.dataset import DriveDataset
from repro.campaign.tests import TestType
from repro.errors import AnalysisError
from repro.net.multipath import MultipathScheduler, simulate_multipath
from repro.net.servers import ServerKind
from repro.radio.operators import Operator

__all__ = [
    "CompressionGain",
    "MultipathGain",
    "EdgeGain",
    "RecommendationsReport",
    "quantify_recommendations",
]


@dataclass(frozen=True)
class CompressionGain:
    """Recommendation 1: what frame compression buys an offloading app."""

    app: TestType
    median_e2e_raw_ms: float
    median_e2e_compressed_ms: float

    @property
    def speedup(self) -> float:
        return self.median_e2e_raw_ms / self.median_e2e_compressed_ms


@dataclass(frozen=True)
class MultipathGain:
    """Recommendation 2: multi-operator aggregation, per direction."""

    direction: str
    aggregate_median_mbps: float
    best_single_median_mbps: float
    #: Sub-5 Mbps share: best single operator vs the aggregate.
    single_outage_fraction: float
    aggregate_outage_fraction: float

    @property
    def median_gain(self) -> float:
        return self.aggregate_median_mbps / self.best_single_median_mbps


@dataclass(frozen=True)
class EdgeGain:
    """Recommendation 3: in-network edge serving (Verizon/Wavelength)."""

    rtt_median_edge_ms: float
    rtt_median_cloud_ms: float
    video_qoe_edge: float | None
    video_qoe_cloud: float | None

    @property
    def rtt_reduction(self) -> float:
        return 1.0 - self.rtt_median_edge_ms / self.rtt_median_cloud_ms


@dataclass(frozen=True)
class RecommendationsReport:
    """All three recommendations quantified on one dataset."""

    compression: list[CompressionGain]
    multipath: list[MultipathGain]
    edge: EdgeGain


def _compression_gains(dataset: DriveDataset) -> list[CompressionGain]:
    gains = []
    for app in (TestType.AR, TestType.CAV):
        raw = [
            r.mean_e2e_ms
            for r in dataset.offload_runs
            if r.app is app and not r.compression and not r.static
            and np.isfinite(r.mean_e2e_ms)
        ]
        compressed = [
            r.mean_e2e_ms
            for r in dataset.offload_runs
            if r.app is app and r.compression and not r.static
            and np.isfinite(r.mean_e2e_ms)
        ]
        if not raw or not compressed:
            continue
        gains.append(
            CompressionGain(
                app=app,
                median_e2e_raw_ms=float(np.median(raw)),
                median_e2e_compressed_ms=float(np.median(compressed)),
            )
        )
    if not gains:
        raise AnalysisError("no offload runs to quantify compression")
    return gains


def _multipath_gains(dataset: DriveDataset) -> list[MultipathGain]:
    gains = []
    for direction in ("downlink", "uplink"):
        agg = simulate_multipath(dataset, direction, MultipathScheduler.AGGREGATE)
        singles = {
            op: float(np.median(agg.single_path[op])) for op in Operator
        }
        best_op = max(singles, key=lambda op: singles[op])
        single_outage = min(
            float((agg.single_path[op] < 5.0).mean()) for op in Operator
        )
        gains.append(
            MultipathGain(
                direction=direction,
                aggregate_median_mbps=agg.median_mbps,
                best_single_median_mbps=singles[best_op],
                single_outage_fraction=single_outage,
                aggregate_outage_fraction=agg.outage_fraction(5.0),
            )
        )
    return gains


def _edge_gain(dataset: DriveDataset) -> EdgeGain:
    rtt_edge = dataset.rtt_values(
        operator=Operator.VERIZON, static=False, server_kind=ServerKind.EDGE
    )
    rtt_cloud = dataset.rtt_values(
        operator=Operator.VERIZON, static=False, server_kind=ServerKind.CLOUD
    )
    if len(rtt_edge) < 10 or len(rtt_cloud) < 10:
        raise AnalysisError("not enough edge/cloud RTT samples")
    video_edge = [
        r.qoe for r in dataset.video_runs
        if r.operator is Operator.VERIZON and not r.static
        and r.server_kind is ServerKind.EDGE
    ]
    video_cloud = [
        r.qoe for r in dataset.video_runs
        if r.operator is Operator.VERIZON and not r.static
        and r.server_kind is ServerKind.CLOUD
    ]
    return EdgeGain(
        rtt_median_edge_ms=float(np.median(rtt_edge)),
        rtt_median_cloud_ms=float(np.median(rtt_cloud)),
        video_qoe_edge=float(np.median(video_edge)) if video_edge else None,
        video_qoe_cloud=float(np.median(video_cloud)) if video_cloud else None,
    )


def quantify_recommendations(dataset: DriveDataset) -> RecommendationsReport:
    """Quantify all three §8 recommendations on one dataset."""
    return RecommendationsReport(
        compression=_compression_gains(dataset),
        multipath=_multipath_gains(dataset),
        edge=_edge_gain(dataset),
    )
