"""§5.3 — geo-diversity: throughput per timezone (Fig. 5)."""

from __future__ import annotations

from repro.analysis.cdf import EmpiricalCDF
from repro.campaign.dataset import DriveDataset
from repro.errors import AnalysisError
from repro.geo.timezones import Timezone
from repro.radio.operators import Operator

__all__ = ["throughput_by_timezone"]


def throughput_by_timezone(
    dataset: DriveDataset, operator: Operator, direction: str
) -> dict[Timezone, EmpiricalCDF]:
    """Fig. 5 — driving throughput CDFs per timezone for one operator."""
    out: dict[Timezone, EmpiricalCDF] = {}
    for tz in Timezone:
        values = dataset.tput_values(
            operator=operator, direction=direction, static=False, timezone=tz
        )
        if len(values) >= 5:
            out[tz] = EmpiricalCDF.from_values(values)
    if not out:
        raise AnalysisError(f"no samples for {operator} {direction} in any timezone")
    return out
