"""One-call structured summary of every headline result.

:func:`summarize_paper` walks all analysis modules once and returns a single
:class:`PaperSummary` — the programmatic equivalent of the paper's "key
findings" list (§1).  Downstream users get every headline number as a typed
field instead of re-driving ten analysis modules.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis import coverage
from repro.analysis.apps import gaming_app_report, offload_app_report, video_app_report
from repro.analysis.correlation import correlation_table
from repro.analysis.handovers import handover_durations, handover_impact, handovers_per_mile
from repro.analysis.longterm import per_test_rtt_stats, per_test_throughput_stats
from repro.analysis.performance import static_vs_driving
from repro.campaign.dataset import DriveDataset
from repro.campaign.tests import TestType
from repro.errors import AnalysisError
from repro.radio.operators import Operator

__all__ = ["OperatorHeadlines", "AppHeadlines", "PaperSummary", "summarize_paper"]


@dataclass(frozen=True)
class OperatorHeadlines:
    """The per-operator numbers quoted throughout the paper."""

    operator: Operator
    coverage_5g: float
    coverage_high_speed_5g: float
    static_dl_median_mbps: float
    static_ul_median_mbps: float
    driving_dl_median_mbps: float
    driving_ul_median_mbps: float
    driving_dl_below_5mbps: float
    driving_rtt_median_ms: float
    per_test_dl_median_mbps: float
    per_test_rtt_median_ms: float
    handovers_per_mile_median: float
    handover_duration_median_ms: float
    handover_drop_fraction: float
    handover_improvement_fraction: float
    max_abs_kpi_correlation: float


@dataclass(frozen=True)
class AppHeadlines:
    """§7's per-app headline metrics (Verizon panel, like the paper)."""

    ar_driving_e2e_median_ms: float | None
    ar_best_static_e2e_ms: float | None
    cav_driving_e2e_median_ms: float | None
    cav_meets_100ms_budget: bool
    video_qoe_median: float | None
    video_negative_qoe_fraction: float | None
    gaming_bitrate_median_mbps: float | None
    gaming_drop_rate_median: float | None


@dataclass(frozen=True)
class PaperSummary:
    """Everything in one object."""

    operators: dict[Operator, OperatorHeadlines]
    apps: AppHeadlines

    @property
    def fragmented_coverage(self) -> bool:
        """The abstract's first finding: 5G coverage low for at least one
        major carrier and uneven across carriers."""
        shares = [h.coverage_5g for h in self.operators.values()]
        return min(shares) < 0.4 and (max(shares) - min(shares)) > 0.2

    @property
    def driving_collapse_factor(self) -> float:
        """How far driving DL medians sit below static ones (max over ops)."""
        return max(
            h.static_dl_median_mbps / h.driving_dl_median_mbps
            for h in self.operators.values()
            if h.driving_dl_median_mbps > 0
        )

    @property
    def no_kpi_dominates(self) -> bool:
        """Table 2's headline across all operators and directions."""
        return all(
            h.max_abs_kpi_correlation < 0.75 for h in self.operators.values()
        )


def _operator_headlines(dataset: DriveDataset, op: Operator) -> OperatorHeadlines:
    shares = coverage.active_coverage_shares(dataset, op)
    perf = static_vs_driving(dataset, op)
    dl_tests = per_test_throughput_stats(dataset, op, "downlink")
    rtt_tests = per_test_rtt_stats(dataset, op)
    ho_rate = handovers_per_mile(dataset, op, "downlink")
    ho_dur = handover_durations(dataset, op)
    impact = handover_impact(dataset, op, "downlink")
    rows = [r for r in correlation_table(dataset) if r.operator is op]
    max_corr = max(abs(v) for r in rows for v in r.coefficients.values())
    return OperatorHeadlines(
        operator=op,
        coverage_5g=shares.share_5g,
        coverage_high_speed_5g=shares.share_high_speed_5g,
        static_dl_median_mbps=perf.static_dl.median,
        static_ul_median_mbps=perf.static_ul.median,
        driving_dl_median_mbps=perf.driving_dl.median,
        driving_ul_median_mbps=perf.driving_ul.median,
        driving_dl_below_5mbps=perf.driving_dl.prob_below(5.0),
        driving_rtt_median_ms=perf.driving_rtt.median,
        per_test_dl_median_mbps=dl_tests.median_mean,
        per_test_rtt_median_ms=rtt_tests.median_mean,
        handovers_per_mile_median=ho_rate.median,
        handover_duration_median_ms=ho_dur.median,
        handover_drop_fraction=impact.drop_fraction,
        handover_improvement_fraction=impact.improvement_fraction,
        max_abs_kpi_correlation=max_corr,
    )


def _app_headlines(dataset: DriveDataset) -> AppHeadlines:
    op = Operator.VERIZON

    def _safe(factory):
        try:
            return factory()
        except AnalysisError:
            return None

    ar = _safe(lambda: offload_app_report(dataset, op, TestType.AR))
    cav = _safe(lambda: offload_app_report(dataset, op, TestType.CAV))
    video = _safe(lambda: video_app_report(dataset, op))
    gaming = _safe(lambda: gaming_app_report(dataset, op))

    cav_min = None
    if cav is not None and cav.e2e_cdf:
        cav_min = min(cdf.minimum for cdf in cav.e2e_cdf.values())
    return AppHeadlines(
        ar_driving_e2e_median_ms=(
            ar.e2e_cdf[True].median if ar and True in ar.e2e_cdf else None
        ),
        ar_best_static_e2e_ms=(
            ar.best_static_e2e_ms.get(True) if ar else None
        ),
        cav_driving_e2e_median_ms=(
            cav.e2e_cdf[True].median if cav and True in cav.e2e_cdf else None
        ),
        cav_meets_100ms_budget=(cav_min is not None and cav_min <= 100.0),
        video_qoe_median=video.qoe_cdf.median if video else None,
        video_negative_qoe_fraction=(
            video.negative_qoe_fraction if video else None
        ),
        gaming_bitrate_median_mbps=(
            gaming.bitrate_cdf.median if gaming else None
        ),
        gaming_drop_rate_median=(
            gaming.drop_rate_cdf.median if gaming else None
        ),
    )


def summarize_paper(dataset: DriveDataset) -> PaperSummary:
    """Compute the full headline summary for a dataset."""
    return PaperSummary(
        operators={op: _operator_headlines(dataset, op) for op in Operator},
        apps=_app_headlines(dataset),
    )
