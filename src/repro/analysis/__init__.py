"""The paper's analysis pipeline, one module per section:

* :mod:`repro.analysis.cdf` — empirical CDF machinery used everywhere
* :mod:`repro.analysis.coverage` — §4, Figs. 1-2
* :mod:`repro.analysis.performance` — §5.1-5.2, Figs. 3-4
* :mod:`repro.analysis.geodiversity` — §5.3, Fig. 5
* :mod:`repro.analysis.opdiversity` — §5.4, Fig. 6
* :mod:`repro.analysis.correlation` — §5.5, Table 2, Figs. 7-8
* :mod:`repro.analysis.longterm` — §5.6, Figs. 9-10
* :mod:`repro.analysis.ookla` — §5.6, Table 3
* :mod:`repro.analysis.handovers` — §6, Figs. 11-12
* :mod:`repro.analysis.apps` — §7, Figs. 13-16 and 18-22
"""

from repro.analysis.cdf import EmpiricalCDF

__all__ = ["EmpiricalCDF"]
