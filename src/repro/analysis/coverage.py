"""§4 — network coverage analysis (Figs. 1 and 2).

Coverage is measured in *miles driven* per technology.  For the active
(XCAL-during-tests) view, each 500 ms throughput sample is weighted by the
distance the vehicle covered during it (speed × 0.5 s); for the passive
(handover-logger) view, each zone's technology covers its road length.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.campaign.dataset import DriveDataset
from repro.errors import AnalysisError
from repro.geo.timezones import Timezone
from repro.radio.operators import Operator
from repro.radio.technology import ALL_TECHNOLOGIES, HIGH_THROUGHPUT_TECHS, RadioTechnology
from repro.units import SPEED_BIN_LABELS, speed_bin

__all__ = [
    "CoverageShares",
    "active_coverage_shares",
    "active_coverage_shares_from_store",
    "passive_coverage_shares",
    "passive_coverage_shares_from_store",
    "coverage_by_timezone",
    "coverage_by_speed_bin",
    "coverage_by_direction",
    "route_technology_strip",
]


@dataclass(frozen=True)
class CoverageShares:
    """Technology shares (fractions of miles) for one operator/slice."""

    operator: Operator
    shares: dict[RadioTechnology, float]
    total_weight: float

    def __post_init__(self) -> None:
        total = sum(self.shares.values())
        if self.shares and abs(total - 1.0) > 1e-6:
            raise AnalysisError(f"coverage shares sum to {total}, expected 1")

    @property
    def share_5g(self) -> float:
        """Total 5G share (any NR band)."""
        return sum(v for t, v in self.shares.items() if t.is_5g)

    @property
    def share_high_speed_5g(self) -> float:
        """High-speed 5G (midband + mmWave) share."""
        return sum(v for t, v in self.shares.items() if t in HIGH_THROUGHPUT_TECHS)

    def percent(self, tech: RadioTechnology) -> float:
        """Share of a technology, in percent."""
        return 100.0 * self.shares.get(tech, 0.0)


def _shares_from_weights(
    operator: Operator, weights: dict[RadioTechnology, float]
) -> CoverageShares:
    total = sum(weights.values())
    if total <= 0.0:
        raise AnalysisError(f"no coverage weight for {operator}")
    return CoverageShares(
        operator=operator,
        shares={t: w / total for t, w in weights.items()},
        total_weight=total,
    )


def active_coverage_shares(
    dataset: DriveDataset,
    operator: Operator,
    direction: str | None = None,
    timezone: Timezone | None = None,
    speed_bin_label: str | None = None,
) -> CoverageShares:
    """Fig. 2 — distance-weighted technology shares from the active tests.

    Static samples are excluded (they cover no distance); optional filters
    slice by direction (Fig. 2b), timezone (Fig. 2c) or the paper's speed
    bins (Fig. 2d).
    """
    weights: dict[RadioTechnology, float] = {t: 0.0 for t in ALL_TECHNOLOGIES}
    for s in dataset.tput(operator=operator, direction=direction, static=False):
        if timezone is not None and s.timezone is not timezone:
            continue
        if speed_bin_label is not None and speed_bin(s.speed_mph) != speed_bin_label:
            continue
        weights[s.tech] += max(s.speed_mph, 0.0)
    return _shares_from_weights(operator, weights)


def passive_coverage_shares(dataset: DriveDataset, operator: Operator) -> CoverageShares:
    """Fig. 1 (passive view) — shares from the handover-logger phones."""
    weights: dict[RadioTechnology, float] = {t: 0.0 for t in ALL_TECHNOLOGIES}
    for seg in dataset.passive_coverage:
        if seg.operator is operator:
            weights[seg.tech] += seg.length_m
    return _shares_from_weights(operator, weights)


def passive_coverage_shares_from_store(
    source, operator: Operator, *, seeds=None
) -> CoverageShares:
    """Fig. 1 shares straight off a columnar store, no row objects.

    ``source`` is a :class:`repro.store.DatasetReader` or
    :class:`repro.store.Catalog`; one grouped-sum kernel pass replaces the
    per-segment Python loop of :func:`passive_coverage_shares`, and catalog
    partitions whose stats exclude ``operator`` are never even opened.
    """
    from repro.store.query import Eq, group_total

    sums = group_total(
        source, "passive", "tech", "length_m",
        where=(Eq("operator", operator),), seeds=seeds,
    )
    weights: dict[RadioTechnology, float] = {t: 0.0 for t in ALL_TECHNOLOGIES}
    for name, length_m in sums.items():
        weights[RadioTechnology[name]] += length_m
    return _shares_from_weights(operator, weights)


def active_coverage_shares_from_store(
    source,
    operator: Operator,
    direction: str | None = None,
    speed_bin_label: str | None = None,
    *,
    seeds=None,
) -> CoverageShares:
    """Fig. 2 distance-weighted shares off a columnar store.

    Mirrors :func:`active_coverage_shares` (static samples excluded, speed
    as the distance weight) through the query engine's grouped-sum kernel.
    Negative speed weights cannot occur in stored data, so no clamping is
    needed.
    """
    from repro.store.query import Eq, group_total, where_speed_bin

    where = [Eq("operator", operator), Eq("static", False)]
    if direction is not None:
        where.append(Eq("direction", direction))
    if speed_bin_label is not None:
        where.append(where_speed_bin(speed_bin_label))
    sums = group_total(
        source, "tput", "tech", "speed_mph", where=tuple(where), seeds=seeds
    )
    weights: dict[RadioTechnology, float] = {t: 0.0 for t in ALL_TECHNOLOGIES}
    for name, weight in sums.items():
        weights[RadioTechnology[name]] += weight
    return _shares_from_weights(operator, weights)


def coverage_by_direction(
    dataset: DriveDataset, operator: Operator
) -> dict[str, CoverageShares]:
    """Fig. 2b — coverage split by backlogged traffic direction."""
    return {
        direction: active_coverage_shares(dataset, operator, direction=direction)
        for direction in ("downlink", "uplink")
    }


def coverage_by_timezone(
    dataset: DriveDataset, operator: Operator
) -> dict[Timezone, CoverageShares]:
    """Fig. 2c — coverage per timezone."""
    out: dict[Timezone, CoverageShares] = {}
    for tz in Timezone:
        try:
            out[tz] = active_coverage_shares(dataset, operator, timezone=tz)
        except AnalysisError:
            continue  # a small-scale dataset may not sample every zone
    return out


def coverage_by_speed_bin(
    dataset: DriveDataset, operator: Operator
) -> dict[str, CoverageShares]:
    """Fig. 2d — coverage per speed bin (0-20 / 20-60 / 60+ mph)."""
    out: dict[str, CoverageShares] = {}
    for label in SPEED_BIN_LABELS:
        try:
            out[label] = active_coverage_shares(dataset, operator, speed_bin_label=label)
        except AnalysisError:
            continue
    return out


def route_technology_strip(
    dataset: DriveDataset,
    operator: Operator,
    view: str = "passive",
    bin_km: float = 10.0,
) -> list[tuple[float, RadioTechnology | None]]:
    """Fig. 1 — the technology observed along the route, binned by distance.

    Returns (bin start in km, dominant technology or None when the bin has
    no observations), for either the ``"passive"`` handover-logger view or
    the ``"active"`` XCAL-during-tests view.
    """
    if view not in ("passive", "active"):
        raise AnalysisError(f"unknown view {view!r}")
    # Accumulate weight per (bin, tech).
    bins: dict[int, dict[RadioTechnology, float]] = {}
    if view == "passive":
        for seg in dataset.passive_coverage:
            if seg.operator is not operator:
                continue
            b = int(seg.start_m / 1000.0 / bin_km)
            bins.setdefault(b, {}).setdefault(seg.tech, 0.0)
            bins[b][seg.tech] += seg.length_m
        last_bin = max(bins) if bins else 0
    else:
        for s in dataset.tput(operator=operator, static=False):
            b = int(s.mark_m / 1000.0 / bin_km)
            bins.setdefault(b, {}).setdefault(s.tech, 0.0)
            bins[b][s.tech] += max(s.speed_mph, 0.01)
        last_bin = max(bins) if bins else 0

    strip: list[tuple[float, RadioTechnology | None]] = []
    for b in range(last_bin + 1):
        weights = bins.get(b)
        dominant = max(weights, key=weights.get) if weights else None
        strip.append((b * bin_km, dominant))
    return strip
