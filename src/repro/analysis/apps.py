"""§7 — application QoE analysis (Figs. 13-16 for Verizon, 18-22 for all).

Each figure in §7 combines three views per app:

* CDFs of the run-level metric(s) during driving, split by configuration
  (e.g. with/without frame compression), with the *best static run* marked;
* the metric against the fraction of the run spent on high-speed 5G,
  split by server kind (edge vs cloud) where applicable;
* the metric against the number of handovers in the run (the paper's
  no-correlation finding).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.analysis.cdf import EmpiricalCDF
from repro.campaign.dataset import DriveDataset, OffloadRunResult
from repro.campaign.tests import TestType
from repro.errors import AnalysisError
from repro.net.servers import ServerKind
from repro.radio.operators import Operator

__all__ = [
    "OffloadAppReport",
    "offload_app_report",
    "VideoAppReport",
    "video_app_report",
    "GamingAppReport",
    "gaming_app_report",
    "metric_handover_correlation",
]


def _finite(values: list[float]) -> list[float]:
    return [v for v in values if np.isfinite(v)]


@dataclass(frozen=True)
class OffloadAppReport:
    """Figs. 13/14 (and 18-20) for one operator and app."""

    operator: Operator
    app: TestType
    #: Driving E2E latency CDFs, keyed by compression on/off.
    e2e_cdf: dict[bool, EmpiricalCDF]
    #: Driving offloaded-FPS CDFs, keyed by compression.
    fps_cdf: dict[bool, EmpiricalCDF]
    #: Best static run's mean E2E per compression setting (dashed line).
    best_static_e2e_ms: dict[bool, float]
    best_static_fps: dict[bool, float]
    best_static_map: dict[bool, float]
    #: (frac high-speed 5G, metric, server kind) scatter; metric is mAP for
    #: AR and E2E latency for CAV.
    metric_vs_hs5g: list[tuple[float, float, ServerKind]]
    #: (handover count, metric) scatter.
    metric_vs_handovers: list[tuple[int, float]]
    #: Pearson r between handovers and the metric (the paper: none).
    handover_correlation: float


def _runs(
    dataset: DriveDataset, operator: Operator, app: TestType, static: bool
) -> list[OffloadRunResult]:
    return [
        r
        for r in dataset.offload_runs
        if r.operator is operator and r.app is app and r.static == static
    ]


def metric_handover_correlation(pairs: list[tuple[float, float]]) -> float:
    """Pearson r for (handovers, metric) pairs; 0 when degenerate."""
    if len(pairs) < 3:
        return 0.0
    x = np.asarray([p[0] for p in pairs], dtype=float)
    y = np.asarray([p[1] for p in pairs], dtype=float)
    mask = np.isfinite(x) & np.isfinite(y)
    x, y = x[mask], y[mask]
    if len(x) < 3 or np.std(x) == 0.0 or np.std(y) == 0.0:
        return 0.0
    return float(stats.pearsonr(x, y).statistic)


def offload_app_report(
    dataset: DriveDataset, operator: Operator, app: TestType
) -> OffloadAppReport:
    """Build the Fig. 13 (AR) or Fig. 14 (CAV) report for one operator."""
    if app not in (TestType.AR, TestType.CAV):
        raise AnalysisError(f"not an offload app: {app}")
    driving = _runs(dataset, operator, app, static=False)
    static = _runs(dataset, operator, app, static=True)
    if not driving:
        raise AnalysisError(f"no driving {app} runs for {operator}")

    e2e_cdf: dict[bool, EmpiricalCDF] = {}
    fps_cdf: dict[bool, EmpiricalCDF] = {}
    best_e2e: dict[bool, float] = {}
    best_fps: dict[bool, float] = {}
    best_map: dict[bool, float] = {}
    for compression in (False, True):
        subset = [r for r in driving if r.compression == compression]
        e2e_values = _finite([r.mean_e2e_ms for r in subset])
        if e2e_values:
            e2e_cdf[compression] = EmpiricalCDF.from_values(e2e_values)
        fps_values = [r.offload_fps for r in subset]
        if fps_values:
            fps_cdf[compression] = EmpiricalCDF.from_values(fps_values)
        s_subset = [r for r in static if r.compression == compression]
        s_e2e = _finite([r.mean_e2e_ms for r in s_subset])
        if s_e2e:
            best = min(s_subset, key=lambda r: r.mean_e2e_ms)
            best_e2e[compression] = best.mean_e2e_ms
            best_fps[compression] = best.offload_fps
            best_map[compression] = best.map_score

    def metric(r: OffloadRunResult) -> float:
        return r.map_score if app is TestType.AR else r.mean_e2e_ms

    vs_hs5g = [
        (r.frac_hs5g, metric(r), r.server_kind)
        for r in driving
        if np.isfinite(metric(r))
    ]
    vs_ho = [(r.ho_count, metric(r)) for r in driving if np.isfinite(metric(r))]
    return OffloadAppReport(
        operator=operator,
        app=app,
        e2e_cdf=e2e_cdf,
        fps_cdf=fps_cdf,
        best_static_e2e_ms=best_e2e,
        best_static_fps=best_fps,
        best_static_map=best_map,
        metric_vs_hs5g=vs_hs5g,
        metric_vs_handovers=vs_ho,
        handover_correlation=metric_handover_correlation(
            [(float(h), m) for h, m in vs_ho]
        ),
    )


@dataclass(frozen=True)
class VideoAppReport:
    """Fig. 15 (and Fig. 21) for one operator."""

    operator: Operator
    qoe_cdf: EmpiricalCDF
    bitrate_cdf: EmpiricalCDF
    rebuffer_cdf: EmpiricalCDF
    best_static_qoe: float | None
    negative_qoe_fraction: float
    qoe_vs_hs5g: list[tuple[float, float, ServerKind]]
    qoe_vs_handovers: list[tuple[int, float]]
    handover_correlation: float


def video_app_report(dataset: DriveDataset, operator: Operator) -> VideoAppReport:
    """Build the Fig. 15 report for one operator."""
    driving = [r for r in dataset.video_runs if r.operator is operator and not r.static]
    static = [r for r in dataset.video_runs if r.operator is operator and r.static]
    if not driving:
        raise AnalysisError(f"no driving video runs for {operator}")
    qoe = [r.qoe for r in driving]
    vs_ho = [(r.ho_count, r.qoe) for r in driving]
    return VideoAppReport(
        operator=operator,
        qoe_cdf=EmpiricalCDF.from_values(qoe),
        bitrate_cdf=EmpiricalCDF.from_values([r.avg_bitrate_mbps for r in driving]),
        rebuffer_cdf=EmpiricalCDF.from_values([r.rebuffer_ratio for r in driving]),
        best_static_qoe=max((r.qoe for r in static), default=None),
        negative_qoe_fraction=float(np.mean(np.asarray(qoe) < 0.0)),
        qoe_vs_hs5g=[(r.frac_hs5g, r.qoe, r.server_kind) for r in driving],
        qoe_vs_handovers=vs_ho,
        handover_correlation=metric_handover_correlation(
            [(float(h), q) for h, q in vs_ho]
        ),
    )


@dataclass(frozen=True)
class GamingAppReport:
    """Fig. 16 (and Fig. 22) for one operator."""

    operator: Operator
    bitrate_cdf: EmpiricalCDF
    latency_cdf: EmpiricalCDF
    drop_rate_cdf: EmpiricalCDF
    best_static_bitrate: float | None
    best_static_latency_ms: float | None
    best_static_drop_rate: float | None
    high_latency_run_fraction: float
    bitrate_vs_hs5g: list[tuple[float, float]]
    drops_vs_hs5g: list[tuple[float, float]]
    bitrate_vs_handovers: list[tuple[int, float]]
    handover_correlation: float


def gaming_app_report(dataset: DriveDataset, operator: Operator) -> GamingAppReport:
    """Build the Fig. 16 report for one operator."""
    driving = [r for r in dataset.gaming_runs if r.operator is operator and not r.static]
    static = [r for r in dataset.gaming_runs if r.operator is operator and r.static]
    if not driving:
        raise AnalysisError(f"no driving gaming runs for {operator}")
    latencies = [r.median_latency_ms for r in driving]
    vs_ho = [(r.ho_count, r.avg_bitrate_mbps) for r in driving]
    best = max(static, key=lambda r: r.avg_bitrate_mbps, default=None)
    return GamingAppReport(
        operator=operator,
        bitrate_cdf=EmpiricalCDF.from_values([r.avg_bitrate_mbps for r in driving]),
        latency_cdf=EmpiricalCDF.from_values(latencies),
        drop_rate_cdf=EmpiricalCDF.from_values(
            [100.0 * r.frame_drop_rate for r in driving]
        ),
        best_static_bitrate=best.avg_bitrate_mbps if best else None,
        best_static_latency_ms=best.median_latency_ms if best else None,
        best_static_drop_rate=100.0 * best.frame_drop_rate if best else None,
        high_latency_run_fraction=float(np.mean(np.asarray(latencies) > 200.0)),
        bitrate_vs_hs5g=[(r.frac_hs5g, r.avg_bitrate_mbps) for r in driving],
        drops_vs_hs5g=[(r.frac_hs5g, 100.0 * r.frame_drop_rate) for r in driving],
        bitrate_vs_handovers=vs_ho,
        handover_correlation=metric_handover_correlation(
            [(float(h), b) for h, b in vs_ho]
        ),
    )
