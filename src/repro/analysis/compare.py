"""Comparing two campaign datasets.

Ablation and sensitivity studies (different seeds, scales, deployment mixes,
policy profiles) need a principled way to say whether two datasets differ and
where.  This module compares the headline per-operator distributions with
two-sample Kolmogorov–Smirnov statistics and median ratios.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.campaign.dataset import DriveDataset
from repro.errors import AnalysisError
from repro.radio.operators import Operator

__all__ = ["MetricComparison", "DatasetComparison", "compare_datasets"]


@dataclass(frozen=True, slots=True)
class MetricComparison:
    """One metric's two-sample comparison."""

    metric: str
    operator: Operator
    ks_statistic: float
    p_value: float
    median_a: float
    median_b: float
    n_a: int
    n_b: int

    @property
    def median_ratio(self) -> float:
        """median(B) / median(A); 1.0 means no median shift."""
        if self.median_a == 0.0:
            raise AnalysisError("median of A is zero; ratio undefined")
        return self.median_b / self.median_a

    def differs(self, alpha: float = 0.01) -> bool:
        """True when the KS test rejects distribution equality at ``alpha``."""
        return self.p_value < alpha


@dataclass(frozen=True)
class DatasetComparison:
    """All metric comparisons between two datasets."""

    comparisons: list[MetricComparison]

    def for_metric(self, metric: str) -> list[MetricComparison]:
        return [c for c in self.comparisons if c.metric == metric]

    def max_divergence(self) -> MetricComparison:
        """The single most-different metric (largest KS statistic)."""
        if not self.comparisons:
            raise AnalysisError("no comparisons computed")
        return max(self.comparisons, key=lambda c: c.ks_statistic)

    def any_difference(self, alpha: float = 0.01) -> bool:
        return any(c.differs(alpha) for c in self.comparisons)


def _compare(metric: str, op: Operator, a: np.ndarray, b: np.ndarray) -> MetricComparison | None:
    if len(a) < 20 or len(b) < 20:
        return None
    result = stats.ks_2samp(a, b)
    return MetricComparison(
        metric=metric,
        operator=op,
        ks_statistic=float(result.statistic),
        p_value=float(result.pvalue),
        median_a=float(np.median(a)),
        median_b=float(np.median(b)),
        n_a=len(a),
        n_b=len(b),
    )


def compare_datasets(a: DriveDataset, b: DriveDataset) -> DatasetComparison:
    """Compare the headline distributions of two datasets.

    Covered metrics, per operator: driving DL/UL throughput, driving RTT,
    and handover durations.
    """
    comparisons: list[MetricComparison] = []
    for op in Operator:
        pairs = [
            ("tput_dl", a.tput_values(operator=op, direction="downlink", static=False),
             b.tput_values(operator=op, direction="downlink", static=False)),
            ("tput_ul", a.tput_values(operator=op, direction="uplink", static=False),
             b.tput_values(operator=op, direction="uplink", static=False)),
            ("rtt", a.rtt_values(operator=op, static=False),
             b.rtt_values(operator=op, static=False)),
            ("ho_duration",
             np.asarray([h.event.duration_ms for h in a.handovers_of(operator=op)]),
             np.asarray([h.event.duration_ms for h in b.handovers_of(operator=op)])),
        ]
        for metric, va, vb in pairs:
            comparison = _compare(metric, op, va, vb)
            if comparison is not None:
                comparisons.append(comparison)
    if not comparisons:
        raise AnalysisError("datasets too small to compare")
    return DatasetComparison(comparisons=comparisons)
