"""§6 — handovers: frequency, duration, and throughput impact (Figs. 11-12).

Handover rates are normalised per mile over each 30 s throughput test
(Fig. 11a); durations come from the signalling records (Fig. 11b).  The
throughput impact uses the paper's two deltas (Fig. 11c):

* ΔT1 = T3 − (T2 + T4) / 2 — the throughput of the 500 ms interval that
  contained the handover versus the average of the intervals just before and
  after it (drop *during* the handover);
* ΔT2 = (T4 + T5) / 2 − (T1 + T2) / 2 — post- versus pre-handover throughput,
  each averaged over 1 s (lasting effect of the handover).

Fig. 12 additionally breaks ΔT2 down by handover type (4G→4G, 5G→5G,
4G→5G, 5G→4G).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.cdf import EmpiricalCDF
from repro.campaign.dataset import DriveDataset, ThroughputSample
from repro.campaign.tests import TestType
from repro.errors import AnalysisError
from repro.mobility.events import HandoverType
from repro.radio.operators import Operator

__all__ = [
    "handovers_per_mile",
    "handover_durations",
    "handover_type_distribution",
    "HandoverImpact",
    "handover_impact",
]

_THROUGHPUT_TEST_TYPES = {
    "downlink": TestType.DOWNLINK_THROUGHPUT,
    "uplink": TestType.UPLINK_THROUGHPUT,
}


def handovers_per_mile(
    dataset: DriveDataset, operator: Operator, direction: str
) -> EmpiricalCDF:
    """Fig. 11a — handovers per mile, one value per 30 s throughput test."""
    test_type = _THROUGHPUT_TEST_TYPES[direction]
    ho_by_test: dict[int, int] = {}
    for h in dataset.handovers_of(operator=operator, direction=direction):
        ho_by_test[h.test_id] = ho_by_test.get(h.test_id, 0) + 1
    rates = []
    for t in dataset.tests_of(test_type=test_type, operator=operator, static=False):
        miles = t.distance_miles
        if miles < 0.02:
            continue  # parked in traffic: a per-mile rate is meaningless
        rates.append(ho_by_test.get(t.test_id, 0) / miles)
    if not rates:
        raise AnalysisError(f"no usable tests for {operator} {direction}")
    return EmpiricalCDF.from_values(rates)


def handover_durations(
    dataset: DriveDataset, operator: Operator, direction: str | None = None
) -> EmpiricalCDF:
    """Fig. 11b — handover durations (ms) from the signalling records."""
    durations = [
        h.event.duration_ms
        for h in dataset.handovers_of(operator=operator, direction=direction)
    ]
    if not durations:
        raise AnalysisError(f"no handovers recorded for {operator}")
    return EmpiricalCDF.from_values(durations)


def handover_type_distribution(
    dataset: DriveDataset, operator: Operator | None = None
) -> dict[HandoverType, float]:
    """Share of each handover class (Fig. 12's breakdown dimension).

    Horizontal handovers dominate — vertical ones require a technology
    boundary, which only a fraction of zone transitions cross.
    """
    counts: dict[HandoverType, int] = {t: 0 for t in HandoverType}
    total = 0
    for h in dataset.handovers_of(operator=operator):
        counts[h.event.handover_type] += 1
        total += 1
    if total == 0:
        raise AnalysisError("no handovers recorded")
    return {t: c / total for t, c in counts.items()}


@dataclass(frozen=True)
class HandoverImpact:
    """Fig. 12 — ΔT1 and ΔT2 distributions for one operator/direction."""

    operator: Operator
    direction: str
    delta_t1: EmpiricalCDF
    delta_t2: EmpiricalCDF
    #: ΔT2 split per handover type (only types with enough events).
    delta_t2_by_type: dict[HandoverType, EmpiricalCDF]

    @property
    def drop_fraction(self) -> float:
        """Fraction of handovers with a throughput drop (ΔT1 < 0)."""
        return self.delta_t1.prob_below(0.0)

    @property
    def improvement_fraction(self) -> float:
        """Fraction of handovers where post-HO throughput improved (ΔT2 > 0)."""
        return self.delta_t2.prob_above(0.0)


def _index_handovers_by_test(dataset: DriveDataset) -> dict[int, list]:
    index: dict[int, list] = {}
    for h in dataset.handovers:
        index.setdefault(h.test_id, []).append(h)
    return index


def _handover_type_at(
    by_test: dict[int, list], test_id: int, tick: ThroughputSample
) -> HandoverType | None:
    """The type of the (first) handover inside one 500 ms interval."""
    for h in by_test.get(test_id, ()):
        if tick.time_s - 0.5 < h.event.time_s <= tick.time_s:
            return h.event.handover_type
    return None


def handover_impact(
    dataset: DriveDataset, operator: Operator, direction: str
) -> HandoverImpact:
    """Compute Fig. 12's ΔT1/ΔT2 distributions.

    Follows the paper's construction exactly: with the handover inside
    interval t3, ΔT1 = T3 − (T2+T4)/2 and ΔT2 = (T4+T5)/2 − (T1+T2)/2,
    using XCAL's 500 ms intervals.
    """
    test_type = _THROUGHPUT_TEST_TYPES[direction]
    wanted = {
        t.test_id
        for t in dataset.tests_of(test_type=test_type, operator=operator, static=False)
    }
    ho_index = _index_handovers_by_test(dataset)
    d1, d2 = [], []
    d2_by_type: dict[HandoverType, list[float]] = {t: [] for t in HandoverType}

    for test_id, samples in dataset.samples_by_test().items():
        if test_id not in wanted:
            continue
        samples = sorted(samples, key=lambda s: s.time_s)
        tputs = [s.tput_mbps for s in samples]
        for i, s in enumerate(samples):
            if s.ho_count == 0:
                continue
            if i < 2 or i > len(samples) - 3:
                continue
            t1_, t2_, t3_, t4_, t5_ = tputs[i - 2 : i + 3]
            d1.append(t3_ - (t2_ + t4_) / 2.0)
            delta2 = (t4_ + t5_) / 2.0 - (t1_ + t2_) / 2.0
            d2.append(delta2)
            ho_type = _handover_type_at(ho_index, test_id, s)
            if ho_type is not None:
                d2_by_type[ho_type].append(delta2)

    if not d1:
        raise AnalysisError(f"no in-test handovers for {operator} {direction}")
    by_type = {
        t: EmpiricalCDF.from_values(v) for t, v in d2_by_type.items() if len(v) >= 5
    }
    return HandoverImpact(
        operator=operator,
        direction=direction,
        delta_t1=EmpiricalCDF.from_values(d1),
        delta_t2=EmpiricalCDF.from_values(d2),
        delta_t2_by_type=by_type,
    )
