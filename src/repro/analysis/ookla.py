"""§5.6, Table 3 — comparison against Ookla's Q3 2022 SpeedTest report.

The paper compares its per-test medians against the medians Ookla published
for Q3 2022 (mostly-static, close-server, multi-connection measurements).
The Ookla values are constants from the paper's Table 3; our side of the
table comes from the dataset's per-test means (the same aggregation as
Fig. 9).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.longterm import (
    per_test_rtt_stats,
    per_test_throughput_stats,
)
from repro.campaign.dataset import DriveDataset
from repro.radio.operators import Operator

__all__ = ["OoklaReference", "OOKLA_Q3_2022", "OoklaComparisonRow", "ookla_comparison"]


@dataclass(frozen=True, slots=True)
class OoklaReference:
    """Ookla's published medians for one operator (Q3 2022)."""

    downlink_mbps: float
    uplink_mbps: float
    rtt_ms: float


#: Table 3's "Speedtest" columns, verbatim from the paper.
OOKLA_Q3_2022: dict[Operator, OoklaReference] = {
    Operator.VERIZON: OoklaReference(58.64, 8.30, 59.0),
    Operator.TMOBILE: OoklaReference(116.14, 10.91, 60.0),
    Operator.ATT: OoklaReference(57.94, 7.55, 61.0),
}

#: The paper's own "Our Data" columns, for EXPERIMENTS.md comparison.
PAPER_DRIVE_MEDIANS: dict[Operator, OoklaReference] = {
    Operator.VERIZON: OoklaReference(29.62, 13.18, 63.71),
    Operator.TMOBILE: OoklaReference(37.09, 13.77, 81.68),
    Operator.ATT: OoklaReference(48.40, 9.80, 80.73),
}


@dataclass(frozen=True)
class OoklaComparisonRow:
    """One operator's row of Table 3."""

    operator: Operator
    our_downlink_mbps: float
    our_uplink_mbps: float
    our_rtt_ms: float
    ookla: OoklaReference

    @property
    def downlink_deficit(self) -> float:
        """Ratio of our (driving) to Ookla's (static) downlink median —
        the paper's evidence of driving degradation."""
        return self.our_downlink_mbps / self.ookla.downlink_mbps


def ookla_comparison(dataset: DriveDataset) -> list[OoklaComparisonRow]:
    """Table 3 — our per-test medians vs Ookla's Q3 2022 report."""
    rows = []
    for op in Operator:
        dl = per_test_throughput_stats(dataset, op, "downlink").median_mean
        ul = per_test_throughput_stats(dataset, op, "uplink").median_mean
        rtt = per_test_rtt_stats(dataset, op).median_mean
        rows.append(
            OoklaComparisonRow(
                operator=op,
                our_downlink_mbps=dl,
                our_uplink_mbps=ul,
                our_rtt_ms=rtt,
                ookla=OOKLA_Q3_2022[op],
            )
        )
    return rows
