"""§5.1–5.2 — network performance: static vs driving, per-technology (Figs. 3-4).

Fig. 3 contrasts the CDFs of all 500 ms throughput samples and all individual
RTT samples between the parked city baselines and the drive.  Fig. 4 breaks
driving performance down per serving technology, and for Verizon additionally
per server kind (Wavelength edge vs EC2 cloud).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.cdf import EmpiricalCDF
from repro.campaign.dataset import DriveDataset
from repro.errors import AnalysisError
from repro.net.servers import ServerKind
from repro.radio.operators import Operator
from repro.radio.technology import ALL_TECHNOLOGIES, RadioTechnology

__all__ = [
    "StaticVsDriving",
    "static_vs_driving",
    "static_vs_driving_from_store",
    "per_technology_throughput",
    "per_technology_rtt",
    "edge_vs_cloud_throughput",
    "edge_vs_cloud_rtt",
]


@dataclass(frozen=True)
class StaticVsDriving:
    """Fig. 3 CDFs for one operator."""

    operator: Operator
    static_dl: EmpiricalCDF
    static_ul: EmpiricalCDF
    static_rtt: EmpiricalCDF
    driving_dl: EmpiricalCDF
    driving_ul: EmpiricalCDF
    driving_rtt: EmpiricalCDF


def static_vs_driving(dataset: DriveDataset, operator: Operator) -> StaticVsDriving:
    """Fig. 3 — static (best-5G city baselines) vs driving CDFs."""
    return StaticVsDriving(
        operator=operator,
        static_dl=EmpiricalCDF.from_values(
            dataset.tput_values(operator=operator, direction="downlink", static=True)
        ),
        static_ul=EmpiricalCDF.from_values(
            dataset.tput_values(operator=operator, direction="uplink", static=True)
        ),
        static_rtt=EmpiricalCDF.from_values(
            dataset.rtt_values(operator=operator, static=True)
        ),
        driving_dl=EmpiricalCDF.from_values(
            dataset.tput_values(operator=operator, direction="downlink", static=False)
        ),
        driving_ul=EmpiricalCDF.from_values(
            dataset.tput_values(operator=operator, direction="uplink", static=False)
        ),
        driving_rtt=EmpiricalCDF.from_values(
            dataset.rtt_values(operator=operator, static=False)
        ),
    )


def static_vs_driving_from_store(
    source, operator: Operator, *, seeds=None
) -> StaticVsDriving:
    """Fig. 3 CDFs straight off a columnar store.

    ``source`` is a :class:`repro.store.DatasetReader` or
    :class:`repro.store.Catalog`.  Each CDF is built by the query engine's
    :func:`repro.store.query.cdf` kernel — predicates are pushed into the
    column stats, and only the projected value column is decoded — yielding
    curves identical to :func:`static_vs_driving` on the same data.
    """
    from repro.store.query import Eq, cdf

    def tput(direction: str, static: bool) -> EmpiricalCDF:
        return cdf(
            source, "tput", "tput_mbps",
            where=(
                Eq("operator", operator),
                Eq("direction", direction),
                Eq("static", static),
            ),
            seeds=seeds,
        )

    def rtt(static: bool) -> EmpiricalCDF:
        return cdf(
            source, "rtt", "rtt_ms",
            where=(Eq("operator", operator), Eq("static", static)),
            seeds=seeds,
        )

    return StaticVsDriving(
        operator=operator,
        static_dl=tput("downlink", True),
        static_ul=tput("uplink", True),
        static_rtt=rtt(True),
        driving_dl=tput("downlink", False),
        driving_ul=tput("uplink", False),
        driving_rtt=rtt(False),
    )


def per_technology_throughput(
    dataset: DriveDataset,
    operator: Operator,
    direction: str,
    server_kind: ServerKind | None = None,
) -> dict[RadioTechnology, EmpiricalCDF]:
    """Fig. 4 — driving throughput CDFs per serving technology."""
    out: dict[RadioTechnology, EmpiricalCDF] = {}
    for tech in ALL_TECHNOLOGIES:
        values = dataset.tput_values(
            operator=operator, direction=direction, static=False,
            techs=[tech], server_kind=server_kind,
        )
        if len(values) >= 5:
            out[tech] = EmpiricalCDF.from_values(values)
    if not out:
        raise AnalysisError(f"no driving samples for {operator} {direction}")
    return out


def per_technology_rtt(
    dataset: DriveDataset,
    operator: Operator,
    server_kind: ServerKind | None = None,
) -> dict[RadioTechnology, EmpiricalCDF]:
    """Fig. 4 (right) — driving RTT CDFs per serving technology."""
    out: dict[RadioTechnology, EmpiricalCDF] = {}
    for tech in ALL_TECHNOLOGIES:
        values = dataset.rtt_values(
            operator=operator, static=False, techs=[tech], server_kind=server_kind
        )
        if len(values) >= 5:
            out[tech] = EmpiricalCDF.from_values(values)
    if not out:
        raise AnalysisError(f"no driving RTT samples for {operator}")
    return out


def edge_vs_cloud_throughput(
    dataset: DriveDataset, direction: str
) -> dict[ServerKind, dict[RadioTechnology, EmpiricalCDF]]:
    """Fig. 4 (Verizon panels) — edge vs cloud per-technology throughput."""
    out: dict[ServerKind, dict[RadioTechnology, EmpiricalCDF]] = {}
    for kind in ServerKind:
        try:
            out[kind] = per_technology_throughput(
                dataset, Operator.VERIZON, direction, server_kind=kind
            )
        except AnalysisError:
            continue
    return out


def edge_vs_cloud_rtt(dataset: DriveDataset) -> dict[ServerKind, dict[RadioTechnology, EmpiricalCDF]]:
    """Fig. 4 (Verizon panels) — edge vs cloud per-technology RTT."""
    out: dict[ServerKind, dict[RadioTechnology, EmpiricalCDF]] = {}
    for kind in ServerKind:
        try:
            out[kind] = per_technology_rtt(dataset, Operator.VERIZON, server_kind=kind)
        except AnalysisError:
            continue
    return out
