"""The drive campaign: LA→Boston with a round-robin measurement cycle.

Mirrors the paper's methodology (§3): three phones (one per carrier, all in
the same vehicle) run the test suite round-robin — downlink/uplink TCP bulk
transfers, ICMP RTT tests, AR and CAV offloading runs (with and without
compression), a 360° video session and a cloud-gaming session — while an
XCAL-style probe logs 500 ms KPI samples, and three further passive
"handover-logger" phones record the technology they camp on across the whole
trip.  Static baselines are measured in each major city facing the best
high-speed-5G base station available (§5.1).

``CampaignConfig.scale`` subsamples the *active testing duty cycle* (the
fraction of the route covered by tests) while still traversing the full
route, so small-scale datasets remain geographically representative.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.gaming import run_gaming_session
from repro.apps.offload import AR_CONFIG, CAV_CONFIG, OffloadAppConfig, run_offload_app
from repro.apps.schedule import LinkSchedule
from repro.apps.video import VideoConfig, run_video_session
from repro.campaign.dataset import (
    DriveDataset,
    GamingRunResult,
    HandoverRecord,
    OffloadRunResult,
    RttSample,
    TestRecord,
    ThroughputSample,
    VideoRunResult,
)
from repro.campaign.link import LinkTick, StaticSite, UESession
from repro.campaign.scheduler import CyclePlan, FULL_CYCLE
from repro.campaign.tests import TEST_DIRECTION, TEST_DURATIONS_S, TEST_TRAFFIC, TestType
from repro.errors import CampaignError
from repro.geo.route import Route, RoutePosition, build_cross_country_route
from repro.geo.speed import SpeedProfile
from repro.net.servers import Server, ServerRegistry
from repro.net.tcp import CubicFlow
from repro.policy.profiles import PolicyProfile, TrafficProfile
from repro.radio.ca import Direction
from repro.radio.deployment import DeploymentModel
from repro.radio.operators import Operator
from repro.rng import RngFactory
from repro.radio.technology import HIGH_THROUGHPUT_TECHS

__all__ = [
    "CampaignConfig",
    "CampaignWindow",
    "DriveCampaign",
    "generate_dataset",
    "NOMINAL_CRUISE_MPS",
]

#: Factor applied to the sampled (unloaded) RTT to approximate the RTT a
#: saturating TCP flow experiences (self-induced queueing).
_TCP_RTT_INFLATION = 1.3
_TCP_RTT_FLOOR_MS = 15.0

#: Nominal cruise speed used to give each route window a deterministic
#: wall-clock origin (matches the ≈60 mph assumption of the duty-cycle
#: fast-forward).
NOMINAL_CRUISE_MPS = 27.0


@dataclass(frozen=True, slots=True)
class CampaignWindow:
    """One contiguous route span executed as an independent shard.

    The sharded execution engine (:mod:`repro.engine`) splits the LA→Boston
    route into windows and runs one :class:`DriveCampaign` per window.  A
    windowed campaign starts at ``start_m`` with a deterministic clock origin
    (``start_m / NOMINAL_CRUISE_MPS``), runs measurement cycles until it
    crosses ``end_m``, and visits only the static-baseline cities that fall
    inside its span.  Passive coverage is *not* recorded per window — the
    engine runs the trip-wide handover-logger as its own shard.

    ``overrun_m`` is how far past ``end_m`` the window's radio deployment is
    built: the last cycle of a window may legitimately overrun the boundary,
    and its ticks still need zones to camp on.
    """

    index: int
    start_m: float
    end_m: float
    overrun_m: float
    #: Base added to every locally sequential test id, giving each window a
    #: disjoint, deterministic id namespace in the merged dataset.
    test_id_base: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.start_m < self.end_m:
            raise CampaignError(
                f"invalid window span [{self.start_m}, {self.end_m})"
            )
        if self.overrun_m < 0.0:
            raise CampaignError("overrun_m must be non-negative")

    @property
    def start_time_s(self) -> float:
        """Deterministic wall-clock origin of this window."""
        return self.start_m / NOMINAL_CRUISE_MPS

    @property
    def length_m(self) -> float:
        return self.end_m - self.start_m


@dataclass(frozen=True, slots=True)
class CampaignConfig:
    """Knobs of a campaign run."""

    seed: int = 42
    #: Fraction of the route covered by active testing (1.0 = tests run
    #: back-to-back for the entire drive).
    scale: float = 1.0
    tick_s: float = 0.5
    include_apps: bool = True
    include_static: bool = True
    video_duration_s: float = 180.0
    gaming_duration_s: float = 60.0
    inter_test_gap_s: float = 4.0
    #: The round-robin test cycle; defaults to the paper's full suite.
    cycle: CyclePlan = FULL_CYCLE

    def __post_init__(self) -> None:
        if not 0.0 < self.scale <= 1.0:
            raise CampaignError(f"scale must be in (0, 1], got {self.scale}")
        if self.tick_s <= 0.0:
            raise CampaignError("tick_s must be positive")


class DriveCampaign:
    """One full campaign execution.

    Examples
    --------
    >>> campaign = DriveCampaign(CampaignConfig(seed=7, scale=0.01,
    ...                                         include_apps=False))
    >>> dataset = campaign.run()
    >>> len(dataset.tests) > 0
    True
    """

    def __init__(
        self,
        config: CampaignConfig | None = None,
        route: Route | None = None,
        policy_profiles: "dict[Operator, PolicyProfile] | None" = None,
        *,
        window: CampaignWindow | None = None,
        rng_factory: RngFactory | None = None,
    ) -> None:
        """Set up the campaign.

        Parameters
        ----------
        policy_profiles:
            Optional per-operator policy overrides (ablations: e.g. a
            no-uplink-demotion world).  Operators not in the mapping keep
            their default profile.
        window:
            Restrict the campaign to one route span (see
            :class:`CampaignWindow`).  ``None`` runs the whole route in one
            process — the classic single-shot mode.
        rng_factory:
            Override the random-substream factory.  The engine passes each
            window ``RngFactory(seed).shard(window.index)`` so shard draws
            are independent of executor topology.
        """
        self.config = config or CampaignConfig()
        self.route = route or build_cross_country_route()
        self.window = window
        self._rngs = rng_factory or RngFactory(seed=self.config.seed)
        self._servers = ServerRegistry(self.route)
        self._speed = SpeedProfile(self._rngs.stream("speed"))
        self._sessions: dict[Operator, UESession] = {}
        total = self.route.total_length_m
        span_start = 0.0 if window is None else window.start_m
        span_end = (
            None if window is None else min(window.end_m + window.overrun_m, total)
        )
        overrides = policy_profiles or {}
        for op in Operator:
            deployment = DeploymentModel.build(
                op, self.route, self._rngs.stream(f"deploy-{op.code}"),
                start_m=span_start, end_m=span_end,
            )
            self._sessions[op] = UESession(
                op, deployment, self._rngs, policy_profile=overrides.get(op)
            )
        self._mark_m = span_start
        self._time_s = 0.0 if window is None else window.start_time_s
        self._test_seq = 0
        self._test_id_base = 0 if window is None else window.test_id_base
        self._dataset = DriveDataset(
            seed=self.config.seed,
            scale=self.config.scale,
            route_length_km=self.route.total_length_km,
        )

    # -- public API --------------------------------------------------------

    def run(self) -> DriveDataset:
        """Execute the campaign (or one window of it) and return the dataset."""
        if self.window is None:
            self._record_passive_coverage()
        remaining_cities = [
            (self.route.city_mark_m(c.name), c.name) for c in self.route.cities
        ]
        if self.window is not None:
            remaining_cities = [
                (mark, name)
                for mark, name in remaining_cities
                if self._city_in_window(mark)
            ]
        remaining_cities.sort()

        end_m = self.route.total_length_m - 2_000.0
        if self.window is not None:
            end_m = min(self.window.end_m, end_m)
        while self._mark_m < end_m:
            # Static battery when we reach a city.
            while remaining_cities and remaining_cities[0][0] <= self._mark_m:
                _, city_name = remaining_cities.pop(0)
                if self.config.include_static:
                    self._run_static_battery(city_name)
            cycle_start_m = self._mark_m
            self._run_cycle()
            cycle_dist = self._mark_m - cycle_start_m
            self._fast_forward(cycle_dist, end_m)

        # Cities not reached before the loop ended (Boston sits at the end).
        for _, city_name in remaining_cities:
            if self.config.include_static:
                self._run_static_battery(city_name)
        return self._dataset

    def _city_in_window(self, city_mark_m: float) -> bool:
        """Whether this window owns the city at ``city_mark_m``.

        Windows own cities half-open ``[start, end)``; the final window (the
        one whose end reaches the route terminus) also owns the terminus
        city, Boston.
        """
        assert self.window is not None
        if self.window.end_m >= self.route.total_length_m - 1e-6:
            return self.window.start_m <= city_mark_m <= self.window.end_m
        return self.window.start_m <= city_mark_m < self.window.end_m

    def connected_active_cell_counts(self) -> dict[Operator, int]:
        """Distinct active-layer cells each operator's UE connected to.

        The engine's merger sums these across windows and adds the
        macro-grid cells counted by the passive shard.  Window spans are
        disjoint, but a window's last cycle can run into the ``overrun_m``
        deployment margin past its end, so cells on a window boundary may be
        counted by both neighbouring windows (see ``engine/merge.py``).
        """
        return {
            op: len(session.handover_engine.connected_cells)
            for op, session in self._sessions.items()
        }

    # -- cycle & movement ----------------------------------------------------

    def _run_cycle(self) -> None:
        """One round-robin pass over the configured cycle plan (§3)."""
        plan = self.config.cycle
        if not self.config.include_apps:
            plan = plan.without_apps()
        for test_type in plan.tests:
            if test_type in (
                TestType.DOWNLINK_THROUGHPUT, TestType.UPLINK_THROUGHPUT
            ):
                self._run_throughput_test(test_type)
                self._gap()
            elif test_type is TestType.RTT:
                self._run_rtt_test()
                self._gap()
            elif test_type is TestType.AR:
                for compression in (False, True):
                    self._run_offload_test(TestType.AR, AR_CONFIG, compression)
                    self._gap()
            elif test_type is TestType.CAV:
                for compression in (False, True):
                    self._run_offload_test(TestType.CAV, CAV_CONFIG, compression)
                    self._gap()
            elif test_type is TestType.VIDEO_360:
                self._run_video_test()
                self._gap()
            elif test_type is TestType.CLOUD_GAMING:
                self._run_gaming_test()
                self._gap()

    def _gap(self) -> None:
        """Short idle gap between tests (reconfiguration, logging flush)."""
        steps = max(int(self.config.inter_test_gap_s / self.config.tick_s), 1)
        for _ in range(steps):
            self._advance(self.config.tick_s)

    def _advance(self, dt_s: float) -> RoutePosition:
        """Move the vehicle for ``dt_s`` seconds; return the new position."""
        position = self.route.position_at(min(self._mark_m, self.route.total_length_m))
        speed_mph = self._speed.step(position.region, dt_s)
        self._mark_m = min(
            self._mark_m + self._speed.current_speed_mps * dt_s,
            self.route.total_length_m,
        )
        self._time_s += dt_s
        return self.route.position_at(self._mark_m)

    def _fast_forward(self, cycle_dist_m: float, end_m: float) -> None:
        """Skip the idle stretch implied by the campaign's duty cycle."""
        if self.config.scale >= 1.0:
            return
        skip = cycle_dist_m * (1.0 / self.config.scale - 1.0)
        skip = min(skip, max(end_m + 1_000.0 - self._mark_m, 0.0))
        if skip <= 0.0:
            return
        self._mark_m += skip
        self._time_s += skip / 27.0  # ≈ 60 mph average cruise
        for session in self._sessions.values():
            session.handover_engine.reset_serving()

    def _next_test_id(self) -> int:
        self._test_seq += 1
        return self._test_id_base + self._test_seq

    def _servers_now(self, position: RoutePosition) -> dict[Operator, Server]:
        return {
            op: self._servers.select(op, position.point, position.timezone)
            for op in Operator
        }

    # -- driving tests ---------------------------------------------------------

    def _run_throughput_test(self, test_type: TestType) -> None:
        direction = TEST_DIRECTION[test_type]
        traffic = TEST_TRAFFIC[test_type]
        duration = TEST_DURATIONS_S[test_type]
        ticks = int(duration / self.config.tick_s)
        start_pos = self.route.position_at(self._mark_m)
        servers = self._servers_now(start_pos)
        test_ids = {op: self._next_test_id() for op in Operator}
        flows = {
            op: CubicFlow(self._rngs.stream(f"tcp-{op.code}"))
            for op in Operator
        }
        start_time = self._time_s
        start_mark = self._mark_m

        for _ in range(ticks):
            position = self._advance(self.config.tick_s)
            speed = self._speed.current_speed_mph
            for op in Operator:
                tick = self._sessions[op].tick(
                    self._time_s, position, speed, traffic, direction,
                    servers[op], self.config.tick_s,
                )
                tcp_rtt = max(tick.rtt_ms * _TCP_RTT_INFLATION, _TCP_RTT_FLOOR_MS)
                tput = flows[op].advance(
                    capacity_mbps=tick.capacity_mbps(direction),
                    rtt_ms=tcp_rtt,
                    dt_s=self.config.tick_s,
                    bler=tick.bler,
                    interruption_s=tick.interruption_s,
                )
                self._record_tput_tick(test_ids[op], op, direction, tick, tput, static=False)

        for op in Operator:
            self._dataset.tests.append(
                TestRecord(
                    test_id=test_ids[op],
                    test_type=test_type,
                    operator=op,
                    start_time_s=start_time,
                    end_time_s=self._time_s,
                    start_mark_m=start_mark,
                    end_mark_m=self._mark_m,
                    server_kind=servers[op].kind,
                    static=False,
                )
            )

    def _run_rtt_test(self) -> None:
        duration = TEST_DURATIONS_S[TestType.RTT]
        interval = 0.2
        pings = int(duration / interval)
        start_pos = self.route.position_at(self._mark_m)
        servers = self._servers_now(start_pos)
        test_ids = {op: self._next_test_id() for op in Operator}
        start_time, start_mark = self._time_s, self._mark_m

        for _ in range(pings):
            position = self._advance(interval)
            speed = self._speed.current_speed_mph
            for op in Operator:
                tick = self._sessions[op].tick(
                    self._time_s, position, speed, TrafficProfile.IDLE_PING,
                    Direction.DOWNLINK, servers[op], interval,
                )
                self._dataset.rtt_samples.append(
                    RttSample(
                        test_id=test_ids[op],
                        operator=op,
                        time_s=self._time_s,
                        mark_m=position.distance_m,
                        speed_mph=speed,
                        region=position.region,
                        timezone=position.timezone,
                        tech=tick.tech,
                        rtt_ms=tick.rtt_ms,
                        server_kind=servers[op].kind,
                        static=False,
                    )
                )

        for op in Operator:
            self._dataset.tests.append(
                TestRecord(
                    test_id=test_ids[op],
                    test_type=TestType.RTT,
                    operator=op,
                    start_time_s=start_time,
                    end_time_s=self._time_s,
                    start_mark_m=start_mark,
                    end_mark_m=self._mark_m,
                    server_kind=servers[op].kind,
                    static=False,
                )
            )

    # -- application tests -------------------------------------------------------

    def _collect_schedule(
        self,
        duration_s: float,
        traffic: TrafficProfile,
        direction: str,
        servers: dict[Operator, Server],
        test_ids: dict[Operator, int],
    ) -> dict[Operator, LinkSchedule]:
        """Drive for ``duration_s``, recording a LinkSchedule per operator."""
        ticks = int(duration_s / self.config.tick_s)
        per_op: dict[Operator, dict[str, list]] = {
            op: {"t": [], "ul": [], "dl": [], "rtt": [], "tech": [], "intr": []}
            for op in Operator
        }
        for _ in range(ticks):
            position = self._advance(self.config.tick_s)
            speed = self._speed.current_speed_mph
            for op in Operator:
                tick = self._sessions[op].tick(
                    self._time_s, position, speed, traffic, direction,
                    servers[op], self.config.tick_s,
                )
                acc = per_op[op]
                acc["t"].append(self._time_s)
                acc["ul"].append(tick.capacity_ul_mbps)
                acc["dl"].append(tick.capacity_dl_mbps)
                acc["rtt"].append(tick.rtt_ms)
                acc["tech"].append(tick.tech)
                for ev in tick.handovers:
                    acc["intr"].append((self._time_s, ev.duration_ms / 1000.0))
                    self._dataset.handovers.append(
                        HandoverRecord(test_id=test_ids[op], direction=direction, event=ev)
                    )
        return {
            op: LinkSchedule(
                times_s=np.asarray(acc["t"]),
                tick_s=self.config.tick_s,
                ul_mbps=np.asarray(acc["ul"]),
                dl_mbps=np.asarray(acc["dl"]),
                rtt_ms=np.asarray(acc["rtt"]),
                techs=tuple(acc["tech"]),
                interruptions=tuple(acc["intr"]),
            )
            for op, acc in per_op.items()
        }

    def _run_offload_test(
        self, test_type: TestType, app_config: OffloadAppConfig, compression: bool
    ) -> None:
        start_pos = self.route.position_at(self._mark_m)
        servers = self._servers_now(start_pos)
        test_ids = {op: self._next_test_id() for op in Operator}
        start_time, start_mark = self._time_s, self._mark_m
        schedules = self._collect_schedule(
            app_config.duration_s, TEST_TRAFFIC[test_type], TEST_DIRECTION[test_type],
            servers, test_ids,
        )
        for op, schedule in schedules.items():
            metrics = run_offload_app(schedule, app_config, compression)
            self._dataset.offload_runs.append(
                OffloadRunResult(
                    app=test_type,
                    test_id=test_ids[op],
                    operator=op,
                    server_kind=servers[op].kind,
                    compression=compression,
                    mean_e2e_ms=metrics.mean_e2e_ms,
                    median_e2e_ms=metrics.median_e2e_ms,
                    offload_fps=metrics.offload_fps,
                    map_score=metrics.map_score,
                    ho_count=schedule.handover_count(),
                    frac_hs5g=schedule.fraction_on(HIGH_THROUGHPUT_TECHS),
                    static=False,
                    uplink_megabits=metrics.uplink_megabits,
                )
            )
            self._dataset.tests.append(
                TestRecord(
                    test_id=test_ids[op],
                    test_type=test_type,
                    operator=op,
                    start_time_s=start_time,
                    end_time_s=self._time_s,
                    start_mark_m=start_mark,
                    end_mark_m=self._mark_m,
                    server_kind=servers[op].kind,
                    static=False,
                )
            )

    def _run_video_test(self) -> None:
        start_pos = self.route.position_at(self._mark_m)
        servers = self._servers_now(start_pos)
        test_ids = {op: self._next_test_id() for op in Operator}
        start_time, start_mark = self._time_s, self._mark_m
        schedules = self._collect_schedule(
            self.config.video_duration_s, TrafficProfile.BACKLOGGED_DL,
            Direction.DOWNLINK, servers, test_ids,
        )
        cfg = VideoConfig(session_duration_s=self.config.video_duration_s)
        for op, schedule in schedules.items():
            metrics = run_video_session(schedule, cfg)
            self._dataset.video_runs.append(
                VideoRunResult(
                    test_id=test_ids[op],
                    operator=op,
                    server_kind=servers[op].kind,
                    qoe=metrics.qoe,
                    avg_bitrate_mbps=metrics.avg_bitrate_mbps,
                    rebuffer_ratio=metrics.rebuffer_ratio,
                    ho_count=schedule.handover_count(),
                    frac_hs5g=schedule.fraction_on(HIGH_THROUGHPUT_TECHS),
                    static=False,
                    downlink_megabits=metrics.downlink_megabits,
                )
            )
            self._dataset.tests.append(
                TestRecord(
                    test_id=test_ids[op], test_type=TestType.VIDEO_360, operator=op,
                    start_time_s=start_time, end_time_s=self._time_s,
                    start_mark_m=start_mark, end_mark_m=self._mark_m,
                    server_kind=servers[op].kind, static=False,
                )
            )

    def _run_gaming_test(self) -> None:
        start_pos = self.route.position_at(self._mark_m)
        servers = self._servers_now(start_pos)
        test_ids = {op: self._next_test_id() for op in Operator}
        start_time, start_mark = self._time_s, self._mark_m
        schedules = self._collect_schedule(
            self.config.gaming_duration_s, TrafficProfile.BACKLOGGED_DL,
            Direction.DOWNLINK, servers, test_ids,
        )
        for op, schedule in schedules.items():
            metrics = run_gaming_session(schedule)
            self._dataset.gaming_runs.append(
                GamingRunResult(
                    test_id=test_ids[op],
                    operator=op,
                    server_kind=servers[op].kind,
                    avg_bitrate_mbps=metrics.avg_bitrate_mbps,
                    median_latency_ms=metrics.median_latency_ms,
                    p95_latency_ms=metrics.p95_latency_ms,
                    frame_drop_rate=metrics.frame_drop_rate,
                    ho_count=schedule.handover_count(),
                    frac_hs5g=schedule.fraction_on(HIGH_THROUGHPUT_TECHS),
                    static=False,
                    downlink_megabits=metrics.downlink_megabits,
                )
            )
            self._dataset.tests.append(
                TestRecord(
                    test_id=test_ids[op], test_type=TestType.CLOUD_GAMING, operator=op,
                    start_time_s=start_time, end_time_s=self._time_s,
                    start_mark_m=start_mark, end_mark_m=self._mark_m,
                    server_kind=servers[op].kind, static=False,
                )
            )

    # -- static baselines -----------------------------------------------------------

    def _run_static_battery(self, city_name: str) -> None:
        """Static measurements in a city, facing the best 5G BS (§5.1)."""
        city_mark = self.route.city_mark_m(city_name)
        position = self.route.position_at(city_mark)
        for op in Operator:
            session = self._sessions[op]
            site = session.find_static_site(city_mark, city_span_m=8_000.0)
            if site is None:
                continue  # no mmWave/midband here: skip, as the paper did
            server = self._servers.select(op, position.point, position.timezone)
            self._run_static_throughput(op, site, position, server, Direction.DOWNLINK)
            self._run_static_throughput(op, site, position, server, Direction.UPLINK)
            self._run_static_rtt(op, site, position, server)
            if self.config.include_apps:
                self._run_static_apps(op, site, position, server)
            session.handover_engine.reset_serving()

    def _static_schedule(
        self,
        op: Operator,
        site: StaticSite,
        position: RoutePosition,
        server: Server,
        duration_s: float,
        direction: str,
    ) -> LinkSchedule:
        ticks = int(duration_s / self.config.tick_s)
        t, ul, dl, rtt, tech = [], [], [], [], []
        session = self._sessions[op]
        for i in range(ticks):
            tick = session.static_tick(
                site, position, self._time_s + i * self.config.tick_s, direction, server
            )
            t.append(tick.time_s)
            ul.append(tick.capacity_ul_mbps)
            dl.append(tick.capacity_dl_mbps)
            rtt.append(tick.rtt_ms)
            tech.append(tick.tech)
        return LinkSchedule(
            times_s=np.asarray(t), tick_s=self.config.tick_s,
            ul_mbps=np.asarray(ul), dl_mbps=np.asarray(dl),
            rtt_ms=np.asarray(rtt), techs=tuple(tech), interruptions=(),
        )

    def _run_static_throughput(
        self, op: Operator, site: StaticSite, position: RoutePosition,
        server: Server, direction: str,
    ) -> None:
        test_type = (
            TestType.DOWNLINK_THROUGHPUT
            if direction == Direction.DOWNLINK
            else TestType.UPLINK_THROUGHPUT
        )
        duration = TEST_DURATIONS_S[test_type]
        ticks = int(duration / self.config.tick_s)
        test_id = self._next_test_id()
        flow = CubicFlow(self._rngs.stream(f"tcp-{op.code}"))
        start_time = self._time_s
        session = self._sessions[op]
        for _ in range(ticks):
            self._time_s += self.config.tick_s
            tick = session.static_tick(site, position, self._time_s, direction, server)
            tput = flow.advance(
                capacity_mbps=tick.capacity_mbps(direction),
                rtt_ms=max(tick.rtt_ms * _TCP_RTT_INFLATION, _TCP_RTT_FLOOR_MS),
                dt_s=self.config.tick_s,
                bler=tick.bler,
            )
            self._record_tput_tick(test_id, op, direction, tick, tput, static=True)
        self._dataset.tests.append(
            TestRecord(
                test_id=test_id, test_type=test_type, operator=op,
                start_time_s=start_time, end_time_s=self._time_s,
                start_mark_m=position.distance_m, end_mark_m=position.distance_m,
                server_kind=server.kind, static=True,
            )
        )

    def _run_static_rtt(
        self, op: Operator, site: StaticSite, position: RoutePosition, server: Server
    ) -> None:
        duration = TEST_DURATIONS_S[TestType.RTT]
        interval = 0.2
        test_id = self._next_test_id()
        start_time = self._time_s
        session = self._sessions[op]
        for _ in range(int(duration / interval)):
            self._time_s += interval
            tick = session.static_tick(
                site, position, self._time_s, Direction.DOWNLINK, server
            )
            self._dataset.rtt_samples.append(
                RttSample(
                    test_id=test_id, operator=op, time_s=self._time_s,
                    mark_m=position.distance_m, speed_mph=0.0,
                    region=position.region, timezone=position.timezone,
                    tech=tick.tech, rtt_ms=tick.rtt_ms,
                    server_kind=server.kind, static=True,
                )
            )
        self._dataset.tests.append(
            TestRecord(
                test_id=test_id, test_type=TestType.RTT, operator=op,
                start_time_s=start_time, end_time_s=self._time_s,
                start_mark_m=position.distance_m, end_mark_m=position.distance_m,
                server_kind=server.kind, static=True,
            )
        )

    def _run_static_apps(
        self, op: Operator, site: StaticSite, position: RoutePosition, server: Server
    ) -> None:
        for app_config, test_type in ((AR_CONFIG, TestType.AR), (CAV_CONFIG, TestType.CAV)):
            for compression in (False, True):
                schedule = self._static_schedule(
                    op, site, position, server, app_config.duration_s, Direction.UPLINK
                )
                metrics = run_offload_app(schedule, app_config, compression)
                self._time_s += app_config.duration_s
                self._dataset.offload_runs.append(
                    OffloadRunResult(
                        app=test_type, test_id=self._next_test_id(), operator=op,
                        server_kind=server.kind, compression=compression,
                        mean_e2e_ms=metrics.mean_e2e_ms,
                        median_e2e_ms=metrics.median_e2e_ms,
                        offload_fps=metrics.offload_fps,
                        map_score=metrics.map_score,
                        ho_count=0, frac_hs5g=schedule.fraction_on(HIGH_THROUGHPUT_TECHS),
                        static=True, uplink_megabits=metrics.uplink_megabits,
                    )
                )
        schedule = self._static_schedule(
            op, site, position, server, self.config.video_duration_s, Direction.DOWNLINK
        )
        video = run_video_session(
            schedule, VideoConfig(session_duration_s=self.config.video_duration_s)
        )
        self._time_s += self.config.video_duration_s
        self._dataset.video_runs.append(
            VideoRunResult(
                test_id=self._next_test_id(), operator=op, server_kind=server.kind,
                qoe=video.qoe, avg_bitrate_mbps=video.avg_bitrate_mbps,
                rebuffer_ratio=video.rebuffer_ratio, ho_count=0,
                frac_hs5g=schedule.fraction_on(HIGH_THROUGHPUT_TECHS),
                static=True, downlink_megabits=video.downlink_megabits,
            )
        )
        schedule = self._static_schedule(
            op, site, position, server, self.config.gaming_duration_s, Direction.DOWNLINK
        )
        gaming = run_gaming_session(schedule)
        self._time_s += self.config.gaming_duration_s
        self._dataset.gaming_runs.append(
            GamingRunResult(
                test_id=self._next_test_id(), operator=op, server_kind=server.kind,
                avg_bitrate_mbps=gaming.avg_bitrate_mbps,
                median_latency_ms=gaming.median_latency_ms,
                p95_latency_ms=gaming.p95_latency_ms,
                frame_drop_rate=gaming.frame_drop_rate, ho_count=0,
                frac_hs5g=schedule.fraction_on(HIGH_THROUGHPUT_TECHS),
                static=True, downlink_megabits=gaming.downlink_megabits,
            )
        )

    # -- recording helpers ------------------------------------------------------------

    def _record_tput_tick(
        self,
        test_id: int,
        op: Operator,
        direction: str,
        tick: LinkTick,
        tput_mbps: float,
        static: bool,
    ) -> None:
        self._dataset.throughput_samples.append(
            ThroughputSample(
                test_id=test_id,
                operator=op,
                direction=direction,
                time_s=tick.time_s,
                mark_m=tick.mark_m,
                speed_mph=tick.speed_mph,
                region=tick.position.region,
                timezone=tick.position.timezone,
                tech=tick.tech,
                rsrp_dbm=tick.rsrp_dbm,
                mcs=tick.mcs,
                bler=tick.bler,
                n_ccs=tick.n_ccs,
                tput_mbps=tput_mbps,
                server_kind=tick.server.kind,
                ho_count=len(tick.handovers),
                static=static,
            )
        )
        for ev in tick.handovers:
            self._dataset.handovers.append(
                HandoverRecord(test_id=test_id, direction=direction, event=ev)
            )

    def _record_passive_coverage(self) -> None:
        """Walk the route per operator with the passive handover-logger."""
        # Imported here: repro.xcal pulls in repro.campaign at package level,
        # so a module-level import would be circular.
        from repro.xcal.handover_logger import run_handover_logger

        for op in Operator:
            trace = run_handover_logger(
                op,
                self._sessions[op].deployment,
                self._rngs.stream(f"passive-{op.code}"),
            )
            self._dataset.passive_coverage.extend(trace.segments)
            self._dataset.passive_handover_counts[op] = trace.macro_handovers

    def finalize_connected_cells(self) -> None:
        """Record the distinct cells each phone connected to."""
        for op, session in self._sessions.items():
            macro_cells = {
                c.cell_id
                for z in session.deployment.macro_zones
                for c in z.cells.values()
            }
            self._dataset.connected_cells[op] = len(
                set(session.handover_engine.connected_cells) | macro_cells
            )


def generate_dataset(
    seed: int = 42,
    scale: float = 1.0,
    include_apps: bool = True,
    include_static: bool = True,
) -> DriveDataset:
    """Generate a full campaign dataset — the library's main entry point.

    Executes the canonical shard plan of :mod:`repro.engine` serially in
    this process, so the result is bit-identical to
    :func:`repro.engine.generate_dataset_parallel` with the same seed at any
    worker count.

    Parameters
    ----------
    seed:
        Root seed; identical seeds produce identical datasets.
    scale:
        Active-testing duty cycle along the route (1.0 reproduces the
        paper's back-to-back schedule; 0.1 is a quick representative slice).
    include_apps / include_static:
        Toggle the application tests and the static city baselines.
    """
    # Imported here: repro.engine orchestrates this module, so a module-level
    # import would be circular.
    from repro.engine import generate_dataset_parallel

    return generate_dataset_parallel(
        seed=seed, scale=scale,
        include_apps=include_apps, include_static=include_static,
        workers=1, executor="serial",
    )
