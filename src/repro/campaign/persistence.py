"""Dataset persistence: save/load a :class:`DriveDataset` to disk.

The paper's dataset is published as files [8]; an adopted open-source
release needs the same.  We serialise to gzipped JSON-lines — one record per
line, one section header per record family — which is diffable, streamable,
and keeps enum round-trips explicit.

Saves are **atomic** (written to a sibling temp file, then ``os.replace``'d
into place) so an interrupted save can never leave a truncated gzip behind,
and **byte-reproducible** (the gzip mtime field is pinned to zero) so equal
datasets serialise to equal bytes — both properties the engine's shard
checkpoints and determinism tests rely on.

Two on-disk backends share this API: the row-oriented gzipped JSON-lines
format here, and the columnar ``.rcol`` store format (:mod:`repro.store`)
optimised for analytical queries.  :func:`save_dataset` picks by the
``format=`` argument (``"auto"`` keys on the ``.rcol`` suffix);
:func:`load_dataset` sniffs the file's magic bytes, so callers never need
to know which backend wrote a file.  Both round-trip every record value
exactly.
"""

from __future__ import annotations

import gzip
import io
import json
import os
import pathlib

from repro.campaign.dataset import (
    DriveDataset,
    GamingRunResult,
    HandoverRecord,
    OffloadRunResult,
    PassiveCoverageSegment,
    RttSample,
    TestRecord,
    ThroughputSample,
    VideoRunResult,
)
from repro.campaign.tests import TestType
from repro.errors import LogFormatError
from repro.geo.regions import RegionType
from repro.geo.timezones import Timezone
from repro.mobility.events import HandoverEvent
from repro.net.servers import ServerKind
from repro.radio.cells import CellId
from repro.radio.operators import Operator
from repro.radio.technology import RadioTechnology

__all__ = ["save_dataset", "load_dataset", "FORMAT_VERSION"]

FORMAT_VERSION = 1

_OP = {op.name: op for op in Operator}
_TECH = {t.name: t for t in RadioTechnology}
_REGION = {r.name: r for r in RegionType}
_TZ = {tz.name: tz for tz in Timezone}
_KIND = {k.name: k for k in ServerKind}
_TEST_TYPE = {t.name: t for t in TestType}


def _cell_id_to_str(cid: CellId) -> str:
    return f"{cid.operator.name}:{cid.technology.name}:{cid.sequence}"


def _cell_id_from_str(text: str) -> CellId:
    op_name, tech_name, seq = text.split(":")
    return CellId(_OP[op_name], _TECH[tech_name], int(seq))


# -- per-record-family encoders/decoders --------------------------------------


def _tput_to_obj(s: ThroughputSample) -> dict:
    return {
        "tid": s.test_id, "op": s.operator.name, "dir": s.direction,
        "t": s.time_s, "m": s.mark_m, "v": s.speed_mph,
        "reg": s.region.name, "tz": s.timezone.name, "tech": s.tech.name,
        "rsrp": s.rsrp_dbm, "mcs": s.mcs, "bler": s.bler, "ca": s.n_ccs,
        "tput": s.tput_mbps, "srv": s.server_kind.name,
        "ho": s.ho_count, "st": s.static,
    }


def _tput_from_obj(o: dict) -> ThroughputSample:
    return ThroughputSample(
        test_id=o["tid"], operator=_OP[o["op"]], direction=o["dir"],
        time_s=o["t"], mark_m=o["m"], speed_mph=o["v"],
        region=_REGION[o["reg"]], timezone=_TZ[o["tz"]], tech=_TECH[o["tech"]],
        rsrp_dbm=o["rsrp"], mcs=o["mcs"], bler=o["bler"], n_ccs=o["ca"],
        tput_mbps=o["tput"], server_kind=_KIND[o["srv"]],
        ho_count=o["ho"], static=o["st"],
    )


def _rtt_to_obj(s: RttSample) -> dict:
    return {
        "tid": s.test_id, "op": s.operator.name, "t": s.time_s, "m": s.mark_m,
        "v": s.speed_mph, "reg": s.region.name, "tz": s.timezone.name,
        "tech": s.tech.name, "rtt": s.rtt_ms, "srv": s.server_kind.name,
        "st": s.static,
    }


def _rtt_from_obj(o: dict) -> RttSample:
    return RttSample(
        test_id=o["tid"], operator=_OP[o["op"]], time_s=o["t"], mark_m=o["m"],
        speed_mph=o["v"], region=_REGION[o["reg"]], timezone=_TZ[o["tz"]],
        tech=_TECH[o["tech"]], rtt_ms=o["rtt"], server_kind=_KIND[o["srv"]],
        static=o["st"],
    )


def _test_to_obj(t: TestRecord) -> dict:
    return {
        "tid": t.test_id, "type": t.test_type.name, "op": t.operator.name,
        "t0": t.start_time_s, "t1": t.end_time_s,
        "m0": t.start_mark_m, "m1": t.end_mark_m,
        "srv": t.server_kind.name, "st": t.static,
    }


def _test_from_obj(o: dict) -> TestRecord:
    return TestRecord(
        test_id=o["tid"], test_type=_TEST_TYPE[o["type"]], operator=_OP[o["op"]],
        start_time_s=o["t0"], end_time_s=o["t1"],
        start_mark_m=o["m0"], end_mark_m=o["m1"],
        server_kind=_KIND[o["srv"]], static=o["st"],
    )


def _ho_to_obj(h: HandoverRecord) -> dict:
    e = h.event
    return {
        "tid": h.test_id, "dir": h.direction, "op": e.operator.name,
        "t": e.time_s, "m": e.mark_m, "dur": e.duration_ms,
        "fc": _cell_id_to_str(e.from_cell), "tc": _cell_id_to_str(e.to_cell),
        "ft": e.from_tech.name, "tt": e.to_tech.name,
    }


def _ho_from_obj(o: dict) -> HandoverRecord:
    return HandoverRecord(
        test_id=o["tid"], direction=o["dir"],
        event=HandoverEvent(
            operator=_OP[o["op"]], time_s=o["t"], mark_m=o["m"],
            duration_ms=o["dur"],
            from_cell=_cell_id_from_str(o["fc"]), to_cell=_cell_id_from_str(o["tc"]),
            from_tech=_TECH[o["ft"]], to_tech=_TECH[o["tt"]],
        ),
    )


def _passive_to_obj(p: PassiveCoverageSegment) -> dict:
    return {
        "op": p.operator.name, "m0": p.start_m, "m1": p.end_m,
        "tech": p.tech.name, "tz": p.timezone.name, "reg": p.region.name,
    }


def _passive_from_obj(o: dict) -> PassiveCoverageSegment:
    return PassiveCoverageSegment(
        operator=_OP[o["op"]], start_m=o["m0"], end_m=o["m1"],
        tech=_TECH[o["tech"]], timezone=_TZ[o["tz"]], region=_REGION[o["reg"]],
    )


def _offload_to_obj(r: OffloadRunResult) -> dict:
    return {
        "app": r.app.name, "tid": r.test_id, "op": r.operator.name,
        "srv": r.server_kind.name, "comp": r.compression,
        "mean": r.mean_e2e_ms, "med": r.median_e2e_ms, "fps": r.offload_fps,
        "map": r.map_score, "ho": r.ho_count, "hs": r.frac_hs5g,
        "st": r.static, "mb": r.uplink_megabits,
    }


def _offload_from_obj(o: dict) -> OffloadRunResult:
    return OffloadRunResult(
        app=_TEST_TYPE[o["app"]], test_id=o["tid"], operator=_OP[o["op"]],
        server_kind=_KIND[o["srv"]], compression=o["comp"],
        mean_e2e_ms=o["mean"], median_e2e_ms=o["med"], offload_fps=o["fps"],
        map_score=o["map"], ho_count=o["ho"], frac_hs5g=o["hs"],
        static=o["st"], uplink_megabits=o["mb"],
    )


def _video_to_obj(r: VideoRunResult) -> dict:
    return {
        "tid": r.test_id, "op": r.operator.name, "srv": r.server_kind.name,
        "qoe": r.qoe, "br": r.avg_bitrate_mbps, "rb": r.rebuffer_ratio,
        "ho": r.ho_count, "hs": r.frac_hs5g, "st": r.static,
        "mb": r.downlink_megabits,
    }


def _video_from_obj(o: dict) -> VideoRunResult:
    return VideoRunResult(
        test_id=o["tid"], operator=_OP[o["op"]], server_kind=_KIND[o["srv"]],
        qoe=o["qoe"], avg_bitrate_mbps=o["br"], rebuffer_ratio=o["rb"],
        ho_count=o["ho"], frac_hs5g=o["hs"], static=o["st"],
        downlink_megabits=o["mb"],
    )


def _gaming_to_obj(r: GamingRunResult) -> dict:
    return {
        "tid": r.test_id, "op": r.operator.name, "srv": r.server_kind.name,
        "br": r.avg_bitrate_mbps, "lat": r.median_latency_ms,
        "p95": r.p95_latency_ms, "drop": r.frame_drop_rate,
        "ho": r.ho_count, "hs": r.frac_hs5g, "st": r.static,
        "mb": r.downlink_megabits,
    }


def _gaming_from_obj(o: dict) -> GamingRunResult:
    return GamingRunResult(
        test_id=o["tid"], operator=_OP[o["op"]], server_kind=_KIND[o["srv"]],
        avg_bitrate_mbps=o["br"], median_latency_ms=o["lat"],
        p95_latency_ms=o["p95"], frame_drop_rate=o["drop"],
        ho_count=o["ho"], frac_hs5g=o["hs"], static=o["st"],
        downlink_megabits=o["mb"],
    )


_SECTIONS = {
    "tput": ("throughput_samples", _tput_to_obj, _tput_from_obj),
    "rtt": ("rtt_samples", _rtt_to_obj, _rtt_from_obj),
    "test": ("tests", _test_to_obj, _test_from_obj),
    "ho": ("handovers", _ho_to_obj, _ho_from_obj),
    "passive": ("passive_coverage", _passive_to_obj, _passive_from_obj),
    "offload": ("offload_runs", _offload_to_obj, _offload_from_obj),
    "video": ("video_runs", _video_to_obj, _video_from_obj),
    "gaming": ("gaming_runs", _gaming_to_obj, _gaming_from_obj),
}


def save_dataset(
    dataset: DriveDataset,
    path: str | pathlib.Path,
    *,
    format: str = "auto",
) -> None:
    """Write a dataset to disk, atomically.

    ``format`` selects the backend: ``"jsonl"`` for gzipped JSON-lines,
    ``"columnar"`` for the :mod:`repro.store` columnar format, or ``"auto"``
    (the default), which writes columnar when ``path`` ends in ``.rcol``
    and JSON-lines otherwise.

    The file appears at ``path`` only once fully written and flushed:
    writes go to a unique ``.tmp`` sibling which is then ``os.replace``'d
    over the destination (atomic on POSIX).  A crash mid-save leaves any
    previous file at ``path`` untouched.
    """
    path = pathlib.Path(path)
    if format not in ("auto", "jsonl", "columnar"):
        raise ValueError(
            f"unknown dataset format {format!r}; use 'auto', 'jsonl', "
            "or 'columnar'"
        )
    if format == "columnar" or (
        format == "auto" and path.suffix == ".rcol"
    ):
        from repro.store.format import write_dataset

        write_dataset(dataset, path)
        return
    header = {
        "format": FORMAT_VERSION,
        "seed": dataset.seed,
        "scale": dataset.scale,
        "route_length_km": dataset.route_length_km,
        "passive_handover_counts": {
            op.name: n for op, n in dataset.passive_handover_counts.items()
        },
        "connected_cells": {op.name: n for op, n in dataset.connected_cells.items()},
    }
    tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    try:
        with open(tmp, "wb") as raw:
            # mtime=0 and an empty FNAME pin the gzip header: identical
            # datasets produce identical bytes, enabling cheap equality
            # checks (the default embeds the temp file's name and mtime).
            with gzip.GzipFile(filename="", fileobj=raw, mode="wb", mtime=0) as gz:
                with io.TextIOWrapper(gz, encoding="utf-8") as fh:
                    fh.write(json.dumps({"kind": "header", **header}) + "\n")
                    for kind, (attr, encode, _decode) in _SECTIONS.items():
                        for record in getattr(dataset, attr):
                            fh.write(json.dumps({"kind": kind, **encode(record)}) + "\n")
            raw.flush()
            os.fsync(raw.fileno())
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)


def load_dataset(path: str | pathlib.Path) -> DriveDataset:
    """Read a dataset written by :func:`save_dataset`, either backend.

    The backend is detected from the file's magic bytes, not its name, so
    renamed files still load.

    Raises
    ------
    LogFormatError
        On missing/invalid header or unknown record kinds/versions.
    StoreError
        On a truncated or corrupt columnar file.
    """
    path = pathlib.Path(path)
    from repro.store.format import is_store_file, read_dataset

    if is_store_file(path):
        return read_dataset(path)
    with gzip.open(path, "rt", encoding="utf-8") as fh:
        first = fh.readline()
        try:
            header = json.loads(first)
        except json.JSONDecodeError as exc:
            raise LogFormatError(f"not a dataset file: {path}") from exc
        if header.get("kind") != "header":
            raise LogFormatError("dataset file must start with a header record")
        if header.get("format") != FORMAT_VERSION:
            raise LogFormatError(
                f"unsupported dataset format {header.get('format')!r}"
            )
        dataset = DriveDataset(
            seed=header["seed"],
            scale=header["scale"],
            route_length_km=header["route_length_km"],
            passive_handover_counts={
                _OP[name]: n
                for name, n in header.get("passive_handover_counts", {}).items()
            },
            connected_cells={
                _OP[name]: n for name, n in header.get("connected_cells", {}).items()
            },
        )
        for line in fh:
            obj = json.loads(line)
            kind = obj.pop("kind", None)
            if kind not in _SECTIONS:
                raise LogFormatError(f"unknown record kind {kind!r}")
            attr, _encode, decode = _SECTIONS[kind]
            getattr(dataset, attr).append(decode(obj))
    return dataset
