"""Per-operator UE session: one tick of the full radio stack.

A :class:`UESession` bundles everything one carrier's phone experiences —
deployment lookup, technology selection, channel, PHY, carrier aggregation,
handover tracking and RTT sampling — and produces a :class:`LinkTick`
observation per 500 ms simulation step.  This is the synthetic equivalent of
"a Samsung S21 with an XCAL Solo probe attached".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.rng import clamp

from repro.geo.regions import RegionType
from repro.geo.route import RoutePosition
from repro.mobility.engine import HandoverEngine
from repro.mobility.events import HandoverEvent
from repro.net.latency import RttModel
from repro.net.servers import Server
from repro.policy.profiles import PolicyProfile, TrafficProfile
from repro.policy.selection import TechnologySelector
from repro.radio.ca import CarrierAggregationModel, Direction
from repro.radio.cells import Cell, CellId
from repro.radio.channel import ChannelModel
from repro.radio.deployment import DeploymentModel, DeploymentZone
from repro.radio.operators import Operator
from repro.radio.phy import PhyModel
from repro.radio.technology import RadioTechnology
from repro.rng import RngFactory

__all__ = ["LinkTick", "UESession", "StaticSite"]

#: AT&T's mmWave uplink was essentially non-functional while driving: the
#: paper found 90% of its mmWave UL samples below 0.5 Mbps (§5.2).
_ATT_MMWAVE_UL_BREAK_PROB = 0.9
_ATT_MMWAVE_UL_FACTOR_RANGE = (0.002, 0.02)


@dataclass(frozen=True, slots=True)
class LinkTick:
    """One 500 ms observation of the serving link (what XCAL would log)."""

    time_s: float
    mark_m: float
    speed_mph: float
    position: RoutePosition
    tech: RadioTechnology
    cell_id: CellId
    rsrp_dbm: float
    sinr_db: float
    mcs: int
    bler: float
    n_ccs: int
    capacity_dl_mbps: float
    capacity_ul_mbps: float
    rtt_ms: float
    server: Server
    handovers: tuple[HandoverEvent, ...]
    #: Time within the tick lost to handover execution, seconds.
    interruption_s: float

    def capacity_mbps(self, direction: str) -> float:
        """Capacity in the requested direction."""
        if direction == Direction.UPLINK:
            return self.capacity_ul_mbps
        return self.capacity_dl_mbps


@dataclass(frozen=True, slots=True)
class StaticSite:
    """A parked measurement position facing a chosen base station."""

    tech: RadioTechnology
    cell: Cell
    load: float


class UESession:
    """One operator's phone through the whole campaign.

    Parameters
    ----------
    operator:
        The carrier of this phone's SIM.
    deployment:
        The carrier's radio deployment along the route.
    rng_factory:
        Source of named substreams; each subsystem gets its own.
    """

    def __init__(
        self,
        operator: Operator,
        deployment: DeploymentModel,
        rng_factory: RngFactory,
        policy_profile: "PolicyProfile | None" = None,
    ) -> None:
        self.operator = operator
        self.deployment = deployment
        tag = operator.code
        self._selector = TechnologySelector(
            operator, rng_factory.stream(f"select-{tag}"), profile=policy_profile
        )
        self._channel = ChannelModel(operator, rng_factory.stream(f"channel-{tag}"))
        self._phy = PhyModel(rng_factory.stream(f"phy-{tag}"), operator)
        self._ca = CarrierAggregationModel(rng_factory.stream(f"ca-{tag}"))
        self.handover_engine = HandoverEngine(operator, rng_factory.stream(f"ho-{tag}"))
        self._rtt = RttModel(operator, rng_factory.stream(f"rtt-{tag}"))
        self._misc = rng_factory.stream(f"misc-{tag}")
        # Sticky CA configuration per (zone index, tech, direction).
        self._cc_cache: dict[tuple[int, RadioTechnology, str], int] = {}

    # -- driving ticks ----------------------------------------------------

    def tick(
        self,
        time_s: float,
        position: RoutePosition,
        speed_mph: float,
        traffic: TrafficProfile,
        direction: str,
        server: Server,
        dt_s: float = 0.5,
    ) -> LinkTick:
        """Advance the session by one tick while driving."""
        zone = self.deployment.zone_at(position.distance_m)
        tech = self._selector.select(zone, traffic)
        cell = zone.cell_for(tech)
        load = zone.load_dl if direction == Direction.DOWNLINK else zone.load_ul

        state = self._channel.state(cell, position.distance_m, position.region, load)
        n_ccs = self._sticky_ccs(zone.index, tech, direction)
        report = self._phy.report(tech, state, n_ccs, load, speed_mph, direction)

        capacity_dl = (
            report.capacity_mbps
            if direction == Direction.DOWNLINK
            else self._phy.capacity_mbps(
                tech, report.mcs, report.bler,
                self._sticky_ccs(zone.index, tech, Direction.DOWNLINK),
                zone.load_dl, Direction.DOWNLINK,
            )
        )
        capacity_ul = (
            report.capacity_mbps
            if direction == Direction.UPLINK
            else self._phy.capacity_mbps(
                tech, report.mcs, report.bler,
                self._sticky_ccs(zone.index, tech, Direction.UPLINK),
                zone.load_ul, Direction.UPLINK,
            )
        )
        capacity_ul = self._apply_ul_pathologies(tech, capacity_ul)

        handovers = tuple(
            self.handover_engine.observe(
                cell, time_s, position.distance_m, dt_s, direction
            )
        )
        interruption = min(sum(ev.duration_ms for ev in handovers) / 1000.0, dt_s)

        rtt = self._rtt.sample_rtt_ms(
            server, position.point, tech, speed_mph, static=False, bler=report.bler
        )

        return LinkTick(
            time_s=time_s,
            mark_m=position.distance_m,
            speed_mph=speed_mph,
            position=position,
            tech=tech,
            cell_id=cell.cell_id,
            rsrp_dbm=state.rsrp_dbm,
            sinr_db=state.sinr_db,
            mcs=report.mcs,
            bler=report.bler,
            n_ccs=n_ccs,
            capacity_dl_mbps=capacity_dl,
            capacity_ul_mbps=capacity_ul,
            rtt_ms=rtt,
            server=server,
            handovers=handovers,
            interruption_s=interruption,
        )

    # -- static baseline ticks ---------------------------------------------

    def find_static_site(self, city_mark_m: float, city_span_m: float) -> StaticSite | None:
        """Find the best high-speed-5G base station within a city segment.

        Mirrors the paper's baseline methodology (§5.1): in each city, find a
        5G mmWave BS and measure facing it; fall back to midband; return
        ``None`` (skip the city) when neither is available.
        """
        start = max(city_mark_m - city_span_m / 2.0, 0.0)
        end = city_mark_m + city_span_m / 2.0
        best: tuple[int, DeploymentZone] | None = None
        mark = start
        while mark < end:
            zone = self.deployment.zone_at(mark)
            for tech in (RadioTechnology.NR_MMWAVE, RadioTechnology.NR_MID):
                if tech in zone.deployed:
                    rank = 1 if tech is RadioTechnology.NR_MMWAVE else 0
                    if best is None or rank > best[0]:
                        best = (rank, zone)
                    break
            mark = zone.end_m + 1.0
        if best is None:
            return None
        zone = best[1]
        tech = (
            RadioTechnology.NR_MMWAVE
            if RadioTechnology.NR_MMWAVE in zone.deployed
            else RadioTechnology.NR_MID
        )
        cell = zone.cell_for(tech)
        # Standing right at the site: distance dominated by a short offset.
        near = Cell(
            cell_id=cell.cell_id,
            site=cell.site,
            site_mark_m=(zone.start_m + zone.end_m) / 2.0,
            perpendicular_m=float(self._misc.uniform(30.0, 90.0)),
        )
        load = float(self._misc.uniform(0.50, 0.95))
        return StaticSite(tech=tech, cell=near, load=load)

    def static_tick(
        self,
        site: StaticSite,
        position: RoutePosition,
        time_s: float,
        direction: str,
        server: Server,
    ) -> LinkTick:
        """One tick parked in front of ``site``'s base station."""
        mark = site.cell.site_mark_m + float(self._misc.uniform(-5.0, 5.0))
        state = self._channel.state(site.cell, mark, RegionType.CITY, site.load)
        tech = site.tech
        zone_key = -1 - site.cell.cell_id.sequence  # static CA sticky key
        n_ccs = self._sticky_ccs(zone_key, tech, direction)
        load = site.load * float(self._misc.uniform(0.85, 1.05))
        load = clamp(load, 0.05, 1.0)
        report = self._phy.report(tech, state, n_ccs, load, 0.0, direction)
        capacity = report.capacity_mbps
        if (
            direction == Direction.UPLINK
            and self.operator is Operator.ATT
            and tech is RadioTechnology.NR_MMWAVE
        ):
            capacity *= float(self._misc.uniform(0.25, 0.6))
        # Transient blockage: even ideal static mmWave/midband shows a
        # non-negligible fraction of low samples (Fig. 3a).
        if self._misc.random() < 0.06:
            capacity *= float(self._misc.uniform(0.01, 0.15))
        cap_dl = capacity if direction == Direction.DOWNLINK else capacity / 0.12
        cap_ul = capacity if direction == Direction.UPLINK else capacity * 0.12
        rtt = self._rtt.sample_rtt_ms(
            server, position.point, tech, 0.0, static=True, bler=report.bler
        )
        return LinkTick(
            time_s=time_s,
            mark_m=position.distance_m,
            speed_mph=0.0,
            position=position,
            tech=tech,
            cell_id=site.cell.cell_id,
            rsrp_dbm=state.rsrp_dbm,
            sinr_db=state.sinr_db,
            mcs=report.mcs,
            bler=report.bler,
            n_ccs=n_ccs,
            capacity_dl_mbps=max(cap_dl, 0.01),
            capacity_ul_mbps=max(cap_ul, 0.01),
            rtt_ms=rtt,
            server=server,
            handovers=(),
            interruption_s=0.0,
        )

    # -- internals ---------------------------------------------------------

    def _sticky_ccs(self, zone_index: int, tech: RadioTechnology, direction: str) -> int:
        key = (zone_index, tech, direction)
        if key not in self._cc_cache:
            self._cc_cache[key] = self._ca.draw_ccs(self.operator, tech, direction)
            if len(self._cc_cache) > 512:
                for old in list(self._cc_cache)[:-256]:
                    del self._cc_cache[old]
        return self._cc_cache[key]

    def _apply_ul_pathologies(self, tech: RadioTechnology, capacity_ul: float) -> float:
        if (
            self.operator is Operator.ATT
            and tech is RadioTechnology.NR_MMWAVE
            and self._misc.random() < _ATT_MMWAVE_UL_BREAK_PROB
        ):
            lo, hi = _ATT_MMWAVE_UL_FACTOR_RANGE
            return max(capacity_ul * float(self._misc.uniform(lo, hi)), 0.01)
        return capacity_ul
