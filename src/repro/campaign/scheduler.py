"""Round-robin test scheduling.

The paper ran its tests "in a round robin fashion" (§3).  A
:class:`CyclePlan` makes the cycle explicit and configurable: the default
plan reproduces the paper's full suite; reduced plans (network-only, single
app) support focused studies without paying for the whole battery.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.campaign.tests import TEST_DURATIONS_S, TestType
from repro.errors import CampaignError

__all__ = ["CyclePlan", "FULL_CYCLE", "NETWORK_ONLY_CYCLE"]


@dataclass(frozen=True)
class CyclePlan:
    """An ordered round-robin cycle of test types.

    AR and CAV entries expand into two runs each (with and without frame
    compression), matching the paper's methodology (Appendix C.1).
    """

    tests: tuple[TestType, ...]

    def __post_init__(self) -> None:
        if not self.tests:
            raise CampaignError("a cycle plan needs at least one test")

    def without_apps(self) -> "CyclePlan":
        """The plan restricted to network tests (throughput + RTT)."""
        network = tuple(
            t for t in self.tests
            if t in (TestType.DOWNLINK_THROUGHPUT, TestType.UPLINK_THROUGHPUT, TestType.RTT)
        )
        if not network:
            raise CampaignError("plan has no network tests to keep")
        return CyclePlan(tests=network)

    def run_count(self, test_type: TestType) -> int:
        """Number of runs of ``test_type`` per cycle (AR/CAV double up)."""
        n = sum(1 for t in self.tests if t is test_type)
        if test_type in (TestType.AR, TestType.CAV):
            return 2 * n
        return n

    def nominal_duration_s(self, gap_s: float = 4.0) -> float:
        """Approximate wall-clock duration of one cycle including gaps."""
        total = 0.0
        runs = 0
        for t in self.tests:
            multiplier = 2 if t in (TestType.AR, TestType.CAV) else 1
            total += multiplier * TEST_DURATIONS_S[t]
            runs += multiplier
        return total + runs * gap_s


#: The paper's full round-robin suite (§3).
FULL_CYCLE = CyclePlan(tests=(
    TestType.DOWNLINK_THROUGHPUT,
    TestType.UPLINK_THROUGHPUT,
    TestType.RTT,
    TestType.AR,
    TestType.CAV,
    TestType.VIDEO_360,
    TestType.CLOUD_GAMING,
))

#: Throughput + RTT only — the §5 analyses without the app battery.
NETWORK_ONLY_CYCLE = FULL_CYCLE.without_apps()
