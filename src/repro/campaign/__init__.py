"""Drive-campaign orchestration: ties route, radio, policy, transport and
applications together to generate the reproduction's dataset."""

from repro.campaign.tests import TestType, TEST_DURATIONS_S
from repro.campaign.link import UESession, LinkTick
from repro.campaign.dataset import (
    DriveDataset,
    ThroughputSample,
    RttSample,
    TestRecord,
    HandoverRecord,
    PassiveCoverageSegment,
    OffloadRunResult,
    VideoRunResult,
    GamingRunResult,
)
from repro.campaign.runner import CampaignConfig, DriveCampaign, generate_dataset
from repro.campaign.scheduler import CyclePlan, FULL_CYCLE, NETWORK_ONLY_CYCLE
from repro.campaign.persistence import save_dataset, load_dataset
from repro.campaign.validation import validate_dataset, ValidationReport

__all__ = [
    "TestType",
    "TEST_DURATIONS_S",
    "UESession",
    "LinkTick",
    "DriveDataset",
    "ThroughputSample",
    "RttSample",
    "TestRecord",
    "HandoverRecord",
    "PassiveCoverageSegment",
    "OffloadRunResult",
    "VideoRunResult",
    "GamingRunResult",
    "CampaignConfig",
    "DriveCampaign",
    "generate_dataset",
    "CyclePlan",
    "FULL_CYCLE",
    "NETWORK_ONLY_CYCLE",
    "save_dataset",
    "load_dataset",
    "validate_dataset",
    "ValidationReport",
]
