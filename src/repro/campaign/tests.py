"""Definitions of the measurement tests run round-robin during the drive.

The paper ran bandwidth, RTT, and four mobile-app tests in a round-robin
fashion on the three smartphones (one per carrier) attached to XCAL Solo
probes (§3).
"""

from __future__ import annotations

import enum

from repro.policy.profiles import TrafficProfile
from repro.radio.ca import Direction


class TestType(enum.Enum):
    """One test in the round-robin cycle."""

    #: Keep pytest from trying to collect this enum as a test class.
    __test__ = False

    DOWNLINK_THROUGHPUT = "dl_tput"
    UPLINK_THROUGHPUT = "ul_tput"
    RTT = "rtt"
    AR = "ar"
    CAV = "cav"
    VIDEO_360 = "video360"
    CLOUD_GAMING = "gaming"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Test durations in seconds (paper: throughput 30-35 s, RTT 20 s, AR/CAV
#: runs 20 s each, video sessions 3 min, app experiments 20-180 s).
TEST_DURATIONS_S: dict[TestType, float] = {
    TestType.DOWNLINK_THROUGHPUT: 30.0,
    TestType.UPLINK_THROUGHPUT: 30.0,
    TestType.RTT: 20.0,
    TestType.AR: 20.0,
    TestType.CAV: 20.0,
    TestType.VIDEO_360: 180.0,
    TestType.CLOUD_GAMING: 60.0,
}

#: Traffic profile the operator's scheduler sees for each test.
TEST_TRAFFIC: dict[TestType, TrafficProfile] = {
    TestType.DOWNLINK_THROUGHPUT: TrafficProfile.BACKLOGGED_DL,
    TestType.UPLINK_THROUGHPUT: TrafficProfile.BACKLOGGED_UL,
    TestType.RTT: TrafficProfile.IDLE_PING,
    TestType.AR: TrafficProfile.BACKLOGGED_UL,
    TestType.CAV: TrafficProfile.BACKLOGGED_UL,
    TestType.VIDEO_360: TrafficProfile.BACKLOGGED_DL,
    TestType.CLOUD_GAMING: TrafficProfile.BACKLOGGED_DL,
}

#: Primary traffic direction of each test (for KPI/capacity logging).
TEST_DIRECTION: dict[TestType, str] = {
    TestType.DOWNLINK_THROUGHPUT: Direction.DOWNLINK,
    TestType.UPLINK_THROUGHPUT: Direction.UPLINK,
    TestType.RTT: Direction.DOWNLINK,
    TestType.AR: Direction.UPLINK,
    TestType.CAV: Direction.UPLINK,
    TestType.VIDEO_360: Direction.DOWNLINK,
    TestType.CLOUD_GAMING: Direction.DOWNLINK,
}
