"""Dataset integrity validation.

A released measurement dataset needs a validator — consumers must be able to
check that the files they downloaded (or the campaign they generated) are
internally consistent before building analyses on them.  The checks here are
exactly the invariants the analysis modules rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.campaign.dataset import DriveDataset
from repro.campaign.tests import TestType
from repro.radio.operators import Operator

__all__ = ["ValidationIssue", "ValidationReport", "validate_dataset"]


@dataclass(frozen=True, slots=True)
class ValidationIssue:
    """One violated invariant."""

    check: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.check}] {self.detail}"


@dataclass
class ValidationReport:
    """Outcome of :func:`validate_dataset`."""

    issues: list[ValidationIssue] = field(default_factory=list)
    checks_run: int = 0

    @property
    def ok(self) -> bool:
        return not self.issues

    def add(self, check: str, detail: str) -> None:
        self.issues.append(ValidationIssue(check=check, detail=detail))


def validate_dataset(dataset: DriveDataset, max_issues: int = 50) -> ValidationReport:
    """Run every integrity check; returns a report (never raises).

    Checks:

    * sample/test referential integrity (every sample's test exists, and
      samples fall inside their test's time window);
    * per-test sample counts and time monotonicity;
    * physical ranges (throughput, RTT, RSRP, MCS, BLER, speed);
    * handover events attached to existing tests, positive durations;
    * passive coverage tiles the route without overlaps per operator;
    * app runs reference valid fractions and non-negative byte counts.
    """
    report = ValidationReport()
    tests_by_id = {t.test_id: t for t in dataset.tests}

    def run(check: str, ok: bool, detail: str) -> None:
        report.checks_run += 1
        if not ok and len(report.issues) < max_issues:
            report.add(check, detail)

    # --- referential integrity & windows --------------------------------
    for s in dataset.throughput_samples:
        test = tests_by_id.get(s.test_id)
        if test is None:
            run("tput.test-ref", False, f"sample references unknown test {s.test_id}")
            continue
        run(
            "tput.window",
            test.start_time_s - 1e-6 <= s.time_s <= test.end_time_s + 1e-6,
            f"sample at t={s.time_s} outside test {s.test_id} window",
        )
        run("tput.operator", s.operator is test.operator,
            f"sample operator {s.operator} != test operator {test.operator}")
    for s in dataset.rtt_samples:
        test = tests_by_id.get(s.test_id)
        run("rtt.test-ref", test is not None, f"unknown test {s.test_id}")

    # --- per-test monotonicity -------------------------------------------
    for test_id, samples in dataset.samples_by_test().items():
        times = [s.time_s for s in samples]
        run("tput.monotone", times == sorted(times),
            f"test {test_id} samples not time-ordered")

    # --- physical ranges ---------------------------------------------------
    for s in dataset.throughput_samples[:200_000]:
        run("tput.range", 0.0 <= s.tput_mbps < 10_000.0,
            f"throughput {s.tput_mbps} out of range")
        run("kpi.rsrp", -140.0 <= s.rsrp_dbm <= -40.0, f"RSRP {s.rsrp_dbm}")
        run("kpi.mcs", 0 <= s.mcs <= 28, f"MCS {s.mcs}")
        run("kpi.bler", 0.0 <= s.bler <= 1.0, f"BLER {s.bler}")
        run("kpi.speed", 0.0 <= s.speed_mph <= 130.0, f"speed {s.speed_mph}")
    for s in dataset.rtt_samples[:200_000]:
        run("rtt.range", 0.0 < s.rtt_ms < 60_000.0, f"RTT {s.rtt_ms}")

    # --- handovers ----------------------------------------------------------
    for h in dataset.handovers:
        run("ho.test-ref", h.test_id in tests_by_id,
            f"handover references unknown test {h.test_id}")
        run("ho.duration", h.event.duration_ms > 0.0,
            f"non-positive handover duration {h.event.duration_ms}")
        run("ho.operator-test",
            h.test_id not in tests_by_id
            or tests_by_id[h.test_id].operator is h.event.operator,
            f"handover operator mismatch on test {h.test_id}")

    # --- passive coverage tiling ---------------------------------------------
    for op in Operator:
        segs = sorted(
            (s for s in dataset.passive_coverage if s.operator is op),
            key=lambda s: s.start_m,
        )
        for prev, cur in zip(segs, segs[1:]):
            run("passive.tiling", cur.start_m >= prev.end_m - 1e-6,
                f"{op} passive segments overlap at {cur.start_m}")

    # --- app runs -------------------------------------------------------------
    for r in dataset.offload_runs:
        run("app.frac", 0.0 <= r.frac_hs5g <= 1.0, f"frac_hs5g {r.frac_hs5g}")
        run("app.bytes", r.uplink_megabits >= 0.0, "negative uplink volume")
        run("app.kind", r.app in (TestType.AR, TestType.CAV), f"bad app {r.app}")
    for r in dataset.video_runs:
        run("video.rebuffer", 0.0 <= r.rebuffer_ratio <= 1.0,
            f"rebuffer ratio {r.rebuffer_ratio}")
    for r in dataset.gaming_runs:
        run("gaming.drop", 0.0 <= r.frame_drop_rate <= 1.0,
            f"drop rate {r.frame_drop_rate}")

    return report
