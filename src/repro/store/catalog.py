"""Partition catalog: a directory of store files with a pruning manifest.

A catalog maps one logical campaign dataset collection — typically the
per-seed outputs of a sweep, optionally split further per shard or label —
onto partition files::

    catalog_dir/
      catalog.json              # the manifest
      parts/seed-00000041.rcol
      parts/seed-00000042.rcol
      ...

The manifest carries, per partition, the seed, an optional label, and a
copy of every table's footer stats (row counts, min/max/nulls, dictionary
value sets).  The query engine prunes on the manifest alone, so a sweep
query over 100 seeds with ``operator == VERIZON`` and a route-km range
opens only the partition files whose stats admit a match — pruned
partitions cost zero bytes of I/O.

Ingest is atomic twice over: the partition file is written via the store
writer's temp-and-replace, then the manifest is rewritten the same way.
Re-ingesting an existing ``(seed, label)`` replaces that partition.  The
catalog is single-writer (the engine/sweep drivers ingest sequentially);
readers can open it concurrently at any time.
"""

from __future__ import annotations

import json
import os
import pathlib
import re
from dataclasses import dataclass

from repro.campaign.dataset import DriveDataset
from repro.errors import StoreError
from repro.store.format import DatasetReader, write_dataset

__all__ = ["CATALOG_FORMAT_VERSION", "Catalog", "PartitionInfo"]

#: Bump on any structural change to the manifest schema.
CATALOG_FORMAT_VERSION = 1

_MANIFEST_NAME = "catalog.json"
_PARTS_DIR = "parts"
_LABEL_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]*$")

#: Footer column-entry fields copied into the manifest (byte spans stay
#: in the file; the manifest only needs what pruning reads).
_LITE_COLUMN_FIELDS = ("name", "kind", "codec", "width", "count", "stats", "values")


@dataclass(frozen=True)
class PartitionInfo:
    """One partition: where it lives and what its stats promise."""

    #: Path relative to the catalog root.
    path: str
    seed: int
    label: str | None
    nbytes: int
    #: Per-table pruning stats: ``{table: {"count": n, "columns": {...}}}``.
    tables: dict[str, dict]

    def table_stats(self, table: str) -> dict | None:
        """Manifest stats of one table; ``None`` when unknown."""
        return self.tables.get(table)

    def rows(self, table: str) -> int:
        entry = self.tables.get(table)
        return int(entry["count"]) if entry else 0

    def to_obj(self) -> dict:
        return {
            "path": self.path,
            "seed": self.seed,
            "label": self.label,
            "nbytes": self.nbytes,
            "tables": self.tables,
        }

    @classmethod
    def from_obj(cls, obj: dict) -> "PartitionInfo":
        return cls(
            path=str(obj["path"]),
            seed=int(obj["seed"]),
            label=obj.get("label"),
            nbytes=int(obj.get("nbytes", 0)),
            tables=dict(obj.get("tables", {})),
        )


def _lite_tables(reader: DatasetReader) -> dict[str, dict]:
    """Copy a store file's footer stats into manifest (pruning) form."""
    tables: dict[str, dict] = {}
    for name in reader.table_names:
        table = reader.table(name)
        columns = {}
        for column in table.column_names:
            entry = table.column_entry(column)
            columns[column] = {
                k: entry[k] for k in _LITE_COLUMN_FIELDS if k in entry
            }
        tables[name] = {"count": table.count, "columns": columns}
    return tables


class Catalog:
    """A directory of columnar partitions behind one pruning manifest."""

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = pathlib.Path(root)
        self._partitions: list[PartitionInfo] = []
        self._readers: dict[str, DatasetReader] = {}
        manifest = self.root / _MANIFEST_NAME
        if manifest.exists():
            try:
                obj = json.loads(manifest.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError) as exc:
                raise StoreError(f"unreadable catalog manifest: {manifest}") from exc
            version = obj.get("format")
            if version != CATALOG_FORMAT_VERSION:
                raise StoreError(
                    f"unsupported catalog format {version!r} "
                    f"(this build reads {CATALOG_FORMAT_VERSION}): {manifest}"
                )
            self._partitions = [
                PartitionInfo.from_obj(p) for p in obj.get("partitions", [])
            ]

    # -- introspection -------------------------------------------------------

    @property
    def partitions(self) -> tuple[PartitionInfo, ...]:
        """All partitions, in (seed, label) order."""
        return tuple(
            sorted(self._partitions, key=lambda p: (p.seed, p.label or ""))
        )

    @property
    def seeds(self) -> tuple[int, ...]:
        """Distinct seeds with at least one partition, ascending."""
        return tuple(sorted({p.seed for p in self._partitions}))

    def rows(self, table: str) -> int:
        """Total rows of one table across every partition (manifest only)."""
        return sum(p.rows(table) for p in self._partitions)

    # -- ingest --------------------------------------------------------------

    def ingest(
        self,
        dataset: DriveDataset,
        *,
        seed: int | None = None,
        label: str | None = None,
    ) -> PartitionInfo:
        """Write a dataset as one partition and register it.

        ``seed`` defaults to the dataset's own seed.  Re-ingesting an
        existing ``(seed, label)`` replaces that partition's file and
        manifest entry.
        """
        seed = dataset.seed if seed is None else int(seed)
        if label is not None and not _LABEL_RE.match(label):
            raise StoreError(
                f"invalid partition label {label!r}; use letters, digits, "
                "'_', '.', '-'"
            )
        stem = f"seed-{seed:08d}" + (f"-{label}" if label else "")
        rel = f"{_PARTS_DIR}/{stem}.rcol"
        target = self.root / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        write_dataset(dataset, target)

        stale = self._readers.pop(rel, None)
        if stale is not None:
            stale.close()
        with DatasetReader(target) as reader:
            info = PartitionInfo(
                path=rel,
                seed=seed,
                label=label,
                nbytes=reader.nbytes(),
                tables=_lite_tables(reader),
            )
        self._partitions = [
            p for p in self._partitions if (p.seed, p.label) != (seed, label)
        ]
        self._partitions.append(info)
        self._write_manifest()
        return info

    def ingest_file(self, dataset_path: str | os.PathLike, **kwargs) -> PartitionInfo:
        """Load a saved dataset (row or columnar format) and ingest it."""
        from repro.campaign.persistence import load_dataset

        return self.ingest(load_dataset(dataset_path), **kwargs)

    def _write_manifest(self) -> None:
        obj = {
            "format": CATALOG_FORMAT_VERSION,
            "partitions": [p.to_obj() for p in self.partitions],
        }
        manifest = self.root / _MANIFEST_NAME
        self.root.mkdir(parents=True, exist_ok=True)
        tmp = manifest.with_name(f"{manifest.name}.{os.getpid()}.tmp")
        try:
            tmp.write_text(
                json.dumps(obj, indent=2, sort_keys=True) + "\n", encoding="utf-8"
            )
            os.replace(tmp, manifest)
        finally:
            tmp.unlink(missing_ok=True)

    # -- reading -------------------------------------------------------------

    def open(self, partition: PartitionInfo) -> DatasetReader:
        """Open (and cache) one partition's store file."""
        reader = self._readers.get(partition.path)
        if reader is None:
            reader = DatasetReader(self.root / partition.path)
            self._readers[partition.path] = reader
        return reader

    def readers(
        self, seeds: tuple[int, ...] | None = None
    ) -> list[DatasetReader]:
        """Open readers, optionally restricted to some seeds."""
        return [
            self.open(p)
            for p in self.partitions
            if seeds is None or p.seed in seeds
        ]

    def close(self) -> None:
        for reader in self._readers.values():
            reader.close()
        self._readers.clear()

    def __enter__(self) -> "Catalog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
