"""``python -m repro.store`` — ingest, inspect, and query dataset stores.

Examples::

    # Ingest saved datasets (row JSON-lines or columnar) into a catalog
    python -m repro.store ingest out/store out/seed41.jsonl.gz out/seed42.jsonl.gz

    # What does the catalog (or one .rcol file) hold?
    python -m repro.store inspect out/store

    # Median Verizon driving downlink throughput, pushdown-pruned
    python -m repro.store query out/store --table tput --column tput_mbps \\
        --where operator=VERIZON --where direction=downlink \\
        --where static=false --agg p50 --explain
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

from repro.errors import ReproError, StoreError
from repro.store.catalog import Catalog
from repro.store.columnar import TABLE_SCHEMAS
from repro.store.format import DatasetReader, is_store_file
from repro.store import query as store_query
from repro.store.query import Between, Eq, QueryStats

_WHERE_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*)\s*(<=|>=|<|>|=)\s*([^=<>].*)$")

_PERCENTILE_RE = re.compile(r"^p(\d{1,2}(?:\.\d+)?)$")


def _coerce(table: str, column: str, text: str):
    """Parse a predicate literal according to the column's kind."""
    schema = TABLE_SCHEMAS.get(table)
    if schema is None:
        raise StoreError(
            f"unknown table {table!r}; known: {sorted(TABLE_SCHEMAS)}"
        )
    kind = schema.column(column).kind
    if kind == "dict":
        return text
    if kind == "bool":
        lowered = text.lower()
        if lowered in ("true", "1", "yes"):
            return True
        if lowered in ("false", "0", "no"):
            return False
        raise StoreError(f"boolean column {column!r} expects true/false, got {text!r}")
    try:
        return int(text) if kind == "i8" else float(text)
    except ValueError:
        raise StoreError(
            f"numeric column {column!r} expects a number, got {text!r}"
        ) from None


def _parse_where(table: str, clauses: list[str]):
    predicates = []
    for clause in clauses:
        match = _WHERE_RE.match(clause)
        if not match:
            raise StoreError(
                f"cannot parse --where {clause!r}; "
                "use column=value, column>=x, column<x, ..."
            )
        column, op, literal = match.groups()
        value = _coerce(table, column, literal.strip())
        if op == "=":
            predicates.append(Eq(column, value))
        elif op == ">=":
            predicates.append(Between(column, lo=value))
        elif op == ">":
            predicates.append(Between(column, lo=value, lo_inclusive=False))
        elif op == "<=":
            predicates.append(Between(column, hi=value))
        else:
            predicates.append(Between(column, hi=value, hi_inclusive=False))
    return tuple(predicates)


def _parse_seeds(text: str) -> tuple[int, ...]:
    try:
        return tuple(int(part) for part in text.split(",") if part.strip())
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"seeds must be a comma-separated list of integers, got {text!r}"
        ) from None


def _open_source(path: str):
    """A catalog directory or a single .rcol file, as the query source."""
    p = pathlib.Path(path)
    if p.is_dir():
        return Catalog(p)
    if p.is_file() and is_store_file(p):
        return DatasetReader(p)
    raise StoreError(f"{path} is neither a catalog directory nor a store file")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.store",
        description="Columnar campaign dataset store: ingest, inspect, query.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_ingest = sub.add_parser(
        "ingest", help="ingest saved datasets into a catalog"
    )
    p_ingest.add_argument("catalog", help="catalog directory (created if missing)")
    p_ingest.add_argument(
        "datasets", nargs="+",
        help="dataset files to ingest (.jsonl.gz row format or .rcol columnar)",
    )
    p_ingest.add_argument(
        "--label", default=None,
        help="partition label appended to each seed's partition name",
    )

    p_inspect = sub.add_parser(
        "inspect", help="describe a catalog or one store file"
    )
    p_inspect.add_argument("source", help="catalog directory or .rcol file")

    p_query = sub.add_parser(
        "query", help="run one aggregation with predicate pushdown"
    )
    p_query.add_argument("source", help="catalog directory or .rcol file")
    p_query.add_argument(
        "--table", required=True, help=f"record family: {', '.join(TABLE_SCHEMAS)}"
    )
    p_query.add_argument(
        "--column", default=None,
        help="numeric column to aggregate (not needed for --agg count)",
    )
    p_query.add_argument(
        "--where", action="append", default=[], metavar="EXPR",
        help="predicate, e.g. operator=VERIZON or speed_mph>=60 (repeatable)",
    )
    p_query.add_argument(
        "--agg", default="count",
        help="count | sum | mean | p<NN> (percentile) | cdf (default: count)",
    )
    p_query.add_argument(
        "--seeds", type=_parse_seeds, default=None,
        help="restrict a catalog query to these seeds (comma-separated)",
    )
    p_query.add_argument(
        "--explain", action="store_true",
        help="print pushdown counters (partitions pruned, columns decoded, "
        "bytes decoded, per-predicate timings)",
    )
    p_query.add_argument(
        "--trace", default=None, metavar="FILE",
        help="append a store.query span to a JSONL trace file "
        "(summarize with python -m repro.obs FILE)",
    )
    return parser


def _cmd_ingest(args: argparse.Namespace) -> int:
    with Catalog(args.catalog) as catalog:
        for path in args.datasets:
            info = catalog.ingest_file(path, label=args.label)
            rows = sum(info.rows(t) for t in TABLE_SCHEMAS)
            print(
                f"ingested {path} -> {info.path} "
                f"(seed {info.seed}, {rows} rows, {info.nbytes} bytes)"
            )
    return 0


def _inspect_reader(reader: DatasetReader, indent: str = "") -> None:
    print(
        f"{indent}seed {reader.seed}  scale {reader.scale}  "
        f"route {reader.route_length_km:.1f} km  {reader.nbytes()} bytes"
    )
    for table in reader.tables():
        print(f"{indent}  table {table.name:8s} rows {table.count}")
        for column in table.column_names:
            entry = table.column_entry(column)
            stats = entry.get("stats", {})
            desc = f"{entry['kind']}/{entry['codec']}"
            span = ""
            if stats.get("min") is not None:
                span = f"  [{stats['min']:g}, {stats['max']:g}]"
            if entry.get("values") is not None:
                span = f"  {{{len(entry['values'])} distinct}}"
            print(
                f"{indent}    {column:20s} {desc:10s} "
                f"{entry['nbytes']:>10d} B{span}"
            )


def _cmd_inspect(args: argparse.Namespace) -> int:
    source = _open_source(args.source)
    if isinstance(source, DatasetReader):
        with source:
            _inspect_reader(source)
        return 0
    with source as catalog:
        print(
            f"catalog {args.source}: {len(catalog.partitions)} partitions, "
            f"seeds {list(catalog.seeds)}"
        )
        for part in catalog.partitions:
            label = f" label={part.label}" if part.label else ""
            rows = sum(part.rows(t) for t in TABLE_SCHEMAS)
            print(
                f"  {part.path}  seed={part.seed}{label}  "
                f"{rows} rows  {part.nbytes} bytes"
            )
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    from repro.obs.trace import get_tracer

    where = _parse_where(args.table, args.where)
    qstats = QueryStats()
    agg = args.agg.lower()
    needs_column = agg != "count"
    if needs_column and args.column is None:
        raise StoreError(f"--agg {args.agg} needs --column")
    tracer = get_tracer(args.trace)
    source = _open_source(args.source)
    with source, tracer.span(
        "store.query",
        table=args.table,
        column=args.column,
        agg=agg,
        predicates=len(where),
    ) as span:
        kwargs = dict(seeds=args.seeds, qstats=qstats)
        if agg == "count":
            result = store_query.count(source, args.table, where, **kwargs)
            print(result)
        elif agg == "sum":
            result = store_query.total(
                source, args.table, args.column, where, **kwargs
            )
            print(f"{result:.6g}")
        elif agg == "mean":
            result = store_query.mean(
                source, args.table, args.column, where, **kwargs
            )
            print(f"{result:.6g}")
        elif agg == "cdf":
            curve = store_query.cdf(
                source, args.table, args.column, where, **kwargs
            )
            xs, ys = curve.series(points=11)
            print(f"n={curve.n} mean={curve.mean:.6g} median={curve.median:.6g}")
            for x, y in zip(xs, ys):
                print(f"  F({x:.6g}) = {y:.3f}")
        else:
            match = _PERCENTILE_RE.match(agg)
            if not match:
                raise StoreError(
                    f"unknown aggregation {args.agg!r}; "
                    "use count, sum, mean, p<NN>, or cdf"
                )
            q = float(match.group(1)) / 100.0
            result = store_query.percentile(
                source, args.table, args.column, q, where, **kwargs
            )
            print(f"{result:.6g}")
        span.set(
            partitions_scanned=qstats.partitions_scanned,
            partitions_pruned=qstats.partitions_pruned,
            bytes_decoded=qstats.bytes_decoded,
            rows_matched=qstats.rows_matched,
        )
    if args.explain:
        print(
            f"pushdown: {qstats.partitions_scanned} scanned / "
            f"{qstats.partitions_pruned} pruned of "
            f"{qstats.partitions_total} partitions; "
            f"{qstats.columns_decoded} columns decoded "
            f"({qstats.bytes_decoded} bytes); "
            f"{qstats.predicates_short_circuited} predicates answered by stats; "
            f"{qstats.rows_matched}/{qstats.rows_total} rows matched",
            file=sys.stderr,
        )
        for column, seconds in sorted(qstats.predicate_s.items()):
            print(f"  predicate {column}: {seconds * 1000.0:.3f} ms",
                  file=sys.stderr)
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "ingest":
            return _cmd_ingest(args)
        if args.command == "inspect":
            return _cmd_inspect(args)
        return _cmd_query(args)
    except ReproError as exc:
        print(f"store command failed: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Output piped into e.g. ``head``; exiting quietly is correct.
        sys.stderr.close()
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
