"""The store query engine: projection, predicate pushdown, aggregation.

Answers the analysis layer's questions — "Verizon driving downlink
throughput values", "total passive metres per technology", "the RTT p95
below 60 mph" — straight from columnar bytes, without ever materialising a
row object:

* **projection** — only the columns a query touches are decoded;
* **predicate pushdown** — every predicate is first tested against the
  footer stats (min/max/nulls, dictionary value sets).  A partition whose
  stats contradict a predicate is skipped without reading a byte; a
  predicate its stats *guarantee* (e.g. ``static == False`` on a
  driving-only partition) matches without decoding its column;
* **aggregation kernels** — count, sum, mean, percentiles, and empirical
  CDFs (:class:`~repro.analysis.cdf.EmpiricalCDF`, the same type every
  figure uses), plus a grouped sum for coverage-share style queries.

Sources are polymorphic: any kernel runs over one open
:class:`~repro.store.format.DatasetReader` or over a whole
:class:`~repro.store.catalog.Catalog`, where the partition manifest prunes
by seed and by the same footer stats before any file is opened.

Predicates compare against Python-level values: enums (``Operator.VERIZON``),
strings, bools, numbers.  ``Between`` bounds are inclusive by default; the
paper's speed bins come pre-built from :func:`where_speed_bin`.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import Any, Iterator, Sequence

import numpy as np

from repro.analysis.cdf import EmpiricalCDF
from repro.errors import StoreError
from repro.store.catalog import Catalog
from repro.store.format import DatasetReader, TableReader
from repro.units import SPEED_BIN_EDGES_MPH, SPEED_BIN_LABELS

__all__ = [
    "Between",
    "Eq",
    "In",
    "Predicate",
    "QueryStats",
    "cdf",
    "count",
    "group_total",
    "mean",
    "percentile",
    "select",
    "total",
    "where_speed_bin",
]


@dataclass(frozen=True, slots=True)
class Eq:
    """``column == value`` (enum members compare by name on dict columns)."""

    column: str
    value: Any


@dataclass(frozen=True, slots=True)
class In:
    """``column ∈ values``."""

    column: str
    values: tuple[Any, ...]


@dataclass(frozen=True, slots=True)
class Between:
    """``lo ≤ column ≤ hi`` (either bound may be ``None`` = unbounded).

    Bounds are inclusive unless the matching ``*_inclusive`` flag is False.
    NaN never matches a range.
    """

    column: str
    lo: float | None = None
    hi: float | None = None
    lo_inclusive: bool = True
    hi_inclusive: bool = True


Predicate = Eq | In | Between


def where_speed_bin(label: str, column: str = "speed_mph") -> Between:
    """The paper's speed bins (§4.2) as range predicates.

    >>> where_speed_bin("20-60 mph")
    Between(column='speed_mph', lo=20.0, hi=60.0, lo_inclusive=True, hi_inclusive=False)
    """
    try:
        index = SPEED_BIN_LABELS.index(label)
    except ValueError:
        raise StoreError(
            f"unknown speed bin {label!r}; known: {list(SPEED_BIN_LABELS)}"
        ) from None
    lo = SPEED_BIN_EDGES_MPH[index]
    hi = SPEED_BIN_EDGES_MPH[index + 1]
    return Between(
        column=column,
        lo=lo,
        hi=None if hi == float("inf") else hi,
        lo_inclusive=True,
        hi_inclusive=False,
    )


@dataclass
class QueryStats:
    """Observability of one query: what pushdown saved.

    Pass an instance to any kernel to collect counters across partitions.
    """

    partitions_total: int = 0
    #: Partitions skipped entirely from manifest/footer stats.
    partitions_pruned: int = 0
    partitions_scanned: int = 0
    rows_total: int = 0
    rows_matched: int = 0
    #: Column chunks actually decoded (projection + non-pruned predicates).
    columns_decoded: int = 0
    #: Predicates answered from footer stats alone (no column read).
    predicates_short_circuited: int = 0
    #: Encoded bytes of every column chunk decoded — how much of the file
    #: the query actually read past the footer.
    bytes_decoded: int = 0
    #: Wall seconds spent evaluating predicates, accumulated per column
    #: (stats verdicts + mask evaluation), feeding ``--explain``.
    predicate_s: dict[str, float] = field(default_factory=dict)

    def merge(self, other: "QueryStats") -> None:
        for name in (
            "partitions_total", "partitions_pruned", "partitions_scanned",
            "rows_total", "rows_matched", "columns_decoded",
            "predicates_short_circuited", "bytes_decoded",
        ):
            setattr(self, name, getattr(self, name) + getattr(other, name))
        for column, seconds in other.predicate_s.items():
            self.predicate_s[column] = self.predicate_s.get(column, 0.0) + seconds


# -- predicate normalisation & stats pruning ---------------------------------


def _norm_value(entry: dict, value: Any) -> Any:
    """Normalise a predicate value for the column's kind."""
    kind = entry["kind"]
    if kind == "dict":
        return value.name if isinstance(value, enum.Enum) else str(value)
    if kind == "bool":
        return 1 if value else 0
    if kind in ("f8", "i8"):
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise StoreError(
                f"predicate value {value!r} is not numeric for "
                f"{kind} column {entry.get('name')!r}"
            )
        return value
    raise StoreError(f"unknown column kind {kind!r}")


def _stats_verdict(entry: dict, pred: Predicate) -> str:
    """Test a predicate against footer stats alone.

    Returns ``"none"`` (no row can match — prune), ``"all"`` (every row
    matches — predicate answered without decoding), or ``"some"``.
    """
    kind = entry["kind"]
    stats = entry.get("stats", {})
    count_ = int(entry.get("count", 0))
    if count_ == 0:
        return "none"
    if kind == "dict":
        present = set(entry.get("values", ()))
        if isinstance(pred, Eq):
            wanted = {_norm_value(entry, pred.value)}
        elif isinstance(pred, In):
            wanted = {_norm_value(entry, v) for v in pred.values}
        else:
            raise StoreError(
                f"range predicate on dict column {pred.column!r}"
            )
        if not present & wanted:
            return "none"
        if present <= wanted:
            return "all"
        return "some"
    lo_stat = stats.get("min")
    hi_stat = stats.get("max")
    nulls = int(stats.get("nulls", 0))
    if lo_stat is None or hi_stat is None:
        return "none"  # no finite value in the column
    if isinstance(pred, Eq):
        v = _norm_value(entry, pred.value)
        if v < lo_stat or v > hi_stat:
            return "none"
        if lo_stat == hi_stat == v and nulls == 0:
            return "all"
        return "some"
    if isinstance(pred, In):
        vs = [_norm_value(entry, v) for v in pred.values]
        if all(v < lo_stat or v > hi_stat for v in vs):
            return "none"
        if lo_stat == hi_stat and nulls == 0 and lo_stat in vs:
            return "all"
        return "some"
    if isinstance(pred, Between):
        lo = pred.lo if pred.lo is not None else float("-inf")
        hi = pred.hi if pred.hi is not None else float("inf")
        if hi < lo_stat or lo > hi_stat:
            return "none"
        if not pred.lo_inclusive and hi_stat <= lo:
            return "none"
        if not pred.hi_inclusive and lo_stat >= hi:
            return "none"
        lo_ok = lo_stat > lo or (pred.lo_inclusive and lo_stat == lo)
        hi_ok = hi_stat < hi or (pred.hi_inclusive and hi_stat == hi)
        if lo_ok and hi_ok and nulls == 0:
            return "all"
        return "some"
    raise StoreError(f"unknown predicate type {type(pred).__name__}")


def _pred_mask(
    table: TableReader, pred: Predicate, qstats: QueryStats | None
) -> np.ndarray | bool:
    """Evaluate one predicate: boolean mask, or True/False wholesale.

    With ``qstats``, the evaluation is timed per column (accumulated in
    ``predicate_s``); without it, no clock is read.
    """
    if qstats is None:
        return _pred_mask_inner(table, pred, None)
    t0 = time.perf_counter()
    try:
        return _pred_mask_inner(table, pred, qstats)
    finally:
        qstats.predicate_s[pred.column] = (
            qstats.predicate_s.get(pred.column, 0.0)
            + (time.perf_counter() - t0)
        )


def _pred_mask_inner(
    table: TableReader, pred: Predicate, qstats: QueryStats | None
) -> np.ndarray | bool:
    entry = table.column_entry(pred.column)
    verdict = _stats_verdict(entry, pred)
    if verdict != "some":
        if qstats is not None:
            qstats.predicates_short_circuited += 1
        return verdict == "all"
    if qstats is not None:
        qstats.columns_decoded += 1
        qstats.bytes_decoded += int(entry.get("nbytes", 0))
    arr = table.array(pred.column)
    if entry["kind"] == "dict":
        values = list(entry.get("values", ()))
        if isinstance(pred, Eq):
            name = _norm_value(entry, pred.value)
            if name not in values:
                return False
            return arr == values.index(name)
        wanted = {_norm_value(entry, v) for v in pred.values}
        codes = [i for i, v in enumerate(values) if v in wanted]
        if not codes:
            return False
        return np.isin(arr, codes)
    if isinstance(pred, Eq):
        return arr == _norm_value(entry, pred.value)
    if isinstance(pred, In):
        vs = [_norm_value(entry, v) for v in pred.values]
        return np.isin(arr, vs)
    mask: np.ndarray | bool = True
    if pred.lo is not None:
        m = arr >= pred.lo if pred.lo_inclusive else arr > pred.lo
        mask = m
    if pred.hi is not None:
        m = arr <= pred.hi if pred.hi_inclusive else arr < pred.hi
        mask = m if mask is True else (mask & m)
    return mask


def _match_mask(
    table: TableReader,
    where: Sequence[Predicate],
    qstats: QueryStats | None,
) -> np.ndarray | bool:
    """Conjunction of all predicates over one table."""
    mask: np.ndarray | bool = True
    for pred in where:
        m = _pred_mask(table, pred, qstats)
        if m is False:
            return False
        if m is True:
            continue
        mask = m if mask is True else (mask & m)
    return mask


# -- sources ------------------------------------------------------------------

Source = DatasetReader | Catalog


def _iter_tables(
    source: Source,
    table: str,
    where: Sequence[Predicate],
    seeds: Sequence[int] | None,
    qstats: QueryStats | None,
) -> Iterator[TableReader]:
    """Yield the table readers that survive partition-level pruning."""
    seed_set = set(seeds) if seeds is not None else None
    if isinstance(source, DatasetReader):
        candidates: list[tuple[int, dict | None, Any]] = [
            (source.seed, None, source)
        ]
    elif isinstance(source, Catalog):
        candidates = [
            (part.seed, part.table_stats(table), part)
            for part in source.partitions
        ]
    else:
        raise StoreError(
            f"unsupported query source {type(source).__name__}; "
            "expected DatasetReader or Catalog"
        )
    for seed, lite, handle in candidates:
        if qstats is not None:
            qstats.partitions_total += 1
        if seed_set is not None and seed not in seed_set:
            if qstats is not None:
                qstats.partitions_pruned += 1
            continue
        if lite is not None:
            # Manifest-level pruning: decide from copied footer stats
            # before the partition file is even opened.
            pruned = False
            for pred in where:
                entry = lite["columns"].get(pred.column)
                if entry is None:
                    continue  # unknown here; the open reader will raise
                if _stats_verdict(entry, pred) == "none":
                    pruned = True
                    break
            if pruned:
                if qstats is not None:
                    qstats.partitions_pruned += 1
                continue
        reader = handle if isinstance(handle, DatasetReader) else source.open(handle)
        if qstats is not None:
            qstats.partitions_scanned += 1
        yield reader.table(table)


_EMPTY_DTYPES = {"f8": np.float64, "i8": np.int64, "bool": np.uint8}


def _projected(
    table: TableReader,
    column: str,
    mask: np.ndarray | bool,
    qstats: QueryStats | None,
) -> np.ndarray:
    entry = table.column_entry(column)
    if entry["kind"] == "dict":
        raise StoreError(
            f"cannot aggregate dict column {column!r}; "
            "use group_total or a predicate instead"
        )
    if mask is False or table.count == 0:
        return np.empty(0, dtype=_EMPTY_DTYPES[entry["kind"]])
    if qstats is not None:
        qstats.columns_decoded += 1
        qstats.bytes_decoded += int(entry.get("nbytes", 0))
    arr = table.array(column)
    if mask is True:
        return arr.copy()  # detach from the mmap
    return arr[mask]


# -- aggregation kernels -------------------------------------------------------


def count(
    source: Source,
    table: str,
    where: Sequence[Predicate] = (),
    *,
    seeds: Sequence[int] | None = None,
    qstats: QueryStats | None = None,
) -> int:
    """Rows matching the predicates (no column projection needed)."""
    n = 0
    for tr in _iter_tables(source, table, where, seeds, qstats):
        mask = _match_mask(tr, where, qstats)
        matched = (
            tr.count if mask is True else 0 if mask is False else int(mask.sum())
        )
        if qstats is not None:
            qstats.rows_total += tr.count
            qstats.rows_matched += matched
        n += matched
    return n


def select(
    source: Source,
    table: str,
    column: str,
    where: Sequence[Predicate] = (),
    *,
    seeds: Sequence[int] | None = None,
    qstats: QueryStats | None = None,
) -> np.ndarray:
    """Matching values of one numeric column, concatenated across partitions."""
    parts: list[np.ndarray] = []
    for tr in _iter_tables(source, table, where, seeds, qstats):
        mask = _match_mask(tr, where, qstats)
        values = _projected(tr, column, mask, qstats)
        if qstats is not None:
            qstats.rows_total += tr.count
            qstats.rows_matched += int(values.size)
        if values.size:
            parts.append(values)
    if not parts:
        return np.empty(0, dtype=np.float64)
    return np.concatenate(parts)


def total(
    source: Source,
    table: str,
    column: str,
    where: Sequence[Predicate] = (),
    *,
    seeds: Sequence[int] | None = None,
    qstats: QueryStats | None = None,
) -> float:
    """Sum of matching values, accumulated partition by partition."""
    acc = 0.0
    for tr in _iter_tables(source, table, where, seeds, qstats):
        mask = _match_mask(tr, where, qstats)
        values = _projected(tr, column, mask, qstats)
        if qstats is not None:
            qstats.rows_total += tr.count
            qstats.rows_matched += int(values.size)
        if values.size:
            acc += float(values.sum())
    return acc


def mean(
    source: Source,
    table: str,
    column: str,
    where: Sequence[Predicate] = (),
    *,
    seeds: Sequence[int] | None = None,
    qstats: QueryStats | None = None,
) -> float:
    """Mean of matching values (sum/count, never materialised as rows)."""
    acc = 0.0
    n = 0
    for tr in _iter_tables(source, table, where, seeds, qstats):
        mask = _match_mask(tr, where, qstats)
        values = _projected(tr, column, mask, qstats)
        if qstats is not None:
            qstats.rows_total += tr.count
            qstats.rows_matched += int(values.size)
        if values.size:
            acc += float(values.sum())
            n += int(values.size)
    if n == 0:
        raise StoreError(
            f"mean over empty selection ({table}.{column})"
        )
    return acc / n


def percentile(
    source: Source,
    table: str,
    column: str,
    q: float | Sequence[float],
    where: Sequence[Predicate] = (),
    *,
    seeds: Sequence[int] | None = None,
    qstats: QueryStats | None = None,
) -> float | np.ndarray:
    """Quantile(s) of the matching values (linear interpolation)."""
    values = select(source, table, column, where, seeds=seeds, qstats=qstats)
    if values.size == 0:
        raise StoreError(
            f"percentile over empty selection ({table}.{column})"
        )
    result = np.quantile(values.astype(np.float64, copy=False), q)
    if np.ndim(result) == 0:
        return float(result)
    return result


def cdf(
    source: Source,
    table: str,
    column: str,
    where: Sequence[Predicate] = (),
    *,
    seeds: Sequence[int] | None = None,
    qstats: QueryStats | None = None,
) -> EmpiricalCDF:
    """Empirical CDF of the matching values — plugs into every figure."""
    values = select(source, table, column, where, seeds=seeds, qstats=qstats)
    return EmpiricalCDF.from_values(values)


def group_total(
    source: Source,
    table: str,
    key: str,
    column: str,
    where: Sequence[Predicate] = (),
    *,
    seeds: Sequence[int] | None = None,
    qstats: QueryStats | None = None,
) -> dict[str, float]:
    """Per-group sum of ``column`` grouped by the dict column ``key``.

    One pass over the codes with :func:`numpy.bincount`; groups that never
    match are absent from the result.
    """
    out: dict[str, float] = {}
    for tr in _iter_tables(source, table, where, seeds, qstats):
        entry = tr.column_entry(key)
        if entry["kind"] != "dict":
            raise StoreError(f"group key {key!r} is not a dict column")
        mask = _match_mask(tr, where, qstats)
        if mask is False or tr.count == 0:
            if qstats is not None:
                qstats.rows_total += tr.count
            continue
        if qstats is not None:
            qstats.columns_decoded += 2
            qstats.bytes_decoded += int(entry.get("nbytes", 0)) + int(
                tr.column_entry(column).get("nbytes", 0)
            )
        codes = tr.array(key)
        values = tr.array(column).astype(np.float64, copy=False)
        if mask is not True:
            codes = codes[mask]
            values = values[mask]
        names = list(entry.get("values", ()))
        sums = np.bincount(codes, weights=values, minlength=len(names))
        if qstats is not None:
            qstats.rows_total += tr.count
            qstats.rows_matched += int(codes.size)
        for name, s in zip(names, sums.tolist()):
            out[name] = out.get(name, 0.0) + s
    return out
