"""The store file format: atomic byte-stable writer, mmap-backed reader.

One ``.rcol`` file holds one campaign dataset, columnar::

    [8-byte magic "RPRCOL01"]
    [column chunks, back to back, in footer order]
    [footer: UTF-8 JSON]
    [16-byte tail: <u8 footer offset> <u4 footer length> "RCOL"]

The footer describes everything — dataset metadata (seed, scale, route
length, passive handover counts, connected cells), every table's row count,
and per column: kind, codec, byte span, dictionary values, and min/max/null
stats.  A reader parses the footer from the tail without scanning the file,
then decodes only the columns a query touches, straight out of an ``mmap``
(plain numeric columns are zero-copy views).

Like :mod:`repro.campaign.persistence`, writes are **atomic** (unique temp
sibling + ``os.replace``) and **byte-stable** (no timestamps, sorted JSON
keys, deterministic encodings), so equal datasets produce equal files and
shard checkpointing can rely on byte comparison.

``schema_version`` (the ``format`` footer field) is checked on open, the
same contract as ``EngineReport``/``SweepReport``; every structural change
bumps :data:`STORE_FORMAT_VERSION`.
"""

from __future__ import annotations

import json
import mmap
import os
import pathlib
import struct
from typing import Any, Iterator

import numpy as np

from repro.campaign.dataset import DriveDataset
from repro.errors import StoreError
from repro.radio.operators import Operator
from repro.store.columnar import (
    TABLE_ATTRS,
    TABLE_SCHEMAS,
    ColumnStats,
    decode_column,
    decode_dict_column,
    decoded_value,
)

__all__ = [
    "STORE_FORMAT_VERSION",
    "STORE_MAGIC",
    "STORE_SUFFIX",
    "DatasetReader",
    "TableReader",
    "is_store_file",
    "read_dataset",
    "write_dataset",
]

#: Bump on any structural change to the file layout or footer schema.
STORE_FORMAT_VERSION = 1

STORE_MAGIC = b"RPRCOL01"
_TAIL = struct.Struct("<QI4s")
_TAIL_MAGIC = b"RCOL"

#: Conventional file suffix for columnar dataset files.
STORE_SUFFIX = ".rcol"


def write_dataset(dataset: DriveDataset, path: str | pathlib.Path) -> None:
    """Write a dataset as one columnar store file, atomically."""
    path = pathlib.Path(path)
    tables: dict[str, Any] = {}
    chunks: list[bytes] = []
    offset = len(STORE_MAGIC)
    for table_name, schema in TABLE_SCHEMAS.items():
        records = getattr(dataset, TABLE_ATTRS[table_name])
        encoded = schema.shred(records)
        columns = []
        for col in encoded:
            columns.append(col.footer_entry(offset))
            chunks.append(col.payload)
            offset += len(col.payload)
        tables[table_name] = {"count": len(records), "columns": columns}
    footer = {
        "format": STORE_FORMAT_VERSION,
        "meta": {
            "seed": dataset.seed,
            "scale": dataset.scale,
            "route_length_km": dataset.route_length_km,
            "passive_handover_counts": {
                op.name: n for op, n in dataset.passive_handover_counts.items()
            },
            "connected_cells": {
                op.name: n for op, n in dataset.connected_cells.items()
            },
        },
        "tables": tables,
    }
    footer_bytes = json.dumps(
        footer, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    tail = _TAIL.pack(offset, len(footer_bytes), _TAIL_MAGIC)

    tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    try:
        with open(tmp, "wb") as fh:
            fh.write(STORE_MAGIC)
            for chunk in chunks:
                fh.write(chunk)
            fh.write(footer_bytes)
            fh.write(tail)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)


def is_store_file(path: str | pathlib.Path) -> bool:
    """True when ``path`` starts with the columnar store magic."""
    try:
        with open(path, "rb") as fh:
            return fh.read(len(STORE_MAGIC)) == STORE_MAGIC
    except OSError:
        return False


class TableReader:
    """Column-level access to one table of an open store file."""

    def __init__(self, reader: "DatasetReader", name: str, entry: dict) -> None:
        self._reader = reader
        self.name = name
        self.count = int(entry["count"])
        self._columns: dict[str, dict] = {
            col["name"]: col for col in entry["columns"]
        }

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(self._columns)

    def column_entry(self, name: str) -> dict:
        try:
            return self._columns[name]
        except KeyError:
            raise StoreError(
                f"table {self.name!r} has no column {name!r}; "
                f"known: {sorted(self._columns)}"
            ) from None

    def stats(self, name: str) -> ColumnStats:
        return ColumnStats.from_obj(self.column_entry(name).get("stats", {}))

    def dict_values(self, name: str) -> tuple[str, ...]:
        """Distinct values of a dict column, from the footer alone."""
        entry = self.column_entry(name)
        if entry["kind"] != "dict":
            raise StoreError(f"column {name!r} is {entry['kind']}, not dict")
        return tuple(entry.get("values", ()))

    def _payload(self, entry: dict) -> memoryview:
        return self._reader._slice(
            int(entry["offset"]), int(entry["nbytes"]), entry["name"]
        )

    def array(self, name: str) -> np.ndarray:
        """Decode a column to numbers: f8/i8 values, bool bytes, dict codes."""
        entry = self.column_entry(name)
        return decode_column(entry, self._payload(entry))

    def strings(self, name: str) -> list[str]:
        """Decode a dict column to its per-row strings."""
        entry = self.column_entry(name)
        if entry["kind"] != "dict":
            raise StoreError(f"column {name!r} is {entry['kind']}, not dict")
        return decode_dict_column(entry, self._payload(entry))

    def python_column(self, name: str) -> list[Any]:
        """Decode a column to Python-level values (enums reconstructed)."""
        entry = self.column_entry(name)
        spec = TABLE_SCHEMAS[self.name].column(name)
        if entry["kind"] == "dict":
            return [decoded_value(spec, s) for s in self.strings(name)]
        arr = self.array(name)
        if entry["kind"] == "bool":
            return [bool(v) for v in arr.tolist()]
        return arr.tolist()


class DatasetReader:
    """mmap-backed reader over one columnar dataset file.

    Opens the file, validates magic/version, and parses the footer; column
    bytes are only touched when a query decodes them.  Usable as a context
    manager; arrays returned by :meth:`TableReader.array` for plain columns
    are views into the mmap and become invalid after :meth:`close`.
    """

    def __init__(self, path: str | pathlib.Path) -> None:
        self.path = pathlib.Path(path)
        self._fh = open(self.path, "rb")
        try:
            try:
                self._mm: mmap.mmap | None = mmap.mmap(
                    self._fh.fileno(), 0, access=mmap.ACCESS_READ
                )
            except ValueError as exc:  # zero-length file cannot be mapped
                raise StoreError(f"not a store file (empty): {self.path}") from exc
            self._footer = self._parse_footer()
        except Exception:
            self.close()
            raise
        meta = self._footer.get("meta", {})
        self.seed: int = int(meta.get("seed", 0))
        self.scale: float = float(meta.get("scale", 0.0))
        self.route_length_km: float = float(meta.get("route_length_km", 0.0))
        self.passive_handover_counts: dict[Operator, int] = {
            Operator[name]: int(n)
            for name, n in meta.get("passive_handover_counts", {}).items()
        }
        self.connected_cells: dict[Operator, int] = {
            Operator[name]: int(n)
            for name, n in meta.get("connected_cells", {}).items()
        }
        self._tables: dict[str, TableReader] = {}

    # -- low-level ----------------------------------------------------------

    def _parse_footer(self) -> dict:
        mm = self._mm
        assert mm is not None
        size = mm.size()
        if size < len(STORE_MAGIC) + _TAIL.size:
            raise StoreError(
                f"not a store file (only {size} bytes): {self.path}"
            )
        if mm[: len(STORE_MAGIC)] != STORE_MAGIC:
            raise StoreError(f"bad magic; not a columnar store file: {self.path}")
        footer_offset, footer_len, tail_magic = _TAIL.unpack(
            mm[size - _TAIL.size :]
        )
        if tail_magic != _TAIL_MAGIC:
            raise StoreError(
                f"bad tail magic; truncated or corrupt store file: {self.path}"
            )
        self._data_end = footer_offset
        if footer_offset + footer_len + _TAIL.size != size:
            raise StoreError(
                f"footer span disagrees with file size; truncated or corrupt "
                f"store file: {self.path}"
            )
        try:
            footer = json.loads(mm[footer_offset : footer_offset + footer_len])
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise StoreError(
                f"unreadable footer in store file: {self.path}"
            ) from exc
        version = footer.get("format")
        if version != STORE_FORMAT_VERSION:
            raise StoreError(
                f"unsupported store format {version!r} "
                f"(this build reads {STORE_FORMAT_VERSION}): {self.path}"
            )
        return footer

    def _slice(self, offset: int, nbytes: int, column: str) -> memoryview:
        if self._mm is None:
            raise StoreError(f"store file is closed: {self.path}")
        if offset < len(STORE_MAGIC) or offset + nbytes > self._data_end:
            raise StoreError(
                f"column {column!r} spans [{offset}, {offset + nbytes}) "
                f"outside the data section of {self.path} (corrupt footer)"
            )
        return memoryview(self._mm)[offset : offset + nbytes]

    # -- table access --------------------------------------------------------

    @property
    def table_names(self) -> tuple[str, ...]:
        return tuple(self._footer.get("tables", {}))

    def table(self, name: str) -> TableReader:
        reader = self._tables.get(name)
        if reader is None:
            entry = self._footer.get("tables", {}).get(name)
            if entry is None:
                raise StoreError(
                    f"store file has no table {name!r}; "
                    f"known: {sorted(self._footer.get('tables', {}))}"
                )
            reader = TableReader(self, name, entry)
            self._tables[name] = reader
        return reader

    def tables(self) -> Iterator[TableReader]:
        for name in self.table_names:
            yield self.table(name)

    def nbytes(self) -> int:
        """Total file size in bytes."""
        return self._mm.size() if self._mm is not None else 0

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        if getattr(self, "_mm", None) is not None:
            self._mm.close()
            self._mm = None
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "DatasetReader":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def read_dataset(path: str | pathlib.Path) -> DriveDataset:
    """Materialise the full row-object dataset from a store file.

    The exact inverse of :func:`write_dataset`: every record compares equal
    to the one that was written (floats round-trip bit-for-bit).
    """
    with DatasetReader(path) as reader:
        dataset = DriveDataset(
            seed=reader.seed,
            scale=reader.scale,
            route_length_km=reader.route_length_km,
            passive_handover_counts=dict(reader.passive_handover_counts),
            connected_cells=dict(reader.connected_cells),
        )
        for table_name, schema in TABLE_SCHEMAS.items():
            table = reader.table(table_name)
            columns = {
                spec.name: table.python_column(spec.name)
                for spec in schema.columns
                if not spec.derived
            }
            records = schema.assemble(columns, table.count)
            getattr(dataset, TABLE_ATTRS[table_name]).extend(records)
        return dataset
