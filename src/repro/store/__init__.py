"""repro.store — columnar campaign dataset store + predicate-pushdown queries.

Every figure in the paper is an aggregate over a filtered slice of the
drive database; at sweep scale that slice is re-filtered per seed, per
statistic, from Python object lists.  This subsystem moves the hot path
onto a **columnar store**, the way measurement platforms serve cellular
records at scale (cf. cniCloud's queryable measurement warehouse):

1. **encodings** (:mod:`repro.store.columnar`) — records shred into typed
   columns: packed f8/i8 numerics, dictionary-encoded enums, run-length
   compression for slowly-changing columns, with min/max/null stats per
   column;
2. **format** (:mod:`repro.store.format`) — one atomic, byte-stable
   ``.rcol`` file per dataset, mmap-backed, footer-described, schema
   versioned; exact value round-trip with the row path;
3. **query engine** (:mod:`repro.store.query`) — projection, predicate
   pushdown against footer stats, and aggregation kernels (count, sum,
   mean, percentiles, CDFs, grouped sums) feeding the analysis layer
   without ever materialising row objects;
4. **catalog** (:mod:`repro.store.catalog`) — per-seed partitions behind a
   manifest whose copied stats prune whole files before any byte is read.

Quickstart::

    from repro.store import Catalog, Eq, cdf, query

    with Catalog("out/store") as cat:
        dl = query.cdf(
            cat, "tput", "tput_mbps",
            where=(Eq("operator", Operator.VERIZON),
                   Eq("direction", "downlink"), Eq("static", False)),
        )
        print(dl.median)

Or from the command line::

    python -m repro.store ingest out/store out/seed41.jsonl.gz
    python -m repro.store query out/store --table tput --column tput_mbps \\
        --where operator=VERIZON --where static=false --agg p50
"""

from __future__ import annotations

from repro.store import query
from repro.store.catalog import Catalog, PartitionInfo
from repro.store.columnar import TABLE_SCHEMAS
from repro.store.format import (
    STORE_FORMAT_VERSION,
    STORE_SUFFIX,
    DatasetReader,
    is_store_file,
    read_dataset,
    write_dataset,
)
from repro.store.query import (
    Between,
    Eq,
    In,
    QueryStats,
    cdf,
    count,
    group_total,
    mean,
    percentile,
    select,
    total,
    where_speed_bin,
)

__all__ = [
    "Between",
    "Catalog",
    "DatasetReader",
    "Eq",
    "In",
    "PartitionInfo",
    "QueryStats",
    "STORE_FORMAT_VERSION",
    "STORE_SUFFIX",
    "TABLE_SCHEMAS",
    "cdf",
    "count",
    "group_total",
    "is_store_file",
    "mean",
    "percentile",
    "query",
    "read_dataset",
    "select",
    "total",
    "where_speed_bin",
    "write_dataset",
]
