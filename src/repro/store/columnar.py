"""Per-column encodings for the campaign dataset store.

Each record family of a :class:`~repro.campaign.dataset.DriveDataset`
(throughput samples, RTT samples, tests, handovers, passive coverage,
app runs) is shredded into typed columns:

* **f8** — IEEE-754 doubles packed with :mod:`array` (``'d'``); exact
  round-trip of every Python float, including NaN and infinities;
* **i8** — signed 64-bit integers (``'q'``);
* **bool** — one byte per value;
* **dict** — dictionary encoding for low-cardinality strings (operator,
  technology, region, timezone, server kind, direction, cell ids): the
  distinct values, in first-appearance order, live in the footer and the
  column body holds fixed-width codes (1/2/4 bytes as cardinality needs).

Integer, boolean, and dictionary-code streams are additionally run-length
encoded when that shrinks them — slowly-changing columns (technology,
region, timezone, test id) compress to a handful of runs.  The choice is
per column, data-driven, and recorded in the footer, so readers never
guess.

Every encoded column carries **footer stats** — min/max over finite values
and a null (NaN) count, plus the distinct-value list for dict columns —
which is what the query engine's predicate pushdown prunes on without
touching the column bytes.

Encoding is fully deterministic (no timestamps, no hashing order), which
keeps store files byte-stable: equal datasets serialise to equal bytes.
"""

from __future__ import annotations

import enum
from array import array
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.campaign.dataset import (
    GamingRunResult,
    HandoverRecord,
    OffloadRunResult,
    PassiveCoverageSegment,
    RttSample,
    TestRecord,
    ThroughputSample,
    VideoRunResult,
)
from repro.campaign.tests import TestType
from repro.errors import StoreError
from repro.geo.regions import RegionType
from repro.geo.timezones import Timezone
from repro.mobility.events import HandoverEvent
from repro.net.servers import ServerKind
from repro.radio.cells import CellId
from repro.radio.operators import Operator
from repro.radio.technology import RadioTechnology

__all__ = [
    "ColumnSpec",
    "ColumnStats",
    "EncodedColumn",
    "TableSchema",
    "TABLE_SCHEMAS",
    "TABLE_ATTRS",
    "encode_column",
    "decode_column",
    "decode_dict_column",
    "decoded_value",
]

#: Width of one run-length prefix (little-endian u4).
_RUN_PREFIX_BYTES = 4

_CODE_DTYPES = {1: "<u1", 2: "<u2", 4: "<u4"}


@dataclass(frozen=True, slots=True)
class ColumnSpec:
    """Static description of one column of a table."""

    name: str
    #: ``"f8"`` | ``"i8"`` | ``"bool"`` | ``"dict"``.
    kind: str
    #: Enum class whose member *names* populate a dict column; ``None`` for
    #: free-string dict columns (cell identifiers) and non-dict kinds.
    enum: type[enum.Enum] | None = None
    #: Derived columns are materialised at write time for the query engine
    #: (e.g. passive ``length_m``) but not fed back to the row constructor.
    derived: bool = False


@dataclass(frozen=True, slots=True)
class ColumnStats:
    """Footer statistics of one column, the basis of predicate pushdown."""

    #: NaN count (always 0 for non-float columns).
    nulls: int
    #: Min/max over finite values (int for integer/bool columns, float for
    #: f8); ``None`` when no finite value exists (empty column, all-NaN)
    #: and for dict columns.
    min: float | int | None
    max: float | int | None

    def to_obj(self) -> dict:
        return {"nulls": self.nulls, "min": self.min, "max": self.max}

    @classmethod
    def from_obj(cls, obj: dict) -> "ColumnStats":
        return cls(
            nulls=int(obj.get("nulls", 0)),
            min=obj.get("min"),
            max=obj.get("max"),
        )


@dataclass(frozen=True, slots=True)
class EncodedColumn:
    """One column ready to be written: payload bytes + footer entry."""

    name: str
    kind: str
    #: ``"plain"`` or ``"rle"``.
    codec: str
    #: Bytes per packed value/code (8 for f8/i8, 1 for bool, 1/2/4 for dict).
    width: int
    count: int
    payload: bytes
    stats: ColumnStats
    #: Distinct values in first-appearance order; dict columns only.
    values: tuple[str, ...] | None = None

    def footer_entry(self, offset: int) -> dict:
        entry = {
            "name": self.name,
            "kind": self.kind,
            "codec": self.codec,
            "width": self.width,
            "count": self.count,
            "offset": offset,
            "nbytes": len(self.payload),
            "stats": self.stats.to_obj(),
        }
        if self.values is not None:
            entry["values"] = list(self.values)
        return entry


# -- encoding -----------------------------------------------------------------


def _numeric_stats(arr: np.ndarray) -> ColumnStats:
    if arr.size == 0:
        return ColumnStats(nulls=0, min=None, max=None)
    if arr.dtype.kind == "f":
        finite = arr[np.isfinite(arr)]
        nulls = int(np.isnan(arr).sum())
        if finite.size == 0:
            return ColumnStats(nulls=nulls, min=None, max=None)
        return ColumnStats(
            nulls=nulls, min=float(finite.min()), max=float(finite.max())
        )
    # Integer stats stay integers: a float cast would round large int64
    # values and make pushdown bounds (and tests) inexact.
    return ColumnStats(nulls=0, min=int(arr.min()), max=int(arr.max()))


def _rle_encode(
    codes: np.ndarray, width: int, value_dtype: str
) -> bytes | None:
    """Run-length encode ``codes``; ``None`` when plain packing is smaller.

    The stream is a sequence of interleaved ``(u4 run_length, value)``
    pairs, so a truncated tail is always detectable by length.
    """
    n = int(codes.size)
    if n == 0:
        return None
    boundaries = np.flatnonzero(codes[1:] != codes[:-1]) + 1
    starts = np.concatenate(([0], boundaries))
    ends = np.concatenate((boundaries, [n]))
    n_runs = int(starts.size)
    if n_runs * (_RUN_PREFIX_BYTES + width) >= n * width:
        return None
    pairs = np.empty(n_runs, dtype=[("n", "<u4"), ("v", value_dtype)])
    pairs["n"] = ends - starts
    pairs["v"] = codes[starts]
    return pairs.tobytes()


def _encode_int_like(
    name: str, kind: str, arr: np.ndarray, width: int, value_dtype: str,
    stats: ColumnStats, values: tuple[str, ...] | None = None,
) -> EncodedColumn:
    """Pack an integer-valued stream, run-length encoded when smaller."""
    rle = _rle_encode(arr, width, value_dtype)
    if rle is not None:
        return EncodedColumn(
            name=name, kind=kind, codec="rle", width=width,
            count=int(arr.size), payload=rle, stats=stats, values=values,
        )
    packed = arr.astype(value_dtype, copy=False).tobytes()
    return EncodedColumn(
        name=name, kind=kind, codec="plain", width=width,
        count=int(arr.size), payload=packed, stats=stats, values=values,
    )


def encode_column(spec: ColumnSpec, raw_values: list[Any]) -> EncodedColumn:
    """Encode one column of raw per-record values."""
    n = len(raw_values)
    if spec.kind == "f8":
        packed = array("d", [float(v) for v in raw_values])
        arr = np.frombuffer(packed.tobytes(), dtype="<f8")
        return EncodedColumn(
            name=spec.name, kind="f8", codec="plain", width=8, count=n,
            payload=packed.tobytes(), stats=_numeric_stats(arr),
        )
    if spec.kind == "i8":
        arr = np.asarray([int(v) for v in raw_values], dtype="<i8")
        return _encode_int_like(
            spec.name, "i8", arr, 8, "<i8", _numeric_stats(arr)
        )
    if spec.kind == "bool":
        arr = np.asarray([1 if v else 0 for v in raw_values], dtype="<u1")
        return _encode_int_like(
            spec.name, "bool", arr, 1, "<u1", _numeric_stats(arr)
        )
    if spec.kind == "dict":
        strings = [
            v.name if isinstance(v, enum.Enum) else str(v) for v in raw_values
        ]
        table: dict[str, int] = {}
        codes = np.empty(n, dtype="<u4")
        for i, s in enumerate(strings):
            code = table.get(s)
            if code is None:
                code = table.setdefault(s, len(table))
            codes[i] = code
        cardinality = max(len(table), 1)
        width = 1 if cardinality <= 0xFF else 2 if cardinality <= 0xFFFF else 4
        codes = codes.astype(_CODE_DTYPES[width])
        return _encode_int_like(
            spec.name, "dict", codes, width, _CODE_DTYPES[width],
            ColumnStats(nulls=0, min=None, max=None),
            values=tuple(table),
        )
    raise StoreError(f"unknown column kind {spec.kind!r} for {spec.name!r}")


# -- decoding -----------------------------------------------------------------


def _decode_rle(
    entry: dict, payload: bytes | memoryview, width: int
) -> np.ndarray:
    pair_bytes = _RUN_PREFIX_BYTES + width
    nbytes = len(payload)
    if nbytes % pair_bytes != 0:
        raise StoreError(
            f"column {entry.get('name')!r}: RLE payload of {nbytes} bytes is "
            f"not a whole number of {pair_bytes}-byte runs (truncated file?)"
        )
    pairs = np.frombuffer(
        payload, dtype=[("n", "<u4"), ("v", _CODE_DTYPES.get(width, "<i8"))]
    )
    decoded = np.repeat(pairs["v"], pairs["n"])
    if decoded.size != int(entry["count"]):
        raise StoreError(
            f"column {entry.get('name')!r}: RLE expands to {decoded.size} "
            f"values, footer says {entry['count']} (corrupt file)"
        )
    return decoded


def decode_column(entry: dict, payload: bytes | memoryview) -> np.ndarray:
    """Decode one column payload into a numpy array.

    ``f8``/``i8`` columns decode to float64/int64; ``bool`` columns to
    uint8 (0/1); ``dict`` columns to their integer *codes* (pair with
    :func:`decode_dict_column` or the footer ``values`` list to get
    strings).  Plain columns are zero-copy views of ``payload``.

    Raises :class:`StoreError` when the payload length disagrees with the
    footer entry — a truncated or corrupt file never decodes to garbage.
    """
    kind = entry["kind"]
    codec = entry.get("codec", "plain")
    count = int(entry["count"])
    width = int(entry["width"])
    if kind == "f8":
        expected = count * 8
        if len(payload) != expected:
            raise StoreError(
                f"column {entry.get('name')!r}: expected {expected} bytes, "
                f"found {len(payload)} (truncated file?)"
            )
        return np.frombuffer(payload, dtype="<f8")
    if kind == "i8":
        if codec == "rle":
            return _decode_rle(entry, payload, 8).astype(np.int64, copy=False)
        expected = count * 8
        if len(payload) != expected:
            raise StoreError(
                f"column {entry.get('name')!r}: expected {expected} bytes, "
                f"found {len(payload)} (truncated file?)"
            )
        return np.frombuffer(payload, dtype="<i8")
    if kind in ("bool", "dict"):
        if codec == "rle":
            return _decode_rle(entry, payload, width)
        expected = count * width
        if len(payload) != expected:
            raise StoreError(
                f"column {entry.get('name')!r}: expected {expected} bytes, "
                f"found {len(payload)} (truncated file?)"
            )
        return np.frombuffer(payload, dtype=_CODE_DTYPES[width])
    raise StoreError(f"unknown column kind {kind!r} in footer")


def decode_dict_column(entry: dict, payload: bytes | memoryview) -> list[str]:
    """Decode a dict column to its per-row string values."""
    codes = decode_column(entry, payload)
    values = entry.get("values", [])
    if codes.size and int(codes.max()) >= len(values):
        raise StoreError(
            f"column {entry.get('name')!r}: code {int(codes.max())} out of "
            f"range for {len(values)} dictionary values (corrupt file)"
        )
    return [values[c] for c in codes.tolist()]


# -- table schemas ------------------------------------------------------------


@dataclass(frozen=True)
class TableSchema:
    """Columnar schema of one record family: shred and rebuild rows."""

    name: str
    columns: tuple[ColumnSpec, ...]
    #: Per-column raw-value getters, keyed by column name.
    getters: dict[str, Callable[[Any], Any]] = field(repr=False)
    #: Build one record from a ``{column: decoded value}`` row.
    builder: Callable[[dict[str, Any]], Any] = field(repr=False)

    def column(self, name: str) -> ColumnSpec:
        for spec in self.columns:
            if spec.name == name:
                return spec
        raise StoreError(
            f"table {self.name!r} has no column {name!r}; "
            f"known: {[c.name for c in self.columns]}"
        )

    def shred(self, records: list[Any]) -> list[EncodedColumn]:
        """Encode the records column by column."""
        encoded = []
        for spec in self.columns:
            get = self.getters[spec.name]
            encoded.append(encode_column(spec, [get(r) for r in records]))
        return encoded

    def assemble(self, columns: dict[str, list[Any]], count: int) -> list[Any]:
        """Rebuild row records from decoded per-column Python values."""
        names = [c.name for c in self.columns if not c.derived]
        return [
            self.builder({name: columns[name][i] for name in names})
            for i in range(count)
        ]


def _enum_lookup(enum_cls: type[enum.Enum]) -> dict[str, enum.Enum]:
    return {member.name: member for member in enum_cls}


_DECODERS: dict[str, dict[str, enum.Enum]] = {}


def decoded_value(spec: ColumnSpec, raw: Any) -> Any:
    """Map a decoded column value back to its Python-level type."""
    if spec.kind == "dict" and spec.enum is not None:
        lookup = _DECODERS.get(spec.enum.__name__)
        if lookup is None:
            lookup = _DECODERS.setdefault(spec.enum.__name__, _enum_lookup(spec.enum))
        try:
            return lookup[raw]
        except KeyError:
            raise StoreError(
                f"unknown {spec.enum.__name__} member {raw!r} in column "
                f"{spec.name!r}"
            ) from None
    if spec.kind == "bool":
        return bool(raw)
    if spec.kind == "f8":
        return float(raw)
    if spec.kind == "i8":
        return int(raw)
    return raw


def _cell_to_str(cid: CellId) -> str:
    return f"{cid.operator.name}:{cid.technology.name}:{cid.sequence}"


def _cell_from_str(text: str) -> CellId:
    try:
        op_name, tech_name, seq = text.split(":")
        return CellId(
            Operator[op_name], RadioTechnology[tech_name], int(seq)
        )
    except (KeyError, ValueError) as exc:
        raise StoreError(f"invalid cell id {text!r} in store file") from exc


def _schema(
    name: str,
    fields: list[tuple[str, str, type[enum.Enum] | None, Callable[[Any], Any]]],
    builder: Callable[[dict[str, Any]], Any],
    derived: list[tuple[str, str, Callable[[Any], Any]]] = (),
) -> TableSchema:
    columns = [ColumnSpec(n, kind, enum=e) for n, kind, e, _ in fields]
    columns += [ColumnSpec(n, kind, derived=True) for n, kind, _ in derived]
    getters = {n: g for n, _, _, g in fields}
    getters.update({n: g for n, _, g in derived})
    return TableSchema(
        name=name, columns=tuple(columns), getters=getters, builder=builder
    )


def _build_tput(v: dict) -> ThroughputSample:
    return ThroughputSample(
        test_id=v["test_id"], operator=v["operator"], direction=v["direction"],
        time_s=v["time_s"], mark_m=v["mark_m"], speed_mph=v["speed_mph"],
        region=v["region"], timezone=v["timezone"], tech=v["tech"],
        rsrp_dbm=v["rsrp_dbm"], mcs=v["mcs"], bler=v["bler"], n_ccs=v["n_ccs"],
        tput_mbps=v["tput_mbps"], server_kind=v["server_kind"],
        ho_count=v["ho_count"], static=v["static"],
    )


def _build_rtt(v: dict) -> RttSample:
    return RttSample(
        test_id=v["test_id"], operator=v["operator"], time_s=v["time_s"],
        mark_m=v["mark_m"], speed_mph=v["speed_mph"], region=v["region"],
        timezone=v["timezone"], tech=v["tech"], rtt_ms=v["rtt_ms"],
        server_kind=v["server_kind"], static=v["static"],
    )


def _build_test(v: dict) -> TestRecord:
    return TestRecord(
        test_id=v["test_id"], test_type=v["test_type"], operator=v["operator"],
        start_time_s=v["start_time_s"], end_time_s=v["end_time_s"],
        start_mark_m=v["start_mark_m"], end_mark_m=v["end_mark_m"],
        server_kind=v["server_kind"], static=v["static"],
    )


def _build_ho(v: dict) -> HandoverRecord:
    return HandoverRecord(
        test_id=v["test_id"], direction=v["direction"],
        event=HandoverEvent(
            operator=v["operator"], time_s=v["time_s"], mark_m=v["mark_m"],
            duration_ms=v["duration_ms"],
            from_cell=_cell_from_str(v["from_cell"]),
            to_cell=_cell_from_str(v["to_cell"]),
            from_tech=v["from_tech"], to_tech=v["to_tech"],
        ),
    )


def _build_passive(v: dict) -> PassiveCoverageSegment:
    return PassiveCoverageSegment(
        operator=v["operator"], start_m=v["start_m"], end_m=v["end_m"],
        tech=v["tech"], timezone=v["timezone"], region=v["region"],
    )


def _build_offload(v: dict) -> OffloadRunResult:
    return OffloadRunResult(
        app=v["app"], test_id=v["test_id"], operator=v["operator"],
        server_kind=v["server_kind"], compression=v["compression"],
        mean_e2e_ms=v["mean_e2e_ms"], median_e2e_ms=v["median_e2e_ms"],
        offload_fps=v["offload_fps"], map_score=v["map_score"],
        ho_count=v["ho_count"], frac_hs5g=v["frac_hs5g"],
        static=v["static"], uplink_megabits=v["uplink_megabits"],
    )


def _build_video(v: dict) -> VideoRunResult:
    return VideoRunResult(
        test_id=v["test_id"], operator=v["operator"],
        server_kind=v["server_kind"], qoe=v["qoe"],
        avg_bitrate_mbps=v["avg_bitrate_mbps"],
        rebuffer_ratio=v["rebuffer_ratio"], ho_count=v["ho_count"],
        frac_hs5g=v["frac_hs5g"], static=v["static"],
        downlink_megabits=v["downlink_megabits"],
    )


def _build_gaming(v: dict) -> GamingRunResult:
    return GamingRunResult(
        test_id=v["test_id"], operator=v["operator"],
        server_kind=v["server_kind"],
        avg_bitrate_mbps=v["avg_bitrate_mbps"],
        median_latency_ms=v["median_latency_ms"],
        p95_latency_ms=v["p95_latency_ms"],
        frame_drop_rate=v["frame_drop_rate"], ho_count=v["ho_count"],
        frac_hs5g=v["frac_hs5g"], static=v["static"],
        downlink_megabits=v["downlink_megabits"],
    )


#: Columnar schema of every record family, keyed by the same section names
#: the JSON-lines persistence format uses.
TABLE_SCHEMAS: dict[str, TableSchema] = {
    "tput": _schema(
        "tput",
        [
            ("test_id", "i8", None, lambda s: s.test_id),
            ("operator", "dict", Operator, lambda s: s.operator),
            ("direction", "dict", None, lambda s: s.direction),
            ("time_s", "f8", None, lambda s: s.time_s),
            ("mark_m", "f8", None, lambda s: s.mark_m),
            ("speed_mph", "f8", None, lambda s: s.speed_mph),
            ("region", "dict", RegionType, lambda s: s.region),
            ("timezone", "dict", Timezone, lambda s: s.timezone),
            ("tech", "dict", RadioTechnology, lambda s: s.tech),
            ("rsrp_dbm", "f8", None, lambda s: s.rsrp_dbm),
            ("mcs", "i8", None, lambda s: s.mcs),
            ("bler", "f8", None, lambda s: s.bler),
            ("n_ccs", "i8", None, lambda s: s.n_ccs),
            ("tput_mbps", "f8", None, lambda s: s.tput_mbps),
            ("server_kind", "dict", ServerKind, lambda s: s.server_kind),
            ("ho_count", "i8", None, lambda s: s.ho_count),
            ("static", "bool", None, lambda s: s.static),
        ],
        _build_tput,
    ),
    "rtt": _schema(
        "rtt",
        [
            ("test_id", "i8", None, lambda s: s.test_id),
            ("operator", "dict", Operator, lambda s: s.operator),
            ("time_s", "f8", None, lambda s: s.time_s),
            ("mark_m", "f8", None, lambda s: s.mark_m),
            ("speed_mph", "f8", None, lambda s: s.speed_mph),
            ("region", "dict", RegionType, lambda s: s.region),
            ("timezone", "dict", Timezone, lambda s: s.timezone),
            ("tech", "dict", RadioTechnology, lambda s: s.tech),
            ("rtt_ms", "f8", None, lambda s: s.rtt_ms),
            ("server_kind", "dict", ServerKind, lambda s: s.server_kind),
            ("static", "bool", None, lambda s: s.static),
        ],
        _build_rtt,
    ),
    "test": _schema(
        "test",
        [
            ("test_id", "i8", None, lambda t: t.test_id),
            ("test_type", "dict", TestType, lambda t: t.test_type),
            ("operator", "dict", Operator, lambda t: t.operator),
            ("start_time_s", "f8", None, lambda t: t.start_time_s),
            ("end_time_s", "f8", None, lambda t: t.end_time_s),
            ("start_mark_m", "f8", None, lambda t: t.start_mark_m),
            ("end_mark_m", "f8", None, lambda t: t.end_mark_m),
            ("server_kind", "dict", ServerKind, lambda t: t.server_kind),
            ("static", "bool", None, lambda t: t.static),
        ],
        _build_test,
    ),
    "ho": _schema(
        "ho",
        [
            ("test_id", "i8", None, lambda h: h.test_id),
            ("direction", "dict", None, lambda h: h.direction),
            ("operator", "dict", Operator, lambda h: h.event.operator),
            ("time_s", "f8", None, lambda h: h.event.time_s),
            ("mark_m", "f8", None, lambda h: h.event.mark_m),
            ("duration_ms", "f8", None, lambda h: h.event.duration_ms),
            ("from_cell", "dict", None, lambda h: _cell_to_str(h.event.from_cell)),
            ("to_cell", "dict", None, lambda h: _cell_to_str(h.event.to_cell)),
            ("from_tech", "dict", RadioTechnology, lambda h: h.event.from_tech),
            ("to_tech", "dict", RadioTechnology, lambda h: h.event.to_tech),
        ],
        _build_ho,
    ),
    "passive": _schema(
        "passive",
        [
            ("operator", "dict", Operator, lambda p: p.operator),
            ("start_m", "f8", None, lambda p: p.start_m),
            ("end_m", "f8", None, lambda p: p.end_m),
            ("tech", "dict", RadioTechnology, lambda p: p.tech),
            ("timezone", "dict", Timezone, lambda p: p.timezone),
            ("region", "dict", RegionType, lambda p: p.region),
        ],
        _build_passive,
        derived=[("length_m", "f8", lambda p: p.length_m)],
    ),
    "offload": _schema(
        "offload",
        [
            ("app", "dict", TestType, lambda r: r.app),
            ("test_id", "i8", None, lambda r: r.test_id),
            ("operator", "dict", Operator, lambda r: r.operator),
            ("server_kind", "dict", ServerKind, lambda r: r.server_kind),
            ("compression", "bool", None, lambda r: r.compression),
            ("mean_e2e_ms", "f8", None, lambda r: r.mean_e2e_ms),
            ("median_e2e_ms", "f8", None, lambda r: r.median_e2e_ms),
            ("offload_fps", "f8", None, lambda r: r.offload_fps),
            ("map_score", "f8", None, lambda r: r.map_score),
            ("ho_count", "i8", None, lambda r: r.ho_count),
            ("frac_hs5g", "f8", None, lambda r: r.frac_hs5g),
            ("static", "bool", None, lambda r: r.static),
            ("uplink_megabits", "f8", None, lambda r: r.uplink_megabits),
        ],
        _build_offload,
    ),
    "video": _schema(
        "video",
        [
            ("test_id", "i8", None, lambda r: r.test_id),
            ("operator", "dict", Operator, lambda r: r.operator),
            ("server_kind", "dict", ServerKind, lambda r: r.server_kind),
            ("qoe", "f8", None, lambda r: r.qoe),
            ("avg_bitrate_mbps", "f8", None, lambda r: r.avg_bitrate_mbps),
            ("rebuffer_ratio", "f8", None, lambda r: r.rebuffer_ratio),
            ("ho_count", "i8", None, lambda r: r.ho_count),
            ("frac_hs5g", "f8", None, lambda r: r.frac_hs5g),
            ("static", "bool", None, lambda r: r.static),
            ("downlink_megabits", "f8", None, lambda r: r.downlink_megabits),
        ],
        _build_video,
    ),
    "gaming": _schema(
        "gaming",
        [
            ("test_id", "i8", None, lambda r: r.test_id),
            ("operator", "dict", Operator, lambda r: r.operator),
            ("server_kind", "dict", ServerKind, lambda r: r.server_kind),
            ("avg_bitrate_mbps", "f8", None, lambda r: r.avg_bitrate_mbps),
            ("median_latency_ms", "f8", None, lambda r: r.median_latency_ms),
            ("p95_latency_ms", "f8", None, lambda r: r.p95_latency_ms),
            ("frame_drop_rate", "f8", None, lambda r: r.frame_drop_rate),
            ("ho_count", "i8", None, lambda r: r.ho_count),
            ("frac_hs5g", "f8", None, lambda r: r.frac_hs5g),
            ("static", "bool", None, lambda r: r.static),
            ("downlink_megabits", "f8", None, lambda r: r.downlink_megabits),
        ],
        _build_gaming,
    ),
}

#: Dataset attribute holding each table's records, in serialisation order.
TABLE_ATTRS: dict[str, str] = {
    "tput": "throughput_samples",
    "rtt": "rtt_samples",
    "test": "tests",
    "ho": "handovers",
    "passive": "passive_coverage",
    "offload": "offload_runs",
    "video": "video_runs",
    "gaming": "gaming_runs",
}
