"""Content-addressed shard cache shared across sweeps, seeds, and scales.

Every shard an engine run computes is a pure function of
``(config_fingerprint, shard_index, shard_seed)``; this cache stores shard
results under the SHA-256 of exactly that triple
(:func:`repro.engine.checkpoint.shard_key`), so *any* later run that plans
an identical shard — the same seed re-appearing in a different sweep, a
resumed campaign, a re-run at the same scale — replays it instead of
recomputing it.

On-disk layout (one entry per shard, fanned out by key prefix)::

    <cache_dir>/objects/<key[:2]>/<key>/
        data.ds.gz    shard-local dataset, gzipped JSON-lines
                      (byte-reproducible, atomic — campaign.persistence)
        meta.json     sidecar: fingerprint, seed, index, cell counts,
                      wall time, record count

Guarantees:

* **Atomic writes** — both files land via temp-file + ``os.replace``, and
  ``meta.json`` is written last, so a torn entry is never visible: an entry
  without a valid sidecar is simply a miss.
* **Safe reads** — a hit must match fingerprint, seed, *and* index; corrupt
  gzip/JSON or foreign entries are treated as absent.  A cache can make a
  run faster, never wrong.
* **LRU size bounding** — with ``max_bytes`` set, the store evicts
  least-recently-used entries (hits refresh recency) until the cache fits.
  Recency is stamped from a **logical clock** — strictly increasing, seeded
  at or above every existing entry's timestamp — so access order survives
  coarse-mtime filesystems (batch hits would otherwise tie and fall back to
  size order) and clock skew (an entry stamped in the future would otherwise
  outrank the shard that was *just* used).
* **Counters** — hits/misses/stores/evictions accumulate in
  :class:`CacheStats` for the sweep report.

The class implements the engine's ``ShardResultStore`` protocol, so it can
be plugged straight into :func:`repro.engine.run_engine` via
``shard_store=``.
"""

from __future__ import annotations

import json
import os
import pathlib
import shutil
import time
from dataclasses import dataclass
from typing import Sequence

from repro.campaign.persistence import load_dataset, save_dataset
from repro.engine.checkpoint import shard_from_parts, shard_key, shard_meta
from repro.engine.worker import ShardResult
from repro.errors import ReproError, SweepError
from repro.obs.metrics import MetricsRegistry

__all__ = ["CacheStats", "ShardCache"]

_DATA_NAME = "data.ds.gz"
_META_NAME = "meta.json"


@dataclass
class CacheStats:
    """Hit/miss accounting of one :class:`ShardCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def hit_ratio(self) -> float:
        """Hits over lookups; 0.0 before any lookup happened."""
        return self.hits / self.lookups if self.lookups else 0.0

    def to_obj(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "hit_ratio": round(self.hit_ratio(), 4),
        }


class ShardCache:
    """Content-addressed, LRU-bounded store of shard results on disk."""

    def __init__(
        self,
        directory: str | os.PathLike,
        max_bytes: int | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if max_bytes is not None and max_bytes <= 0:
            raise SweepError(f"max_bytes must be positive, got {max_bytes}")
        self.directory = pathlib.Path(directory)
        self.max_bytes = max_bytes
        self.stats = CacheStats()
        #: Logical recency clock (ns).  ``None`` until first use, then
        #: lazily seeded to the newest existing entry's mtime so every
        #: stamp this instance hands out outranks what is already on disk.
        self._recency_ns: int | None = None
        #: Optional ``repro.obs`` registry mirroring :attr:`stats` under
        #: ``cache.*`` counter names, so a traced sweep's report carries the
        #: same counts the cache itself saw (counted at source, not
        #: re-derived).  ``None`` keeps the untraced path allocation-free.
        self.metrics = metrics

    def _count(self, name: str, n: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.count(name, n)

    # -- addressing --------------------------------------------------------

    @staticmethod
    def key(fingerprint: str, index: int, seed: int) -> str:
        """Content address of one shard (see :func:`shard_key`)."""
        return shard_key(fingerprint, index, seed)

    def entry_dir(self, key: str) -> pathlib.Path:
        return self.directory / "objects" / key[:2] / key

    # -- read --------------------------------------------------------------

    def load(self, fingerprint: str, seed: int, index: int) -> ShardResult | None:
        """Replay one shard, or ``None`` (counted as a miss) if absent.

        A hit revalidates the sidecar against the full identity triple —
        a key collision or a foreign/corrupt entry can only produce a miss,
        never a wrong result — and refreshes the entry's LRU recency.
        """
        entry = self.entry_dir(self.key(fingerprint, index, seed))
        meta_path = entry / _META_NAME
        try:
            meta = json.loads(meta_path.read_text())
            if (
                meta.get("fingerprint") != fingerprint
                or meta.get("seed") != seed
                or meta.get("index") != index
            ):
                raise ValueError("cache entry does not match its address")
            dataset = load_dataset(entry / _DATA_NAME)
            result = shard_from_parts(index, meta, dataset)
        except (OSError, ValueError, KeyError, EOFError, ReproError):
            self.stats.misses += 1
            self._count("cache.misses")
            return None
        result.from_cache = True
        self._touch(meta_path)
        self.stats.hits += 1
        self._count("cache.hits")
        return result

    def load_many(
        self, fingerprint: str, seed: int, indices: Sequence[int]
    ) -> dict[int, ShardResult]:
        """Replay every shard among ``indices`` the cache can serve.

        One :meth:`load` per index — the *same* path single lookups take —
        so every batch hit counts toward the stats/metrics and refreshes
        LRU recency, with strictly increasing stamps in ``indices`` order:
        eviction never punishes an entry for arriving via a batch.
        """
        found: dict[int, ShardResult] = {}
        for index in indices:
            result = self.load(fingerprint, seed, index)
            if result is not None:
                found[index] = result
        return found

    # -- write -------------------------------------------------------------

    def store(self, fingerprint: str, seed: int, result: ShardResult) -> None:
        """Persist one shard result atomically, then enforce the size bound.

        Storing an already-present key simply rewrites the same bytes
        (datasets serialise byte-reproducibly), so last-write-wins races
        between concurrent sweeps sharing a cache directory are harmless.
        """
        entry = self.entry_dir(self.key(fingerprint, result.index, seed))
        entry.mkdir(parents=True, exist_ok=True)
        save_dataset(result.dataset, entry / _DATA_NAME)
        meta = shard_meta(result, fingerprint)
        meta["seed"] = seed
        meta_path = entry / _META_NAME
        tmp = meta_path.with_name(f"{_META_NAME}.{os.getpid()}.tmp")
        try:
            tmp.write_text(json.dumps(meta, sort_keys=True, indent=1))
            os.replace(tmp, meta_path)
        finally:
            tmp.unlink(missing_ok=True)
        # Stamp the fresh entry through the same logical clock hits use,
        # so stores and hits share one total recency order.
        self._touch(meta_path)
        self.stats.stores += 1
        self._count("cache.stores")
        if self.max_bytes is not None:
            self._evict(keep=entry)

    # -- bookkeeping -------------------------------------------------------

    def _next_recency_ns(self) -> int:
        """Next stamp of the logical recency clock, strictly increasing.

        Tracks ``max(wall clock, previous stamp + 1)``, seeded from the
        newest entry already on disk.  Two properties the raw wall clock
        lacks: consecutive accesses (e.g. the hits of one ``load_many``
        batch) never tie even on coarse-mtime filesystems, and an entry
        whose stored mtime lies in the future (clock skew, another host's
        writes) can never outrank a shard that was just used.
        """
        if self._recency_ns is None:
            existing = [ns for ns, _, _ in self._entries()]
            self._recency_ns = max(existing) if existing else 0
        self._recency_ns = max(time.time_ns(), self._recency_ns + 1)
        return self._recency_ns

    def _touch(self, path: pathlib.Path) -> None:
        try:
            stamp = self._next_recency_ns()
            os.utime(path, ns=(stamp, stamp))
        except OSError:
            pass  # recency refresh is best-effort

    def _entries(self) -> list[tuple[int, int, pathlib.Path]]:
        """All valid-looking entries as ``(last_use_ns, bytes, entry_dir)``."""
        objects = self.directory / "objects"
        entries = []
        for meta_path in objects.glob(f"*/*/{_META_NAME}"):
            entry = meta_path.parent
            try:
                mtime_ns = meta_path.stat().st_mtime_ns
                size = sum(p.stat().st_size for p in entry.iterdir())
            except OSError:
                continue  # concurrently evicted
            entries.append((mtime_ns, size, entry))
        return entries

    def total_bytes(self) -> int:
        """Disk footprint of every entry currently in the cache."""
        return sum(size for _, size, _ in self._entries())

    def __len__(self) -> int:
        return len(self._entries())

    def _evict(self, keep: pathlib.Path) -> None:
        """Drop LRU entries until the cache fits ``max_bytes``.

        The just-written entry is exempt, so a single oversized shard still
        caches (the bound is then best-effort) and a store can never evict
        its own result.
        """
        entries = sorted(self._entries())
        total = sum(size for _, size, _ in entries)
        for _, size, entry in entries:
            if total <= self.max_bytes:
                break
            if entry == keep:
                continue
            self._remove_entry(entry)
            total -= size
            self.stats.evictions += 1
            self._count("cache.evictions")

    def _remove_entry(self, entry: pathlib.Path) -> None:
        # Remove the sidecar first: a half-removed entry is invalid (a
        # miss), never a torn read.
        (entry / _META_NAME).unlink(missing_ok=True)
        shutil.rmtree(entry, ignore_errors=True)
