"""``python -m repro.sweep`` — run a replication sweep from the shell.

Examples::

    # 3-seed smoke sweep with a shared shard cache and a JSON report
    python -m repro.sweep --seeds 41,42,43 --scale 0.004 \\
        --no-apps --no-static --window-km 600 \\
        --cache-dir out/shard-cache --report out/sweep.json

    # list the registered paper statistics
    python -m repro.sweep --list-stats
"""

from __future__ import annotations

import argparse
import sys

from repro.engine import PlannerParams
from repro.errors import ReproError
from repro.sweep import SweepConfig, run_sweep
from repro.sweep.stats import get_statistic, registered_statistics


def _parse_seeds(text: str) -> tuple[int, ...]:
    try:
        return tuple(int(part) for part in text.split(",") if part.strip())
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"seeds must be a comma-separated list of integers, got {text!r}"
        ) from None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sweep",
        description="Multi-seed replication sweep with confidence intervals "
        "on every paper statistic.",
    )
    parser.add_argument(
        "--seeds", type=_parse_seeds, default=(41, 42, 43),
        help="comma-separated campaign seeds (default: 41,42,43)",
    )
    parser.add_argument(
        "--scale", type=float, default=0.05,
        help="active-testing duty cycle along the route (default: 0.05)",
    )
    parser.add_argument(
        "--no-apps", action="store_true", help="skip the §7 app workloads"
    )
    parser.add_argument(
        "--no-static", action="store_true", help="skip the static city baselines"
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="worker processes for the shared pool (default: CPU count)",
    )
    parser.add_argument(
        "--executor", choices=("process", "serial"), default="process"
    )
    parser.add_argument(
        "--window-km", type=float, default=None,
        help="override the planner's adaptive shard window length",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="shared content-addressed shard cache directory",
    )
    parser.add_argument(
        "--cache-max-bytes", type=int, default=None,
        help="LRU size bound of the cache (default: unbounded)",
    )
    parser.add_argument(
        "--report", default=None, help="write the JSON SweepReport here"
    )
    parser.add_argument(
        "--store", default=None, metavar="DIR",
        help="ingest every seed's dataset into a columnar store catalog "
        "at DIR (queryable with python -m repro.store)",
    )
    parser.add_argument(
        "--stats", type=lambda t: tuple(t.split(",")), default=None,
        help="comma-separated statistic names (default: all registered)",
    )
    parser.add_argument("--confidence", type=float, default=0.95)
    parser.add_argument("--bootstrap-samples", type=int, default=1000)
    parser.add_argument(
        "--validate", action="store_true",
        help="validate every per-seed dataset after merging",
    )
    parser.add_argument(
        "--trace", default=None, metavar="FILE",
        help="append a structured JSONL trace to FILE "
        "(summarize with python -m repro.obs FILE)",
    )
    parser.add_argument(
        "--list-stats", action="store_true",
        help="print the registered statistics and exit",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_stats:
        for name in registered_statistics():
            stat = get_statistic(name)
            unit = f" [{stat.unit}]" if stat.unit else ""
            print(f"{name:36s}{unit:12s} {stat.description}")
        return 0

    try:
        config = SweepConfig(
            seeds=args.seeds,
            scale=args.scale,
            include_apps=not args.no_apps,
            include_static=not args.no_static,
            workers=args.workers,
            executor=args.executor,
            planner=PlannerParams(window_km=args.window_km),
            cache_dir=args.cache_dir,
            cache_max_bytes=args.cache_max_bytes,
            report_path=args.report,
            statistics=args.stats,
            confidence=args.confidence,
            bootstrap_samples=args.bootstrap_samples,
            validate=args.validate,
            store_dir=args.store,
            trace_path=args.trace,
        )
        result = run_sweep(config)
    except ReproError as exc:
        print(f"sweep failed: {exc}", file=sys.stderr)
        return 1

    report = result.report
    print(
        f"swept {report.n_seeds} seeds at scale {report.scale} "
        f"({report.executor}, {report.workers} workers) "
        f"in {report.total_wall_s:.1f} s"
    )
    if report.cache is not None:
        c = report.cache
        print(
            f"cache: {c.hits} hits / {c.misses} misses "
            f"(ratio {c.hit_ratio():.2f}), {c.stores} stores, "
            f"{c.evictions} evictions"
        )
    pct = int(round(report.confidence * 100))
    print(f"\n{'statistic':36s} {'mean':>12s}   {pct}% CI")
    for s in report.statistics:
        print(
            f"{s.name:36s} {s.mean:12.4f}   "
            f"[{s.ci_low:.4f}, {s.ci_high:.4f}]  (n={s.n_seeds})"
        )
    if report.skipped_statistics:
        print(f"\nskipped (no finite values): {', '.join(report.skipped_statistics)}")
    if args.store:
        print(f"\ndatasets ingested into store catalog {args.store}")
    if args.report:
        print(f"\nreport written to {args.report}")
    if args.trace:
        print(f"\ntrace appended to {args.trace} "
              f"(summarize: python -m repro.obs {args.trace})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
