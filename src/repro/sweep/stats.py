"""Paper statistics over replicated datasets: registry + bootstrap CIs.

The paper reports single-drive point estimates; a sweep replicates the
campaign across seeds and turns every headline number into a distribution.
This module holds the two halves of that aggregation:

* a **registry of paper statistics** — named scalar functionals of one
  :class:`~repro.campaign.dataset.DriveDataset` (coverage fractions,
  throughput/RTT percentiles, handover rates, app QoE summaries), each tied
  to the figure/table it reproduces.  Downstream users can
  :func:`register_statistic` their own;
* a **seed-level aggregator** that evaluates each statistic once per seed
  and summarises the per-seed values as mean/median/std plus a
  **percentile-bootstrap confidence interval** on the mean (resampling
  seeds with replacement — the seed, not the sample, is the replication
  unit, so within-seed correlation never narrows the interval).

Statistics are evaluated defensively: a statistic that cannot be computed
on some seed's dataset (e.g. app QoE on an ``include_apps=False`` campaign)
yields ``NaN`` for that seed and is aggregated over the seeds that do have
it; statistics with no finite value anywhere are reported as skipped.

Bootstrap resampling is deterministic: the RNG is seeded from the statistic
name, so the same sweep always emits bit-identical intervals.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping

import numpy as np

from repro.analysis import coverage
from repro.analysis.handovers import handovers_per_mile
from repro.campaign.dataset import DriveDataset
from repro.errors import ReproError, SweepError
from repro.radio.operators import Operator

__all__ = [
    "PaperStatistic",
    "StatisticSummary",
    "bootstrap_ci",
    "evaluate_statistics",
    "evaluate_statistics_from_store",
    "get_statistic",
    "register_statistic",
    "register_store_evaluator",
    "registered_statistics",
    "store_supported_statistics",
    "summarize_statistic",
    "unregister_statistic",
]

#: Scalar functional of one dataset.
StatisticFn = Callable[[DriveDataset], float]


@dataclass(frozen=True)
class PaperStatistic:
    """One registered statistic: a named scalar view of a dataset."""

    name: str
    description: str
    unit: str
    fn: StatisticFn

    def evaluate(self, dataset: DriveDataset) -> float:
        """Evaluate on one dataset; ``NaN`` when not computable there."""
        try:
            value = float(self.fn(dataset))
        except (ReproError, ValueError, ZeroDivisionError):
            return math.nan
        return value if math.isfinite(value) else math.nan


_REGISTRY: dict[str, PaperStatistic] = {}


def register_statistic(
    name: str, description: str, unit: str, fn: StatisticFn
) -> PaperStatistic:
    """Add a statistic to the registry; names must be unique."""
    if name in _REGISTRY:
        raise SweepError(f"statistic {name!r} already registered")
    stat = PaperStatistic(name=name, description=description, unit=unit, fn=fn)
    _REGISTRY[name] = stat
    return stat


def unregister_statistic(name: str) -> None:
    """Remove a statistic (mainly for tests adding temporary ones)."""
    _REGISTRY.pop(name, None)


def registered_statistics() -> tuple[str, ...]:
    """All registered statistic names, in registration order."""
    return tuple(_REGISTRY)


def get_statistic(name: str) -> PaperStatistic:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise SweepError(
            f"unknown statistic {name!r}; known: {sorted(_REGISTRY)}"
        ) from None


def evaluate_statistics(
    dataset: DriveDataset, names: Iterable[str] | None = None
) -> dict[str, float]:
    """Evaluate the named (default: all) statistics on one dataset."""
    chosen = registered_statistics() if names is None else tuple(names)
    return {name: get_statistic(name).evaluate(dataset) for name in chosen}


# -- aggregation across seeds ------------------------------------------------


def _stat_rng(name: str) -> np.random.Generator:
    """Deterministic bootstrap RNG derived from the statistic name."""
    digest = hashlib.sha256(f"repro.sweep.stats:{name}".encode()).digest()
    return np.random.default_rng(int.from_bytes(digest[:8], "big"))


def bootstrap_ci(
    values: np.ndarray,
    confidence: float = 0.95,
    n_boot: int = 1000,
    rng: np.random.Generator | None = None,
) -> tuple[float, float]:
    """Percentile-bootstrap CI on the mean of ``values``.

    Resamples the values with replacement ``n_boot`` times and returns the
    ``(1±confidence)/2`` percentiles of the resampled means.  A single
    value carries no replication information, so the interval is
    ``(NaN, NaN)`` — a zero-width interval at the value would claim perfect
    certainty the data cannot support.
    """
    if not 0.0 < confidence < 1.0:
        raise SweepError(f"confidence must be in (0, 1), got {confidence}")
    if n_boot < 1:
        raise SweepError(f"n_boot must be >= 1, got {n_boot}")
    arr = np.asarray(values, dtype=float)
    if arr.size == 0 or not np.all(np.isfinite(arr)):
        raise SweepError("bootstrap requires a non-empty finite sample")
    if arr.size == 1:
        return math.nan, math.nan
    rng = rng or np.random.default_rng(0)
    idx = rng.integers(0, arr.size, size=(n_boot, arr.size))
    means = arr[idx].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    lo, hi = np.quantile(means, [alpha, 1.0 - alpha])
    return float(lo), float(hi)


def _round6(value: float) -> float | None:
    """JSON form of one summary float: ``None`` stands in for non-finite.

    ``json.dumps`` would otherwise emit bare ``NaN`` — a token strict JSON
    parsers reject — so single-seed summaries (``std``/CI are ``NaN`` by
    construction) would serialise to documents other tools cannot read.
    """
    return round(value, 6) if math.isfinite(value) else None


def _from_nullable(value) -> float:
    """Inverse of :func:`_round6`: ``None`` parses back to ``NaN``."""
    return math.nan if value is None else float(value)


@dataclass(frozen=True)
class StatisticSummary:
    """Cross-seed summary of one statistic, CI included.

    With a single contributing seed, ``std``/``ci_low``/``ci_high`` are
    ``NaN``: one replication cannot bound its own dispersion, and a
    zero-width interval would read as false certainty downstream.
    """

    name: str
    description: str
    unit: str
    confidence: float
    n_boot: int
    #: Seeds with a finite value, ascending, aligned with ``values``.
    seeds: tuple[int, ...]
    values: tuple[float, ...]
    mean: float
    median: float
    std: float
    ci_low: float
    ci_high: float

    @property
    def n_seeds(self) -> int:
        return len(self.seeds)

    def to_obj(self) -> dict:
        return {
            "name": self.name,
            "description": self.description,
            "unit": self.unit,
            "confidence": self.confidence,
            "n_boot": self.n_boot,
            "seeds": list(self.seeds),
            "values": [round(v, 6) for v in self.values],
            "mean": round(self.mean, 6),
            "median": round(self.median, 6),
            "std": _round6(self.std),
            "ci_low": _round6(self.ci_low),
            "ci_high": _round6(self.ci_high),
        }

    @classmethod
    def from_obj(cls, obj: dict) -> "StatisticSummary":
        """Parse the JSON form; unknown fields are ignored.

        The statistic's identity (name/seeds/values) and the interval are
        required; descriptive fields written by a newer schema version may
        be absent and fall back to defaults.
        """
        return cls(
            name=str(obj["name"]),
            description=str(obj.get("description", "")),
            unit=str(obj.get("unit", "")),
            confidence=float(obj.get("confidence", 0.95)),
            n_boot=int(obj.get("n_boot", 0)),
            seeds=tuple(int(s) for s in obj["seeds"]),
            values=tuple(float(v) for v in obj["values"]),
            mean=float(obj["mean"]),
            median=float(obj.get("median", obj["mean"])),
            std=_from_nullable(obj.get("std", 0.0)),
            ci_low=_from_nullable(obj["ci_low"]),
            ci_high=_from_nullable(obj["ci_high"]),
        )


def summarize_statistic(
    name: str,
    values_by_seed: Mapping[int, float],
    confidence: float = 0.95,
    n_boot: int = 1000,
) -> StatisticSummary | None:
    """Aggregate one statistic's per-seed values; ``None`` if none finite."""
    stat = get_statistic(name)
    pairs = sorted(
        (seed, value)
        for seed, value in values_by_seed.items()
        if math.isfinite(value)
    )
    if not pairs:
        return None
    seeds = tuple(seed for seed, _ in pairs)
    arr = np.asarray([value for _, value in pairs], dtype=float)
    lo, hi = bootstrap_ci(arr, confidence, n_boot, rng=_stat_rng(name))
    return StatisticSummary(
        name=name,
        description=stat.description,
        unit=stat.unit,
        confidence=confidence,
        n_boot=n_boot,
        seeds=seeds,
        values=tuple(float(v) for v in arr),
        mean=float(arr.mean()),
        median=float(np.median(arr)),
        std=float(arr.std(ddof=1)) if arr.size > 1 else math.nan,
        ci_low=lo,
        ci_high=hi,
    )


# -- built-in paper statistics ----------------------------------------------


def _quantile(values: np.ndarray, q: float) -> float:
    if values.size == 0:
        return math.nan
    return float(np.quantile(values, q))


def _dl(ds: DriveDataset, op: Operator) -> np.ndarray:
    return ds.tput_values(operator=op, direction="downlink", static=False)


def _register_builtins() -> None:
    for op in Operator:
        code = op.code

        register_statistic(
            f"coverage_5g_share_{code}",
            f"{op.label} passive 5G coverage share of route miles (Fig. 1)",
            "fraction",
            lambda ds, op=op: coverage.passive_coverage_shares(ds, op).share_5g,
        )
        register_statistic(
            f"coverage_hs5g_share_{code}",
            f"{op.label} high-speed 5G (midband+mmWave) share (Fig. 2a)",
            "fraction",
            lambda ds, op=op: (
                coverage.passive_coverage_shares(ds, op).share_high_speed_5g
            ),
        )
        register_statistic(
            f"driving_dl_median_mbps_{code}",
            f"{op.label} driving downlink median over 500 ms samples (Fig. 3b)",
            "Mbps",
            lambda ds, op=op: _quantile(_dl(ds, op), 0.5),
        )
        register_statistic(
            f"driving_ul_median_mbps_{code}",
            f"{op.label} driving uplink median over 500 ms samples (Fig. 3b)",
            "Mbps",
            lambda ds, op=op: _quantile(
                ds.tput_values(operator=op, direction="uplink", static=False), 0.5
            ),
        )
        register_statistic(
            f"driving_rtt_median_ms_{code}",
            f"{op.label} driving RTT median over ping samples (Fig. 3c)",
            "ms",
            lambda ds, op=op: _quantile(
                ds.rtt_values(operator=op, static=False), 0.5
            ),
        )
        register_statistic(
            f"handovers_per_mile_median_{code}",
            f"{op.label} median handovers per mile over DL tests (Fig. 11a)",
            "HO/mile",
            lambda ds, op=op: handovers_per_mile(ds, op, "downlink").median,
        )

    register_statistic(
        "driving_dl_below_5mbps_fraction",
        "Fraction of driving DL samples below 5 Mbps, all operators (§5.1)",
        "fraction",
        lambda ds: float(
            np.mean(ds.tput_values(direction="downlink", static=False) < 5.0)
        ),
    )
    register_statistic(
        "driving_rtt_p95_ms",
        "95th percentile driving RTT, all operators (Fig. 3c tail)",
        "ms",
        lambda ds: _quantile(ds.rtt_values(static=False), 0.95),
    )
    register_statistic(
        "unique_cells_total",
        "Distinct cells connected across all operators (Table 1)",
        "cells",
        lambda ds: float(sum(ds.connected_cells.values())),
    )
    register_statistic(
        "passive_handovers_total",
        "Trip-wide passive handover count across operators (Table 1)",
        "handovers",
        lambda ds: float(sum(ds.passive_handover_counts.values())),
    )
    register_statistic(
        "ar_e2e_median_ms",
        "Median AR offloading end-to-end latency while driving (Fig. 13)",
        "ms",
        lambda ds: _quantile(
            np.asarray(
                [r.median_e2e_ms for r in ds.offload_runs
                 if r.app.name == "AR" and not r.static],
                dtype=float,
            ),
            0.5,
        ),
    )
    register_statistic(
        "cav_e2e_median_ms",
        "Median CAV offloading end-to-end latency while driving (Fig. 14)",
        "ms",
        lambda ds: _quantile(
            np.asarray(
                [r.median_e2e_ms for r in ds.offload_runs
                 if r.app.name == "CAV" and not r.static],
                dtype=float,
            ),
            0.5,
        ),
    )
    register_statistic(
        "video_qoe_median",
        "Median 360° video QoE while driving (Fig. 15)",
        "QoE",
        lambda ds: _quantile(
            np.asarray(
                [r.qoe for r in ds.video_runs if not r.static], dtype=float
            ),
            0.5,
        ),
    )
    register_statistic(
        "gaming_bitrate_median_mbps",
        "Median cloud-gaming bitrate while driving (Fig. 16)",
        "Mbps",
        lambda ds: _quantile(
            np.asarray(
                [r.avg_bitrate_mbps for r in ds.gaming_runs if not r.static],
                dtype=float,
            ),
            0.5,
        ),
    )


_register_builtins()


# -- store-side evaluation ----------------------------------------------------
#
# A statistic evaluated through :mod:`repro.store.query` never materialises
# row objects: predicates push into column stats and only the projected
# column is decoded.  Not every registered statistic is query-expressible
# (e.g. handovers-per-mile needs a per-test join), so store evaluators form
# a parallel, partial registry over the same names — values are identical
# to the row path on the same data.

#: Evaluator over a store source: ``fn(source, seeds) -> float``.
StoreStatisticFn = Callable[..., float]

_STORE_EVALUATORS: dict[str, StoreStatisticFn] = {}


def register_store_evaluator(name: str, fn: StoreStatisticFn) -> None:
    """Attach a store-side evaluator to a registered statistic."""
    get_statistic(name)  # fail fast on unknown names
    _STORE_EVALUATORS[name] = fn


def store_supported_statistics() -> tuple[str, ...]:
    """Statistic names evaluable through the columnar query engine."""
    return tuple(_STORE_EVALUATORS)


def evaluate_statistics_from_store(
    source,
    names: Iterable[str] | None = None,
    *,
    seeds: tuple[int, ...] | None = None,
) -> dict[str, float]:
    """Evaluate statistics on a store source (reader or catalog).

    ``names`` defaults to every store-supported statistic; naming one
    without a store evaluator raises :class:`SweepError`.  Like the row
    path, a statistic that cannot be computed on this data yields ``NaN``.
    """
    chosen = store_supported_statistics() if names is None else tuple(names)
    out: dict[str, float] = {}
    for name in chosen:
        fn = _STORE_EVALUATORS.get(name)
        if fn is None:
            get_statistic(name)  # unknown name beats unsupported name
            raise SweepError(
                f"statistic {name!r} has no store evaluator; "
                f"supported: {sorted(_STORE_EVALUATORS)}"
            )
        try:
            value = float(fn(source, seeds))
        except (ReproError, ValueError, ZeroDivisionError):
            value = math.nan
        out[name] = value if math.isfinite(value) else math.nan
    return out


def _meta_total(source, attr: str, seeds: tuple[int, ...] | None) -> float:
    """Sum a per-operator metadata counter over the selected partitions."""
    from repro.store.catalog import Catalog

    readers = source.readers(seeds) if isinstance(source, Catalog) else [source]
    return float(sum(sum(getattr(r, attr).values()) for r in readers))


def _register_store_builtins() -> None:
    from repro.analysis.coverage import passive_coverage_shares_from_store

    def q():
        from repro.store import query

        return query

    for op in Operator:
        code = op.code

        register_store_evaluator(
            f"coverage_5g_share_{code}",
            lambda src, seeds, op=op: passive_coverage_shares_from_store(
                src, op, seeds=seeds
            ).share_5g,
        )
        register_store_evaluator(
            f"coverage_hs5g_share_{code}",
            lambda src, seeds, op=op: passive_coverage_shares_from_store(
                src, op, seeds=seeds
            ).share_high_speed_5g,
        )
        for direction in ("downlink", "uplink"):
            register_store_evaluator(
                f"driving_{direction[0]}l_median_mbps_{code}",
                lambda src, seeds, op=op, d=direction: q().percentile(
                    src, "tput", "tput_mbps", 0.5,
                    where=(
                        q().Eq("operator", op),
                        q().Eq("direction", d),
                        q().Eq("static", False),
                    ),
                    seeds=seeds,
                ),
            )
        register_store_evaluator(
            f"driving_rtt_median_ms_{code}",
            lambda src, seeds, op=op: q().percentile(
                src, "rtt", "rtt_ms", 0.5,
                where=(q().Eq("operator", op), q().Eq("static", False)),
                seeds=seeds,
            ),
        )

    def _below_5mbps(src, seeds) -> float:
        query = q()
        driving_dl = (query.Eq("direction", "downlink"), query.Eq("static", False))
        total = query.count(src, "tput", driving_dl, seeds=seeds)
        if total == 0:
            return math.nan
        below = query.count(
            src, "tput",
            driving_dl + (query.Between("tput_mbps", hi=5.0, hi_inclusive=False),),
            seeds=seeds,
        )
        return below / total

    register_store_evaluator("driving_dl_below_5mbps_fraction", _below_5mbps)
    register_store_evaluator(
        "driving_rtt_p95_ms",
        lambda src, seeds: q().percentile(
            src, "rtt", "rtt_ms", 0.95,
            where=(q().Eq("static", False),), seeds=seeds,
        ),
    )
    register_store_evaluator(
        "unique_cells_total",
        lambda src, seeds: _meta_total(src, "connected_cells", seeds),
    )
    register_store_evaluator(
        "passive_handovers_total",
        lambda src, seeds: _meta_total(src, "passive_handover_counts", seeds),
    )
    for app in ("AR", "CAV"):
        register_store_evaluator(
            f"{app.lower()}_e2e_median_ms",
            lambda src, seeds, app=app: q().percentile(
                src, "offload", "median_e2e_ms", 0.5,
                where=(q().Eq("app", app), q().Eq("static", False)),
                seeds=seeds,
            ),
        )
    register_store_evaluator(
        "video_qoe_median",
        lambda src, seeds: q().percentile(
            src, "video", "qoe", 0.5,
            where=(q().Eq("static", False),), seeds=seeds,
        ),
    )
    register_store_evaluator(
        "gaming_bitrate_median_mbps",
        lambda src, seeds: q().percentile(
            src, "gaming", "avg_bitrate_mbps", 0.5,
            where=(q().Eq("static", False),), seeds=seeds,
        ),
    )


_register_store_builtins()
