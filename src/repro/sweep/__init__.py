"""repro.sweep — multi-seed replication sweeps with cached shards and CIs.

The paper's findings are single-drive point estimates; this subsystem
replicates the whole campaign across many seeds and reports a confidence
interval for every paper statistic, the way large measurement platforms
aggregate repeated vantage-point runs.  It is built directly on the
:mod:`repro.engine` execution core:

1. the **driver** (:func:`run_sweep`) plans one shard set per seed, then
   interleaves *all* seeds' shard batches through a single shared
   :class:`~repro.engine.WorkerPool` — seed boundaries never serialise the
   pipeline, and no per-seed pool is ever spun up;
2. the **content-addressed shard cache** (:mod:`repro.sweep.cache`) sits
   under the executor: shards are keyed on ``(config_fingerprint,
   shard_index, shard_seed)``, so repeated sweeps — the same seeds again, a
   superset of seeds, a resumed run — replay overlapping shards instead of
   recomputing them, with LRU size bounding and hit/miss counters;
3. the **statistics layer** (:mod:`repro.sweep.stats`) evaluates a registry
   of paper statistics on each seed's merged dataset and aggregates them
   into mean/median/std plus percentile-bootstrap confidence intervals;
4. the **report** (:mod:`repro.sweep.report`) serialises the whole sweep —
   per-seed wall time and cache hit ratio, cache-wide counters, and every
   interval — to versioned JSON, mirroring the engine's ``EngineReport``.

Determinism carries over unchanged: each seed's dataset is bit-identical to
a standalone ``run_engine`` of that seed, whether its shards were computed,
interleaved with other seeds, or replayed from cache.

Quickstart::

    from repro.sweep import SweepConfig, run_sweep

    result = run_sweep(SweepConfig(
        seeds=tuple(range(42, 52)), scale=0.05, cache_dir="out/shard-cache",
    ))
    ci = result.report.statistic("coverage_5g_share_T")
    print(f"T-Mobile 5G coverage: {ci.mean:.1%} "
          f"[{ci.ci_low:.1%}, {ci.ci_high:.1%}] over {ci.n_seeds} seeds")

Or from the command line::

    python -m repro.sweep --seeds 42,43,44 --scale 0.05 --cache-dir cache/
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Hashable

from repro.campaign.dataset import DriveDataset
from repro.campaign.runner import CampaignConfig
from repro.campaign.validation import validate_dataset
from repro.engine import (
    EngineConfig,
    EngineReport,
    PlannerParams,
    WorkerPool,
    build_task_batches,
    execute_jobs,
)
from repro.engine.checkpoint import config_fingerprint
from repro.engine.merge import merge_shard_results
from repro.engine.metrics import ShardMetrics
from repro.engine.planner import PASSIVE_SHARD_INDEX, ShardPlan, plan_campaign
from repro.engine.worker import ShardResult, ShardTask
from repro.errors import EngineError, SweepError
from repro.geo.route import Route, build_cross_country_route
from repro.obs.metrics import MetricsRegistry, merge_snapshots
from repro.obs.trace import get_tracer
from repro.sweep.cache import CacheStats, ShardCache
from repro.sweep.report import SeedRunMetrics, SweepReport
from repro.sweep.stats import (
    evaluate_statistics,
    get_statistic,
    registered_statistics,
    summarize_statistic,
)

__all__ = [
    "CacheStats",
    "SeedRunMetrics",
    "ShardCache",
    "SweepConfig",
    "SweepReport",
    "SweepResult",
    "run_sweep",
]


@dataclass(frozen=True)
class SweepConfig:
    """Configuration of one multi-seed replication sweep."""

    #: Seeds to replicate the campaign under; order defines report order.
    seeds: tuple[int, ...]
    #: Campaign knobs, applied identically to every seed.
    scale: float = 1.0
    include_apps: bool = True
    include_static: bool = True
    #: Execution topology — one shared pool for the whole sweep.
    workers: int | None = None
    shards: int | None = None
    executor: str = "process"
    planner: PlannerParams = field(default_factory=PlannerParams)
    #: Shared shard-cache directory; ``None`` disables caching.
    cache_dir: str | None = None
    #: LRU size bound of the cache in bytes; ``None`` means unbounded.
    cache_max_bytes: int | None = None
    max_retries: int = 2
    #: Where to write the JSON :class:`SweepReport`; ``None`` skips it.
    report_path: str | None = None
    #: Statistic names to aggregate; ``None`` means every registered one.
    statistics: tuple[str, ...] | None = None
    confidence: float = 0.95
    bootstrap_samples: int = 1000
    #: Validate every per-seed merged dataset and raise on issues.
    validate: bool = False
    #: Columnar store catalog directory (:class:`repro.store.Catalog`);
    #: every seed's merged dataset is ingested as one partition.  ``None``
    #: skips ingestion.
    store_dir: str | None = None
    #: JSONL trace file (see :mod:`repro.obs`): the sweep's phase spans,
    #: per-seed plan/merge spans, worker shard spans, and cache counters
    #: all append there, and ``SweepReport.metrics`` is populated.
    #: ``None`` (the default) disables tracing entirely.
    trace_path: str | None = None

    def __post_init__(self) -> None:
        if not self.seeds:
            raise SweepError("a sweep needs at least one seed")
        if len(set(self.seeds)) != len(self.seeds):
            raise SweepError(f"duplicate seeds in {self.seeds}")
        if self.executor not in ("process", "serial"):
            raise SweepError(f"unknown executor {self.executor!r}")
        if not 0.0 < self.confidence < 1.0:
            raise SweepError(f"confidence must be in (0, 1), got {self.confidence}")
        if self.bootstrap_samples < 1:
            raise SweepError("bootstrap_samples must be >= 1")
        if self.statistics is not None:
            for name in self.statistics:
                get_statistic(name)  # fail fast on unknown names

    def campaign_config(self, seed: int) -> CampaignConfig:
        return CampaignConfig(
            seed=seed,
            scale=self.scale,
            include_apps=self.include_apps,
            include_static=self.include_static,
        )


@dataclass
class SweepResult:
    """Everything a sweep produced, keyed by seed where applicable."""

    #: Per-seed merged datasets, bit-identical to standalone engine runs.
    datasets: dict[int, DriveDataset]
    #: Per-seed engine-style reports (shard metrics, cache hits, walls).
    engine_reports: dict[int, EngineReport]
    #: The sweep-level report (statistics + cache counters).
    report: SweepReport
    #: The live cache used, if any (its ``stats`` cover this sweep only).
    cache: ShardCache | None = None


def run_sweep(config: SweepConfig, route: Route | None = None) -> SweepResult:
    """Replicate one campaign across seeds and aggregate the statistics.

    Plans each seed's shard set, replays every shard the cache can serve,
    interleaves all remaining batches round-robin across seeds through one
    shared executor, merges each seed's shards into its dataset, and
    bootstraps confidence intervals for the registered paper statistics.
    Raises :class:`EngineError` if any shard exhausts its retry budget, and
    :class:`SweepError` for configuration problems.
    """
    tracer = get_tracer(config.trace_path)
    registry = MetricsRegistry() if tracer.enabled else None
    started = time.perf_counter()
    with tracer.span(
        "sweep.run",
        seeds=len(config.seeds),
        scale=config.scale,
        executor=config.executor,
    ) as root:
        campaign_route = route or build_cross_country_route()
        cache = (
            ShardCache(config.cache_dir, config.cache_max_bytes, metrics=registry)
            if config.cache_dir is not None
            else None
        )

        # -- plan every seed, replaying whatever the cache can serve ------
        engine_cfgs: dict[int, EngineConfig] = {}
        plans: dict[int, ShardPlan] = {}
        fingerprints: dict[int, str] = {}
        results: dict[int, dict[int, ShardResult]] = {}
        retries: dict[int, dict[int, int]] = {}
        hits: dict[int, int] = {}
        pendings: dict[int, list] = {}
        passives: dict[int, bool] = {}
        seed_batches: dict[int, list[tuple[ShardTask, ...]]] = {}

        for seed in config.seeds:
            with tracer.span("sweep.plan", seed=seed) as plan_span:
                engine_cfg = EngineConfig(
                    campaign=config.campaign_config(seed),
                    workers=config.workers,
                    shards=config.shards,
                    executor=config.executor,
                    planner=config.planner,
                    max_retries=config.max_retries,
                    trace_path=config.trace_path,
                )
                plan = plan_campaign(
                    engine_cfg.campaign, campaign_route, config.planner
                )
                fingerprint = config_fingerprint(engine_cfg.campaign, plan)
                indices = [PASSIVE_SHARD_INDEX] + [w.index for w in plan.windows]

                seed_results: dict[int, ShardResult] = {}
                if cache is not None:
                    seed_results.update(cache.load_many(fingerprint, seed, indices))
                plan_span.set(shards=len(indices), cache_hits=len(seed_results))

            engine_cfgs[seed] = engine_cfg
            plans[seed] = plan
            fingerprints[seed] = fingerprint
            results[seed] = seed_results
            retries[seed] = {index: 0 for index in seed_results}
            hits[seed] = len(seed_results)
            pendings[seed] = [
                w for w in plan.windows if w.index not in seed_results
            ]
            passives[seed] = PASSIVE_SHARD_INDEX not in seed_results

        def on_result(
            tag: Hashable, outcomes: list[ShardResult], attempt: int
        ) -> None:
            seed, _position = tag
            for outcome in outcomes:
                results[seed][outcome.index] = outcome
                retries[seed][outcome.index] = attempt
                if cache is not None:
                    cache.store(fingerprints[seed], seed, outcome)

        # -- interleave all seeds' batches through one shared executor ----
        # Round-robin across seeds so no seed's tail straggles behind
        # another seed's entire campaign, and early seeds produce complete
        # datasets (hence statistics) even while later seeds still execute.
        with tracer.span("sweep.execute") as exec_span:
            for seed in config.seeds:
                seed_batches[seed] = build_task_batches(
                    engine_cfgs[seed], plans[seed], pendings[seed],
                    passives[seed], fingerprints[seed], route,
                    trace_parent=exec_span.span_id,
                )
            jobs: list[tuple[Hashable, tuple[ShardTask, ...]]] = []
            depth = max((len(b) for b in seed_batches.values()), default=0)
            for position in range(depth):
                for seed in config.seeds:
                    if position < len(seed_batches[seed]):
                        jobs.append(((seed, position), seed_batches[seed][position]))
            exec_span.set(jobs=len(jobs))

            # One pool for the entire sweep: execute_jobs leaves a borrowed
            # pool running, so even future multi-call drivers would reuse
            # this handle.
            with WorkerPool(config.workers or os.cpu_count() or 1) as pool:
                stats = execute_jobs(
                    jobs,
                    on_result,
                    executor=config.executor,
                    workers=config.workers,
                    max_retries=config.max_retries,
                    pool=pool,
                )

        # -- merge, validate, and report every seed -----------------------
        catalog = None
        if config.store_dir is not None:
            from repro.store.catalog import Catalog

            catalog = Catalog(config.store_dir)
        datasets: dict[int, DriveDataset] = {}
        engine_reports: dict[int, EngineReport] = {}
        seed_runs: list[SeedRunMetrics] = []
        for seed in config.seeds:
            plan = plans[seed]
            merge_started = time.perf_counter()
            with tracer.span("sweep.merge", seed=seed) as merge_span:
                dataset = merge_shard_results(
                    engine_cfgs[seed].campaign,
                    plan,
                    results[seed],
                    campaign_route.total_length_km,
                )
                merge_s = time.perf_counter() - merge_started
                # The trace and the per-seed report quote the same float.
                merge_span.dur_s = merge_s
            if config.validate:
                outcome = validate_dataset(dataset)
                if not outcome.ok:
                    raise EngineError(
                        f"seed {seed} dataset failed validation: "
                        + "; ".join(str(issue) for issue in outcome.issues[:5])
                    )
            datasets[seed] = dataset
            if catalog is not None:
                with tracer.span("sweep.ingest", seed=seed):
                    catalog.ingest(dataset, seed=seed)

            window_span = {w.index: (w.start_m, w.end_m) for w in plan.windows}
            window_span[PASSIVE_SHARD_INDEX] = (0.0, campaign_route.total_length_m)
            report = EngineReport(
                executor=stats.executor,
                workers=stats.workers,
                n_windows=plan.n_windows,
                n_batches=len(seed_batches[seed]),
                cache_hits=hits[seed],
                cache_misses=(plan.n_windows + 1 - hits[seed]) if cache else 0,
                validated=config.validate,
                merge_s=merge_s,
            )
            report.shards = [
                ShardMetrics(
                    index=index,
                    start_km=window_span[index][0] / 1000.0,
                    end_km=window_span[index][1] / 1000.0,
                    wall_s=result.wall_s,
                    records=result.records,
                    retries=retries[seed].get(index, 0),
                    from_checkpoint=result.from_checkpoint,
                    from_cache=result.from_cache,
                )
                for index, result in sorted(results[seed].items())
            ]
            report.total_wall_s = report.shard_wall_s
            engine_reports[seed] = report

            seed_runs.append(
                SeedRunMetrics(
                    seed=seed,
                    fingerprint=fingerprints[seed],
                    compute_wall_s=report.shard_wall_s,
                    records=report.total_records,
                    n_shards=plan.n_windows + 1,
                    cache_hits=report.cache_hits,
                    cache_misses=report.cache_misses,
                    retries=report.total_retries,
                )
            )
        if catalog is not None:
            catalog.close()

        # -- aggregate the paper statistics across seeds ------------------
        with tracer.span("sweep.stats"):
            names = (
                tuple(config.statistics)
                if config.statistics is not None
                else registered_statistics()
            )
            values: dict[str, dict[int, float]] = {name: {} for name in names}
            for seed in config.seeds:
                per_seed = evaluate_statistics(datasets[seed], names)
                for name, value in per_seed.items():
                    values[name][seed] = value

            summaries = []
            skipped = []
            for name in names:
                summary = summarize_statistic(
                    name, values[name], config.confidence,
                    config.bootstrap_samples,
                )
                if summary is None:
                    skipped.append(name)
                else:
                    summaries.append(summary)

        merged_metrics = None
        if registry is not None:
            registry.count("sweep.seeds", len(config.seeds))
            registry.count("sweep.pool_rebuilds", stats.pool_rebuilds)
            registry.count(
                "sweep.retries", sum(sum(r.values()) for r in retries.values())
            )
            # Fold per-worker shard snapshots in report order (seed order,
            # then shard index) so the merged section is identical for any
            # executor topology.  Replayed shards fold too — cache/checkpoint
            # sidecars persist the snapshot of the computation that produced
            # them, and each (seed, index) appears exactly once — so a warm
            # sweep reports the same shard-level totals as a cold one.
            merged_metrics = merge_snapshots(
                [registry.snapshot()]
                + [
                    result.metrics
                    for seed in config.seeds
                    for _, result in sorted(results[seed].items())
                    if result.metrics is not None
                ]
            )
            tracer.emit_metrics(merged_metrics, scope="sweep")

        # total_wall_s and the root span must quote the SAME float, so the
        # per-phase breakdown printed by ``python -m repro.obs`` sums to
        # the report total exactly.
        total_wall_s = time.perf_counter() - started
        root.dur_s = total_wall_s

        sweep_report = SweepReport(
            seeds=tuple(config.seeds),
            scale=config.scale,
            executor=stats.executor,
            workers=stats.workers,
            n_windows=max(p.n_windows for p in plans.values()),
            confidence=config.confidence,
            bootstrap_samples=config.bootstrap_samples,
            seed_runs=seed_runs,
            statistics=summaries,
            skipped_statistics=skipped,
            cache=cache.stats if cache is not None else None,
            total_wall_s=total_wall_s,
            pool_rebuilds=stats.pool_rebuilds,
            metrics=merged_metrics,
        )
    if config.report_path is not None:
        sweep_report.save(config.report_path)

    return SweepResult(
        datasets=datasets,
        engine_reports=engine_reports,
        report=sweep_report,
        cache=cache,
    )
