"""The sweep report: one JSON document describing a whole replication sweep.

Mirrors :class:`~repro.engine.metrics.EngineReport` one level up: where the
engine report describes one campaign's shards, the sweep report describes
one sweep's seeds — per-seed wall time, record counts, and cache hit/miss
splits — plus the cache-wide counters and the aggregated
mean/median/std/CI summary of every paper statistic.  ``schema_version``
lets campaign farms scraping report directories detect format drift, and
:meth:`SweepReport.from_obj` round-trips the JSON form.
"""

from __future__ import annotations

import json
import os
import pathlib
from dataclasses import dataclass, field

from repro.sweep.cache import CacheStats
from repro.sweep.stats import StatisticSummary

__all__ = ["SeedRunMetrics", "SweepReport", "SWEEP_SCHEMA_VERSION"]

#: Version of the sweep report JSON format; bump on any field change.
#: History: 1 = initial sweep report; 2 = timings at full precision (must
#: reconcile exactly with trace-derived sums — see ``repro.obs``) and the
#: optional run-level ``metrics`` snapshot.
SWEEP_SCHEMA_VERSION = 2


@dataclass(frozen=True, slots=True)
class SeedRunMetrics:
    """Execution statistics of one seed's replication inside a sweep."""

    seed: int
    fingerprint: str
    #: Summed per-shard compute time.  Seeds interleave through one shared
    #: pool, so a per-seed *elapsed* time is meaningless; this is the CPU
    #: cost the seed added (0.0 when fully served from cache).
    compute_wall_s: float
    records: int
    n_shards: int
    cache_hits: int
    cache_misses: int
    retries: int

    def cache_hit_ratio(self) -> float:
        looked_up = self.cache_hits + self.cache_misses
        return self.cache_hits / looked_up if looked_up else 0.0

    def to_obj(self) -> dict:
        # Timings are serialised at full precision (same policy as
        # ``ShardMetrics.to_obj``): trace-derived sums must reconcile with
        # report fields exactly, not to within rounding error.
        return {
            "seed": self.seed,
            "fingerprint": self.fingerprint,
            "compute_wall_s": self.compute_wall_s,
            "records": self.records,
            "n_shards": self.n_shards,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_ratio": round(self.cache_hit_ratio(), 4),
            "retries": self.retries,
        }

    @classmethod
    def from_obj(cls, obj: dict) -> "SeedRunMetrics":
        """Parse the JSON form; unknown fields are ignored.

        Only ``seed`` and ``fingerprint`` are required, so entries written
        by a newer schema version still parse with defaults filling in.
        """
        return cls(
            seed=int(obj["seed"]),
            fingerprint=str(obj["fingerprint"]),
            compute_wall_s=float(obj.get("compute_wall_s", 0.0)),
            records=int(obj.get("records", 0)),
            n_shards=int(obj.get("n_shards", 0)),
            cache_hits=int(obj.get("cache_hits", 0)),
            cache_misses=int(obj.get("cache_misses", 0)),
            retries=int(obj.get("retries", 0)),
        )


@dataclass
class SweepReport:
    """Everything observable about one multi-seed replication sweep."""

    seeds: tuple[int, ...]
    scale: float
    executor: str
    workers: int
    n_windows: int
    confidence: float
    bootstrap_samples: int
    seed_runs: list[SeedRunMetrics] = field(default_factory=list)
    statistics: list[StatisticSummary] = field(default_factory=list)
    #: Statistics with no finite value on any seed (e.g. app QoE when the
    #: sweep ran with ``include_apps=False``) — reported, not silently lost.
    skipped_statistics: list[str] = field(default_factory=list)
    cache: CacheStats | None = None
    total_wall_s: float = 0.0
    pool_rebuilds: int = 0
    #: Optional merged metrics snapshot (``repro.obs.metrics`` shape);
    #: populated only when the sweep was traced.
    metrics: dict | None = None

    @property
    def n_seeds(self) -> int:
        return len(self.seeds)

    @property
    def total_records(self) -> int:
        return sum(r.records for r in self.seed_runs)

    def cache_hit_ratio(self) -> float:
        """Hits over lookups across every seed; 0.0 without a cache."""
        hits = sum(r.cache_hits for r in self.seed_runs)
        looked_up = hits + sum(r.cache_misses for r in self.seed_runs)
        return hits / looked_up if looked_up else 0.0

    def statistic(self, name: str) -> StatisticSummary:
        """Look up one aggregated statistic by name."""
        for summary in self.statistics:
            if summary.name == name:
                return summary
        raise KeyError(name)

    def to_obj(self) -> dict:
        obj = {
            "schema_version": SWEEP_SCHEMA_VERSION,
            "seeds": list(self.seeds),
            "n_seeds": self.n_seeds,
            "scale": self.scale,
            "executor": self.executor,
            "workers": self.workers,
            "n_windows": self.n_windows,
            "confidence": self.confidence,
            "bootstrap_samples": self.bootstrap_samples,
            "total_wall_s": self.total_wall_s,
            "pool_rebuilds": self.pool_rebuilds,
            "total_records": self.total_records,
            "cache_hit_ratio": round(self.cache_hit_ratio(), 4),
            "cache": self.cache.to_obj() if self.cache is not None else None,
            "seed_runs": [r.to_obj() for r in self.seed_runs],
            "statistics": [s.to_obj() for s in self.statistics],
            "skipped_statistics": list(self.skipped_statistics),
        }
        if self.metrics is not None:
            obj["metrics"] = self.metrics
        return obj

    @classmethod
    def from_obj(cls, obj: dict) -> "SweepReport":
        """Rebuild a report from its JSON form (derived fields recomputed).

        Tolerant of **newer** schema versions: fields this build doesn't
        know are ignored, and auxiliary fields fall back to defaults —
        only the sweep's identity (seeds/scale/executor/workers) and the
        aggregation parameters are required.  Scrapers that need strict
        parsing should compare ``schema_version`` themselves.
        """
        cache_obj = obj.get("cache")
        cache = None
        if cache_obj is not None:
            cache = CacheStats(
                hits=int(cache_obj.get("hits", 0)),
                misses=int(cache_obj.get("misses", 0)),
                stores=int(cache_obj.get("stores", 0)),
                evictions=int(cache_obj.get("evictions", 0)),
            )
        return cls(
            seeds=tuple(int(s) for s in obj["seeds"]),
            scale=float(obj["scale"]),
            executor=str(obj["executor"]),
            workers=int(obj["workers"]),
            n_windows=int(obj["n_windows"]),
            confidence=float(obj["confidence"]),
            bootstrap_samples=int(obj["bootstrap_samples"]),
            seed_runs=[
                SeedRunMetrics.from_obj(r) for r in obj.get("seed_runs", [])
            ],
            statistics=[
                StatisticSummary.from_obj(s) for s in obj.get("statistics", [])
            ],
            skipped_statistics=[
                str(n) for n in obj.get("skipped_statistics", [])
            ],
            cache=cache,
            total_wall_s=float(obj.get("total_wall_s", 0.0)),
            pool_rebuilds=int(obj.get("pool_rebuilds", 0)),
            metrics=obj.get("metrics"),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_obj(), indent=2, sort_keys=True)

    def save(self, path: str | os.PathLike) -> None:
        """Write the report as JSON, atomically."""
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        try:
            tmp.write_text(self.to_json() + "\n")
            os.replace(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)
