"""The four continental-US timezones the trip crossed.

The paper partitions several analyses (coverage Fig. 2c, throughput Fig. 5)
by timezone, and the log-synchronisation software must reconcile timestamps
recorded in UTC, local time, and EDT (XCAL's internal convention) as the
testbed physically moved between zones.

We approximate the timezone boundaries along the I-15/I-70/I-80/I-90 corridor
with longitude cut lines, which is exact for every city visited on the trip.
"""

from __future__ import annotations

import enum
from datetime import timedelta


class Timezone(enum.Enum):
    """A continental-US timezone, with its UTC offset under summer (DST) time.

    The trip ran 08/08/2022–08/15/2022, entirely under daylight-saving time,
    so each zone carries its DST offset.
    """

    PACIFIC = ("Pacific", -7)
    MOUNTAIN = ("Mountain", -6)
    CENTRAL = ("Central", -5)
    EASTERN = ("Eastern", -4)

    def __init__(self, label: str, utc_offset_hours: int) -> None:
        self.label = label
        self.utc_offset_hours = utc_offset_hours

    @property
    def utc_offset(self) -> timedelta:
        """UTC offset as a :class:`datetime.timedelta` (DST in effect)."""
        return timedelta(hours=self.utc_offset_hours)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.label


#: Longitude cut lines (degrees east) between adjacent zones on the route.
#: West of -114 is Pacific along I-15 (Nevada/California); the Mountain /
#: Central line is taken mid-Nebraska; Central / Eastern at the
#: Indiana-Ohio area.
_PACIFIC_MOUNTAIN_LON = -114.04   # NV/UT state line on I-15
_MOUNTAIN_CENTRAL_LON = -101.0    # mid-Nebraska on I-80
_CENTRAL_EASTERN_LON = -86.5      # western Indiana on I-70/I-90 (Indiana is Eastern)

#: XCAL writes log *contents* with EDT timestamps regardless of location
#: (paper §B); EDT is the Eastern zone under DST.
XCAL_INTERNAL_TZ = Timezone.EASTERN


def timezone_for_longitude(lon: float) -> Timezone:
    """Map a route longitude to the timezone used by the paper's partitions.

    >>> timezone_for_longitude(-118.24)  # Los Angeles
    <Timezone.PACIFIC: ('Pacific', -7)>
    >>> timezone_for_longitude(-71.06)  # Boston
    <Timezone.EASTERN: ('Eastern', -4)>
    """
    if not -180.0 <= lon <= 180.0:
        raise ValueError(f"longitude out of range: {lon}")
    if lon < _PACIFIC_MOUNTAIN_LON:
        return Timezone.PACIFIC
    if lon < _MOUNTAIN_CENTRAL_LON:
        return Timezone.MOUNTAIN
    if lon < _CENTRAL_EASTERN_LON:
        return Timezone.CENTRAL
    return Timezone.EASTERN


ALL_TIMEZONES: tuple[Timezone, ...] = (
    Timezone.PACIFIC,
    Timezone.MOUNTAIN,
    Timezone.CENTRAL,
    Timezone.EASTERN,
)
