"""Latitude/longitude points and great-circle geometry.

The analysis pipeline needs positions for three things: distance accounting
(miles driven per technology), geographic partitioning (timezones), and
UE-to-cell ranges for the channel model.  A spherical-earth haversine model is
accurate to ~0.5% which is far below the variability of anything we measure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

EARTH_RADIUS_M = 6_371_000.0


@dataclass(frozen=True, slots=True)
class LatLon:
    """A point on the earth in decimal degrees.

    >>> LatLon(34.05, -118.24)  # Los Angeles
    LatLon(lat=34.05, lon=-118.24)
    """

    lat: float
    lon: float

    def __post_init__(self) -> None:
        if not -90.0 <= self.lat <= 90.0:
            raise ValueError(f"latitude out of range: {self.lat}")
        if not -180.0 <= self.lon <= 180.0:
            raise ValueError(f"longitude out of range: {self.lon}")

    def distance_m(self, other: "LatLon") -> float:
        """Great-circle distance to ``other`` in meters."""
        return haversine_m(self, other)


def haversine_m(a: LatLon, b: LatLon) -> float:
    """Great-circle distance between two points in meters (haversine).

    Symmetric and non-negative; zero iff the points coincide.
    """
    phi1, phi2 = math.radians(a.lat), math.radians(b.lat)
    dphi = phi2 - phi1
    dlam = math.radians(b.lon - a.lon)
    h = math.sin(dphi / 2.0) ** 2 + math.cos(phi1) * math.cos(phi2) * math.sin(dlam / 2.0) ** 2
    # Clamp for numeric safety before the asin.
    h = min(1.0, max(0.0, h))
    return 2.0 * EARTH_RADIUS_M * math.asin(math.sqrt(h))


def interpolate(a: LatLon, b: LatLon, fraction: float) -> LatLon:
    """Linearly interpolate between two points.

    For the sub-100-km hops between route waypoints, linear interpolation in
    lat/lon space differs from true great-circle interpolation by far less
    than cell-placement noise, and it is monotonic in ``fraction`` which is
    what the route distance index requires.

    Parameters
    ----------
    fraction:
        Position along the segment: 0 returns ``a``, 1 returns ``b``.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    return LatLon(
        lat=a.lat + (b.lat - a.lat) * fraction,
        lon=a.lon + (b.lon - a.lon) * fraction,
    )


def initial_bearing_deg(a: LatLon, b: LatLon) -> float:
    """Initial great-circle bearing from ``a`` to ``b`` in degrees [0, 360)."""
    phi1, phi2 = math.radians(a.lat), math.radians(b.lat)
    dlam = math.radians(b.lon - a.lon)
    x = math.sin(dlam) * math.cos(phi2)
    y = math.cos(phi1) * math.sin(phi2) - math.sin(phi1) * math.cos(phi2) * math.cos(dlam)
    return math.degrees(math.atan2(x, y)) % 360.0


def offset_m(origin: LatLon, east_m: float, north_m: float) -> LatLon:
    """Return the point ``east_m``/``north_m`` meters away from ``origin``.

    Uses a local tangent-plane approximation, appropriate for the <50 km
    offsets used to scatter cell sites around the route.
    """
    dlat = north_m / EARTH_RADIUS_M
    dlon = east_m / (EARTH_RADIUS_M * math.cos(math.radians(origin.lat)))
    return LatLon(
        lat=origin.lat + math.degrees(dlat),
        lon=origin.lon + math.degrees(dlon),
    )
