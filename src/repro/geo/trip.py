"""The 8-day trip timeline: drive days and overnight stops.

The paper's campaign ran 08/08/2022–08/15/2022 with overnight stops in the
cities visited.  Campaign simulation time is *continuous driving time*;
mapping it onto wall clocks therefore needs a timeline that inserts the
overnight gaps.  This matters for the log-synchronisation software (§B):
real DRM filenames span eight calendar days and four timezones.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime, timedelta

from repro.errors import ConfigurationError
from repro.geo.route import Route

__all__ = ["TripTimeline", "build_paper_timeline"]

#: The paper's trip started 08/08/2022; we anchor day 1 at 08:00 Pacific.
PAPER_TRIP_START_UTC = datetime(2022, 8, 8, 15, 0, 0)

#: Driving hours per day before the overnight stop.
_DRIVE_HOURS_PER_DAY = 10.0

#: Overnight stop length (to the next morning's 08:00-ish start).
_OVERNIGHT_HOURS = 14.0


@dataclass(frozen=True)
class TripTimeline:
    """Piecewise mapping from continuous campaign seconds to wall-clock UTC.

    The campaign clock counts only active (driving/testing) seconds;
    the timeline inserts an overnight gap after every
    ``drive_seconds_per_day`` of activity.

    Examples
    --------
    >>> tl = build_paper_timeline()
    >>> tl.wall_clock_utc(0.0)
    datetime.datetime(2022, 8, 8, 15, 0)
    >>> tl.day_of(0.0)
    1
    """

    start_utc: datetime
    drive_seconds_per_day: float
    overnight_seconds: float

    def __post_init__(self) -> None:
        if self.drive_seconds_per_day <= 0 or self.overnight_seconds < 0:
            raise ConfigurationError("timeline durations must be positive")

    def day_of(self, campaign_s: float) -> int:
        """1-based trip day containing this campaign second."""
        if campaign_s < 0:
            raise ConfigurationError("campaign time must be non-negative")
        return int(campaign_s // self.drive_seconds_per_day) + 1

    def wall_clock_utc(self, campaign_s: float) -> datetime:
        """UTC wall-clock time of a campaign second, overnight gaps included."""
        day_index = self.day_of(campaign_s) - 1
        return (
            self.start_utc
            + timedelta(seconds=campaign_s)
            + timedelta(seconds=day_index * self.overnight_seconds)
        )

    def total_days(self, campaign_duration_s: float) -> int:
        """Number of calendar days a campaign of this active duration spans."""
        return self.day_of(max(campaign_duration_s - 1e-9, 0.0))

    def campaign_seconds(self, wall_utc: datetime) -> float:
        """Inverse mapping: campaign second of a wall-clock instant.

        Instants that fall inside an overnight stop map to the stop's start
        (no activity happens overnight).
        """
        elapsed = (wall_utc - self.start_utc).total_seconds()
        if elapsed < 0:
            raise ConfigurationError("instant precedes the trip start")
        day_span = self.drive_seconds_per_day + self.overnight_seconds
        full_days = int(elapsed // day_span)
        within = elapsed - full_days * day_span
        return full_days * self.drive_seconds_per_day + min(
            within, self.drive_seconds_per_day
        )


def build_paper_timeline() -> TripTimeline:
    """The paper's schedule: 8 days, ~10 driving hours each."""
    return TripTimeline(
        start_utc=PAPER_TRIP_START_UTC,
        drive_seconds_per_day=_DRIVE_HOURS_PER_DAY * 3600.0,
        overnight_seconds=_OVERNIGHT_HOURS * 3600.0,
    )


def expected_drive_days(route: Route, average_speed_mps: float = 27.0) -> int:
    """How many driving days the route needs at a cruise speed.

    The paper's 5711 km at highway speeds with city detours took 8 days;
    this helper sanity-checks a timeline against a route.
    """
    driving_s = route.total_length_m / average_speed_mps
    timeline = build_paper_timeline()
    return timeline.total_days(driving_s)
