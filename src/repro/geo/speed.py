"""Vehicle speed model.

The paper uses vehicle speed both as a measurement dimension (Figs. 7, 8,
Table 2) and as a proxy for the environment (0–20 mph ≈ cities, 20–60 mph ≈
suburban, 60+ mph ≈ inter-state highways, §4.2).  We generate a speed process
per region type as a mean-reverting (Ornstein–Uhlenbeck-style) AR(1) sequence:
speeds are strongly autocorrelated at the 500 ms sample scale, but wander
within the region's envelope, including full stops at city lights.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geo.regions import RegionType
from repro.units import mph_to_mps

__all__ = ["RegionSpeedParams", "SpeedProfile", "DEFAULT_SPEED_PARAMS"]


@dataclass(frozen=True, slots=True)
class RegionSpeedParams:
    """Mean-reversion parameters for one region type (all speeds in mph)."""

    mean_mph: float
    stddev_mph: float
    #: Mean-reversion rate per second: higher snaps back to the mean faster.
    reversion_per_s: float
    #: Probability per second of entering a stop (traffic light / congestion).
    stop_rate_per_s: float
    #: Mean stop duration in seconds.
    stop_duration_s: float

    def __post_init__(self) -> None:
        if self.mean_mph < 0 or self.stddev_mph < 0:
            raise ValueError("speed parameters must be non-negative")
        if not 0.0 <= self.stop_rate_per_s <= 1.0:
            raise ValueError("stop_rate_per_s must be a probability rate in [0,1]")


#: Calibrated so that city samples concentrate in the paper's 0–20 mph bin,
#: suburban in 20–60, highway in 60+ (with realistic spill-over).
DEFAULT_SPEED_PARAMS: dict[RegionType, RegionSpeedParams] = {
    RegionType.CITY: RegionSpeedParams(
        mean_mph=13.0, stddev_mph=6.0, reversion_per_s=0.15,
        stop_rate_per_s=0.01, stop_duration_s=25.0,
    ),
    RegionType.SUBURBAN: RegionSpeedParams(
        mean_mph=42.0, stddev_mph=9.0, reversion_per_s=0.08,
        stop_rate_per_s=0.001, stop_duration_s=15.0,
    ),
    RegionType.HIGHWAY: RegionSpeedParams(
        mean_mph=69.0, stddev_mph=4.5, reversion_per_s=0.05,
        stop_rate_per_s=0.0, stop_duration_s=0.0,
    ),
}


class SpeedProfile:
    """Stateful speed process stepped once per simulation tick.

    Examples
    --------
    >>> import numpy as np
    >>> profile = SpeedProfile(rng=np.random.default_rng(0))
    >>> v = profile.step(RegionType.HIGHWAY, dt_s=0.5)
    >>> 0.0 <= v
    True
    """

    def __init__(
        self,
        rng: np.random.Generator,
        params: dict[RegionType, RegionSpeedParams] | None = None,
    ) -> None:
        self._rng = rng
        self._params = dict(DEFAULT_SPEED_PARAMS if params is None else params)
        self._speed_mph: float | None = None
        self._stopped_until_s = 0.0
        self._clock_s = 0.0

    @property
    def current_speed_mph(self) -> float:
        """Last stepped speed in mph (0 before the first step)."""
        return 0.0 if self._speed_mph is None else self._speed_mph

    @property
    def current_speed_mps(self) -> float:
        """Last stepped speed in meters/second."""
        return mph_to_mps(self.current_speed_mph)

    def step(self, region: RegionType, dt_s: float) -> float:
        """Advance the process by ``dt_s`` seconds in ``region``; return mph.

        The first step initialises the speed from the region's stationary
        distribution.  Region changes (city → highway etc.) are handled by
        mean reversion toward the new region's mean, which produces natural
        acceleration/deceleration ramps.
        """
        if dt_s <= 0.0:
            raise ValueError(f"dt_s must be positive, got {dt_s}")
        p = self._params[region]
        self._clock_s += dt_s

        if self._speed_mph is None:
            self._speed_mph = max(
                float(self._rng.normal(p.mean_mph, p.stddev_mph)), 0.0
            )
            return self._speed_mph

        # Currently held at a stop?
        if self._clock_s < self._stopped_until_s:
            self._speed_mph = 0.0
            return 0.0

        # New stop event?
        if p.stop_rate_per_s > 0.0 and self._rng.random() < p.stop_rate_per_s * dt_s:
            duration = self._rng.exponential(p.stop_duration_s)
            self._stopped_until_s = self._clock_s + duration
            self._speed_mph = 0.0
            return 0.0

        theta = p.reversion_per_s
        sigma = p.stddev_mph * np.sqrt(2.0 * theta)
        drift = theta * (p.mean_mph - self._speed_mph) * dt_s
        noise = sigma * np.sqrt(dt_s) * self._rng.standard_normal()
        self._speed_mph = max(float(self._speed_mph + drift + noise), 0.0)
        return self._speed_mph

    def distance_travelled_m(self, dt_s: float) -> float:
        """Distance covered during a tick at the current speed."""
        return self.current_speed_mps * dt_s
