"""The cross-country drive route: Los Angeles to Boston, 5711+ km.

The paper's trip (08/08/2022–08/15/2022) covered all major cities between LA
and Boston: Las Vegas, Salt Lake City, Denver, Omaha, Chicago, Indianapolis,
Cleveland, Rochester.  We model the route as an ordered list of
:class:`RouteSegment` objects, each with a *road length* (authoritative for
mileage accounting, taken from highway driving distances) and a geographic
chord used to interpolate positions.  Road length exceeds chord length — real
roads bend — which is exactly why we keep the two separate.

Region typing follows the paper's proxy (§4.2): segments inside cities are
``CITY``, the transition areas flanking each city are ``SUBURBAN``, and the
long middles of each leg are ``HIGHWAY``.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

from repro.errors import RouteError
from repro.geo.coords import LatLon, interpolate, offset_m
from repro.geo.regions import RegionType
from repro.geo.timezones import Timezone, timezone_for_longitude

__all__ = [
    "City",
    "RouteSegment",
    "RoutePosition",
    "Route",
    "build_cross_country_route",
    "CROSS_COUNTRY_CITIES",
]


@dataclass(frozen=True, slots=True)
class City:
    """A major city visited on the trip."""

    name: str
    location: LatLon
    #: Cities hosting an AWS Wavelength edge server on the Verizon network
    #: (paper §3: Los Angeles, Las Vegas, Denver, Chicago, Boston).
    has_edge_server: bool = False


#: The ten major cities of the trip, west to east, with approximate downtown
#: coordinates.  Edge-server flags follow the paper's Wavelength deployment.
CROSS_COUNTRY_CITIES: tuple[City, ...] = (
    City("Los Angeles", LatLon(34.0522, -118.2437), has_edge_server=True),
    City("Las Vegas", LatLon(36.1699, -115.1398), has_edge_server=True),
    City("Salt Lake City", LatLon(40.7608, -111.8910)),
    City("Denver", LatLon(39.7392, -104.9903), has_edge_server=True),
    City("Omaha", LatLon(41.2565, -95.9345)),
    City("Chicago", LatLon(41.8781, -87.6298), has_edge_server=True),
    City("Indianapolis", LatLon(39.7684, -86.1581)),
    City("Cleveland", LatLon(41.4993, -81.6944)),
    City("Rochester", LatLon(43.1566, -77.6088)),
    City("Boston", LatLon(42.3601, -71.0589), has_edge_server=True),
)

#: Approximate inter-city road distances in km along the interstates driven
#: (I-15, I-70, I-80, I-90).  With 30 km of in-city driving per city these
#: sum to ~5712 km, matching the paper's 5711+ km total.
_LEG_ROAD_KM: tuple[float, ...] = (435.0, 675.0, 835.0, 870.0, 755.0, 295.0, 507.0, 410.0, 630.0)

#: In-city driving per city (km): measurement loops, static-test positioning.
_CITY_DRIVE_KM = 30.0

#: Suburban transition flanking each city on each leg (km).
_SUBURBAN_KM = 25.0


@dataclass(frozen=True, slots=True)
class RouteSegment:
    """A stretch of road with a uniform region type.

    ``start_point``/``end_point`` define the geographic chord; positions
    within the segment interpolate linearly along it.  ``length_m`` is the
    road length and is what mileage accounting uses.
    """

    start_point: LatLon
    end_point: LatLon
    length_m: float
    region: RegionType
    #: Name of the city for CITY segments; nearest city otherwise.
    city: str

    def __post_init__(self) -> None:
        if self.length_m <= 0.0:
            raise RouteError(f"segment length must be positive, got {self.length_m}")

    def point_at(self, fraction: float) -> LatLon:
        """Geographic point at ``fraction`` in [0, 1] along the segment."""
        return interpolate(self.start_point, self.end_point, fraction)


@dataclass(frozen=True, slots=True)
class RoutePosition:
    """A resolved position along the route."""

    distance_m: float
    point: LatLon
    region: RegionType
    timezone: Timezone
    segment_index: int
    city: str


@dataclass
class Route:
    """An ordered sequence of segments with a cumulative-distance index."""

    segments: list[RouteSegment]
    cities: tuple[City, ...] = ()
    _cum_m: list[float] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not self.segments:
            raise RouteError("a route needs at least one segment")
        cum = [0.0]
        for seg in self.segments:
            cum.append(cum[-1] + seg.length_m)
        self._cum_m = cum

    @property
    def total_length_m(self) -> float:
        """Total road length of the route in meters."""
        return self._cum_m[-1]

    @property
    def total_length_km(self) -> float:
        """Total road length in kilometres."""
        return self.total_length_m / 1000.0

    def segment_start_m(self, index: int) -> float:
        """Route distance at which segment ``index`` begins."""
        if not 0 <= index < len(self.segments):
            raise RouteError(f"segment index out of range: {index}")
        return self._cum_m[index]

    def position_at(self, distance_m: float) -> RoutePosition:
        """Resolve a route distance to a full :class:`RoutePosition`.

        Raises
        ------
        RouteError
            If ``distance_m`` is negative or beyond the end of the route.
        """
        if distance_m < 0.0 or distance_m > self.total_length_m:
            raise RouteError(
                f"distance {distance_m} outside route [0, {self.total_length_m}]"
            )
        # Right-most segment whose start is <= distance (end of route maps
        # into the final segment).
        idx = bisect.bisect_right(self._cum_m, distance_m) - 1
        idx = min(idx, len(self.segments) - 1)
        seg = self.segments[idx]
        frac = (distance_m - self._cum_m[idx]) / seg.length_m
        frac = min(1.0, max(0.0, frac))
        point = seg.point_at(frac)
        return RoutePosition(
            distance_m=distance_m,
            point=point,
            region=seg.region,
            timezone=timezone_for_longitude(point.lon),
            segment_index=idx,
            city=seg.city,
        )

    def city_mark_m(self, city_name: str) -> float:
        """Route distance of the midpoint of a city's CITY segment."""
        for i, seg in enumerate(self.segments):
            if seg.region is RegionType.CITY and seg.city == city_name:
                return self._cum_m[i] + seg.length_m / 2.0
        raise RouteError(f"no CITY segment for {city_name!r}")

    def edge_server_cities(self) -> tuple[City, ...]:
        """Cities along the route hosting a Wavelength edge server."""
        return tuple(c for c in self.cities if c.has_edge_server)


def _city_segment(city: City) -> RouteSegment:
    """Build the in-city driving segment for a city.

    The chord spans 4 km through downtown; the road length is the full
    in-city measurement mileage (loops detach road length from the chord).
    """
    start = offset_m(city.location, east_m=-2000.0, north_m=0.0)
    end = offset_m(city.location, east_m=2000.0, north_m=0.0)
    return RouteSegment(
        start_point=start,
        end_point=end,
        length_m=_CITY_DRIVE_KM * 1000.0,
        region=RegionType.CITY,
        city=city.name,
    )


def _leg_segments(origin: City, dest: City, leg_road_km: float) -> list[RouteSegment]:
    """Build suburban-highway-suburban segments for one inter-city leg."""
    if leg_road_km <= 2 * _SUBURBAN_KM:
        raise RouteError(
            f"leg {origin.name}->{dest.name} too short ({leg_road_km} km) "
            f"for two {_SUBURBAN_KM} km suburban transitions"
        )
    highway_km = leg_road_km - 2 * _SUBURBAN_KM
    # Chord fractions proportional to road length within the leg.
    f1 = _SUBURBAN_KM / leg_road_km
    f2 = 1.0 - f1
    a, b = origin.location, dest.location
    p1 = interpolate(a, b, f1)
    p2 = interpolate(a, b, f2)
    return [
        RouteSegment(a, p1, _SUBURBAN_KM * 1000.0, RegionType.SUBURBAN, origin.name),
        RouteSegment(p1, p2, highway_km * 1000.0, RegionType.HIGHWAY, dest.name),
        RouteSegment(p2, b, _SUBURBAN_KM * 1000.0, RegionType.SUBURBAN, dest.name),
    ]


def build_cross_country_route() -> Route:
    """Build the LA→Boston route used throughout the reproduction.

    Total road length ≈ 5712 km, matching the paper's 5711+ km (Table 1).
    """
    segments: list[RouteSegment] = []
    for i, city in enumerate(CROSS_COUNTRY_CITIES):
        segments.append(_city_segment(city))
        if i < len(_LEG_ROAD_KM):
            segments.extend(
                _leg_segments(city, CROSS_COUNTRY_CITIES[i + 1], _LEG_ROAD_KM[i])
            )
    return Route(segments=segments, cities=CROSS_COUNTRY_CITIES)
