"""Region taxonomy along the route.

The paper repeatedly distinguishes three environments, using the vehicle's
speed as a proxy (§4.2, §5.5): cities (low speed, dense deployments, mmWave),
suburban transition areas (mid speed, sparse deployments), and inter-state
highways (high speed, where most data were collected).
"""

from __future__ import annotations

import enum


class RegionType(enum.Enum):
    """The three environment classes used throughout the paper's analysis."""

    CITY = "city"
    SUBURBAN = "suburban"
    HIGHWAY = "highway"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


ALL_REGION_TYPES: tuple[RegionType, ...] = (
    RegionType.CITY,
    RegionType.SUBURBAN,
    RegionType.HIGHWAY,
)
