"""Geographic substrate: route, coordinates, timezones, regions, speed.

This package models the physical drive the paper performed: a 5711+ km trip
from Los Angeles to Boston through 10 major cities, crossing 4 US timezones,
with measurements taken on inter-state highways, in suburban areas, and inside
cities.
"""

from repro.geo.coords import LatLon, haversine_m, interpolate
from repro.geo.regions import RegionType
from repro.geo.route import Route, RouteSegment, RoutePosition, build_cross_country_route
from repro.geo.speed import SpeedProfile
from repro.geo.timezones import Timezone, timezone_for_longitude

__all__ = [
    "LatLon",
    "haversine_m",
    "interpolate",
    "RegionType",
    "Route",
    "RouteSegment",
    "RoutePosition",
    "build_cross_country_route",
    "SpeedProfile",
    "Timezone",
    "timezone_for_longitude",
]
