"""Application-layer log files with their inconsistent timestamp formats.

§B: *"Some applications logged timestamps in UTC and others in local
time."*  We reproduce both conventions: throughput/RTT tools log UTC epoch
seconds; the app suite logs local wall-clock time — and the matcher in
:mod:`repro.sync` has to cope with both, across timezone crossings.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from datetime import datetime, timedelta, timezone

from repro.errors import LogFormatError
from repro.radio.operators import Operator

__all__ = ["TimestampConvention", "AppLogFile"]

_OP_BY_CODE = {op.code: op for op in Operator}


class TimestampConvention(enum.Enum):
    """How an app-layer tool stamps its log lines."""

    UTC_EPOCH = "utc_epoch"
    LOCAL_WALL = "local_wall"


@dataclass
class AppLogFile:
    """One app-layer test log.

    ``start_utc`` is ground truth used by the exporter; the serialised form
    only carries timestamps in the file's declared convention, which is what
    makes matching non-trivial.
    """

    operator: Operator
    test_label: str
    start_utc: datetime
    convention: TimestampConvention
    #: Local-time offset (hours from UTC) where the test ran — needed to
    #: interpret LOCAL_WALL stamps; real logs leave this implicit, and the
    #: matcher has to recover it from the route.
    utc_offset_hours: int
    #: (seconds since test start, metric value) samples.
    samples: list[tuple[float, float]] = field(default_factory=list)

    @property
    def filename(self) -> str:
        stamp = int(self.start_utc.replace(tzinfo=timezone.utc).timestamp())
        return f"{self.test_label}_{self.operator.code}_{stamp}.log"

    def serialize(self) -> str:
        """Render the log body in the file's timestamp convention."""
        lines = [f"# applog test={self.test_label} operator={self.operator.code} fmt={self.convention.value}"]
        base_utc = self.start_utc.replace(tzinfo=timezone.utc)
        for offset_s, value in self.samples:
            if self.convention is TimestampConvention.UTC_EPOCH:
                stamp = f"{base_utc.timestamp() + offset_s:.3f}"
            else:
                local = base_utc + timedelta(hours=self.utc_offset_hours, seconds=offset_s)
                stamp = local.strftime("%Y-%m-%d %H:%M:%S.%f")[:-3]
            lines.append(f"{stamp}|{value:.4f}")
        return "\n".join(lines) + "\n"

    @classmethod
    def parse(cls, filename: str, body: str, utc_offset_hours: int) -> "AppLogFile":
        """Parse a log; LOCAL_WALL stamps are interpreted with the supplied
        offset (the matcher recovers it from the route position).

        Raises
        ------
        LogFormatError
            On malformed filenames, headers or sample lines.
        """
        stem = filename[:-4] if filename.endswith(".log") else filename
        parts = stem.rsplit("_", 2)
        if len(parts) != 3 or parts[1] not in _OP_BY_CODE:
            raise LogFormatError(f"malformed app log filename: {filename!r}")
        test_label, op_code, stamp = parts
        try:
            start_utc = datetime.utcfromtimestamp(int(stamp))
        except (ValueError, OverflowError) as exc:
            raise LogFormatError(f"bad epoch in filename: {filename!r}") from exc

        lines = body.splitlines()
        if not lines or not lines[0].startswith("# applog"):
            raise LogFormatError("missing app log header")
        header = dict(
            kv.split("=", 1) for kv in lines[0][2:].split() if "=" in kv
        )
        try:
            convention = TimestampConvention(header["fmt"])
        except (KeyError, ValueError) as exc:
            raise LogFormatError("bad or missing fmt in app log header") from exc

        log = cls(
            operator=_OP_BY_CODE[op_code],
            test_label=test_label,
            start_utc=start_utc,
            convention=convention,
            utc_offset_hours=utc_offset_hours,
        )
        base_epoch = start_utc.replace(tzinfo=timezone.utc).timestamp()
        for line in lines[1:]:
            line = line.strip()
            if not line:
                continue
            try:
                stamp_field, value_field = line.split("|")
                if convention is TimestampConvention.UTC_EPOCH:
                    offset = float(stamp_field) - base_epoch
                else:
                    local = datetime.strptime(stamp_field, "%Y-%m-%d %H:%M:%S.%f")
                    utc = local - timedelta(hours=utc_offset_hours)
                    offset = (
                        utc.replace(tzinfo=timezone.utc).timestamp() - base_epoch
                    )
                log.samples.append((offset, float(value_field)))
            except ValueError as exc:
                raise LogFormatError(f"malformed app log line: {line!r}") from exc
        return log
