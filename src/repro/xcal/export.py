"""Export a :class:`DriveDataset` into the paper's raw log formats.

This regenerates the *inputs* the authors' synchronisation software had to
cope with: per-test DRM files (local-time filenames, EDT contents) and
app-layer logs (UTC epoch for the throughput tool, local wall-clock for the
RTT tool).  :mod:`repro.sync` then re-ingests them, and the integration tests
assert the round trip is lossless.
"""

from __future__ import annotations

from datetime import datetime, timedelta

from repro.campaign.dataset import DriveDataset, TestRecord
from repro.campaign.tests import TestType
from repro.geo.route import Route
from repro.geo.timezones import XCAL_INTERNAL_TZ, timezone_for_longitude
from repro.geo.trip import TripTimeline
from repro.xcal.applog import AppLogFile, TimestampConvention
from repro.xcal.drm import DrmFile
from repro.xcal.records import SignalingRecord, XcalKpiRecord

__all__ = ["TRIP_START_UTC", "export_logs"]

#: The drive began 08/08/2022 at 08:00 Pacific = 15:00 UTC.
TRIP_START_UTC = datetime(2022, 8, 8, 15, 0, 0)

#: App-layer timestamp convention per test tool (§B: "some applications
#: logged timestamps in UTC and others in local time").
_APP_CONVENTION: dict[TestType, TimestampConvention] = {
    TestType.DOWNLINK_THROUGHPUT: TimestampConvention.UTC_EPOCH,
    TestType.UPLINK_THROUGHPUT: TimestampConvention.UTC_EPOCH,
    TestType.RTT: TimestampConvention.LOCAL_WALL,
}


def _utc_at(time_s: float, timeline: TripTimeline | None = None) -> datetime:
    if timeline is not None:
        return timeline.wall_clock_utc(time_s)
    return TRIP_START_UTC + timedelta(seconds=time_s)


def _edt_at(time_s: float, timeline: TripTimeline | None = None) -> datetime:
    return _utc_at(time_s, timeline) + XCAL_INTERNAL_TZ.utc_offset


def export_logs(
    dataset: DriveDataset,
    route: Route,
    test_types: tuple[TestType, ...] = (
        TestType.DOWNLINK_THROUGHPUT,
        TestType.UPLINK_THROUGHPUT,
        TestType.RTT,
    ),
    max_tests: int | None = None,
    timeline: TripTimeline | None = None,
) -> tuple[list[DrmFile], list[AppLogFile]]:
    """Render DRM + app-layer log files for the dataset's tests.

    Parameters
    ----------
    max_tests:
        Optional cap on the number of tests exported (keeps integration
        tests fast); ``None`` exports everything.
    timeline:
        Optional trip timeline; when given, campaign time maps onto the
        paper's 8-day wall-clock schedule (overnight stops included), so
        exported filenames span multiple calendar days as the real logs
        did.
    """
    tests = [t for t in dataset.tests if t.test_type in test_types and not t.static]
    tests.sort(key=lambda t: (t.start_time_s, t.operator.code))
    if max_tests is not None:
        tests = tests[:max_tests]

    tput_by_test = dataset.samples_by_test()
    rtt_by_test: dict[int, list] = {}
    for s in dataset.rtt_samples:
        rtt_by_test.setdefault(s.test_id, []).append(s)
    ho_by_test: dict[int, list] = {}
    for h in dataset.handovers:
        ho_by_test.setdefault(h.test_id, []).append(h)

    drm_files: list[DrmFile] = []
    app_logs: list[AppLogFile] = []
    for test in tests:
        drm_files.append(
            _build_drm(test, route, tput_by_test, rtt_by_test, ho_by_test, timeline)
        )
        app_logs.append(_build_applog(test, route, tput_by_test, rtt_by_test, timeline))
    return drm_files, app_logs


def _local_offset_hours(test: TestRecord, route: Route) -> int:
    position = route.position_at(min(test.start_mark_m, route.total_length_m))
    return timezone_for_longitude(position.point.lon).utc_offset_hours


def _build_drm(
    test: TestRecord,
    route: Route,
    tput_by_test: dict[int, list],
    rtt_by_test: dict[int, list],
    ho_by_test: dict[int, list],
    timeline: TripTimeline | None = None,
) -> DrmFile:
    offset_h = _local_offset_hours(test, route)
    start_local = _utc_at(test.start_time_s, timeline) + timedelta(hours=offset_h)
    drm = DrmFile(
        operator=test.operator,
        test_label=test.test_type.value,
        start_local=start_local,
    )
    if test.test_type is TestType.RTT:
        samples = rtt_by_test.get(test.test_id, [])
        for s in samples:
            drm.kpi_records.append(
                XcalKpiRecord(
                    timestamp_edt=_edt_at(s.time_s, timeline),
                    technology=s.tech,
                    rsrp_dbm=-99.0,  # the RTT tool logs no PHY KPIs
                    mcs=0,
                    bler=0.0,
                    n_ccs=1,
                    tput_mbps=0.0,
                )
            )
    else:
        for s in tput_by_test.get(test.test_id, []):
            drm.kpi_records.append(
                XcalKpiRecord(
                    timestamp_edt=_edt_at(s.time_s, timeline),
                    technology=s.tech,
                    rsrp_dbm=s.rsrp_dbm,
                    mcs=s.mcs,
                    bler=s.bler,
                    n_ccs=s.n_ccs,
                    tput_mbps=s.tput_mbps,
                )
            )
    for h in ho_by_test.get(test.test_id, []):
        start = _edt_at(h.event.time_s, timeline)
        end = start + timedelta(milliseconds=h.event.duration_ms)
        drm.signaling_records.append(
            SignalingRecord(start, "HO_START", str(h.event.from_cell), str(h.event.to_cell))
        )
        drm.signaling_records.append(
            SignalingRecord(end, "HO_END", str(h.event.from_cell), str(h.event.to_cell))
        )
    return drm


def _build_applog(
    test: TestRecord,
    route: Route,
    tput_by_test: dict[int, list],
    rtt_by_test: dict[int, list],
    timeline: TripTimeline | None = None,
) -> AppLogFile:
    convention = _APP_CONVENTION[test.test_type]
    log = AppLogFile(
        operator=test.operator,
        test_label=test.test_type.value,
        start_utc=_utc_at(test.start_time_s, timeline),
        convention=convention,
        utc_offset_hours=_local_offset_hours(test, route),
    )
    if test.test_type is TestType.RTT:
        for s in rtt_by_test.get(test.test_id, []):
            log.samples.append((s.time_s - test.start_time_s, s.rtt_ms))
    else:
        for s in tput_by_test.get(test.test_id, []):
            log.samples.append((s.time_s - test.start_time_s, s.tput_mbps))
    return log
