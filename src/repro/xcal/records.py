"""Typed records inside an XCAL DRM log file."""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime

from repro.errors import LogFormatError
from repro.radio.technology import RadioTechnology

__all__ = ["XcalKpiRecord", "SignalingRecord"]

_TECH_BY_LABEL = {t.label: t for t in RadioTechnology}


@dataclass(frozen=True, slots=True)
class XcalKpiRecord:
    """One 500 ms KPI row as XCAL logs it (timestamps in EDT, §B)."""

    timestamp_edt: datetime
    technology: RadioTechnology
    rsrp_dbm: float
    mcs: int
    bler: float
    n_ccs: int
    tput_mbps: float

    def to_line(self) -> str:
        """Serialise to the DRM line format."""
        ts = self.timestamp_edt.strftime("%Y-%m-%d %H:%M:%S.%f")[:-3]
        return (
            f"{ts} EDT|KPI|tech={self.technology.label}|rsrp={self.rsrp_dbm:.1f}"
            f"|mcs={self.mcs}|bler={self.bler:.4f}|ca={self.n_ccs}"
            f"|tput={self.tput_mbps:.3f}"
        )

    @classmethod
    def from_line(cls, line: str) -> "XcalKpiRecord":
        """Parse a DRM KPI line.

        Raises
        ------
        LogFormatError
            If the line is not a well-formed KPI record.
        """
        parts = line.strip().split("|")
        if len(parts) != 8 or parts[1] != "KPI":
            raise LogFormatError(f"not a KPI line: {line!r}")
        ts_field = parts[0]
        if not ts_field.endswith(" EDT"):
            raise LogFormatError(f"KPI timestamp must be EDT: {ts_field!r}")
        try:
            ts = datetime.strptime(ts_field[:-4], "%Y-%m-%d %H:%M:%S.%f")
            fields = dict(p.split("=", 1) for p in parts[2:])
            return cls(
                timestamp_edt=ts,
                technology=_TECH_BY_LABEL[fields["tech"]],
                rsrp_dbm=float(fields["rsrp"]),
                mcs=int(fields["mcs"]),
                bler=float(fields["bler"]),
                n_ccs=int(fields["ca"]),
                tput_mbps=float(fields["tput"]),
            )
        except (KeyError, ValueError) as exc:
            raise LogFormatError(f"malformed KPI line: {line!r}") from exc


@dataclass(frozen=True, slots=True)
class SignalingRecord:
    """A control-plane signalling event (handover execution)."""

    timestamp_edt: datetime
    event: str  # "HO_START" / "HO_END"
    from_cell: str
    to_cell: str

    _EVENTS = ("HO_START", "HO_END")

    def to_line(self) -> str:
        ts = self.timestamp_edt.strftime("%Y-%m-%d %H:%M:%S.%f")[:-3]
        return f"{ts} EDT|SIG|event={self.event}|from={self.from_cell}|to={self.to_cell}"

    @classmethod
    def from_line(cls, line: str) -> "SignalingRecord":
        parts = line.strip().split("|")
        if len(parts) != 5 or parts[1] != "SIG":
            raise LogFormatError(f"not a signalling line: {line!r}")
        ts_field = parts[0]
        if not ts_field.endswith(" EDT"):
            raise LogFormatError(f"signalling timestamp must be EDT: {ts_field!r}")
        try:
            ts = datetime.strptime(ts_field[:-4], "%Y-%m-%d %H:%M:%S.%f")
            fields = dict(p.split("=", 1) for p in parts[2:])
            event = fields["event"]
            if event not in cls._EVENTS:
                raise LogFormatError(f"unknown signalling event {event!r}")
            return cls(
                timestamp_edt=ts,
                event=event,
                from_cell=fields["from"],
                to_cell=fields["to"],
            )
        except (KeyError, ValueError) as exc:
            raise LogFormatError(f"malformed signalling line: {line!r}") from exc
