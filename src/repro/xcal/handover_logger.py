"""The passive "handover-logger" phones (paper §3).

Three additional unrooted phones — one per carrier — ran for the entire
8-day trip with a custom Android app sending a 38-byte ICMP ping every
200 ms to keep the radio out of sleep, while logging GPS, cell ids and the
serving cellular technology via Android APIs.  Because this keep-alive
traffic is far below any upgrade threshold, the operators' conservative
policies kept these phones on LTE/LTE-A across most of the country — the
root of Fig. 1's passive/active disparity.

This module models that logger as a route walker: it traverses the
operator's deployment zone by zone under the ``IDLE_PING`` traffic profile,
emitting :class:`~repro.campaign.dataset.PassiveCoverageSegment` records,
and counts the macro-grid handovers that dominate Table 1's trip-wide
handover totals.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.campaign.dataset import PassiveCoverageSegment
from repro.policy.profiles import TrafficProfile
from repro.policy.selection import TechnologySelector
from repro.radio.deployment import DeploymentModel
from repro.radio.operators import Operator
from repro.units import (
    HANDOVER_LOGGER_PING_INTERVAL_S,
    HANDOVER_LOGGER_PING_PAYLOAD_BYTES,
)

__all__ = ["HandoverLoggerTrace", "run_handover_logger"]


@dataclass(frozen=True)
class HandoverLoggerTrace:
    """Everything one passive phone recorded over the trip."""

    operator: Operator
    segments: list[PassiveCoverageSegment]
    #: Trip-wide handovers on the macro (LTE anchor) grid — the Table 1
    #: numbers (2657/4119/2494 for V/T/A).
    macro_handovers: int
    #: Distinct macro cells camped on.
    macro_cells: int

    @property
    def total_length_m(self) -> float:
        return sum(seg.length_m for seg in self.segments)

    def keepalive_bytes(self, average_speed_mps: float = 27.0) -> float:
        """ICMP keep-alive volume for the whole trip (one direction).

        38-byte payloads every 200 ms for the full driving duration — tiny,
        which is exactly why it never triggers an upgrade.
        """
        duration_s = self.total_length_m / average_speed_mps
        pings = duration_s / HANDOVER_LOGGER_PING_INTERVAL_S
        return pings * HANDOVER_LOGGER_PING_PAYLOAD_BYTES


def run_handover_logger(
    operator: Operator,
    deployment: DeploymentModel,
    rng: np.random.Generator,
) -> HandoverLoggerTrace:
    """Walk the route as the passive logger phone.

    The technology view comes from the active-layer deployment under the
    idle policy (what Android's API would report); the handover count comes
    from the macro anchor grid the idle UE actually camps on.
    """
    selector = TechnologySelector(operator, rng)
    segments: list[PassiveCoverageSegment] = []
    for zone in deployment.zones:
        tech = selector.select(zone, TrafficProfile.IDLE_PING)
        segments.append(
            PassiveCoverageSegment(
                operator=operator,
                start_m=zone.start_m,
                end_m=zone.end_m,
                tech=tech,
                timezone=zone.timezone,
                region=zone.region,
            )
        )
    macro_cells = {
        cell.cell_id
        for zone in deployment.macro_zones
        for cell in zone.cells.values()
    }
    return HandoverLoggerTrace(
        operator=operator,
        segments=segments,
        macro_handovers=max(len(deployment.macro_zones) - 1, 0),
        macro_cells=len(macro_cells),
    )
